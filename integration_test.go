package dap

// Cross-package integration tests: full protocol rounds against every
// threat model through the public facade, plus protocol-level validation
// of the paper's theorems (Theorem 1 equivalence, the §V security
// argument, the §V-D extensions).

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

func integrationValues(seed uint64, n int) ([]float64, float64) {
	r := rng.New(seed)
	vals := make([]float64, n)
	var sum float64
	for i := range vals {
		vals[i] = stats.Clamp(rng.Normal(r, -0.3, 0.25), -1, 1)
		sum += vals[i]
	}
	return vals, sum / float64(n)
}

// Every threat model, one protocol, one assertion: DAP stays closer to
// the truth than the undefended mean.
func TestDAPAgainstAllThreatModels(t *testing.T) {
	vals, trueMean := integrationValues(1, 15000)
	threats := []struct {
		name  string
		adv   Adversary
		gamma float64
	}{
		{"BBA uniform [C/2,C]", NewBBA(RangeHighHalf, DistUniform), 0.25},
		{"BBA gaussian [3C/4,C]", NewBBA(RangeHighQuarter, DistGaussian), 0.25},
		{"BBA beta61 [O,C]", NewBBA(RangeFull, DistBeta61), 0.25},
		{"GBA two-sided", &GBA{FracLeft: 0.2, LeftRange: RangeHighHalf, RightRange: RangeHighHalf, Dist: DistUniform}, 0.25},
		{"Evasion a=0.1", &Evasion{A: 0.1}, 0.25},
	}
	for _, th := range threats {
		t.Run(th.name, func(t *testing.T) {
			d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar})
			if err != nil {
				t.Fatal(err)
			}
			est, err := d.Run(rng.New(2), vals, th.adv, th.gamma)
			if err != nil {
				t.Fatal(err)
			}
			reports, err := CollectPM(rng.New(2), vals, 1, th.adv, th.gamma, 0)
			if err != nil {
				t.Fatal(err)
			}
			naive := stats.Clamp(Ostrich(reports), -1, 1)
			if math.Abs(est.Mean-trueMean) >= math.Abs(naive-trueMean) {
				t.Fatalf("DAP %v vs naive %v vs truth %v", est.Mean, naive, trueMean)
			}
		})
	}
}

// §I's trimming critique end-to-end: a threshold-hugging attacker keeps
// its poison inside the trimming threshold, so trimming both fails to
// remove it *and* prunes honest tail reports; DAP, which never trims,
// stays accurate.
func TestOpportunisticDefeatsTrimmingNotDAP(t *testing.T) {
	vals, trueMean := integrationValues(20, 15000)
	adv := &Opportunistic{TrimFrac: 0.5, Margin: 0.1, Reference: vals}
	const gamma = 0.25

	reports, err := CollectPM(rng.New(21), vals, 1, adv, gamma, 0)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := Trimming(reports, 0.5, true)

	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Run(rng.New(21), vals, adv, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-trueMean) >= math.Abs(trimmed-trueMean) {
		t.Fatalf("DAP (%v) should beat trimming (%v) vs truth %v under the threshold-hugging attack",
			est.Mean, trimmed, trueMean)
	}
}

// Confidence intervals from Theorem 6's variance bound cover the truth in
// the clean case (the bound is worst-case, so coverage is conservative).
func TestConfidenceIntervalCoversCleanTruth(t *testing.T) {
	vals, trueMean := integrationValues(22, 12000)
	d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for trial := 0; trial < 5; trial++ {
		est, err := d.Run(rng.Split(23, uint64(trial)), vals, NoAttack{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := est.ConfidenceInterval(0.99)
		if lo > hi {
			t.Fatal("inverted interval")
		}
		// Allow slack for the EMF false-positive bias on top of the CI.
		if trueMean >= lo-0.06 && trueMean <= hi+0.06 {
			covered++
		}
	}
	if covered < 4 {
		t.Fatalf("interval covered truth in %d/5 trials", covered)
	}
}

// Theorem 1 at the protocol level: a two-sided GBA and its constructive
// BBA reduction bias the undefended mean identically.
func TestTheorem1ProtocolEquivalence(t *testing.T) {
	r := rng.New(3)
	env := attack.EnvFor(pm.MustNew(1), 0)
	gba := &GBA{FracLeft: 0.35, LeftRange: RangeHighHalf, RightRange: RangeHighQuarter, Dist: DistUniform}
	poison := gba.Poison(r, env, 5000)

	reduced, side, err := ReduceToBBA(poison, 0, env.Domain.Lo, env.Domain.Hi)
	if err != nil {
		t.Fatal(err)
	}
	var devGBA, devBBA float64
	for _, v := range poison {
		devGBA += v
	}
	for _, v := range reduced {
		devBBA += v
	}
	if math.Abs(devGBA-devBBA) > 1e-6 {
		t.Fatalf("deviations differ: %v vs %v", devGBA, devBBA)
	}
	// The reduction's chosen side matches the heavier deviation side.
	if (devGBA > 0) != (side == SideRight) {
		t.Fatalf("side %v inconsistent with total deviation %v", side, devGBA)
	}
}

// The §V security argument end-to-end: an adversary who games the
// baseline's fixed probing budget destroys it, while DAP with the same
// total budget is unaffected (attackers cannot tell probing from
// estimation reports).
func TestGamedBaselineVsDAP(t *testing.T) {
	vals, trueMean := integrationValues(4, 20000)
	adv := NewBBA(RangeHighHalf, DistUniform)

	bl, err := NewBaseline(1.0/8, 7.0/8, SchemeEMFStar)
	if err != nil {
		t.Fatal(err)
	}
	col, err := bl.GamedCollect(rng.New(5), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	gamed, err := bl.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}

	d, err := NewDAP(Params{Eps: 1, Eps0: 1.0 / 16, Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	dapEst, err := d.Run(rng.New(5), vals, adv, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	gamedErr := math.Abs(gamed.Mean - trueMean)
	dapErr := math.Abs(dapEst.Mean - trueMean)
	if dapErr*5 >= gamedErr {
		t.Fatalf("expected DAP (%v) to beat gamed baseline (%v) by >5x", dapErr, gamedErr)
	}
}

// The SW facade: distribution + mean estimation end-to-end.
func TestSWFacade(t *testing.T) {
	r := rng.New(6)
	vals := make([]float64, 12000)
	var sum float64
	for i := range vals {
		vals[i] = rng.Beta(r, 2, 5)
		sum += vals[i]
	}
	trueMean := sum / float64(len(vals))
	d, err := NewSWDAP(SWParams{Eps: 1, Eps0: 0.25, Scheme: SchemeCEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Run(rng.New(7), vals, attack.SWTop{}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-trueMean) > 0.12 {
		t.Fatalf("SW estimate %v vs truth %v", est.Mean, trueMean)
	}
	if len(est.XHat) == 0 {
		t.Fatal("distribution estimate missing")
	}
}

// The categorical facade end-to-end.
func TestFreqFacade(t *testing.T) {
	r := rng.New(8)
	cov := COVID19()
	cats := cov.Sample(r, 20000)
	f, err := NewFreqDAP(FreqParams{Eps: 1, Eps0: 0.25, K: cov.K(), Scheme: SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	est, err := f.RunFreq(rng.New(9), cats, []int{10}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range est.PoisonCats {
		if c == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("poisoned category not located: %v", est.PoisonCats)
	}
}

// Variance extension through core (not yet on the facade).
func TestVarianceExtensionIntegration(t *testing.T) {
	vals, _ := integrationValues(10, 24000)
	trueVar := stats.Variance(vals)
	ve := &core.VarianceEstimator{Params: core.Params{Eps: 1, Eps0: 1.0 / 16, Scheme: core.SchemeEMFStar}}
	est, err := ve.Run(rng.New(11), vals, NewBBA(RangeHighHalf, DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Variance-trueVar) > 0.12 {
		t.Fatalf("variance %v vs truth %v", est.Variance, trueVar)
	}
}

// Determinism across the whole pipeline at a fixed seed.
func TestFullPipelineDeterminism(t *testing.T) {
	vals, _ := integrationValues(12, 6000)
	adv := NewBBA(RangeHighHalf, DistUniform)
	run := func() float64 {
		d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeCEMFStar})
		if err != nil {
			t.Fatal(err)
		}
		est, err := d.Run(rng.New(13), vals, adv, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return est.Mean
	}
	if run() != run() {
		t.Fatal("pipeline not deterministic")
	}
}
