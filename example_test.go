package dap

// Testable examples of the top-level API — they run under `go test` and
// render as documentation in godoc. Each example is deterministic: fixed
// PCG seeds, fixed synthetic populations, rounded output.

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
)

// exampleValues builds a deterministic honest population: n values evenly
// spread over [lo, hi].
func exampleValues(n int, lo, hi float64) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return vals
}

// Example_buildFromSpec declares a task as JSON — the same document the
// CLIs (-spec file.json), the wire API and stream tenants consume — and
// builds its estimator.
func Example_buildFromSpec() {
	specJSON := []byte(`{
		"task": "mean",
		"scheme": "cemfstar",
		"eps": 1,
		"eps0": 0.25
	}`)
	sp, err := ParseSpec(specJSON)
	if err != nil {
		panic(err)
	}
	est, err := Build(sp)
	if err != nil {
		panic(err)
	}
	eff := est.Spec()
	fmt.Println("task:   ", eff.Task)
	fmt.Println("scheme: ", eff.Scheme)
	fmt.Println("groups: ", len(est.Groups()))
	// Unknown fields and invalid parameters fail loudly with ErrBadSpec.
	if _, err := ParseSpec([]byte(`{"task": "mean", "eps": -1}`)); err != nil {
		fmt.Println("bad spec rejected")
	}
	// Output:
	// task:    mean
	// scheme:  CEMF*
	// groups:  3
	// bad spec rejected
}

// Example_runUnderAttack simulates a full protocol round in which 25% of
// the users collude, drawn from the attack registry — the same "attack"
// section a JSON spec carries.
func Example_runUnderAttack() {
	sp := NewSpec(Mean(),
		WithBudget(1, 0.25),
		WithScheme(SchemeEMFStar),
		WithAttack(AttackSpec{Name: "bba", Range: "[C/2,C]", Dist: "uniform"}))
	est, err := Build(sp)
	if err != nil {
		panic(err)
	}
	adv, err := sp.Adversary()
	if err != nil {
		panic(err)
	}
	r := rand.New(rand.NewPCG(1, 2))
	res, err := est.(Runner).Run(r, exampleValues(8000, -0.5, 0.1), adv, 0.25)
	if err != nil {
		panic(err)
	}
	fmt.Println("attack:       ", adv.Name())
	fmt.Printf("probed side:   right=%v\n", res.PoisonedRight)
	fmt.Printf("probed gamma:  %.2f\n", res.Gamma)
	fmt.Printf("mean error:    %.2f\n", res.Mean-(-0.2))
	// Output:
	// attack:        BBA(right, [0.5,1]·C, Uniform)
	// probed side:   right=true
	// probed gamma:  0.27
	// mean error:    0.06
}

// Example_defenseComparison pits DAP against the trimming comparator on
// the same poisoned population: the opportunistic attacker hugs the
// trimming threshold, so trimming cuts away honest upper-tail reports
// while the poison survives, dragging its estimate far low; DAP's EMF
// reconstruction stays an order of magnitude closer.
func Example_defenseComparison() {
	values := exampleValues(8000, -0.5, 0.1)
	adv, err := NewAttack(AttackSpec{Name: "opportunistic", TrimFrac: 0.5})
	if err != nil {
		panic(err)
	}

	dapEst, err := Build(NewSpec(Mean(), WithBudget(1, 0.25)))
	if err != nil {
		panic(err)
	}
	res, err := dapEst.(Runner).Run(rand.New(rand.NewPCG(3, 4)), values, adv, 0.25)
	if err != nil {
		panic(err)
	}

	trimEst, err := Build(NewSpec(Mean(), WithBudget(1, 0.25),
		WithDefense(DefenseSpec{Name: "trimming"})))
	if err != nil {
		panic(err)
	}
	trim, err := trimEst.(Runner).Run(rand.New(rand.NewPCG(3, 4)), values, adv, 0.25)
	if err != nil {
		panic(err)
	}

	truth := -0.2
	fmt.Printf("dap error:      %.2f\n", res.Mean-truth)
	fmt.Printf("trimming error: %.2f\n", trim.Mean-truth)
	// Output:
	// dap error:      0.09
	// trimming error: -0.80
}

// Example_attackRegistry shows the declarative attack surface: JSON in,
// adversary out, including the composed streaming attackers.
func Example_attackRegistry() {
	var sp AttackSpec
	if err := json.Unmarshal([]byte(`{
		"name": "ramp",
		"frac0": 0.1,
		"epochs": 4,
		"inner": {"name": "bba", "dist": "gaussian"}
	}`), &sp); err != nil {
		panic(err)
	}
	adv, err := NewAttack(sp)
	if err != nil {
		panic(err)
	}
	fmt.Println(adv.Name())
	_, err = NewAttack(AttackSpec{Name: "quantum"})
	fmt.Println("unknown name rejected:", err != nil)
	// Output:
	// Ramp(0.1→1 over 4, BBA(right, [0.5,1]·C, Gaussian))
	// unknown name rejected: true
}
