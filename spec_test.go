package dap

// Task-spec API tests: JSON round-trip fidelity (marshal → unmarshal →
// Build estimates bit-identically to the directly-constructed protocols,
// for every task kind), validation error taxonomy, and the end-to-end
// acceptance invariant — one JSON spec powering batch estimation, a
// stream tenant and the wire API with equal results.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/transport"
)

// roundTrip marshals and unmarshals a spec through JSON.
func roundTrip(t *testing.T, sp core.Spec) core.Spec {
	t.Helper()
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.ParseSpec(data)
	if err != nil {
		t.Fatalf("round-trip of %s: %v", data, err)
	}
	return got
}

func testValues(seed uint64, n int) []float64 {
	r := rng.New(seed)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = stats.Clamp(rng.Normal(r, -0.3, 0.25), -1, 1)
	}
	return vals
}

// TestSpecRoundTripMean: a JSON-round-tripped mean spec estimates the
// exact same Collection bit-identically to a directly-constructed DAP.
func TestSpecRoundTripMean(t *testing.T) {
	sp := roundTrip(t, core.NewSpec(core.MeanTask(),
		core.WithBudget(1, 0.25), core.WithScheme(core.SchemeCEMFStar),
		core.WithEMFMaxIter(80)))
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDAP(core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeCEMFStar, EMFMaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	col, err := d.Collect(rng.New(5), testValues(4, 1500),
		attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Gamma != want.Gamma || got.PoisonedRight != want.PoisonedRight {
		t.Fatalf("spec estimate (%v, %v) != direct (%v, %v)", got.Mean, got.Gamma, want.Mean, want.Gamma)
	}
	for g := range want.GroupMeans {
		if got.GroupMeans[g] != want.GroupMeans[g] || got.Weights[g] != want.Weights[g] {
			t.Fatalf("group %d diverges", g)
		}
	}
}

// TestSpecRoundTripDistribution: same invariant for the SW variant.
func TestSpecRoundTripDistribution(t *testing.T) {
	sp := roundTrip(t, core.NewSpec(core.DistributionTask(),
		core.WithBudget(1, 0.25), core.WithScheme(core.SchemeEMFStar),
		core.WithEMFMaxIter(80)))
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewSWDAP(core.SWParams{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar, EMFMaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(6, 1200)
	for i, v := range vals {
		vals[i] = (v + 1) / 2
	}
	col, err := d.Collect(rng.New(7), vals, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Estimate(col)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Gamma != want.Gamma {
		t.Fatalf("spec (%v, %v) != direct (%v, %v)", got.Mean, got.Gamma, want.Mean, want.Gamma)
	}
	for i := range want.XHat {
		if got.XHat[i] != want.XHat[i] {
			t.Fatalf("xhat[%d] diverges", i)
		}
	}
}

// TestSpecRoundTripFrequency: same invariant for the k-RR variant, via
// both the histogram and the raw-report faces.
func TestSpecRoundTripFrequency(t *testing.T) {
	sp := roundTrip(t, core.NewSpec(core.FrequencyTask(6),
		core.WithBudget(2, 1), core.WithScheme(core.SchemeEMFStar),
		core.WithEMFMaxIter(80)))
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewFreqDAP(core.FreqParams{Eps: 2, Eps0: 1, K: 6, Scheme: core.SchemeEMFStar, EMFMaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	cats := make([]int, 2000)
	for i := range cats {
		cats[i] = r.IntN(3) // skewed to low categories
	}
	col, err := d.CollectFreq(rng.New(9), cats, []int{5}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.EstimateFreq(col)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.EstimateHist(context.Background(), &core.HistCollection{Counts: col.Counts})
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Freqs {
		if got.Freqs[j] != want.Freqs[j] {
			t.Fatalf("freq[%d]: spec %v direct %v", j, got.Freqs[j], want.Freqs[j])
		}
	}
	if len(got.PoisonCats) != len(want.PoisonCats) {
		t.Fatalf("poison cats: %v vs %v", got.PoisonCats, want.PoisonCats)
	}
}

// TestSpecRoundTripVariance: the variance adapter consumes the rng in the
// same order as the §V-D VarianceEstimator, so equal seeds give equal
// results through the round-tripped spec.
func TestSpecRoundTripVariance(t *testing.T) {
	sp := roundTrip(t, core.NewSpec(core.VarianceTask(),
		core.WithBudget(1, 0.25), core.WithScheme(core.SchemeEMFStar),
		core.WithEMFMaxIter(80)))
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(11, 1600)
	direct := &core.VarianceEstimator{Params: core.Params{
		Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar, EMFMaxIter: 80}}
	want, err := direct.Run(rng.New(12), vals, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.(core.Runner).Run(rng.New(12), vals, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Variance != want.Variance || got.SecondMoment != want.SecondMoment {
		t.Fatalf("spec (%v, %v) != direct (%v, %v)", got.Mean, got.Variance, want.Mean, want.Variance)
	}
}

// TestSpecRoundTripBaseline: same invariant for the §IV protocol.
func TestSpecRoundTripBaseline(t *testing.T) {
	sp := roundTrip(t, core.NewSpec(core.BaselineTask(0.125, 0.875),
		core.WithScheme(core.SchemeEMFStar), core.WithEMFMaxIter(80)))
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.NewBaseline(0.125, 0.875, core.SchemeEMFStar)
	if err != nil {
		t.Fatal(err)
	}
	direct.EMFMaxIter = 80
	vals := testValues(13, 1500)
	want, err := direct.Run(rng.New(14), vals, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.(core.Runner).Run(rng.New(14), vals, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Gamma != want.Gamma {
		t.Fatalf("spec (%v, %v) != direct (%v, %v)", got.Mean, got.Gamma, want.Mean, want.Gamma)
	}
}

// TestSpecDefense: a defense spec selects the comparator by name and
// matches the direct function call.
func TestSpecDefense(t *testing.T) {
	sp := roundTrip(t, core.NewSpec(core.MeanTask(),
		core.WithDefense(defense.Spec{Name: "trimming", Frac: 0.5, Side: "right"})))
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := core.CollectPM(rng.New(15), testValues(16, 4000), 1,
		attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(context.Background(), &core.Collection{Groups: [][]float64{reports}})
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Clamp(defense.Trimming(reports, 0.5, true), -1, 1)
	if got.Mean != want {
		t.Fatalf("defense spec %v != direct %v", got.Mean, want)
	}
	// Defenses need raw reports; the histogram face is a typed rejection.
	if _, err := est.EstimateHist(context.Background(), nil); !errors.Is(err, core.ErrBadSpec) {
		t.Fatalf("EstimateHist on defense spec: %v", err)
	}
}

// TestSpecValidation: the ErrBadSpec/ErrDomain taxonomy.
func TestSpecValidation(t *testing.T) {
	bad := []core.Spec{
		{Task: "nope", Eps: 1},
		{Task: core.TaskMean, Eps: -1},
		{Task: core.TaskMean, Eps: 1, Eps0: 2},
		{Task: core.TaskMean, Eps: 1, Scheme: "quantum"},
		{Task: core.TaskMean, Eps: 1, Weights: "vibes"},
		{Task: core.TaskMean, Eps: 1, Mechanism: "sw"},
		{Task: core.TaskFrequency, Eps: 1, K: 1},
		{Task: core.TaskBaseline, EpsAlpha: 0.9, EpsBeta: 0.1},
		{Task: core.TaskMean, Eps: 1, Defense: &defense.Spec{Name: "magic"}},
		{Task: core.TaskMean, Eps: 1, Defense: &defense.Spec{Name: "trimming", Side: "up"}},
		{Task: core.TaskDistribution, Eps: 1, TrimFrac: 1.5},
		{Task: core.TaskMean, Eps: 1, GammaSup: 1},
		{Task: core.TaskMean, Eps: 1, Serve: &core.ServeSpec{Window: "spiral"}},
		{Task: core.TaskMean, Eps: 1, Serve: &core.ServeSpec{Shards: -1}},
	}
	for _, sp := range bad {
		if _, err := core.Build(sp); !errors.Is(err, core.ErrBadSpec) {
			t.Fatalf("spec %+v: err = %v, want ErrBadSpec", sp, err)
		}
	}
	// Domain problems wrap both sentinels.
	_, err := core.Build(core.Spec{Task: core.TaskMean, Eps: 1,
		Domain: &core.DomainSpec{Lo: 2, Hi: 1}})
	if !errors.Is(err, core.ErrBadSpec) || !errors.Is(err, core.ErrDomain) {
		t.Fatalf("inverted domain: %v", err)
	}
	// ParseSpec rejects unknown fields loudly.
	if _, err := core.ParseSpec([]byte(`{"task":"mean","eps":1,"epz":2}`)); !errors.Is(err, core.ErrBadSpec) {
		t.Fatalf("unknown field: %v", err)
	}
}

// TestSpecFiles: every example spec in specs/ parses, validates and
// builds.
func TestSpecFiles(t *testing.T) {
	for _, f := range []string{
		"specs/mean.json", "specs/distribution.json", "specs/frequency.json",
		"specs/variance.json", "specs/baseline.json", "specs/defense-trimming.json",
		"specs/serve.json", "specs/telemetry.json", "specs/attack-bba.json",
		"specs/attack-adaptive-stream.json", "specs/attack-freq-maxgain.json",
	} {
		sp, err := core.LoadSpec(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if _, err := core.Build(sp); err != nil {
			t.Fatalf("%s: Build: %v", f, err)
		}
	}
}

// TestSpecEndToEnd is the acceptance invariant of the task-spec redesign:
// one JSON spec, parsed once, powers (1) batch estimation through
// dap.Build, (2) a stream tenant fed the identical reports, and (3) the
// wire API hosting the same spec as a tenant — and all three return the
// same estimate to 1e-12.
func TestSpecEndToEnd(t *testing.T) {
	const n = 1404
	specJSON := []byte(`{
		"task": "mean",
		"scheme": "emfstar",
		"eps": 1,
		"eps0": 0.25,
		"serve": {"expected_users": 1404, "shards": 1}
	}`)
	sp, err := core.ParseSpec(specJSON)
	if err != nil {
		t.Fatal(err)
	}

	// (1) Batch: simulate a collection and estimate through Build.
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	col, err := est.(core.Collector).Collect(rng.New(20), testValues(21, n),
		attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := est.Estimate(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}

	// (2) Stream tenant from the same spec, fed the same reports at
	// protocol granularity.
	tn, err := stream.NewTenantSpec("e2e", sp)
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(send func(user string, group int, vals []float64) error) {
		t.Helper()
		for g, reports := range col.Groups {
			slots := est.Groups()[g].Reports
			u := 0
			for lo := 0; lo < len(reports); lo += slots {
				hi := min(lo+slots, len(reports))
				user := "g" + strconv.Itoa(g) + "u" + strconv.Itoa(u)
				if err := send(user, g, reports[lo:hi]); err != nil {
					t.Fatal(err)
				}
				u++
			}
		}
	}
	ingest(tn.Ingest)
	snap, err := tn.Estimate(true)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(snap.Result.Mean - batch.Mean); diff > 1e-12 {
		t.Fatalf("stream mean differs from batch by %g", diff)
	}
	if snap.Result.Gamma != batch.Gamma || snap.Result.PoisonedRight != batch.PoisonedRight {
		t.Fatalf("stream probe (%v,%v) != batch (%v,%v)",
			snap.Result.Gamma, snap.Result.PoisonedRight, batch.Gamma, batch.PoisonedRight)
	}

	// (3) Wire: the same spec becomes a tenant over HTTP; the identical
	// reports flow through batched ingest.
	srv, err := transport.NewServerSpec(core.NewSpec(core.MeanTask()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := transport.NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	created, err := client.CreateTenantSpec(ctx, "e2e", sp)
	if err != nil {
		t.Fatal(err)
	}
	if created.Spec.Task != core.TaskMean || created.Spec.Eps != 1 {
		t.Fatalf("wire spec round-trip: %+v", created.Spec)
	}
	tc := client.Tenant("e2e")
	var reqs []transport.ReportRequest
	ingest(func(user string, group int, vals []float64) error {
		reqs = append(reqs, transport.ReportRequest{User: user, Group: group, Values: vals})
		return nil
	})
	res, err := tc.Ingest(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("wire ingest rejected %d: %v", res.Rejected, res.Errors)
	}
	wireEst, err := tc.Estimate(ctx, "1")
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(wireEst.Mean - batch.Mean); diff > 1e-12 {
		t.Fatalf("wire mean differs from batch by %g", diff)
	}
	if wireEst.Gamma != batch.Gamma {
		t.Fatalf("wire gamma %v != batch %v", wireEst.Gamma, batch.Gamma)
	}
}
