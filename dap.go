package dap

import (
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
)

// Core protocol types (see internal/core for full documentation).
type (
	// Params configures a DAP instance.
	Params = core.Params
	// DAP is the multi-group Differential Aggregation Protocol (§V).
	DAP = core.DAP
	// Baseline is the two-budget protocol of §IV.
	Baseline = core.Baseline
	// Estimate is the collector's output.
	Estimate = core.Estimate
	// Collection holds per-group reports.
	Collection = core.Collection
	// Scheme selects EMF, EMF* or CEMF* estimation.
	Scheme = core.Scheme
	// WeightMode selects the inter-group aggregation weights.
	WeightMode = core.WeightMode
	// SWParams and SWDAP are the Square Wave variant (§V-D).
	SWParams = core.SWParams
	// SWDAP is the Square Wave instantiation of the protocol.
	SWDAP = core.SWDAP
	// FreqParams and FreqDAP are the categorical variant (§V-D).
	FreqParams = core.FreqParams
	// FreqDAP is the categorical instantiation of the protocol.
	FreqDAP = core.FreqDAP
	// Group describes one protocol group.
	Group = core.Group
	// VarianceEstimator generalizes DAP to variance estimation (§V-D).
	VarianceEstimator = core.VarianceEstimator
	// VarianceEstimate is its output.
	VarianceEstimate = core.VarianceEstimate
)

// Estimation schemes.
const (
	SchemeEMF      = core.SchemeEMF
	SchemeEMFStar  = core.SchemeEMFStar
	SchemeCEMFStar = core.SchemeCEMFStar
)

// Aggregation weight modes.
const (
	WeightsPaper   = core.WeightsPaper
	WeightsGeneral = core.WeightsGeneral
)

// Protocol constructors.
var (
	// NewDAP builds the numerical mean-estimation protocol over PM.
	NewDAP = core.NewDAP
	// NewBaseline builds the §IV two-budget protocol.
	NewBaseline = core.NewBaseline
	// NewSWDAP builds the Square Wave variant.
	NewSWDAP = core.NewSWDAP
	// NewFreqDAP builds the categorical k-RR variant.
	NewFreqDAP = core.NewFreqDAP
	// PessimisticO computes Theorem 2's pessimistic mean initialization.
	PessimisticO = core.PessimisticO
	// CollectPM gathers a plain single-group PM collection (the input of
	// the Ostrich/Trimming/k-means baselines).
	CollectPM = core.CollectPM
)

// Threat models (see internal/attack).
type (
	// Adversary produces the colluding users' poison reports.
	Adversary = attack.Adversary
	// BBA is the Biased Byzantine Attack of Definition 4.
	BBA = attack.BBA
	// GBA is the two-sided General Byzantine Attack of Definition 2.
	GBA = attack.GBA
	// IMA is the input manipulation attack.
	IMA = attack.IMA
	// Evasion is the §V-D evasion attack on side probing.
	Evasion = attack.Evasion
	// Opportunistic is the §I threshold-hugging attack that defeats
	// trimming.
	Opportunistic = attack.Opportunistic
	// Range is a poison-value range expressed in fractions of C.
	Range = attack.Range
	// Dist is a poison-value distribution.
	Dist = attack.Dist
	// NoAttack is the empty adversary.
	NoAttack = attack.None
)

// Poison distributions.
const (
	DistUniform  = attack.DistUniform
	DistGaussian = attack.DistGaussian
	DistBeta16   = attack.DistBeta16
	DistBeta61   = attack.DistBeta61
)

// Attack sides.
const (
	SideLeft  = attack.SideLeft
	SideRight = attack.SideRight
)

// The paper's standard poison ranges.
var (
	RangeHighQuarter = attack.RangeHighQuarter
	RangeHighHalf    = attack.RangeHighHalf
	RangeLowHalf     = attack.RangeLowHalf
	RangeFull        = attack.RangeFull

	// NewBBA builds a right-side biased attack.
	NewBBA = attack.NewBBA
	// ReduceToBBA constructively reduces a GBA to an equivalent BBA
	// (Theorem 1).
	ReduceToBBA = attack.ReduceToBBA
)

// Comparator defenses (see internal/defense).
var (
	// Ostrich averages all reports, ignoring attackers.
	Ostrich = defense.Ostrich
	// Trimming removes a fraction from the poisoned side.
	Trimming = defense.Trimming
	// Boxplot filters outliers by the IQR rule.
	Boxplot = defense.Boxplot
)

// KMeansDefense is the subset-sampling defense of [38].
type KMeansDefense = defense.KMeansDefense

// IForestDefense filters reports by isolation-forest anomaly score.
type IForestDefense = defense.IForestDefense

// Datasets used in the paper's evaluation (see internal/dataset).
type (
	// Dataset is a numerical dataset normalized to [−1, 1].
	Dataset = dataset.Numeric
	// CategoricalDataset is a categorical dataset.
	CategoricalDataset = dataset.Categorical
)

// Dataset constructors.
var (
	Beta25     = dataset.Beta25
	Beta52     = dataset.Beta52
	Taxi       = dataset.Taxi
	Retirement = dataset.Retirement
	COVID19    = dataset.COVID19
	// DatasetByName builds a dataset from its paper name.
	DatasetByName = dataset.ByName
)
