package dap

import (
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/privacy"
)

// ---------------------------------------------------------------------------
// The task-spec API: one declarative Spec, one Build call, one Estimator
// surface and one Result type across batch estimation, stream tenants,
// the wire API and the CLIs. See doc.go for the quick start and DESIGN.md
// for the old-API → new-API migration table.
// ---------------------------------------------------------------------------

// Task-spec types.
type (
	// Spec is the JSON-serializable description of one aggregation task.
	Spec = core.Spec
	// TaskKind names what a task estimates.
	TaskKind = core.TaskKind
	// Option mutates a Spec under construction (see NewSpec).
	Option = core.Option
	// DomainSpec declares the raw-value units of the estimated quantity.
	DomainSpec = core.DomainSpec
	// ServeSpec carries a spec's serving-layer parameters (stream tenants).
	ServeSpec = core.ServeSpec
	// DefenseSpec selects a comparator defense by name inside a Spec.
	DefenseSpec = defense.Spec
	// Estimator is the unified estimation surface returned by Build.
	Estimator = core.Estimator
	// Result is the unified collector output of every task kind.
	Result = core.Result
	// Runner is the numeric simulation entry point (Collect + Estimate).
	Runner = core.Runner
	// CatRunner is the categorical simulation entry point.
	CatRunner = core.CatRunner
	// Collector simulates the user side of a task into a Collection.
	Collector = core.Collector
	// HistCollection is the histogram sufficient statistic consumed by
	// Estimator.EstimateHist.
	HistCollection = core.HistCollection
)

// Task kinds.
const (
	TaskMean         = core.TaskMean
	TaskDistribution = core.TaskDistribution
	TaskFrequency    = core.TaskFrequency
	TaskVariance     = core.TaskVariance
	TaskBaseline     = core.TaskBaseline
)

// Spec construction and building.
var (
	// NewSpec builds a Spec from a task selector and options:
	//
	//	sp := dap.NewSpec(dap.Mean(), dap.WithScheme(dap.SchemeCEMFStar),
	//	    dap.WithBudget(1, 1.0/16))
	//	est, err := dap.Build(sp)
	NewSpec = core.NewSpec
	// Build validates a Spec and returns its Estimator — the single
	// construction path shared with stream tenants, the wire API and the
	// CLIs.
	Build = core.Build
	// ParseSpec decodes and validates a JSON spec (unknown fields
	// rejected).
	ParseSpec = core.ParseSpec
	// LoadSpec reads and parses a JSON spec file.
	LoadSpec = core.LoadSpec
	// ParseTask parses a task kind name.
	ParseTask = core.ParseTask
	// Tasks lists the task kinds.
	Tasks = core.Tasks

	// Task selectors for NewSpec. BaselineTask keeps the long name because
	// Baseline already names the §IV protocol type below.
	Mean         = core.MeanTask
	Distribution = core.DistributionTask
	Frequency    = core.FrequencyTask
	Variance     = core.VarianceTask
	BaselineTask = core.BaselineTask

	// Spec options.
	WithBudget         = core.WithBudget
	WithScheme         = core.WithScheme
	WithWeights        = core.WithWeights
	WithDomain         = core.WithDomain
	WithDefense        = core.WithDefense
	WithOPrime         = core.WithOPrime
	WithAutoOPrime     = core.WithAutoOPrime
	WithSuppressFactor = core.WithSuppressFactor
	WithEMFMaxIter     = core.WithEMFMaxIter
	WithTrimFrac       = core.WithTrimFrac
	WithServe          = core.WithServe
	WithAttack         = core.WithAttack
)

// Typed error taxonomy. Branch with errors.Is.
var (
	// ErrBadSpec marks a task spec that fails validation.
	ErrBadSpec = core.ErrBadSpec
	// ErrDomain marks a value outside the domain a spec or mechanism
	// prescribes.
	ErrDomain = core.ErrDomain
	// ErrBadCollection marks a collection whose shape does not match the
	// spec that built it: wrong group count, missing histograms or sums,
	// empty groups, mismatched arities.
	ErrBadCollection = core.ErrBadCollection
	// ErrBudgetExhausted marks a user whose privacy budget cannot cover a
	// requested spend (returned by the serving layer's accountant).
	ErrBudgetExhausted = privacy.ErrBudgetExceeded
)

// NewDefense builds a comparator defense by name ("ostrich", "trimming",
// "kmeans", "boxplot", "iforest") — the registry behind WithDefense.
var NewDefense = defense.New

// Defense is the single interface every comparator defense implements.
type Defense = defense.Defense

// ---------------------------------------------------------------------------
// Protocol-level API. The constructors remain for direct protocol access
// and for code written against earlier releases; new code should describe
// tasks with a Spec and call Build.
// ---------------------------------------------------------------------------

// Core protocol types (see internal/core for full documentation).
type (
	// Params configures a DAP instance.
	//
	// Deprecated: describe the task with a Spec instead.
	Params = core.Params
	// DAP is the multi-group Differential Aggregation Protocol (§V).
	DAP = core.DAP
	// Baseline is the two-budget protocol of §IV.
	Baseline = core.Baseline
	// Estimate is the mean-protocol collector output.
	//
	// Deprecated: Build's Estimator returns the unified Result.
	Estimate = core.Estimate
	// Collection holds per-group reports.
	Collection = core.Collection
	// Scheme selects EMF, EMF* or CEMF* estimation.
	Scheme = core.Scheme
	// WeightMode selects the inter-group aggregation weights.
	WeightMode = core.WeightMode
	// SWParams configures the Square Wave variant (§V-D).
	//
	// Deprecated: describe the task with a Spec instead.
	SWParams = core.SWParams
	// SWDAP is the Square Wave instantiation of the protocol.
	SWDAP = core.SWDAP
	// SWEstimate is the SW collector output.
	//
	// Deprecated: Build's Estimator returns the unified Result.
	SWEstimate = core.SWEstimate
	// FreqParams configures the categorical variant (§V-D).
	//
	// Deprecated: describe the task with a Spec instead.
	FreqParams = core.FreqParams
	// FreqDAP is the categorical instantiation of the protocol.
	FreqDAP = core.FreqDAP
	// FreqEstimate is the categorical collector output.
	//
	// Deprecated: Build's Estimator returns the unified Result.
	FreqEstimate = core.FreqEstimate
	// Group describes one protocol group.
	Group = core.Group
	// VarianceEstimator generalizes DAP to variance estimation (§V-D).
	//
	// Deprecated: build a Spec with Variance() instead.
	VarianceEstimator = core.VarianceEstimator
	// VarianceEstimate is its output.
	//
	// Deprecated: Build's Estimator returns the unified Result.
	VarianceEstimate = core.VarianceEstimate
)

// Estimation schemes.
const (
	SchemeEMF      = core.SchemeEMF
	SchemeEMFStar  = core.SchemeEMFStar
	SchemeCEMFStar = core.SchemeCEMFStar
)

// Aggregation weight modes.
const (
	WeightsPaper   = core.WeightsPaper
	WeightsGeneral = core.WeightsGeneral
)

// Scheme and weight-mode parsing.
var (
	ParseScheme     = core.ParseScheme
	ParseWeightMode = core.ParseWeightMode
)

// Protocol constructors.
var (
	// NewDAP builds the numerical mean-estimation protocol over PM.
	//
	// Deprecated: use Build(NewSpec(Mean(), ...)).
	NewDAP = core.NewDAP
	// NewBaseline builds the §IV two-budget protocol.
	//
	// Deprecated: use Build(NewSpec(BaselineTask(α, β), ...)).
	NewBaseline = core.NewBaseline
	// NewSWDAP builds the Square Wave variant.
	//
	// Deprecated: use Build(NewSpec(Distribution(), ...)).
	NewSWDAP = core.NewSWDAP
	// NewFreqDAP builds the categorical k-RR variant.
	//
	// Deprecated: use Build(NewSpec(Frequency(k), ...)).
	NewFreqDAP = core.NewFreqDAP
	// PessimisticO computes Theorem 2's pessimistic mean initialization.
	PessimisticO = core.PessimisticO
	// CollectPM gathers a plain single-group PM collection (the input of
	// the Ostrich/Trimming/k-means baselines).
	CollectPM = core.CollectPM
)

// Threat models (see internal/attack).
type (
	// Adversary produces the colluding users' poison reports.
	Adversary = attack.Adversary
	// BBA is the Biased Byzantine Attack of Definition 4.
	BBA = attack.BBA
	// GBA is the two-sided General Byzantine Attack of Definition 2.
	GBA = attack.GBA
	// IMA is the input manipulation attack.
	IMA = attack.IMA
	// Evasion is the §V-D evasion attack on side probing.
	Evasion = attack.Evasion
	// Opportunistic is the §I threshold-hugging attack that defeats
	// trimming.
	Opportunistic = attack.Opportunistic
	// Range is a poison-value range expressed in fractions of C.
	Range = attack.Range
	// Dist is a poison-value distribution.
	Dist = attack.Dist
	// NoAttack is the empty adversary.
	NoAttack = attack.None
	// AttackSpec selects an adversary by name inside a Spec (the threat
	// side's mirror of DefenseSpec); NewAttack builds it.
	AttackSpec = attack.Spec
	// Targeted injects reports uniformly among chosen categories
	// (frequency task).
	Targeted = attack.Targeted
	// MaxGain concentrates all injected mass on the top categories
	// (frequency task).
	MaxGain = attack.MaxGain
	// DistPoison reshapes the reconstructed distribution with in-range
	// poison drawn from a chosen distribution (SW task).
	DistPoison = attack.DistPoison
	// SWTop is the Fig. 8 out-of-range attack on the SW output domain.
	SWTop = attack.SWTop
	// Dropout drops a fraction of the poison report slots (colluder
	// dropout).
	Dropout = attack.Dropout
	// Hetero varies the colluding fraction per protocol group.
	Hetero = attack.Hetero
	// Ramp escalates the active poison fraction across epochs.
	Ramp = attack.Ramp
	// Burst poisons in epoch-synchronized bursts.
	Burst = attack.Burst
	// CatAdvRunner is the categorical simulation entry point under a
	// registry adversary.
	CatAdvRunner = core.CatAdvRunner
)

// Poison distributions.
const (
	DistUniform  = attack.DistUniform
	DistGaussian = attack.DistGaussian
	DistBeta16   = attack.DistBeta16
	DistBeta61   = attack.DistBeta61
)

// Attack sides.
const (
	SideLeft  = attack.SideLeft
	SideRight = attack.SideRight
)

// The paper's standard poison ranges.
var (
	RangeHighQuarter = attack.RangeHighQuarter
	RangeHighHalf    = attack.RangeHighHalf
	RangeLowHalf     = attack.RangeLowHalf
	RangeFull        = attack.RangeFull

	// NewBBA builds a right-side biased attack.
	NewBBA = attack.NewBBA
	// ReduceToBBA constructively reduces a GBA to an equivalent BBA
	// (Theorem 1).
	ReduceToBBA = attack.ReduceToBBA

	// NewAttack builds an adversary from an AttackSpec — the registry
	// behind a Spec's attack section (mirroring NewDefense). Unknown names
	// fail with ErrUnknownAttack.
	NewAttack = attack.New
	// AttackNames lists the registered attack names.
	AttackNames = attack.Names
	// ParseAttackDist parses a poison-distribution name.
	ParseAttackDist = attack.ParseDist
	// ParseAttackSide parses a poisoned-side name.
	ParseAttackSide = attack.ParseSide
)

// ErrUnknownAttack marks an attack name outside AttackNames (wrapped into
// ErrBadSpec during spec validation).
var ErrUnknownAttack = attack.ErrUnknown

// Comparator defenses (see internal/defense). The function forms remain;
// NewDefense (or a Spec with WithDefense) selects the same defenses by
// name behind the Defense interface.
var (
	// Ostrich averages all reports, ignoring attackers.
	Ostrich = defense.Ostrich
	// Trimming removes a fraction from the poisoned side.
	Trimming = defense.Trimming
	// Boxplot filters outliers by the IQR rule.
	Boxplot = defense.Boxplot
)

// KMeansDefense is the subset-sampling defense of [38].
type KMeansDefense = defense.KMeansDefense

// IForestDefense filters reports by isolation-forest anomaly score.
type IForestDefense = defense.IForestDefense

// Datasets used in the paper's evaluation (see internal/dataset).
type (
	// Dataset is a numerical dataset normalized to [−1, 1].
	Dataset = dataset.Numeric
	// CategoricalDataset is a categorical dataset.
	CategoricalDataset = dataset.Categorical
)

// Dataset constructors.
var (
	Beta25     = dataset.Beta25
	Beta52     = dataset.Beta52
	Taxi       = dataset.Taxi
	Retirement = dataset.Retirement
	COVID19    = dataset.COVID19
	// DatasetByName builds a dataset from its paper name.
	DatasetByName = dataset.ByName
)
