// Command dapbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dapbench -exp fig6 -n 200000 -trials 20
//	dapbench -exp all -csv > results.csv
//	dapbench -list
//
// Every run is deterministic for a fixed -seed and GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id ("+strings.Join(bench.Experiments(), ", ")+") or 'all'")
		n       = flag.Int("n", 20000, "users per collection (paper uses ~1e6)")
		trials  = flag.Int("trials", 3, "Monte-Carlo repeats per cell")
		seed    = flag.Uint64("seed", 1, "base random seed")
		maxIter = flag.Int("maxiter", 200, "EM iteration cap")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}
	cfg := bench.Config{N: *n, Trials: *trials, Seed: *seed, EMFMaxIter: *maxIter}
	start := time.Now()
	var (
		tables []*bench.Table
		err    error
	)
	if *exp == "all" {
		tables, err = bench.RunAll(cfg)
	} else {
		tables, err = bench.Run(*exp, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dapbench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	fmt.Fprintf(os.Stderr, "dapbench: %s done in %s (N=%d, trials=%d, seed=%d)\n",
		*exp, time.Since(start).Round(time.Millisecond), *n, *trials, *seed)
}
