// Command dapbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dapbench -exp fig6 -n 200000 -trials 20
//	dapbench -exp all -csv > results.csv
//	dapbench -exp all -bench-json BENCH_$(date +%F).json
//	dapbench -list
//
// Every run is deterministic for a fixed -seed, independent of -workers
// and GOMAXPROCS: experiment cells and Monte-Carlo trials own fixed rng
// streams and results are collected in table order.
//
// With -bench-json, a machine-readable timing record (per-experiment and
// total wall-clock milliseconds plus the run configuration) is written to
// the given path, so the performance trajectory of the harness can be
// tracked commit over commit; see EXPERIMENTS.md for the recorded history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// benchRecord is the BENCH_*.json schema.
type benchRecord struct {
	Schema      int              `json:"schema"`
	Date        string           `json:"date"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	N           int              `json:"n"`
	Trials      int              `json:"trials"`
	Seed        uint64           `json:"seed"`
	MaxIter     int              `json:"emf_max_iter"`
	Workers     int              `json:"workers"`
	Experiments map[string]int64 `json:"experiment_wall_ms"`
	TotalMs     int64            `json:"total_wall_ms"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id ("+strings.Join(bench.Experiments(), ", ")+") or 'all'")
		n       = flag.Int("n", 20000, "users per collection (paper uses ~1e6)")
		trials  = flag.Int("trials", 3, "Monte-Carlo repeats per cell")
		seed    = flag.Uint64("seed", 1, "base random seed")
		maxIter = flag.Int("maxiter", 200, "EM iteration cap")
		workers = flag.Int("workers", 0, "concurrent experiment cells (0 = GOMAXPROCS)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.String("bench-json", "", "write a machine-readable timing record to this path")
		specF   = flag.String("spec", "", "task spec file for the 'spec' experiment (sweeps the spec's estimator over the γ grid)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	)
	flag.Parse()
	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}
	// Profiles are flushed through stopProfiles rather than defers: every
	// failure path exits via fatal, and os.Exit would otherwise discard
	// the profile exactly when a failing run is being investigated.
	var profileStops []func()
	stopProfiles := func() {
		for i := len(profileStops) - 1; i >= 0; i-- {
			profileStops[i]()
		}
		profileStops = nil
	}
	fatal := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"dapbench:"}, args...)...)
		stopProfiles()
		os.Exit(1)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		profileStops = append(profileStops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProf != "" {
		profileStops = append(profileStops, func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dapbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dapbench:", err)
			}
		})
	}
	// The harness allocates short-lived per-trial buffers at a high rate;
	// relaxing the GC target trades a bounded amount of heap for wall-clock.
	debug.SetGCPercent(400)
	cfg := bench.Config{N: *n, Trials: *trials, Seed: *seed, EMFMaxIter: *maxIter, Workers: *workers}
	if *specF != "" {
		sp, err := core.LoadSpec(*specF)
		if err != nil {
			fatal(err)
		}
		cfg.Spec = &sp
		if *exp == "all" {
			*exp = "spec"
		}
	}
	names := []string{*exp}
	if *exp == "all" {
		// The spec experiment needs a -spec file, and the red-team matrix
		// has its own runner (cmd/dapredteam) — the paper experiments alone
		// make up "all", keeping BENCH_*.json totals comparable across
		// releases.
		names = names[:0]
		for _, name := range bench.Experiments() {
			if name != "spec" && name != "matrix" {
				names = append(names, name)
			}
		}
	}
	rec := benchRecord{
		Schema:      1,
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		N:           *n,
		Trials:      *trials,
		Seed:        *seed,
		MaxIter:     *maxIter,
		Workers:     *workers,
		Experiments: make(map[string]int64, len(names)),
	}
	start := time.Now()
	for _, name := range names {
		expStart := time.Now()
		tables, err := bench.Run(name, cfg)
		if err != nil {
			fatal(err)
		}
		rec.Experiments[name] = time.Since(expStart).Milliseconds()
		for _, t := range tables {
			if *csv {
				t.CSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
	}
	rec.TotalMs = time.Since(start).Milliseconds()
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal("encode timing record:", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal("write timing record:", err)
		}
		fmt.Fprintf(os.Stderr, "dapbench: timing record written to %s\n", *jsonOut)
	}
	fmt.Fprintf(os.Stderr, "dapbench: %s done in %s (N=%d, trials=%d, seed=%d)\n",
		*exp, time.Since(start).Round(time.Millisecond), *n, *trials, *seed)
	stopProfiles()
}
