// Command dapsim runs a single protocol round against a configurable
// attack and prints the full collector diagnostics next to the Ostrich
// and Trimming comparator defenses.
//
// The protocol is described by a task spec — loaded from -spec file.json
// (the same JSON the collector, stream engine and batch API consume) with
// the protocol flags as overrides, or assembled purely from flags:
//
//	dapsim -dataset Taxi -eps 1 -scheme cemf -gamma 0.25 -range "[C/2,C]"
//	dapsim -spec specs/variance.json -gamma 0.1
//	dapsim -spec specs/frequency.json -dataset COVID19 -poison-cats 10,11,12
//
// Every task kind runs: mean, distribution, variance and baseline over
// the numerical datasets; frequency over a categorical dataset with
// -poison-cats selecting the injected categories.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/rng"
	"repro/internal/specflag"
	"repro/internal/stats"
)

func main() {
	var (
		dsName   = flag.String("dataset", "Taxi", "dataset: Beta(2,5), Beta(5,2), Taxi, Retirement; COVID19 for task frequency")
		n        = flag.Int("n", 100000, "number of users")
		gamma    = flag.Float64("gamma", 0.25, "Byzantine proportion γ")
		rangeF   = flag.String("range", "[C/2,C]", "poison range: [3C/4,C], [C/2,C], [O,C/2], [O,C]")
		distF    = flag.String("dist", "uniform", "poison distribution: uniform, gaussian, beta16, beta61")
		seed     = flag.Uint64("seed", 1, "random seed")
		evasionA = flag.Float64("evasion", -1, "if >= 0, run the evasion attack with this fraction instead of BBA")
		imaG     = flag.Float64("ima", math.NaN(), "if set, run the input manipulation attack with this poison input g")
		poisonC  = flag.String("poison-cats", "0", "comma-separated poisoned categories (task frequency)")
	)
	sf := specflag.New(flag.CommandLine, core.NewSpec(core.MeanTask(),
		core.WithScheme(core.SchemeCEMFStar)))
	flag.Parse()

	sp, err := sf.Resolve()
	fatal(err)
	est, err := core.Build(sp)
	fatal(err)

	r := rng.New(*seed)
	if sp.Task == core.TaskFrequency {
		runFrequency(est, sp, *dsName, *n, *poisonC, *gamma, *seed)
		return
	}

	ds, err := dataset.ByName(r, *dsName, *n)
	fatal(err)
	values := ds.Values
	trueMean := ds.TrueMean()
	if sp.Task == core.TaskDistribution {
		// SW inputs live in [0,1]; map the dataset's [−1,1] values.
		values = make([]float64, len(ds.Values))
		for i, v := range ds.Values {
			values[i] = (v + 1) / 2
		}
		trueMean = (trueMean + 1) / 2
	}

	// The spec's attack section (or -attack) selects the adversary through
	// the registry; without one the legacy attack flags assemble a BBA /
	// IMA / Evasion directly.
	adv, err := sp.Adversary()
	fatal(err)
	if sp.Attack != nil && sp.Attack.EpochAdaptive() {
		fmt.Fprintf(os.Stderr, "dapsim: note: attack %q is epoch-adaptive; this one-shot round runs at epoch 0 (ramp frac0 / burst on-phase) — use daploadgen -attack-epochs for the full schedule\n", sp.Attack.Name)
	}
	if adv == nil {
		switch {
		case *evasionA >= 0:
			adv = &attack.Evasion{A: *evasionA}
		case !math.IsNaN(*imaG):
			adv = &attack.IMA{G: *imaG}
		default:
			rg, ok := attack.RangeByName(*rangeF)
			if !ok {
				fatal(fmt.Errorf("unknown range %q", *rangeF))
			}
			dist, err := attack.ParseDist(*distF)
			fatal(err)
			adv = attack.NewBBA(rg, dist)
		}
	}

	runner, ok := est.(core.Runner)
	if !ok {
		fatal(fmt.Errorf("task %q has no simulation entry point", sp.Task))
	}
	res, err := runner.Run(r, values, adv, *gamma)
	fatal(err)

	// Comparator defenses on a plain single-group collection at the same
	// budget, selected through the defense registry.
	reports, err := core.CollectPM(rng.New(*seed+1), ds.Values, sp.Eps, adv, *gamma, sp.OPrime)
	fatal(err)
	comparators := map[string]float64{}
	for _, name := range []string{"ostrich", "trimming"} {
		d, err := defense.New(defense.Spec{Name: name})
		fatal(err)
		m, err := d.Estimate(rng.New(*seed+2), reports, res.PoisonedRight)
		fatal(err)
		comparators[name] = m
	}

	fmt.Printf("dataset        %s (N=%d)\n", ds.Name, ds.N())
	fmt.Printf("attack         %s, γ=%g\n", adv.Name(), *gamma)
	fmt.Printf("task           %s over %s, scheme %s, ε=%g, ε0=%g, %d groups\n",
		sp.Task, sp.Mechanism, sp.Scheme, sp.Eps, sp.Eps0, len(est.Groups()))
	fmt.Printf("true mean      %+.6f\n", trueMean)
	fmt.Printf("estimate       %+.6f  (error %+.2e)\n", res.Mean, res.Mean-trueMean)
	if sp.Task == core.TaskVariance {
		trueVar := stats.Variance(values)
		fmt.Printf("variance       %.6f  (true %.6f, error %+.2e)\n", res.Variance, trueVar, res.Variance-trueVar)
		fmt.Printf("second moment  %.6f\n", res.SecondMoment)
	}
	if sp.Domain != nil {
		fmt.Printf("in units       %+.6f  (domain [%g, %g])\n",
			sp.FromUnit(res.Mean), sp.Domain.Lo, sp.Domain.Hi)
	}
	fmt.Printf("Ostrich        %+.6f  (error %+.2e)\n", comparators["ostrich"], comparators["ostrich"]-ds.TrueMean())
	fmt.Printf("Trimming       %+.6f  (error %+.2e)\n", comparators["trimming"], comparators["trimming"]-ds.TrueMean())
	fmt.Printf("probed side    %s\n", sideName(res.PoisonedRight))
	fmt.Printf("probed γ̂       %.4f\n", res.Gamma)
	if res.VarMin > 0 {
		fmt.Printf("min variance   %.3e\n", res.VarMin)
	}
	if len(res.GroupMeans) == len(est.Groups()) && len(res.Weights) == len(res.GroupMeans) {
		fmt.Println("group  ε_t      reports/user  M_t        w_t      n̂_t")
		for t, g := range est.Groups() {
			nhat := math.NaN()
			if t < len(res.NHat) {
				nhat = res.NHat[t]
			}
			fmt.Printf("%5d  %-8.4g %-13d %+.5f  %.4f  %.0f\n",
				t, g.Eps, g.Reports, res.GroupMeans[t], res.Weights[t], nhat)
		}
	}
}

// runFrequency runs a categorical round. A spec attack section selects
// the adversary from the registry; otherwise -poison-cats drives the
// historical direct-injection attack.
func runFrequency(est core.Estimator, sp core.Spec, dsName string, n int, poisonC string, gamma float64, seed uint64) {
	r := rng.New(seed)
	if !strings.EqualFold(dsName, "COVID19") {
		fatal(fmt.Errorf("task frequency needs a categorical dataset (use -dataset COVID19)"))
	}
	cov := dataset.COVID19()
	if sp.K != cov.K() {
		fatal(fmt.Errorf("spec has k=%d but %s has %d categories", sp.K, cov.Name, cov.K()))
	}
	cats := cov.Sample(r, n)
	adv, err := sp.Adversary()
	fatal(err)
	if sp.Attack != nil && sp.Attack.EpochAdaptive() {
		fmt.Fprintf(os.Stderr, "dapsim: note: attack %q is epoch-adaptive; this one-shot round runs at epoch 0 (ramp frac0 / burst on-phase) — use daploadgen -attack-epochs for the full schedule\n", sp.Attack.Name)
	}
	var res *core.Result
	var attackLabel string
	if adv != nil {
		runner, ok := est.(core.CatAdvRunner)
		if !ok {
			fatal(fmt.Errorf("task %q has no categorical adversary entry point", sp.Task))
		}
		res, err = runner.RunCatsAdv(r, cats, adv, gamma)
		fatal(err)
		attackLabel = fmt.Sprintf("%s, γ=%g", adv.Name(), gamma)
	} else {
		poison, err := parseCats(poisonC)
		fatal(err)
		runner, ok := est.(core.CatRunner)
		if !ok {
			fatal(fmt.Errorf("task %q has no categorical simulation entry point", sp.Task))
		}
		res, err = runner.RunCats(r, cats, poison, gamma)
		fatal(err)
		attackLabel = fmt.Sprintf("direct injection into %v, γ=%g", poison, gamma)
	}
	trueFreqs := cov.Freqs()
	fmt.Printf("dataset        %s (N=%d, K=%d)\n", cov.Name, n, cov.K())
	fmt.Printf("attack         %s\n", attackLabel)
	fmt.Printf("task           %s over %s, scheme %s, ε=%g, ε0=%g\n",
		sp.Task, sp.Mechanism, sp.Scheme, sp.Eps, sp.Eps0)
	fmt.Printf("probed cats    %v\n", res.PoisonCats)
	fmt.Printf("probed γ̂       %.4f\n", res.Gamma)
	var mse float64
	for j := range trueFreqs {
		d := res.Freqs[j] - trueFreqs[j]
		mse += d * d
	}
	fmt.Printf("frequency MSE  %.3e\n", mse/float64(len(trueFreqs)))
}

func parseCats(s string) ([]int, error) {
	var cats []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		c, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad poison category %q", f)
		}
		cats = append(cats, c)
	}
	return cats, nil
}

func sideName(right bool) string {
	if right {
		return "right"
	}
	return "left"
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dapsim:", err)
		os.Exit(1)
	}
}
