// Command dapsim runs a single DAP round against a configurable attack
// and prints the full collector diagnostics next to the Ostrich and
// Trimming baselines.
//
// Usage:
//
//	dapsim -dataset Taxi -eps 1 -scheme cemf -gamma 0.25 -range "[C/2,C]"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/rng"
)

func main() {
	var (
		dsName   = flag.String("dataset", "Taxi", "dataset: Beta(2,5), Beta(5,2), Taxi, Retirement")
		n        = flag.Int("n", 100000, "number of users")
		eps      = flag.Float64("eps", 1, "total privacy budget ε")
		eps0     = flag.Float64("eps0", 1.0/16, "minimum group budget ε0")
		schemeF  = flag.String("scheme", "cemf", "estimation scheme: emf, emfstar, cemf")
		gamma    = flag.Float64("gamma", 0.25, "Byzantine proportion γ")
		rangeF   = flag.String("range", "[C/2,C]", "poison range: [3C/4,C], [C/2,C], [O,C/2], [O,C]")
		distF    = flag.String("dist", "uniform", "poison distribution: uniform, gaussian, beta16, beta61")
		seed     = flag.Uint64("seed", 1, "random seed")
		evasionA = flag.Float64("evasion", -1, "if >= 0, run the evasion attack with this fraction instead of BBA")
		imaG     = flag.Float64("ima", math.NaN(), "if set, run the input manipulation attack with this poison input g")
	)
	flag.Parse()

	scheme, err := parseScheme(*schemeF)
	fatal(err)
	dist, err := parseDist(*distF)
	fatal(err)

	r := rng.New(*seed)
	ds, err := dataset.ByName(r, *dsName, *n)
	fatal(err)
	trueMean := ds.TrueMean()

	var adv attack.Adversary
	switch {
	case *evasionA >= 0:
		adv = &attack.Evasion{A: *evasionA}
	case !math.IsNaN(*imaG):
		adv = &attack.IMA{G: *imaG}
	default:
		rg, ok := attack.RangeByName(*rangeF)
		if !ok {
			fatal(fmt.Errorf("unknown range %q", *rangeF))
		}
		adv = attack.NewBBA(rg, dist)
	}

	d, err := core.NewDAP(core.Params{Eps: *eps, Eps0: *eps0, Scheme: scheme})
	fatal(err)
	est, err := d.Run(r, ds.Values, adv, *gamma)
	fatal(err)

	reports, err := core.CollectPM(rng.New(*seed+1), ds.Values, *eps, adv, *gamma, 0)
	fatal(err)
	ostrich := defense.Ostrich(reports)
	trimmed := defense.Trimming(reports, 0.5, est.PoisonedRight)

	fmt.Printf("dataset        %s (N=%d)\n", ds.Name, ds.N())
	fmt.Printf("attack         %s, γ=%g\n", adv.Name(), *gamma)
	fmt.Printf("protocol       DAP/%s, ε=%g, ε0=%g, h=%d groups\n", scheme, *eps, *eps0, d.H())
	fmt.Printf("true mean      %+.6f\n", trueMean)
	fmt.Printf("DAP estimate   %+.6f  (error %+.2e)\n", est.Mean, est.Mean-trueMean)
	fmt.Printf("Ostrich        %+.6f  (error %+.2e)\n", ostrich, ostrich-trueMean)
	fmt.Printf("Trimming       %+.6f  (error %+.2e)\n", trimmed, trimmed-trueMean)
	fmt.Printf("probed side    %s\n", sideName(est.PoisonedRight))
	fmt.Printf("probed γ̂       %.4f\n", est.Gamma)
	fmt.Printf("min variance   %.3e\n", est.VarMin)
	fmt.Println("group  ε_t      reports/user  M_t        w_t      n̂_t")
	for t, g := range d.Groups() {
		fmt.Printf("%5d  %-8.4g %-13d %+.5f  %.4f  %.0f\n",
			t, g.Eps, g.Reports, est.GroupMeans[t], est.Weights[t], est.NHat[t])
	}
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "emf":
		return core.SchemeEMF, nil
	case "emfstar", "emf*":
		return core.SchemeEMFStar, nil
	case "cemf", "cemf*", "cemfstar":
		return core.SchemeCEMFStar, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseDist(s string) (attack.Dist, error) {
	switch s {
	case "uniform":
		return attack.DistUniform, nil
	case "gaussian":
		return attack.DistGaussian, nil
	case "beta16":
		return attack.DistBeta16, nil
	case "beta61":
		return attack.DistBeta61, nil
	}
	return 0, fmt.Errorf("unknown distribution %q", s)
}

func sideName(right bool) string {
	if right {
		return "right"
	}
	return "left"
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dapsim:", err)
		os.Exit(1)
	}
}
