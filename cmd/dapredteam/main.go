// Command dapredteam runs the red-team robustness matrix: every attack
// variant in the standard battery (plus any extra registry attacks named
// on the command line) against every estimation scheme, on the mean and
// frequency tasks, and emits the results as markdown and/or a
// machine-readable JSON record.
//
// Usage:
//
//	dapredteam -n 20000 -trials 3 -gamma 0.25
//	dapredteam -json matrix.json -md matrix.md
//	dapredteam -attacks bba,ima,opportunistic
//
// Every run is deterministic for a fixed -seed, independent of -workers:
// each (task, attack) cell owns a fixed rng stream and rows are collected
// in battery order. The scheme rows of a cell share one collection per
// trial, so the matrix is a paired comparison on identical data.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/specflag"
)

func main() {
	var (
		n       = flag.Int("n", 20000, "users per collection")
		trials  = flag.Int("trials", 3, "Monte-Carlo repeats per cell")
		seed    = flag.Uint64("seed", 1, "base random seed")
		gamma   = flag.Float64("gamma", 0.25, "Byzantine proportion for every attacked cell")
		maxIter = flag.Int("maxiter", 200, "EM iteration cap")
		workers = flag.Int("workers", 0, "concurrent matrix cells (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list the attack battery and exit")
		jsonOut = flag.String("json", "", "write the machine-readable matrix record to this path")
		mdOut   = flag.String("md", "", "write the markdown report to this path (default: stdout)")
	)
	attacks := flag.String("attacks", "", "extra numeric registry attacks appended to the battery (comma-separated names, or @file.json / inline JSON per entry)")
	flag.Parse()

	battery := bench.MatrixAttacks()
	if *list {
		for _, na := range battery {
			fmt.Printf("%-22s %s\n", na.Label, na.Spec.Name)
		}
		for _, na := range bench.MatrixFreqAttacks() {
			fmt.Printf("%-22s %s (frequency)\n", na.Label, na.Spec.Name)
		}
		return
	}
	fatal := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dapredteam:", err)
			os.Exit(1)
		}
	}
	var extra []bench.NamedAttack
	for _, s := range strings.Split(*attacks, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		sp, err := specflag.ParseAttack(s)
		fatal(err)
		extra = append(extra, bench.NamedAttack{Label: s, Spec: *sp})
	}

	cfg := bench.Config{N: *n, Trials: *trials, Seed: *seed, EMFMaxIter: *maxIter, Workers: *workers}
	start := time.Now()
	rep, err := bench.RunMatrixExtra(cfg, *gamma, extra)
	fatal(err)

	if *jsonOut != "" {
		record := struct {
			Date string `json:"date"`
			*bench.MatrixReport
		}{time.Now().UTC().Format(time.RFC3339), rep}
		data, err := json.MarshalIndent(record, "", "  ")
		fatal(err)
		fatal(os.WriteFile(*jsonOut, append(data, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "dapredteam: matrix record written to %s\n", *jsonOut)
	}
	out := os.Stdout
	var closeOut func() error
	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		fatal(err)
		closeOut = f.Close
		out = f
	}
	fatal(rep.Markdown(out))
	if closeOut != nil {
		fatal(closeOut())
		fmt.Fprintf(os.Stderr, "dapredteam: markdown report written to %s\n", *mdOut)
	}
	fmt.Fprintf(os.Stderr, "dapredteam: %d cells in %s (N=%d, trials=%d, seed=%d, γ=%g)\n",
		len(rep.Rows), time.Since(start).Round(time.Millisecond), *n, *trials, *seed, *gamma)
}
