// Command doccheck lints the repository's documentation (the `make
// doccheck` target, run in CI):
//
//   - every exported symbol of the public package (the repository root)
//     must carry a doc comment — either on the declaration itself or on
//     its enclosing const/var/type block;
//   - every relative markdown link in the user-facing documents
//     (README.md, DESIGN.md, specs/README.md, ...) must point at a file
//     that exists.
//
// It prints one line per violation and exits non-zero if any were found,
// so documentation drift fails the build like a test would.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	lintPackage(".", report)
	for _, md := range []string{
		"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "specs/README.md",
	} {
		checkLinks(md, report)
	}

	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// lintPackage checks that every exported top-level symbol of the
// non-test package in dir has a doc comment.
func lintPackage(dir string, report func(string, ...any)) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		report("doccheck: %v", err)
		return
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(fset, decl, report)
			}
		}
	}
}

// lintDecl reports exported declarations without doc comments. A doc
// comment on a const/var/type block covers every spec inside it; a spec
// may also carry its own.
func lintDecl(fset *token.FileSet, decl ast.Decl, report func(string, ...any)) {
	pos := func(p token.Pos) string {
		position := fset.Position(p)
		return fmt.Sprintf("%s:%d", position.Filename, position.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && !isExportedMethodOfUnexported(d) {
			report("%s: exported %s %s has no doc comment", pos(d.Pos()), "function", d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return // block comment covers the specs
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					report("%s: exported type %s has no doc comment", pos(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report("%s: exported value %s has no doc comment", pos(s.Pos()), name.Name)
					}
				}
			}
		}
	}
}

// isExportedMethodOfUnexported suppresses method lint on unexported
// receivers (their API surface is the interface they implement).
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return !ident.IsExported()
	}
	return false
}

// mdLink matches markdown links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative link target in the markdown
// file exists on disk (anchors and absolute URLs are skipped).
func checkLinks(path string, report func(string, ...any)) {
	data, err := os.ReadFile(path)
	if err != nil {
		report("doccheck: %v", err)
		return
	}
	base := filepath.Dir(path)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				report("%s:%d: broken link %q", path, i+1, m[1])
			}
		}
	}
}
