// Command dapcollect serves the multi-tenant DAP collector over HTTP.
//
// Usage:
//
//	dapcollect -addr :8080 -eps 1 -eps0 0.0625 -scheme cemf -epoch 30s
//
// The default tenant is created from the protocol flags; further tenants
// are managed at runtime via POST /v1/tenants. Endpoints: the original
// single-collector API (GET /v1/config, POST /v1/join, POST /v1/report,
// GET /v1/status, GET /v1/estimate) plus POST /v1/ingest (batched
// reports), POST /v1/rotate (seal the epoch), tenant CRUD under
// /v1/tenants and the same routes per tenant under
// /v1/tenants/{tenant}/... . Clients perturb locally; the server never
// sees raw values, charges each user's ε atomically before any state
// changes, and stores only sharded histograms — never raw reports.
//
// The process shuts down gracefully: SIGINT/SIGTERM stop accepting
// connections, in-flight requests drain (bounded by -drain-timeout), and
// every tenant's epoch clock is stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		eps      = flag.Float64("eps", 1, "default tenant: total privacy budget ε")
		eps0     = flag.Float64("eps0", 1.0/16, "default tenant: minimum group budget ε0")
		schemeF  = flag.String("scheme", "cemf", "default tenant: estimation scheme (emf, emfstar, cemf)")
		kindF    = flag.String("kind", "mean", "default tenant: protocol kind (mean, freq, dist)")
		k        = flag.Int("k", 0, "default tenant: category count (kind freq)")
		buckets  = flag.Int("buckets", 0, "default tenant: fixed per-group histogram resolution d′ (0 = derive from -expected-users)")
		expUsers = flag.Int("expected-users", 0, "default tenant: expected user population for deriving d′ (0 = engine default)")
		shards   = flag.Int("shards", 0, "default tenant: lock stripes per group histogram (0 = engine default)")
		windowF  = flag.String("window", "tumbling", "default tenant: epoch window mode (tumbling, sliding)")
		span     = flag.Int("span", 0, "default tenant: sliding window span in epochs")
		epoch    = flag.Duration("epoch", 0, "default tenant: epoch length for automatic rotation (0 = manual)")
		oPrime   = flag.Float64("oprime", 0, "default tenant: fixed pessimistic mean O′")
		autoO    = flag.Bool("auto-oprime", false, "default tenant: derive O′ per Theorem 2")
		gammaSup = flag.Float64("gamma-sup", 0, "default tenant: Byzantine-proportion bound γsup for Theorem 2 (0 = 1/2)")

		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()
	scheme, err := core.ParseScheme(*schemeF)
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	kind, err := stream.ParseKind(*kindF)
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	mode, err := stream.ParseWindowMode(*windowF)
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	srv, err := transport.NewServerConfig(stream.Config{
		Kind: kind, Eps: *eps, Eps0: *eps0, Scheme: scheme, K: *k,
		Buckets: *buckets, ExpectedUsers: *expUsers, Shards: *shards,
		Window: stream.WindowConfig{Mode: mode, Span: *span, Epoch: *epoch},
		OPrime: *oPrime, AutoOPrime: *autoO, GammaSup: *gammaSup,
	})
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("dapcollect: listening on %s (ε=%g, ε0=%g, scheme=%v, kind=%v, window=%v, epoch=%v)\n",
		*addr, *eps, *eps0, scheme, kind, mode, *epoch)
	select {
	case err := <-done:
		srv.Close()
		log.Fatal("dapcollect: ", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("dapcollect: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dapcollect: drain incomplete: %v", err)
	}
	srv.Close() // stop every tenant's epoch clock
	fmt.Println("dapcollect: bye")
}
