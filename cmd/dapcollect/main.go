// Command dapcollect serves the DAP collector over HTTP.
//
// Usage:
//
//	dapcollect -addr :8080 -eps 1 -eps0 0.0625 -scheme cemf
//
// Endpoints: GET /v1/config, POST /v1/join, POST /v1/report,
// GET /v1/status, GET /v1/estimate. Clients perturb locally; the server
// never sees raw values and enforces each user's ε with a budget
// accountant.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		eps     = flag.Float64("eps", 1, "total privacy budget ε")
		eps0    = flag.Float64("eps0", 1.0/16, "minimum group budget ε0")
		schemeF = flag.String("scheme", "cemf", "estimation scheme: emf, emfstar, cemf")
	)
	flag.Parse()
	var scheme core.Scheme
	switch *schemeF {
	case "emf":
		scheme = core.SchemeEMF
	case "emfstar", "emf*":
		scheme = core.SchemeEMFStar
	case "cemf", "cemf*", "cemfstar":
		scheme = core.SchemeCEMFStar
	default:
		log.Fatalf("dapcollect: unknown scheme %q", *schemeF)
	}
	srv, err := transport.NewServer(core.Params{Eps: *eps, Eps0: *eps0, Scheme: scheme})
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("dapcollect: listening on %s (ε=%g, ε0=%g, scheme=%v)\n", *addr, *eps, *eps0, scheme)
	log.Fatal(httpSrv.ListenAndServe())
}
