// Command dapcollect serves the multi-tenant DAP collector over HTTP.
//
// Usage:
//
//	dapcollect -addr :8080 -spec specs/serve.json
//	dapcollect -addr :8080 -eps 1 -eps0 0.0625 -scheme cemf -epoch 30s
//
// The default tenant is created from a task spec: -spec file.json loads
// one (the same JSON accepted by batch estimation, the stream engine and
// POST /v1/tenants), and the protocol flags act as overrides for fields
// set explicitly on the command line. Further tenants are managed at
// runtime via POST /v1/tenants. Endpoints: the original single-collector
// API (GET /v1/config, POST /v1/join, POST /v1/report, GET /v1/status,
// GET /v1/estimate) plus POST /v1/ingest (batched reports), POST
// /v1/rotate (seal the epoch), tenant CRUD under /v1/tenants and the same
// routes per tenant under /v1/tenants/{tenant}/... . Clients perturb
// locally; the server never sees raw values, charges each user's ε
// atomically before any state changes, and stores only sharded
// histograms — never raw reports.
//
// Besides JSON, POST /v1/ingest accepts compact binary frames
// (Content-Type: application/x-dap-frame), and -udp (or the spec's
// serve.udp_addr) opens a best-effort UDP socket where one datagram is
// one frame — see DESIGN.md's wire-format section.
//
// With -store-dir the collector is durable: accepted reports, joins,
// rotations and tenant lifecycle events are WAL-logged under the
// directory, periodic checksummed snapshots bound replay time
// (-snapshot-interval), and boot recovers the registry from the newest
// verifiable snapshot plus the WAL tail — requests answer 503 with
// Retry-After until recovery finishes. -fsync picks the durability/latency
// trade-off (always | interval | os). GET /v1/admin/status reports store
// health, last-snapshot age and the recovery summary.
//
// Observability: GET /metrics serves every layer's metrics in the
// Prometheus text exposition format (requests, ingest, epochs, solver,
// privacy budget, WAL health) and stays reachable during recovery, as
// does GET /v1/admin/status. Structured logs go to stderr via log/slog
// (-log-level, -log-format); -pprof mounts net/http/pprof under
// /debug/pprof/ for live profiling (off by default — expose only on
// trusted networks).
//
// The process shuts down gracefully: SIGINT/SIGTERM stop accepting
// connections, in-flight requests drain (bounded by -drain-timeout),
// every tenant's epoch clock is stopped, and a durable collector cuts one
// final snapshot before closing the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/specflag"
	"repro/internal/store"
	"repro/internal/transport"
)

// setupLogging installs the process-wide slog handler from the CLI
// flags. The transport's request middleware, the store's WAL events and
// recovery logging all route through slog.Default.
func setupLogging(level, format string) error {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return fmt.Errorf("unknown log level %q (debug | info | warn | error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, ho)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, ho)))
	default:
		return fmt.Errorf("unknown log format %q (text | json)", format)
	}
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		storeDir     = flag.String("store-dir", "", "durability directory (WAL + snapshots); empty = in-memory only")
		snapEvery    = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot interval (with -store-dir; 0 disables)")
		fsync        = flag.String("fsync", "interval", "WAL fsync policy: always | interval | os (with -store-dir)")
		maxBody      = flag.Int64("max-ingest-bytes", 0, "request body limit for report/ingest (0 = 8 MiB default, negative = unlimited)")
		udpAddr      = flag.String("udp", "", "UDP listen address for binary ingest frames (e.g. :9200; empty = spec serve.udp_addr, or off)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (admin-only; off by default)")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")
		logFormat    = flag.String("log-format", "text", "log format: text | json")
	)
	sf := specflag.New(flag.CommandLine, core.NewSpec(core.MeanTask(),
		core.WithScheme(core.SchemeCEMFStar)))
	flag.Parse()
	if err := setupLogging(*logLevel, *logFormat); err != nil {
		log.Fatal("dapcollect: ", err)
	}
	sp, err := sf.Resolve()
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	opts := transport.ServerOptions{MaxIngestBytes: *maxBody, Pprof: *pprofOn}
	var st *store.Store
	if *storeDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatal("dapcollect: ", err)
		}
		st, err = store.Open(*storeDir, store.Options{Sync: policy})
		if err != nil {
			log.Fatal("dapcollect: ", err)
		}
		opts.Store = st
		opts.SnapshotInterval = *snapEvery
		// Serve immediately; the 503 gate covers the recovery window.
		opts.AsyncRecover = true
		fmt.Printf("dapcollect: durable store at %s (fsync=%s, snapshot every %v)\n",
			*storeDir, *fsync, *snapEvery)
	}
	srv, err := transport.NewServerSpecOpts(sp, opts)
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	udpListen := *udpAddr
	if udpListen == "" && sp.Serve != nil {
		udpListen = sp.Serve.UDPAddr
	}
	var udpLis *transport.UDPListener
	if udpListen != "" {
		udpLis, err = srv.ListenUDP(udpListen)
		if err != nil {
			log.Fatal("dapcollect: ", err)
		}
		fmt.Printf("dapcollect: binary ingest frames on udp %s\n", udpLis.Addr())
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	epoch := time.Duration(0)
	window := "tumbling"
	if sp.Serve != nil {
		epoch = time.Duration(sp.Serve.EpochMs) * time.Millisecond
		if sp.Serve.Window != "" {
			window = sp.Serve.Window
		}
	}
	fmt.Printf("dapcollect: listening on %s (task=%s, ε=%g, ε0=%g, scheme=%s, window=%s, epoch=%v)\n",
		*addr, sp.Task, sp.Eps, sp.Eps0, sp.Scheme, window, epoch)
	select {
	case err := <-done:
		if udpLis != nil {
			_ = udpLis.Close()
		}
		srv.Close()
		if st != nil {
			_ = st.Close()
		}
		log.Fatal("dapcollect: ", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("dapcollect: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dapcollect: drain incomplete: %v", err)
	}
	if udpLis != nil {
		_ = udpLis.Close() // stop accepting frames before the final snapshot
	}
	srv.Close() // stop clocks; a durable server drains one final snapshot
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("dapcollect: store close: %v", err)
		}
	}
	fmt.Println("dapcollect: bye")
}
