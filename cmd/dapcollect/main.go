// Command dapcollect serves the multi-tenant DAP collector over HTTP.
//
// Usage:
//
//	dapcollect -addr :8080 -spec specs/serve.json
//	dapcollect -addr :8080 -eps 1 -eps0 0.0625 -scheme cemf -epoch 30s
//
// The default tenant is created from a task spec: -spec file.json loads
// one (the same JSON accepted by batch estimation, the stream engine and
// POST /v1/tenants), and the protocol flags act as overrides for fields
// set explicitly on the command line. Further tenants are managed at
// runtime via POST /v1/tenants. Endpoints: the original single-collector
// API (GET /v1/config, POST /v1/join, POST /v1/report, GET /v1/status,
// GET /v1/estimate) plus POST /v1/ingest (batched reports), POST
// /v1/rotate (seal the epoch), tenant CRUD under /v1/tenants and the same
// routes per tenant under /v1/tenants/{tenant}/... . Clients perturb
// locally; the server never sees raw values, charges each user's ε
// atomically before any state changes, and stores only sharded
// histograms — never raw reports.
//
// Besides JSON, POST /v1/ingest accepts compact binary frames
// (Content-Type: application/x-dap-frame), and -udp (or the spec's
// serve.udp_addr) opens a best-effort UDP socket where one datagram is
// one frame — see DESIGN.md's wire-format section.
//
// With -store-dir the collector is durable: accepted reports, joins,
// rotations and tenant lifecycle events are WAL-logged under the
// directory, periodic checksummed snapshots bound replay time
// (-snapshot-interval), and boot recovers the registry from the newest
// verifiable snapshot plus the WAL tail — requests answer 503 with
// Retry-After until recovery finishes. -fsync picks the durability/latency
// trade-off (always | interval | os). GET /v1/admin/status reports store
// health, last-snapshot age and the recovery summary.
//
// Observability: GET /metrics serves every layer's metrics in the
// Prometheus text exposition format (requests, ingest, epochs, solver,
// privacy budget, WAL health) and stays reachable during recovery, as
// does GET /v1/admin/status. Structured logs go to stderr via log/slog
// (-log-level, -log-format); -pprof mounts net/http/pprof under
// /debug/pprof/ for live profiling (off by default — expose only on
// trusted networks).
//
// The process shuts down gracefully: SIGINT/SIGTERM stop accepting
// connections, in-flight requests drain (bounded by -drain-timeout),
// every tenant's epoch clock is stopped, and a durable collector cuts one
// final snapshot before closing the store.
//
// Scale-out: -role=node and -role=coordinator form a multi-node
// deployment. A node is an ordinary collector that additionally pushes
// every sealed epoch — per-tenant histogram counts, per-stripe sums and
// budget spend, as a CRC-sealed delta frame — to -coordinator, retrying
// with backoff; -node-id names it on the merge plane. A coordinator
// serves POST /v1/merge for a fixed -nodes set, deduplicates and folds
// the deltas (publishing an epoch once every node — or, after the
// -straggler timeout, a -quorum — has reported; partial epochs are
// flagged degraded on /v1/admin/status), and serves the merged
// estimates on GET /v1/merge/estimate. With -store-dir a coordinator
// WAL-logs accepted deltas and recovers in-flight epochs bit-identically
// after a crash; the store then belongs to the merge plane and the
// regular serving registry stays in-memory. See DESIGN.md's
// "Distributed collector" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/specflag"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/wirebin"
)

// setupLogging installs the process-wide slog handler from the CLI
// flags. The transport's request middleware, the store's WAL events and
// recovery logging all route through slog.Default.
func setupLogging(level, format string) error {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return fmt.Errorf("unknown log level %q (debug | info | warn | error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, ho)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, ho)))
	default:
		return fmt.Errorf("unknown log format %q (text | json)", format)
	}
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		storeDir     = flag.String("store-dir", "", "durability directory (WAL + snapshots); empty = in-memory only")
		snapEvery    = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot interval (with -store-dir; 0 disables)")
		fsync        = flag.String("fsync", "interval", "WAL fsync policy: always | interval | os (with -store-dir)")
		maxBody      = flag.Int64("max-ingest-bytes", 0, "request body limit for report/ingest (0 = 8 MiB default, negative = unlimited)")
		udpAddr      = flag.String("udp", "", "UDP listen address for binary ingest frames (e.g. :9200; empty = spec serve.udp_addr, or off)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (admin-only; off by default)")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")
		logFormat    = flag.String("log-format", "text", "log format: text | json")
		role         = flag.String("role", "", "scale-out role: node | coordinator (empty = standalone)")
		nodeID       = flag.String("node-id", "", "this node's id on the merge plane (with -role=node)")
		coordURL     = flag.String("coordinator", "", "coordinator base URL to push sealed deltas to (with -role=node)")
		nodeList     = flag.String("nodes", "", "comma-separated node ids expected to report (with -role=coordinator)")
		quorum       = flag.Int("quorum", 0, "nodes required for a partial publish after the straggler timeout (0 = all; with -role=coordinator)")
		straggler    = flag.Duration("straggler", 30*time.Second, "how long to hold an epoch open for missing nodes (with -role=coordinator)")
	)
	sf := specflag.New(flag.CommandLine, core.NewSpec(core.MeanTask(),
		core.WithScheme(core.SchemeCEMFStar)))
	flag.Parse()
	if err := setupLogging(*logLevel, *logFormat); err != nil {
		log.Fatal("dapcollect: ", err)
	}
	sp, err := sf.Resolve()
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	switch *role {
	case "", "node", "coordinator":
	default:
		log.Fatalf("dapcollect: unknown -role %q (node | coordinator)", *role)
	}
	opts := transport.ServerOptions{MaxIngestBytes: *maxBody, Pprof: *pprofOn}
	var st *store.Store
	if *storeDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatal("dapcollect: ", err)
		}
		st, err = store.Open(*storeDir, store.Options{Sync: policy})
		if err != nil {
			log.Fatal("dapcollect: ", err)
		}
		if *role == "coordinator" {
			// The store feeds the merge-plane WAL (see below); the serving
			// registry stays in-memory.
			fmt.Printf("dapcollect: durable merge WAL at %s (fsync=%s)\n", *storeDir, *fsync)
		} else {
			opts.Store = st
			opts.SnapshotInterval = *snapEvery
			// Serve immediately; the 503 gate covers the recovery window. A
			// node blocks instead: its seal hook must be installed on the
			// recovered registry before any epoch can seal.
			opts.AsyncRecover = *role != "node"
			fmt.Printf("dapcollect: durable store at %s (fsync=%s, snapshot every %v)\n",
				*storeDir, *fsync, *snapEvery)
		}
	}
	var co *stream.Coordinator
	if *role == "coordinator" {
		ids := splitNodes(*nodeList)
		if len(ids) == 0 {
			log.Fatal("dapcollect: -role=coordinator needs -nodes")
		}
		ccfg := stream.CoordinatorConfig{
			Nodes: ids, Quorum: *quorum, Straggler: *straggler, Store: st,
		}
		if st != nil {
			var rep *stream.RecoveryReport
			co, rep, err = stream.RecoverCoordinator(ccfg)
			if err != nil {
				log.Fatal("dapcollect: merge recovery: ", err)
			}
			slog.Info("merge recovery complete", "records", rep.Records,
				"applied", rep.Applied, "tenants", rep.Tenants, "torn", rep.Torn)
		} else if co, err = stream.NewCoordinator(ccfg); err != nil {
			log.Fatal("dapcollect: ", err)
		}
		// Register the default tenant unless recovery already replayed it.
		if err := co.AddTenantSpec(transport.DefaultTenant, sp); err != nil &&
			!strings.Contains(err.Error(), "already exists") {
			log.Fatal("dapcollect: ", err)
		}
		co.Start(0)
		opts.Coordinator = co
		fmt.Printf("dapcollect: coordinating %d nodes (quorum=%d, straggler=%v)\n",
			len(ids), *quorum, *straggler)
	}
	srv, err := transport.NewServerSpecOpts(sp, opts)
	if err != nil {
		log.Fatal("dapcollect: ", err)
	}
	var pusher *deltaPusher
	if *role == "node" {
		if *nodeID == "" || *coordURL == "" {
			log.Fatal("dapcollect: -role=node needs -node-id and -coordinator")
		}
		pc := transport.NewClient(*coordURL, nil)
		pc.SetRetry(5, 2*time.Second)
		pusher = newDeltaPusher(pc, *nodeID)
		srv.Registry().SetSealHook(pusher.hook)
		fmt.Printf("dapcollect: node %q pushing sealed deltas to %s\n", *nodeID, *coordURL)
	}
	udpListen := *udpAddr
	if udpListen == "" && sp.Serve != nil {
		udpListen = sp.Serve.UDPAddr
	}
	var udpLis *transport.UDPListener
	if udpListen != "" {
		udpLis, err = srv.ListenUDP(udpListen)
		if err != nil {
			log.Fatal("dapcollect: ", err)
		}
		fmt.Printf("dapcollect: binary ingest frames on udp %s\n", udpLis.Addr())
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	epoch := time.Duration(0)
	window := "tumbling"
	if sp.Serve != nil {
		epoch = time.Duration(sp.Serve.EpochMs) * time.Millisecond
		if sp.Serve.Window != "" {
			window = sp.Serve.Window
		}
	}
	fmt.Printf("dapcollect: listening on %s (task=%s, ε=%g, ε0=%g, scheme=%s, window=%s, epoch=%v)\n",
		*addr, sp.Task, sp.Eps, sp.Eps0, sp.Scheme, window, epoch)
	select {
	case err := <-done:
		if udpLis != nil {
			_ = udpLis.Close()
		}
		srv.Close()
		if st != nil {
			_ = st.Close()
		}
		log.Fatal("dapcollect: ", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("dapcollect: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dapcollect: drain incomplete: %v", err)
	}
	if udpLis != nil {
		_ = udpLis.Close() // stop accepting frames before the final snapshot
	}
	srv.Close() // stop clocks; a durable server drains one final snapshot
	if pusher != nil {
		pusher.Close() // clocks stopped — drain the queued delta pushes
	}
	if co != nil {
		co.Stop()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("dapcollect: store close: %v", err)
		}
	}
	fmt.Println("dapcollect: bye")
}

// splitNodes parses the -nodes list.
func splitNodes(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// deltaPusher forwards sealed epoch deltas to the coordinator from a
// dedicated goroutine: the seal hook runs on the rotation path, so it
// only stamps the node id and enqueues. A full queue drops the delta —
// the coordinator's straggler timeout tolerates a missing node, and
// wedging rotations on a dead coordinator would be worse.
type deltaPusher struct {
	client *transport.Client
	node   string
	ch     chan *stream.EpochDelta
	done   chan struct{}
}

func newDeltaPusher(c *transport.Client, node string) *deltaPusher {
	p := &deltaPusher{
		client: c, node: node,
		ch:   make(chan *stream.EpochDelta, 128),
		done: make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *deltaPusher) hook(d *stream.EpochDelta) {
	d.Node = p.node
	select {
	case p.ch <- d:
	default:
		slog.Warn("delta push queue full; dropping sealed delta",
			"tenant", d.Tenant, "epoch", d.Epoch)
	}
}

func (p *deltaPusher) run() {
	defer close(p.done)
	for d := range p.ch {
		frame, err := wirebin.EncodeDelta(d)
		if err != nil {
			slog.Error("delta encode failed", "tenant", d.Tenant, "epoch", d.Epoch, "err", err)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := p.client.PushDelta(ctx, frame)
		cancel()
		if err != nil {
			slog.Error("delta push failed", "tenant", d.Tenant, "epoch", d.Epoch, "err", err)
			continue
		}
		slog.Debug("delta pushed", "tenant", d.Tenant, "epoch", d.Epoch,
			"status", res.Status, "published", res.Published)
	}
}

// Close drains the queue and stops the push goroutine. Call after the
// epoch clocks are stopped — the seal hook must not fire concurrently.
func (p *deltaPusher) Close() {
	close(p.ch)
	<-p.done
}
