// Command benchdiff compares two BENCH_*.json timing records (written by
// dapbench -bench-json and daploadgen -bench-json) and fails when the
// newer record regresses total wall-clock beyond a threshold.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -max-regress 0.15 BENCH_20260729.json BENCH_20260801.json
//
// The per-experiment table and the load-section deltas are informational;
// the exit status gates only on total_wall_ms, the number the repository's
// performance trajectory tracks (individual experiments are too noisy at
// laptop scale to gate on). Exit status 1 means the new total exceeds
// old·(1+max-regress).
//
// -max-load-drop additionally gates on load.reports_per_sec when both
// records carry a load section: exit status 1 when the new throughput
// falls below old·(1−max-load-drop). This is the WAL overhead gate —
// comparing an in-memory load record against a durable (-store-dir) one
// bounds the throughput cost of durability. The same gate covers the
// binary-wire record (load_bin, wire=bin) whenever the old record has
// one; load_udp is reported but never gated (best-effort wire, loss
// makes its throughput a different quantity). The distributed record
// (load_dist, daploadgen -nodes N) gates the same way once a baseline
// exists, and additionally fails whenever the new record flags the
// merged estimate as non-equivalent. Throughput comparisons round to
// three decimals, matching the writer's fixed precision.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// record mirrors the subset of the BENCH_*.json schema the diff needs.
type record struct {
	Date        string           `json:"date"`
	N           int              `json:"n"`
	Trials      int              `json:"trials"`
	Seed        uint64           `json:"seed"`
	Experiments map[string]int64 `json:"experiment_wall_ms"`
	TotalMs     int64            `json:"total_wall_ms"`
	Load        *loadRecord      `json:"load"`
	LoadBin     *loadRecord      `json:"load_bin"`
	LoadUDP     *loadRecord      `json:"load_udp"`
	LoadDist    *loadRecord      `json:"load_dist"`
}

type loadRecord struct {
	Wire           string  `json:"wire"`
	ReportsPerSec  float64 `json:"reports_per_sec"`
	EstimateLiveMs float64 `json:"estimate_live_ms"`
	Retries        int64   `json:"retries"`
	Nodes          int64   `json:"nodes"`
	Equivalent     *bool   `json:"equivalent"`
}

// round3 clamps a float to the writer's fixed precision so gate math
// cannot flip on sub-milli noise that the BENCH files don't even store.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated fractional total wall-clock regression")
	maxLoadDrop := flag.Float64("max-load-drop", 0, "maximum tolerated fractional load.reports_per_sec drop (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress 0.15] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if oldRec.N != newRec.N || oldRec.Trials != newRec.Trials || oldRec.Seed != newRec.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: configs differ (old N=%d trials=%d seed=%d; new N=%d trials=%d seed=%d) — timings are not directly comparable\n",
			oldRec.N, oldRec.Trials, oldRec.Seed, newRec.N, newRec.Trials, newRec.Seed)
	}

	names := map[string]bool{}
	for name := range oldRec.Experiments {
		names[name] = true
	}
	for name := range newRec.Experiments {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	fmt.Printf("%-10s %10s %10s %8s\n", "experiment", "old ms", "new ms", "ratio")
	for _, name := range sorted {
		o, hasO := oldRec.Experiments[name]
		n, hasN := newRec.Experiments[name]
		switch {
		case !hasO:
			fmt.Printf("%-10s %10s %10d %8s\n", name, "-", n, "new")
		case !hasN:
			fmt.Printf("%-10s %10d %10s %8s\n", name, o, "-", "gone")
		default:
			fmt.Printf("%-10s %10d %10d %8s\n", name, o, n, ratio(o, n))
		}
	}
	fmt.Printf("%-10s %10d %10d %8s\n", "TOTAL", oldRec.TotalMs, newRec.TotalMs, ratio(oldRec.TotalMs, newRec.TotalMs))
	for _, sec := range []struct {
		name     string
		old, new *loadRecord
	}{{"load", oldRec.Load, newRec.Load}, {"load_bin", oldRec.LoadBin, newRec.LoadBin}, {"load_udp", oldRec.LoadUDP, newRec.LoadUDP}} {
		if sec.old != nil && sec.new != nil {
			fmt.Printf("%s: %.0f → %.0f reports/sec; live estimate %.2f → %.2f ms; retries %d → %d\n",
				sec.name, sec.old.ReportsPerSec, sec.new.ReportsPerSec,
				sec.old.EstimateLiveMs, sec.new.EstimateLiveMs,
				sec.old.Retries, sec.new.Retries)
		} else if sec.new != nil {
			fmt.Printf("%s: new — %.0f reports/sec (wire=%s)\n", sec.name, sec.new.ReportsPerSec, sec.new.Wire)
		}
	}
	// The distributed section carries no live-estimate or retry figures;
	// its line reports node count and merge equivalence instead.
	if o, n := oldRec.LoadDist, newRec.LoadDist; o != nil && n != nil {
		fmt.Printf("load_dist: %.0f → %.0f reports/sec; nodes %d → %d; equivalent %s → %s\n",
			o.ReportsPerSec, n.ReportsPerSec, o.Nodes, n.Nodes, eqStr(o.Equivalent), eqStr(n.Equivalent))
	} else if n != nil {
		fmt.Printf("load_dist: new — %.0f reports/sec across %d nodes; equivalent %s\n",
			n.ReportsPerSec, n.Nodes, eqStr(n.Equivalent))
	}

	failed := false
	limit := float64(oldRec.TotalMs) * (1 + *maxRegress)
	if float64(newRec.TotalMs) > limit {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL total %dms exceeds %dms·(1+%.2f) = %.0fms\n",
			newRec.TotalMs, oldRec.TotalMs, *maxRegress, limit)
		failed = true
	} else {
		fmt.Printf("benchdiff: OK total %dms within %.0f%% of %dms\n", newRec.TotalMs, *maxRegress*100, oldRec.TotalMs)
	}
	if *maxLoadDrop > 0 {
		if gateLoad("load", oldRec.Load, newRec.Load, *maxLoadDrop, true) {
			failed = true
		}
		// The binary-wire gate arms itself once a baseline exists: records
		// predating the binary wire have no load_bin and are skipped.
		if oldRec.LoadBin != nil {
			if gateLoad("load_bin", oldRec.LoadBin, newRec.LoadBin, *maxLoadDrop, true) {
				failed = true
			}
		}
		// Likewise the distributed gate: armed once the old record carries
		// a load_dist section.
		if oldRec.LoadDist != nil {
			if gateLoad("load_dist", oldRec.LoadDist, newRec.LoadDist, *maxLoadDrop, true) {
				failed = true
			}
		}
	}
	// A distributed record that failed its own equivalence check is a
	// correctness break regardless of throughput thresholds.
	if n := newRec.LoadDist; n != nil && n.Equivalent != nil && !*n.Equivalent {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL load_dist record flags the merged estimate as non-equivalent")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// gateLoad applies the throughput-drop gate to one load section,
// returning true on failure. required makes a missing section a failure
// rather than a skip. Comparisons happen at the writer's three-decimal
// precision so re-serialized records diff clean.
func gateLoad(name string, o, n *loadRecord, drop float64, required bool) bool {
	switch {
	case o == nil || n == nil || o.ReportsPerSec <= 0:
		if !required {
			return false
		}
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL -max-load-drop set but a record has no %s.reports_per_sec\n", name)
		return true
	case round3(n.ReportsPerSec) < round3(o.ReportsPerSec*(1-drop)):
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s %.0f reports/sec below %.0f·(1-%.2f) = %.0f\n",
			name, n.ReportsPerSec, o.ReportsPerSec, drop, o.ReportsPerSec*(1-drop))
		return true
	default:
		fmt.Printf("benchdiff: OK %s %.0f reports/sec within %.0f%% of %.0f\n",
			name, n.ReportsPerSec, drop*100, o.ReportsPerSec)
		return false
	}
}

// eqStr renders a tri-state equivalence flag: records written before the
// distributed mode (or hand-edited ones) may omit it entirely.
func eqStr(b *bool) string {
	switch {
	case b == nil:
		return "?"
	case *b:
		return "yes"
	default:
		return "NO"
	}
}

func ratio(o, n int64) string {
	if o <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(n)/float64(o))
}
