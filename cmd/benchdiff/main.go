// Command benchdiff compares two BENCH_*.json timing records (written by
// dapbench -bench-json and daploadgen -bench-json) and fails when the
// newer record regresses total wall-clock beyond a threshold.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -max-regress 0.15 BENCH_20260729.json BENCH_20260801.json
//
// The per-experiment table and the load-section deltas are informational;
// the exit status gates only on total_wall_ms, the number the repository's
// performance trajectory tracks (individual experiments are too noisy at
// laptop scale to gate on). Exit status 1 means the new total exceeds
// old·(1+max-regress).
//
// -max-load-drop additionally gates on load.reports_per_sec when both
// records carry a load section: exit status 1 when the new throughput
// falls below old·(1−max-load-drop). This is the WAL overhead gate —
// comparing an in-memory load record against a durable (-store-dir) one
// bounds the throughput cost of durability.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record mirrors the subset of the BENCH_*.json schema the diff needs.
type record struct {
	Date        string           `json:"date"`
	N           int              `json:"n"`
	Trials      int              `json:"trials"`
	Seed        uint64           `json:"seed"`
	Experiments map[string]int64 `json:"experiment_wall_ms"`
	TotalMs     int64            `json:"total_wall_ms"`
	Load        *loadRecord      `json:"load"`
}

type loadRecord struct {
	ReportsPerSec  float64 `json:"reports_per_sec"`
	EstimateLiveMs float64 `json:"estimate_live_ms"`
	Retries        int64   `json:"retries"`
}

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated fractional total wall-clock regression")
	maxLoadDrop := flag.Float64("max-load-drop", 0, "maximum tolerated fractional load.reports_per_sec drop (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress 0.15] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if oldRec.N != newRec.N || oldRec.Trials != newRec.Trials || oldRec.Seed != newRec.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: configs differ (old N=%d trials=%d seed=%d; new N=%d trials=%d seed=%d) — timings are not directly comparable\n",
			oldRec.N, oldRec.Trials, oldRec.Seed, newRec.N, newRec.Trials, newRec.Seed)
	}

	names := map[string]bool{}
	for name := range oldRec.Experiments {
		names[name] = true
	}
	for name := range newRec.Experiments {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	fmt.Printf("%-10s %10s %10s %8s\n", "experiment", "old ms", "new ms", "ratio")
	for _, name := range sorted {
		o, hasO := oldRec.Experiments[name]
		n, hasN := newRec.Experiments[name]
		switch {
		case !hasO:
			fmt.Printf("%-10s %10s %10d %8s\n", name, "-", n, "new")
		case !hasN:
			fmt.Printf("%-10s %10d %10s %8s\n", name, o, "-", "gone")
		default:
			fmt.Printf("%-10s %10d %10d %8s\n", name, o, n, ratio(o, n))
		}
	}
	fmt.Printf("%-10s %10d %10d %8s\n", "TOTAL", oldRec.TotalMs, newRec.TotalMs, ratio(oldRec.TotalMs, newRec.TotalMs))
	if oldRec.Load != nil && newRec.Load != nil {
		fmt.Printf("load: %.0f → %.0f reports/sec; live estimate %.2f → %.2f ms; retries %d → %d\n",
			oldRec.Load.ReportsPerSec, newRec.Load.ReportsPerSec,
			oldRec.Load.EstimateLiveMs, newRec.Load.EstimateLiveMs,
			oldRec.Load.Retries, newRec.Load.Retries)
	}

	failed := false
	limit := float64(oldRec.TotalMs) * (1 + *maxRegress)
	if float64(newRec.TotalMs) > limit {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL total %dms exceeds %dms·(1+%.2f) = %.0fms\n",
			newRec.TotalMs, oldRec.TotalMs, *maxRegress, limit)
		failed = true
	} else {
		fmt.Printf("benchdiff: OK total %dms within %.0f%% of %dms\n", newRec.TotalMs, *maxRegress*100, oldRec.TotalMs)
	}
	if *maxLoadDrop > 0 {
		switch {
		case oldRec.Load == nil || newRec.Load == nil || oldRec.Load.ReportsPerSec <= 0:
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL -max-load-drop set but a record has no load.reports_per_sec")
			failed = true
		case newRec.Load.ReportsPerSec < oldRec.Load.ReportsPerSec*(1-*maxLoadDrop):
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL load %.0f reports/sec below %.0f·(1-%.2f) = %.0f\n",
				newRec.Load.ReportsPerSec, oldRec.Load.ReportsPerSec, *maxLoadDrop,
				oldRec.Load.ReportsPerSec*(1-*maxLoadDrop))
			failed = true
		default:
			fmt.Printf("benchdiff: OK load %.0f reports/sec within %.0f%% of %.0f\n",
				newRec.Load.ReportsPerSec, *maxLoadDrop*100, oldRec.Load.ReportsPerSec)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func ratio(o, n int64) string {
	if o <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(n)/float64(o))
}
