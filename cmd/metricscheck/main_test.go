package main

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/transport"
)

// TestIngestedSurvivesRotation is the regression test for the delivery-
// confirmation signal: /v1/status window report totals reset when an
// epoch seals, so a poller using them can watch a confirmed delivery
// vanish mid-wait. The monotonic dap_stream_reports_ingested_total —
// what driveFrames and daploadgen poll — must keep every accepted
// report across a rotation.
func TestIngestedSurvivesRotation(t *testing.T) {
	base, closeFn, err := boot()
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	ctx := context.Background()
	client := transport.NewClient(base, nil)
	r := rand.New(rand.NewPCG(3, 4))
	const submits = 8
	var sent int
	for i := 0; i < submits; i++ {
		join, err := client.SubmitValue(ctx, r, 0.2)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		sent += join.Group.Reports
	}
	before, err := ingestedTotal(base)
	if err != nil {
		t.Fatal(err)
	}
	if before < float64(sent) {
		t.Fatalf("ingested metric %g below the %d reports sent", before, sent)
	}
	st, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if total := windowTotal(st); total < sent {
		t.Fatalf("window totals %d below the %d reports sent pre-rotation", total, sent)
	}

	// Two rotations age the reports out of the (span-1) window entirely:
	// the first seals them, the second replaces them with an empty epoch.
	// The second answers 409 — an empty window cannot estimate — but the
	// seal it reports still happened, which is all this test needs.
	if _, err := client.Rotate(ctx); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	_, _ = client.Rotate(ctx)

	// The window totals forget the delivery; the monotonic metric must not.
	st, err = client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if total := windowTotal(st); total >= sent {
		t.Fatalf("window totals %d still cover the %d reports sent; rotation did not reset them (precondition of the regression)", total, sent)
	}
	after, err := ingestedTotal(base)
	if err != nil {
		t.Fatal(err)
	}
	if after < before {
		t.Fatalf("ingested metric dropped across rotation: %g → %g", before, after)
	}
}

func windowTotal(st *transport.StatusResponse) int {
	total := 0
	for _, n := range st.GroupReports {
		total += n
	}
	return total
}
