// Command metricscheck is the observability end-to-end gate: it boots a
// durable in-process collector over a real loopback listener, drives
// representative traffic through every instrumented layer (joins,
// reports, a deliberate 4xx, binary frames over HTTP and UDP including a
// guaranteed reject, an epoch rotation, a live estimate), then
// scrapes GET /metrics over HTTP and fails unless
//
//   - the payload parses as Prometheus text exposition (version 0.0.4),
//   - every metric documented in DESIGN.md's Observability inventory is
//     present with its declared type, and
//   - the layer counters moved the way the traffic says they must
//     (2xx and 4xx requests observed, reports ingested, an epoch
//     rotation, a solver run, budget spent, WAL appends, no degraded or
//     recovering state on a healthy boot).
//
// With -addr the tool instead scrapes an already-running collector and
// checks only parse validity plus inventory presence — the traffic-
// dependent value checks need the self-booted workload.
//
// Usage:
//
//	metricscheck                     # self-boot, drive, scrape, verify
//	metricscheck -addr http://localhost:8080
//
// CI runs this as `make metrics-check`; the inventory table below is the
// machine-checked twin of the DESIGN.md listing, so a metric added to
// the code without documentation (or vice versa) fails the gate.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wirebin"
)

// inventory mirrors DESIGN.md's Observability metric listing: every
// documented family must be exposed with this type.
var inventory = []struct{ name, typ string }{
	// transport
	{"dap_http_requests_total", "counter"},
	{"dap_http_request_duration_seconds", "histogram"},
	{"dap_http_request_size_bytes", "histogram"},
	{"dap_http_inflight_requests", "gauge"},
	{"dap_client_retries_total", "counter"},
	{"dap_collector_recovering", "gauge"},
	{"dap_store_recovery_duration_seconds", "gauge"},
	// binary wire (frames over HTTP and UDP)
	{"dap_frames_decoded_total", "counter"},
	{"dap_frames_rejected_total", "counter"},
	{"dap_frames_decode_seconds", "histogram"},
	{"dap_udp_datagrams_total", "counter"},
	{"dap_udp_datagrams_dropped_total", "counter"},
	{"dap_udp_last_seq", "gauge"},
	// stream
	{"dap_stream_reports_ingested_total", "counter"},
	{"dap_stream_reports_rejected_total", "counter"},
	{"dap_stream_epoch_rotations_total", "counter"},
	{"dap_stream_estimate_duration_seconds", "histogram"},
	{"dap_stream_warm_hits_total", "counter"},
	{"dap_stream_epoch_lag_seconds", "gauge"},
	{"dap_stream_tenants", "gauge"},
	// merge plane (coordinator)
	{"dap_merge_deltas_total", "counter"},
	{"dap_merge_stragglers_total", "counter"},
	{"dap_merge_nodes", "gauge"},
	{"dap_merge_epoch_lag_seconds", "gauge"},
	// privacy
	{"dap_privacy_budget_spent_eps", "gauge"},
	{"dap_privacy_budget_cap_eps", "gauge"},
	{"dap_privacy_budget_remaining_eps", "gauge"},
	{"dap_privacy_reporters", "gauge"},
	// core/emf
	{"dap_emf_runs_total", "counter"},
	{"dap_emf_iterations_total", "counter"},
	{"dap_emf_restarts_total", "counter"},
	{"dap_emf_convergence_failures_total", "counter"},
	{"dap_emf_warm_starts_total", "counter"},
	// store
	{"dap_wal_appends_total", "counter"},
	{"dap_wal_bytes_total", "counter"},
	{"dap_wal_append_failures_total", "counter"},
	{"dap_wal_group_commit_records", "histogram"},
	{"dap_wal_fsync_duration_seconds", "histogram"},
	{"dap_store_snapshots_total", "counter"},
	{"dap_wal_segments", "gauge"},
	{"dap_wal_size_bytes", "gauge"},
	{"dap_store_snapshot_age_seconds", "gauge"},
	{"dap_store_degraded", "gauge"},
}

func main() {
	addr := flag.String("addr", "", "scrape this collector instead of self-booting (inventory + parse checks only)")
	flag.Parse()

	base := *addr
	selfBooted := base == ""
	if selfBooted {
		var closeFn func()
		var err error
		if base, closeFn, err = boot(); err != nil {
			log.Fatal("metricscheck: ", err)
		}
		defer closeFn()
		if err := driveTraffic(base); err != nil {
			log.Fatal("metricscheck: ", err)
		}
	}

	sc, err := scrape(base)
	if err != nil {
		log.Fatal("metricscheck: ", err)
	}
	failed := checkInventory(sc)
	if selfBooted {
		failed = checkValues(sc) || failed
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: OK — %d samples, %d/%d documented families present\n",
		len(sc.Samples), len(inventory), len(inventory))
}

// boot starts a durable collector on a loopback listener over a temp
// store directory.
func boot() (string, func(), error) {
	dir, err := os.MkdirTemp("", "metricscheck")
	if err != nil {
		return "", nil, err
	}
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	sp := core.NewSpec(core.MeanTask(), core.WithBudget(1, 0.25),
		core.WithScheme(core.SchemeEMFStar),
		core.WithServe(core.ServeSpec{Warm: true, ExpectedUsers: 64}))
	srv, err := transport.NewServerSpecOpts(sp, transport.ServerOptions{Store: st})
	if err != nil {
		_ = st.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		_ = st.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	lis, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		_ = ln.Close()
		srv.Close()
		_ = st.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	closeFn := func() {
		_ = hs.Close()
		_ = lis.Close()
		srv.Close()
		_ = st.Close()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), closeFn, nil
}

// driveTraffic exercises every instrumented layer: honest reports (HTTP
// + stream + privacy + WAL), one deliberate 4xx, a rotation and a live
// estimate (solver).
func driveTraffic(base string) error {
	ctx := context.Background()
	client := transport.NewClient(base, nil)
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 16; i++ {
		if _, err := client.SubmitValue(ctx, r, 0.2); err != nil {
			return fmt.Errorf("submit: %w", err)
		}
	}
	// A 4xx on an instrumented route: config of a tenant that never existed.
	if _, err := client.Tenant("no-such-tenant").Config(ctx); err == nil {
		return fmt.Errorf("expected a 404 for the unknown tenant")
	}
	if err := driveFrames(ctx, client, base, r); err != nil {
		return err
	}
	if _, err := client.Rotate(ctx); err != nil {
		return fmt.Errorf("rotate: %w", err)
	}
	if _, err := client.Estimate(ctx); err != nil {
		return fmt.Errorf("estimate: %w", err)
	}
	return nil
}

// driveFrames exercises the binary wire: one frame over HTTP, one
// corrupt frame (a guaranteed reject), and one frame as a UDP datagram —
// polling the status endpoint until the asynchronous UDP delivery lands
// so the scrape sees every dap_frames_*/dap_udp_* family moved.
func driveFrames(ctx context.Context, client *transport.Client, base string, r *rand.Rand) error {
	cfg, err := client.Config(ctx)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	g := cfg.Groups[0]
	mech, err := pm.New(g.Eps)
	if err != nil {
		return err
	}
	perturbed := func() []float64 {
		vals := make([]float64, g.Reports)
		for i := range vals {
			vals[i] = mech.Perturb(r, 0.2)
		}
		return vals
	}
	out, err := client.IngestFrame(ctx, 1,
		[]wirebin.Entry{{User: "frame-http", Group: g.Index, Values: perturbed()}})
	if err != nil || out.Rejected != 0 {
		return fmt.Errorf("frame ingest: %v (rejected %d: %v)", err, out.Rejected, out.Errors)
	}
	// A corrupt frame must answer 400 and bump the reject counter.
	resp, err := http.Post(base+"/v1/ingest", wirebin.ContentType,
		bytes.NewReader([]byte("DAPF not a frame")))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("corrupt frame answered %s, want 400", resp.Status)
	}
	if cfg.UDPAddr == "" {
		return fmt.Errorf("no udp_addr advertised on /v1/config")
	}
	// Confirm the asynchronous UDP delivery from the monotonic ingested
	// metric, not the window report totals: an epoch rotation resets the
	// window mid-poll and would make delivery look lost (see
	// TestIngestedSurvivesRotation).
	before, err := ingestedTotal(base)
	if err != nil {
		return err
	}
	uc, err := transport.DialUDP(cfg.UDPAddr, "")
	if err != nil {
		return err
	}
	defer uc.Close()
	if _, err := uc.Send([]wirebin.Entry{{User: "frame-udp", Group: g.Index, Values: perturbed()}}); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := ingestedTotal(base)
		if err != nil {
			return err
		}
		if got >= before+float64(g.Reports) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("UDP frame never landed (ingested %g → %g)", before, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ingestedTotal scrapes the default tenant's monotonic
// dap_stream_reports_ingested_total — the delivery-confirmation signal
// that, unlike /v1/status window totals, survives epoch rotation.
func ingestedTotal(base string) (float64, error) {
	sc, err := scrape(base)
	if err != nil {
		return 0, err
	}
	return sc.Value("dap_stream_reports_ingested_total",
		map[string]string{"tenant": transport.DefaultTenant}), nil
}

func scrape(base string) (*metrics.Scrape, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		return nil, fmt.Errorf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	return metrics.Parse(resp.Body)
}

// checkInventory verifies every documented family is exposed with its
// documented type. Returns true when anything failed.
func checkInventory(sc *metrics.Scrape) bool {
	failed := false
	for _, m := range inventory {
		typ, ok := sc.Types[m.name]
		switch {
		case !ok:
			fmt.Printf("metricscheck: FAIL missing documented metric %s\n", m.name)
			failed = true
		case typ != m.typ:
			fmt.Printf("metricscheck: FAIL %s has type %s, documented as %s\n", m.name, typ, m.typ)
			failed = true
		}
	}
	return failed
}

// sum adds up every sample of name whose labels include the match pairs.
func sum(sc *metrics.Scrape, name string, match map[string]string) float64 {
	var total float64
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += s.Value
		}
	}
	return total
}

// checkValues asserts the self-booted workload moved each layer's
// counters. Returns true when anything failed.
func checkValues(sc *metrics.Scrape) bool {
	tenant := map[string]string{"tenant": transport.DefaultTenant}
	checks := []struct {
		what string
		got  float64
		ok   bool
	}{}
	add := func(what string, got float64, ok bool) {
		checks = append(checks, struct {
			what string
			got  float64
			ok   bool
		}{what, got, ok})
	}
	v := sc.Value("dap_http_requests_total", map[string]string{"code": "2xx", "route": "/v1/report"})
	add("2xx /v1/report requests", v, v >= 16)
	// Every route pre-binds all status classes at 0, so sum across routes
	// rather than trusting the first matching series.
	v = sum(sc, "dap_http_requests_total", map[string]string{"code": "4xx"})
	add("a 4xx request", v, v >= 1)
	v = sc.Value("dap_stream_reports_ingested_total", tenant)
	add("reports ingested", v, v >= 16)
	v = sc.Value("dap_stream_epoch_rotations_total", tenant)
	add("an epoch rotation", v, v >= 1)
	v = sc.Value("dap_emf_runs_total", nil)
	add("a solver run", v, v >= 1)
	v = sc.Value("dap_privacy_budget_spent_eps", tenant)
	add("privacy budget spent", v, v > 0)
	v = sc.Value("dap_frames_decoded_total", map[string]string{"transport": "http"})
	add("an HTTP frame decoded", v, v >= 1)
	v = sc.Value("dap_frames_decoded_total", map[string]string{"transport": "udp"})
	add("a UDP frame decoded", v, v >= 1)
	v = sc.Value("dap_frames_rejected_total", map[string]string{"transport": "http"})
	add("a corrupt frame rejected", v, v >= 1)
	v = sc.Value("dap_udp_datagrams_total", nil)
	add("a UDP datagram received", v, v >= 1)
	v = sc.Value("dap_udp_last_seq", nil)
	add("UDP frame sequence tracked", v, v >= 1)
	v = sc.Value("dap_wal_appends_total", nil)
	add("WAL appends", v, v >= 16)
	v = sc.Value("dap_wal_segments", nil)
	add("a WAL segment", v, v >= 1)
	v = sc.Value("dap_store_degraded", nil)
	add("healthy store (degraded=0)", v, v == 0)
	v = sc.Value("dap_collector_recovering", nil)
	add("recovery finished (recovering=0)", v, v == 0)

	failed := false
	for _, c := range checks {
		if !c.ok {
			fmt.Printf("metricscheck: FAIL expected %s, got %g\n", c.what, c.got)
			failed = true
		}
	}
	return failed
}
