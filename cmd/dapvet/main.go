// Command dapvet runs the repository's invariant linter: a stdlib-only
// static-analysis pass (internal/lint) that machine-checks the contracts
// the implementation depends on — deterministic estimate/replay paths,
// allocation-free hot paths, mutex ordering, charge-then-refund budget
// accounting, the typed error taxonomy, and metrics registration hygiene.
//
// Usage:
//
//	dapvet [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print one per line as file:line:col: [rule] message and the exit status
// is 1; a clean tree prints "dapvet: ok" and exits 0. Rules and the
// //dapvet:* directive grammar are documented in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dapvet [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks the repo's correctness contracts. Rules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	findings, err := lint.Run(lint.Options{Patterns: flag.Args()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dapvet:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "dapvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("dapvet: ok")
}
