package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/wirebin"
)

// distRun parameterizes the -nodes distributed mode: N in-process node
// collectors, one coordinator, and a single-collector reference that
// ingests the identical stream — the merged estimate must match the
// reference bit for bit.
type distRun struct {
	sp        core.Spec
	adv       attack.Adversary
	atkEpochs int
	nodes     int
	users     int
	reports   int
	batch     int
	gamma     float64
	lo, hi    float64
	seed      uint64
	minRate   float64
	jsonOut   string
}

// serveSpec boots one in-process collector over a loopback listener.
func serveSpec(sp core.Spec, opts transport.ServerOptions) (string, *transport.Server, func(), error) {
	srv, err := transport.NewServerSpecOpts(sp, opts)
	if err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	closeFn := func() {
		_ = hs.Close()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), srv, closeFn, nil
}

// runDistributed drives the scale-out plane end to end and returns the
// process exit code. The workload is partitioned across the nodes
// stripe-disjointly (owner = stripe(user) mod N) and each node ingests
// its share on one ordered connection — per-stripe arrival order then
// matches the reference, which is what makes the merged stripe sums,
// and so the merged estimate, bit-identical.
func runDistributed(c distRun) int {
	sp := c.sp
	if sp.Serve == nil {
		sp.Serve = &core.ServeSpec{}
	}
	// Bit-identity needs estimates that are pure functions of the window
	// histograms: warm starts seed the solver from the previous fit,
	// which the coordinator does not replicate.
	sp.Serve.Warm = false
	if sp.Serve.ExpectedUsers == 0 {
		expected := c.users
		if expected == 0 {
			h := int(math.Ceil(math.Log2(sp.Eps/sp.Eps0)-1e-12)) + 1
			expected = c.reports * h / (1<<h - 1)
		}
		sp.Serve.ExpectedUsers = expected
	}

	ids := make([]string, c.nodes)
	for i := range ids {
		ids[i] = "node-" + strconv.Itoa(i)
	}
	co, err := stream.NewCoordinator(stream.CoordinatorConfig{Nodes: ids, Straggler: time.Minute})
	if err != nil {
		log.Print("daploadgen: ", err)
		return 1
	}
	if err := co.AddTenantSpec(transport.DefaultTenant, sp); err != nil {
		log.Print("daploadgen: ", err)
		return 1
	}
	coordBase, _, closeCoord, err := serveSpec(sp, transport.ServerOptions{Coordinator: co})
	if err != nil {
		log.Print("daploadgen: ", err)
		return 1
	}
	defer closeCoord()
	coordClient := transport.NewClient(coordBase, nil)
	coordClient.SetRetry(3, time.Second)

	refBase, refSrv, closeRef, err := serveSpec(sp, transport.ServerOptions{})
	if err != nil {
		log.Print("daploadgen: ", err)
		return 1
	}
	defer closeRef()
	refClient := transport.NewClient(refBase, nil)

	type nodeSrv struct {
		srv    *transport.Server
		client *transport.Client
	}
	cluster := make([]nodeSrv, c.nodes)
	for i := range cluster {
		base, srv, closeFn, err := serveSpec(sp, transport.ServerOptions{})
		if err != nil {
			log.Print("daploadgen: ", err)
			return 1
		}
		defer closeFn()
		id := ids[i]
		srv.Registry().SetSealHook(func(d *stream.EpochDelta) {
			d.Node = id
			frame, err := wirebin.EncodeDelta(d)
			if err != nil {
				log.Print("daploadgen: encode delta: ", err)
				return
			}
			if _, err := coordClient.PushDelta(context.Background(), frame); err != nil {
				log.Print("daploadgen: push delta: ", err)
			}
		})
		cluster[i] = nodeSrv{srv: srv, client: transport.NewClient(base, nil)}
	}

	ctx := context.Background()
	cfg, err := refClient.Config(ctx)
	if err != nil {
		log.Print("daploadgen: ", err)
		return 1
	}
	entries, _ := workload(cfg, c.adv, c.atkEpochs, c.users, c.reports, c.gamma, c.lo, c.hi, c.seed)
	var total int
	for _, e := range entries {
		total += len(e.Values)
	}
	parts := make([][]entry, c.nodes)
	for _, e := range entries {
		owner := stream.StripeOf(e.User, cfg.Shards) % c.nodes
		parts[owner] = append(parts[owner], e)
	}
	fmt.Printf("daploadgen: distributed: %d nodes, %d users, %d reports, γ=%g, batch %d (one ordered conn per node)\n",
		c.nodes, len(entries), total, c.gamma, c.batch)

	// The reference ingests the whole stream in order, straight into the
	// engine — identical values, identical per-stripe arrival order.
	refT, _ := refSrv.Registry().Get(transport.DefaultTenant)
	for _, e := range entries {
		if err := refT.Ingest(e.User, e.Group, e.Values); err != nil {
			log.Print("daploadgen: reference ingest: ", err)
			return 1
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		lats     []float64
		firstErr error
	)
	start := time.Now()
	for i := range cluster {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := cluster[i].client.Tenant(transport.DefaultTenant)
			acc, l, _, err := drive(ctx, parts[i], 1, c.batch,
				makeSender(ctx, tc, "json", "", transport.DefaultTenant, 1, parts[i]))
			mu.Lock()
			accepted += acc
			lats = append(lats, l...)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		log.Print("daploadgen: ", firstErr)
		return 1
	}
	rate := float64(accepted) / wall.Seconds()
	p50 := stats.Quantile(lats, 0.5)
	p90 := stats.Quantile(lats, 0.9)
	p99 := stats.Quantile(lats, 0.99)
	fmt.Printf("daploadgen: ingested %d reports across %d nodes in %v → %.0f reports/sec\n",
		accepted, c.nodes, wall.Round(time.Millisecond), rate)
	fmt.Printf("daploadgen: request latency ms p50=%.2f p90=%.2f p99=%.2f (n=%d)\n", p50, p90, p99, len(lats))

	// Seal every node (pushing its delta) and the reference, then compare
	// the coordinator's merged estimate against the reference's — field
	// for field, bit for bit.
	for i := range cluster {
		if _, err := cluster[i].client.Rotate(ctx); err != nil {
			// A node owning an empty group cannot estimate; the seal (and
			// the delta push) still happen through the engine.
			tn, _ := cluster[i].srv.Registry().Get(transport.DefaultTenant)
			if _, rerr := tn.Rotate(); rerr != nil {
				fmt.Printf("daploadgen: node %d rotate: %v (seal pushed regardless)\n", i, rerr)
			}
		}
	}
	want, err := refClient.Rotate(ctx)
	if err != nil {
		log.Print("daploadgen: reference rotate: ", err)
		return 1
	}
	got, err := coordClient.MergeEstimate(ctx, "")
	if err != nil {
		log.Print("daploadgen: merged estimate: ", err)
		return 1
	}
	failed := false
	if !reflect.DeepEqual(got, want) {
		fmt.Printf("daploadgen: FAIL merged estimate differs from single-collector reference\n got: %+v\nwant: %+v\n", got, want)
		failed = true
	} else {
		fmt.Printf("daploadgen: distributed equivalence OK: merged mean %.4f == reference (epoch %d)\n", got.Mean, got.Epoch)
	}
	if err := checkMergeMetrics(coordBase, c.nodes); err != nil {
		fmt.Printf("daploadgen: FAIL %v\n", err)
		failed = true
	} else {
		fmt.Println("daploadgen: merge metrics OK")
	}
	if c.minRate > 0 && rate < c.minRate {
		fmt.Printf("daploadgen: FAIL ingest rate %.0f < required %.0f reports/sec\n", rate, c.minRate)
		failed = true
	}
	if c.jsonOut != "" {
		rec := map[string]any{
			"nodes":           c.nodes,
			"users":           len(entries),
			"reports":         accepted,
			"batch":           c.batch,
			"gamma":           c.gamma,
			"wall_ms":         wall.Milliseconds(),
			"reports_per_sec": math.Round(rate),
			"latency_ms":      map[string]float64{"p50": round3(p50), "p90": round3(p90), "p99": round3(p99)},
			"equivalent":      !failed,
		}
		if err := mergeBenchJSON(c.jsonOut, "load_dist", rec); err != nil {
			log.Print("daploadgen: ", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "daploadgen: load_dist record merged into %s\n", c.jsonOut)
	}
	if failed {
		return 1
	}
	return 0
}

// checkMergeMetrics scrapes the coordinator and verifies the merge-plane
// families moved: every node's delta counted, the node gauge at N, and a
// publish-lag sample for the tenant.
func checkMergeMetrics(base string, nodes int) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	sc, err := metrics.Parse(resp.Body)
	if err != nil {
		return err
	}
	var deltas float64
	for _, s := range sc.Samples {
		if s.Name == "dap_merge_deltas_total" {
			deltas += s.Value
		}
	}
	if deltas < float64(nodes) {
		return fmt.Errorf("dap_merge_deltas_total %g, want >= %d", deltas, nodes)
	}
	if v := sc.Value("dap_merge_nodes", nil); v != float64(nodes) {
		return fmt.Errorf("dap_merge_nodes %g, want %d", v, nodes)
	}
	lag := sc.Value("dap_merge_epoch_lag_seconds", map[string]string{"tenant": transport.DefaultTenant})
	if lag < 0 {
		return fmt.Errorf("dap_merge_epoch_lag_seconds %g: no epoch published", lag)
	}
	return nil
}
