// Command daploadgen drives a running DAP collector with a configurable
// honest+Byzantine client mix and reports ingest throughput and latency
// percentiles — the serving layer's benchmark harness.
//
// Usage:
//
//	daploadgen -addr http://localhost:8080 -users 10000 -gamma 0.1 -conns 8
//	daploadgen -addr "" -reports 10000 -epoch 150ms -min-rate 100000 -assert
//
// With -addr "" the generator boots an in-process collector over a real
// loopback HTTP listener (the full wire stack, no external process) —
// that is the CI smoke mode. Honest users perturb locally with their
// assigned group's budget, exactly like real clients; Byzantine users
// submit high-half poison values. Reports travel in batched /v1/ingest
// requests of -batch users each.
//
// -min-rate fails the run when ingest throughput drops below the bound;
// -assert additionally checks that a live per-epoch estimate exists and is
// sane. -scrape-metrics scrapes the collector's /metrics before and after
// the run and fails unless the server-side ingest counter delta for the
// tenant matches the client-side acked report count — an end-to-end check
// that the observability pipeline counts exactly what the wire acked.
// -bench-json merges a "load" record into an existing BENCH_*.json
// (or creates the file), recording throughput, estimate latency, retry
// counts and the metrics cross-check next to the experiment timings.
//
// -retries N retries transient failures (network errors, 5xx responses)
// with exponential backoff plus jitter capped at -retry-max-wait,
// honouring the collector's Retry-After — rotation and crash-recovery
// windows then cost latency instead of failed runs. With -addr "",
// -store-dir makes the self-served collector durable (WAL + snapshots,
// -fsync policy), which is how the WAL overhead gate measures durability
// cost against the in-memory baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/specflag"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wirebin"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "collector base URL; empty boots an in-process collector")
		tenant  = flag.String("tenant", transport.DefaultTenant, "tenant to drive")
		users   = flag.Int("users", 0, "users to simulate (0 = derive from -reports)")
		reports = flag.Int("reports", 10000, "target total report count (used when -users is 0)")
		conns   = flag.Int("conns", 4, "concurrent sender connections")
		batch   = flag.Int("batch", 200, "users per ingest request")
		gamma   = flag.Float64("gamma", 0, "Byzantine user fraction")
		atkEps  = flag.Int("attack-epochs", 1, "attacker epochs the workload spans (drives epoch-adaptive attacks like ramp and burst)")
		lo      = flag.Float64("lo", -0.5, "honest value range low")
		hi      = flag.Float64("hi", 0.1, "honest value range high")
		seed    = flag.Uint64("seed", 1, "workload rng seed")
		rotate  = flag.Bool("rotate", true, "seal the epoch after ingest (fresh cached estimate)")
		minRate = flag.Float64("min-rate", 0, "fail when ingest reports/sec falls below this")
		assert  = flag.Bool("assert", false, "fail unless a sane per-epoch estimate is served")
		jsonOut = flag.String("bench-json", "", "merge a load record into this BENCH_*.json")
		retries = flag.Int("retries", 0, "retry transient failures (network errors, 5xx) up to this many times per request")
		retryMW = flag.Duration("retry-max-wait", 2*time.Second, "cap on per-retry backoff (exponential + jitter; server Retry-After honoured)")
		stDir   = flag.String("store-dir", "", "durability directory for the self-served collector (with -addr \"\")")
		fsync   = flag.String("fsync", "os", "self-served store fsync policy: always | interval | os")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
		scrapeM = flag.Bool("scrape-metrics", false, "scrape the collector's /metrics before and after the run and fail unless the server-side ingest counter delta matches the client-side acked count")
		wire    = flag.String("wire", "", "ingest wire: json | bin (binary frames over HTTP) | udp (binary frames over UDP); empty follows the tenant's advertised preference")
		udpAddr = flag.String("udp-addr", "", "UDP ingest socket address for -wire=udp (empty uses the collector's advertised udp_addr)")
		frames  = flag.Int("frames", 8, "frames coalesced per HTTP request on -wire=bin (the frame-stream wire; 1 = one request per frame)")
		nodesN  = flag.Int("nodes", 0, "distributed mode: boot this many in-process node collectors plus a coordinator, partition the stream stripe-disjointly, and assert the merged estimate matches a single collector bit for bit (needs -addr \"\")")
	)
	// Self-serve collector spec (only with -addr ""): -spec file.json plus
	// the shared protocol/serving flags as overrides — the same resolution
	// path cmd/dapcollect uses, so the two binaries cannot drift. The
	// default spec serves with epoch warm starts on (serve.warm), the
	// recommended production setting; a -spec file chooses its own.
	sf := specflag.New(flag.CommandLine, core.NewSpec(core.MeanTask(),
		core.WithBudget(1, 0.25), core.WithScheme(core.SchemeEMFStar),
		core.WithServe(core.ServeSpec{Warm: true})))
	flag.Parse()
	// Profiles are flushed through stopProfiles rather than defers: the
	// failure paths below exit the process, and os.Exit would otherwise
	// discard the profile exactly when a failing run is being profiled.
	var profileStops []func()
	stopProfiles := func() {
		for i := len(profileStops) - 1; i >= 0; i-- {
			profileStops[i]()
		}
		profileStops = nil
	}
	fatal := func(args ...any) {
		stopProfiles()
		log.Fatal(append([]any{"daploadgen: "}, args...)...)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		profileStops = append(profileStops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProf != "" {
		profileStops = append(profileStops, func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Print("daploadgen: ", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print("daploadgen: ", err)
			}
		})
	}

	if *nodesN != 0 {
		if *nodesN < 2 {
			fatal("-nodes wants at least 2 node collectors")
		}
		if *addr != "" {
			fatal("-nodes boots in-process collectors and needs -addr \"\"")
		}
		if *stDir != "" {
			fatal("-nodes runs ephemeral collectors; -store-dir is not supported")
		}
		if *wire != "" && *wire != "json" {
			fatal("-nodes drives the JSON wire only")
		}
		sp, err := sf.Resolve()
		if err != nil {
			fatal(err)
		}
		advSpec := sp.Attack
		sp.Attack = nil
		adv, epochs := resolveAdversary(advSpec, *atkEps, fatal)
		code := runDistributed(distRun{
			sp: sp, adv: adv, atkEpochs: epochs,
			nodes: *nodesN, users: *users, reports: *reports, batch: *batch,
			gamma: *gamma, lo: *lo, hi: *hi, seed: *seed,
			minRate: *minRate, jsonOut: *jsonOut,
		})
		stopProfiles()
		os.Exit(code)
	}

	base := *addr
	if base != "" && sf.Path() != "" {
		fatal("-spec configures the self-served collector and needs -addr \"\"")
	}
	// The Byzantine mix's adversary comes from the resolved spec's attack
	// section (self-serve mode) or the bare -attack flag (external
	// collectors). Attack sections are simulation/client-side only, so the
	// spec is stripped of it before the collector boots — the wire rejects
	// attack-bearing tenant specs.
	var advSpec *attack.Spec
	if base == "" {
		sp, err := sf.Resolve()
		if err != nil {
			fatal(err)
		}
		advSpec = sp.Attack
		sp.Attack = nil
		var closeSrv func()
		base, closeSrv, err = selfServe(sp, *users, *reports, *stDir, *fsync, *wire == "udp")
		if err != nil {
			fatal(err)
		}
		defer closeSrv()
		fmt.Printf("daploadgen: self-serving collector at %s\n", base)
	} else {
		if *stDir != "" {
			fatal("-store-dir configures the self-served collector and needs -addr \"\"")
		}
		var err error
		if advSpec, err = sf.Attack(); err != nil {
			fatal(err)
		}
	}
	adv, epochs := resolveAdversary(advSpec, *atkEps, fatal)
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conns * 2,
		MaxIdleConnsPerHost: *conns * 2,
	}}
	client := transport.NewClient(base, hc)
	if *retries > 0 {
		client.SetRetry(*retries, *retryMW)
	}
	c := client.Tenant(*tenant)
	ctx := context.Background()
	cfg, err := c.Config(ctx)
	if err != nil {
		fatal(err)
	}
	if cfg.Kind != "" && cfg.Kind != "mean" {
		fatal(fmt.Sprintf("tenant kind %q not supported (mean only)", cfg.Kind))
	}
	// Resolve the ingest wire: the flag wins, then the tenant's advertised
	// preference (spec serve.wire), then JSON.
	w := strings.ToLower(*wire)
	if w == "" {
		w = cfg.Wire
	}
	if w == "" {
		w = "json"
	}
	udpTarget := *udpAddr
	switch w {
	case "json", "bin":
	case "udp":
		if udpTarget == "" {
			udpTarget = cfg.UDPAddr
		}
		if udpTarget == "" {
			fatal("collector advertises no udp_addr; pass -udp-addr or open the socket")
		}
	default:
		fatal(fmt.Sprintf("unknown -wire %q (want json, bin or udp)", w))
	}

	entries, honestMean := workload(cfg, adv, epochs, *users, *reports, *gamma, *lo, *hi, *seed)
	var total int
	for _, e := range entries {
		total += len(e.Values)
	}
	fmt.Printf("daploadgen: %d users, %d reports, γ=%g, %d conns, batch %d, wire %s\n",
		len(entries), total, *gamma, *conns, *batch, w)

	var ingestedBefore float64
	if *scrapeM {
		v, err := scrapeIngested(hc, base, *tenant)
		if err != nil {
			fatal("scrape-metrics: ", err)
		}
		ingestedBefore = v
	}
	var reportsBefore float64
	if w == "udp" {
		if reportsBefore, err = scrapeIngested(hc, base, *tenant); err != nil {
			fatal(err)
		}
	}

	runStart := time.Now()
	accepted, latencies, wall, err := drive(ctx, entries, *conns, *batch, makeSender(ctx, c, w, udpTarget, *tenant, *frames, entries))
	if err != nil {
		fatal(err)
	}
	if w == "udp" {
		// Fire-and-forget wire: wait for the datagrams to drain into the
		// engine and count what actually landed; the difference is loss.
		// The drain time counts toward the measured wall clock.
		delivered, derr := waitDelivered(func() (float64, error) {
			return scrapeIngested(hc, base, *tenant)
		}, reportsBefore, accepted)
		if derr != nil {
			fatal(derr)
		}
		wall = time.Since(runStart)
		if delivered < accepted {
			fmt.Printf("daploadgen: udp loss: %d of %d reports dropped\n", accepted-delivered, accepted)
		}
		accepted = delivered
	}
	rate := float64(accepted) / wall.Seconds()
	p50 := stats.Quantile(latencies, 0.5)
	p90 := stats.Quantile(latencies, 0.9)
	p99 := stats.Quantile(latencies, 0.99)
	retried := client.Retries()
	fmt.Printf("daploadgen: ingested %d reports in %v → %.0f reports/sec (%d retries)\n",
		accepted, wall.Round(time.Millisecond), rate, retried)
	fmt.Printf("daploadgen: request latency ms p50=%.2f p90=%.2f p99=%.2f (n=%d)\n", p50, p90, p99, len(latencies))

	if *rotate {
		if _, err := c.Rotate(ctx); err != nil {
			fatal("rotate: ", err)
		}
	}
	liveStart := time.Now()
	live, err := c.Estimate(ctx, "1")
	if err != nil {
		fatal("live estimate: ", err)
	}
	liveMs := float64(time.Since(liveStart).Microseconds()) / 1000
	cachedStart := time.Now()
	cached, cachedErr := c.Estimate(ctx, "0")
	cachedMs := float64(time.Since(cachedStart).Microseconds()) / 1000
	fmt.Printf("daploadgen: live estimate %.2fms → mean %.4f γ̂ %.3f (epoch %d)\n", liveMs, live.Mean, live.Gamma, live.Epoch)
	if cachedErr == nil {
		fmt.Printf("daploadgen: cached per-epoch estimate %.2fms → mean %.4f (epoch %d)\n", cachedMs, cached.Mean, cached.Epoch)
	}

	failed := false
	var serverIngested float64
	if *scrapeM {
		after, err := scrapeIngested(hc, base, *tenant)
		if err != nil {
			fatal("scrape-metrics: ", err)
		}
		serverIngested = after - ingestedBefore
		if serverIngested != float64(accepted) {
			fmt.Printf("daploadgen: FAIL metrics cross-check: server ingested %.0f reports, client acked %d\n",
				serverIngested, accepted)
			failed = true
		} else {
			fmt.Printf("daploadgen: metrics cross-check OK: server ingested %.0f == client acked %d\n",
				serverIngested, accepted)
		}
	}
	if *minRate > 0 && rate < *minRate {
		fmt.Printf("daploadgen: FAIL ingest rate %.0f < required %.0f reports/sec\n", rate, *minRate)
		failed = true
	}
	if *assert {
		if err := sane(live, cached, cachedErr, honestMean, *gamma, *rotate || cfg.EpochMs > 0); err != nil {
			fmt.Printf("daploadgen: FAIL %v\n", err)
			failed = true
		} else {
			fmt.Println("daploadgen: estimate sanity OK")
		}
	}
	if *jsonOut != "" {
		rec := map[string]any{
			"users":           len(entries),
			"reports":         accepted,
			"conns":           *conns,
			"batch":           *batch,
			"gamma":           *gamma,
			"wire":            w,
			"wall_ms":         wall.Milliseconds(),
			"reports_per_sec": math.Round(rate),
			"retries":         client.Retries(),
			// Latencies are recorded at fixed precision (three decimals,
			// i.e. microseconds) so BENCH files don't accumulate float noise
			// like "p99": 4.742509999999999.
			"latency_ms":       map[string]float64{"p50": round3(p50), "p90": round3(p90), "p99": round3(p99)},
			"estimate_live_ms": round3(liveMs),
		}
		if *stDir != "" {
			rec["store"] = map[string]any{"dir": *stDir, "fsync": *fsync}
		}
		if cachedErr == nil {
			rec["estimate_cached_ms"] = round3(cachedMs)
		}
		if *scrapeM {
			rec["metrics"] = map[string]any{
				"server_ingested": serverIngested,
				"client_acked":    accepted,
			}
		}
		// One record key per wire, so a BENCH file can carry the JSON
		// baseline and the binary fast-path result side by side ("load"
		// stays the JSON-wire record for schema back-compat).
		key := "load"
		switch w {
		case "bin":
			key = "load_bin"
		case "udp":
			key = "load_udp"
		}
		if err := mergeBenchJSON(*jsonOut, key, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "daploadgen: %s record merged into %s\n", key, *jsonOut)
	}
	stopProfiles()
	if failed {
		os.Exit(1)
	}
}

// selfServe boots an in-process collector over a loopback listener from
// the resolved task spec. A non-empty storeDir makes it durable (WAL +
// snapshots under the directory with the given fsync policy) — the WAL
// overhead benchmark mode. With wantUDP (or a spec serve.udp_addr) the
// binary-ingest UDP socket is opened too and advertised on /v1/config.
func selfServe(sp core.Spec, users, reports int, storeDir, fsync string, wantUDP bool) (string, func(), error) {
	if sp.Serve == nil {
		sp.Serve = &core.ServeSpec{}
	}
	if sp.Serve.ExpectedUsers == 0 {
		expected := users
		if expected == 0 {
			// Mirror workload sizing: users round-robin over the h groups and
			// group t's users report 2^t times, so -reports total reports come
			// from about reports·h/(2^h−1) users.
			h := int(math.Ceil(math.Log2(sp.Eps/sp.Eps0)-1e-12)) + 1
			expected = reports * h / (1<<h - 1)
		}
		sp.Serve.ExpectedUsers = expected
	}
	var opts transport.ServerOptions
	var st *store.Store
	if storeDir != "" {
		policy, err := store.ParseSyncPolicy(fsync)
		if err != nil {
			return "", nil, err
		}
		if st, err = store.Open(storeDir, store.Options{Sync: policy}); err != nil {
			return "", nil, err
		}
		opts.Store = st
	}
	srv, err := transport.NewServerSpecOpts(sp, opts)
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return "", nil, err
	}
	var udp *transport.UDPListener
	if uaddr := ""; wantUDP || (sp.Serve != nil && sp.Serve.UDPAddr != "") {
		if sp.Serve != nil {
			uaddr = sp.Serve.UDPAddr
		}
		if uaddr == "" {
			uaddr = "127.0.0.1:0"
		}
		if udp, err = srv.ListenUDP(uaddr); err != nil {
			_ = ln.Close()
			srv.Close()
			if st != nil {
				_ = st.Close()
			}
			return "", nil, err
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	closeFn := func() {
		_ = hs.Close()
		if udp != nil {
			_ = udp.Close()
		}
		srv.Close()
		if st != nil {
			_ = st.Close()
		}
	}
	return "http://" + ln.Addr().String(), closeFn, nil
}

// entry is one user's upload.
type entry = transport.ReportRequest

// workload builds the client mix: users round-robin across groups, honest
// users perturb one value per report slot with the group budget, Byzantine
// users submit the configured adversary's poison (default: BBA high-half).
// The workload spans atkEpochs synthetic attacker epochs — the epoch index
// advances as users are generated and reaches epoch-adaptive attackers
// (ramp, burst) through attack.Env — and users whose adversary emits
// nothing for an epoch (burst off-phase, dropout) stay silent. Returns the
// entries and the honest population's true mean.
// resolveAdversary turns a resolved attack spec (nil = default BBA) into
// the adversary driving the Byzantine mix, sizing the workload to the
// attack's own epoch schedule unless -attack-epochs was set explicitly.
func resolveAdversary(advSpec *attack.Spec, atkEpochs int, fatal func(args ...any)) (attack.Adversary, int) {
	adv := attack.Adversary(attack.NewBBA(attack.RangeHighHalf, attack.DistUniform))
	epochs := atkEpochs
	if advSpec != nil {
		var err error
		if adv, err = attack.New(*advSpec); err != nil {
			fatal(err)
		}
		if advSpec.Categorical() {
			fatal("categorical attacks cannot drive the mean-task load generator")
		}
		// An epoch-adaptive attack at the default -attack-epochs 1 would
		// stay pinned to its epoch-0 phase (a default ramp never fires);
		// size the workload to the attack's own schedule unless the flag
		// was set explicitly.
		if advSpec.EpochAdaptive() {
			explicit := false
			flag.Visit(func(fl *flag.Flag) {
				if fl.Name == "attack-epochs" {
					explicit = true
				}
			})
			if !explicit {
				epochs = advSpec.EpochSpan()
				fmt.Printf("daploadgen: attack %q is epoch-adaptive; spanning %d attacker epochs (override with -attack-epochs)\n",
					advSpec.Name, epochs)
			}
		}
	}
	return adv, epochs
}

func workload(cfg *transport.ConfigResponse, adv attack.Adversary, atkEpochs, users, reports int, gamma, lo, hi float64, seed uint64) ([]entry, float64) {
	r := rng.New(seed)
	mechs := make([]*pm.Mechanism, len(cfg.Groups))
	envs := make([]attack.Env, len(cfg.Groups))
	for i, g := range cfg.Groups {
		m, err := pm.New(g.Eps)
		if err != nil {
			log.Fatal("daploadgen: ", err)
		}
		mechs[i] = m
		envs[i] = attack.EnvFor(m, 0)
		envs[i].Group = g.Index
	}
	if atkEpochs < 1 {
		atkEpochs = 1
	}
	// Estimated user total for spreading the epoch index over the run;
	// mirrors selfServe's sizing when -users is 0.
	estUsers := users
	if estUsers == 0 {
		h := len(cfg.Groups)
		if estUsers = reports * h / (1<<h - 1); estUsers < 1 {
			estUsers = 1
		}
	}
	var entries []entry
	var honestSum float64
	var honest int
	total := 0
	for i := 0; users > 0 && i < users || users == 0 && total < reports; i++ {
		g := cfg.Groups[i%len(cfg.Groups)]
		var vals []float64
		if gamma > 0 && r.Float64() < gamma {
			env := envs[g.Index]
			if env.Epoch = i * atkEpochs / estUsers; env.Epoch >= atkEpochs {
				env.Epoch = atkEpochs - 1
			}
			vals = adv.Poison(r, env, g.Reports)
			if len(vals) == 0 {
				// Silent colluder this epoch (burst off-phase, dropout): no
				// entry, but the unused slots still count toward the -reports
				// sizing target or an always-silent mix would loop forever.
				total += g.Reports
				continue
			}
		} else {
			v := rng.Uniform(r, lo, hi)
			honestSum += v
			honest++
			vals = make([]float64, g.Reports)
			for k := range vals {
				vals[k] = mechs[g.Index].Perturb(r, v)
			}
		}
		entries = append(entries, entry{User: "lg" + strconv.Itoa(i), Group: g.Index, Values: vals})
		total += len(vals)
	}
	if honest == 0 {
		return entries, 0
	}
	return entries, honestSum / float64(honest)
}

// sendFunc uploads the batch entries[lo:hi] (seq identifies the frame on
// the binary wires) and returns the acked — or, on UDP, sent — report
// count. A sender may coalesce batches (the frame-stream wire): a call
// that only buffers returns (0, nil) and the worker's closer flushes the
// tail, returning what it acked. mkSend builds one sender per worker, so
// per-connection state (a UDP socket with its own sequence, a pending
// frame buffer) stays unshared.
type sendFunc func(seq uint64, lo, hi int) (int, error)

// makeSender builds the per-worker sender factory for the chosen wire.
// All three wires batch identically; only the serialization and transport
// differ, so measured differences are wire cost, not workload shape. On
// the bin wire, frames consecutive batches ride one HTTP request as a
// length-prefixed frame stream.
func makeSender(ctx context.Context, c *transport.TenantClient, w, udpTarget, tenant string, frames int, entries []entry) func() (sendFunc, func() (int, error), error) {
	// The binary wires reuse the workload's user/value storage; only the
	// entry headers are re-typed, once.
	var wentries []wirebin.Entry
	if w != "json" {
		wentries = make([]wirebin.Entry, len(entries))
		for i, e := range entries {
			wentries[i] = wirebin.Entry{User: e.User, Group: e.Group, Values: e.Values}
		}
	}
	noFlush := func() (int, error) { return 0, nil }
	switch w {
	case "bin":
		if frames < 1 {
			frames = 1
		}
		return func() (sendFunc, func() (int, error), error) {
			pend := make([][]wirebin.Entry, 0, frames)
			var seqBase uint64
			flush := func() (int, error) {
				if len(pend) == 0 {
					return 0, nil
				}
				res, err := c.IngestFrames(ctx, seqBase, pend)
				pend = pend[:0]
				if err != nil {
					return 0, err
				}
				if res.Rejected > 0 {
					return res.Accepted, fmt.Errorf("collector rejected %d entries: %v", res.Rejected, res.Errors)
				}
				return res.Accepted, nil
			}
			send := func(seq uint64, lo, hi int) (int, error) {
				if len(pend) == 0 {
					seqBase = seq
				}
				pend = append(pend, wentries[lo:hi])
				if len(pend) < frames {
					return 0, nil
				}
				return flush()
			}
			return send, flush, nil
		}
	case "udp":
		// Frames to the default tenant travel without a tenant name, like
		// the tenant-less HTTP routes.
		if tenant == transport.DefaultTenant {
			tenant = ""
		}
		return func() (sendFunc, func() (int, error), error) {
			uc, err := transport.DialUDP(udpTarget, tenant)
			if err != nil {
				return nil, nil, err
			}
			return func(_ uint64, lo, hi int) (int, error) {
					if _, err := uc.Send(wentries[lo:hi]); err != nil {
						return 0, err
					}
					n := 0
					for i := lo; i < hi; i++ {
						n += len(wentries[i].Values)
					}
					return n, nil
				}, func() (int, error) {
					return 0, uc.Close()
				}, nil
		}
	default:
		return func() (sendFunc, func() (int, error), error) {
			return func(_ uint64, lo, hi int) (int, error) {
				res, err := c.Ingest(ctx, entries[lo:hi])
				if err != nil {
					return 0, err
				}
				if res.Rejected > 0 {
					return res.Accepted, fmt.Errorf("collector rejected %d entries: %v", res.Rejected, res.Errors)
				}
				return res.Accepted, nil
			}, noFlush, nil
		}
	}
}

// drive sends the entries in batches over conns parallel workers and
// returns accepted report count, per-request latencies (ms) and the wall
// time of the whole ingest. Latency is sampled per wire operation: sends
// that only buffered into a coalescing sender (0 reports, no error)
// produce no sample.
func drive(ctx context.Context, entries []entry, conns, batch int, mkSend func() (sendFunc, func() (int, error), error)) (int, []float64, time.Duration, error) {
	if batch < 1 {
		batch = 1
	}
	type job struct {
		seq    uint64
		lo, hi int
	}
	var jobs []job
	for lo := 0; lo < len(entries); lo += batch {
		jobs = append(jobs, job{uint64(len(jobs) + 1), lo, min(lo+batch, len(entries))})
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		lats     []float64
		firstErr error
	)
	ch := make(chan job)
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			send, closeSend, err := mkSend()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				for range ch {
				}
				return
			}
			for j := range ch {
				t0 := time.Now()
				n, err := send(j.seq, j.lo, j.hi)
				lat := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				accepted += n
				if n > 0 || err != nil {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
			// The closer flushes any batches still pending in a coalescing
			// sender (and releases the connection).
			t0 := time.Now()
			n, err := closeSend()
			lat := float64(time.Since(t0).Microseconds()) / 1000
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			accepted += n
			if n > 0 || err != nil {
				lats = append(lats, lat)
			}
			mu.Unlock()
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	_ = ctx
	return accepted, lats, time.Since(start), firstErr
}

// waitDelivered polls the collector's monotonic per-tenant ingested
// counter until sent reports have drained from the UDP socket into the
// engine (or delivery stalls for 2s — lost datagrams never arrive). It
// returns how many of the sent reports landed. The /v1/status window
// counts reset on epoch rotation, so the metric — not the status — is
// the only reliable delivery signal against a rotating collector.
func waitDelivered(poll func() (float64, error), before float64, sent int) (int, error) {
	last, lastChange := -1.0, time.Now()
	for {
		n, err := poll()
		if err != nil {
			return 0, err
		}
		if int(n-before) >= sent {
			return sent, nil
		}
		if n != last {
			last, lastChange = n, time.Now()
		} else if time.Since(lastChange) > 2*time.Second {
			return int(n - before), nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// scrapeIngested fetches the collector's /metrics and returns the
// tenant's dap_stream_reports_ingested_total value (0 when the series
// does not exist yet, e.g. before the first accepted report).
func scrapeIngested(hc *http.Client, base, tenant string) (float64, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	sc, err := metrics.Parse(resp.Body)
	if err != nil {
		return 0, err
	}
	return sc.Value("dap_stream_reports_ingested_total", map[string]string{"tenant": tenant}), nil
}

// sane validates the served estimates.
func sane(live, cached *transport.EstimateResponse, cachedErr error, honestMean, gamma float64, epochs bool) error {
	var wSum float64
	for _, w := range live.Weights {
		wSum += w
	}
	if math.Abs(wSum-1) > 1e-6 {
		return fmt.Errorf("weights sum to %v", wSum)
	}
	if live.Mean < -1 || live.Mean > 1 || math.IsNaN(live.Mean) {
		return fmt.Errorf("mean %v outside [-1,1]", live.Mean)
	}
	if gamma == 0 && math.Abs(live.Mean-honestMean) > 0.35 {
		return fmt.Errorf("no-attack mean %v far from truth %v", live.Mean, honestMean)
	}
	if gamma > 0 && math.Abs(live.Mean-honestMean) > 0.5 {
		return fmt.Errorf("attacked mean %v implausibly far from truth %v", live.Mean, honestMean)
	}
	if epochs {
		if cachedErr != nil {
			return fmt.Errorf("no cached per-epoch estimate: %v", cachedErr)
		}
		if cached.Epoch < 1 {
			return fmt.Errorf("cached estimate has epoch %d", cached.Epoch)
		}
	}
	return nil
}

// round3 rounds to three decimals — the fixed precision of BENCH load
// floats (milliseconds quantities keep microsecond resolution).
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// mergeBenchJSON sets the given load-record key in the JSON object at
// path, creating the file (with schema/date stamps) when absent.
func mergeBenchJSON(path, key string, load map[string]any) error {
	obj := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &obj); err != nil {
			return fmt.Errorf("merge %s: %w", path, err)
		}
	} else {
		obj["schema"] = 1
		obj["date"] = time.Now().UTC().Format(time.RFC3339)
	}
	obj[key] = load
	data, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
