// Rating fraud: the paper's motivating scenario. An e-commerce platform
// collects 1–5 star product ratings under LDP. A botnet of fake
// reviewers (the paper cites Mechanical Turk review farms) colludes to
// boost a product's average rating by flooding the top of the
// perturbation output domain. DAP recovers the genuine average.
package main

import (
	"fmt"
	"math/rand/v2"

	dap "repro"
)

const (
	minStars = 1.0
	maxStars = 5.0
)

// toUnit maps a star rating into DAP's [−1, 1] input domain.
func toUnit(stars float64) float64 { return 2*(stars-minStars)/(maxStars-minStars) - 1 }

// toStars maps back.
func toStars(unit float64) float64 { return minStars + (unit+1)/2*(maxStars-minStars) }

func main() {
	r := rand.New(rand.NewPCG(7, 7))

	// Genuine shoppers: a mediocre product, ratings centered on 2.8 stars.
	const n = 50000
	values := make([]float64, n)
	var sum float64
	for i := range values {
		stars := 2.8 + r.NormFloat64()*0.9
		if stars < minStars {
			stars = minStars
		}
		if stars > maxStars {
			stars = maxStars
		}
		values[i] = toUnit(stars)
		sum += stars
	}
	trueStars := sum / n

	// The fraud campaign controls 20% of the "users" and reports the
	// highest values the perturbation domain admits.
	adv := dap.NewBBA(dap.RangeHighQuarter, dap.DistBeta61) // skewed to the extreme top
	const gamma = 0.20

	fmt.Printf("genuine average rating: %.2f stars\n\n", trueStars)

	reports, err := dap.CollectPM(r, values, 1.0, adv, gamma, 0)
	if err != nil {
		panic(err)
	}
	naive := toStars(clamp(dap.Ostrich(reports)))
	fmt.Printf("platform shows (no defense):   %.2f stars  <- boosted by %.2f\n",
		naive, naive-trueStars)

	trimmed := toStars(clamp(dap.Trimming(reports, 0.5, true)))
	fmt.Printf("platform shows (trimming 50%%): %.2f stars  <- overkilled by %.2f\n",
		trimmed, trimmed-trueStars)

	d, err := dap.NewDAP(dap.Params{Eps: 1, Eps0: 1.0 / 16, Scheme: dap.SchemeCEMFStar})
	if err != nil {
		panic(err)
	}
	est, err := d.Run(r, values, adv, gamma)
	if err != nil {
		panic(err)
	}
	fmt.Printf("platform shows (DAP/CEMF*):    %.2f stars  <- off by %+.2f\n",
		toStars(est.Mean), toStars(est.Mean)-trueStars)
	fmt.Printf("\nDAP also exposes the campaign: estimated bot share γ̂ = %.1f%% (true 20%%)\n",
		est.Gamma*100)
}

func clamp(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
