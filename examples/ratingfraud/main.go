// Rating fraud: the paper's motivating scenario. An e-commerce platform
// collects 1–5 star product ratings under LDP. A botnet of fake
// reviewers (the paper cites Mechanical Turk review farms) colludes to
// boost a product's average rating by flooding the top of the
// perturbation output domain. DAP recovers the genuine average.
//
// The star scale is part of the task description: WithDomain(1, 5)
// declares the raw units, and Spec.ToUnit/FromUnit translate between
// stars and the protocol's [−1, 1] domain — no ad-hoc conversion code.
package main

import (
	"fmt"

	dap "repro"
	"repro/internal/rng"
)

func main() {
	r := rng.New(7)

	sp := dap.NewSpec(dap.Mean(),
		dap.WithBudget(1, 1.0/16),
		dap.WithScheme(dap.SchemeCEMFStar),
		dap.WithDomain(1, 5)) // star ratings

	// Genuine shoppers: a mediocre product, ratings centered on 2.8 stars.
	const n = 50000
	values := make([]float64, n)
	var sum float64
	for i := range values {
		stars := 2.8 + r.NormFloat64()*0.9
		if stars < 1 {
			stars = 1
		}
		if stars > 5 {
			stars = 5
		}
		values[i] = sp.ToUnit(stars)
		sum += stars
	}
	trueStars := sum / n

	// The fraud campaign controls 20% of the "users" and reports the
	// highest values the perturbation domain admits.
	adv := dap.NewBBA(dap.RangeHighQuarter, dap.DistBeta61) // skewed to the extreme top
	const gamma = 0.20

	fmt.Printf("genuine average rating: %.2f stars\n\n", trueStars)

	// The comparator defenses run as specs too: same task, a defense name
	// instead of the protocol.
	for _, d := range []dap.DefenseSpec{
		{Name: "ostrich"},
		{Name: "trimming", Frac: 0.5, Side: "right"},
	} {
		est, err := dap.Build(dap.NewSpec(dap.Mean(), dap.WithDomain(1, 5), dap.WithDefense(d)))
		if err != nil {
			panic(err)
		}
		res, err := est.(dap.Runner).Run(r, values, adv, gamma)
		if err != nil {
			panic(err)
		}
		stars := sp.FromUnit(res.Mean)
		fmt.Printf("platform shows (%-8s):    %.2f stars  <- off by %+.2f\n",
			d.Name, stars, stars-trueStars)
	}

	est, err := dap.Build(sp)
	if err != nil {
		panic(err)
	}
	res, err := est.(dap.Runner).Run(r, values, adv, gamma)
	if err != nil {
		panic(err)
	}
	stars := sp.FromUnit(res.Mean)
	fmt.Printf("platform shows (DAP/CEMF*):   %.2f stars  <- off by %+.2f\n",
		stars, stars-trueStars)
	fmt.Printf("\nDAP also exposes the campaign: estimated bot share γ̂ = %.1f%% (true 20%%)\n",
		res.Gamma*100)
}
