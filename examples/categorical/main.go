// Categorical frequency estimation: a health agency collects
// age-at-death records under k-RR (the paper's COVID-19 experiment,
// Fig. 9(c)(d)). Attackers inject reports into chosen age groups to
// distort the published histogram; the categorical DAP locates the
// poisoned categories and removes their injected mass.
package main

import (
	"fmt"
	"math/rand/v2"

	dap "repro"
)

func main() {
	r := rand.New(rand.NewPCG(3, 5))

	cov := dap.COVID19()
	records := cov.Sample(r, 60000)
	trueFreqs := cov.Freqs()

	// Attackers (25% of reporters) inflate age groups 10–12.
	poisoned := []int{10, 11, 12}

	f, err := dap.NewFreqDAP(dap.FreqParams{
		Eps:    1,
		Eps0:   1.0 / 16,
		K:      cov.K(),
		Scheme: dap.SchemeCEMFStar,
	})
	if err != nil {
		panic(err)
	}
	col, err := f.CollectFreq(r, records, poisoned, 0.25)
	if err != nil {
		panic(err)
	}
	est, err := f.EstimateFreq(col)
	if err != nil {
		panic(err)
	}
	ostrich, err := f.OstrichFreq(col)
	if err != nil {
		panic(err)
	}

	fmt.Printf("probed poisoned categories: %v (true: %v)\n", est.PoisonCats, poisoned)
	fmt.Printf("probed injection rate γ̂:    %.1f%% (true 25%%)\n\n", est.Gamma*100)
	fmt.Println("age group   true    ostrich  DAP")
	for j, label := range cov.Labels {
		marker := ""
		for _, p := range poisoned {
			if j == p {
				marker = "  <- poisoned"
			}
		}
		fmt.Printf("%-10s  %.4f  %.4f   %.4f%s\n", label, trueFreqs[j], ostrich[j], est.Freqs[j], marker)
	}
	fmt.Printf("\nMSE ostrich: %.3e\nMSE DAP:     %.3e\n",
		mse(ostrich, trueFreqs), mse(est.Freqs, trueFreqs))
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}
