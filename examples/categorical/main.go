// Categorical frequency estimation: a health agency collects
// age-at-death records under k-RR (the paper's COVID-19 experiment,
// Fig. 9(c)(d)). Attackers inject reports into chosen age groups to
// distort the published histogram; the categorical DAP locates the
// poisoned categories and removes their injected mass.
//
// The task is one Spec — Frequency(K) — built through the same
// dap.Build surface as every other kind; the estimator's CatRunner face
// simulates the direct-injection threat.
package main

import (
	"fmt"

	dap "repro"
	"repro/internal/rng"
)

func main() {
	r := rng.New(3)

	cov := dap.COVID19()
	records := cov.Sample(r, 60000)
	trueFreqs := cov.Freqs()

	// Attackers (25% of reporters) inflate age groups 10–12.
	poisoned := []int{10, 11, 12}

	sp := dap.NewSpec(dap.Frequency(cov.K()),
		dap.WithBudget(1, 1.0/16),
		dap.WithScheme(dap.SchemeCEMFStar))
	est, err := dap.Build(sp)
	if err != nil {
		panic(err)
	}
	res, err := est.(dap.CatRunner).RunCats(r, records, poisoned, 0.25)
	if err != nil {
		panic(err)
	}

	fmt.Printf("probed poisoned categories: %v (true: %v)\n", res.PoisonCats, poisoned)
	fmt.Printf("probed injection rate γ̂:    %.1f%% (true 25%%)\n\n", res.Gamma*100)
	fmt.Println("age group   true    DAP")
	for j, label := range cov.Labels {
		marker := ""
		for _, p := range poisoned {
			if j == p {
				marker = "  <- poisoned"
			}
		}
		fmt.Printf("%-10s  %.4f  %.4f%s\n", label, trueFreqs[j], res.Freqs[j], marker)
	}
	fmt.Printf("\nMSE DAP: %.3e\n", mse(res.Freqs, trueFreqs))
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}
