// Telemetry: a fleet of smart devices reports daily energy consumption
// under LDP (the Apple/Microsoft-style deployment the paper's intro
// references). Some devices run compromised firmware and collude to
// deflate the fleet average. The example also shows the group layout and
// per-user privacy accounting that make DAP's multi-group design work.
package main

import (
	"fmt"
	"math/rand/v2"

	dap "repro"
)

func main() {
	r := rand.New(rand.NewPCG(11, 13))

	// Consumption in kWh, right-skewed, support [0, 30].
	const n = 40000
	const kwhMax = 30.0
	values := make([]float64, n)
	var sum float64
	for i := range values {
		kwh := r.ExpFloat64() * 6
		if kwh > kwhMax {
			kwh = kwhMax
		}
		values[i] = 2*kwh/kwhMax - 1
		sum += kwh
	}
	trueKWH := sum / n

	// Compromised firmware on 15% of devices under-reports aggressively:
	// poison floods the bottom of the output domain.
	adv := &dap.BBA{Side: dap.SideLeft, Range: dap.RangeHighHalf, Dist: dap.DistUniform}
	const gamma = 0.15

	d, err := dap.NewDAP(dap.Params{Eps: 2, Eps0: 1.0 / 8, Scheme: dap.SchemeEMFStar})
	if err != nil {
		panic(err)
	}

	fmt.Println("group layout (every device spends exactly ε = 2):")
	for _, g := range d.Groups() {
		fmt.Printf("  group %d: ε_t = %-6.4g × %2d reports = %g total\n",
			g.Index, g.Eps, g.Reports, g.Eps*float64(g.Reports))
	}

	est, err := d.Run(r, values, adv, gamma)
	if err != nil {
		panic(err)
	}
	reports, err := dap.CollectPM(r, values, 2, adv, gamma, 0)
	if err != nil {
		panic(err)
	}
	naive := dap.Ostrich(reports)

	toKWH := func(unit float64) float64 { return (unit + 1) / 2 * kwhMax }
	fmt.Printf("\ntrue fleet average:      %.2f kWh\n", trueKWH)
	fmt.Printf("undefended estimate:     %.2f kWh (deflated)\n", toKWH(naive))
	fmt.Printf("DAP estimate:            %.2f kWh\n", toKWH(est.Mean))
	fmt.Printf("probed attack side:      %s (correct: left)\n", side(est.PoisonedRight))
	fmt.Printf("probed compromised rate: %.1f%% (true 15%%)\n", est.Gamma*100)
	fmt.Printf("worst-case variance:     %.2e\n", est.VarMin)
}

func side(right bool) string {
	if right {
		return "right"
	}
	return "left"
}
