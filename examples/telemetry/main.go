// Telemetry: a fleet of smart devices reports daily energy consumption
// under LDP (the Apple/Microsoft-style deployment the paper's intro
// references). Some devices run compromised firmware and collude to
// deflate the fleet average.
//
// The task ships as a JSON spec (specs/telemetry.json) whose domain
// section declares the kWh scale; the example falls back to the same
// spec built in code when the file is not on the working directory's
// path. It also shows the group layout and per-user privacy accounting
// that make DAP's multi-group design work.
package main

import (
	"fmt"

	dap "repro"
	"repro/internal/rng"
)

func main() {
	r := rng.New(11)

	sp, err := dap.LoadSpec("specs/telemetry.json")
	if err != nil {
		// Not running from the repository root — same task, built in code.
		sp = dap.NewSpec(dap.Mean(),
			dap.WithBudget(2, 1.0/8),
			dap.WithScheme(dap.SchemeEMFStar),
			dap.WithDomain(0, 30)) // kWh
	}
	est, err := dap.Build(sp)
	if err != nil {
		panic(err)
	}

	// Consumption in kWh, right-skewed, support [0, 30].
	const n = 40000
	values := make([]float64, n)
	var sum float64
	for i := range values {
		kwh := r.ExpFloat64() * 6
		if kwh > sp.Domain.Hi {
			kwh = sp.Domain.Hi
		}
		values[i] = sp.ToUnit(kwh)
		sum += kwh
	}
	trueKWH := sum / n

	// Compromised firmware on 15% of devices under-reports aggressively:
	// poison floods the bottom of the output domain.
	adv := &dap.BBA{Side: dap.SideLeft, Range: dap.RangeHighHalf, Dist: dap.DistUniform}
	const gamma = 0.15

	fmt.Printf("task: %s over %s, ε=%g, domain [%g, %g] kWh\n\n",
		sp.Task, sp.Mechanism, sp.Eps, sp.Domain.Lo, sp.Domain.Hi)
	fmt.Println("group layout (every device spends exactly ε):")
	for _, g := range est.Groups() {
		fmt.Printf("  group %d: ε_t = %-6.4g × %2d reports = %g total\n",
			g.Index, g.Eps, g.Reports, g.Eps*float64(g.Reports))
	}

	res, err := est.(dap.Runner).Run(r, values, adv, gamma)
	if err != nil {
		panic(err)
	}

	// Undefended comparator through the same surface.
	ostrich, err := dap.Build(dap.NewSpec(dap.Mean(), dap.WithBudget(sp.Eps, sp.Eps0),
		dap.WithDefense(dap.DefenseSpec{Name: "ostrich"})))
	if err != nil {
		panic(err)
	}
	naive, err := ostrich.(dap.Runner).Run(r, values, adv, gamma)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\ntrue fleet average:      %.2f kWh\n", trueKWH)
	fmt.Printf("undefended estimate:     %.2f kWh (deflated)\n", sp.FromUnit(naive.Mean))
	fmt.Printf("DAP estimate:            %.2f kWh\n", sp.FromUnit(res.Mean))
	fmt.Printf("probed attack side:      %s (correct: left)\n", side(res.PoisonedRight))
	fmt.Printf("probed compromised rate: %.1f%% (true 15%%)\n", res.Gamma*100)
	fmt.Printf("worst-case variance:     %.2e\n", res.VarMin)
}

func side(right bool) string {
	if right {
		return "right"
	}
	return "left"
}
