// Telemetry: a fleet of smart devices reports daily energy consumption
// under LDP (the Apple/Microsoft-style deployment the paper's intro
// references), streamed through the serving engine the collector runs in
// production — and observed through the metrics registry every layer
// exports to.
//
// The example stands up a stream tenant for the fleet, plays two epochs
// of device reports through it (15% of the fleet runs compromised
// firmware that colludes to deflate the average), prints the defended
// per-epoch estimates, then syncs and scrapes the process-wide metrics
// registry — the same internal/metrics state a Prometheus server reads
// from the collector's GET /metrics. The scrape is the observability
// story in miniature: ingest counters, epoch rotations, solver work and
// per-user privacy spend, all from one run.
package main

import (
	"fmt"
	"strings"

	dap "repro"
	"repro/internal/ldp/pm"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stream"
)

func main() {
	r := rng.New(11)

	sp, err := dap.LoadSpec("specs/telemetry.json")
	if err != nil {
		// Not running from the repository root — same task, built in code.
		sp = dap.NewSpec(dap.Mean(),
			dap.WithBudget(2, 1.0/8),
			dap.WithScheme(dap.SchemeEMFStar),
			dap.WithDomain(0, 30)) // kWh
	}

	const devices = 4000
	reg := stream.NewRegistry()
	defer reg.Close()
	t, err := reg.Create("fleet", stream.Config{Spec: sp, ExpectedUsers: devices, Warm: true})
	if err != nil {
		panic(err)
	}

	fmt.Printf("task: %s, ε=%g, domain [%g, %g] kWh\n",
		sp.Task, sp.Eps, sp.Domain.Lo, sp.Domain.Hi)
	fmt.Println("group layout (every device spends exactly ε):")
	for _, g := range t.Groups() {
		fmt.Printf("  group %d: ε_t = %-6.4g × %2d reports = %g total\n",
			g.Index, g.Eps, g.Reports, g.Eps*float64(g.Reports))
	}

	// Each device joins once; compromised firmware on 15% of the fleet
	// colludes to deflate the average by flooding the bottom of the
	// output domain.
	const gamma = 0.15
	mechs := map[float64]*pm.Mechanism{}
	mech := func(eps float64) *pm.Mechanism {
		if m, ok := mechs[eps]; ok {
			return m
		}
		m, err := pm.New(eps)
		if err != nil {
			panic(err)
		}
		mechs[eps] = m
		return m
	}
	type device struct {
		user string
		grp  dap.Group
		kwh  float64
		bad  bool
	}
	fleet := make([]device, devices)
	var sum float64
	for i := range fleet {
		user, g := t.Join()
		kwh := r.ExpFloat64() * 6
		if kwh > sp.Domain.Hi {
			kwh = sp.Domain.Hi
		}
		sum += kwh
		fleet[i] = device{user: user, grp: g, kwh: kwh, bad: r.Float64() < gamma}
	}
	trueKWH := sum / devices

	// Two daily epochs. Every device spends its whole ε on one upload
	// (the per-user budget is what the accountant enforces), so half the
	// fleet checks in each day; the second day's re-estimate warm-starts
	// from the first day's fit.
	for epoch := 0; epoch < 2; epoch++ {
		for _, d := range fleet[epoch*devices/2 : (epoch+1)*devices/2] {
			m := mech(d.grp.Eps)
			values := make([]float64, d.grp.Reports)
			for k := range values {
				if d.bad {
					values[k] = m.OutputDomain().Lo // poison: most-deflating output
				} else {
					values[k] = m.Perturb(r, sp.ToUnit(d.kwh))
				}
			}
			if err := t.Ingest(d.user, d.grp.Index, values); err != nil {
				panic(err)
			}
		}
		snap, err := t.Rotate()
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nepoch %d sealed: DAP estimate %.2f kWh (true %.2f), probed γ̂=%.1f%% (true %.0f%%)\n",
			epoch+1, sp.FromUnit(snap.Result.Mean), trueKWH, snap.Result.Gamma*100, gamma*100)
	}

	// The observability layer counted all of it. Refresh the
	// scrape-derived gauges (budget spend, epoch lag) exactly like GET
	// /metrics does, then print the fleet's slice of the exposition.
	reg.SyncMetrics()
	var b strings.Builder
	if _, err := metrics.Default().WriteTo(&b); err != nil {
		panic(err)
	}
	fmt.Println("\nmetrics a Prometheus scrape of this process would see (excerpt):")
	show := []string{
		"dap_stream_reports_ingested_total",
		"dap_stream_epoch_rotations_total",
		"dap_emf_runs_total",
		"dap_emf_iterations_total",
		"dap_emf_warm_starts_total",
		"dap_privacy_budget_spent_eps",
		"dap_privacy_reporters",
	}
	for _, line := range strings.Split(b.String(), "\n") {
		for _, prefix := range show {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
			}
		}
	}
	fmt.Println("\n(the full inventory is served at GET /metrics; see DESIGN.md)")
}
