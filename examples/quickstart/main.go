// Quickstart: defend an LDP mean estimate against colluding attackers
// with the task-spec API.
//
// 20,000 users hold values in [−1, 1]; 25% of them collude and flood the
// upper half of the perturbation output domain. One declarative Spec
// describes the task; dap.Build returns its estimator. The same Spec —
// serialized to JSON — drives the collector daemon, the stream engine and
// the CLIs (see specs/).
package main

import (
	"encoding/json"
	"fmt"

	dap "repro"
	"repro/internal/rng"
)

func main() {
	r := rng.New(1)

	// Normal users: values concentrated around −0.4.
	const n = 20000
	values := make([]float64, n)
	var sum float64
	for i := range values {
		v := r.NormFloat64()*0.2 - 0.4
		if v < -1 {
			v = -1
		}
		if v > 1 {
			v = 1
		}
		values[i] = v
		sum += v
	}
	trueMean := sum / n

	// 25% colluding attackers poison [C/2, C] uniformly.
	adv := dap.NewBBA(dap.RangeHighHalf, dap.DistUniform)
	const gamma = 0.25

	fmt.Printf("true mean of normal users: %+.4f\n\n", trueMean)

	// Undefended baseline: the same task with the Ostrich comparator.
	naiveSpec := dap.NewSpec(dap.Mean(), dap.WithDefense(dap.DefenseSpec{Name: "ostrich"}))
	naiveEst, err := dap.Build(naiveSpec)
	if err != nil {
		panic(err)
	}
	naive, err := naiveEst.(dap.Runner).Run(r, values, adv, gamma)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-12s %+.4f  (error %+.4f)\n", "Ostrich", naive.Mean, naive.Mean-trueMean)

	// DAP with each estimation scheme: one Spec per scheme, one Build call.
	for _, scheme := range []dap.Scheme{dap.SchemeEMF, dap.SchemeEMFStar, dap.SchemeCEMFStar} {
		sp := dap.NewSpec(dap.Mean(),
			dap.WithBudget(1, 1.0/16),
			dap.WithScheme(scheme))
		est, err := dap.Build(sp)
		if err != nil {
			panic(err)
		}
		res, err := est.(dap.Runner).Run(r, values, adv, gamma)
		if err != nil {
			panic(err)
		}
		fmt.Printf("DAP/%-8v %+.4f  (error %+.4f, γ̂=%.3f, side=%s)\n",
			scheme, res.Mean, res.Mean-trueMean, res.Gamma, side(res.PoisonedRight))
	}

	// The spec is plain JSON — what you'd POST to /v1/tenants or pass to
	// any CLI with -spec.
	data, _ := json.Marshal(dap.NewSpec(dap.Mean(), dap.WithScheme(dap.SchemeCEMFStar)))
	fmt.Printf("\nas JSON: %s\n", data)
}

func side(right bool) string {
	if right {
		return "right"
	}
	return "left"
}
