// Quickstart: defend an LDP mean estimate against colluding attackers.
//
// 20,000 users hold values in [−1, 1]; 25% of them collude and flood the
// upper half of the perturbation output domain. The example runs the
// three DAP schemes and compares them with the undefended mean.
package main

import (
	"fmt"
	"math/rand/v2"

	dap "repro"
)

func main() {
	r := rand.New(rand.NewPCG(1, 2))

	// Normal users: values concentrated around −0.4.
	const n = 20000
	values := make([]float64, n)
	var sum float64
	for i := range values {
		v := r.NormFloat64()*0.2 - 0.4
		if v < -1 {
			v = -1
		}
		if v > 1 {
			v = 1
		}
		values[i] = v
		sum += v
	}
	trueMean := sum / n

	// 25% colluding attackers poison [C/2, C] uniformly.
	adv := dap.NewBBA(dap.RangeHighHalf, dap.DistUniform)
	const gamma = 0.25

	fmt.Printf("true mean of normal users: %+.4f\n\n", trueMean)

	// Undefended baseline.
	reports, err := dap.CollectPM(r, values, 1.0, adv, gamma, 0)
	if err != nil {
		panic(err)
	}
	naive := dap.Ostrich(reports)
	fmt.Printf("%-12s %+.4f  (error %+.4f)\n", "Ostrich", naive, naive-trueMean)

	// DAP with each estimation scheme.
	for _, scheme := range []dap.Scheme{dap.SchemeEMF, dap.SchemeEMFStar, dap.SchemeCEMFStar} {
		d, err := dap.NewDAP(dap.Params{Eps: 1, Eps0: 1.0 / 16, Scheme: scheme})
		if err != nil {
			panic(err)
		}
		est, err := d.Run(r, values, adv, gamma)
		if err != nil {
			panic(err)
		}
		fmt.Printf("DAP/%-8v %+.4f  (error %+.4f, γ̂=%.3f, side=%s)\n",
			scheme, est.Mean, est.Mean-trueMean, est.Gamma, side(est.PoisonedRight))
	}
}

func side(right bool) string {
	if right {
		return "right"
	}
	return "left"
}
