// Network: runs the HTTP collector on loopback and drives it with
// simulated honest and Byzantine clients, demonstrating the deployment
// path (local perturbation, budget enforcement, server-side estimation).
package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"

	dap "repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/transport"
)

func main() {
	srv, err := transport.NewServer(core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := transport.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	cfg, err := client.Config(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("collector at %s: ε=%g, %d groups, scheme %s\n\n", ts.URL, cfg.Eps, len(cfg.Groups), cfg.Scheme)

	r := rand.New(rand.NewPCG(21, 42))
	const n = 4000
	const gamma = 0.2
	nByz := int(gamma * n)

	// Honest devices: values around −0.3, perturbed locally by the client.
	var sum float64
	for i := 0; i < n-nByz; i++ {
		v := r.NormFloat64()*0.25 - 0.3
		if v < -1 {
			v = -1
		}
		if v > 1 {
			v = 1
		}
		sum += v
		if _, err := client.SubmitValue(ctx, r, v); err != nil {
			panic(err)
		}
	}
	trueMean := sum / float64(n-nByz)

	// Byzantine devices: join, then upload poison at the top of their
	// group's output domain.
	adv := dap.NewBBA(dap.RangeHighHalf, dap.DistUniform)
	for i := 0; i < nByz; i++ {
		join, err := client.Join(ctx)
		if err != nil {
			panic(err)
		}
		mech, err := pm.New(join.Group.Eps)
		if err != nil {
			panic(err)
		}
		values := adv.Poison(r, attack.EnvFor(mech, 0), join.Group.Reports)
		if err := client.Report(ctx, join.User, join.Group.Index, values); err != nil {
			panic(err)
		}
	}

	status, err := client.Status(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("collected: %d users, per-group reports %v\n", status.Users, status.GroupReports)

	est, err := client.Estimate(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntrue mean (honest devices): %+.4f\n", trueMean)
	fmt.Printf("collector estimate:         %+.4f\n", est.Mean)
	fmt.Printf("probed γ̂:                   %.3f (true %.2f)\n", est.Gamma, gamma)
	fmt.Printf("group means %v\nweights     %v\n", est.GroupMeans, est.Weights)
}
