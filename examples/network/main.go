// Network: runs the HTTP collector on loopback and drives it with
// simulated honest and Byzantine clients, demonstrating the deployment
// path (local perturbation, budget enforcement, server-side estimation).
//
// The collector's default tenant is created from a task spec — the same
// JSON a production deployment would pass to dapcollect -spec — and a
// second tenant is created over the wire from another spec, showing that
// batch estimation, the serving engine and the wire API all consume the
// one Spec shape.
package main

import (
	"context"
	"fmt"
	"net/http/httptest"

	dap "repro"
	"repro/internal/attack"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/transport"
)

func main() {
	sp := dap.NewSpec(dap.Mean(),
		dap.WithBudget(1, 0.25),
		dap.WithScheme(dap.SchemeEMFStar))
	srv, err := transport.NewServerSpec(sp)
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := transport.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	cfg, err := client.Config(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("collector at %s: task=%s, ε=%g, %d groups, scheme %s\n\n",
		ts.URL, cfg.Spec.Task, cfg.Eps, len(cfg.Groups), cfg.Scheme)

	r := rng.New(21)
	const n = 4000
	const gamma = 0.2
	nByz := int(gamma * n)

	// Honest devices: values around −0.3, perturbed locally by the client.
	var sum float64
	for i := 0; i < n-nByz; i++ {
		v := r.NormFloat64()*0.25 - 0.3
		if v < -1 {
			v = -1
		}
		if v > 1 {
			v = 1
		}
		sum += v
		if _, err := client.SubmitValue(ctx, r, v); err != nil {
			panic(err)
		}
	}
	trueMean := sum / float64(n-nByz)

	// Byzantine devices: join, then upload poison at the top of their
	// group's output domain.
	adv := dap.NewBBA(dap.RangeHighHalf, dap.DistUniform)
	for i := 0; i < nByz; i++ {
		join, err := client.Join(ctx)
		if err != nil {
			panic(err)
		}
		mech, err := pm.New(join.Group.Eps)
		if err != nil {
			panic(err)
		}
		values := adv.Poison(r, attack.EnvFor(mech, 0), join.Group.Reports)
		if err := client.Report(ctx, join.User, join.Group.Index, values); err != nil {
			panic(err)
		}
	}

	status, err := client.Status(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("collected: %d users, per-group reports %v\n", status.Users, status.GroupReports)

	est, err := client.Estimate(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntrue mean (honest devices): %+.4f\n", trueMean)
	fmt.Printf("collector estimate:         %+.4f\n", est.Mean)
	fmt.Printf("probed γ̂:                   %.3f (true %.2f)\n", est.Gamma, gamma)
	fmt.Printf("group means %v\nweights     %v\n", est.GroupMeans, est.Weights)

	// A second tenant — frequency estimation — created over the wire from
	// its own spec; the CRUD response echoes the effective spec back.
	created, err := client.CreateTenantSpec(ctx, "ages",
		dap.NewSpec(dap.Frequency(15), dap.WithBudget(2, 1)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncreated tenant %q: task=%s K=%d (spec round-trips over the wire)\n",
		created.Name, created.Spec.Task, created.Spec.K)
}
