# Development targets for the DAP reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)

FUZZTIME ?= 30s

.PHONY: all build vet dapvet fmt-check doccheck test race fuzz-smoke bench bench-json bench-diff bench-smoke load-smoke load-smoke-bin load-json merge-smoke apicheck apigen matrix crash-test wal-overhead metrics-check

all: vet dapvet fmt-check doccheck build test apicheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariant linter (cmd/dapvet): determinism of the
# estimation path, lock ordering against the store, privacy-budget
# charge-before-mutate, hot-path allocation hygiene, error taxonomy and
# metrics registration rules. Violations are fixed or carry a justified
# //dapvet:<rule>-ok annotation; see DESIGN.md "Static analysis".
dapvet:
	$(GO) run ./cmd/dapvet ./...

# Fail when any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

# API-surface snapshot: the public package's go doc output is committed
# as api/dap.txt; apicheck fails when the surface drifts from the golden
# file, making every public API change explicit. Regenerate deliberately
# with make apigen.
apicheck:
	@$(GO) doc -all . > /tmp/dap-api-current.txt; \
	if ! diff -u api/dap.txt /tmp/dap-api-current.txt; then \
		echo; echo "public API surface changed — review the diff above and run 'make apigen' to accept"; exit 1; \
	fi

apigen:
	$(GO) doc -all . > api/dap.txt

# Documentation gate: exported symbols of the public package need doc
# comments, and the relative links in README/DESIGN/specs must resolve.
doccheck: vet
	$(GO) run ./cmd/doccheck

# Red-team robustness matrix (attack battery x schemes); writes markdown
# and JSON reports.
matrix:
	$(GO) run ./cmd/dapredteam -md MATRIX.md -json MATRIX.json

test:
	$(GO) test ./...

# Race-detector pass over every package. The race_on/race_off build-tag
# split keeps the detector-only assertions compiled out of normal builds.
race:
	$(GO) test -race ./...

# Short fuzzing pass over every untrusted decoder: WAL record payloads,
# WAL segment files, snapshots, the metrics exposition parser and task-
# spec JSON. Seed corpora live in each package's testdata/fuzz/; CI runs
# this with the default FUZZTIME=30s per target, local runs can go
# longer (make fuzz-smoke FUZZTIME=5m).
fuzz-smoke:
	$(GO) test -run '^Fuzz' -fuzz '^FuzzWALRecord$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^Fuzz' -fuzz '^FuzzWALSegment$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^Fuzz' -fuzz '^FuzzSnapshot$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^Fuzz' -fuzz '^FuzzMetricsParse$$' -fuzztime $(FUZZTIME) ./internal/metrics/
	$(GO) test -run '^Fuzz' -fuzz '^FuzzSpecJSON$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^Fuzz' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/wirebin/
	$(GO) test -run '^Fuzz' -fuzz '^FuzzDeltaDecode$$' -fuzztime $(FUZZTIME) ./internal/wirebin/

# Durability fault-injection battery under the race detector: kill-and-
# restart recovery (mid-ingest / mid-rotation / mid-snapshot / torn WAL
# tail, tumbling and sliding), store-down degraded mode, and WAL/snapshot
# corruption handling.
crash-test:
	$(GO) test -race -run 'Crash|Recover|Durable|Flaky|Torn|StoreDown|Snapshot|WAL' \
		./internal/store/ ./internal/stream/ ./internal/transport/

# WAL throughput-overhead gate: drive the same 1M-report load through an
# in-memory collector and a durable one (-store-dir, fsync=os — the
# batched group-commit path), then fail if durability costs more than 5%
# throughput. Group commit + batched ingest keep the measured overhead
# near zero; the 5% bound absorbs machine noise.
wal-overhead:
	@rm -rf /tmp/dap-walbench /tmp/dap-walbench-mem.json /tmp/dap-walbench-dur.json; \
	$(GO) run ./cmd/daploadgen -addr "" -reports 1000000 -conns 4 -epoch 0 \
		-bench-json /tmp/dap-walbench-mem.json && \
	$(GO) run ./cmd/daploadgen -addr "" -reports 1000000 -conns 4 -epoch 0 \
		-store-dir /tmp/dap-walbench -fsync os -bench-json /tmp/dap-walbench-dur.json && \
	$(GO) run ./cmd/benchdiff -max-load-drop 0.05 \
		/tmp/dap-walbench-mem.json /tmp/dap-walbench-dur.json

# Micro- and experiment-level benchmarks (reduced scale; see bench_test.go).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# One-iteration benchmark smoke used by CI.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEstimate|BenchmarkEStep|BenchmarkFig5Cell' -benchtime 1x .

# Regenerate every experiment at the default laptop scale and record the
# wall-clock trajectory in a dated BENCH_<date>.json (see EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/dapbench -exp all -bench-json BENCH_$(DATE).json > /dev/null

# Compare two BENCH_*.json records and fail on a >15% total wall-clock
# regression. Defaults to the two newest records (the latest committed
# baseline vs the record a fresh `make bench-json` just wrote) so the
# gate always tracks the current baseline, not the oldest; override with
# make bench-diff OLD=BENCH_a.json NEW=BENCH_b.json.
bench-diff:
	@old="$(OLD)"; new="$(NEW)"; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
		count=$$(ls BENCH_*.json 2>/dev/null | wc -l); \
		if [ "$$count" -lt 2 ]; then \
			echo "bench-diff: need two BENCH_*.json records, found $$count" \
			     "— run 'make bench-json' to record one, or pass OLD=/NEW= explicitly"; \
			exit 1; \
		fi; \
	fi; \
	if [ -z "$$new" ]; then new=$$(ls BENCH_*.json | sort | tail -1); fi; \
	if [ -z "$$old" ]; then old=$$(ls BENCH_*.json | sort | tail -2 | head -1); fi; \
	echo "benchdiff $$old $$new"; \
	$(GO) run ./cmd/benchdiff "$$old" "$$new"

# Observability end-to-end gate: boot a durable collector on loopback,
# drive traffic through every instrumented layer, scrape GET /metrics
# over HTTP and verify the payload parses, every documented metric
# family is present with its documented type, and the layer counters
# moved (see cmd/metricscheck). `-addr` points it at a live collector.
metrics-check:
	$(GO) run ./cmd/metricscheck

# Load-generator smoke: boot an in-process collector over real loopback
# HTTP, drive 10k reports through batched ingest with a rotating epoch
# clock, and require ≥100k reports/sec plus a sane live per-epoch estimate.
load-smoke:
	$(GO) run ./cmd/daploadgen -addr "" -reports 10000 -epoch 150ms \
		-min-rate 100000 -assert

# Binary-wire load smoke: the same loopback collector driven with compact
# binary frames — once over HTTP (-wire bin), once as UDP datagrams
# (-wire udp). The binary HTTP floor is 3x the JSON floor, the headline
# of the wire format; the UDP floor stays at the JSON level because the
# smoke boxes are free to drop datagrams under load.
load-smoke-bin:
	$(GO) run ./cmd/daploadgen -addr "" -reports 10000 -epoch 150ms \
		-wire bin -min-rate 300000 -assert
	$(GO) run ./cmd/daploadgen -addr "" -reports 10000 -epoch 150ms \
		-wire udp -min-rate 100000 -assert

# Scale-out smoke: two in-process node collectors push sealed epoch
# deltas to a coordinator while a single reference collector ingests the
# identical stream; the merged estimate must match the reference bit for
# bit and the coordinator's merge metric families must have moved. Each
# node drives one ordered connection (arrival order is part of the
# bit-identity contract), so the throughput floor sits below the
# multi-conn smokes.
merge-smoke:
	$(GO) run ./cmd/daploadgen -addr "" -nodes 2 -reports 20000 -min-rate 50000

# load-smoke plus: merge the measured throughput/latency for all three
# wires into the dated BENCH_<date>.json next to the experiment timings
# (keys load, load_bin, load_udp). Recording runs at 200k reports on two
# connections with the epoch clock off — at the smoke scale (10k, a
# sub-10ms wall on the binary wires) the numbers are dominated by startup
# noise, and a rotation firing between ingest end and the sanity estimate
# would hand the live estimator an empty window.
load-json:
	$(GO) run ./cmd/daploadgen -addr "" -reports 200000 -conns 2 -epoch 0 \
		-min-rate 100000 -assert -bench-json BENCH_$(DATE).json
	$(GO) run ./cmd/daploadgen -addr "" -reports 200000 -conns 2 -epoch 0 \
		-wire bin -min-rate 300000 -assert -bench-json BENCH_$(DATE).json
	$(GO) run ./cmd/daploadgen -addr "" -reports 200000 -conns 2 -epoch 0 \
		-wire udp -min-rate 100000 -assert -bench-json BENCH_$(DATE).json
