# Development targets for the DAP reproduction.

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build vet test bench bench-json bench-smoke

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Micro- and experiment-level benchmarks (reduced scale; see bench_test.go).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# One-iteration benchmark smoke used by CI.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEstimate|BenchmarkEStep|BenchmarkFig5Cell' -benchtime 1x .

# Regenerate every experiment at the default laptop scale and record the
# wall-clock trajectory in a dated BENCH_<date>.json (see EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/dapbench -exp all -bench-json BENCH_$(DATE).json > /dev/null
