package dap

// Attack-section tests of the task-spec API: JSON round-trip fidelity
// (a spec's attack section drives the identical adversary after
// marshalling), the ErrBadSpec taxonomy for malformed attack sections,
// the sim-only boundary (stream tenants and the wire reject specs that
// carry an attack), and pinned-seed regressions proving the registry path
// reproduces the pre-registry simulator bit for bit.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/transport"
)

// TestAttackSpecEndToEnd: one JSON spec with an attack section drives the
// same adversary through (1) the batch simulator, (2) the experiment
// harness's spec sweep, and (3) daploadgen's resolution path (attack on
// the client side, stripped before the collector boots — the wire rejects
// it otherwise).
func TestAttackSpecEndToEnd(t *testing.T) {
	specJSON := []byte(`{
		"task": "mean",
		"scheme": "emfstar",
		"eps": 1,
		"eps0": 0.25,
		"attack": {"name": "bba", "range": "[3C/4,C]", "dist": "gaussian"}
	}`)
	sp, err := core.ParseSpec(specJSON)
	if err != nil {
		t.Fatal(err)
	}

	// (1) Batch simulation through the spec's adversary equals the direct
	// pre-registry construction at the same seed, bit for bit.
	est, err := core.Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := sp.Adversary()
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(31, 3000)
	got, err := est.(core.Runner).Run(rng.New(41), vals, adv, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	direct := attack.NewBBA(attack.RangeHighQuarter, attack.DistGaussian)
	want, err := est.(core.Runner).Run(rng.New(41), vals, direct, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != want.Mean || got.Gamma != want.Gamma {
		t.Fatalf("spec adversary run (%v,%v) != direct (%v,%v)",
			got.Mean, got.Gamma, want.Mean, want.Gamma)
	}

	// The attack section survives a JSON round trip bit-identically.
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Attack, sp.Attack) {
		t.Fatalf("attack section changed over JSON: %+v != %+v", back.Attack, sp.Attack)
	}

	// (2) The experiment harness sweeps the spec's adversary (the table
	// title names it).
	tables, err := bench.SpecSweep(bench.Config{N: 800, Trials: 1, Seed: 1, EMFMaxIter: 60, Spec: &sp})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || !strings.Contains(tables[0].Title, direct.Name()) {
		t.Fatalf("spec sweep title %q does not name the adversary %q", tables[0].Title, direct.Name())
	}

	// (3) daploadgen's split: the attack section stays on the client side;
	// the serving side only accepts the spec once it is stripped.
	if _, err := stream.NewTenantSpec("redteam", sp); !errors.Is(err, core.ErrBadSpec) {
		t.Fatalf("stream tenant on an attack-bearing spec: %v, want ErrBadSpec", err)
	}
	served := sp
	served.Attack = nil
	if _, err := stream.NewTenantSpec("redteam", served); err != nil {
		t.Fatalf("stripped spec rejected: %v", err)
	}
}

// TestAttackSpecTaxonomy: malformed attack sections wrap ErrBadSpec.
func TestAttackSpecTaxonomy(t *testing.T) {
	bad := []core.Spec{
		// Unknown registry name.
		{Task: core.TaskMean, Eps: 1, Attack: &attack.Spec{Name: "quantum"}},
		// Bad parameters inside a known attack.
		{Task: core.TaskMean, Eps: 1, Attack: &attack.Spec{Name: "bba", Range: "[C,2C]"}},
		{Task: core.TaskMean, Eps: 1, Attack: &attack.Spec{Name: "dropout", Inner: &attack.Spec{Name: "nope"}}},
		// Categorical attack on a numeric task and vice versa.
		{Task: core.TaskMean, Eps: 1, Attack: &attack.Spec{Name: "maxgain"}},
		{Task: core.TaskFrequency, Eps: 1, K: 8, Attack: &attack.Spec{Name: "bba"}},
	}
	for _, sp := range bad {
		if _, err := core.Build(sp); !errors.Is(err, core.ErrBadSpec) {
			t.Fatalf("spec %+v: err = %v, want ErrBadSpec", sp, err)
		}
	}
	// Unknown registry names keep attack.ErrUnknown in the chain, so
	// callers can branch on the specific failure.
	_, err := core.Build(core.Spec{Task: core.TaskMean, Eps: 1, Attack: &attack.Spec{Name: "quantum"}})
	if !errors.Is(err, attack.ErrUnknown) {
		t.Fatalf("unknown attack name: %v, want attack.ErrUnknown in the chain", err)
	}
	// "none" fits every task.
	for _, sp := range []core.Spec{
		{Task: core.TaskMean, Eps: 1, Attack: &attack.Spec{Name: "none"}},
		{Task: core.TaskFrequency, Eps: 1, K: 8, Attack: &attack.Spec{Name: "none"}},
	} {
		if _, err := core.Build(sp); err != nil {
			t.Fatalf("spec %+v rejected: %v", sp, err)
		}
	}
}

// TestAttackSpecRejectedAtWire: POST /v1/tenants with an attack-bearing
// spec fails loudly — attacks are simulation-only and never cross the
// wire, mirroring the defense comparators.
func TestAttackSpecRejectedAtWire(t *testing.T) {
	srv, err := transport.NewServerSpec(core.NewSpec(core.MeanTask()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := transport.NewClient(ts.URL, ts.Client())
	sp := core.NewSpec(core.MeanTask(), core.WithAttack(attack.Spec{Name: "bba"}))
	if _, err := client.CreateTenantSpec(context.Background(), "evil", sp); err == nil {
		t.Fatal("wire accepted an attack-bearing tenant spec")
	}
}

// TestFreqRegistryPathPinnedSeed: the categorical adversary path
// reproduces the historical CollectFreq collection bit for bit — the
// regression gate for rebuilding the frequency simulator on the registry.
func TestFreqRegistryPathPinnedSeed(t *testing.T) {
	d, err := core.NewFreqDAP(core.FreqParams{Eps: 1, Eps0: 0.25, K: 12, Scheme: core.SchemeCEMFStar, EMFMaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	cats := make([]int, 2000)
	r := rng.New(55)
	for i := range cats {
		cats[i] = r.IntN(12)
	}
	poison := []int{3, 11}
	legacy, err := d.CollectFreq(rng.New(56), cats, poison, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := attack.New(attack.Spec{Name: "targeted", Cats: poison})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := d.CollectFreqAdv(rng.New(56), cats, viaRegistry, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Counts, reg.Counts) || legacy.ByzCount != reg.ByzCount {
		t.Fatal("registry-built targeted attack diverges from the legacy CollectFreq path")
	}
	// Out-of-range categories from a numeric adversary fail with ErrDomain.
	if _, err := d.CollectFreqAdv(rng.New(57), cats, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform), 0.3); !errors.Is(err, core.ErrDomain) {
		t.Fatalf("numeric poison through the categorical path: %v, want ErrDomain", err)
	}
}

// TestRegistrySimBehaviour: each numeric registry attack runs a full
// protocol round identically to its directly-constructed counterpart.
func TestRegistrySimBehaviour(t *testing.T) {
	cases := []struct {
		spec   attack.Spec
		direct attack.Adversary
	}{
		{attack.Spec{Name: "bba"}, attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)},
		{attack.Spec{Name: "ima"}, &attack.IMA{G: -1}},
		{attack.Spec{Name: "evasion", A: 0.3}, &attack.Evasion{A: 0.3}},
		{attack.Spec{Name: "opportunistic"}, &attack.Opportunistic{TrimFrac: 0.5}},
	}
	d, err := core.NewDAP(core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar, EMFMaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	vals := testValues(61, 2000)
	for _, tc := range cases {
		adv, err := attack.New(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Name, err)
		}
		got, err := d.Run(rng.New(62), vals, adv, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Name, err)
		}
		want, err := d.Run(rng.New(62), vals, tc.direct, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Name, err)
		}
		if got.Mean != want.Mean || got.Gamma != want.Gamma || got.PoisonedRight != want.PoisonedRight {
			t.Fatalf("%s: registry round (%v,%v) != direct (%v,%v)",
				tc.spec.Name, got.Mean, got.Gamma, want.Mean, want.Gamma)
		}
	}
}
