package dap

// One benchmark per paper table/figure (each iteration regenerates the
// experiment at reduced scale; use cmd/dapbench for paper-scale runs)
// plus micro-benchmarks of the hot paths: PM perturbation, transform
// matrix construction, EMF iterations and the full DAP pipeline.

import (
	"math/rand/v2"
	"testing"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
)

// benchConfig keeps each experiment iteration sub-second; cmd/dapbench
// scales N and trials up for paper-shaped output.
func benchConfig() bench.Config {
	return bench.Config{N: 2000, Trials: 1, Seed: 1, EMFMaxIter: 60}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := bench.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)         { runExperiment(b, "table1") }
func BenchmarkFig4Datasets(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5Gamma(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6MSE(b *testing.B)        { runExperiment(b, "fig6") }
func BenchmarkFig7Robustness(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFig8SW(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9Defense(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10Evasion(b *testing.B)   { runExperiment(b, "fig10") }
func BenchmarkAblation(b *testing.B)       { runExperiment(b, "ablation") }

// --- micro-benchmarks ---

func BenchmarkPMPerturb(b *testing.B) {
	m := pm.MustNew(1)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Perturb(r, 0.5)
	}
}

func BenchmarkPMIntervalProb(b *testing.B) {
	m := pm.MustNew(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.IntervalProb(0.3, -0.5, 1.2)
	}
}

func BenchmarkMatrixBuild(b *testing.B) {
	m := pm.MustNew(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := emf.BuildNumeric(m, 64, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEMFInput builds a fixed poisoned collection for the EM benches.
func benchEMFInput(b *testing.B) (*emf.Matrix, []float64, []int) {
	b.Helper()
	r := rng.New(1)
	mech := pm.MustNew(0.5)
	d, dp := emf.BucketCounts(20000, mech.C())
	m, err := emf.BuildNumeric(mech, d, dp)
	if err != nil {
		b.Fatal(err)
	}
	reports := make([]float64, 0, 20000)
	for i := 0; i < 15000; i++ {
		reports = append(reports, mech.Perturb(r, rng.Uniform(r, -1, 0)))
	}
	c := mech.C()
	for i := 0; i < 5000; i++ {
		reports = append(reports, rng.Uniform(r, c/2, c))
	}
	return m, m.Counts(reports), m.PoisonRight(0)
}

// BenchmarkEStepBanded measures 100 fixed EM iterations on the structured
// banded path — the innermost hot loop of the repository (divide by 100
// for the per-iteration cost; a single iteration would be dominated by
// state setup and result copying).
func BenchmarkEStepBanded(b *testing.B) {
	m, counts, poison := benchEMFInput(b)
	if !m.Banded() {
		b.Fatal("expected a banded matrix")
	}
	cfg := emf.Config{MaxIter: 100, Tol: 1e-300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emf.Run(m, counts, poison, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEStepDense is the same 100 iterations forced onto the dense
// reference path, so the banded speedup stays measurable over time.
func BenchmarkEStepDense(b *testing.B) {
	m, counts, poison := benchEMFInput(b)
	cfg := emf.Config{MaxIter: 100, Tol: 1e-300, Dense: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emf.Run(m, counts, poison, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimate measures the collector side alone (matrix reuse, side
// probe, h parallel group fits, aggregation) over a fixed collection.
func BenchmarkEstimate(b *testing.B) {
	r := rng.New(1)
	values := make([]float64, 20000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.8, 0)
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	d, err := core.NewDAP(core.Params{Eps: 1, Eps0: 1.0 / 16, Scheme: core.SchemeCEMFStar, EMFMaxIter: 100})
	if err != nil {
		b.Fatal(err)
	}
	col, err := d.Collect(rng.Split(8, 1), values, adv, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Estimate(col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Cell regenerates one cell of the hottest experiment (the
// unit the BENCH_*.json trajectory tracks at full scale).
func BenchmarkFig5Cell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5Cell(bench.Config{N: 20000, Trials: 1, Seed: uint64(i + 1), EMFMaxIter: 200}, 1, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMFRun(b *testing.B) {
	m, counts, poison := benchEMFInput(b)
	cfg := emf.Config{MaxIter: 100, Tol: 1e-300} // fixed 100 iterations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emf.Run(m, counts, poison, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMFStarRun(b *testing.B) {
	m, counts, poison := benchEMFInput(b)
	cfg := emf.Config{MaxIter: 100, Tol: 1e-300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emf.RunConstrained(m, counts, poison, 0.25, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSideProbe(b *testing.B) {
	m, counts, _ := benchEMFInput(b)
	cfg := emf.Config{MaxIter: 50, Tol: 1e-300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emf.ProbeSide(m, counts, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDAPEndToEnd(b *testing.B) {
	r := rng.New(1)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = rng.Uniform(r, -0.8, 0)
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	d, err := core.NewDAP(core.Params{Eps: 1, Eps0: 1.0 / 16, Scheme: core.SchemeCEMFStar, EMFMaxIter: 60})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(rng.Split(2, uint64(i)), values, adv, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregationWeights(b *testing.B) {
	bt := []float64{1, 2, 4, 8, 16}
	nh := []float64{100, 100, 100, 100, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimalWeights(bt, nh, core.WeightsPaper); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKRRCollect(b *testing.B) {
	cov := COVID19()
	r := rng.New(1)
	cats := cov.Sample(r, 5000)
	f, err := core.NewFreqDAP(core.FreqParams{Eps: 1, Eps0: 0.25, K: cov.K(), Scheme: core.SchemeEMFStar, EMFMaxIter: 60})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.RunFreq(rng.Split(3, uint64(i)), cats, []int{10}, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkFloat float64

func BenchmarkTheorem1Reduction(b *testing.B) {
	r := rng.New(1)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.Uniform(r, -3, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := attack.ReduceToBBA(vals, 0, -3, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) > 0 {
			sinkFloat = out[0]
		}
	}
}

func BenchmarkAccountlessPerturbRound(b *testing.B) {
	// Full user-side round: assignment, repeated perturbation.
	d, err := core.NewDAP(core.Params{Eps: 1, Eps0: 1.0 / 16})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	values := make([]float64, 2000)
	for i := range values {
		values[i] = rng.Uniform(r, -1, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Collect(rng.Split(4, uint64(i)), values, attack.None{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the facade constructors remain wired to the internal packages.
func TestFacadeEndToEnd(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	values := make([]float64, 4000)
	var sum float64
	for i := range values {
		values[i] = r.Float64()*0.8 - 0.9
		sum += values[i]
	}
	trueMean := sum / float64(len(values))
	d, err := NewDAP(Params{Eps: 1, Eps0: 0.25, Scheme: SchemeCEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	est, err := d.Run(r, values, NewBBA(RangeHighHalf, DistUniform), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < trueMean-0.35 || est.Mean > trueMean+0.35 {
		t.Fatalf("facade estimate %v far from %v", est.Mean, trueMean)
	}
	if !est.PoisonedRight {
		t.Fatal("facade side probe failed")
	}
}

func TestFacadeDatasets(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, name := range []string{"Beta(2,5)", "Beta(5,2)", "Taxi", "Retirement"} {
		ds, err := DatasetByName(r, name, 500)
		if err != nil {
			t.Fatal(err)
		}
		if ds.N() != 500 {
			t.Fatalf("%s: N=%d", name, ds.N())
		}
	}
	if COVID19().K() != 15 {
		t.Fatal("COVID19 dataset broken")
	}
}

func TestFacadeDefenses(t *testing.T) {
	if got := Ostrich([]float64{1, 3}); got != 2 {
		t.Fatalf("Ostrich = %v", got)
	}
	if got := Trimming([]float64{1, 2, 3, 100}, 0.25, true); got != 2 {
		t.Fatalf("Trimming = %v", got)
	}
	if got := Boxplot([]float64{1, 1, 1, 1, 50}, 1.5); got != 1 {
		t.Fatalf("Boxplot = %v", got)
	}
}

func TestFacadeTheorem1(t *testing.T) {
	out, side, err := ReduceToBBA([]float64{-2, 1}, 0, -3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if side != SideLeft {
		t.Fatalf("side = %v", side)
	}
	var dev float64
	for _, v := range out {
		dev += v
	}
	if dev != -1 {
		t.Fatalf("deviation %v, want -1", dev)
	}
}
