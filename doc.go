// Package dap is the public API of this repository: a Go implementation
// of "Differential Aggregation against General Colluding Attackers"
// (Du, Ye, Fu, Hu, Li, Fang, Shi — ICDE 2023).
//
// # What it does
//
// Local differential privacy (LDP) protocols assume users perturb their
// data honestly. Colluding Byzantine users can instead submit arbitrary
// poison values inside the perturbation output domain and drag the
// collector's mean estimate. DAP defends mean estimation without trying
// to detect individual poison values: an Expectation-Maximization Filter
// (EMF) statistically reconstructs the attackers' population γ, poisoned
// side and poison-value histogram, and the collector removes that
// collective mass. A multi-group design (each group gets a random budget
// ε_t; smaller-budget groups report more often so everyone spends exactly
// ε) prevents attackers from telling probing reports from estimation
// reports, and a variance-optimal weighting recombines the per-group
// means.
//
// # Quick start
//
// A task is described by one declarative, JSON-serializable Spec; Build
// returns its Estimator:
//
//	sp := dap.NewSpec(dap.Mean(),
//	    dap.WithBudget(1, 1.0/16),
//	    dap.WithScheme(dap.SchemeCEMFStar))
//	est, _ := dap.Build(sp)
//	res, _ := est.(dap.Runner).Run(rand.New(rand.NewPCG(1, 2)), values, // values in [-1, 1]
//	    dap.NewBBA(dap.RangeHighHalf, dap.DistUniform), 0.25)
//	fmt.Println(res.Mean, res.Gamma, res.PoisonedRight)
//
// Five task kinds share the surface — Mean over PM, Distribution over
// SW, Frequency over k-RR, Variance (split populations) and the §IV
// Baseline — plus the comparator defenses (ostrich, trimming, kmeans,
// boxplot, iforest) selected by name with WithDefense. Every estimator
// implements Estimate (raw per-group reports) and EstimateHist (the
// histogram sufficient statistic the serving layer maintains); the
// unified Result carries whichever fields the task produces. Malformed
// specs fail with ErrBadSpec, out-of-domain values with ErrDomain, and
// exhausted privacy budgets with ErrBudgetExhausted.
//
// The same Spec serializes to JSON and drives everything else: a specs/
// directory of examples feeds the CLIs (-spec file.json, flags as
// overrides), POST /v1/tenants accepts {"name": ..., "spec": {...}} and
// returns the effective spec, and a spec's optional "serve" section
// (buckets, shards, epoch windows) configures its stream tenant. One
// end-to-end test pins the invariant: the same JSON spec estimates
// identically (≤1e-12) through batch Estimate, a stream tenant and the
// wire API.
//
// The pre-spec constructors (NewDAP, NewSWDAP, NewFreqDAP, NewBaseline)
// remain as deprecated aliases for one release; see DESIGN.md for the
// migration table.
//
// # Attacks
//
// The threat side mirrors the defense side: a declarative AttackSpec
// (name + parameters, JSON-serializable) selects an adversary from the
// registry via NewAttack, and a Spec's optional "attack" section carries
// it through every simulation face — dapsim, dapbench -spec, the
// cmd/dapredteam robustness matrix, and daploadgen's Byzantine client
// mix. Registered families (AttackNames lists them): the paper's threat
// models — bba (Definition 4), gba (Definition 2), ima (input
// manipulation), evasion (§V-D), opportunistic (the §I trimming
// critique), swtop (Fig. 8) — plus categorical injection for the
// frequency task (targeted, maxgain), in-range distribution poisoning
// for SW (distpoison), and composable wrappers: dropout (colluder
// dropout), hetero (heterogeneous per-group collusion fractions), and
// the epoch-adaptive streaming attackers ramp and burst, which key on
// the attack.Env group/epoch context: the collectors provide the group
// index, and daploadgen's client mix advances the epoch
// (-attack-epochs). One-shot batch collections run at epoch 0, so the
// epoch-less harnesses refuse (dapbench -spec, dapredteam extras) or
// flag (dapsim) epoch-adaptive attacks instead of tabulating their
// weakened epoch-0 phase. Wrappers nest ("ramp" over "bba" over any
// range); unknown names fail with ErrUnknownAttack, wrapped into
// ErrBadSpec at spec validation.
//
// Attack sections are simulation/client-side only: stream tenants and
// the wire reject specs that carry them, so a red-team spec can never
// configure a production tenant. Adversaries are deterministic for a
// fixed rng stream, which is what keeps registry-driven experiments
// reproducible seed-for-seed with the direct constructions (pinned by
// tests).
//
// # Performance engine
//
// The EM hot path runs on a structured ("banded") representation of the
// transform matrix: every mechanism here perturbs by sampling uniformly
// from a band, so each matrix column is a constant tail plus a contiguous
// band whose interior carries one shared value, and an EM iteration costs
// O(D + D′) via prefix sums instead of the dense O(D·D′) (internal/emf,
// banded.go). Transform matrices are cached per (mechanism, d, d′), EM
// state buffers are pooled, the h per-group fits of an estimate run on
// goroutines, and the experiment harness (internal/bench) evaluates
// Monte-Carlo cells concurrently. The bench Config.Workers field caps the
// number of concurrently evaluated cells (0 selects GOMAXPROCS); tables
// are byte-identical for every Workers value and GOMAXPROCS because each
// cell and trial owns a fixed rng stream and results are collected in
// table order. cmd/dapbench exposes the same knob as -workers and can
// write a BENCH_*.json wall-clock record via -bench-json.
//
// # Serving layer
//
// internal/stream turns the one-shot batch collector into a long-lived
// service. Reports are never stored: ingestion discretizes each report
// into the mechanism's output buckets (ldp.Discretizer, index-compatible
// with the batch histogramming) and increments a lock-striped per-group
// count histogram, so memory is O(shards·h·d′) and concurrent ingests do
// not serialize. Epoch windows — tumbling or sliding over the last Span
// epochs — seal the live shards on rotation and re-estimate the window
// through EstimateHist, the histogram entry point of the estimation
// pipeline, caching the result so reads are pointer loads. A tenant
// registry hosts many concurrent aggregations (mean/PM, frequency/k-RR,
// distribution/SW), each with its own parameters, privacy accountant and
// epoch clock. The load-bearing invariant, enforced by tests: the
// per-group output histogram plus the exact report sum is a sufficient
// statistic, so histogram-fed estimates reproduce the batch Estimate bit
// for bit on the same reports (under AutoOPrime the Theorem 2 trimmed
// mean substitutes bucket centers for sorted raw reports — agreement
// there is to within a bucket width, not bit-exact).
//
// internal/transport serves the engine over HTTP — the original
// single-collector API on the "default" tenant, the same routes per
// tenant under /v1/tenants/{tenant}/..., tenant CRUD, epoch rotation and
// a batched ingest endpoint. Budgets are charged atomically before any
// state changes; NaN/Inf, out-of-domain values and bucket-index abuse are
// rejected at the wire boundary. cmd/dapcollect runs it with graceful
// shutdown; cmd/daploadgen drives it with honest+Byzantine client mixes
// and records ingest throughput and estimate latency.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure plus the
// performance trajectory.
package dap
