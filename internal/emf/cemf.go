package emf

// RunConcentrated executes CEMF* (EMF* with concentration, Theorem 5):
// starting from a base EMF estimate of the poison histogram, it suppresses
// the poison buckets whose estimated frequency falls below
// threshold = factor·γ/|P| (the buckets "unchosen" by the Byzantine
// users), then re-runs the constrained EM on the surviving buckets only.
//
// base must be an EMF (or EMF*) result computed on the same matrix, counts
// and poison set; gamma is the Byzantine proportion imposed on the
// constrained re-run (the paper feeds the γ̂ probed at the smallest
// budget). The paper's experiments use factor = 0.5 (§VI-C).
func RunConcentrated(m *Matrix, counts []float64, base *Result, gamma, factor float64, cfg Config) (*Result, error) {
	// The base fit already solved the same deconvolution on the same
	// counts; seed the constrained re-run from it (unless the caller warm
	// started with something else) — the re-run then only re-balances the
	// surviving poison buckets instead of re-deriving x̂ from uniform.
	if cfg.Init == nil {
		cfg.Init = base
	}
	if len(base.Poison) == 0 {
		// Nothing to suppress; degenerate to EMF*.
		return RunConstrained(m, counts, base.Poison, gamma, cfg)
	}
	threshold := factor * gamma / float64(len(base.Poison))
	kept := make([]int, 0, len(base.Poison))
	for _, j := range base.Poison {
		if base.Y[j] >= threshold {
			kept = append(kept, j)
		}
	}
	if len(kept) == 0 {
		// Everything suppressed: treat the collection as poison-free.
		return RunConstrained(m, counts, nil, 0, cfg)
	}
	return RunConstrained(m, counts, kept, gamma, cfg)
}

// Suppressed returns the poison buckets of base that RunConcentrated would
// suppress at the given gamma and factor, for diagnostics and tests.
func Suppressed(base *Result, gamma, factor float64) []int {
	if len(base.Poison) == 0 {
		return nil
	}
	threshold := factor * gamma / float64(len(base.Poison))
	var out []int
	for _, j := range base.Poison {
		if base.Y[j] < threshold {
			out = append(out, j)
		}
	}
	return out
}
