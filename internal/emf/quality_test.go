package emf

import (
	"math"
	"testing"

	"repro/internal/ldp/krr"
	"repro/internal/ldp/sw"
	"repro/internal/rng"
	"repro/internal/stats"
)

// yError measures how far the reconstructed poison histogram sits from
// the ground truth placed uniformly on [loFrac·C, hiFrac·C].
func yError(sc *scenario, res *Result, gamma, loFrac, hiFrac float64) float64 {
	c := sc.mech.C()
	var err float64
	for _, j := range res.Poison {
		ctr := sc.matrix.OutCenter(j)
		want := 0.0
		if ctr >= loFrac*c && ctr <= hiFrac*c {
			// Uniform poison over the band.
			bandBuckets := 0
			for _, k := range res.Poison {
				if cc := sc.matrix.OutCenter(k); cc >= loFrac*c && cc <= hiFrac*c {
					bandBuckets++
				}
			}
			want = gamma / float64(bandBuckets)
		}
		err += math.Abs(res.Y[j] - want)
	}
	return err
}

// The point of EMF* (Theorem 4): knowing γ tightens the reconstructed
// poison histogram compared to plain EMF at moderate ε, where EMF's own
// γ̂ drifts.
func TestEMFStarImprovesPoisonHistogram(t *testing.T) {
	r := rng.New(1)
	sc := makeScenario(t, r, 1.0, 40000, 0.25, -1, 0, 0.5, 1)
	poison := sc.matrix.PoisonRight(0)
	base, err := Run(sc.matrix, sc.counts, poison, Config{})
	if err != nil {
		t.Fatal(err)
	}
	star, err := RunConstrained(sc.matrix, sc.counts, poison, 0.25, Config{})
	if err != nil {
		t.Fatal(err)
	}
	errBase := yError(sc, base, 0.25, 0.5, 1)
	errStar := yError(sc, star, 0.25, 0.5, 1)
	if errStar >= errBase {
		t.Fatalf("EMF* ŷ error %v should beat EMF %v", errStar, errBase)
	}
}

// EMS smoothing trades reconstruction variance for kernel bias: at SW
// sample sizes where the plain EM is already sharp it may cost a little,
// but it must stay within a small factor and keep the reconstruction
// valid (the variance reduction pays off in the low-ε DAP groups).
func TestSmoothingBoundedSWReconstruction(t *testing.T) {
	r := rng.New(2)
	mech := sw.MustNew(0.5)
	const n = 30000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Beta(r, 2, 5)
	}
	reports := make([]float64, n)
	for i, v := range vals {
		reports[i] = mech.Perturb(r, v)
	}
	d, dp := BucketCounts(n, mech.OutputDomain().Width())
	m, err := BuildNumeric(mech, d, dp)
	if err != nil {
		t.Fatal(err)
	}
	counts := m.Counts(reports)
	rough, err := RunConstrained(m, counts, nil, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := RunConstrained(m, counts, nil, 0, Config{Smooth: true})
	if err != nil {
		t.Fatal(err)
	}
	trueHist := stats.Histogram(vals, m.InLo, m.InHi, m.D).Normalized()
	wRough := stats.Wasserstein1(rough.X, trueHist, m.InWidth())
	wSmooth := stats.Wasserstein1(smooth.X, trueHist, m.InWidth())
	if wSmooth > wRough*1.6 {
		t.Fatalf("smoothing degraded reconstruction beyond bound: %v vs %v", wSmooth, wRough)
	}
	if wSmooth > 0.05 {
		t.Fatalf("smoothed reconstruction too far from truth: %v", wSmooth)
	}
}

// The categorical matrix drives EMF to a sensible reconstruction: plain
// deconvolution of k-RR reports recovers the input frequencies.
func TestCategoricalDeconvolution(t *testing.T) {
	r := rng.New(3)
	mech := krr.MustNew(1.0, 6)
	m := BuildCategorical(mech)
	trueFreq := []float64{0.3, 0.25, 0.2, 0.12, 0.08, 0.05}
	counts := make([]float64, 6)
	const n = 80000
	for i := 0; i < n; i++ {
		u := r.Float64()
		c := 0
		acc := trueFreq[0]
		for u > acc && c < 5 {
			c++
			acc += trueFreq[c]
		}
		counts[mech.PerturbCat(r, c)]++
	}
	res, err := RunConstrained(m, counts, nil, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range trueFreq {
		if math.Abs(res.X[j]-trueFreq[j]) > 0.02 {
			t.Fatalf("cat %d: reconstructed %v, want %v", j, res.X[j], trueFreq[j])
		}
	}
}
