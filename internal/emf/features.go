package emf

// Features are the three Byzantine features the collector probes with EMF
// (§IV-C): the poisoned side, the Byzantine proportion γ̂ and the poison
// value frequency histogram ŷ (summarized here by its mean, Eq. 11).
type Features struct {
	Side Side
	// Gamma is the estimated Byzantine proportion γ̂ = Σŷ (Eq. 9).
	Gamma float64
	// PoisonMean is M_α = Σŷ_jν_j / Σŷ_j with ν the poison bucket
	// medians (Eq. 11); 0 when no poison mass was reconstructed.
	PoisonMean float64
	// Y is the reconstructed poison histogram indexed by output bucket.
	Y []float64
}

// PoisonMean computes Eq. 11 for an EM result on the given matrix.
func PoisonMean(m *Matrix, res *Result) float64 {
	var num, den float64
	for _, j := range res.Poison {
		num += res.Y[j] * m.OutCenter(j)
		den += res.Y[j]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ExtractFeatures bundles the Byzantine features from a completed side
// probe.
func ExtractFeatures(m *Matrix, probe *SideProbe) Features {
	res := probe.Chosen()
	return Features{
		Side:       probe.Side,
		Gamma:      res.Gamma(),
		PoisonMean: PoisonMean(m, res),
		Y:          append([]float64(nil), res.Y...),
	}
}

// PoisonCount converts γ̂ into an estimated number of Byzantine reports m̂
// out of n collected reports.
func PoisonCount(gamma float64, n int) float64 {
	return gamma * float64(n)
}
