package emf

import (
	"math"
	"testing"

	"repro/internal/ldp/krr"
	"repro/internal/ldp/pm"
	"repro/internal/ldp/sw"
	"repro/internal/rng"
)

// pmWorkload builds a PM matrix plus a poisoned count vector.
func pmWorkload(t *testing.T, eps float64, n int) (*Matrix, []float64, []int) {
	t.Helper()
	r := rng.New(1)
	mech := pm.MustNew(eps)
	d, dp := BucketCounts(n, mech.C())
	m, err := BuildNumeric(mech, d, dp)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]float64, 0, n)
	for i := 0; i < n*3/4; i++ {
		reports = append(reports, mech.Perturb(r, rng.Uniform(r, -1, 0)))
	}
	c := mech.C()
	for i := 0; i < n/4; i++ {
		reports = append(reports, rng.Uniform(r, c/2, c))
	}
	return m, m.Counts(reports), m.PoisonRight(0)
}

func TestBandDetection(t *testing.T) {
	for _, eps := range []float64{0.0625, 0.25, 1, 2} {
		mech := pm.MustNew(eps)
		d, dp := BucketCounts(20000, mech.C())
		m, err := BuildNumeric(mech, d, dp)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Banded() || !m.BandRegular() {
			t.Fatalf("PM(ε=%v): banded=%v regular=%v, want both", eps, m.Banded(), m.BandRegular())
		}
	}
	msw, err := BuildNumeric(sw.MustNew(1), 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !msw.Banded() {
		t.Fatal("SW matrix should be banded")
	}
	mk := BuildCategorical(krr.MustNew(1, 15))
	if !mk.Banded() || !mk.BandRegular() {
		t.Fatalf("k-RR matrix: banded=%v regular=%v, want both", mk.Banded(), mk.BandRegular())
	}
}

// TestBandReconstructsP checks that base + delta reproduces every (snapped)
// dense entry exactly, i.e. the structured representation is lossless.
func TestBandReconstructsP(t *testing.T) {
	m, _, _ := pmWorkload(t, 0.5, 5000)
	b := m.band
	for i := 0; i < m.DPrime; i++ {
		for k := 0; k < m.D; k++ {
			want := m.P[i*m.D+k]
			got := b.base[k]
			if k >= b.lo[i] && k < b.hi[i] {
				switch {
				case k == b.lo[i]:
					got += b.edgeLo[i]
				case k == b.hi[i]-1:
					got += b.edgeHi[i]
				default:
					got += b.delta0
				}
			}
			if got != want {
				t.Fatalf("entry (%d,%d): banded %v != dense %v", i, k, got, want)
			}
		}
	}
}

// TestBandedEStepMatchesDense verifies the tentpole equivalence: one
// banded E-step agrees with the dense reference within 1e-12 on the
// expected masses and the log-likelihood.
func TestBandedEStepMatchesDense(t *testing.T) {
	for _, eps := range []float64{0.0625, 0.5, 2} {
		m, counts, poison := pmWorkload(t, eps, 20000)
		sb, _, err := newState(m, counts, poison, Config{})
		if err != nil {
			t.Fatal(err)
		}
		sd, _, err := newState(m, counts, poison, Config{})
		if err != nil {
			t.Fatal(err)
		}
		llB := sb.eStep(false)
		llD := sd.eStep(true)
		if rel := math.Abs(llB-llD) / math.Abs(llD); rel > 1e-12 {
			t.Fatalf("eps=%v: ll banded %v vs dense %v (rel %v)", eps, llB, llD, rel)
		}
		for k := range sb.px {
			if diff := math.Abs(sb.px[k] - sd.px[k]); diff > 1e-12*(1+math.Abs(sd.px[k])) {
				t.Fatalf("eps=%v: px[%d] banded %v vs dense %v", eps, k, sb.px[k], sd.px[k])
			}
		}
		for i := range sb.py {
			if diff := math.Abs(sb.py[i] - sd.py[i]); diff > 1e-12*(1+math.Abs(sd.py[i])) {
				t.Fatalf("eps=%v: py[%d] banded %v vs dense %v", eps, i, sb.py[i], sd.py[i])
			}
		}
		sb.release()
		sd.release()
	}
}

// TestBandedRunMatchesDense runs full EM both ways: the reconstructed
// histograms must agree to within 1e-9 after hundreds of iterations.
func TestBandedRunMatchesDense(t *testing.T) {
	for _, eps := range []float64{0.0625, 0.5, 2} {
		m, counts, poison := pmWorkload(t, eps, 20000)
		cfg := Config{Tol: PaperTol(eps), MaxIter: 300}
		dense := cfg
		dense.Dense = true
		rb, err := Run(m, counts, poison, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Run(m, counts, poison, dense)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Iters != rd.Iters || rb.Converged != rd.Converged {
			t.Fatalf("eps=%v: iteration trace diverged: %d/%v vs %d/%v",
				eps, rb.Iters, rb.Converged, rd.Iters, rd.Converged)
		}
		for k := range rb.X {
			if math.Abs(rb.X[k]-rd.X[k]) > 1e-9 {
				t.Fatalf("eps=%v: X[%d] banded %v vs dense %v", eps, k, rb.X[k], rd.X[k])
			}
		}
		if math.Abs(rb.Gamma()-rd.Gamma()) > 1e-9 {
			t.Fatalf("eps=%v: γ̂ banded %v vs dense %v", eps, rb.Gamma(), rd.Gamma())
		}
	}
}

func TestFastLogAccuracy(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 100000; i++ {
		x := math.Exp(rng.Uniform(r, -40, 3)) // den magnitudes seen by the E-step
		got := fastLog(x)
		want := math.Log(x)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("fastLog(%v) = %v, want %v", x, got, want)
		}
	}
	if got := fastLog(1e-300); math.Abs(got-math.Log(1e-300)) > 1e-10 {
		t.Fatalf("fastLog(1e-300) = %v", got)
	}
}

func TestStatePoolReuseIsClean(t *testing.T) {
	m, counts, poison := pmWorkload(t, 1, 5000)
	cfg := Config{Tol: PaperTol(1), MaxIter: 100}
	first, err := Run(m, counts, poison, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave runs with a different poison set (dirtying pooled states),
	// then repeat the first run: pooling must be invisible.
	if _, err := Run(m, counts, m.PoisonLeft(0), cfg); err != nil {
		t.Fatal(err)
	}
	again, err := Run(m, counts, poison, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Iters != again.Iters || first.LogLik != again.LogLik {
		t.Fatalf("pooled rerun diverged: %v/%v vs %v/%v", first.Iters, first.LogLik, again.Iters, again.LogLik)
	}
	for k := range first.X {
		if first.X[k] != again.X[k] {
			t.Fatalf("pooled rerun X[%d] %v != %v", k, again.X[k], first.X[k])
		}
	}
	for j := range first.Y {
		if first.Y[j] != again.Y[j] {
			t.Fatalf("pooled rerun Y[%d] %v != %v", j, again.Y[j], first.Y[j])
		}
	}
}

func TestMatrixCache(t *testing.T) {
	ResetMatrixCache()
	mech := pm.MustNew(0.75)
	m1, err := BuildNumericCached(mech, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildNumericCached(mech, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same key should return the cached matrix")
	}
	m3, err := BuildNumericCached(mech, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m3 {
		t.Fatal("different d′ must not share a cache entry")
	}
	other, err := BuildNumericCached(pm.MustNew(0.5), 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if other == m1 {
		t.Fatal("different ε must not share a cache entry")
	}
	k1 := BuildCategoricalCached(krr.MustNew(1, 8))
	k2 := BuildCategoricalCached(krr.MustNew(1, 8))
	if k1 != k2 {
		t.Fatal("categorical cache miss for identical mechanisms")
	}
}
