package emf

import (
	"sync"

	"repro/internal/ldp"
)

// Transform matrices are pure functions of (mechanism, d, d′): the numeric
// build integrates the mechanism's output density over every (input,
// output) bucket pair, which repeated Estimate/trial calls used to redo
// from scratch. Built matrices are immutable after construction, so they
// are cached process-wide and shared freely across goroutines. Mechanism
// names embed every distribution parameter (e.g. "PM(ε=0.5)",
// "kRR(ε=1,k=15)"), making (Name, d, d′) a sound cache key.

type matrixKey struct {
	name      string
	d, dprime int
}

var matrixCache sync.Map // matrixKey → *Matrix

// BuildNumericCached returns the transform matrix for (mech, d, dprime),
// building it at most once per process.
func BuildNumericCached(mech ldp.IntervalProber, d, dprime int) (*Matrix, error) {
	key := matrixKey{mech.Name(), d, dprime}
	if v, ok := matrixCache.Load(key); ok {
		return v.(*Matrix), nil
	}
	m, err := BuildNumeric(mech, d, dprime)
	if err != nil {
		return nil, err
	}
	v, _ := matrixCache.LoadOrStore(key, m)
	return v.(*Matrix), nil
}

// BuildCategoricalCached is BuildCategorical with the same process-wide
// cache (keyed by the mechanism name, which embeds ε and K).
func BuildCategoricalCached(mech ldp.Categorical) *Matrix {
	key := matrixKey{mech.Name(), mech.K(), mech.K()}
	if v, ok := matrixCache.Load(key); ok {
		return v.(*Matrix)
	}
	m := BuildCategorical(mech)
	v, _ := matrixCache.LoadOrStore(key, m)
	return v.(*Matrix)
}

// ResetMatrixCache drops every cached transform matrix (tests only).
func ResetMatrixCache() {
	matrixCache.Range(func(k, _ any) bool {
		matrixCache.Delete(k)
		return true
	})
}
