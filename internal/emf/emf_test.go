package emf

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

// scenario builds a PM collection with n normal reports drawn from values
// uniform on [valLo, valHi] and m poison reports uniform on
// [poiLoFrac·C, poiHiFrac·C].
type scenario struct {
	mech   *pm.Mechanism
	matrix *Matrix
	counts []float64
	n, m   int
}

func makeScenario(t *testing.T, r *rand.Rand, eps float64, n int, gamma float64, valLo, valHi, poiLoFrac, poiHiFrac float64) *scenario {
	t.Helper()
	mech := pm.MustNew(eps)
	d, dp := BucketCounts(n, mech.C())
	m, err := BuildNumeric(mech, d, dp)
	if err != nil {
		t.Fatal(err)
	}
	nByz := int(gamma * float64(n))
	nNorm := n - nByz
	reports := make([]float64, 0, n)
	for i := 0; i < nNorm; i++ {
		reports = append(reports, mech.Perturb(r, rng.Uniform(r, valLo, valHi)))
	}
	c := mech.C()
	for i := 0; i < nByz; i++ {
		reports = append(reports, rng.Uniform(r, poiLoFrac*c, poiHiFrac*c))
	}
	return &scenario{mech: mech, matrix: m, counts: m.Counts(reports), n: nNorm, m: nByz}
}

func TestRunValidation(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	if _, err := Run(m, make([]float64, 3), nil, Config{}); err == nil {
		t.Fatal("short counts accepted")
	}
	if _, err := Run(m, make([]float64, 10), []int{99}, Config{}); err == nil {
		t.Fatal("bad poison accepted")
	}
	if _, err := RunConstrained(m, make([]float64, 10), nil, -0.1, Config{}); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, err := RunConstrained(m, make([]float64, 10), nil, 1.5, Config{}); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
}

func TestEMFEstimatesGamma(t *testing.T) {
	r := rng.New(1)
	// Small ε: Theorem 3 regime where EMF separates poison sharply.
	sc := makeScenario(t, r, 0.125, 40000, 0.25, -1, 0, 0.5, 1)
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Gamma(); math.Abs(got-0.25) > 0.05 {
		t.Fatalf("γ̂ = %v, want ~0.25", got)
	}
}

func TestEMFGammaNearZeroWithoutPoison(t *testing.T) {
	r := rng.New(2)
	sc := makeScenario(t, r, 0.0625, 40000, 0, -1, 1, 0.5, 1)
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5(c): false positives stay small at small ε.
	if got := res.Gamma(); got > 0.08 {
		t.Fatalf("false-positive γ̂ = %v, want < 0.08", got)
	}
}

// Theorem 3: as ε→0 the reconstructed normal histogram tends to uniform
// and ŷ tends to the true poison distribution.
func TestTheorem3Convergence(t *testing.T) {
	r := rng.New(3)
	sc := makeScenario(t, r, 0.0625, 60000, 0.2, -1, 0.5, 0.5, 1)
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// x̂ close to uniform: each component ≈ (1−γ)/d.
	want := (1 - 0.2) / float64(sc.matrix.D)
	for k, x := range res.X {
		if math.Abs(x-want) > 0.35*want {
			t.Fatalf("x̂[%d] = %v, want ~%v (uniform)", k, x, want)
		}
	}
	// ŷ mass concentrates on buckets covering [C/2, C].
	c := sc.mech.C()
	var inRange, total float64
	for _, j := range res.Poison {
		total += res.Y[j]
		if ctr := sc.matrix.OutCenter(j); ctr > 0.45*c {
			inRange += res.Y[j]
		}
	}
	if total == 0 || inRange/total < 0.9 {
		t.Fatalf("poison mass in range: %v of %v", inRange, total)
	}
}

// EM invariant: the log-likelihood is non-decreasing across iterations.
func TestLikelihoodMonotone(t *testing.T) {
	r := rng.New(4)
	sc := makeScenario(t, r, 0.5, 20000, 0.2, -1, 0, 0.5, 1)
	prev := math.Inf(-1)
	for _, iters := range []int{1, 2, 3, 5, 10, 25, 60} {
		res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{MaxIter: iters, Tol: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		if res.LogLik < prev-1e-6 {
			t.Fatalf("log-likelihood decreased at %d iters: %v < %v", iters, res.LogLik, prev)
		}
		prev = res.LogLik
	}
}

func TestEMFHistogramsFormDistribution(t *testing.T) {
	r := rng.New(5)
	sc := makeScenario(t, r, 0.5, 20000, 0.3, -1, 0, 0.5, 1)
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Sum(res.X) + stats.Sum(res.Y)
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("Σx̂+Σŷ = %v, want 1", total)
	}
	for _, x := range res.X {
		if x < 0 {
			t.Fatalf("negative x̂: %v", x)
		}
	}
	for _, y := range res.Y {
		if y < 0 {
			t.Fatalf("negative ŷ: %v", y)
		}
	}
}

// Theorem 4 / Algorithm 4: EMF* enforces Σx̂ = 1−γ and Σŷ = γ.
func TestEMFStarConstraints(t *testing.T) {
	r := rng.New(6)
	sc := makeScenario(t, r, 0.5, 20000, 0.25, -1, 0, 0.5, 1)
	gamma := 0.25
	res, err := RunConstrained(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), gamma, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Sum(res.X); math.Abs(got-(1-gamma)) > 1e-9 {
		t.Fatalf("Σx̂ = %v, want %v", got, 1-gamma)
	}
	if got := res.Gamma(); math.Abs(got-gamma) > 1e-9 {
		t.Fatalf("Σŷ = %v, want %v", got, gamma)
	}
}

func TestEMFStarZeroGamma(t *testing.T) {
	r := rng.New(7)
	sc := makeScenario(t, r, 0.5, 10000, 0, -1, 1, 0.5, 1)
	res, err := RunConstrained(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Gamma(); got != 0 {
		t.Fatalf("γ=0 run kept poison mass %v", got)
	}
	if got := stats.Sum(res.X); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Σx̂ = %v, want 1", got)
	}
}

func TestEMFStarEmptyPoisonBuckets(t *testing.T) {
	// All counts on the left, poison set on the right: ΣPy = 0 triggers
	// the uniform-spread guard while keeping Σŷ = γ.
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	counts := make([]float64, 10)
	counts[0], counts[1] = 500, 500
	res, err := RunConstrained(m, counts, m.PoisonRight(0), 0.2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Gamma(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("Σŷ = %v, want 0.2", got)
	}
}

// CEMF* (Theorem 5): buckets without poison mass are suppressed and stay
// at zero; surviving buckets carry all of γ.
func TestCEMFSuppression(t *testing.T) {
	r := rng.New(8)
	// Poison concentrated in a narrow band [0.8C, C].
	sc := makeScenario(t, r, 0.25, 40000, 0.25, -1, 0, 0.8, 1)
	poison := sc.matrix.PoisonRight(0)
	base, err := Run(sc.matrix, sc.counts, poison, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gamma := base.Gamma()
	res, err := RunConcentrated(sc.matrix, sc.counts, base, gamma, 0.5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Poison) >= len(poison) {
		t.Fatalf("no bucket suppressed: %d vs %d", len(res.Poison), len(poison))
	}
	// Suppressed buckets hold no mass.
	kept := map[int]bool{}
	for _, j := range res.Poison {
		kept[j] = true
	}
	for _, j := range poison {
		if !kept[j] && res.Y[j] != 0 {
			t.Fatalf("suppressed bucket %d holds %v", j, res.Y[j])
		}
	}
	if got := res.Gamma(); math.Abs(got-gamma) > 1e-9 {
		t.Fatalf("Σŷ = %v, want %v", got, gamma)
	}
	// The surviving set should overlap the true poison band.
	c := sc.mech.C()
	found := false
	for _, j := range res.Poison {
		if sc.matrix.OutCenter(j) >= 0.75*c {
			found = true
		}
	}
	if !found {
		t.Fatal("surviving poison set misses the true band")
	}
}

func TestCEMFAllSuppressedFallsBack(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	counts := make([]float64, 10)
	for i := range counts {
		counts[i] = 100
	}
	base := &Result{
		Y:      make([]float64, 10),
		Poison: []int{7, 8, 9},
	}
	// base.Y all zero → everything below threshold → poison-free re-run.
	res, err := RunConcentrated(m, counts, base, 0.3, 0.5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gamma() != 0 || len(res.Poison) != 0 {
		t.Fatalf("expected poison-free fallback, got γ=%v |P|=%d", res.Gamma(), len(res.Poison))
	}
}

func TestCEMFEmptyPoisonDegenerates(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	counts := make([]float64, 10)
	for i := range counts {
		counts[i] = 10
	}
	base := &Result{Y: make([]float64, 10)}
	if _, err := RunConcentrated(m, counts, base, 0.1, 0.5, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSuppressedHelper(t *testing.T) {
	base := &Result{
		Y:      []float64{0, 0, 0, 0.001, 0.2},
		Poison: []int{3, 4},
	}
	// threshold = 0.5·0.3/2 = 0.075 → bucket 3 suppressed.
	got := Suppressed(base, 0.3, 0.5)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Suppressed = %v, want [3]", got)
	}
	if s := Suppressed(&Result{}, 0.3, 0.5); s != nil {
		t.Fatalf("empty base should suppress nothing, got %v", s)
	}
}

func TestPoisonMean(t *testing.T) {
	r := rng.New(9)
	sc := makeScenario(t, r, 0.125, 50000, 0.25, -1, 0, 0.5, 1)
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := sc.mech.C()
	want := 0.75 * c // mean of Uniform[C/2, C]
	if got := PoisonMean(sc.matrix, res); math.Abs(got-want) > 0.12*c {
		t.Fatalf("poison mean %v, want ~%v", got, want)
	}
}

func TestPoisonMeanNoMass(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	res := &Result{Y: make([]float64, 10), Poison: []int{8, 9}}
	if got := PoisonMean(m, res); got != 0 {
		t.Fatalf("PoisonMean of empty = %v", got)
	}
}

func TestPoisonCount(t *testing.T) {
	if got := PoisonCount(0.25, 1000); got != 250 {
		t.Fatalf("PoisonCount = %v", got)
	}
}

func TestConvergedFlag(t *testing.T) {
	r := rng.New(10)
	sc := makeScenario(t, r, 0.5, 10000, 0.2, -1, 0, 0.5, 1)
	// Huge tolerance: converges immediately after the second iteration.
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{Tol: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iters != 2 {
		t.Fatalf("expected instant convergence, got iters=%d converged=%v", res.Iters, res.Converged)
	}
	// Impossible tolerance with tiny iteration cap: must not converge.
	res2, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{Tol: 1e-300, MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Converged {
		t.Fatal("should not converge at Tol=1e-300 within 3 iterations")
	}
}

func TestPaperTol(t *testing.T) {
	if got := PaperTol(0); got != 0.01 {
		t.Fatalf("PaperTol(0) = %v", got)
	}
	if PaperTol(2) <= PaperTol(1) {
		t.Fatal("PaperTol should grow with ε")
	}
}

func TestSmoothingPreservesMass(t *testing.T) {
	r := rng.New(11)
	sc := makeScenario(t, r, 0.5, 20000, 0.2, -1, 0, 0.5, 1)
	res, err := Run(sc.matrix, sc.counts, sc.matrix.PoisonRight(0), Config{Smooth: true})
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Sum(res.X) + stats.Sum(res.Y)
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("smoothed mass = %v", total)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1 := rng.New(12)
	sc1 := makeScenario(t, r1, 0.5, 10000, 0.2, -1, 0, 0.5, 1)
	r2 := rng.New(12)
	sc2 := makeScenario(t, r2, 0.5, 10000, 0.2, -1, 0, 0.5, 1)
	a, _ := Run(sc1.matrix, sc1.counts, sc1.matrix.PoisonRight(0), Config{})
	b, _ := Run(sc2.matrix, sc2.counts, sc2.matrix.PoisonRight(0), Config{})
	for k := range a.X {
		if a.X[k] != b.X[k] {
			t.Fatal("EMF is not deterministic")
		}
	}
}
