package emf

import "math"

// SQUAREM acceleration of the EM fixed-point iteration (Varadhan &
// Roland's squared iterative scheme, SqS3 steplength). One cycle runs two
// base EM steps θ₀→θ₁→θ₂, forms the step differences r = θ₁−θ₀ and
// v = (θ₂−θ₁)−r, picks the steplength
//
//	α = −‖r‖/‖v‖  (clamped into [−maxAlpha, −1])
//
// and jumps to the extrapolated iterate
//
//	θ' = θ₀ − 2αr + α²v = (1+α)²·θ₀ − 2α(1+α)·θ₁ + α²·θ₂,
//
// an affine combination of the three iterates (coefficients sum to one),
// projected back onto the constraint set (negatives clamped, masses
// renormalized). A stabilizing plain EM step follows the jump; if its
// log-likelihood falls below the cycle's last base value, the jump is
// rejected and the cycle restarts from θ₂ — exactly the plain double step
// — so the safeguarded sequence is monotone like plain EM and converges
// to the same fixed point under the same Tol rule. At α = −1 the
// extrapolation degenerates to θ₂, i.e. plain EM.
//
// Iterations are counted in E-step evaluations (3 per full cycle), the
// same cost unit as plain EM, so MaxIter bounds identical work in both
// modes.

// maxAlpha caps the SQUAREM steplength magnitude. Larger jumps are almost
// always rejected by the monotonicity safeguard, and each rejection burns
// one E-step; the cap keeps the worst case bounded without limiting the
// useful range (a cap sweep on the full harness showed the large cap winning on warm-started chains even though tighter caps win isolated cold fits).
const maxAlpha = 256.0

// solveSQUAREM runs the accelerated loop. Returns E-step evaluations,
// rejected extrapolations, the final log-likelihood and convergence.
func (s *state) solveSQUAREM(cfg Config, mstep, renorm func(*state)) (iters, restarts int, ll float64, converged bool) {
	tol, maxIter := cfg.tol(), cfg.maxIter()
	prevLL := math.Inf(-1)
	// justJumped suppresses the convergence check on the base step that
	// immediately follows an accepted extrapolation: the landing point can
	// sit in a transiently flat spot where one EM step moves l(F) by less
	// than Tol without being near the fixed point. Termination then needs a
	// sub-Tol change between two genuine consecutive EM iterates.
	justJumped := false
	for iters < maxIter {
		// Base step 1: θ₀ → θ₁.
		copy(s.sx0, s.x)
		copy(s.sy0, s.y)
		ll = s.emStep(cfg, mstep)
		iters++
		if iters > 1 && !justJumped && math.Abs(ll-prevLL) < tol {
			return iters, restarts, ll, true
		}
		justJumped = false
		prevLL = ll
		if iters >= maxIter {
			break
		}

		// Base step 2: θ₁ → θ₂.
		copy(s.sx1, s.x)
		copy(s.sy1, s.y)
		ll = s.emStep(cfg, mstep)
		iters++
		if math.Abs(ll-prevLL) < tol {
			return iters, restarts, ll, true
		}
		prevLL = ll
		if iters >= maxIter {
			break
		}

		// Steplength from the two step differences over the joint (x̂, ŷ)
		// parameter vector (ŷ varies on the poison set only).
		copy(s.sx2, s.x)
		copy(s.sy2, s.y)
		var rr, vv float64
		for k := range s.x {
			r := s.sx1[k] - s.sx0[k]
			v := s.x[k] - 2*s.sx1[k] + s.sx0[k]
			rr += r * r
			vv += v * v
		}
		for _, j := range s.poison {
			r := s.sy1[j] - s.sy0[j]
			v := s.y[j] - 2*s.sy1[j] + s.sy0[j]
			rr += r * r
			vv += v * v
		}
		if vv < 1e-300 || rr < 1e-300 {
			// The iterates have effectively stopped moving; the next base
			// steps terminate on the Tol rule.
			continue
		}
		alpha := -math.Sqrt(rr / vv)
		if alpha > -1 {
			alpha = -1
		} else if alpha < -maxAlpha {
			alpha = -maxAlpha
		}
		c0 := (1 + alpha) * (1 + alpha)
		c1 := -2 * alpha * (1 + alpha)
		c2 := alpha * alpha
		for k := range s.x {
			v := c0*s.sx0[k] + c1*s.sx1[k] + c2*s.x[k]
			if v < 0 {
				v = 0
			}
			s.x[k] = v
		}
		for _, j := range s.poison {
			v := c0*s.sy0[j] + c1*s.sy1[j] + c2*s.y[j]
			if v < 0 {
				v = 0
			}
			s.y[j] = v
		}
		renorm(s)

		// Stabilization step from θ': its log-likelihood l(θ') decides the
		// monotonicity safeguard against the last base value l(θ₁) (plain EM
		// would have reached l(θ₂) ≥ l(θ₁)).
		ll = s.emStep(cfg, mstep)
		iters++
		if ll < prevLL {
			// Jump rejected: fall back to the plain double-step iterate θ₂.
			copy(s.x, s.sx2)
			copy(s.y, s.sy2)
			restarts++
			ll = prevLL
			continue
		}
		if alpha == -1 && math.Abs(ll-prevLL) < tol {
			// At α = −1 the jump degenerated to the plain step, so this is a
			// genuine consecutive-iterate comparison.
			return iters, restarts, ll, true
		}
		justJumped = alpha < -1
		prevLL = ll
	}
	return iters, restarts, ll, false
}
