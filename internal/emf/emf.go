package emf

import (
	"errors"
	"math"
)

// Config controls the EM iterations shared by EMF, EMF* and CEMF*.
type Config struct {
	// Tol is the absolute log-likelihood change below which the iteration
	// stops: |l(F)_t − l(F)_{t+1}| < Tol. The paper sets Tol = 0.01·e^ε
	// (§VI-A); 0 selects DefaultTol.
	Tol float64
	// MaxIter caps the EM iterations; 0 selects DefaultMaxIter.
	MaxIter int
	// Smooth enables the EMS smoothing step on the normal-user histogram
	// after each M-step (used with the Square Wave mechanism, per Li et
	// al.'s EMS and the paper's §V-D extension).
	Smooth bool
}

// Default iteration controls.
const (
	DefaultTol     = 1e-3
	DefaultMaxIter = 500
)

func (c Config) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return DefaultTol
}

func (c Config) maxIter() int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	return DefaultMaxIter
}

// PaperTol returns the paper's termination threshold 0.01·e^ε for a group
// with budget eps.
func PaperTol(eps float64) float64 { return 0.01 * math.Exp(eps) }

// Result holds the reconstructed frequency histograms of one EM run.
type Result struct {
	// X is the estimated normal-user frequency histogram over the D input
	// buckets. Together with Y it sums to one (EMF) or to the imposed
	// (1−γ, γ) split (EMF*/CEMF*).
	X []float64
	// Y is the estimated poison-value frequency histogram indexed by
	// output bucket; entries outside the poison set are zero.
	Y []float64
	// Poison is the output-bucket index set used as poison components.
	Poison []int
	// Iters is the number of EM iterations performed.
	Iters int
	// LogLik is the final log-likelihood l(F).
	LogLik float64
	// Converged reports whether the tolerance was met before MaxIter.
	Converged bool
}

// Gamma returns the estimated Byzantine proportion γ̂ = Σ_j ŷ_j (Eq. 9).
func (r *Result) Gamma() float64 {
	var s float64
	for _, y := range r.Y {
		s += y
	}
	return s
}

// state carries preallocated buffers for the EM loops.
type state struct {
	m        *Matrix
	counts   []float64
	isPoison []bool // indexed by output bucket
	x        []float64
	y        []float64 // indexed by output bucket; zero outside poison
	px       []float64
	py       []float64
	den      []float64
}

func newState(m *Matrix, counts []float64, poison []int) (*state, error) {
	if len(counts) != m.DPrime {
		return nil, errors.New("emf: counts length must equal DPrime")
	}
	if err := m.validatePoison(poison); err != nil {
		return nil, err
	}
	s := &state{
		m:        m,
		counts:   counts,
		isPoison: make([]bool, m.DPrime),
		x:        make([]float64, m.D),
		y:        make([]float64, m.DPrime),
		px:       make([]float64, m.D),
		py:       make([]float64, m.DPrime),
		den:      make([]float64, m.DPrime),
	}
	for _, j := range poison {
		s.isPoison[j] = true
	}
	// Initialization of Algorithm 2: x̂_k = ŷ_j = 1/(d + |P|).
	init := 1.0 / float64(m.D+len(poison))
	for k := range s.x {
		s.x[k] = init
	}
	for _, j := range poison {
		s.y[j] = init
	}
	return s, nil
}

// eStep computes the expected component masses Px, Py and returns the
// current log-likelihood l(F) = Σ_i c_i ln D_i.
func (s *state) eStep() float64 {
	m := s.m
	d := m.D
	var ll float64
	for i := 0; i < m.DPrime; i++ {
		row := m.P[i*d : i*d+d]
		den := s.y[i] // zero outside the poison set
		for k, p := range row {
			den += p * s.x[k]
		}
		if den < 1e-300 {
			den = 1e-300
		}
		s.den[i] = den
		if c := s.counts[i]; c > 0 {
			ll += c * math.Log(den)
		}
	}
	for k := 0; k < d; k++ {
		var acc float64
		for i := 0; i < m.DPrime; i++ {
			if c := s.counts[i]; c > 0 {
				acc += c * m.P[i*d+k] / s.den[i]
			}
		}
		s.px[k] = s.x[k] * acc
	}
	for i := 0; i < m.DPrime; i++ {
		if s.isPoison[i] && s.counts[i] > 0 {
			s.py[i] = s.y[i] * s.counts[i] / s.den[i]
		} else {
			s.py[i] = 0
		}
	}
	return ll
}

// mStepEMF is Algorithm 2's M-step: joint normalization of Px and Py.
func (s *state) mStepEMF() {
	var total float64
	for _, v := range s.px {
		total += v
	}
	for _, v := range s.py {
		total += v
	}
	if total <= 0 {
		return
	}
	for k := range s.x {
		s.x[k] = s.px[k] / total
	}
	for i := range s.y {
		if s.isPoison[i] {
			s.y[i] = s.py[i] / total
		}
	}
}

// mStepConstrained is Algorithm 4's M-step (Theorem 4): x̂ renormalized to
// mass 1−γ and ŷ to mass γ.
func (s *state) mStepConstrained(gamma float64) {
	var sx, sy float64
	for _, v := range s.px {
		sx += v
	}
	for _, v := range s.py {
		sy += v
	}
	if sx > 0 {
		for k := range s.x {
			s.x[k] = (1 - gamma) * s.px[k] / sx
		}
	}
	nPoison := 0
	for i := range s.y {
		if s.isPoison[i] {
			nPoison++
		}
	}
	for i := range s.y {
		if !s.isPoison[i] {
			continue
		}
		if sy > 0 {
			s.y[i] = gamma * s.py[i] / sy
		} else if nPoison > 0 {
			// No observed mass in poison buckets: spread γ uniformly so the
			// constraint Σŷ = γ still holds.
			s.y[i] = gamma / float64(nPoison)
		}
	}
}

// smoothX applies the EMS binomial kernel (1,2,1)/4 to the normal-user
// histogram, preserving its total mass; boundaries reflect.
func (s *state) smoothX() {
	d := len(s.x)
	if d < 3 {
		return
	}
	var before float64
	for _, v := range s.x {
		before += v
	}
	sm := s.px[:d] // reuse buffer: px is dead between iterations
	for k := 0; k < d; k++ {
		prev := s.x[max(0, k-1)]
		next := s.x[min(d-1, k+1)]
		sm[k] = (prev + 2*s.x[k] + next) / 4
	}
	var after float64
	for _, v := range sm {
		after += v
	}
	scale := 1.0
	if after > 0 {
		scale = before / after
	}
	for k := 0; k < d; k++ {
		s.x[k] = sm[k] * scale
	}
}

func (s *state) result(poison []int, iters int, ll float64, converged bool) *Result {
	res := &Result{
		X:         append([]float64(nil), s.x...),
		Y:         append([]float64(nil), s.y...),
		Poison:    append([]int(nil), poison...),
		Iters:     iters,
		LogLik:    ll,
		Converged: converged,
	}
	return res
}

// Run executes EMF (Algorithm 2): it reconstructs the frequency histogram
// F = {x̂, ŷ} of normal values over the input buckets and poison values
// over the given poison output buckets, from the observed report counts.
func Run(m *Matrix, counts []float64, poison []int, cfg Config) (*Result, error) {
	s, err := newState(m, counts, poison)
	if err != nil {
		return nil, err
	}
	tol, maxIter := cfg.tol(), cfg.maxIter()
	prevLL := math.Inf(-1)
	var ll float64
	for it := 1; it <= maxIter; it++ {
		ll = s.eStep()
		s.mStepEMF()
		if cfg.Smooth {
			s.smoothX()
		}
		if it > 1 && math.Abs(ll-prevLL) < tol {
			return s.result(poison, it, ll, true), nil
		}
		prevLL = ll
	}
	return s.result(poison, maxIter, ll, false), nil
}

// RunConstrained executes EMF* (Algorithm 4): EM with the M-step of
// Theorem 4, imposing Σx̂ = 1−γ and Σŷ = γ.
func RunConstrained(m *Matrix, counts []float64, poison []int, gamma float64, cfg Config) (*Result, error) {
	if gamma < 0 || gamma > 1 {
		return nil, errors.New("emf: gamma must lie in [0,1]")
	}
	s, err := newState(m, counts, poison)
	if err != nil {
		return nil, err
	}
	tol, maxIter := cfg.tol(), cfg.maxIter()
	prevLL := math.Inf(-1)
	var ll float64
	for it := 1; it <= maxIter; it++ {
		ll = s.eStep()
		s.mStepConstrained(gamma)
		if cfg.Smooth {
			s.smoothX()
		}
		if it > 1 && math.Abs(ll-prevLL) < tol {
			return s.result(poison, it, ll, true), nil
		}
		prevLL = ll
	}
	return s.result(poison, maxIter, ll, false), nil
}
