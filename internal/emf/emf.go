package emf

import (
	"errors"
	"math"
	"sync"
)

// Config controls the EM iterations shared by EMF, EMF* and CEMF*.
type Config struct {
	// Tol is the absolute log-likelihood change below which the iteration
	// stops: |l(F)_t − l(F)_{t+1}| < Tol. The paper sets Tol = 0.01·e^ε
	// (§VI-A); 0 selects DefaultTol.
	Tol float64
	// MaxIter caps the EM iterations; 0 selects DefaultMaxIter.
	MaxIter int
	// Smooth enables the EMS smoothing step on the normal-user histogram
	// after each M-step (used with the Square Wave mechanism, per Li et
	// al.'s EMS and the paper's §V-D extension).
	Smooth bool
	// Dense forces the O(D′×D) dense E-step even when the matrix carries a
	// banded representation — for tests and benchmarks comparing the two
	// paths. Production callers leave it false.
	Dense bool
	// Accelerate enables SQUAREM extrapolation over the EM map (squarem.go):
	// two base EM steps, a steplength from the step differences, one
	// extrapolated jump, and a monotonicity safeguard that falls back to the
	// plain step whenever the jump lowers the log-likelihood. The fixed
	// point and the Tol termination rule are unchanged; only the path to
	// them shortens, so accelerated and plain runs agree within Tol-scaled
	// bounds (tolerance-equivalent, not bit-identical).
	Accelerate bool
	// Init optionally warm-starts the iteration from a previous fit instead
	// of the uniform 1/(d+|P|) initialization of Algorithm 2. The fit must
	// come from the same bucket layout (len(X) = D, len(Y) = D′); a
	// mismatched Init is silently ignored and the run starts cold. Warm
	// entries are floored at a tiny mass so EM's multiplicative update can
	// move support the previous fit had zeroed out.
	Init *Result
}

// Default iteration controls.
const (
	DefaultTol     = 1e-3
	DefaultMaxIter = 500
)

func (c Config) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return DefaultTol
}

func (c Config) maxIter() int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	return DefaultMaxIter
}

// PaperTol returns the paper's termination threshold 0.01·e^ε for a group
// with budget eps.
func PaperTol(eps float64) float64 { return 0.01 * math.Exp(eps) }

// Result holds the reconstructed frequency histograms of one EM run.
type Result struct {
	// X is the estimated normal-user frequency histogram over the D input
	// buckets. Together with Y it sums to one (EMF) or to the imposed
	// (1−γ, γ) split (EMF*/CEMF*).
	X []float64
	// Y is the estimated poison-value frequency histogram indexed by
	// output bucket; entries outside the poison set are zero.
	Y []float64
	// Poison is the output-bucket index set used as poison components.
	Poison []int
	// Iters is the number of EM iterations performed.
	Iters int
	// LogLik is the final log-likelihood l(F).
	LogLik float64
	// Converged reports whether the tolerance was met before MaxIter.
	Converged bool
	// Restarts counts SQUAREM extrapolations rejected by the monotonicity
	// safeguard (always 0 for plain runs).
	Restarts int
	// Warm reports whether the run was seeded from Config.Init.
	Warm bool
}

// Gamma returns the estimated Byzantine proportion γ̂ = Σ_j ŷ_j (Eq. 9).
func (r *Result) Gamma() float64 {
	var s float64
	for _, y := range r.Y {
		s += y
	}
	return s
}

// state carries the EM loop buffers. States are pooled: repeated
// Estimate/trial calls reuse the five slices instead of reallocating them
// per run, which matters when the Monte-Carlo harness fires thousands of
// EM fits.
type state struct {
	m        *Matrix
	counts   []float64
	poison   []int
	isPoison []bool // indexed by output bucket
	x        []float64
	y        []float64 // indexed by output bucket; zero outside poison
	px       []float64
	py       []float64
	// Banded E-step scratch: the rows with nonzero observed count (the
	// only ones that contribute), the poison subset of those, and the
	// per-row denominators/weights of the current iteration. Splitting the
	// sweep into short batched passes over these lets the per-row
	// divisions and logarithms pipeline instead of serializing on each
	// row's dependency chain.
	rows []int
	// xpre and diff are scratch for the regular banded E-step: prefix sums
	// of x̂ and the Px difference array (both length D+1, L1-resident).
	xpre []float64
	diff []float64
	// sumPx and sumPy are Σ Px and Σ Py of the latest E-step, accumulated
	// during the sweep so the M-step normalization needs no extra pass.
	sumPx, sumPy float64
	// SQUAREM scratch (squarem.go): the two anchor iterates θ₀, θ₁ of the
	// current acceleration cycle and the plain double-step iterate θ₂ kept
	// for the monotonicity fallback. Pooled with the rest of the state so
	// accelerated runs stay allocation-free per iteration.
	sx0, sx1, sx2 []float64
	sy0, sy1, sy2 []float64
}

var statePool = sync.Pool{New: func() any { return new(state) }}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func newState(m *Matrix, counts []float64, poison []int, cfg Config) (*state, bool, error) {
	if len(counts) != m.DPrime {
		return nil, false, errors.New("emf: counts length must equal DPrime")
	}
	if err := m.validatePoison(poison); err != nil {
		return nil, false, err
	}
	s := statePool.Get().(*state)
	s.m, s.counts, s.poison = m, counts, poison
	s.isPoison = growB(s.isPoison, m.DPrime)
	s.x = growF(s.x, m.D)
	s.y = growF(s.y, m.DPrime)
	s.px = growF(s.px, m.D)
	s.py = growF(s.py, m.DPrime)
	s.xpre = growF(s.xpre, m.D+1)
	s.diff = growF(s.diff, m.D+1)
	if cfg.Accelerate {
		s.sx0 = growF(s.sx0, m.D)
		s.sx1 = growF(s.sx1, m.D)
		s.sx2 = growF(s.sx2, m.D)
		s.sy0 = growF(s.sy0, m.DPrime)
		s.sy1 = growF(s.sy1, m.DPrime)
		s.sy2 = growF(s.sy2, m.DPrime)
	}
	for i := range s.isPoison {
		s.isPoison[i] = false
		s.y[i] = 0
		s.py[i] = 0
	}
	// Initialization of Algorithm 2: x̂_k = ŷ_j = 1/(d + |P|).
	init := 1.0 / float64(m.D+len(poison))
	for k := range s.x {
		s.x[k] = init
	}
	for _, j := range poison {
		s.isPoison[j] = true
		s.y[j] = init
	}
	warm := s.warmStart(cfg.Init, poison)
	s.rows = s.rows[:0]
	for i, c := range counts {
		if c > 0 {
			s.rows = append(s.rows, i)
		}
	}
	return s, warm, nil
}

// warmStart overwrites the uniform initialization with a previous fit when
// its bucket layout matches. Entries are floored at a tiny positive mass
// (exact zeros are fixed points of EM's multiplicative update and could
// never be resurrected on new data) and the whole vector is renormalized
// to unit mass. Reports whether the warm start was applied.
func (s *state) warmStart(init *Result, poison []int) bool {
	if init == nil || len(init.X) != s.m.D || len(init.Y) != s.m.DPrime {
		return false
	}
	// 0.1% of the uniform mass: small enough not to disturb a good seed,
	// large enough that EM's multiplicative update can regrow a bucket the
	// seed had emptied within a handful of iterations.
	floor := 1e-3 / float64(s.m.D+len(poison))
	var total float64
	for k, v := range init.X {
		if !(v > floor) { // also catches NaN
			v = floor
		}
		s.x[k] = v
		total += v
	}
	for _, j := range poison {
		v := init.Y[j]
		if !(v > floor) {
			v = floor
		}
		s.y[j] = v
		total += v
	}
	if total <= 0 {
		return false
	}
	inv := 1 / total
	for k := range s.x {
		s.x[k] *= inv
	}
	for _, j := range poison {
		s.y[j] *= inv
	}
	return true
}

// release returns the buffers to the pool; the state must not be used
// afterwards. Results hand out copies, so pooling is invisible to callers.
func (s *state) release() {
	s.m, s.counts, s.poison = nil, nil, nil
	statePool.Put(s)
}

// eStep computes the expected component masses Px, Py and returns the
// current log-likelihood l(F) = Σ_i c_i ln D_i, dispatching to the banded
// fast path when the matrix carries one.
func (s *state) eStep(dense bool) float64 {
	if !dense && s.m.band != nil {
		if s.m.band.regular {
			return s.eStepBandedRegular()
		}
		return s.eStepBanded()
	}
	return s.eStepDense()
}

// eStepDense is the reference O(D′×D) E-step, fused into a single sweep:
// each row's denominator, log-likelihood contribution, Px accumulation and
// Py update happen while the row is hot in cache. Rows with zero observed
// count contribute nothing and are skipped.
//
//dapvet:hotpath
func (s *state) eStepDense() float64 {
	m := s.m
	d := m.D
	px := s.px
	for k := range px {
		px[k] = 0
	}
	var ll, sumPy float64
	for i := 0; i < m.DPrime; i++ {
		c := s.counts[i]
		if c <= 0 {
			continue
		}
		row := m.P[i*d : i*d+d]
		den := s.y[i] // zero outside the poison set
		for k, p := range row {
			den += p * s.x[k]
		}
		if den < 1e-300 {
			den = 1e-300
		}
		// Manually inlined fastLog(den) (see banded.go): the call itself
		// costs as much as the table lookup at this call frequency.
		bits := math.Float64bits(den)
		lt := &logTab[(bits>>(52-logTabBits))&(1<<logTabBits-1)]
		lr := math.Float64frombits((bits&0x000fffffffffffff)|0x3ff0000000000000)*lt.inv - 1
		ll += c * (float64(int(bits>>52)-1023)*ln2 + (lt.log + lr*(1-lr*(0.5-lr*(1.0/3-lr*0.25)))))
		w := c / den
		for k, p := range row {
			px[k] += w * p
		}
		if s.isPoison[i] {
			py := s.y[i] * w
			s.py[i] = py
			sumPy += py
		}
	}
	var sumPx float64
	for k := 0; k < d; k++ {
		v := px[k] * s.x[k]
		px[k] = v
		sumPx += v
	}
	s.sumPx, s.sumPy = sumPx, sumPy
	return ll
}

// eStepBanded exploits the two-level column structure: with
// P[i,k] = base[k] + delta(i,k), each denominator is the running baseline
// sum S = Σ base[k]·x̂_k plus an O(band) correction, and the Px accumulation
// likewise splits into base[k]·Σ w_i (one scalar per sweep) plus banded
// corrections — O(band + D + D′) per iteration instead of O(D·D′). The
// sweep is organized as short batched passes over the active rows so that
// the per-row division and logarithm issue back-to-back (throughput-bound)
// instead of serializing on each row's dependency chain; all scratch
// arrays are ≤ D′ floats and stay L1-resident.
//
//dapvet:hotpath
func (s *state) eStepBanded() float64 {
	m := s.m
	b := m.band
	d := m.D
	var S float64
	for k, bk := range b.base {
		S += bk * s.x[k]
	}
	px := s.px
	for k := range px {
		px[k] = 0
	}
	var ll, T, sumPy float64
	for _, i := range s.rows {
		c := s.counts[i]
		vals := b.vals[b.off[i]:b.off[i+1]]
		lo := b.lo[i]
		xs := s.x[lo : lo+len(vals)]
		// Specialized dot product: bands of one or two columns (the common
		// case at small ε, where D = d′/C is tiny) skip the loop entirely;
		// longer bands use two accumulators so the multiplies overlap
		// instead of serializing on one add chain. Band widths are nearly
		// constant within a matrix, so the switch predicts perfectly.
		var dot float64
		switch len(vals) {
		case 1:
			dot = vals[0] * xs[0]
		case 2:
			dot = vals[0]*xs[0] + vals[1]*xs[1]
		default:
			var d0, d1 float64
			n2 := len(vals) &^ 1
			for j := 0; j < n2; j += 2 {
				d0 += vals[j] * xs[j]
				d1 += vals[j+1] * xs[j+1]
			}
			if n2 < len(vals) {
				d0 += vals[n2] * xs[n2]
			}
			dot = d0 + d1
		}
		den := s.y[i] + S + dot
		if den < 1e-300 {
			den = 1e-300
		}
		// Manually inlined fastLog(den) (see banded.go: the call overhead
		// alone is measurable at this frequency).
		bits := math.Float64bits(den)
		lt := &logTab[(bits>>(52-logTabBits))&(1<<logTabBits-1)]
		lr := math.Float64frombits((bits&0x000fffffffffffff)|0x3ff0000000000000)*lt.inv - 1
		ll += c * (float64(int(bits>>52)-1023)*ln2 + (lt.log + lr*(1-lr*(0.5-lr*(1.0/3-lr*0.25)))))
		w := c / den
		T += w
		pxs := px[lo : lo+len(vals)]
		for j, v := range vals {
			pxs[j] += w * v
		}
		if s.isPoison[i] {
			py := s.y[i] * w
			s.py[i] = py
			sumPy += py
		}
	}
	var sumPx float64
	for k := 0; k < d; k++ {
		v := s.x[k] * (b.base[k]*T + px[k])
		px[k] = v
		sumPx += v
	}
	s.sumPx, s.sumPy = sumPx, sumPy
	return ll
}

// eStepBandedRegular is the O(D + D′) E-step for matrices whose band
// interior is one constant delta0 (PM, SW, k-RR — see bandRep). Each
// denominator needs only the two window-edge terms plus
// delta0·(X[hi−1] − X[lo+1]) over the prefix sums X of x̂, and the Px
// scatter becomes two edge writes plus a difference-array update, so one
// EM iteration costs O(D + D′) independent of the band width.
//
//dapvet:hotpath
func (s *state) eStepBandedRegular() float64 {
	m := s.m
	b := m.band
	d := m.D
	x := s.x
	var S float64
	for k, bk := range b.base {
		S += bk * x[k]
	}
	X := s.xpre
	X[0] = 0
	for k := 0; k < d; k++ {
		X[k+1] = X[k] + x[k]
	}
	px := s.px
	diff := s.diff
	for k := range px {
		px[k] = 0
	}
	for k := range diff {
		diff[k] = 0
	}
	d0 := b.delta0
	var ll, T, sumPy float64
	for _, i := range s.rows {
		c := s.counts[i]
		lo, hi := b.lo[i], b.hi[i]
		den := s.y[i] + S
		switch hi - lo {
		case 0:
		case 1:
			den += b.edgeLo[i] * x[lo]
		case 2:
			den += b.edgeLo[i]*x[lo] + b.edgeHi[i]*x[hi-1]
		default:
			den += b.edgeLo[i]*x[lo] + b.edgeHi[i]*x[hi-1] + d0*(X[hi-1]-X[lo+1])
		}
		if den < 1e-300 {
			den = 1e-300
		}
		// Manually inlined fastLog(den) (see banded.go: the call overhead
		// alone is measurable at this frequency).
		bits := math.Float64bits(den)
		lt := &logTab[(bits>>(52-logTabBits))&(1<<logTabBits-1)]
		lr := math.Float64frombits((bits&0x000fffffffffffff)|0x3ff0000000000000)*lt.inv - 1
		ll += c * (float64(int(bits>>52)-1023)*ln2 + (lt.log + lr*(1-lr*(0.5-lr*(1.0/3-lr*0.25)))))
		w := c / den
		T += w
		switch hi - lo {
		case 0:
		case 1:
			px[lo] += b.edgeLo[i] * w
		case 2:
			px[lo] += b.edgeLo[i] * w
			px[hi-1] += b.edgeHi[i] * w
		default:
			px[lo] += b.edgeLo[i] * w
			px[hi-1] += b.edgeHi[i] * w
			dw := d0 * w
			diff[lo+1] += dw
			diff[hi-1] -= dw
		}
		if s.isPoison[i] {
			py := s.y[i] * w
			s.py[i] = py
			sumPy += py
		}
	}
	var run, sumPx float64
	for k := 0; k < d; k++ {
		run += diff[k]
		v := x[k] * (b.base[k]*T + px[k] + run)
		px[k] = v
		sumPx += v
	}
	s.sumPx, s.sumPy = sumPx, sumPy
	return ll
}

// mStepEMF is Algorithm 2's M-step: joint normalization of Px and Py.
// One reciprocal replaces the D+|P| divisions of the literal form — at
// ~10⁷ normalizations per harness run the divider latency is visible.
//
//dapvet:hotpath
func (s *state) mStepEMF() {
	total := s.sumPx + s.sumPy
	if total <= 0 {
		return
	}
	inv := 1 / total
	for k := range s.x {
		s.x[k] = s.px[k] * inv
	}
	for _, j := range s.poison {
		s.y[j] = s.py[j] * inv
	}
}

// mStepConstrained is Algorithm 4's M-step (Theorem 4): x̂ renormalized to
// mass 1−γ and ŷ to mass γ.
func (s *state) mStepConstrained(gamma float64) {
	sx, sy := s.sumPx, s.sumPy
	if sx > 0 {
		scale := (1 - gamma) / sx
		for k := range s.x {
			s.x[k] = scale * s.px[k]
		}
	}
	if sy > 0 {
		scale := gamma / sy
		for _, j := range s.poison {
			s.y[j] = scale * s.py[j]
		}
	} else {
		// No observed mass in poison buckets: spread γ uniformly so the
		// constraint Σŷ = γ still holds.
		for _, j := range s.poison {
			s.y[j] = gamma / float64(len(s.poison))
		}
	}
}

// smoothX applies the EMS binomial kernel (1,2,1)/4 to the normal-user
// histogram, preserving its total mass; boundaries reflect.
func (s *state) smoothX() {
	d := len(s.x)
	if d < 3 {
		return
	}
	var before float64
	for _, v := range s.x {
		before += v
	}
	sm := s.px[:d] // reuse buffer: px is dead between iterations
	for k := 0; k < d; k++ {
		prev := s.x[max(0, k-1)]
		next := s.x[min(d-1, k+1)]
		sm[k] = (prev + 2*s.x[k] + next) / 4
	}
	var after float64
	for _, v := range sm {
		after += v
	}
	scale := 1.0
	if after > 0 {
		scale = before / after
	}
	for k := 0; k < d; k++ {
		s.x[k] = sm[k] * scale
	}
}

func (s *state) result(poison []int, iters int, ll float64, converged bool) *Result {
	res := &Result{
		X:         append([]float64(nil), s.x...),
		Y:         append([]float64(nil), s.y...),
		Poison:    append([]int(nil), poison...),
		Iters:     iters,
		LogLik:    ll,
		Converged: converged,
	}
	return res
}

// emStep applies one full step of the EM map — E-step, the variant's
// M-step, optional EMS smoothing — and returns the log-likelihood of the
// pre-step iterate (the quantity the Tol rule watches).
func (s *state) emStep(cfg Config, mstep func(*state)) float64 {
	ll := s.eStep(cfg.Dense)
	mstep(s)
	if cfg.Smooth {
		s.smoothX()
	}
	return ll
}

// solvePlain is the literal fixed-point loop of Algorithm 2: iterate the
// EM map until |l(F_t) − l(F_{t+1})| < Tol or MaxIter. Returns the
// iteration count, final log-likelihood and whether the tolerance was met.
func (s *state) solvePlain(cfg Config, mstep func(*state)) (int, float64, bool) {
	tol, maxIter := cfg.tol(), cfg.maxIter()
	prevLL := math.Inf(-1)
	var ll float64
	for it := 1; it <= maxIter; it++ {
		ll = s.emStep(cfg, mstep)
		if it > 1 && math.Abs(ll-prevLL) < tol {
			return it, ll, true
		}
		prevLL = ll
	}
	return maxIter, ll, false
}

// solve dispatches between the plain and the SQUAREM-accelerated loop and
// packages the result. renorm projects an extrapolated iterate back onto
// the variant's constraint set (joint unit mass for EMF, the (1−γ, γ)
// split for EMF*).
func solve(m *Matrix, counts []float64, poison []int, cfg Config, mstep, renorm func(*state)) (*Result, error) {
	s, warm, err := newState(m, counts, poison, cfg)
	if err != nil {
		return nil, err
	}
	defer s.release()
	var (
		iters, restarts int
		ll              float64
		converged       bool
	)
	if cfg.Accelerate {
		iters, restarts, ll, converged = s.solveSQUAREM(cfg, mstep, renorm)
	} else {
		iters, ll, converged = s.solvePlain(cfg, mstep)
	}
	res := s.result(poison, iters, ll, converged)
	res.Restarts, res.Warm = restarts, warm
	recordRun(res)
	return res, nil
}

// renormJoint rescales {x̂, ŷ} to joint unit mass — EMF's constraint set.
func (s *state) renormJoint() {
	var total float64
	for _, v := range s.x {
		total += v
	}
	for _, j := range s.poison {
		total += s.y[j]
	}
	if total <= 0 {
		return
	}
	inv := 1 / total
	for k := range s.x {
		s.x[k] *= inv
	}
	for _, j := range s.poison {
		s.y[j] *= inv
	}
}

// renormSplit rescales x̂ to mass 1−γ and ŷ to mass γ — EMF*'s constraint
// set (Theorem 4).
func (s *state) renormSplit(gamma float64) {
	var sx, sy float64
	for _, v := range s.x {
		sx += v
	}
	for _, j := range s.poison {
		sy += s.y[j]
	}
	if sx > 0 {
		scale := (1 - gamma) / sx
		for k := range s.x {
			s.x[k] *= scale
		}
	}
	if sy > 0 {
		scale := gamma / sy
		for _, j := range s.poison {
			s.y[j] *= scale
		}
	} else if len(s.poison) > 0 {
		spread := gamma / float64(len(s.poison))
		for _, j := range s.poison {
			s.y[j] = spread
		}
	}
}

// Run executes EMF (Algorithm 2): it reconstructs the frequency histogram
// F = {x̂, ŷ} of normal values over the input buckets and poison values
// over the given poison output buckets, from the observed report counts.
func Run(m *Matrix, counts []float64, poison []int, cfg Config) (*Result, error) {
	mstep := func(s *state) { s.mStepEMF() }
	return solve(m, counts, poison, cfg, mstep, (*state).renormJoint)
}

// RunConstrained executes EMF* (Algorithm 4): EM with the M-step of
// Theorem 4, imposing Σx̂ = 1−γ and Σŷ = γ.
func RunConstrained(m *Matrix, counts []float64, poison []int, gamma float64, cfg Config) (*Result, error) {
	if gamma < 0 || gamma > 1 {
		return nil, errors.New("emf: gamma must lie in [0,1]")
	}
	mstep := func(s *state) { s.mStepConstrained(gamma) }
	renorm := func(s *state) { s.renormSplit(gamma) }
	return solve(m, counts, poison, cfg, mstep, renorm)
}
