package emf

import "math"

// bandRep is the structured representation of a transform matrix whose
// columns are "two-level": a constant low tail plus a contiguous
// high-probability band (the shape PM, SW and k-RR all produce — see
// pm.Mechanism.Band). Entry (i,k) decomposes as base[k] + delta(i,k) where
// delta is nonzero only inside a contiguous per-row column window
// [lo,hi).
//
// Two refinements stack on top of that decomposition:
//
//  1. For mechanisms that perturb by sampling uniformly from a band, the
//     interior of every window carries one constant delta0 — only the two
//     window-end buckets, where the band partially overlaps a bucket, differ
//     (a full-overlap bucket integrates to the same value in every row).
//     When that holds ("regular"), the E-step needs only prefix sums: each
//     denominator is O(1) — two edge terms plus delta0·(X[hi−1]−X[lo+1]) —
//     and the Px accumulation becomes a difference array, making one EM
//     iteration O(D + D′) regardless of band width.
//  2. Otherwise the deltas are kept as a ragged row-major array ("vals")
//     and the E-step is O(band width) per row — still far below the dense
//     O(D) when the band is narrow.
type bandRep struct {
	base []float64 // per-column tail value, len D
	lo   []int     // first band column of each row, len DPrime
	hi   []int     // one past the last band column, len DPrime (hi==lo: empty)

	// Regular (constant-interior) representation.
	regular        bool
	delta0         float64   // interior delta shared by all rows
	edgeLo, edgeHi []float64 // deltas at columns lo and hi−1 (0 for empty rows)

	// Ragged fallback: deltas for row i are vals[off[i]:off[i+1]].
	off  []int
	vals []float64
}

// bandSnapTol is the relative tolerance under which an entry is considered
// part of a column's constant tail (or a window interior entry equal to
// delta0). Matching entries are snapped to the exact shared value so the
// structured representation reconstructs P without error; the snap itself
// perturbs an entry by at most this relative amount.
const bandSnapTol = 1e-12

// bandMaxFill is the band-volume fraction above which the ragged banded
// representation stops paying for itself and the dense path is kept (the
// regular representation is O(1) per row and has no such threshold).
const bandMaxFill = 0.85

// detectBands attempts the two-level decomposition of m.P, snapping
// tail-level (and, when regular, interior-level) entries to their exact
// shared values. On success m.band is set and the banded E-step becomes
// available; on failure m.band stays nil and the dense path is used.
func (m *Matrix) detectBands() {
	d, dp := m.D, m.DPrime
	base := make([]float64, d)
	for k := 0; k < d; k++ {
		min := math.Inf(1)
		for i := 0; i < dp; i++ {
			if v := m.P[i*d+k]; v < min {
				min = v
			}
		}
		base[k] = min
		// Snap tail entries to the exact baseline so delta == 0 outside the
		// band even when numerical integration left last-ulp jitter.
		snap := min + min*bandSnapTol
		for i := 0; i < dp; i++ {
			if m.P[i*d+k] <= snap {
				m.P[i*d+k] = min
			}
		}
	}
	lo := make([]int, dp)
	hi := make([]int, dp)
	volume := 0
	for i := 0; i < dp; i++ {
		row := m.P[i*d : i*d+d]
		first, last := -1, -1
		for k, v := range row {
			if v != base[k] {
				if first < 0 {
					first = k
				}
				last = k
			}
		}
		if first < 0 {
			first, last = 0, -1 // empty band row
		}
		lo[i], hi[i] = first, last+1
		volume += last - first + 1
	}
	b := &bandRep{base: base, lo: lo, hi: hi}

	// Try the regular (constant-interior) representation first: pick the
	// interior delta from the first wide-enough row, then verify every
	// interior entry matches it within bandSnapTol.
	delta0 := 0.0
	for i := 0; i < dp && delta0 == 0; i++ {
		if hi[i]-lo[i] >= 3 {
			mid := (lo[i] + hi[i]) / 2
			delta0 = m.P[i*d+mid] - base[mid]
		}
	}
	regular := true
	for i := 0; i < dp && regular; i++ {
		for k := lo[i] + 1; k < hi[i]-1; k++ {
			delta := m.P[i*d+k] - base[k]
			if math.Abs(delta-delta0) > bandSnapTol*delta0 {
				regular = false
				break
			}
		}
	}
	if regular {
		b.regular = true
		b.delta0 = delta0
		b.edgeLo = make([]float64, dp)
		b.edgeHi = make([]float64, dp)
		for i := 0; i < dp; i++ {
			if hi[i] > lo[i] {
				b.edgeLo[i] = m.P[i*d+lo[i]] - base[lo[i]]
				if hi[i]-lo[i] > 1 {
					b.edgeHi[i] = m.P[i*d+hi[i]-1] - base[hi[i]-1]
				}
			}
			// Snap interior entries so the dense path sees exactly the
			// values the structured path reconstructs.
			for k := lo[i] + 1; k < hi[i]-1; k++ {
				m.P[i*d+k] = base[k] + delta0
			}
		}
		m.band = b
		return
	}

	// Ragged fallback, worthwhile only while the band is actually sparse.
	if float64(volume) > bandMaxFill*float64(d*dp) {
		return
	}
	b.off = make([]int, dp+1)
	b.vals = make([]float64, 0, volume)
	for i := 0; i < dp; i++ {
		row := m.P[i*d : i*d+d]
		b.off[i+1] = b.off[i] + hi[i] - lo[i]
		for k := lo[i]; k < hi[i]; k++ {
			b.vals = append(b.vals, row[k]-base[k])
		}
	}
	m.band = b
}

// Banded reports whether the matrix carries the structured band
// representation (and the E-step will use the O(band) fast path).
func (m *Matrix) Banded() bool { return m.band != nil }

// BandRegular reports whether the band interior is constant, enabling the
// O(1)-per-row prefix-sum E-step.
func (m *Matrix) BandRegular() bool { return m.band != nil && m.band.regular }

// fastLog is a table-accelerated natural logarithm for strictly positive,
// finite, normal inputs (the E-step clamps its denominators to ≥1e-300).
// The mantissa's top logTabBits select a precomputed (1/m₀, ln m₀) pair,
// leaving a residual r = m/m₀ − 1 with |r| ≤ 2⁻⁹ that a short log1p
// polynomial absorbs; the truncation error is below 1e-14 absolute, far
// inside the EM termination tolerance (≥0.01·e^ε) the log-likelihood
// feeds. Unlike math.Log (and the atanh reduction) there is no division on
// the hot path, and the 4KB table stays L1-resident; it measures ~3×
// faster, which matters because the ll pass runs once per output bucket
// per EM iteration.
const logTabBits = 8

var logTab [1 << logTabBits]struct{ inv, log float64 }

func init() {
	for i := range logTab {
		m0 := 1 + (float64(i)+0.5)/float64(1<<logTabBits) // bin midpoint in [1,2)
		logTab[i].inv = 1 / m0
		logTab[i].log = math.Log(m0)
	}
}

const ln2 = 6.93147180559945286227e-01

// NOTE: the E-step loops in emf.go inline this body by hand (it exceeds
// the compiler's inline budget and the call overhead is measurable there);
// keep the copies in eStepDense/eStepBanded in sync with any change here.
//
//dapvet:hotpath
func fastLog(x float64) float64 {
	bits := math.Float64bits(x)
	e := int((bits>>52)&0x7ff) - 1023
	m := math.Float64frombits((bits & 0x000fffffffffffff) | 0x3ff0000000000000) // [1,2)
	t := &logTab[(bits>>(52-logTabBits))&(1<<logTabBits-1)]
	r := m*t.inv - 1
	// log1p(r) for |r| ≤ 2⁻⁹: the omitted r⁵/5 term is below 6e-15.
	p := r * (1 - r*(0.5-r*(1.0/3-r*0.25)))
	return float64(e)*ln2 + (t.log + p)
}
