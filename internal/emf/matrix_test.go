package emf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldp/krr"
	"repro/internal/ldp/pm"
	"repro/internal/ldp/sw"
)

func TestBuildNumericColumnsSumToOne(t *testing.T) {
	for _, eps := range []float64{0.125, 0.5, 2} {
		m, err := BuildNumeric(pm.MustNew(eps), 12, 40)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < m.D; k++ {
			var total float64
			for i := 0; i < m.DPrime; i++ {
				total += m.At(i, k)
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("eps=%v col %d sums to %v", eps, k, total)
			}
		}
	}
}

func TestBuildNumericSWColumnsSumToOne(t *testing.T) {
	m, err := BuildNumeric(sw.MustNew(1), 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m.D; k++ {
		var total float64
		for i := 0; i < m.DPrime; i++ {
			total += m.At(i, k)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("col %d sums to %v", k, total)
		}
	}
}

func TestBuildNumericValidation(t *testing.T) {
	if _, err := BuildNumeric(pm.MustNew(1), 0, 10); err == nil {
		t.Fatal("d=0 should fail")
	}
	if _, err := BuildNumeric(pm.MustNew(1), 10, 0); err == nil {
		t.Fatal("dprime=0 should fail")
	}
}

func TestMatrixGeometry(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	c := pm.MustNew(1).C()
	if math.Abs(m.OutLo+c) > 1e-12 || math.Abs(m.OutHi-c) > 1e-12 {
		t.Fatalf("output domain [%v,%v], want ±C", m.OutLo, m.OutHi)
	}
	if math.Abs(m.InWidth()-0.5) > 1e-12 {
		t.Fatalf("InWidth = %v", m.InWidth())
	}
	if math.Abs(m.InCenter(0)-(-0.75)) > 1e-12 {
		t.Fatalf("InCenter(0) = %v", m.InCenter(0))
	}
	if math.Abs(m.OutCenter(0)-(-c+c/10)) > 1e-9 {
		t.Fatalf("OutCenter(0) = %v", m.OutCenter(0))
	}
}

func TestOutBucketClamps(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	if got := m.OutBucket(-1e9); got != 0 {
		t.Fatalf("low clamp = %d", got)
	}
	if got := m.OutBucket(1e9); got != 9 {
		t.Fatalf("high clamp = %d", got)
	}
}

func TestCountsTotal(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	counts := m.Counts([]float64{-1, 0, 1, 2, -2})
	var total float64
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("counts total %v", total)
	}
}

func TestPoisonSidesPartition(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	left := m.PoisonLeft(0)
	right := m.PoisonRight(0)
	if len(left) != 5 || len(right) != 5 {
		t.Fatalf("halves: %d/%d, want 5/5", len(left), len(right))
	}
	seen := map[int]bool{}
	for _, j := range append(append([]int{}, left...), right...) {
		if seen[j] {
			t.Fatalf("bucket %d in both sides", j)
		}
		seen[j] = true
	}
	if len(seen) != 10 {
		t.Fatalf("partition covers %d buckets", len(seen))
	}
}

func TestPoisonRightShifted(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	// Shifting O′ to the right shrinks the right poison set (footnote 5).
	all := m.PoisonRight(m.OutLo)
	some := m.PoisonRight(m.OutHi / 2)
	if len(some) >= len(all) {
		t.Fatalf("shifted set %d not smaller than %d", len(some), len(all))
	}
}

func TestBuildCategorical(t *testing.T) {
	mech := krr.MustNew(1, 6)
	m := BuildCategorical(mech)
	if m.D != 6 || m.DPrime != 6 {
		t.Fatalf("dims %dx%d", m.DPrime, m.D)
	}
	for from := 0; from < 6; from++ {
		var total float64
		for to := 0; to < 6; to++ {
			total += m.At(to, from)
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("col %d sums to %v", from, total)
		}
	}
	if m.At(2, 2) != mech.P() {
		t.Fatal("diagonal should be keep probability")
	}
}

func TestBucketCounts(t *testing.T) {
	d, dp := BucketCounts(1000000, 2.16)
	if dp != 1000 {
		t.Fatalf("dprime = %d, want 1000", dp)
	}
	c := 2.16
	if want := int(1000 / c); d != want {
		t.Fatalf("d = %d", d)
	}
	// Odd sqrt rounds down to even.
	_, dp2 := BucketCounts(10201, 2) // sqrt = 101
	if dp2%2 != 0 {
		t.Fatalf("dprime %d not even", dp2)
	}
	// Tiny n clamps to the minimum.
	d3, dp3 := BucketCounts(4, 1000)
	if dp3 < 8 || d3 < 1 {
		t.Fatalf("clamping failed: d=%d dprime=%d", d3, dp3)
	}
}

// Property: every matrix entry is a probability.
func TestMatrixEntriesAreProbabilities(t *testing.T) {
	f := func(epsRaw uint8) bool {
		eps := 0.05 + float64(epsRaw%40)/10
		m, err := BuildNumeric(pm.MustNew(eps), 6, 20)
		if err != nil {
			return false
		}
		for _, p := range m.P {
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatePoison(t *testing.T) {
	m, _ := BuildNumeric(pm.MustNew(1), 4, 10)
	if err := m.validatePoison([]int{0, 9}); err != nil {
		t.Fatalf("valid poison rejected: %v", err)
	}
	if err := m.validatePoison([]int{10}); err == nil {
		t.Fatal("out-of-range poison accepted")
	}
	if err := m.validatePoison([]int{3, 3}); err == nil {
		t.Fatal("duplicate poison accepted")
	}
}
