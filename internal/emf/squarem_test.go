package emf

import (
	"math"
	"testing"

	"repro/internal/ldp/krr"
	"repro/internal/ldp/pm"
	"repro/internal/ldp/sw"
	"repro/internal/rng"
)

// finalLogLik evaluates l(F) exactly at a result's parameters (the
// Result.LogLik field is the likelihood of the pre-M-step iterate, one
// map application behind the returned parameters).
func finalLogLik(t *testing.T, m *Matrix, counts []float64, res *Result) float64 {
	t.Helper()
	s, _, err := newState(m, counts, res.Poison, Config{Init: res})
	if err != nil {
		t.Fatal(err)
	}
	defer s.release()
	ll := s.eStep(false)
	return ll
}

// squaremCases builds the equivalence matrix: PM at several budgets with
// right-half poison, both plain-EMF and constrained modes.
func squaremCases(t *testing.T) []*scenario {
	t.Helper()
	var cases []*scenario
	for i, eps := range []float64{0.125, 0.5, 2} {
		r := rng.New(uint64(41 + i))
		cases = append(cases, makeScenario(t, r, eps, 30000, 0.25, -1, 0, 0.5, 1))
	}
	return cases
}

// The tentpole equivalence: the accelerated solver reaches the same fixed
// point as the plain loop within Tol-scaled bounds, in no more (and
// usually far fewer) iterations, without ever finishing at a lower
// log-likelihood.
func TestSQUAREMMatchesPlainFixedPoint(t *testing.T) {
	for _, sc := range squaremCases(t) {
		tol := PaperTol(sc.mech.Epsilon())
		cfg := Config{Tol: tol, MaxIter: 2000}
		poison := sc.matrix.PoisonRight(0)
		for name, run := range map[string]func(Config) (*Result, error){
			"emf": func(c Config) (*Result, error) { return Run(sc.matrix, sc.counts, poison, c) },
			"emf*": func(c Config) (*Result, error) {
				return RunConstrained(sc.matrix, sc.counts, poison, 0.25, c)
			},
		} {
			plain, err := run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			accCfg := cfg
			accCfg.Accelerate = true
			acc, err := run(accCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !plain.Converged || !acc.Converged {
				t.Fatalf("%s eps=%v: plain conv=%v acc conv=%v", name, sc.mech.Epsilon(), plain.Converged, acc.Converged)
			}
			if acc.Iters > plain.Iters {
				t.Errorf("%s eps=%v: accelerated used %d iters, plain %d", name, sc.mech.Epsilon(), acc.Iters, plain.Iters)
			}
			llP := finalLogLik(t, sc.matrix, sc.counts, plain)
			llA := finalLogLik(t, sc.matrix, sc.counts, acc)
			if llA < llP-(tol+2e-5*math.Abs(llP)) {
				t.Errorf("%s eps=%v: accelerated log-lik %v below plain %v − tol", name, sc.mech.Epsilon(), llA, llP)
			}
			// Both stopped when one more map application moved l(F) by < Tol;
			// the iterates then agree within a Tol-scaled neighbourhood of the
			// shared fixed point. γ̂ aggregates ŷ, the quantity the protocol
			// consumes; the per-bucket bound is looser because at small ε the
			// basin is flat (ill-conditioned deconvolution) and the Tol rule
			// legitimately stops at different points of it.
			if diff := math.Abs(acc.Gamma() - plain.Gamma()); diff > 0.02 {
				t.Errorf("%s eps=%v: γ̂ accelerated %v vs plain %v", name, sc.mech.Epsilon(), acc.Gamma(), plain.Gamma())
			}
			for k := range plain.X {
				if diff := math.Abs(acc.X[k] - plain.X[k]); diff > 0.06 {
					t.Fatalf("%s eps=%v: x̂[%d] accelerated %v vs plain %v", name, sc.mech.Epsilon(), k, acc.X[k], plain.X[k])
				}
			}
		}
	}
}

// SQUAREM must also compose with EMS smoothing (the SW pipeline): the
// smoothed map's fixed point is reached with no worse log-likelihood.
func TestSQUAREMWithSmoothing(t *testing.T) {
	r := rng.New(7)
	mech := sw.MustNew(0.5)
	const n = 20000
	reports := make([]float64, n)
	for i := range reports {
		reports[i] = mech.Perturb(r, rng.Beta(r, 2, 5))
	}
	d, dp := BucketCounts(n, mech.OutputDomain().Width())
	m, err := BuildNumeric(mech, d, dp)
	if err != nil {
		t.Fatal(err)
	}
	counts := m.Counts(reports)
	cfg := Config{Smooth: true, MaxIter: 2000}
	plain, err := RunConstrained(m, counts, nil, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accCfg := cfg
	accCfg.Accelerate = true
	acc, err := RunConstrained(m, counts, nil, 0, accCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Converged {
		t.Fatal("accelerated smoothed run did not converge")
	}
	for k := range plain.X {
		if diff := math.Abs(acc.X[k] - plain.X[k]); diff > 0.02 {
			t.Fatalf("x̂[%d]: accelerated %v vs plain %v", k, acc.X[k], plain.X[k])
		}
	}
}

// The quality gate of the ISSUE: across mechanisms and budgets the
// accelerated solver never degrades the final log-likelihood against the
// plain fixed point (beyond the Tol the termination rule itself allows).
func TestSQUAREMNeverDegradesLogLik(t *testing.T) {
	check := func(name string, m *Matrix, counts []float64, poison []int, gamma float64, cfg Config) {
		t.Helper()
		var plain, acc *Result
		var err error
		if gamma >= 0 {
			plain, err = RunConstrained(m, counts, poison, gamma, cfg)
		} else {
			plain, err = Run(m, counts, poison, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		cfg.Accelerate = true
		if gamma >= 0 {
			acc, err = RunConstrained(m, counts, poison, gamma, cfg)
		} else {
			acc, err = Run(m, counts, poison, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		llP := finalLogLik(t, m, counts, plain)
		llA := finalLogLik(t, m, counts, acc)
		// The Tol rule stops wherever one map application moves l(F) by less
		// than Tol, which in a flat basin is location-dependent: allow the
		// stopping points to differ by Tol plus a per-report-negligible
		// relative slack (2e-5 nats per unit of |l|).
		margin := cfg.tol() + 2e-5*math.Abs(llP)
		if llA < llP-margin {
			t.Errorf("%s: accelerated final log-lik %v below plain %v − %v", name, llA, llP, margin)
		}
	}

	// PM, plain EMF and EMF*.
	for i, eps := range []float64{0.0625, 0.25, 1, 2} {
		r := rng.New(uint64(61 + i))
		sc := makeScenario(t, r, eps, 20000, 0.25, -0.8, 0.2, 0.5, 1)
		poison := sc.matrix.PoisonRight(0)
		cfg := Config{Tol: PaperTol(eps), MaxIter: 2000}
		check("pm-emf", sc.matrix, sc.counts, poison, -1, cfg)
		check("pm-emf*", sc.matrix, sc.counts, poison, 0.25, cfg)
	}
	// k-RR categorical deconvolution.
	r := rng.New(77)
	kmech := krr.MustNew(1, 8)
	km := BuildCategorical(kmech)
	kcounts := make([]float64, 8)
	for i := 0; i < 40000; i++ {
		kcounts[kmech.PerturbCat(r, r.IntN(8)%5)]++
	}
	check("krr", km, kcounts, []int{7}, 0.1, Config{Tol: PaperTol(1), MaxIter: 2000})
}

// Warm starts: seeding a run from its own fixed point converges almost
// immediately to the same fit; a mismatched Init is ignored.
func TestWarmStartConvergence(t *testing.T) {
	r := rng.New(5)
	sc := makeScenario(t, r, 0.5, 30000, 0.25, -1, 0, 0.5, 1)
	poison := sc.matrix.PoisonRight(0)
	cfg := Config{Tol: PaperTol(0.5), MaxIter: 2000, Accelerate: true}
	cold, err := Run(sc.matrix, sc.counts, poison, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wCfg := cfg
	wCfg.Init = cold
	warm, err := Run(sc.matrix, sc.counts, poison, wCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm {
		t.Fatal("warm start not applied")
	}
	if warm.Iters >= cold.Iters {
		t.Fatalf("warm start did not shorten the run: %d vs %d iters", warm.Iters, cold.Iters)
	}
	for k := range cold.X {
		if diff := math.Abs(warm.X[k] - cold.X[k]); diff > 0.01 {
			t.Fatalf("x̂[%d]: warm %v vs cold %v", k, warm.X[k], cold.X[k])
		}
	}
	if diff := math.Abs(warm.Gamma() - cold.Gamma()); diff > 0.01 {
		t.Fatalf("γ̂: warm %v vs cold %v", warm.Gamma(), cold.Gamma())
	}

	// Mismatched layout: the warm start must be ignored, not crash.
	bad := &Result{X: []float64{1}, Y: []float64{1}}
	mCfg := cfg
	mCfg.Init = bad
	res, err := Run(sc.matrix, sc.counts, poison, mCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm {
		t.Fatal("mismatched Init reported as warm start")
	}
	if diff := math.Abs(res.Gamma() - cold.Gamma()); diff > 1e-12 {
		t.Fatal("mismatched Init changed the cold trajectory")
	}
}

// Warm starts must be able to move support the seeding fit had zeroed:
// the floor in warmStart keeps every bucket alive.
func TestWarmStartResurrectsZeroedMass(t *testing.T) {
	r := rng.New(6)
	sc := makeScenario(t, r, 1, 20000, 0.2, -1, 1, 0.5, 1)
	poison := sc.matrix.PoisonRight(0)
	// Both runs use the same tight Tol so they land on the same fixed point
	// rather than on loose Tol-rule stopping points.
	cfg := Config{Tol: 1e-8, MaxIter: 5000, Accelerate: true}
	cold, err := Run(sc.matrix, sc.counts, poison, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out half the input support in the seed.
	seed := &Result{
		X:      append([]float64(nil), cold.X...),
		Y:      append([]float64(nil), cold.Y...),
		Poison: cold.Poison,
	}
	for k := 0; k < len(seed.X)/2; k++ {
		seed.X[k] = 0
	}
	wCfg := cfg
	wCfg.Init = seed
	warm, err := Run(sc.matrix, sc.counts, poison, wCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The guarantee the floor provides is that no bucket stays pinned at
	// the floor: every zeroed bucket the data supports must regrow by
	// orders of magnitude. (Exact agreement with the cold fit is not
	// promised — the deconvolution has flat directions and EM is a local
	// optimizer, so a half-zeroed seed may settle elsewhere in the basin.)
	floor := 1e-3 / float64(sc.matrix.D+len(poison))
	for k := 0; k < len(seed.X)/2; k++ {
		if cold.X[k] > 0.01 && warm.X[k] < 50*floor {
			t.Fatalf("x̂[%d] stayed pinned at the floor: warm %v (floor %v), cold %v", k, warm.X[k], floor, cold.X[k])
		}
	}
	if diff := math.Abs(warm.Gamma() - cold.Gamma()); diff > 0.05 {
		t.Fatalf("γ̂ diverged after reseeding: warm %v vs cold %v", warm.Gamma(), cold.Gamma())
	}
}

// The per-iteration path of the solver must stay allocation-free in both
// modes: a run at 8× the iteration budget may not allocate more than a
// short run (the Result copies and closures are per-run constants).
func TestRunIterationsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guard applies to production builds")
	}
	r := rng.New(9)
	sc := makeScenario(t, r, 0.25, 20000, 0.25, -1, 0, 0.5, 1)
	poison := sc.matrix.PoisonRight(0)
	for _, accel := range []bool{false, true} {
		run := func(maxIter int) float64 {
			return testing.AllocsPerRun(20, func() {
				if _, err := Run(sc.matrix, sc.counts, poison, Config{MaxIter: maxIter, Tol: 1e-12, Accelerate: accel}); err != nil {
					t.Fatal(err)
				}
			})
		}
		run(4) // warm the state pool
		short, long := run(8), run(64)
		if long > short+1 {
			t.Errorf("accel=%v: iterations allocate: %v allocs at 8 iters vs %v at 64", accel, short, long)
		}
	}
}

func BenchmarkRun(b *testing.B) {
	mech, counts, poison := benchWorkload(b)
	cfg := Config{Tol: PaperTol(0.25), MaxIter: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(mech, counts, poison, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAccelerated(b *testing.B) {
	mech, counts, poison := benchWorkload(b)
	cfg := Config{Tol: PaperTol(0.25), MaxIter: 500, Accelerate: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(mech, counts, poison, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkload builds the PM deconvolution the Run benchmarks solve
// (kept modest so -benchtime 1x smoke runs stay fast).
func benchWorkload(b *testing.B) (*Matrix, []float64, []int) {
	b.Helper()
	r := rng.New(3)
	mech := pm.MustNew(0.25)
	const n = 20000
	reports := make([]float64, 0, n)
	for i := 0; i < n*3/4; i++ {
		reports = append(reports, mech.Perturb(r, rng.Uniform(r, -1, 0)))
	}
	c := mech.C()
	for i := n * 3 / 4; i < n; i++ {
		reports = append(reports, rng.Uniform(r, 0.5*c, c))
	}
	d, dp := BucketCounts(n, mech.C())
	m, err := BuildNumeric(mech, d, dp)
	if err != nil {
		b.Fatal(err)
	}
	return m, m.Counts(reports), m.PoisonRight(0)
}
