//go:build !race

package emf

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
