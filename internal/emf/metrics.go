package emf

import "repro/internal/metrics"

// Solver counters. Every EMF variant (EMF, EMF*, CEMF*, plain or
// SQUAREM-accelerated) funnels through solve, so one hook covers the
// whole solver surface. Counters only — per-run detail stays in Result.
var (
	metRuns = metrics.NewCounter("dap_emf_runs_total",
		"EM solver runs completed across all EMF variants.")
	metIters = metrics.NewCounter("dap_emf_iterations_total",
		"EM iterations performed, summed over runs.")
	metRestarts = metrics.NewCounter("dap_emf_restarts_total",
		"SQUAREM extrapolations rejected by the monotonicity safeguard (restarts).")
	metConvFail = metrics.NewCounter("dap_emf_convergence_failures_total",
		"EM runs that hit MaxIter without meeting the tolerance.")
	metWarm = metrics.NewCounter("dap_emf_warm_starts_total",
		"EM runs seeded from a previous solution (Config.Init warm starts).")
)

// recordRun feeds the solver counters from one finished run.
func recordRun(res *Result) {
	metRuns.Inc()
	metIters.Add(uint64(res.Iters))
	metRestarts.Add(uint64(res.Restarts))
	if !res.Converged {
		metConvFail.Inc()
	}
	if res.Warm {
		metWarm.Inc()
	}
}
