package emf

import (
	"sync"

	"repro/internal/stats"
)

// Side identifies the poisoned side of the perturbation domain relative to
// the pessimistic mean O′.
type Side int

// Poisoned side values.
const (
	Left Side = iota
	Right
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// SideProbe holds the outcome of Algorithm 3.
type SideProbe struct {
	Side  Side
	Left  *Result // EMF run with poison buckets on the left of O′
	Right *Result // EMF run with poison buckets on the right of O′
	VarL  float64 // Variance(x̂_L)
	VarR  float64 // Variance(x̂_R)
}

// Chosen returns the EMF result for the selected poisoned side.
func (p *SideProbe) Chosen() *Result {
	if p.Side == Left {
		return p.Left
	}
	return p.Right
}

// ProbeSide implements Algorithm 3: it runs EMF twice, once with the
// poison components on each side of oPrime, and selects the side whose
// reconstructed normal-user histogram x̂ has the smaller variance
// (Theorem 3: under the correct side x̂ tends to uniform).
func ProbeSide(m *Matrix, counts []float64, oPrime float64, cfg Config) (*SideProbe, error) {
	return ProbeSideInit(m, counts, oPrime, cfg, cfg.Init, cfg.Init)
}

// ProbeSideInit is ProbeSide with per-side warm starts: initL seeds the
// left-poison fit and initR the right-poison fit (either may be nil, or
// mismatched and ignored — see Config.Init). A previous probe's Left and
// Right results are the natural arguments when re-probing the same counts
// around a shifted O′, or the same layout across stream epochs.
func ProbeSideInit(m *Matrix, counts []float64, oPrime float64, cfg Config, initL, initR *Result) (*SideProbe, error) {
	cfgL, cfgR := cfg, cfg
	cfgL.Init, cfgR.Init = initL, initR
	// The two probes are independent EM fits over shared immutable inputs;
	// overlap them (the caller blocks on both, so the result is unchanged).
	var (
		left, right *Result
		errL, errR  error
		wg          sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		left, errL = Run(m, counts, m.PoisonLeft(oPrime), cfgL)
	}()
	right, errR = Run(m, counts, m.PoisonRight(oPrime), cfgR)
	wg.Wait()
	if errL != nil {
		return nil, errL
	}
	if errR != nil {
		return nil, errR
	}
	p := &SideProbe{
		Left:  left,
		Right: right,
		VarL:  stats.Variance(left.X),
		VarR:  stats.Variance(right.X),
	}
	if p.VarL < p.VarR {
		p.Side = Left
	} else {
		p.Side = Right
	}
	return p, nil
}

// ProbeCategories locates poisoned categories for the categorical (k-RR)
// extension of §V-D by applying Algorithm 3 recursively: the category set
// is split into halves, EMF is run with each half as the poison set, the
// half yielding the smaller Var(x̂) is selected, and the recursion descends
// while a child half keeps improving the variance. The returned set is the
// narrowest contiguous block of categories that minimizes Var(x̂); the
// accompanying result is the EMF run for that block.
func ProbeCategories(m *Matrix, counts []float64, cfg Config) ([]int, *Result, error) {
	all := make([]int, m.DPrime)
	for i := range all {
		all[i] = i
	}
	best, bestRes, err := probeHalves(m, counts, all, cfg)
	if err != nil {
		return nil, nil, err
	}
	bestVar := stats.Variance(bestRes.X)
	for len(best) > 1 {
		set, res, err := probeHalves(m, counts, best, cfg)
		if err != nil {
			return nil, nil, err
		}
		v := stats.Variance(res.X)
		if v >= bestVar {
			break
		}
		best, bestRes, bestVar = set, res, v
	}
	return best, bestRes, nil
}

// probeHalves runs EMF with each half of set as the poison set and
// returns the half with the smaller Var(x̂).
func probeHalves(m *Matrix, counts []float64, set []int, cfg Config) ([]int, *Result, error) {
	mid := len(set) / 2
	if mid == 0 {
		res, err := Run(m, counts, set, cfg)
		return set, res, err
	}
	lo, hi := set[:mid], set[mid:]
	resLo, err := Run(m, counts, lo, cfg)
	if err != nil {
		return nil, nil, err
	}
	resHi, err := Run(m, counts, hi, cfg)
	if err != nil {
		return nil, nil, err
	}
	if stats.Variance(resLo.X) < stats.Variance(resHi.X) {
		return lo, resLo, nil
	}
	return hi, resHi, nil
}
