// Package emf implements the Expectation-Maximization Filter machinery of
// the DAP paper: the transform matrix M (§IV-B, Fig. 2), the EMF algorithm
// (Algorithm 2), its post-processing variants EMF* (Algorithm 4) and CEMF*
// (Theorem 5), poisoned-side probing (Algorithm 3) and Byzantine feature
// extraction (§IV-C).
//
// The implementation generalizes the paper's "right half of the output
// domain" poison buckets to an arbitrary set of output-bucket indices.
// That single abstraction expresses side probing (left vs right half),
// O′-shifted poison ranges (footnote 5), CEMF* bucket suppression, and the
// categorical k-RR extension.
package emf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ldp"
)

// Matrix is the normal-user part of the paper's transform matrix M: a
// DPrime×D row-major matrix where entry (i,k) is the probability that a
// normal user whose value lies in input bucket k reports a value in output
// bucket i. The poison part of M is the identity on the poison bucket set
// (Byzantine users report values directly), so it is represented
// implicitly by the poison index set passed to the EM runs.
type Matrix struct {
	D      int // input buckets
	DPrime int // output buckets
	InLo   float64
	InHi   float64
	OutLo  float64
	OutHi  float64
	P      []float64 // DPrime × D, row-major
	// band is the optional two-level structured representation detected at
	// build time; nil keeps the dense E-step (see banded.go).
	band *bandRep
}

// At returns Pr[output bucket i | input bucket k].
func (m *Matrix) At(i, k int) float64 { return m.P[i*m.D+k] }

// InWidth returns the input bucket width.
func (m *Matrix) InWidth() float64 { return (m.InHi - m.InLo) / float64(m.D) }

// OutWidth returns the output bucket width.
func (m *Matrix) OutWidth() float64 { return (m.OutHi - m.OutLo) / float64(m.DPrime) }

// InCenter returns the midpoint of input bucket k (the paper's bucket
// representative for normal users).
func (m *Matrix) InCenter(k int) float64 {
	return m.InLo + (float64(k)+0.5)*m.InWidth()
}

// OutCenter returns the midpoint ν of output bucket i (the paper's bucket
// median for poison values, Eq. 11).
func (m *Matrix) OutCenter(i int) float64 {
	return m.OutLo + (float64(i)+0.5)*m.OutWidth()
}

// InCenters returns all input bucket midpoints.
func (m *Matrix) InCenters() []float64 {
	c := make([]float64, m.D)
	for k := range c {
		c[k] = m.InCenter(k)
	}
	return c
}

// OutBucket returns the output bucket index for a reported value,
// clamping out-of-domain reports into the boundary buckets.
func (m *Matrix) OutBucket(v float64) int {
	i := int(math.Floor((v - m.OutLo) / m.OutWidth()))
	if i < 0 {
		i = 0
	}
	if i >= m.DPrime {
		i = m.DPrime - 1
	}
	return i
}

// Counts histograms reports into the matrix's output buckets (the c_i of
// Algorithm 2). The bucket division is hoisted to one reciprocal so the
// per-report work is a single fused multiply (reports number in the
// millions per harness run).
func (m *Matrix) Counts(reports []float64) []float64 {
	c := make([]float64, m.DPrime)
	lo, inv, last := m.OutLo, 1/m.OutWidth(), m.DPrime-1
	for _, v := range reports {
		// v ≥ lo−ulp for in-domain reports, so truncation matches Floor;
		// the clamps keep out-of-domain reports in the boundary buckets.
		i := int((v - lo) * inv)
		if i < 0 {
			i = 0
		} else if i > last {
			i = last
		}
		c[i]++
	}
	return c
}

// BuildNumeric constructs the transform matrix for a numerical mechanism
// by integrating the mechanism's output density exactly over each output
// bucket, with each input bucket represented by its midpoint. Rows of the
// transpose sum to one: every input bucket's mass lands somewhere in the
// output domain.
func BuildNumeric(mech ldp.IntervalProber, d, dprime int) (*Matrix, error) {
	if d < 1 || dprime < 1 {
		return nil, errors.New("emf: bucket counts must be positive")
	}
	in := mech.InputDomain()
	out := mech.OutputDomain()
	m := &Matrix{
		D:      d,
		DPrime: dprime,
		InLo:   in.Lo,
		InHi:   in.Hi,
		OutLo:  out.Lo,
		OutHi:  out.Hi,
		P:      make([]float64, dprime*d),
	}
	ow := m.OutWidth()
	for k := 0; k < d; k++ {
		v := m.InCenter(k)
		for i := 0; i < dprime; i++ {
			a := out.Lo + float64(i)*ow
			m.P[i*d+k] = mech.IntervalProb(v, a, a+ow)
		}
	}
	m.detectBands()
	return m, nil
}

// BuildCategorical constructs the transform matrix for a categorical
// mechanism: a K×K matrix of transition probabilities. Output "bucket
// centers" are the category indices, which is sufficient because the
// categorical pipeline never computes a poison mean.
func BuildCategorical(mech ldp.Categorical) *Matrix {
	k := mech.K()
	m := &Matrix{
		D:      k,
		DPrime: k,
		InLo:   0,
		InHi:   float64(k),
		OutLo:  0,
		OutHi:  float64(k),
		P:      make([]float64, k*k),
	}
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			m.P[to*k+from] = mech.TransitionProb(from, to)
		}
	}
	m.detectBands()
	return m
}

// BucketCounts picks the paper's discretization for a collection of n
// reports under a mechanism with output bound ratio c = (OutHi−OutLo)/(InHi−InLo)·…;
// concretely the paper sets d′ = ⌊√n⌋ (rounded down to even) and
// d = ⌊d′(e^{ε/2}−1)/(e^{ε/2}+1)⌋ = ⌊d′/C⌋ for PM. The caller passes the
// mechanism's C (output half-width over input half-width); results are
// clamped to sane minima.
func BucketCounts(n int, c float64) (d, dprime int) {
	return InputBuckets(OutputBuckets(n), c), OutputBuckets(n)
}

// OutputBuckets is the paper's output resolution rule on its own:
// d′ = ⌊√n⌋ rounded down to even, floored at 8. Callers that fix d′ ahead
// of the data (the streaming engine sizes histograms from an expected
// volume) share the exact rounding rules of the batch path.
func OutputBuckets(n int) int {
	dprime := int(math.Sqrt(float64(n)))
	if dprime%2 == 1 {
		dprime--
	}
	if dprime < 8 {
		dprime = 8
	}
	return dprime
}

// InputBuckets derives the input bucket count d = ⌊d′/C⌋ for a chosen
// output bucket count d′, clamped to [1, d′] — the second half of
// BucketCounts, split out so callers that fix d′ up front (the streaming
// engine stores histograms at a tenant-configured resolution) share the
// exact rounding rules of the batch path.
func InputBuckets(dprime int, c float64) int {
	d := int(float64(dprime) / c)
	if d < 1 {
		d = 1
	}
	if d > dprime {
		d = dprime
	}
	return d
}

// PoisonRight returns the output-bucket indices whose centers lie on the
// right of oPrime — the poison component set when the poisoned side is
// Right (footnote 5 of the paper generalizes the right-half split to an
// arbitrary O′).
func (m *Matrix) PoisonRight(oPrime float64) []int {
	var idx []int
	for i := 0; i < m.DPrime; i++ {
		if m.OutCenter(i) > oPrime {
			idx = append(idx, i)
		}
	}
	return idx
}

// PoisonLeft returns the output-bucket indices whose centers lie on the
// left of oPrime.
func (m *Matrix) PoisonLeft(oPrime float64) []int {
	var idx []int
	for i := 0; i < m.DPrime; i++ {
		if m.OutCenter(i) < oPrime {
			idx = append(idx, i)
		}
	}
	return idx
}

func (m *Matrix) validatePoison(poison []int) error {
	seen := make(map[int]bool, len(poison))
	for _, j := range poison {
		if j < 0 || j >= m.DPrime {
			return fmt.Errorf("emf: poison bucket %d out of range [0,%d)", j, m.DPrime)
		}
		if seen[j] {
			return fmt.Errorf("emf: duplicate poison bucket %d", j)
		}
		seen[j] = true
	}
	return nil
}
