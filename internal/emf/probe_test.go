package emf

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/ldp/krr"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
)

func TestProbeSideRight(t *testing.T) {
	r := rng.New(1)
	sc := makeScenario(t, r, 0.25, 40000, 0.25, -1, 0.5, 0.5, 1)
	probe, err := ProbeSide(sc.matrix, sc.counts, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Side != Right {
		t.Fatalf("side = %v (VarL=%v VarR=%v), want right", probe.Side, probe.VarL, probe.VarR)
	}
	if probe.Chosen() != probe.Right {
		t.Fatal("Chosen should return the right-side result")
	}
}

func TestProbeSideLeft(t *testing.T) {
	r := rng.New(2)
	mech := pm.MustNew(0.25)
	d, dp := BucketCounts(40000, mech.C())
	m, err := BuildNumeric(mech, d, dp)
	if err != nil {
		t.Fatal(err)
	}
	c := mech.C()
	reports := make([]float64, 0, 40000)
	for i := 0; i < 30000; i++ {
		reports = append(reports, mech.Perturb(r, rng.Uniform(r, -0.5, 1)))
	}
	for i := 0; i < 10000; i++ {
		reports = append(reports, rng.Uniform(r, -c, -c/2))
	}
	probe, err := ProbeSide(m, m.Counts(reports), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Side != Left {
		t.Fatalf("side = %v (VarL=%v VarR=%v), want left", probe.Side, probe.VarL, probe.VarR)
	}
	if probe.Chosen() != probe.Left {
		t.Fatal("Chosen should return the left-side result")
	}
}

func TestSideString(t *testing.T) {
	if Left.String() != "left" || Right.String() != "right" {
		t.Fatal("Side.String broken")
	}
}

func TestExtractFeatures(t *testing.T) {
	r := rng.New(3)
	sc := makeScenario(t, r, 0.125, 50000, 0.25, -1, 0, 0.5, 1)
	probe, err := ProbeSide(sc.matrix, sc.counts, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := ExtractFeatures(sc.matrix, probe)
	if f.Side != Right {
		t.Fatalf("side = %v", f.Side)
	}
	if f.Gamma < 0.15 || f.Gamma > 0.35 {
		t.Fatalf("γ̂ = %v, want ~0.25", f.Gamma)
	}
	c := sc.mech.C()
	if f.PoisonMean < 0.5*c || f.PoisonMean > c {
		t.Fatalf("poison mean %v outside [C/2, C]", f.PoisonMean)
	}
	if len(f.Y) != sc.matrix.DPrime {
		t.Fatalf("Y length %d", len(f.Y))
	}
}

func TestProbeCategoriesFindsPoisonedCategory(t *testing.T) {
	r := rng.New(4)
	mech := krr.MustNew(0.5, 15)
	m := BuildCategorical(mech)
	cov := dataset.COVID19()
	records := cov.Sample(r, 30000)
	counts := make([]float64, 15)
	for _, rec := range records {
		counts[mech.PerturbCat(r, rec)]++
	}
	// 10k poison reports, all in category 10.
	counts[10] += 10000
	set, res, err := ProbeCategories(m, counts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range set {
		if j == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("poisoned category 10 not in probed set %v", set)
	}
	if len(set) > 8 {
		t.Fatalf("probe did not narrow: %v", set)
	}
	if res.Gamma() <= 0.05 {
		t.Fatalf("γ̂ = %v, want substantial", res.Gamma())
	}
}

func TestProbeCategoriesMultiplePoisoned(t *testing.T) {
	r := rng.New(5)
	mech := krr.MustNew(0.5, 15)
	m := BuildCategorical(mech)
	cov := dataset.COVID19()
	records := cov.Sample(r, 30000)
	counts := make([]float64, 15)
	for _, rec := range records {
		counts[mech.PerturbCat(r, rec)]++
	}
	for _, j := range []int{10, 11, 12} {
		counts[j] += 4000
	}
	set, _, err := ProbeCategories(m, counts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// At least one of the poisoned categories must be located; the CEMF*
	// suppression stage refines the exact membership afterwards.
	found := 0
	for _, j := range set {
		if j >= 10 && j <= 12 {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("probed set %v misses poisoned block 10-12", set)
	}
}
