package store

import (
	"time"

	"repro/internal/metrics"
)

// WAL and snapshot metrics. Counters and histograms update inline on the
// append/sync path (pre-bound handles, no allocation); the level gauges
// (segment count, WAL size, snapshot age, degraded flag) are derived from
// Health at scrape time via SyncMetrics, so the write path never pays for
// them. When several stores live in one process (tests), the most recent
// SyncMetrics caller wins the gauges — in production there is one store.
var (
	metAppends = metrics.NewCounter("dap_wal_appends_total",
		"WAL records appended durably (acked group-commit frames).")
	metAppendBytes = metrics.NewCounter("dap_wal_bytes_total",
		"Bytes written to the WAL by successful group commits.")
	metAppendFailures = metrics.NewCounter("dap_wal_append_failures_total",
		"WAL write or fsync failures that degraded the store (failed batches roll back and refund).")
	metBatchRecords = metrics.NewHistogram("dap_wal_group_commit_records",
		"Records coalesced per group-commit write.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	metFsync = metrics.NewHistogram("dap_wal_fsync_duration_seconds",
		"WAL fsync(2) latency.",
		[]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1})
	metSnapshots = metrics.NewCounter("dap_store_snapshots_total",
		"Snapshots written and atomically published.")

	metSegments = metrics.NewGauge("dap_wal_segments",
		"Live WAL segment files.")
	metWALBytes = metrics.NewGauge("dap_wal_size_bytes",
		"Total size of live WAL segments.")
	metSnapAge = metrics.NewGauge("dap_store_snapshot_age_seconds",
		"Seconds since this process wrote a snapshot; -1 when none yet.")
	metDegraded = metrics.NewGauge("dap_store_degraded",
		"1 when the store is degraded (last append or sync failed), else 0.")
)

// SyncMetrics refreshes the store-level gauges from current Health. The
// /metrics handler calls it once per scrape.
func (s *Store) SyncMetrics() {
	h := s.Health()
	metSegments.Set(float64(h.Segments))
	metWALBytes.Set(float64(h.WALBytes))
	if h.LastSnapshot.IsZero() {
		metSnapAge.Set(-1)
	} else {
		metSnapAge.Set(time.Since(h.LastSnapshot).Seconds())
	}
	metDegraded.SetBool(!h.Healthy)
}

// observeFsync records one fsync latency.
func observeFsync(start time.Time) {
	metFsync.Observe(time.Since(start).Seconds())
}
