// Package store is the durability layer under the streaming collector: an
// append-only write-ahead log of budget charges, report batches and epoch
// rotations, plus periodic checksummed snapshots of per-tenant state
// (sealed epoch histograms, epoch clock, accountant spend, user bindings
// and the task spec). Together they make a collector restart — crash,
// kill -9 or rolling deploy — a replay instead of a privacy-budget reset:
// recovery loads the newest intact snapshot and replays the WAL tail over
// it, so ε spend is monotone across any crash point and recovered epoch
// state matches an uninterrupted run.
//
// Durability model: every accepted record is written to the kernel (one
// write(2)) before the request is acknowledged, so process death never
// loses acked state; the configurable fsync policy (SyncAlways,
// SyncInterval, SyncOS) chooses how much acked state a whole-machine
// power loss may cost. Torn or corrupt WAL tails are detected by
// per-record CRCs and truncated on recovery; snapshots are written to a
// temp file and atomically renamed, and recovery falls back to the
// previous snapshot when the newest fails verification.
//
// Fault injection for tests lives in Flaky, an FS wrapper that injects
// write errors, torn writes and latency under the real store logic.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy int

// Fsync policies. All policies write every record to the kernel before
// the append returns; they differ only in when fsync(2) runs.
const (
	// SyncInterval (the default) fsyncs the WAL on a background timer
	// (Options.SyncEvery). A machine crash can lose up to one interval of
	// acked records; a process crash loses nothing.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append — no acked record is ever
	// lost, at a large throughput cost.
	SyncAlways
	// SyncOS never fsyncs explicitly; the OS flushes on its own schedule.
	SyncOS
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOS:
		return "os"
	}
	return "interval"
}

// ParseSyncPolicy parses a policy name: "interval", "always", "os"
// (alias "never").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "os", "never":
		return SyncOS, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q", s)
}

// Options configures a store.
type Options struct {
	// FS is the filesystem; nil selects the real one. Tests wrap it in
	// Flaky to inject faults.
	FS FS
	// Sync is the WAL fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// MaxSegmentBytes rolls the WAL to a new segment beyond this size
	// (default 4MB).
	MaxSegmentBytes int64
	// KeepSnapshots is how many verified snapshots to retain (default 2:
	// the current one plus one fallback).
	KeepSnapshots int
}

// segment is one WAL file.
type segment struct {
	firstLSN uint64
	path     string
	size     int64
}

// walBatch is one group-commit unit: frames from concurrent appends that
// land on disk with a single write syscall. Appenders enqueue their frame
// and wait; the first of them to find no flush in flight becomes the
// leader and writes the whole batch.
type walBatch struct {
	buf     []byte
	n       int // records framed onto the batch (for metrics)
	flushed bool
	err     error
}

// Store is a durable WAL + snapshot store rooted at one directory. It is
// safe for concurrent use; appends group-commit — concurrent appends
// coalesce into one write syscall, and no append returns before its own
// frame reached the kernel.
type Store struct {
	dir  string
	fs   FS
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond // flush/roll coordination, tied to mu
	loaded    bool
	closed    bool
	f         File // current segment, nil after a write failure (next append rolls)
	curSize   int64
	nextLSN   uint64
	segs      []segment
	scratch   [][]byte // batch buffers recycled across batches (≥2 so a batch opening mid-flush reuses too)
	pendBatch *walBatch
	flushing  bool
	lastErr   error

	snapMu   sync.Mutex // serializes snapshot writes and GC
	snapLSN  uint64
	snapTime time.Time

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open prepares a store over dir (created if missing). Call Load before
// appending: it scans existing state, truncates any torn WAL tail and
// positions the log for new appends.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = OS{}
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 4 << 20
	}
	if opts.KeepSnapshots <= 0 {
		opts.KeepSnapshots = 2
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: opts.FS, opts: opts, nextLSN: 1}
	s.cond = sync.NewCond(&s.mu)
	if opts.Sync == SyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop(s.stopSync)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func segPath(dir string, firstLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.log", firstLSN))
}

func snapPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", lsn))
}

// Recovery is what Load found on disk: the newest verifiable snapshot
// (nil when none) and every intact WAL record, in LSN order. Torn
// reports whether a torn or corrupt record was found and truncated;
// Warnings carries human-readable notes (corrupt snapshots skipped,
// segments dropped).
type Recovery struct {
	// Snapshot is the newest snapshot that verified, nil if none.
	Snapshot *Snapshot
	// Records are the intact WAL records, LSN ascending.
	Records []Record
	// Torn reports whether a torn tail was truncated somewhere.
	Torn bool
	// Warnings describes anything skipped or repaired.
	Warnings []string
}

// Load scans the store directory: picks the newest snapshot that passes
// verification, reads every intact WAL record, truncates torn tails in
// place and opens the log for appending. It must be called exactly once,
// before any append.
func (s *Store) Load() (*Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loaded {
		return nil, errors.New("store: Load called twice")
	}
	if s.closed {
		return nil, ErrClosed
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{}
	var snapLSNs []uint64
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			lsnStr := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
			lsn, err := strconv.ParseUint(lsnStr, 10, 64)
			if err != nil {
				rec.Warnings = append(rec.Warnings, "ignoring unparseable WAL name "+name)
				continue
			}
			s.segs = append(s.segs, segment{firstLSN: lsn, path: filepath.Join(s.dir, name)})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			lsnStr := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
			lsn, err := strconv.ParseUint(lsnStr, 10, 64)
			if err != nil {
				rec.Warnings = append(rec.Warnings, "ignoring unparseable snapshot name "+name)
				continue
			}
			snapLSNs = append(snapLSNs, lsn)
		}
	}
	// Newest verifiable snapshot wins; corrupt ones (bit rot, injected
	// faults) are skipped with a warning, falling back to the previous.
	for i := len(snapLSNs) - 1; i >= 0; i-- {
		snap, err := readSnapshotFile(s.fs, snapPath(s.dir, snapLSNs[i]))
		if err != nil {
			rec.Warnings = append(rec.Warnings,
				fmt.Sprintf("snapshot at LSN %d failed verification (%v); falling back", snapLSNs[i], err))
			continue
		}
		rec.Snapshot = snap
		s.snapLSN = snap.LSN
		break
	}
	// Replay every segment in order, truncating at the first torn or
	// corrupt record of each. Later segments still replay: their records
	// were intact on disk and applying them is strictly better than
	// discarding them.
	s.nextLSN = 1
	keep := s.segs[:0]
	for i := range s.segs {
		seg := &s.segs[i]
		good, next, torn, err := readSegment(s.fs, seg.path, func(r *Record) {
			rec.Records = append(rec.Records, *r)
		})
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", seg.path, err)
		}
		if torn {
			rec.Torn = true
			if good < int64(walHeaderSize) {
				// The header itself is torn: the segment carries nothing.
				// Remove the file entirely rather than truncating to zero —
				// a zero-byte entry left in segs would collide with the
				// next roll at the same firstLSN (duplicate segs entries
				// sharing one path), and gc would then unlink the live
				// segment out from under the log.
				rec.Warnings = append(rec.Warnings,
					fmt.Sprintf("removing %s: torn segment header", filepath.Base(seg.path)))
				if err := s.fs.Remove(seg.path); err != nil {
					return nil, fmt.Errorf("store: removing %s: %w", seg.path, err)
				}
				continue
			}
			rec.Warnings = append(rec.Warnings,
				fmt.Sprintf("truncated torn tail of %s at byte %d", filepath.Base(seg.path), good))
			if err := s.fs.Truncate(seg.path, good); err != nil {
				return nil, fmt.Errorf("store: truncating %s: %w", seg.path, err)
			}
		}
		seg.size = good
		if next > s.nextLSN {
			s.nextLSN = next
		}
		keep = append(keep, *seg)
	}
	s.segs = keep
	// Open the last segment for appending (or start fresh).
	if n := len(s.segs); n > 0 && s.segs[n-1].size >= int64(walHeaderSize) {
		f, err := s.fs.OpenAppend(s.segs[n-1].path)
		if err != nil {
			return nil, err
		}
		s.f = f
		s.curSize = s.segs[n-1].size
	}
	s.loaded = true
	return rec, nil
}

// roll starts a new segment at nextLSN. Caller holds s.mu.
func (s *Store) roll() error {
	if s.f != nil {
		if s.opts.Sync != SyncOS {
			_ = s.f.Sync()
		}
		_ = s.f.Close()
		s.f = nil
	}
	path := segPath(s.dir, s.nextLSN)
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), make([]byte, 8)...)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], s.nextLSN)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(path)
		return err
	}
	s.f = f
	s.curSize = int64(len(hdr))
	s.segs = append(s.segs, segment{firstLSN: s.nextLSN, path: path, size: s.curSize})
	return nil
}

// append frames one record, enqueues it on the open group-commit batch
// and returns its LSN once the batch is on disk.
func (s *Store) append(r *Record) (uint64, error) {
	rs := [1]*Record{r}
	return s.appendMany(rs[:])
}

// appendMany frames rs contiguously on the open group-commit batch and
// returns the first record's LSN once the batch is on disk — record i
// receives LSN first+i, and one write syscall covers them all (plus
// whatever concurrent appends coalesced into the same batch). On write
// failure the whole batch fails (callers refund), the current segment is
// abandoned (a later append rolls to a fresh one past any torn bytes) and
// the store reports unhealthy until a subsequent append succeeds.
func (s *Store) appendMany(rs []*Record) (uint64, error) {
	if len(rs) == 0 {
		return 0, errors.New("store: empty append batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.openBatch()
	if err != nil {
		return 0, err
	}
	for _, r := range rs {
		s.appendFrame(b, r)
	}
	return s.commitBatch(b, len(rs))
}

// openBatch ensures a usable segment and returns the open group-commit
// batch (creating one when none is pending). Caller holds s.mu. Rolling
// is only safe while no batch is open or in flight — pending frames
// target the current segment — so a dead segment (s.f == nil) waits for
// the flush to settle before rolling, and a size overrun during an open
// batch is tolerated instead of rolled mid-batch.
func (s *Store) openBatch() (*walBatch, error) {
	if !s.loaded {
		return nil, errors.New("store: append before Load")
	}
	if s.closed {
		return nil, ErrClosed
	}
	for s.f == nil && (s.pendBatch != nil || s.flushing) {
		s.cond.Wait()
		if s.closed {
			return nil, ErrClosed
		}
	}
	if s.f == nil || (s.curSize >= s.opts.MaxSegmentBytes && s.pendBatch == nil && !s.flushing) {
		if err := s.roll(); err != nil {
			s.fail(err)
			return nil, err
		}
	}
	b := s.pendBatch
	if b == nil {
		b = &walBatch{}
		if n := len(s.scratch); n > 0 { // adopt a recycled scratch buffer
			b.buf = s.scratch[n-1][:0]
			s.scratch = s.scratch[:n-1]
		}
		s.pendBatch = b
	}
	return b, nil
}

// appendFrame frames one record onto the batch. Caller holds s.mu.
func (s *Store) appendFrame(b *walBatch, r *Record) {
	off := len(b.buf)
	b.buf = append(b.buf, make([]byte, frameHeaderSize)...)
	b.buf = encodeRecord(b.buf, r)
	payload := b.buf[off+frameHeaderSize:]
	binary.LittleEndian.PutUint32(b.buf[off:off+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b.buf[off+4:off+8], crc32.Checksum(payload, castagnoli))
}

// commitBatch assigns n contiguous LSNs to the frames just enqueued and
// blocks until their batch is flushed, leading the flush when no one else
// is. Caller holds s.mu.
//
// Close does not abandon an in-flight flush: if a leader is already
// writing this batch, every waiter blocks for the real outcome — frames
// that land durably will replay on recovery, so reporting ErrClosed for
// them would make callers refund charges for records that survive (a
// double-apply after restart). Only a batch no leader ever picked up is
// discarded at close; its frames never reached the disk, so ErrClosed is
// then the truth.
func (s *Store) commitBatch(b *walBatch, n int) (uint64, error) {
	first := s.nextLSN
	s.nextLSN += uint64(n)
	b.n += n
	for !b.flushed {
		if s.closed {
			if s.pendBatch == b {
				// No leader will take this batch after close: discard it
				// so its records are consistently non-durable.
				s.pendBatch = nil
				b.flushed = true
				b.err = ErrClosed
				s.cond.Broadcast()
				break
			}
			// A leader is mid-flush on this batch; wait for its outcome.
			s.cond.Wait()
			continue
		}
		if !s.flushing && s.pendBatch == b {
			s.flushBatch(b)
		} else {
			s.cond.Wait()
		}
	}
	if b.err != nil {
		return 0, b.err
	}
	return first, nil
}

// flushBatch writes one batch with a single write syscall (plus fsync
// under SyncAlways). Caller holds s.mu; the lock is released for the
// write itself — the flushing flag keeps rolls and other flushes out, so
// s.f cannot change underneath the writer.
func (s *Store) flushBatch(b *walBatch) {
	s.pendBatch = nil
	f := s.f
	if f == nil {
		// The segment died under an earlier batch; fail this one too so
		// its callers can refund. The next append rolls a fresh segment.
		b.flushed = true
		if b.err = s.lastErr; b.err == nil {
			b.err = errors.New("store: wal segment unavailable")
		}
		s.cond.Broadcast()
		return
	}
	s.flushing = true
	s.mu.Unlock()
	_, err := f.Write(b.buf)
	if err == nil && s.opts.Sync == SyncAlways {
		start := time.Now()
		err = f.Sync()
		observeFsync(start)
	}
	s.mu.Lock()
	s.flushing = false
	if err != nil {
		// A partial write may have left CRC-intact prefix frames of the
		// failed batch on disk; recovery would replay them even though
		// every caller was told the batch failed (and refunded, and will
		// retry). Cut the tail back to the pre-batch size so the failed
		// batch leaves no trace — best effort: if the truncate fails too,
		// the segment is abandoned anyway and the risk is confined to the
		// torn tail recovery already handles.
		if n := len(s.segs); n > 0 {
			_ = s.fs.Truncate(s.segs[n-1].path, s.curSize)
		}
		// The segment is now suspect; abandon it so later appends land in
		// a fresh segment and recovery truncates only this one.
		s.fail(err)
	} else {
		s.curSize += int64(len(b.buf))
		s.segs[len(s.segs)-1].size = s.curSize
		s.lastErr = nil
		metAppends.Add(uint64(b.n))
		metAppendBytes.Add(uint64(len(b.buf)))
		metBatchRecords.Observe(float64(b.n))
	}
	b.flushed = true
	b.err = err
	if len(s.scratch) < 4 && cap(b.buf) > 0 {
		s.scratch = append(s.scratch, b.buf[:0]) // recycle for later batches
	}
	s.cond.Broadcast()
}

// fail records a store error and abandons the current segment. Caller
// holds s.mu.
func (s *Store) fail(err error) {
	s.lastErr = err
	metAppendFailures.Inc()
	slog.Warn("wal degraded: segment abandoned", "dir", s.dir, "err", err)
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
}

// AppendIngest logs one accepted report batch and returns its LSN.
func (s *Store) AppendIngest(tenant, user string, group int, values []float64) (uint64, error) {
	return s.append(&Record{Type: RecIngest, Tenant: tenant, User: user, Group: group, Values: values})
}

// IngestEntry is one report in a batched WAL append.
type IngestEntry struct {
	User   string
	Group  int
	Values []float64
}

// AppendIngestBatch logs many accepted reports contiguously with one
// write syscall and returns the first record's LSN (entry i gets LSN
// first+i). On failure none of the entries are durable — callers roll
// back all of them. On recovery the records replay individually; the
// batching is invisible in the log.
func (s *Store) AppendIngestBatch(tenant string, entries []IngestEntry) (uint64, error) {
	if len(entries) == 0 {
		return 0, errors.New("store: empty append batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.openBatch()
	if err != nil {
		return 0, err
	}
	for i := range entries {
		r := Record{
			Type: RecIngest, Tenant: tenant,
			User: entries[i].User, Group: entries[i].Group, Values: entries[i].Values,
		}
		s.appendFrame(b, &r)
	}
	return s.commitBatch(b, len(entries))
}

// AppendRotate logs an epoch seal (seq is the sealed-epoch counter after
// the rotation) and returns its LSN; the tenant's next live epoch starts
// at LSN+1.
func (s *Store) AppendRotate(tenant string, seq uint64) (uint64, error) {
	return s.append(&Record{Type: RecRotate, Tenant: tenant, Seq: seq})
}

// AppendJoin logs a user-group assignment and returns its LSN.
func (s *Store) AppendJoin(tenant, user string, group int) (uint64, error) {
	return s.append(&Record{Type: RecJoin, Tenant: tenant, User: user, Group: group})
}

// AppendTenantCreate logs a tenant registration with its task-spec JSON
// and returns its LSN.
func (s *Store) AppendTenantCreate(tenant string, spec []byte) (uint64, error) {
	return s.append(&Record{Type: RecTenantCreate, Tenant: tenant, Spec: spec})
}

// AppendTenantDelete logs a tenant deletion and returns its LSN.
func (s *Store) AppendTenantDelete(tenant string) (uint64, error) {
	return s.append(&Record{Type: RecTenantDelete, Tenant: tenant})
}

// AppendMergeDelta logs one node's sealed-epoch delta accepted by a
// coordinator and returns its LSN. frame is the raw CRC-sealed delta
// frame exactly as received; replay re-verifies and re-merges it, so a
// recovered coordinator reconstructs in-flight epochs bit-identically.
func (s *Store) AppendMergeDelta(tenant, node string, epoch uint64, frame []byte) (uint64, error) {
	return s.append(&Record{Type: RecMergeDelta, Tenant: tenant, User: node, Seq: epoch, Spec: frame})
}

// NextLSN returns the LSN the next append will receive. Reading it while
// holding the same locks that order a tenant's appends yields a
// consistent snapshot cut position.
func (s *Store) NextLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextLSN
}

// WriteSnapshot durably publishes snap: encode, write to a temp file,
// fsync, atomically rename into place, fsync the directory, then garbage-
// collect snapshots and WAL segments the new snapshot obsoletes.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !s.loaded {
		s.mu.Unlock()
		return errors.New("store: snapshot before Load")
	}
	s.mu.Unlock()
	b := encodeSnapshot(snap)
	final := snapPath(s.dir, snap.LSN)
	tmp := final + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	s.mu.Lock()
	s.snapLSN = snap.LSN
	s.snapTime = time.Now()
	s.mu.Unlock()
	metSnapshots.Inc()
	slog.Debug("snapshot published", "dir", s.dir, "lsn", snap.LSN, "bytes", len(b))
	s.gc(snap)
	return nil
}

// gc removes snapshots beyond the retention count and WAL segments no
// surviving snapshot needs. Caller holds s.snapMu.
func (s *Store) gc(latest *Snapshot) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var snaps []string
	for _, name := range names {
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			snaps = append(snaps, name)
		}
	}
	for i := 0; i+s.opts.KeepSnapshots < len(snaps); i++ {
		_ = s.fs.Remove(filepath.Join(s.dir, snaps[i]))
	}
	// A segment is garbage when the *next* segment already starts at or
	// before the oldest LSN the latest snapshot replays from — then every
	// record the snapshot needs lives in later segments.
	minNeed := latest.minStartLSN()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.segs) > 1 && s.segs[1].firstLSN <= minNeed {
		_ = s.fs.Remove(s.segs[0].path)
		s.segs = s.segs[1:]
	}
}

// Health summarizes store state for monitoring.
type Health struct {
	// Healthy is false after an append or sync failure until a later
	// append succeeds.
	Healthy bool
	// LastErr is the most recent failure, empty when healthy.
	LastErr string
	// LSN is the next log sequence number.
	LSN uint64
	// Segments is the number of live WAL segments.
	Segments int
	// WALBytes is the total size of live WAL segments.
	WALBytes int64
	// SnapshotLSN is the cut position of the newest snapshot (0 = none).
	SnapshotLSN uint64
	// LastSnapshot is when the newest snapshot was written by this
	// process (zero when none yet — e.g. right after recovery).
	LastSnapshot time.Time
	// Dir is the store directory.
	Dir string
}

// Health reports current store health.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Healthy:      s.lastErr == nil && !s.closed,
		LSN:          s.nextLSN,
		Segments:     len(s.segs),
		SnapshotLSN:  s.snapLSN,
		LastSnapshot: s.snapTime,
		Dir:          s.dir,
	}
	if s.lastErr != nil {
		h.LastErr = s.lastErr.Error()
	}
	for i := range s.segs {
		h.WALBytes += s.segs[i].size
	}
	return h
}

// syncLoop is the SyncInterval background fsync.
func (s *Store) syncLoop(stop <-chan struct{}) {
	defer close(s.syncDone)
	tick := time.NewTicker(s.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.mu.Lock()
			if s.f != nil {
				start := time.Now()
				err := s.f.Sync()
				observeFsync(start)
				if err != nil {
					s.fail(err)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close stops the background fsync, flushes and closes the WAL. The
// store is unusable afterwards; appends blocked on an unflushed batch
// return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.stopSync
	s.stopSync = nil
	s.cond.Broadcast() // wake appenders so they observe closed
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.syncDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.flushing { // let an in-flight group commit finish cleanly
		s.cond.Wait()
	}
	var err error
	if s.f != nil {
		if s.opts.Sync != SyncOS {
			err = s.f.Sync()
		}
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}
