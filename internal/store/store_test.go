package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustLoad(t *testing.T, s *Store) *Recovery {
	t.Helper()
	rec, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// appendMix writes one of each record type and returns the records.
func appendMix(t *testing.T, s *Store) []Record {
	t.Helper()
	want := []Record{
		{Type: RecTenantCreate, Tenant: "a", Spec: []byte(`{"task":"mean"}`)},
		{Type: RecJoin, Tenant: "a", User: "u0", Group: 1},
		{Type: RecIngest, Tenant: "a", User: "u0", Group: 1, Values: []float64{0.25, -0.5, 1e-9}},
		{Type: RecRotate, Tenant: "a", Seq: 7},
		{Type: RecMergeDelta, Tenant: "a", User: "node-1", Seq: 7, Spec: []byte("DAPD\x01\x00raw-frame-bytes")},
		{Type: RecTenantDelete, Tenant: "a"},
	}
	for i := range want {
		r := want[i]
		var lsn uint64
		var err error
		switch r.Type {
		case RecTenantCreate:
			lsn, err = s.AppendTenantCreate(r.Tenant, r.Spec)
		case RecJoin:
			lsn, err = s.AppendJoin(r.Tenant, r.User, r.Group)
		case RecIngest:
			lsn, err = s.AppendIngest(r.Tenant, r.User, r.Group, r.Values)
		case RecRotate:
			lsn, err = s.AppendRotate(r.Tenant, r.Seq)
		case RecMergeDelta:
			lsn, err = s.AppendMergeDelta(r.Tenant, r.User, r.Seq, r.Spec)
		case RecTenantDelete:
			lsn, err = s.AppendTenantDelete(r.Tenant)
		}
		if err != nil {
			t.Fatal(err)
		}
		want[i].LSN = lsn
	}
	return want
}

func recordsEqual(a, b *Record) bool {
	if a.LSN != b.LSN || a.Type != b.Type || a.Tenant != b.Tenant ||
		a.User != b.User || a.Group != b.Group || a.Seq != b.Seq ||
		string(a.Spec) != string(b.Spec) || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: SyncOS})
	mustLoad(t, s)
	want := appendMix(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if rec.Torn {
		t.Fatalf("unexpected torn tail: %v", rec.Warnings)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !recordsEqual(&rec.Records[i], &want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, rec.Records[i], want[i])
		}
	}
	if got := s2.NextLSN(); got != want[len(want)-1].LSN+1 {
		t.Errorf("NextLSN = %d, want %d", got, want[len(want)-1].LSN+1)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: SyncOS})
	mustLoad(t, s)
	want := appendMix(t, s)
	s.Close()

	// Tear the last few bytes off the segment: the final record must be
	// dropped and the file truncated to the preceding intact record.
	seg := segPath(dir, 1)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if !rec.Torn {
		t.Fatal("torn tail not detected")
	}
	if len(rec.Records) != len(want)-1 {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want)-1)
	}
	// Appends continue after the truncation point and survive another
	// recovery.
	if _, err := s2.AppendRotate("a", 8); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTest(t, dir, Options{Sync: SyncOS})
	rec3 := mustLoad(t, s3)
	if rec3.Torn {
		t.Fatalf("tail torn after truncation+append: %v", rec3.Warnings)
	}
	last := rec3.Records[len(rec3.Records)-1]
	if last.Type != RecRotate || last.Seq != 8 {
		t.Fatalf("last record = %+v, want the post-truncation rotate", last)
	}
}

func TestWALCorruptMiddleRecordDropsOnlyIt(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: SyncOS, MaxSegmentBytes: 1})
	mustLoad(t, s)
	// Tiny MaxSegmentBytes: every record rolls into its own segment.
	want := appendMix(t, s)
	s.Close()

	// Corrupt a byte in the middle segment's payload; records in later
	// segments must still replay.
	names, _ := os.ReadDir(dir)
	var segs []string
	for _, e := range names {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) < 3 {
		t.Fatalf("expected one segment per record, got %d", len(segs))
	}
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if !rec.Torn {
		t.Fatal("corruption not detected")
	}
	if len(rec.Records) != len(want)-1 {
		t.Fatalf("recovered %d records, want %d (only the corrupt one dropped)", len(rec.Records), len(want)-1)
	}
	last := rec.Records[len(rec.Records)-1]
	if !recordsEqual(&last, &want[len(want)-1]) {
		t.Errorf("last record = %+v, want %+v", last, want[len(want)-1])
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: SyncOS, KeepSnapshots: 3})
	mustLoad(t, s)
	appendMix(t, s)
	snap1 := &Snapshot{LSN: 3, Tenants: []TenantSnap{{
		Name: "a", Spec: []byte(`{"task":"mean"}`), Seq: 1, StartLSN: 2, AcctLSN: 3, Joined: 4,
		Epochs: []EpochSnap{{
			Counts: [][]float64{{1, 2, 0}, {0, 5}},
			Sums:   []float64{0.5, -1.25},
			Ns:     []float64{3, 5},
		}},
		Spend: map[string]float64{"u0": 0.75, "u1": 1},
		Users: map[string]int{"u0": 0, "u1": 1},
	}}}
	if err := s.WriteSnapshot(snap1); err != nil {
		t.Fatal(err)
	}
	snap2 := &Snapshot{LSN: 5, Tenants: snap1.Tenants}
	if err := s.WriteSnapshot(snap2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Newest snapshot wins when intact.
	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if rec.Snapshot == nil || rec.Snapshot.LSN != 5 {
		t.Fatalf("recovered snapshot %+v, want LSN 5", rec.Snapshot)
	}
	ts := rec.Snapshot.Tenants[0]
	if ts.Name != "a" || ts.Joined != 4 || ts.Spend["u0"] != 0.75 || ts.Users["u1"] != 1 {
		t.Fatalf("tenant snap mismatch: %+v", ts)
	}
	if ts.Epochs[0].Counts[1][1] != 5 || ts.Epochs[0].Sums[1] != -1.25 {
		t.Fatalf("epoch snap mismatch: %+v", ts.Epochs[0])
	}
	s2.Close()

	// Corrupt the newest snapshot: recovery falls back to the previous.
	data, err := os.ReadFile(snapPath(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapPath(dir, 5), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := openTest(t, dir, Options{Sync: SyncOS})
	rec3 := mustLoad(t, s3)
	if rec3.Snapshot == nil || rec3.Snapshot.LSN != 3 {
		t.Fatalf("fallback snapshot %+v, want LSN 3", rec3.Snapshot)
	}
	if len(rec3.Warnings) == 0 {
		t.Error("expected a warning about the corrupt snapshot")
	}
}

func TestSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: SyncOS, MaxSegmentBytes: 64, KeepSnapshots: 2})
	mustLoad(t, s)
	for i := 0; i < 8; i++ {
		if _, err := s.AppendIngest("a", "u", 0, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Everything up to LSN 9 is sealed state: all segments but the live
	// one are garbage.
	for _, lsn := range []uint64{3, 6, 9} {
		if err := s.WriteSnapshot(&Snapshot{LSN: lsn, Tenants: []TenantSnap{{Name: "a", StartLSN: lsn}}}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range names {
		if strings.HasPrefix(e.Name(), "snap-") {
			snaps++
		}
		if strings.HasPrefix(e.Name(), "wal-") {
			segs++
		}
	}
	if snaps != 2 {
		t.Errorf("retained %d snapshots, want 2", snaps)
	}
	h := s.Health()
	if h.Segments != segs {
		t.Errorf("health says %d segments, dir has %d", h.Segments, segs)
	}
	if segs > 2 {
		t.Errorf("GC left %d segments, want ≤2", segs)
	}
	// Everything still loads after GC.
	s.Close()
	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if rec.Snapshot == nil || rec.Snapshot.LSN != 9 {
		t.Fatalf("post-GC snapshot %+v, want LSN 9", rec.Snapshot)
	}
}

func TestFlakyWriteErrorDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	flaky := NewFlaky(nil)
	s := openTest(t, dir, Options{Sync: SyncOS, FS: flaky})
	mustLoad(t, s)
	if _, err := s.AppendIngest("a", "u0", 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	flaky.FailWrites(1, false, false)
	if _, err := s.AppendIngest("a", "u1", 0, []float64{2}); err == nil {
		t.Fatal("injected write error not surfaced")
	}
	if h := s.Health(); h.Healthy || h.LastErr == "" {
		t.Fatalf("store should be unhealthy after injected error: %+v", h)
	}
	// The next append self-heals into a fresh segment.
	lsn, err := s.AppendIngest("a", "u2", 0, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); !h.Healthy {
		t.Fatalf("store should be healthy after successful append: %+v", h)
	}
	s.Close()

	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	var users []string
	for _, r := range rec.Records {
		users = append(users, r.User)
	}
	if len(rec.Records) != 2 || users[0] != "u0" || users[1] != "u2" {
		t.Fatalf("recovered users %v, want [u0 u2] (failed append absent)", users)
	}
	if rec.Records[1].LSN != lsn {
		t.Errorf("surviving record LSN %d, want %d", rec.Records[1].LSN, lsn)
	}
}

func TestFlakyTornWriteTruncates(t *testing.T) {
	dir := t.TempDir()
	flaky := NewFlaky(nil)
	s := openTest(t, dir, Options{Sync: SyncOS, FS: flaky})
	mustLoad(t, s)
	if _, err := s.AppendIngest("a", "u0", 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	flaky.FailWrites(1, true, false)
	if _, err := s.AppendIngest("a", "u1", 0, []float64{2}); err == nil {
		t.Fatal("torn write error not surfaced")
	}
	// Crash here: the store survived the failed write, so it already cut
	// the torn half-record off the segment — recovery finds a clean tail
	// and only the intact record.
	s.Close()
	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if rec.Torn {
		t.Fatalf("failed write's torn bytes not cleaned up at failure time: %v", rec.Warnings)
	}
	if len(rec.Records) != 1 || rec.Records[0].User != "u0" {
		t.Fatalf("recovered %+v, want only u0's record", rec.Records)
	}
}

// TestFailedBatchLeavesNoPartialFrames: a torn group-commit write can
// land a CRC-intact prefix of the batch's frames. Every caller of the
// batch was told it failed (and refunded), so recovery must not replay
// any of them — the store truncates the segment back to its pre-batch
// size when the write fails.
func TestFailedBatchLeavesNoPartialFrames(t *testing.T) {
	dir := t.TempDir()
	flaky := NewFlaky(nil)
	s := openTest(t, dir, Options{Sync: SyncOS, FS: flaky})
	mustLoad(t, s)
	if _, err := s.AppendIngest("a", "u0", 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// A three-frame batch whose write lands its first half: without the
	// pre-batch truncate, the leading frame survives CRC-intact and would
	// replay records the callers rolled back.
	flaky.FailWrites(1, true, false)
	entries := []IngestEntry{
		{User: "u1", Group: 0, Values: []float64{1, 2, 3}},
		{User: "u2", Group: 0, Values: []float64{4, 5, 6}},
		{User: "u3", Group: 0, Values: []float64{7, 8, 9}},
	}
	if _, err := s.AppendIngestBatch("a", entries); err == nil {
		t.Fatal("injected torn batch write not surfaced")
	}
	s.Close()
	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if rec.Torn {
		t.Fatalf("failed batch's torn bytes not cleaned up at failure time: %v", rec.Warnings)
	}
	if len(rec.Records) != 1 || rec.Records[0].User != "u0" {
		t.Fatalf("recovered %+v, want only u0's record (no frame of the failed batch)", rec.Records)
	}
}

// TestTornHeaderSegmentRemovedOnLoad: a segment whose header never fully
// landed (crash mid-roll) carries nothing and must be removed outright.
// Leaving a zero-byte entry in the segment list would collide with the
// next roll at the same firstLSN — two entries sharing one path — and
// snapshot GC would then unlink the ACTIVE segment's file, silently
// losing every later acked record.
func TestTornHeaderSegmentRemovedOnLoad(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Sync: SyncOS})
	mustLoad(t, s)
	appendMix(t, s)
	next := s.NextLSN()
	s.Close()
	// Crash mid-roll: the next segment's header is half-written.
	torn := segPath(dir, next)
	if err := os.WriteFile(torn, []byte(walMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if !rec.Torn {
		t.Fatal("torn segment header not detected")
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment not removed from disk (stat err %v)", err)
	}
	// The next append re-creates the same firstLSN path fresh; a snapshot
	// covering everything then garbage-collects old segments. Before the
	// fix the duplicate segs entries made this GC unlink the live segment.
	lsn, err := s2.AppendRotate("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != next {
		t.Fatalf("first post-recovery append got LSN %d, want %d", lsn, next)
	}
	snap := &Snapshot{LSN: s2.NextLSN(), Tenants: []TenantSnap{{Name: "a", StartLSN: s2.NextLSN()}}}
	if err := s2.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	after, err := s2.AppendRotate("a", 9)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Everything appended after the GC must survive the next recovery —
	// it does not if GC removed the active segment's file.
	s3 := openTest(t, dir, Options{Sync: SyncOS})
	rec3 := mustLoad(t, s3)
	if rec3.Torn {
		t.Fatalf("unexpected torn tail after GC: %v", rec3.Warnings)
	}
	found := false
	for _, r := range rec3.Records {
		if r.LSN == after && r.Type == RecRotate && r.Seq == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("record appended after GC lost (recovered %d records): live segment was unlinked", len(rec3.Records))
	}
}

// TestCloseWaitsForInflightFlush: waiters whose batch a leader is already
// writing at Close time must observe the flush's real outcome. Returning
// ErrClosed early would make callers refund charges for records that land
// durably and replay on recovery — a double-apply.
func TestCloseWaitsForInflightFlush(t *testing.T) {
	dir := t.TempDir()
	flaky := NewFlaky(nil)
	s := openTest(t, dir, Options{Sync: SyncOS, FS: flaky})
	mustLoad(t, s)
	if _, err := s.AppendIngest("a", "u0", 0, []float64{1}); err != nil {
		t.Fatal(err)
	}

	// Slow every write down, then line up: C leads a slow flush; A and B
	// enqueue onto the next batch while C is in flight; once C finishes,
	// one of A/B leads that batch's (slow) write and the other waits on
	// it. Close lands inside that second write. Flaky's write counter
	// (incremented before the injected latency) pins each phase: writes
	// so far are the segment header and u0's record, C is #3, the A/B
	// batch is #4.
	const lat = 300 * time.Millisecond
	waitWrites := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if w, _, _ := flaky.Stats(); w >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("write #%d never started", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	flaky.Latency(lat)
	errc := make(chan error, 3)
	go func() {
		_, err := s.AppendIngest("a", "uc", 0, []float64{2})
		errc <- err
	}()
	waitWrites(3) // C is mid-write for the next ~lat
	go func() {
		_, err := s.AppendIngest("a", "ua", 0, []float64{3})
		errc <- err
	}()
	go func() {
		_, err := s.AppendIngest("a", "ub", 0, []float64{4})
		errc <- err
	}()
	time.Sleep(lat / 4) // both enqueue on the pending batch while C sleeps
	waitWrites(4)       // the A/B batch's write began; it sleeps ~lat more
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := <-errc; err != nil {
			t.Errorf("append during close returned %v; its record is durable", err)
		}
	}

	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	users := map[string]bool{}
	for _, r := range rec.Records {
		users[r.User] = true
	}
	for _, u := range []string{"u0", "uc", "ua", "ub"} {
		if !users[u] {
			t.Errorf("record %s lost across close", u)
		}
	}
}

func TestFlakySnapshotFailureLeavesPrevious(t *testing.T) {
	dir := t.TempDir()
	flaky := NewFlaky(nil)
	s := openTest(t, dir, Options{Sync: SyncOS, FS: flaky})
	mustLoad(t, s)
	appendMix(t, s)
	good := &Snapshot{LSN: 2, Tenants: []TenantSnap{{Name: "a", StartLSN: 2}}}
	if err := s.WriteSnapshot(good); err != nil {
		t.Fatal(err)
	}
	// Fail mid-snapshot-write: the temp file dies before the rename, so
	// the published snapshot is untouched.
	flaky.FailWrites(1, true, false)
	if err := s.WriteSnapshot(&Snapshot{LSN: 4, Tenants: []TenantSnap{{Name: "a", StartLSN: 4}}}); err == nil {
		t.Fatal("injected snapshot failure not surfaced")
	}
	s.Close()
	s2 := openTest(t, dir, Options{Sync: SyncOS})
	rec := mustLoad(t, s2)
	if rec.Snapshot == nil || rec.Snapshot.LSN != 2 {
		t.Fatalf("recovered snapshot %+v, want the LSN-2 one", rec.Snapshot)
	}
}

func TestSyncAlwaysAndIntervalPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval} {
		dir := t.TempDir()
		flaky := NewFlaky(nil)
		s := openTest(t, dir, Options{Sync: pol, SyncEvery: time.Millisecond, FS: flaky})
		mustLoad(t, s)
		if _, err := s.AppendIngest("a", "u", 0, []float64{1}); err != nil {
			t.Fatal(err)
		}
		if pol == SyncInterval {
			deadline := time.Now().Add(time.Second)
			for {
				if _, syncs, _ := flaky.Stats(); syncs > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("interval policy never synced")
				}
				time.Sleep(time.Millisecond)
			}
		} else if _, syncs, _ := flaky.Stats(); syncs == 0 {
			t.Fatal("always policy did not sync on append")
		}
		s.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"", SyncInterval, true}, {"interval", SyncInterval, true},
		{"always", SyncAlways, true}, {"os", SyncOS, true}, {"never", SyncOS, true},
		{"bogus", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if SyncAlways.String() != "always" || SyncInterval.String() != "interval" || SyncOS.String() != "os" {
		t.Error("SyncPolicy.String mismatch")
	}
}

func TestFlakyLatency(t *testing.T) {
	dir := t.TempDir()
	flaky := NewFlaky(nil)
	flaky.Latency(20 * time.Millisecond)
	s := openTest(t, dir, Options{Sync: SyncOS, FS: flaky})
	mustLoad(t, s)
	start := time.Now()
	if _, err := s.AppendIngest("a", "u", 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("append took %v, want ≥20ms of injected latency", d)
	}
}
