package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// A snapshot file is the durable image of every tenant's mergeable state:
// sealed epoch histograms, epoch clock, accountant spend, user-group
// bindings and the task spec — everything except the live (unsealed)
// epoch, which is always reconstructed by replaying the WAL from the
// tenant's last rotation. The layout is self-describing binary:
//
//	magic "DAPSNP01" | u32 version | u64 cut LSN | u32 tenant count
//	per tenant: name, spec JSON, seq, start/acct LSNs, joined count,
//	            sealed epochs (per group: counts, sum, n), spend map,
//	            user-group bindings
//	u32 CRC-32C over everything before it
//
// Files are written to a temp name and atomically renamed into place, so
// a visible snap-*.snap is either complete or checksum-detectably
// corrupt; recovery walks snapshots newest-first until one verifies. The
// per-tenant blocks are sum-mergeable (histograms add, spends take max),
// by design: the same format is the intended multi-node snapshot/merge
// wire format from ROADMAP item 1.

// snapMagic identifies (and versions) a snapshot file.
const snapMagic = "DAPSNP01"

// snapVersion is the current snapshot format version.
const snapVersion = 1

// EpochSnap is one sealed epoch of one tenant: per-group bucket counts
// over the discretized output domain plus exact report sums and counts.
type EpochSnap struct {
	// Counts holds one histogram per group.
	Counts [][]float64
	// Sums holds the exact per-group report value sums.
	Sums []float64
	// Ns holds the per-group report counts.
	Ns []float64
}

// TenantSnap is the durable image of one tenant at a snapshot cut.
type TenantSnap struct {
	// Name is the tenant name.
	Name string
	// Spec is the tenant's task-spec JSON (with Serve section), enough to
	// recreate the tenant through the normal spec→tenant path.
	Spec []byte
	// Seq is the number of sealed epochs.
	Seq uint64
	// StartLSN is the WAL position of the tenant's live epoch: ingest and
	// rotate records at or beyond it replay into histograms.
	StartLSN uint64
	// AcctLSN is the WAL position the Spend map reflects: budget charges
	// and joins at or beyond it replay into the accountant.
	AcctLSN uint64
	// Joined is how many users Join had assigned at AcctLSN.
	Joined int
	// Epochs is the sealed window, oldest first.
	Epochs []EpochSnap
	// Spend is the accountant ledger: per-user consumed budget.
	Spend map[string]float64
	// Users is the user→group binding map.
	Users map[string]int
}

// Snapshot is the durable image of a whole registry.
type Snapshot struct {
	// LSN is the WAL position at the cut (used for naming and garbage
	// collection; per-tenant replay positions are in the tenant blocks).
	LSN uint64
	// Tenants holds one block per tenant.
	Tenants []TenantSnap
}

// minStartLSN returns the oldest WAL position any tenant's replay needs;
// segments entirely before it are garbage.
func (s *Snapshot) minStartLSN() uint64 {
	m := s.LSN
	for i := range s.Tenants {
		if s.Tenants[i].StartLSN < m {
			m = s.Tenants[i].StartLSN
		}
	}
	return m
}

// appendFloats appends a uvarint count plus float64 bit patterns.
func appendFloats(b []byte, vs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// encodeSnapshot renders snap into the versioned binary format, CRC
// trailer included.
func encodeSnapshot(snap *Snapshot) []byte {
	b := append([]byte(nil), snapMagic...)
	b = binary.LittleEndian.AppendUint32(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, snap.LSN)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(snap.Tenants)))
	for i := range snap.Tenants {
		t := &snap.Tenants[i]
		b = appendUstring(b, t.Name)
		b = appendUbytes(b, t.Spec)
		b = binary.AppendUvarint(b, t.Seq)
		b = binary.AppendUvarint(b, t.StartLSN)
		b = binary.AppendUvarint(b, t.AcctLSN)
		b = binary.AppendUvarint(b, uint64(t.Joined))
		b = binary.AppendUvarint(b, uint64(len(t.Epochs)))
		for e := range t.Epochs {
			ep := &t.Epochs[e]
			b = binary.AppendUvarint(b, uint64(len(ep.Counts)))
			for g := range ep.Counts {
				b = appendFloats(b, ep.Counts[g])
			}
			b = appendFloats(b, ep.Sums)
			b = appendFloats(b, ep.Ns)
		}
		b = binary.AppendUvarint(b, uint64(len(t.Spend)))
		for _, u := range sortedKeys(t.Spend) {
			b = appendUstring(b, u)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Spend[u]))
		}
		b = binary.AppendUvarint(b, uint64(len(t.Users)))
		for _, u := range sortedKeys(t.Users) {
			b = appendUstring(b, u)
			b = binary.AppendUvarint(b, uint64(t.Users[u]))
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// sortedKeys returns m's keys sorted, for deterministic snapshot bytes.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// readFloats decodes a float slice written by appendFloats.
func (c *byteCursor) readFloats() ([]float64, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.b)-c.off)/8 {
		return nil, errCorrupt
	}
	vs := make([]float64, n)
	for i := range vs {
		if vs[i], err = c.float64(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// decodeSnapshot parses and checksum-verifies a snapshot file's bytes.
func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic)+4+8+4+4 {
		return nil, errCorrupt
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	c := byteCursor{b: body, off: len(snapMagic)}
	ver := binary.LittleEndian.Uint32(body[c.off:])
	c.off += 4
	if ver != snapVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", ver)
	}
	snap := &Snapshot{LSN: binary.LittleEndian.Uint64(body[c.off:])}
	c.off += 8
	nt := binary.LittleEndian.Uint32(body[c.off:])
	c.off += 4
	snap.Tenants = make([]TenantSnap, nt)
	for i := range snap.Tenants {
		t := &snap.Tenants[i]
		var err error
		if t.Name, err = c.ustring(); err != nil {
			return nil, err
		}
		if t.Spec, err = c.ubytes(); err != nil {
			return nil, err
		}
		if t.Seq, err = c.uvarint(); err != nil {
			return nil, err
		}
		if t.StartLSN, err = c.uvarint(); err != nil {
			return nil, err
		}
		if t.AcctLSN, err = c.uvarint(); err != nil {
			return nil, err
		}
		joined, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		t.Joined = int(joined)
		ne, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		t.Epochs = make([]EpochSnap, ne)
		for e := range t.Epochs {
			ep := &t.Epochs[e]
			ng, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			ep.Counts = make([][]float64, ng)
			for g := range ep.Counts {
				if ep.Counts[g], err = c.readFloats(); err != nil {
					return nil, err
				}
			}
			if ep.Sums, err = c.readFloats(); err != nil {
				return nil, err
			}
			if ep.Ns, err = c.readFloats(); err != nil {
				return nil, err
			}
		}
		ns, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		t.Spend = make(map[string]float64, ns)
		for j := uint64(0); j < ns; j++ {
			u, err := c.ustring()
			if err != nil {
				return nil, err
			}
			v, err := c.float64()
			if err != nil {
				return nil, err
			}
			t.Spend[u] = v
		}
		nu, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		t.Users = make(map[string]int, nu)
		for j := uint64(0); j < nu; j++ {
			u, err := c.ustring()
			if err != nil {
				return nil, err
			}
			g, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			t.Users[u] = int(g)
		}
	}
	return snap, nil
}

// readSnapshotFile loads and verifies one snapshot file.
func readSnapshotFile(fs FS, path string) (*Snapshot, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(b)
}
