package store

import (
	"io"
	"sync"
	"time"
)

// Flaky wraps an FS and injects faults into its write path: scheduled
// write errors, torn writes (half the bytes land before the error — the
// on-disk tail a power loss mid-write leaves behind), sync failures and
// per-write latency. It drives the fault-injection harness: crash-and-
// recover tests run the real store logic over a Flaky-wrapped filesystem
// and assert that recovery truncates exactly the injected damage.
//
// The zero schedule injects nothing; arm faults with FailWrites /
// FailSyncs. Flaky is safe for concurrent use.
type Flaky struct {
	inner FS

	mu         sync.Mutex
	writeLeft  int  // inject on the write that makes this 0 (-1 = disarmed)
	syncLeft   int  // same, for Sync
	torn       bool // failing write lands half its bytes first
	persistErr bool // keep failing after the scheduled fault until Heal
	latency    time.Duration

	writes   int
	syncs    int
	injected int
}

// errInjected is the fault Flaky injects.
type errInjected struct{}

func (errInjected) Error() string { return "store: injected fault" }

// ErrInjected is the error injected writes and syncs return.
var ErrInjected error = errInjected{}

// NewFlaky wraps fs (nil selects the real filesystem) with a disarmed
// fault schedule.
func NewFlaky(fs FS) *Flaky {
	if fs == nil {
		fs = OS{}
	}
	return &Flaky{inner: fs, writeLeft: -1, syncLeft: -1}
}

// FailWrites arms the schedule: the nth write from now (1-based) fails.
// With torn, the failing write first lands half of its bytes — a torn
// tail for recovery to truncate. With persist, every later write fails
// too until Heal is called (a store that stays down, not one bad sector).
func (f *Flaky) FailWrites(n int, torn, persist bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeLeft = n
	f.torn = torn
	f.persistErr = persist
}

// FailSyncs arms the nth Sync from now (1-based) to fail.
func (f *Flaky) FailSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncLeft = n
}

// Latency makes every write sleep d first — a slow disk for tests that
// need to observe a window (e.g. a server mid-recovery).
func (f *Flaky) Latency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Heal disarms all scheduled and persistent faults.
func (f *Flaky) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeLeft, f.syncLeft = -1, -1
	f.torn, f.persistErr = false, false
	f.latency = 0
}

// Stats returns totals: writes seen, syncs seen, faults injected.
func (f *Flaky) Stats() (writes, syncs, injected int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs, f.injected
}

// checkWrite consumes one write slot; it returns the sleep to apply,
// whether to inject a fault, and whether the fault is torn.
func (f *Flaky) checkWrite() (lat time.Duration, inject, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	lat = f.latency
	if f.writeLeft > 0 {
		f.writeLeft--
		if f.writeLeft == 0 {
			inject, torn = true, f.torn
			f.injected++
			if !f.persistErr {
				f.writeLeft = -1
			}
		}
	} else if f.writeLeft == 0 && f.persistErr {
		inject = true
		f.injected++
	}
	return lat, inject, torn
}

func (f *Flaky) checkSync() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.syncLeft > 0 {
		f.syncLeft--
		if f.syncLeft == 0 {
			f.injected++
			f.syncLeft = -1
			return true
		}
	}
	return false
}

// MkdirAll implements FS.
func (f *Flaky) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Create implements FS.
func (f *Flaky) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{f: f, inner: file}, nil
}

// OpenAppend implements FS.
func (f *Flaky) OpenAppend(name string) (File, error) {
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{f: f, inner: file}, nil
}

// Open implements FS.
func (f *Flaky) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

// ReadDir implements FS.
func (f *Flaky) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Rename implements FS.
func (f *Flaky) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }

// Remove implements FS.
func (f *Flaky) Remove(name string) error { return f.inner.Remove(name) }

// Truncate implements FS.
func (f *Flaky) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// Size implements FS.
func (f *Flaky) Size(name string) (int64, error) { return f.inner.Size(name) }

// SyncDir implements FS.
func (f *Flaky) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

// flakyFile intercepts writes and syncs on one handle.
type flakyFile struct {
	f     *Flaky
	inner File
}

// Write implements File, applying the schedule: latency first, then
// either a clean write, a clean error, or a torn write (half the bytes
// land, then the error).
func (ff *flakyFile) Write(p []byte) (int, error) {
	lat, inject, torn := ff.f.checkWrite()
	if lat > 0 {
		time.Sleep(lat)
	}
	if !inject {
		return ff.inner.Write(p)
	}
	if torn && len(p) > 1 {
		n, err := ff.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	return 0, ErrInjected
}

// Sync implements File.
func (ff *flakyFile) Sync() error {
	if ff.f.checkSync() {
		return ErrInjected
	}
	return ff.inner.Sync()
}

// Close implements File.
func (ff *flakyFile) Close() error { return ff.inner.Close() }
