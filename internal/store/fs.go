package store

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the filesystem operations the store performs. The production
// implementation is OS; tests inject faults through Flaky, which wraps any
// FS and perturbs its writes (errors, torn tails, latency) without touching
// the store's own logic. Paths are passed through verbatim and methods must
// behave like the corresponding os functions.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it when absent.
	OpenAppend(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// Size returns the named file's length in bytes.
	Size(name string) (int64, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// File is a writable file handle as the store sees it.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Size implements FS.
func (OS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// SyncDir implements FS. Directory fsync makes the rename that published a
// snapshot durable; on platforms where directories cannot be fsynced the
// error is reported to the caller.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
