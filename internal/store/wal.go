package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The WAL is a sequence of segment files named wal-<firstLSN>.log. Every
// segment starts with an 8-byte magic plus the little-endian LSN of its
// first record; records follow back to back, each framed as
//
//	u32le payload length | u32le CRC-32C(payload) | payload
//
// so a reader can detect a torn tail (short frame or checksum mismatch)
// and truncate to the last intact record. Record LSNs are implicit: the
// segment header carries the first, and each record increments it —
// nothing in the hot append path writes per-record sequence numbers.
//
// The payload is type-tagged, length-prefixed binary (uvarint lengths,
// float64 bit patterns for values), versioned by the segment magic — the
// same self-describing conventions the snapshot format uses, so the two
// can later travel together as a multi-node merge wire format.

// walMagic identifies (and versions) a WAL segment file.
const walMagic = "DAPWAL01"

// walHeaderSize is the segment header length: magic + first LSN.
const walHeaderSize = len(walMagic) + 8

// frameHeaderSize is the per-record frame header: length + CRC.
const frameHeaderSize = 8

// maxRecordBytes bounds a single record frame; larger lengths in a
// corrupted file are treated as a torn tail rather than allocated.
const maxRecordBytes = 16 << 20

// castagnoli is the CRC-32C table used for record and snapshot checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordType tags a WAL record.
type RecordType uint8

// WAL record types.
const (
	// RecIngest is one accepted report batch: (tenant, user, group,
	// values). Replay feeds it back through the tenant's ingest path.
	RecIngest RecordType = iota + 1
	// RecRotate seals a tenant's live epoch; Seq is the epoch counter
	// after the seal.
	RecRotate
	// RecJoin records a user-group assignment handed out by Join.
	RecJoin
	// RecTenantCreate records a tenant registration; Spec carries the
	// tenant's task-spec JSON (with Serve section), enough to recreate it.
	RecTenantCreate
	// RecTenantDelete records a tenant deletion.
	RecTenantDelete
	// RecMergeDelta is one node's sealed-epoch delta accepted by a
	// coordinator: User carries the node id, Seq the epoch index and
	// Spec the raw CRC-sealed delta frame bytes (wirebin.EncodeDelta),
	// so replay re-verifies and re-merges the exact frame.
	RecMergeDelta
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecIngest:
		return "ingest"
	case RecRotate:
		return "rotate"
	case RecJoin:
		return "join"
	case RecTenantCreate:
		return "tenant-create"
	case RecTenantDelete:
		return "tenant-delete"
	case RecMergeDelta:
		return "merge-delta"
	}
	return fmt.Sprintf("record(%d)", uint8(t))
}

// Record is one WAL entry. Which fields are meaningful depends on Type;
// LSN is assigned by the log (append order, monotone, gaps only where a
// torn tail was truncated).
type Record struct {
	// LSN is the record's log sequence number.
	LSN uint64
	// Type selects the fields below.
	Type RecordType
	// Tenant names the owning tenant (all types).
	Tenant string
	// User is the reporting or joining user (RecIngest, RecJoin) or the
	// reporting node id (RecMergeDelta).
	User string
	// Group is the user's group index (RecIngest, RecJoin).
	Group int
	// Values are the accepted report values (RecIngest).
	Values []float64
	// Seq is the sealed-epoch counter (RecRotate, RecMergeDelta).
	Seq uint64
	// Spec is the tenant's task-spec JSON (RecTenantCreate) or the raw
	// delta frame bytes (RecMergeDelta).
	Spec []byte
}

// appendUstring appends a uvarint-length-prefixed string.
func appendUstring(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendUbytes appends a uvarint-length-prefixed byte slice.
func appendUbytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// encodeRecord appends r's payload (no frame) to b.
func encodeRecord(b []byte, r *Record) []byte {
	b = append(b, byte(r.Type))
	b = appendUstring(b, r.Tenant)
	switch r.Type {
	case RecIngest:
		b = appendUstring(b, r.User)
		b = binary.AppendUvarint(b, uint64(r.Group))
		b = binary.AppendUvarint(b, uint64(len(r.Values)))
		for _, v := range r.Values {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	case RecRotate:
		b = binary.AppendUvarint(b, r.Seq)
	case RecJoin:
		b = appendUstring(b, r.User)
		b = binary.AppendUvarint(b, uint64(r.Group))
	case RecTenantCreate:
		b = appendUbytes(b, r.Spec)
	case RecTenantDelete:
	case RecMergeDelta:
		b = appendUstring(b, r.User)
		b = binary.AppendUvarint(b, r.Seq)
		b = appendUbytes(b, r.Spec)
	}
	return b
}

// errCorrupt marks an undecodable payload (bad length, short buffer).
var errCorrupt = errors.New("store: corrupt record")

// byteCursor walks a record payload.
type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) ustring() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(c.b)-c.off) {
		return "", errCorrupt
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

func (c *byteCursor) ubytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.b)-c.off) {
		return nil, errCorrupt
	}
	p := append([]byte(nil), c.b[c.off:c.off+int(n)]...)
	c.off += int(n)
	return p, nil
}

func (c *byteCursor) float64() (float64, error) {
	if len(c.b)-c.off < 8 {
		return 0, errCorrupt
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v, nil
}

// decodeRecord parses one payload into r.
func decodeRecord(payload []byte, r *Record) error {
	if len(payload) < 1 {
		return errCorrupt
	}
	c := byteCursor{b: payload, off: 1}
	r.Type = RecordType(payload[0])
	var err error
	if r.Tenant, err = c.ustring(); err != nil {
		return err
	}
	switch r.Type {
	case RecIngest:
		if r.User, err = c.ustring(); err != nil {
			return err
		}
		g, err := c.uvarint()
		if err != nil {
			return err
		}
		r.Group = int(g)
		n, err := c.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(c.b)-c.off)/8 {
			return errCorrupt
		}
		r.Values = make([]float64, n)
		for i := range r.Values {
			if r.Values[i], err = c.float64(); err != nil {
				return err
			}
		}
	case RecRotate:
		if r.Seq, err = c.uvarint(); err != nil {
			return err
		}
	case RecJoin:
		if r.User, err = c.ustring(); err != nil {
			return err
		}
		g, err := c.uvarint()
		if err != nil {
			return err
		}
		r.Group = int(g)
	case RecTenantCreate:
		if r.Spec, err = c.ubytes(); err != nil {
			return err
		}
	case RecTenantDelete:
	case RecMergeDelta:
		if r.User, err = c.ustring(); err != nil {
			return err
		}
		if r.Seq, err = c.uvarint(); err != nil {
			return err
		}
		if r.Spec, err = c.ubytes(); err != nil {
			return err
		}
	default:
		return errCorrupt
	}
	return nil
}

// readSegment scans one segment file, calling emit for every intact
// record. It returns the byte offset of the end of the last intact record
// (the truncation point when the tail is torn), whether a torn/corrupt
// tail was found, and the next LSN after the last intact record. A file
// too short for the header counts as torn at offset 0.
func readSegment(fs FS, path string, emit func(*Record)) (good int64, nextLSN uint64, torn bool, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, true, nil
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return 0, 0, true, nil
	}
	lsn := binary.LittleEndian.Uint64(hdr[len(walMagic):])
	good = int64(walHeaderSize)
	frame := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			return good, lsn, !errors.Is(err, io.EOF), nil
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if n > maxRecordBytes {
			return good, lsn, true, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return good, lsn, true, nil
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return good, lsn, true, nil
		}
		var r Record
		if err := decodeRecord(payload, &r); err != nil {
			return good, lsn, true, nil
		}
		r.LSN = lsn
		lsn++
		good += int64(frameHeaderSize) + int64(n)
		emit(&r)
	}
}
