package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fuzzRecordsEqual compares records field-wise with bit-exact float
// comparison, so NaN payloads round-tripping through the codec count as
// equal instead of tripping on NaN != NaN.
func fuzzRecordsEqual(a, b *Record) bool {
	if a.Type != b.Type || a.Tenant != b.Tenant || a.User != b.User ||
		a.Group != b.Group || a.Seq != b.Seq || !bytes.Equal(a.Spec, b.Spec) {
		return false
	}
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return false
		}
	}
	return true
}

// FuzzWALRecord feeds arbitrary bytes to the WAL record payload decoder:
// it must never panic, and any payload it accepts must re-encode to a
// canonical form that decodes back to the identical record.
func FuzzWALRecord(f *testing.F) {
	seeds := []Record{
		{Type: RecIngest, Tenant: "t", User: "u", Group: 1, Values: []float64{0.25, math.NaN(), -1}},
		{Type: RecRotate, Tenant: "t", Seq: 42},
		{Type: RecJoin, Tenant: "t", User: "u", Group: 0},
		{Type: RecTenantCreate, Tenant: "t", Spec: []byte(`{"task":"mean"}`)},
		{Type: RecTenantDelete, Tenant: "gone"},
		{Type: RecMergeDelta, Tenant: "t", User: "node-1", Seq: 7, Spec: []byte("DAPD\x01\x00frame")},
	}
	for i := range seeds {
		f.Add(encodeRecord(nil, &seeds[i]))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var r Record
		if err := decodeRecord(payload, &r); err != nil {
			return // rejected input: only the no-panic property applies
		}
		enc := encodeRecord(nil, &r)
		var r2 Record
		if err := decodeRecord(enc, &r2); err != nil {
			t.Fatalf("re-encoded accepted record fails to decode: %v", err)
		}
		if !fuzzRecordsEqual(&r, &r2) {
			t.Fatalf("record round-trip mismatch:\n first %+v\nsecond %+v", r, r2)
		}
		if enc2 := encodeRecord(nil, &r2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not canonical:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

// FuzzWALSegment feeds arbitrary bytes to the CRC-framed segment reader
// as a segment file: torn and corrupt tails must come back as torn or
// error, never as a panic, and the good-bytes offset can never exceed the
// file length.
func FuzzWALSegment(f *testing.F) {
	var frame []byte
	frame = append(frame, walMagic...)
	frame = append(frame, 1, 0, 0, 0, 0, 0, 0, 0)
	f.Add(frame)                             // header only
	f.Add(append([]byte(nil), frame[:4]...)) // torn header
	f.Add([]byte("not a wal segment at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		good, _, _, err := readSegment(OS{}, path, func(*Record) {})
		if err != nil {
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
	})
}

// FuzzSnapshot feeds arbitrary bytes to the snapshot decoder: no panics,
// and accepted snapshots re-encode canonically.
func FuzzSnapshot(f *testing.F) {
	f.Add(encodeSnapshot(&Snapshot{}))
	f.Add([]byte{})
	f.Add([]byte("DAPSNAPgarbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		enc := encodeSnapshot(snap)
		snap2, err := decodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot fails to decode: %v", err)
		}
		if enc2 := encodeSnapshot(snap2); !bytes.Equal(enc, enc2) {
			t.Fatalf("snapshot encode is not canonical")
		}
	})
}
