package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //dapvet: directive grammar (no space after //, like //go: ones):
//
//	//dapvet:hotpath
//	    On a function's doc comment: the function is a declared
//	    allocation-free hot path and the hotpath rules apply to its body.
//
//	//dapvet:scrape
//	    On a function's doc comment: the function runs at metrics-scrape
//	    time; the lockorder rule forbids it (and everything it calls in
//	    its package) from touching the store-mutex method set.
//
//	//dapvet:<suppression> <justification>
//	    Suppresses one rule's findings. On a function's doc comment it
//	    covers the whole function; on or above a source line it covers
//	    that line. The justification is mandatory — an unexplained
//	    suppression is itself a finding. Suppression tokens:
//	    nondeterministic-ok (determinism), hotpath-ok, lockorder-ok,
//	    budget-ok, errtaxonomy-ok, metricshygiene-ok.
//
// Anything else after //dapvet: is a malformed directive and reported
// under the "directive" rule, so typos fail the build instead of
// silently disabling a check.

// suppression disables one rule over a file line range.
type suppression struct {
	rule     string
	file     string
	from, to int
}

// suppressionRule maps a directive token to the rule it suppresses.
func suppressionRule(word string) (string, bool) {
	if !strings.HasSuffix(word, "-ok") {
		return "", false
	}
	name := strings.TrimSuffix(word, "-ok")
	if name == "nondeterministic" {
		name = "determinism"
	}
	return name, AnalyzerNames()[name]
}

// suppressed reports whether a finding of rule at pos is covered by a
// suppression directive.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	for _, s := range p.supp {
		if s.rule == rule && s.file == pos.Filename && pos.Line >= s.from && pos.Line <= s.to {
			return true
		}
	}
	return false
}

// scanDirectives parses every //dapvet: comment in the file, attaching
// hotpath/scrape markers to their functions, recording suppressions and
// reporting malformed directives.
func (p *Package) scanDirectives(file *ast.File) {
	docOwner := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			docOwner[fd.Doc] = fd
		}
	}
	bad := func(pos token.Pos, format string, args ...any) {
		p.badDirectives = append(p.badDirectives, Finding{
			Pos: p.Fset.Position(pos), Rule: "directive",
			Msg: fmt.Sprintf(format, args...),
		})
	}
	for _, cg := range file.Comments {
		owner := docOwner[cg]
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//dapvet:")
			if !ok {
				continue
			}
			word, arg, _ := strings.Cut(text, " ")
			arg = strings.TrimSpace(arg)
			switch word {
			case "hotpath":
				if owner == nil {
					bad(c.Pos(), "//dapvet:hotpath must sit on a function's doc comment")
					continue
				}
				p.hot[owner] = true
			case "scrape":
				if owner == nil {
					bad(c.Pos(), "//dapvet:scrape must sit on a function's doc comment")
					continue
				}
				p.scrape[owner] = true
			default:
				rule, ok := suppressionRule(word)
				if !ok {
					bad(c.Pos(), "unknown dapvet directive %q", word)
					continue
				}
				if arg == "" {
					bad(c.Pos(), "//dapvet:%s needs a justification", word)
					continue
				}
				pos := p.Fset.Position(c.Pos())
				s := suppression{rule: rule, file: pos.Filename, from: pos.Line, to: pos.Line + 1}
				if owner != nil {
					s.from = p.Fset.Position(owner.Pos()).Line
					s.to = p.Fset.Position(owner.End()).Line
				}
				p.supp = append(p.supp, s)
			}
		}
	}
}
