package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// decls maps every function object defined in the package to its
// declaration, letting analyzers chase intra-package static calls.
func (p *Package) decls() map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// callee resolves a call expression to the function object it statically
// invokes: a package function, a method on a concrete receiver, or an
// interface method. Builtins, function values and type conversions yield
// nil.
func (p *Package) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvNamed returns the name of the method's receiver's named type
// (pointers stripped), or "" for plain functions.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isPkgFunc reports whether fn is the named function of the package whose
// import path ends with pkgSuffix (e.g. "time".Now, "fmt".Errorf).
func isPkgFunc(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	return pathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// pathHasSuffix matches an import path against a package suffix
// ("metrics" matches "repro/internal/metrics" and "metrics" itself).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// closure walks the intra-package static call graph from the given
// entry-point declarations and returns every declaration reachable from
// them (entries included).
func (p *Package) closure(entries []*ast.FuncDecl) map[*ast.FuncDecl]bool {
	byObj := p.decls()
	reach := make(map[*ast.FuncDecl]bool)
	work := append([]*ast.FuncDecl(nil), entries...)
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if fd == nil || reach[fd] {
			continue
		}
		reach[fd] = true
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := p.callee(call); fn != nil {
				if next, ok := byObj[fn]; ok && !reach[next] {
					work = append(work, next)
				}
			}
			return true
		})
	}
	return reach
}

// funcName renders a declaration's name including its receiver type, for
// messages ("(*Store).Health", "hashUser").
func (p *Package) funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
		star = "*"
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// selectorRoot descends a selector chain (a.b.c -> a) and returns the
// root identifier, nil when the chain roots in a call or index.
func selectorRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mutexCall matches a call of the form <owner>.<field>.Lock/Unlock (or
// RLock/RUnlock) where <field> has a sync mutex type, returning the owner
// expression, the mutex field name and the method. ok is false otherwise.
func (p *Package) mutexCall(call *ast.CallExpr) (owner ast.Expr, field, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock":
	default:
		return nil, "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	t := p.Info.TypeOf(inner)
	if t == nil {
		return nil, "", "", false
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return inner.X, inner.Sel.Name, method, true
	}
	return nil, "", "", false
}

// exprString renders a short source-ish form of an expression for
// messages; good enough for identifiers and selector chains.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expr"
}

// containsCall reports whether the subtree contains a call for which
// match returns true, returning the first such call.
func (p *Package) containsCall(n ast.Node, match func(*ast.CallExpr) bool) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && match(call) {
			found = call
			return false
		}
		return true
	})
	return found
}

// firstPos is the smallest valid position in ps (helper for messages).
func firstPos(ps ...token.Pos) token.Pos {
	best := token.NoPos
	for _, p := range ps {
		if p.IsValid() && (best == token.NoPos || p < best) {
			best = p
		}
	}
	return best
}
