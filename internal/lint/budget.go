package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerBudget enforces the charge-then-refund accounting contract in
// internal/stream's ingest paths:
//
//   - Histogram mutation (shard.addLocked, shardSet.add) must be
//     lexically dominated by an Accountant charge (Spend, SpendN or
//     ForceSpend) in the same function — state never moves before the
//     privacy budget pays for it.
//   - After a Spend/SpendN, a failed store append must refund: an error
//     return inside the append's error branch that skips Accountant.Refund
//     leaks budget the tenant never got durability for.
//
// The shard/shardSet methods themselves are the mutation primitives and
// are exempt; the rule binds their callers.
var analyzerBudget = &Analyzer{
	Name: "budget",
	Doc:  "histogram mutation must follow an Accountant charge; failed appends after a charge must refund",
	Run:  runBudget,
}

func runBudget(p *Package, r *Reporter) {
	if !p.pathIn("internal/stream") {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch recvName(fd) {
			case "shard", "shardSet":
				continue // the mutation primitives themselves
			}
			checkBudgetFn(p, r, fd)
		}
	}
}

// recvName is the receiver type name of a declaration ("" for functions).
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkBudgetFn(p *Package, r *Reporter, fd *ast.FuncDecl) {
	name := p.funcName(fd)
	isAcct := func(call *ast.CallExpr, names ...string) bool {
		fn := p.callee(call)
		if fn == nil || recvNamed(fn) != "Accountant" {
			return false
		}
		for _, n := range names {
			if fn.Name() == n {
				return true
			}
		}
		return false
	}
	isMutate := func(call *ast.CallExpr) bool {
		fn := p.callee(call)
		if fn == nil {
			return false
		}
		switch recvNamed(fn) {
		case "shard", "shardSet":
		default:
			return false
		}
		return fn.Name() == "add" || fn.Name() == "addLocked"
	}
	isAppend := func(call *ast.CallExpr) bool {
		fn := p.callee(call)
		return fn != nil && recvNamed(fn) == "Store" && strings.HasPrefix(fn.Name(), "Append")
	}

	// First charge position (NoPos when the function never charges).
	var firstCharge token.Pos
	hasSpend, hasAppend, hasRefund := false, false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isAcct(call, "Spend", "SpendN", "ForceSpend") {
			if !firstCharge.IsValid() {
				firstCharge = call.Pos()
			}
			if isAcct(call, "Spend", "SpendN") {
				hasSpend = true
			}
		}
		if isAppend(call) {
			hasAppend = true
		}
		if isAcct(call, "Refund") {
			hasRefund = true
		}
		return true
	})

	// Rule 1: every mutation is dominated by a charge.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMutate(call) {
			return true
		}
		if !firstCharge.IsValid() || call.Pos() < firstCharge {
			r.Reportf(call.Pos(), "%s mutates histogram state without a preceding Accountant charge; charge the budget before touching the shard", name)
		}
		return true
	})

	// Rule 2a: a charged append with no refund anywhere leaks budget.
	if hasSpend && hasAppend && !hasRefund {
		r.Reportf(fd.Pos(), "%s charges the budget and appends to the store but never refunds; a failed append must roll the charge back", name)
	}

	// Rule 2b: an append error branch that returns after a charge must
	// pass through a refund before leaving.
	if !hasSpend {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init == nil || ifs.Pos() < firstCharge {
			return true
		}
		if p.containsCall(ifs.Init, isAppend) == nil {
			return true
		}
		var returns bool
		ast.Inspect(ifs.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns = true
			}
			return !returns
		})
		if !returns {
			return true
		}
		if p.containsCall(ifs.Body, func(c *ast.CallExpr) bool { return isAcct(c, "Refund") }) == nil {
			r.Reportf(ifs.Pos(), "%s returns from a failed store append after charging the budget without refunding; the charge must be rolled back", name)
		}
		return true
	})
}
