package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Options selects what Run lints.
type Options struct {
	// Dir is the module root the go tool runs in ("" = current directory).
	Dir string
	// Patterns are go-tool package patterns (default ./...).
	Patterns []string
}

// Package is one loaded, type-checked package plus its scanned dapvet
// directives.
type Package struct {
	// Path is the package's import path. Fixture packages claim the path
	// of the package whose contracts they exercise.
	Path string
	// Dir holds the package's source files.
	Dir string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Pkg and Info carry full type information.
	Pkg  *types.Package
	Info *types.Info

	supp          []suppression
	hot           map[*ast.FuncDecl]bool
	scrape        map[*ast.FuncDecl]bool
	badDirectives []Finding
}

// sep separates go list template fields; never appears in paths.
const sep = "\x1f"

// listFormat extracts import path, directory, export-data file and the
// build-tag-filtered non-test sources of every package.
const listFormat = "{{.ImportPath}}" + sep + "{{.Dir}}" + sep + "{{.Export}}" + sep +
	"{{range .GoFiles}}{{.}}\x1e{{end}}"

// goList runs the go tool and returns its stdout.
func goList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args[:2], " "), err, errb.String())
	}
	return out.Bytes(), nil
}

// listedPkg is one `go list` result row.
type listedPkg struct {
	path, dir, export string
	goFiles           []string
}

// listPackages resolves patterns (plus their dependency closure, compiled
// so export data exists) into rows.
func listPackages(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-f", listFormat}, patterns...)
	out, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	var pkgs []listedPkg
	for _, line := range strings.Split(string(out), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, sep)
		if len(fields) != 4 {
			return nil, fmt.Errorf("lint: unexpected go list output %q", line)
		}
		p := listedPkg{path: fields[0], dir: fields[1], export: fields[2]}
		for _, f := range strings.Split(fields[3], "\x1e") {
			if f != "" {
				p.goFiles = append(p.goFiles, f)
			}
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types imports from the compiler export data
// `go list -export` placed in the build cache — full cross-package type
// information with no dependency on GOROOT source or cgo.
func exportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// Load lists, parses, type-checks and directive-scans every package under
// opts.Dir matched by opts.Patterns (dependencies outside the tree are
// imported from export data, not linted).
func Load(opts Options) ([]*Package, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rows, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(rows))
	for _, r := range rows {
		exports[r.path] = r.export
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, r := range rows {
		if !strings.HasPrefix(r.dir, root+string(filepath.Separator)) && r.dir != root {
			continue // dependency outside the linted tree
		}
		var paths []string
		for _, f := range r.goFiles {
			paths = append(paths, filepath.Join(r.dir, f))
		}
		p, err := check(fset, imp, r.path, r.dir, paths)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check parses and type-checks one package's files under the claimed
// import path and scans its dapvet directives.
func check(fset *token.FileSet, imp types.ImporterFrom, path, dir string, filenames []string) (*Package, error) {
	p := &Package{
		Path: path,
		Dir:  dir,
		Fset: fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
		hot:    make(map[*ast.FuncDecl]bool),
		scrape: make(map[*ast.FuncDecl]bool),
	}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p.Pkg = pkg
	for _, f := range p.Files {
		p.scanDirectives(f)
	}
	return p, nil
}

// CheckFixture type-checks the given source files as one package claiming
// the import path of the package whose contracts it exercises — the
// fixture-test entry point. moduleDir anchors `go list` so fixtures may
// import both the standard library and repro packages.
func CheckFixture(moduleDir, claimedPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var imports []string
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		rows, err := listPackages(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			exports[r.path] = r.export
		}
	}
	return check(fset, exportImporter(fset, exports), claimedPath, filepath.Dir(filenames[0]), filenames)
}

// pathIn reports whether the package is (or claims to be) one of the
// given repo packages, matching by import-path suffix.
func (p *Package) pathIn(suffixes ...string) bool {
	for _, s := range suffixes {
		if p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
			return true
		}
	}
	return false
}
