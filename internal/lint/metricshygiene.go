package lint

import (
	"go/ast"
	"strings"
)

// analyzerMetricsHygiene keeps the metrics registry disciplined:
//
//   - Metric families are registered (metrics.NewCounter/NewGauge/
//     NewHistogram and their Vec forms) only at package init — in a
//     package-level var initializer or an init function. Registering from
//     a request path re-registers on every call, and the registry's
//     duplicate check turns that into a panic under load.
//   - Family names are literal strings carrying the "dap_" prefix, so the
//     exposition namespace stays greppable and collision-free.
//
// Pre-binding of vec children outside hot paths is enforced by the
// hotpath analyzer's *Vec.With rule; the two analyzers together give the
// register-at-init, bind-at-setup, observe-on-hotpath lifecycle.
var analyzerMetricsHygiene = &Analyzer{
	Name: "metricshygiene",
	Doc:  "metric families register at package init only, with literal dap_-prefixed names",
	Run:  runMetricsHygiene,
}

// metricsRegisterFunc matches the registry's package-level constructors.
func metricsRegisterFunc(name string) bool {
	switch name {
	case "NewCounter", "NewGauge", "NewHistogram",
		"NewCounterVec", "NewGaugeVec", "NewHistogramVec":
		return true
	}
	return false
}

func runMetricsHygiene(p *Package, r *Reporter) {
	match := func(call *ast.CallExpr) *ast.CallExpr {
		fn := p.callee(call)
		if fn == nil || recvNamed(fn) != "" || !metricsRegisterFunc(fn.Name()) {
			return nil
		}
		if fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/metrics") {
			return nil
		}
		return call
	}
	checkName := func(call *ast.CallExpr, where string) {
		if len(call.Args) == 0 {
			return
		}
		fn := p.callee(call)
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			r.Reportf(call.Args[0].Pos(), "%s metric family name must be a string literal (namespace stays greppable)%s", fn.Name(), where)
			return
		}
		if !strings.HasPrefix(strings.Trim(lit.Value, "`\""), "dap_") {
			r.Reportf(lit.Pos(), "metric family %s must carry the dap_ prefix", lit.Value)
		}
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				// Package-level var initializers: registration allowed;
				// still check the name.
				ast.Inspect(d, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && match(call) != nil {
						checkName(call, "")
					}
					return true
				})
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				isInit := d.Recv == nil && d.Name.Name == "init"
				name := p.funcName(d)
				ast.Inspect(d.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || match(call) == nil {
						return true
					}
					if !isInit {
						r.Reportf(call.Pos(), "%s registers metric family at run time; families register only at package init (var initializer or init()), or the duplicate check panics on re-registration", name)
					}
					checkName(call, "")
					return true
				})
			}
		}
	}
}
