// Fixture for the lockorder analyzer, type-checked as
// repro/internal/stream (one of the three scoped packages).
package stream

import (
	"slices"
	"sync"
)

type Store struct {
	mu sync.Mutex
	n  int
}

// Health takes the store mutex — calling it while holding deadlocks.
func (s *Store) Health() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// reentry calls an acquirer with the mutex held.
func (s *Store) reentry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.Health() // want lockorder "acquires that mutex"
}

// transitive re-entry is caught through the intra-package call graph.
func (s *Store) viaHelper() int { return s.Health() }

func (s *Store) reentryDeep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.viaHelper() // want lockorder "acquires that mutex"
}

// relock double-locks directly.
func (s *Store) relock() {
	s.mu.Lock()
	s.mu.Lock() // want lockorder "self-deadlock"
	s.mu.Unlock()
	s.mu.Unlock()
}

// unlockFirst releases before re-acquiring: a flushBatch-style helper
// that expects the caller to hold the mutex. Not an acquirer.
func (s *Store) unlockFirst() {
	s.mu.Unlock()
	s.n++
	s.mu.Lock()
}

// callsUnlockFirst is the legal pattern the first-action rule protects.
func (s *Store) callsUnlockFirst() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unlockFirst()
}

// earlyRelease drops the mutex before calling the acquirer: legal.
func (s *Store) earlyRelease() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	_ = s.Health()
}

type shard struct {
	mu sync.Mutex
	n  float64
}

// lockAllUnsorted acquires stripe locks in caller order: deadlock bait.
func lockAllUnsorted(shards []shard, keys []int) {
	for _, k := range keys {
		shards[k].mu.Lock() // want lockorder "without sorting"
	}
	for _, k := range keys {
		shards[k].mu.Unlock()
	}
}

// lockAllSorted is the ingestBatch idiom: sort, then acquire.
func lockAllSorted(shards []shard, keys []int) {
	slices.Sort(keys)
	for _, k := range keys {
		shards[k].mu.Lock()
	}
	for _, k := range keys {
		shards[k].mu.Unlock()
	}
}

// lockPerIteration holds one stripe at a time: no ordering needed.
func lockPerIteration(shards []shard, keys []int) float64 {
	var n float64
	for _, k := range keys {
		shards[k].mu.Lock()
		n += shards[k].n
		shards[k].mu.Unlock()
	}
	return n
}

// scrapeGauges is scrape-reachable and must not touch the store mutex.
//
//dapvet:scrape
func scrapeGauges(s *Store) {
	_ = s.Health() // want lockorder "scrape-reachable"
	scrapeHelper(s)
}

func scrapeHelper(s *Store) {
	_ = s.Health() // want lockorder "scrape-reachable"
}
