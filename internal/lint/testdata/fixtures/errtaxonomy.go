// Fixture for the errtaxonomy analyzer, type-checked as
// repro/internal/core.
package core

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the taxonomy itself: errors.New is exactly
// right here and must stay silent (var initializers are not functions).
var ErrFixture = errors.New("core: fixture sentinel")

func nakedNew() error {
	return errors.New("core: something went wrong") // want errtaxonomy "naked errors.New"
}

func errorfNoWrap(n int) error {
	return fmt.Errorf("core: bad count %d", n) // want errtaxonomy "without %w"
}

func nonLiteralFormat(format string) error {
	return fmt.Errorf(format) // want errtaxonomy "non-literal format"
}

func wrapped(n int) error {
	return fmt.Errorf("%w: bad count %d", ErrFixture, n)
}

func suppressedNew() error {
	return errors.New("io timeout") //dapvet:errtaxonomy-ok sentinel-free by design, matched by net retry loop
}
