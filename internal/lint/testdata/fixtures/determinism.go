// Fixture for the determinism analyzer, type-checked as
// repro/internal/stream. Positive cases carry want comments; the rest
// must stay silent.
package stream

import (
	"math/rand"
	"time"
)

// estimateBad is an entry by prefix; every nondeterminism fires.
func estimateBad(m map[string]float64) float64 {
	_ = time.Now() // want determinism "wall clock"
	var s float64
	for _, v := range m {
		s += v // want determinism "map-iteration order"
	}
	s += rand.Float64() // want determinism "randomness"
	return s
}

// estimateViaHelper only calls a helper; the closure walk carries the
// entry obligation into it.
func estimateViaHelper() {
	deepClock()
}

func deepClock() {
	_ = time.Since(time.Time{}) // want determinism "wall clock"
}

// replayCounts is a replay entry; integer accumulation over a map is
// order-independent and must stay silent, as must ranging a slice.
func replayCounts(m map[string]int, vs []float64) (int, float64) {
	n := 0
	for _, v := range m {
		n += v
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return n, s
}

// notAnEntryPoint is unreachable from any entry: the wall clock is fine
// here (rotation timers, metrics).
func notAnEntryPoint() time.Time {
	return time.Now()
}

// estimateAnnotated shows the justified escape hatch.
func estimateAnnotated() {
	_ = time.Now() //dapvet:nondeterministic-ok timing metric, not estimate state
}
