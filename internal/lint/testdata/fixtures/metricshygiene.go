// Fixture for the metricshygiene analyzer, type-checked as
// repro/internal/stream against the real metrics package.
package stream

import "repro/internal/metrics"

// Package-level registration with a dap_-prefixed literal: the idiom.
var metGood = metrics.NewCounter("dap_fixture_good_total", "fixture")

// A family name without the namespace prefix.
var metBadName = metrics.NewGauge("fixture_unprefixed", "fixture") // want metricshygiene "dap_ prefix"

func init() {
	// init-time registration is allowed; the name is still checked.
	_ = metrics.NewHistogram("dap_fixture_init_seconds", "fixture", nil)
}

// registerAtRuntime registers on every call: the duplicate check panics.
func registerAtRuntime(name string) {
	_ = metrics.NewCounter("dap_fixture_runtime_total", "fixture") // want metricshygiene "only at package init"
	_ = metrics.NewCounterVec(name, "fixture")                     // want metricshygiene "only at package init" // want metricshygiene "string literal"
}

func useCounter() {
	metGood.Inc()
}
