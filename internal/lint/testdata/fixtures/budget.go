// Fixture for the budget analyzer, type-checked as
// repro/internal/stream. Local stubs carry the repo's idiom names the
// analyzer anchors on.
package stream

import "errors"

type Accountant struct{}

func (a *Accountant) SpendN(user string, eps float64, n int) error { return nil }
func (a *Accountant) ForceSpend(user string, eps float64, n int)   {}
func (a *Accountant) Refund(user string, eps float64, n int)       {}

type shard struct{ n float64 }

func (sh *shard) addLocked(idx []int, vals []float64) { sh.n++ }

type Store struct{}

func (st *Store) AppendIngest(tenant, user string) (uint64, error) { return 0, nil }

var errDown = errors.New("down")

// mutateWithoutCharge touches the histogram before any charge.
func mutateWithoutCharge(sh *shard, idx []int, vals []float64) {
	sh.addLocked(idx, vals) // want budget "without a preceding Accountant charge"
}

// chargeNoRefund appends after a charge but can never roll it back.
func chargeNoRefund(a *Accountant, st *Store, sh *shard) error { // want budget "never refunds"
	if err := a.SpendN("u", 1, 1); err != nil {
		return err
	}
	if _, err := st.AppendIngest("t", "u"); err != nil { // want budget "without refunding"
		return errDown
	}
	sh.addLocked(nil, nil)
	return nil
}

// skipsRefundOnError has a refund elsewhere but not in the error branch.
func skipsRefundOnError(a *Accountant, st *Store, sh *shard, undo bool) error {
	if err := a.SpendN("u", 1, 1); err != nil {
		return err
	}
	if undo {
		a.Refund("u", 1, 1)
	}
	if _, err := st.AppendIngest("t", "u"); err != nil { // want budget "without refunding"
		return errDown
	}
	sh.addLocked(nil, nil)
	return nil
}

// chargeThenRefund is the contract: failed append rolls the charge back.
func chargeThenRefund(a *Accountant, st *Store, sh *shard) error {
	if err := a.SpendN("u", 1, 1); err != nil {
		return err
	}
	if _, err := st.AppendIngest("t", "u"); err != nil {
		a.Refund("u", 1, 1)
		return errDown
	}
	sh.addLocked(nil, nil)
	return nil
}

// replayForced is the recovery path: ForceSpend dominates the mutation
// and there is no store append to refund.
func replayForced(a *Accountant, sh *shard) {
	a.ForceSpend("u", 1, 1)
	sh.addLocked(nil, nil)
}
