// Fixture for the hotpath analyzer, type-checked as
// repro/internal/stream. Only annotated functions are checked.
package stream

import "fmt"

type histBuf struct {
	vals []float64
}

type CounterVec struct{}

func (cv *CounterVec) With(labels ...string) int { return len(labels) }

func sinkAny(v any) {}

//dapvet:hotpath
func hotViolations(b *histBuf, cv *CounterVec, x int) {
	_ = fmt.Sprint("hot")      // want hotpath "fmt"
	b.vals = append(b.vals, 1) // want hotpath "escaping slice"
	_ = cv.With("tenant")      // want hotpath "label set"
	sinkAny(x)                 // want hotpath "boxes"
	var v any
	v = struct{ a, b int }{} // want hotpath "boxes"
	_ = v
}

//dapvet:hotpath
func hotClean(local []float64, p *histBuf) float64 {
	local = append(local, 1) // local slice: not escaping through a field
	sinkAny(p)               // pointers are interface-word sized, no box
	sinkAny(nil)             // nil never allocates
	var s float64
	for _, v := range local {
		s += v
	}
	return s
}

// coldPath is unannotated: fmt is fine off the hot path.
func coldPath() string {
	return fmt.Sprintf("%v", 1)
}

//dapvet:hotpath
func hotSuppressed(x int) {
	sinkAny(x) //dapvet:hotpath-ok diagnostic-only branch, measured alloc-free
}
