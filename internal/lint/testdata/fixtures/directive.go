// Fixture for the //dapvet: directive grammar itself: malformed
// directives are findings, so a typo fails the build instead of silently
// disabling a rule. Type-checked as repro/internal/stream. The findings
// sit on the directive comment's own line, so the want comments below
// point one line up.
package stream

//dapvet:hotpth typo in the directive name
var misspelled int // want(-1) directive "unknown dapvet directive"

//dapvet:lockorder-ok
var unjustified int // want(-1) directive "needs a justification"

//dapvet:hotpath
var notAFunction int // want(-1) directive "must sit on a function's doc comment"

//dapvet:hotpath
func properlyAnnotated() {}

func body() {
	_ = misspelled
	_ = unjustified
	_ = notAFunction
	properlyAnnotated()
}
