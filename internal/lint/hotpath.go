package lint

import (
	"go/ast"
	"go/types"
)

// analyzerHotpath enforces the alloc-free ingest contract on functions
// annotated //dapvet:hotpath. Such a function may not:
//
//   - call into package fmt (every fmt call allocates, and Errorf walks
//     the format string);
//   - append into a slice reached through a field selector (`s.buf`) —
//     growing storage that outlives the call is how "alloc-free" claims
//     rot; pre-size in the constructor instead;
//   - call *Vec.With — label-set construction hashes and allocates; bind
//     the child once at setup and Observe/Add on the bound handle;
//   - convert a concrete value to an interface type (boxing allocates
//     unless the value is pointer-shaped).
//
// The annotation is a declaration of intent: it goes on the leaves the
// benchmarks hold to zero allocs/op, and dapvet keeps them that way.
var analyzerHotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//dapvet:hotpath functions must stay allocation-free (no fmt, escaping append, Vec.With, or interface boxing)",
	Run:  runHotpath,
}

func runHotpath(p *Package, r *Reporter) {
	for fd := range p.hot {
		if fd.Body == nil {
			continue
		}
		name := p.funcName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkHotCall(p, r, name, n)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						checkBoxing(p, r, name, n.Rhs[i], p.Info.TypeOf(n.Lhs[i]))
					}
				}
			}
			return true
		})
	}
}

func checkHotCall(p *Package, r *Reporter, name string, call *ast.CallExpr) {
	// append into a field-held slice: the backing array outlives the call.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if _, isPkg := p.Info.Uses[sel.Sel].(*types.PkgName); !isPkg {
					r.Reportf(call.Pos(), "%s appends into escaping slice %s on a hot path; pre-size it at construction", name, exprString(call.Args[0]))
				}
			}
		}
	}
	fn := p.callee(call)
	if fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			r.Reportf(call.Pos(), "%s calls fmt.%s on a hot path; fmt always allocates", name, fn.Name())
		}
		if fn.Name() == "With" {
			if recv := recvNamed(fn); len(recv) > 3 && recv[len(recv)-3:] == "Vec" {
				r.Reportf(call.Pos(), "%s constructs a label set (%s.With) on a hot path; bind the child once at setup", name, recv)
			}
		}
	}
	// Explicit conversion to an interface type: any(x), error(x).
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkBoxing(p, r, name, call.Args[0], tv.Type)
		return
	}
	// Arguments boxed into interface-typed parameters.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		checkBoxing(p, r, name, arg, pt)
	}
}

// checkBoxing reports when assigning expr to a target of interface type
// would box a multi-word or non-pointer-shaped concrete value.
func checkBoxing(p *Package, r *Reporter, name string, expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.IsNil() || tv.Value != nil {
		return // untyped nil and constants don't heap-allocate
	}
	at := tv.Type
	if at == nil || at == types.Typ[types.Invalid] || types.IsInterface(at) {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return // pointer-shaped: stored in the interface word directly
	}
	r.Reportf(expr.Pos(), "%s boxes a %s into an interface on a hot path; boxing allocates", name, at.String())
}
