package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerLockOrder checks three mutex-ordering contracts across
// internal/store, internal/stream and internal/transport:
//
//  1. Re-entry: a function that holds a mutex (tracked lexically by the
//     owner's named type and field, e.g. Store.mu) must not call, directly
//     or transitively within its package, a function that acquires the
//     same mutex. Helpers whose first action on a mutex is an Unlock
//     (flushBatch-style "caller holds it" helpers) are not acquirers.
//  2. Scrape reachability: functions annotated //dapvet:scrape, and
//     everything they reach in their package, must not call the Store
//     methods that take the store mutex (Health, SyncMetrics, Append*,
//     ...) — recovery holds that mutex while scrapes run (the PR 7
//     deadlock); scrapes go through the published-registry gate instead.
//  3. Stripe ordering: a loop that acquires indexed stripe locks without
//     releasing them in the loop body must be preceded by the sorted-keys
//     idiom (slices.Sort), or concurrent batches deadlock.
//
// The held-state walk is lexical and per-branch (branch bodies get a copy
// of the held set), which models the repo's lock/defer-unlock and
// early-unlock-and-return idioms without a full CFG.
var analyzerLockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no mutex re-entry, no store-mutex calls from scrape paths, stripe locks acquired in sorted order",
	Run:  runLockOrder,
}

// lockKey identifies a mutex by its owner's named type and field.
type lockKey struct{ recv, field string }

// Held/acquire kinds; write conflicts with everything, read with write.
const (
	lockRead  = 1
	lockWrite = 2
)

func runLockOrder(p *Package, r *Reporter) {
	if !p.pathIn("internal/store", "internal/stream", "internal/transport") {
		return
	}
	byObj := p.decls()
	acq := lockAcquirers(p, byObj)
	w := &lockWalker{p: p, r: r, acq: acq}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.fn = p.funcName(fd)
			w.stmts(fd.Body.List, lockState{})
			checkStripeLoops(p, r, fd)
		}
	}
	checkScrapeReach(p, r)
}

// lockKeyOf resolves a mutex owner expression to its key.
func (p *Package) lockKeyOf(owner ast.Expr, field string) (lockKey, bool) {
	t := p.Info.TypeOf(owner)
	if t == nil {
		return lockKey{}, false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return lockKey{}, false
	}
	return lockKey{recv: named.Obj().Name(), field: field}, true
}

// firstLockActions records, per mutex key, the first lexical action a
// function takes: positive = acquire (read/write), -1 = release. A
// function that releases first expects its caller to hold the mutex and
// is not an acquirer from the caller's point of view.
func firstLockActions(p *Package, fd *ast.FuncDecl) map[lockKey]int {
	acts := make(map[lockKey]int)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		owner, field, method, ok := p.mutexCall(call)
		if !ok {
			return true
		}
		k, ok := p.lockKeyOf(owner, field)
		if !ok || acts[k] != 0 {
			return true
		}
		switch method {
		case "Lock", "TryLock":
			acts[k] = lockWrite
		case "RLock":
			acts[k] = lockRead
		default:
			acts[k] = -1
		}
		return true
	})
	return acts
}

// lockAcquirers computes, for every function in the package, the mutexes
// it acquires directly or via intra-package calls (transitive fixpoint).
func lockAcquirers(p *Package, byObj map[*types.Func]*ast.FuncDecl) map[*types.Func]map[lockKey]int {
	acts := make(map[*types.Func]map[lockKey]int, len(byObj))
	callees := make(map[*types.Func][]*types.Func, len(byObj))
	acq := make(map[*types.Func]map[lockKey]int, len(byObj))
	for fn, fd := range byObj {
		if fd.Body == nil {
			acq[fn] = map[lockKey]int{}
			continue
		}
		acts[fn] = firstLockActions(p, fd)
		acq[fn] = make(map[lockKey]int)
		for k, a := range acts[fn] {
			if a > 0 {
				acq[fn][k] = a
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if g := p.callee(call); g != nil && g != fn {
					if _, inPkg := byObj[g]; inPkg {
						callees[fn] = append(callees[fn], g)
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn := range byObj {
			for _, g := range callees[fn] {
				for k, kind := range acq[g] {
					if acts[fn][k] == -1 {
						continue // fn releases this mutex before re-acquiring
					}
					if acq[fn][k] < kind {
						acq[fn][k] = kind
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// lockState is the set of mutexes lexically held at a program point.
type lockState map[lockKey]int

func (s lockState) copy() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// lockWalker runs the held-state walk over one function body.
type lockWalker struct {
	p   *Package
	r   *Reporter
	acq map[*types.Func]map[lockKey]int
	fn  string
}

func (w *lockWalker) stmts(list []ast.Stmt, held lockState) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if owner, field, method, ok := w.p.mutexCall(call); ok {
				w.apply(call, owner, field, method, held)
				return
			}
		}
		w.scan(s, held)
	case *ast.DeferStmt:
		if _, _, method, ok := w.p.mutexCall(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			return // releases at return; held for the rest of the body
		}
		w.scan(s.Call, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		w.stmts(s.Body.List, held.copy())
		if s.Else != nil {
			w.stmt(s.Else, held.copy())
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scan(s.Cond, held)
		}
		inner := held.copy()
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.scan(s.X, held)
		w.stmts(s.Body.List, held.copy())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scan(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.copy())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.copy())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.copy()
				if cc.Comm != nil {
					w.stmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// Runs on another goroutine; blocking there is not a self-deadlock.
	default:
		w.scan(s, held)
	}
}

// apply executes a top-level mutex call against the held state, reporting
// re-entrant acquisition.
func (w *lockWalker) apply(call *ast.CallExpr, owner ast.Expr, field, method string, held lockState) {
	k, ok := w.p.lockKeyOf(owner, field)
	if !ok {
		return
	}
	switch method {
	case "Lock":
		if held[k] > 0 {
			w.r.Reportf(call.Pos(), "%s locks %s.%s while already holding it (self-deadlock)", w.fn, exprString(owner), field)
		}
		held[k] = lockWrite
	case "TryLock":
		held[k] = lockWrite
	case "RLock":
		if held[k] == lockWrite {
			w.r.Reportf(call.Pos(), "%s read-locks %s.%s while write-holding it (self-deadlock)", w.fn, exprString(owner), field)
		}
		if held[k] < lockRead {
			held[k] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(held, k)
	}
}

// scan inspects a statement or expression subtree for calls that conflict
// with the held mutexes, without changing the held state. Function
// literals are skipped: when and where they run is not lexical.
func (w *lockWalker) scan(n ast.Node, held lockState) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if owner, field, method, ok := w.p.mutexCall(call); ok {
			if k, ok := w.p.lockKeyOf(owner, field); ok && (method == "Lock" || method == "RLock") {
				if h := held[k]; h == lockWrite || (h == lockRead && method == "Lock") {
					w.r.Reportf(call.Pos(), "%s acquires %s.%s while already holding it (self-deadlock)", w.fn, exprString(owner), field)
				}
			}
			return true
		}
		g := w.p.callee(call)
		if g == nil {
			return true
		}
		for k, kind := range w.acq[g] {
			if h := held[k]; h == lockWrite || (h == lockRead && kind == lockWrite) {
				w.r.Reportf(call.Pos(), "%s calls %s while holding %s.%s, and %s acquires that mutex (self-deadlock)", w.fn, g.Name(), k.recv, k.field, g.Name())
			}
		}
		return true
	})
}

// storeMutexMethod reports whether the named Store method takes the store
// mutex — the declared "needs store mutex" set scrapes must not touch.
func storeMutexMethod(name string) bool {
	switch name {
	case "Health", "SyncMetrics", "NextLSN", "WriteSnapshot", "Load", "Close":
		return true
	}
	return strings.HasPrefix(name, "Append")
}

// checkScrapeReach enforces rule 2: nothing reachable from a
// //dapvet:scrape function may call into the store-mutex method set.
func checkScrapeReach(p *Package, r *Reporter) {
	var entries []*ast.FuncDecl
	for fd := range p.scrape {
		entries = append(entries, fd)
	}
	if len(entries) == 0 {
		return
	}
	for fd := range p.closure(entries) {
		if fd.Body == nil {
			continue
		}
		name := p.funcName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.callee(call)
			if fn != nil && recvNamed(fn) == "Store" && storeMutexMethod(fn.Name()) {
				r.Reportf(call.Pos(), "scrape-reachable %s calls (*Store).%s, which takes the store mutex; recovery holds it while scrapes run — go through the published-registry gate", name, fn.Name())
			}
			return true
		})
	}
}

// checkStripeLoops enforces rule 3: a loop that acquires indexed stripe
// locks and holds them past the iteration must be preceded by a key sort.
func checkStripeLoops(p *Package, r *Reporter, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		lock := p.containsCall(body, func(call *ast.CallExpr) bool {
			owner, _, method, ok := p.mutexCall(call)
			if !ok || (method != "Lock" && method != "RLock") {
				return false
			}
			return containsIndex(owner)
		})
		if lock == nil {
			return true
		}
		unlocked := p.containsCall(body, func(call *ast.CallExpr) bool {
			_, _, method, ok := p.mutexCall(call)
			return ok && (method == "Unlock" || method == "RUnlock")
		})
		if unlocked != nil {
			return true // lock-per-iteration: only one held at a time
		}
		if !sortedBefore(p, fd, n.Pos()) {
			r.Reportf(lock.Pos(), "%s acquires stripe locks in a loop without sorting the keys first; unordered acquisition deadlocks concurrent batches (see ingestBatch)", p.funcName(fd))
		}
		return true
	})
}

// containsIndex reports whether the expression involves an index — the
// signature of a stripe (one lock out of an indexed set).
func containsIndex(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// sortedBefore reports whether the function calls a slices/sort sorting
// function lexically before pos.
func sortedBefore(p *Package, fd *ast.FuncDecl, pos token.Pos) bool {
	sorted := p.containsCall(fd.Body, func(call *ast.CallExpr) bool {
		if call.Pos() >= pos {
			return false
		}
		fn := p.callee(call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "slices", "sort":
			return strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Slice" || fn.Name() == "Ints" || fn.Name() == "Strings"
		}
		return false
	})
	return sorted != nil
}
