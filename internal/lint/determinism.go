package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerDeterminism enforces the bit-identical-recovery contract: the
// estimate and replay paths of internal/emf, internal/core and
// internal/stream must be deterministic. Replaying the WAL re-runs the
// same float accumulation, so these paths may not read the wall clock,
// draw randomness, or fold floats in map-iteration order.
//
// Entry points are package-specific: every function in internal/emf (the
// whole package is the deterministic EM solver), Estimate*/estimate* in
// internal/core (the Run* simulation drivers intentionally take a
// *rand.Rand and are exempt), and Estimate*/estimate*/replay*/Recover* in
// internal/stream. The check covers everything statically reachable from
// an entry within its package. Wall-clock reads that do not feed the
// estimate (metric timings, snapshot timestamps) are annotated
// //dapvet:nondeterministic-ok with a justification.
var analyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "estimate/replay paths must not use time.Now, math/rand, or map-order float accumulation",
	Run:  runDeterminism,
}

// determinismEntry reports whether the declaration anchors a
// deterministic path in the given package.
func determinismEntry(p *Package, fd *ast.FuncDecl) bool {
	switch {
	case p.pathIn("internal/emf"):
		return true
	case p.pathIn("internal/core"):
		return hasAnyPrefix(fd.Name.Name, "Estimate", "estimate")
	case p.pathIn("internal/stream"):
		return hasAnyPrefix(fd.Name.Name, "Estimate", "estimate", "replay", "Replay", "Recover")
	}
	return false
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

func runDeterminism(p *Package, r *Reporter) {
	if !p.pathIn("internal/emf", "internal/core", "internal/stream") {
		return
	}
	var entries []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && determinismEntry(p, fd) {
				entries = append(entries, fd)
			}
		}
	}
	for fd := range p.closure(entries) {
		if fd.Body == nil {
			continue
		}
		name := p.funcName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := p.callee(n)
				if fn == nil {
					return true
				}
				if isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since") {
					r.Reportf(n.Pos(), "%s reads the wall clock (time.%s) on an estimate/replay path; replay must be bit-identical", name, fn.Name())
				}
				if fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "math/rand", "math/rand/v2":
						r.Reportf(n.Pos(), "%s draws randomness (%s.%s) on an estimate/replay path; replay must be bit-identical", name, fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapOrderAccum(p, r, name, n)
			}
			return true
		})
	}
}

// checkMapOrderAccum flags `for _, v := range m { acc += ... }` where m is
// a map and acc has floating-point type: the iteration order varies run to
// run and float addition is not associative, so the accumulated value is
// nondeterministic.
func checkMapOrderAccum(p *Package, r *Reporter, name string, rng *ast.RangeStmt) {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok.String() {
		case "+=", "-=", "*=", "/=":
		default:
			return true
		}
		lt := p.Info.TypeOf(as.Lhs[0])
		if lt == nil {
			return true
		}
		if basic, ok := lt.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
			r.Reportf(as.Pos(), "%s accumulates floats in map-iteration order; extract and sort the keys first so replay is bit-identical", name)
		}
		return true
	})
}
