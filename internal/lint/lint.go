// Package lint is dapvet's engine: a stdlib-only static-analysis pass
// (go/parser + go/ast + go/types, export data via `go list -export`) that
// machine-checks the repository's correctness contracts. Each contract
// that previous PRs established in prose or by a test that happens to hit
// it — deterministic estimate/replay paths, allocation-free hot paths,
// store-mutex ordering, charge-then-refund budget accounting, the typed
// error taxonomy, init-time metric registration — is encoded as an
// analyzer that fails the build when the contract is broken.
//
// The analyzers are deliberately idiom-anchored: they match the repo's
// naming conventions (an `Accountant` with Spend/Refund, a `Store` with
// Append*, `shard.addLocked`, `*Vec.With`) rather than reimplementing a
// whole-program escape or alias analysis. That keeps the pass fast,
// dependency-free and reviewable, at the cost of being a lint, not a
// proof — intentional deviations are annotated in source with the
// `//dapvet:*` directive grammar (see directive.go) and carry a written
// justification that dapvet itself enforces.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the analyzer that fired (or "directive" for a malformed
	// //dapvet: comment).
	Rule string
	// Msg describes the violation and, where possible, the fix.
	Msg string
}

// String formats a finding as file:line:col: [rule] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one machine-checked contract.
type Analyzer struct {
	// Name is the rule name findings carry and suppressions reference.
	Name string
	// Doc is a one-line description of the contract.
	Doc string
	// Run inspects one package and reports violations.
	Run func(p *Package, r *Reporter)
}

// Analyzers returns the full rule set in documentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerDeterminism,
		analyzerHotpath,
		analyzerLockOrder,
		analyzerBudget,
		analyzerErrTaxonomy,
		analyzerMetricsHygiene,
	}
}

// AnalyzerNames returns the valid rule names (suppression targets).
func AnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Reporter collects findings for one analyzer over one package, applying
// that package's //dapvet:<rule>-ok suppressions.
type Reporter struct {
	pkg      *Package
	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos unless a suppression covers it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	position := r.pkg.Fset.Position(pos)
	if r.pkg.suppressed(r.rule, position) {
		return
	}
	*r.findings = append(*r.findings, Finding{
		Pos:  position,
		Rule: r.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run loads the packages matched by opts and runs every analyzer,
// returning all findings sorted by position. A non-nil error means the
// pass itself could not run (unparseable source, failed go list), not
// that findings exist.
func Run(opts Options) ([]Finding, error) {
	pkgs, err := Load(opts)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range pkgs {
		findings = append(findings, Lint(p)...)
	}
	Sort(findings)
	return findings, nil
}

// Lint runs every analyzer over one loaded package.
func Lint(p *Package) []Finding {
	var findings []Finding
	findings = append(findings, p.badDirectives...)
	for _, a := range Analyzers() {
		a.Run(p, &Reporter{pkg: p, rule: a.Name, findings: &findings})
	}
	return findings
}

// Sort orders findings by file, line, column, rule.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
