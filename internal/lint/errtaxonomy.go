package lint

import (
	"go/ast"
	"strings"
)

// analyzerErrTaxonomy enforces the typed-error contract in internal/core:
// validation failures must surface as wrapped sentinels (ErrBadSpec,
// ErrDomain, ErrBadCollection, ...) so callers can errors.Is on them. A
// naked errors.New or a fmt.Errorf whose format carries no %w produces an
// error nothing can classify — the transport layer then cannot map it to
// a status code and tests fall back to string matching.
var analyzerErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "internal/core errors must wrap a typed sentinel (%w); no naked errors.New/fmt.Errorf",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(p *Package, r *Reporter) {
	if !p.pathIn("internal/core") {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := p.funcName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := p.callee(call)
				if fn == nil {
					return true
				}
				if isPkgFunc(fn, "errors", "New") {
					r.Reportf(call.Pos(), "%s returns a naked errors.New; wrap a typed sentinel (ErrBadSpec/ErrDomain/...) with fmt.Errorf(\"%%w: ...\")", name)
					return true
				}
				if isPkgFunc(fn, "fmt", "Errorf") && len(call.Args) > 0 {
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok {
						r.Reportf(call.Pos(), "%s builds an error from a non-literal format; use a literal format wrapping a typed sentinel with %%w", name)
						return true
					}
					if !strings.Contains(lit.Value, "%w") {
						r.Reportf(call.Pos(), "%s returns fmt.Errorf without %%w; wrap a typed sentinel (ErrBadSpec/ErrDomain/...) so errors.Is works", name)
					}
				}
				return true
			})
		}
	}
}
