package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Each fixture file is type-checked as a standalone package claiming the
// import path of the repo package whose contracts it exercises, then run
// through every analyzer. Expected findings are declared inline:
//
//	code // want <rule> "substring"
//	code // want(-1) <rule> "substring"   (finding one line above)
//
// Every want must be hit by exactly matching findings and every finding
// must be declared by a want — fixtures prove both that a rule fires on
// the violation and that it stays silent on the idiomatic pattern.
var fixtureCases = []struct {
	file string
	path string
}{
	{"determinism.go", "repro/internal/stream"},
	{"hotpath.go", "repro/internal/stream"},
	{"lockorder.go", "repro/internal/stream"},
	{"budget.go", "repro/internal/stream"},
	{"errtaxonomy.go", "repro/internal/core"},
	{"metricshygiene.go", "repro/internal/stream"},
	{"directive.go", "repro/internal/stream"},
}

var wantRe = regexp.MustCompile(`// want(\(([+-]\d+)\))? (\w+) "([^"]*)"`)

type expectation struct {
	line int
	rule string
	sub  string
	hit  bool
}

func parseWants(t *testing.T, file string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			offset := 0
			if m[2] != "" {
				fmt.Sscanf(m[2], "%d", &offset)
			}
			wants = append(wants, &expectation{line: i + 1 + offset, rule: m[3], sub: m[4]})
		}
	}
	return wants
}

func TestFixtures(t *testing.T) {
	moduleDir := moduleRoot(t)
	for _, tc := range fixtureCases {
		t.Run(strings.TrimSuffix(tc.file, ".go"), func(t *testing.T) {
			file := filepath.Join("testdata", "fixtures", tc.file)
			wants := parseWants(t, file)
			if len(wants) == 0 {
				t.Fatalf("%s declares no expectations", tc.file)
			}
			pkg, err := CheckFixture(moduleDir, tc.path, []string{file})
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := Lint(pkg)
			Sort(findings)
			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if w.line == f.Pos.Line && w.rule == f.Rule && strings.Contains(f.Msg, w.sub) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("line %d: expected [%s] finding containing %q, got none", w.line, w.rule, w.sub)
				}
			}
		})
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoClean is the meta-test: dapvet must run clean on the tree it
// ships in, and a regression names the rule and position in CI output.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pass over the repo")
	}
	findings, err := Run(Options{Dir: moduleRoot(t)})
	if err != nil {
		t.Fatalf("dapvet could not run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("dapvet found %d finding(s); fix them or annotate with a justified //dapvet:<rule>-ok", len(findings))
	}
}
