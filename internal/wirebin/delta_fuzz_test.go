package wirebin

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDeltaDecode fuzzes the merge-wire decoder: no input may panic or
// over-allocate, and any accepted delta must re-encode canonically —
// encode(decode(x)) decodes back to the same delta, and the second
// encoding is a fixed point (the determinism the WAL replay path and
// the merge property tests rely on).
func FuzzDeltaDecode(f *testing.F) {
	seed := func(d *Delta) {
		frame, err := EncodeDelta(d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame...))
	}
	seed(testDelta())
	seed(&Delta{
		Node: "n", Tenant: "", Epoch: 0, Seq: 1 << 40,
		Counts:     [][]float64{{0}},
		Ns:         []float64{0},
		StripeSums: [][]float64{{math.Copysign(0, -1)}},
	})
	seed(&Delta{
		Node: "node-with-a-much-longer-identity", Tenant: "t", Epoch: 42, Seq: 42,
		Counts:     [][]float64{{1 << 33, 2, 3}, {math.NaN(), math.Inf(-1), -0.25}},
		Ns:         []float64{1<<33 + 5, 3},
		StripeSums: [][]float64{{1e300, -1e-300}, {0, 0}},
		Spend:      []SpendEntry{{User: "u1", Eps: math.Inf(1)}, {User: "u2", Eps: 0}},
	})
	f.Add([]byte{})
	f.Add([]byte("DAPD"))
	f.Add([]byte("DAPF not a delta"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		d, err := DecodeDelta(payload)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		canon, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("accepted delta fails to re-encode: %v", err)
		}
		d2, err := DecodeDelta(canon)
		if err != nil {
			t.Fatalf("canonical re-encoding fails to decode: %v", err)
		}
		if !deltasEqual(d, d2) {
			t.Fatalf("re-encoding changed the delta:\n was %+v\n now %+v", d, d2)
		}
		canon2, err := EncodeDelta(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
