//go:build race

package wirebin

// raceEnabled mirrors the -race flag so allocation-sensitive tests can
// skip themselves: race instrumentation adds allocations that production
// builds never see.
const raceEnabled = true
