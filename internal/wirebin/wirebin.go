// Package wirebin is the compact binary ingest wire: a versioned,
// CRC-framed batch format carrying LDP reports at a few bytes per report,
// built for the multi-million-reports/s ingest path where JSON
// serialization and per-value tokenization are the ceiling.
//
// One frame is one ingest batch: a fixed header (magic, version, batch
// sequence), the tenant name, and a run of entries — front-coded user ids
// (each user id stores only the byte suffix it does not share with the
// previous entry's id, which collapses the generated "u000123"-style id
// streams to one or two bytes), varint group ids, and the report values
// either varint-packed (when every value is a small non-negative integer
// — discretizer bucket indices and frequency categories, reconstructed
// bit-exactly) or as raw little-endian float64 payloads when a raw
// perturbed value is required. A CRC-32C trailer covers the whole frame,
// so a torn or corrupted datagram is rejected as a unit.
//
// The same frame travels over two transports: as an HTTP request body
// with Content-Type application/x-dap-frame (lossless, acked per batch)
// and as one UDP datagram per frame (best-effort; the batch sequence in
// the header lets the receiver count dropped frames). Frames decode into
// store.IngestEntry slices — the exact type Tenant.IngestBatch consumes —
// so WAL group-commit, budget charging and stripe-ordered apply are
// shared verbatim with the JSON path.
//
// Encoding and decoding are allocation-free in the steady state: the
// Encoder appends into one reused buffer, and the Decoder materializes
// entries into reused arenas, interning user-id and tenant strings so a
// returning user costs a map lookup, not an allocation.
package wirebin

import (
	"errors"
	"hash/crc32"
	"math"

	"repro/internal/store"
)

// Entry is one report in a frame. It aliases the store's WAL entry type
// (which stream.BatchEntry also aliases), so decoded frames feed
// Tenant.IngestBatch and Store.AppendIngestBatch without copying.
type Entry = store.IngestEntry

// ContentType is the HTTP media type for a frame request body.
const ContentType = "application/x-dap-frame"

// ContentTypeStream is the HTTP media type for a body carrying several
// frames back to back, each preceded by a uvarint byte length. One
// request then amortizes the HTTP round trip over many frames while the
// frame format itself stays datagram-compatible.
const ContentTypeStream = "application/x-dap-frame-stream"

// Format constants. Version bumps when the layout changes; decoders
// reject versions they do not speak rather than guessing.
const (
	// Version is the frame layout version this package encodes.
	Version = 1

	// headerSize is the fixed prefix: magic (4), version (1), flags (1),
	// sequence (8).
	headerSize = 14
	// trailerSize is the CRC-32C suffix.
	trailerSize = 4

	// valuesVarint packs every value of the entry as a uvarint — exact
	// for the non-negative integers bucket indices and categories are.
	valuesVarint = 0
	// valuesFloat64 stores every value as 8 raw little-endian bytes.
	valuesFloat64 = 1
)

// Hard limits. They bound what a hostile or corrupted frame can make the
// decoder allocate; the encoder enforces the same limits so every encoded
// frame decodes.
const (
	// MaxTenantLen and MaxUserLen bound the identifier strings.
	MaxTenantLen = 255
	MaxUserLen   = 255
	// MaxFrameEntries bounds the entries of one frame.
	MaxFrameEntries = 1 << 16
	// MaxEntryValues bounds the values of one entry (a user reports at
	// most 2^t times for group t; this is far above any real layout).
	MaxEntryValues = 1 << 12
	// MaxFrameBytes bounds a whole frame. HTTP bodies may use all of it;
	// UDP senders should stay under MaxDatagramBytes.
	MaxFrameBytes = 1 << 20
	// MaxDatagramBytes is the largest frame that still fits one UDP
	// datagram with headroom for the IP/UDP headers.
	MaxDatagramBytes = 60 << 10
)

// magic identifies a frame ("DAP frame").
var magic = [4]byte{'D', 'A', 'P', 'F'}

// crcTable is the Castagnoli polynomial, matching the WAL's framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. They are sentinel values (not formatted) so the decode
// hot path stays allocation-free; transports wrap them with context.
var (
	// ErrFrameTooShort reports a buffer smaller than header + trailer.
	ErrFrameTooShort = errors.New("wirebin: frame too short")
	// ErrBadMagic reports a buffer that is not a frame at all.
	ErrBadMagic = errors.New("wirebin: bad frame magic")
	// ErrBadVersion reports a frame version this decoder does not speak.
	ErrBadVersion = errors.New("wirebin: unsupported frame version")
	// ErrBadCRC reports a checksum mismatch (torn or corrupted frame).
	ErrBadCRC = errors.New("wirebin: frame CRC mismatch")
	// ErrCorrupt reports a structurally invalid frame body (truncated
	// varint, limit overflow, out-of-range front-coding prefix).
	ErrCorrupt = errors.New("wirebin: corrupt frame body")
	// ErrFrameTooLarge reports an encode exceeding MaxFrameBytes or a
	// field exceeding its limit.
	ErrFrameTooLarge = errors.New("wirebin: frame exceeds size limits")
)

// An Encoder builds frames into one reused buffer.
//
// The returned frame aliases the encoder's internal buffer and is valid
// until the next Encode call; senders that need to retain a frame copy it.
// An Encoder is not safe for concurrent use — give each sender goroutine
// its own.
type Encoder struct {
	buf []byte
}

// Encode builds one frame: tenant (may be empty when the transport
// carries the tenant out of band, as HTTP routes do), batch sequence seq
// (0 = unsequenced; UDP senders use 1,2,3,… so receivers can count gaps)
// and the batch entries. It fails — without producing a frame — when an
// identifier, an entry or the whole frame exceeds the format limits, or
// when an entry is empty (the engine would reject it anyway, and an empty
// user id would break front-coding).
func (e *Encoder) Encode(tenant string, seq uint64, entries []Entry) ([]byte, error) {
	if len(tenant) > MaxTenantLen || len(entries) > MaxFrameEntries {
		return nil, ErrFrameTooLarge
	}
	if len(entries) == 0 {
		return nil, ErrCorrupt
	}
	b := e.buf[:0]
	b = append(b, magic[:]...)
	b = append(b, Version, 0)
	b = appendUint64(b, seq)
	b = appendUvarint(b, uint64(len(tenant)))
	b = append(b, tenant...)
	b = appendUvarint(b, uint64(len(entries)))
	prev := ""
	for i := range entries {
		ent := &entries[i]
		if len(ent.User) == 0 || len(ent.User) > MaxUserLen ||
			ent.Group < 0 || len(ent.Values) == 0 || len(ent.Values) > MaxEntryValues {
			e.buf = b[:0]
			return nil, ErrCorrupt
		}
		p := commonPrefix(prev, ent.User)
		b = appendUvarint(b, uint64(p))
		b = appendUvarint(b, uint64(len(ent.User)-p))
		b = append(b, ent.User[p:]...)
		b = appendUvarint(b, uint64(ent.Group))
		b = appendUvarint(b, uint64(len(ent.Values)))
		if packable(ent.Values) {
			b = append(b, valuesVarint)
			for _, v := range ent.Values {
				b = appendUvarint(b, uint64(v))
			}
		} else {
			b = append(b, valuesFloat64)
			for _, v := range ent.Values {
				b = appendUint64(b, math.Float64bits(v))
			}
		}
		prev = ent.User
	}
	if len(b)+trailerSize > MaxFrameBytes {
		e.buf = b[:0]
		return nil, ErrFrameTooLarge
	}
	b = appendUint32(b, crc32.Checksum(b, crcTable))
	e.buf = b
	return b, nil
}

// packable reports whether every value is a non-negative integer below
// 2^32 with a positive sign bit — the values varint packing reconstructs
// bit-exactly (bucket indices, categories). Anything else (fractions,
// negatives, negative zero, NaN, ±Inf, huge integers) takes the raw
// float64 payload.
func packable(values []float64) bool {
	for _, v := range values {
		if math.Signbit(v) || v != math.Trunc(v) || v >= 1<<32 {
			return false
		}
	}
	return true
}

// commonPrefix returns the length of the longest shared prefix of a and b.
func commonPrefix(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// appendUvarint appends x in LEB128 (unsigned varint) form.
//
//dapvet:hotpath
func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// appendUint64 appends x little-endian.
//
//dapvet:hotpath
func appendUint64(b []byte, x uint64) []byte {
	return append(b,
		byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

// appendUint32 appends x little-endian.
//
//dapvet:hotpath
func appendUint32(b []byte, x uint32) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}
