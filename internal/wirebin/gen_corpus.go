//go:build ignore

// gen_corpus regenerates the committed FuzzFrameDecode seed corpus:
//
//	go run gen_corpus.go
//
// Run it from internal/wirebin after a format change so the corpus under
// testdata/fuzz/FuzzFrameDecode/ keeps covering every frame shape.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro/internal/wirebin"
)

func main() {
	var enc wirebin.Encoder
	frame := func(tenant string, seq uint64, entries []wirebin.Entry) []byte {
		b, err := enc.Encode(tenant, seq, entries)
		if err != nil {
			log.Fatal(err)
		}
		return append([]byte(nil), b...)
	}
	one := func(user string, group int, values ...float64) wirebin.Entry {
		return wirebin.Entry{User: user, Group: group, Values: values}
	}
	seeds := [][]byte{
		// Minimal single-entry frame, varint-packed value.
		frame("default", 1, []wirebin.Entry{one("lg0", 0, 3)}),
		// Float payloads including the bit-exactness hazards.
		frame("t", 2, []wirebin.Entry{
			one("lg0", 0, 0.25, -0.75),
			one("lg1", 1, math.NaN(), math.Inf(1), math.Inf(-1)),
			one("lg2", 2, math.Copysign(0, -1)),
		}),
		// Empty tenant (HTTP route-scoped), repeated user (suffix 0).
		frame("", 0, []wirebin.Entry{one("alice", 4, 1), one("alice", 5, 2)}),
		// Deep front-coding over a dense generated id stream.
		frame("tenant-with-a-longer-name", 1<<40, []wirebin.Entry{
			one("user00000000", 0, 7), one("user00000001", 0, 0),
			one("user00000002", 1, 4294967295), one("user00001000", 2, 1, 2, 3, 4, 5),
		}),
		// Truncated and corrupt shapes for the reject paths.
		[]byte{},
		[]byte("DAPF"),
		[]byte("DAPF\x01\x00garbage-after-header-no-crc"),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)", string(s))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}
