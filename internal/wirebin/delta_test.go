package wirebin

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
)

// appendCRC seals a hand-built body with the frame trailer.
func appendCRC(body []byte) []byte {
	return appendUint32(body, crc32.Checksum(body, crcTable))
}

// testDelta builds a representative delta: two groups, three stripes,
// integer-valued counts next to a raw-mode group, and an unsorted spend
// ledger the encoder must canonicalize.
func testDelta() *Delta {
	return &Delta{
		Node:   "node-a",
		Tenant: "default",
		Epoch:  7,
		Seq:    7,
		Counts: [][]float64{
			{3, 0, 1, 9},
			{0, 0.5, math.Inf(1), -1},
		},
		Ns: []float64{13, 2.5},
		StripeSums: [][]float64{
			{1.25, -0.5, 0},
			{math.Copysign(0, -1), 3.75, math.NaN()},
		},
		Spend: []SpendEntry{
			{User: "carol", Eps: 2},
			{User: "alice", Eps: 1},
			{User: "bob", Eps: 0.0625},
		},
	}
}

// deltasEqual compares deltas with bit-level float semantics (NaN-safe,
// −0 ≠ +0 — the merge plane preserves bit patterns, so the tests must
// distinguish them too).
func deltasEqual(a, b *Delta) bool {
	if a.Node != b.Node || a.Tenant != b.Tenant || a.Epoch != b.Epoch || a.Seq != b.Seq {
		return false
	}
	bits := func(xs []float64) []uint64 {
		out := make([]uint64, len(xs))
		for i, x := range xs {
			out[i] = math.Float64bits(x)
		}
		return out
	}
	if len(a.Counts) != len(b.Counts) || len(a.StripeSums) != len(b.StripeSums) {
		return false
	}
	for g := range a.Counts {
		if !reflect.DeepEqual(bits(a.Counts[g]), bits(b.Counts[g])) ||
			!reflect.DeepEqual(bits(a.StripeSums[g]), bits(b.StripeSums[g])) {
			return false
		}
	}
	return reflect.DeepEqual(bits(a.Ns), bits(b.Ns)) &&
		reflect.DeepEqual(a.Spend, b.Spend)
}

func TestDeltaRoundTrip(t *testing.T) {
	d := testDelta()
	frame, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDelta(frame); err != nil {
		t.Fatalf("VerifyDelta: %v", err)
	}
	got, err := DecodeDelta(frame)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	want := testDelta()
	// The wire ledger is sorted; the round-tripped delta carries it that way.
	want.Spend = []SpendEntry{
		{User: "alice", Eps: 1},
		{User: "bob", Eps: 0.0625},
		{User: "carol", Eps: 2},
	}
	if !deltasEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDeltaEncodeDeterministic(t *testing.T) {
	a, err := EncodeDelta(testDelta())
	if err != nil {
		t.Fatal(err)
	}
	// Same content, different spend order in memory.
	d := testDelta()
	d.Spend[0], d.Spend[2] = d.Spend[2], d.Spend[0]
	b, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same delta content encoded to different bytes")
	}
}

func TestDeltaEncodeDoesNotMutate(t *testing.T) {
	d := testDelta()
	if _, err := EncodeDelta(d); err != nil {
		t.Fatal(err)
	}
	if d.Spend[0].User != "carol" {
		t.Fatal("EncodeDelta reordered the caller's spend slice")
	}
}

func TestDeltaCorruptionDetected(t *testing.T) {
	frame, err := EncodeDelta(testDelta())
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= flip
			if err := VerifyDelta(mut); err == nil {
				t.Fatalf("byte %d flipped by %#x passed verification", i, flip)
			}
		}
	}
	if err := VerifyDelta(frame[:deltaHeaderSize]); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("short frame: got %v, want ErrFrameTooShort", err)
	}
	notDelta := append([]byte("DAPF"), frame[4:]...)
	if err := VerifyDelta(notDelta); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("ingest magic: got %v, want ErrBadMagic", err)
	}
}

// TestDeltaIngestDecoderRejects keeps the two frame kinds disjoint: an
// ingest decoder fed a delta frame (and vice versa) must fail on magic,
// not misparse.
func TestDeltaIngestDecoderRejects(t *testing.T) {
	frame, err := EncodeDelta(testDelta())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(frame); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("ingest Verify on delta frame: got %v, want ErrBadMagic", err)
	}
	var enc Encoder
	ingest, err := enc.Encode("default", 1, []Entry{{User: "u", Group: 0, Values: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDelta(ingest); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("VerifyDelta on ingest frame: got %v, want ErrBadMagic", err)
	}
}

func TestDeltaEncodeRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Delta){
		"empty node":       func(d *Delta) { d.Node = "" },
		"no groups":        func(d *Delta) { d.Counts = nil; d.Ns = nil; d.StripeSums = nil },
		"ragged ns":        func(d *Delta) { d.Ns = d.Ns[:1] },
		"ragged stripes":   func(d *Delta) { d.StripeSums[1] = d.StripeSums[1][:1] },
		"empty group":      func(d *Delta) { d.Counts[0] = nil },
		"duplicate ledger": func(d *Delta) { d.Spend[0].User = "bob" },
		"empty user":       func(d *Delta) { d.Spend[1].User = "" },
	}
	for name, mutate := range cases {
		d := testDelta()
		mutate(d)
		if _, err := EncodeDelta(d); err == nil {
			t.Errorf("%s: encode accepted a malformed delta", name)
		}
	}
}

func TestDeltaDecodeRejectsUnsortedLedger(t *testing.T) {
	d := testDelta()
	d.Spend = d.Spend[:2] // carol, alice — encoder would sort them
	frame, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-corrupt: swap the two ledger entries in the encoded body and
	// re-seal the CRC, producing a syntactically valid but unsorted frame.
	body := frame[:len(frame)-trailerSize]
	alice := bytes.Index(body, []byte("\x05alice"))
	carol := bytes.Index(body, []byte("\x05carol"))
	if alice < 0 || carol < 0 || alice+14 != carol {
		t.Fatalf("unexpected ledger layout (alice@%d carol@%d)", alice, carol)
	}
	swapped := append([]byte(nil), body[:alice]...)
	swapped = append(swapped, body[carol:carol+14]...)
	swapped = append(swapped, body[alice:alice+14]...)
	swapped = appendCRC(swapped)
	if _, err := DecodeDelta(swapped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsorted ledger: got %v, want ErrCorrupt", err)
	}
}

func TestDeltaDecodeLimits(t *testing.T) {
	// A tiny frame claiming 2^20 spends must be rejected by the
	// remaining-bytes bound before any allocation.
	d := testDelta()
	d.Spend = nil
	frame, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[:len(frame)-trailerSize]
	if body[len(body)-1] != 0 {
		t.Fatal("expected trailing zero spend count")
	}
	huge := append([]byte(nil), body[:len(body)-1]...)
	huge = append(huge, 0x80, 0x80, 0x40) // uvarint 2^20
	huge = appendCRC(huge)
	if _, err := DecodeDelta(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized spend count: got %v, want ErrCorrupt", err)
	}
}
