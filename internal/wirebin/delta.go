package wirebin

import (
	"hash/crc32"
	"math"
	"sort"
)

// Delta frames — the merge wire.
//
// A delta frame carries one node's sealed epoch for one tenant to the
// coordinator: the per-group bucket counts and report totals, the
// per-stripe value sums, and the node's cumulative per-user budget
// ledger. Deltas reuse the ingest frame's engineering (little-endian
// fixed header, uvarint packing, CRC-32C trailer) under a distinct
// magic ("DAPD" vs "DAPF") so the two decoders never confuse each
// other's bytes and the v1 ingest decoder — which rejects any nonzero
// flag byte — stays byte-compatible.
//
// Layout (all multi-byte integers little-endian):
//
//	magic     [4]byte  "DAPD"
//	version   u8       1
//	flags     u8       reserved, must be zero
//	epoch     u64      sealed epoch index (tenant seq after the seal)
//	seq       u64      node-local delta sequence, for duplicate drops
//	node      uvarint len | bytes
//	tenant    uvarint len | bytes
//	groups    uvarint
//	stripes   uvarint  lock stripes per group histogram
//	per group:
//	  buckets uvarint
//	  mode    u8       0 = counts as uvarints, 1 = raw float64 bits
//	  counts  buckets × (uvarint | u64 bits)
//	  n       uvarint | u64 bits (same mode)
//	  sums    stripes × u64 float64 bits (per-stripe value sums)
//	spends    uvarint
//	per spend, sorted by user, strictly increasing:
//	  user    uvarint len | bytes
//	  eps     u64 float64 bits
//	crc32c    u32      Castagnoli, over everything above
//
// Bucket counts and report totals are integer-valued by construction
// (each accepted value increments one bucket by one), so the uvarint
// mode is the norm; the raw mode is a safety hatch that keeps encoding
// total for any float64. Per-stripe sums are always raw bits: they are
// true floating-point accumulations whose bit pattern the coordinator
// must preserve to reproduce the single-node stripe fold exactly.
//
// Encoding is deterministic: one delta has exactly one byte
// representation (spends sorted, canonical uvarints), so WAL replay and
// property tests can compare frames byte-for-byte.

// DeltaContentType is the media type of a delta frame on the merge wire.
const DeltaContentType = "application/x-dap-delta"

// Delta frame limits. Deltas are coordinator-to-node traffic on the
// lossless HTTP wire only, so the size cap is generous compared to
// ingest frames: the spend ledger grows with the node's user
// population.
const (
	// MaxDeltaBytes caps a whole encoded delta frame.
	MaxDeltaBytes = 16 << 20
	// MaxDeltaGroups caps the group count in one delta.
	MaxDeltaGroups = 1 << 10
	// MaxDeltaBuckets caps one group's histogram resolution.
	MaxDeltaBuckets = 1 << 16
	// MaxDeltaStripes caps the per-group stripe count.
	MaxDeltaStripes = 1 << 12
	// MaxDeltaSpends caps the ledger entries in one delta.
	MaxDeltaSpends = 1 << 21
	// MaxNodeLen caps the node identifier length.
	MaxNodeLen = 255
)

const (
	deltaHeaderSize = 4 + 1 + 1 + 8 + 8
	deltaCountsU64  = 1 // group count mode: raw float64 bits
	deltaCountsUv   = 0 // group count mode: uvarints
)

var deltaMagic = [4]byte{'D', 'A', 'P', 'D'}

// SpendEntry is one user's cumulative budget spend inside a Delta.
type SpendEntry struct {
	User string
	Eps  float64
}

// Delta is one node's sealed epoch for one tenant, decoded. Counts and
// Ns mirror the engine's per-group histograms; StripeSums[g][s] is the
// value sum accumulated by stripe s of group g, kept separate so the
// coordinator can re-fold stripes in index order and reproduce the
// single-node sum bit-for-bit. Spend is the node's cumulative per-user
// ledger at seal time, sorted by user.
type Delta struct {
	Node   string
	Tenant string
	Epoch  uint64
	Seq    uint64

	Counts     [][]float64
	Ns         []float64
	StripeSums [][]float64
	Spend      []SpendEntry
}

// packableScalar reports whether v survives a uvarint round trip.
func packableScalar(v float64) bool {
	u := uint64(v)
	return v == math.Trunc(v) && v >= 0 && v < (1<<53) && float64(u) == v
}

// EncodeDelta serializes d into a fresh CRC-sealed delta frame.
// Encoding is total for any finite or non-finite float64 content and
// deterministic: Spend is sorted (a copy — d is not mutated) and every
// integer takes its canonical uvarint form.
func EncodeDelta(d *Delta) ([]byte, error) {
	if len(d.Node) == 0 || len(d.Node) > MaxNodeLen || len(d.Tenant) > MaxTenantLen {
		return nil, ErrCorrupt
	}
	groups := len(d.Counts)
	if groups == 0 || groups > MaxDeltaGroups ||
		len(d.Ns) != groups || len(d.StripeSums) != groups {
		return nil, ErrCorrupt
	}
	stripes := len(d.StripeSums[0])
	if stripes == 0 || stripes > MaxDeltaStripes {
		return nil, ErrCorrupt
	}
	if len(d.Spend) > MaxDeltaSpends {
		return nil, ErrFrameTooLarge
	}
	b := make([]byte, 0, deltaHeaderSize+256)
	b = append(b, deltaMagic[:]...)
	b = append(b, Version, 0)
	b = appendUint64(b, d.Epoch)
	b = appendUint64(b, d.Seq)
	b = appendUvarint(b, uint64(len(d.Node)))
	b = append(b, d.Node...)
	b = appendUvarint(b, uint64(len(d.Tenant)))
	b = append(b, d.Tenant...)
	b = appendUvarint(b, uint64(groups))
	b = appendUvarint(b, uint64(stripes))
	for g := 0; g < groups; g++ {
		counts := d.Counts[g]
		if len(counts) == 0 || len(counts) > MaxDeltaBuckets {
			return nil, ErrCorrupt
		}
		if len(d.StripeSums[g]) != stripes {
			return nil, ErrCorrupt
		}
		b = appendUvarint(b, uint64(len(counts)))
		mode := byte(deltaCountsUv)
		if !packable(counts) || !packableScalar(d.Ns[g]) {
			mode = deltaCountsU64
		}
		b = append(b, mode)
		for _, c := range counts {
			if mode == deltaCountsUv {
				b = appendUvarint(b, uint64(c))
			} else {
				b = appendUint64(b, math.Float64bits(c))
			}
		}
		if mode == deltaCountsUv {
			b = appendUvarint(b, uint64(d.Ns[g]))
		} else {
			b = appendUint64(b, math.Float64bits(d.Ns[g]))
		}
		for _, s := range d.StripeSums[g] {
			b = appendUint64(b, math.Float64bits(s))
		}
	}
	spend := make([]SpendEntry, len(d.Spend))
	copy(spend, d.Spend)
	sort.Slice(spend, func(i, j int) bool { return spend[i].User < spend[j].User })
	b = appendUvarint(b, uint64(len(spend)))
	prev := ""
	for i, e := range spend {
		if len(e.User) == 0 || len(e.User) > MaxUserLen {
			return nil, ErrCorrupt
		}
		if i > 0 && e.User <= prev {
			return nil, ErrCorrupt // duplicate user in the ledger
		}
		prev = e.User
		b = appendUvarint(b, uint64(len(e.User)))
		b = append(b, e.User...)
		b = appendUint64(b, math.Float64bits(e.Eps))
	}
	if len(b)+trailerSize > MaxDeltaBytes {
		return nil, ErrFrameTooLarge
	}
	b = appendUint32(b, crc32.Checksum(b, crcTable))
	return b, nil
}

// VerifyDelta checks framing and the CRC without decoding the body —
// the cheap first gate before a delta enters the WAL.
func VerifyDelta(buf []byte) error {
	if len(buf) < deltaHeaderSize+trailerSize {
		return ErrFrameTooShort
	}
	if len(buf) > MaxDeltaBytes {
		return ErrFrameTooLarge
	}
	if buf[0] != deltaMagic[0] || buf[1] != deltaMagic[1] ||
		buf[2] != deltaMagic[2] || buf[3] != deltaMagic[3] {
		return ErrBadMagic
	}
	if buf[4] != Version {
		return ErrBadVersion
	}
	if buf[5] != 0 {
		return ErrCorrupt // reserved flags must be zero in v1
	}
	body, trailer := buf[:len(buf)-trailerSize], buf[len(buf)-trailerSize:]
	if crc32.Checksum(body, crcTable) != le32(trailer) {
		return ErrBadCRC
	}
	return nil
}

// DecodeDelta verifies and decodes one delta frame. The returned Delta
// aliases nothing in buf.
func DecodeDelta(buf []byte) (*Delta, error) {
	if err := VerifyDelta(buf); err != nil {
		return nil, err
	}
	d := &Delta{
		Epoch: le64(buf[6:14]),
		Seq:   le64(buf[14:22]),
	}
	p := buf[deltaHeaderSize : len(buf)-trailerSize]
	var ok bool
	if d.Node, p, ok = deltaString(p, MaxNodeLen); !ok || d.Node == "" {
		return nil, ErrCorrupt
	}
	if d.Tenant, p, ok = deltaString(p, MaxTenantLen); !ok {
		return nil, ErrCorrupt
	}
	var groups, stripes uint64
	if groups, p, ok = readUvarint(p); !ok || groups == 0 || groups > MaxDeltaGroups {
		return nil, ErrCorrupt
	}
	if stripes, p, ok = readUvarint(p); !ok || stripes == 0 || stripes > MaxDeltaStripes {
		return nil, ErrCorrupt
	}
	d.Counts = make([][]float64, groups)
	d.Ns = make([]float64, groups)
	d.StripeSums = make([][]float64, groups)
	for g := range d.Counts {
		var buckets uint64
		if buckets, p, ok = readUvarint(p); !ok || buckets == 0 || buckets > MaxDeltaBuckets {
			return nil, ErrCorrupt
		}
		// A uvarint-mode bucket costs ≥ 1 byte, a raw one 8: either way
		// the remaining bytes bound the claimed count before allocating.
		if buckets > uint64(len(p)) {
			return nil, ErrCorrupt
		}
		if len(p) < 1 {
			return nil, ErrCorrupt
		}
		mode := p[0]
		p = p[1:]
		if mode != deltaCountsUv && mode != deltaCountsU64 {
			return nil, ErrCorrupt
		}
		counts := make([]float64, buckets)
		for b := range counts {
			if counts[b], p, ok = deltaScalar(p, mode); !ok {
				return nil, ErrCorrupt
			}
		}
		d.Counts[g] = counts
		if d.Ns[g], p, ok = deltaScalar(p, mode); !ok {
			return nil, ErrCorrupt
		}
		if uint64(len(p)) < 8*stripes {
			return nil, ErrCorrupt
		}
		sums := make([]float64, stripes)
		for s := range sums {
			sums[s] = math.Float64frombits(le64(p[:8]))
			p = p[8:]
		}
		d.StripeSums[g] = sums
	}
	var spends uint64
	if spends, p, ok = readUvarint(p); !ok || spends > MaxDeltaSpends {
		return nil, ErrCorrupt
	}
	// Each ledger entry costs at least 1 (len) + 1 (user) + 8 (bits).
	if spends > uint64(len(p))/10 {
		return nil, ErrCorrupt
	}
	d.Spend = make([]SpendEntry, spends)
	prev := ""
	for i := range d.Spend {
		var user string
		if user, p, ok = deltaString(p, MaxUserLen); !ok || user == "" {
			return nil, ErrCorrupt
		}
		if i > 0 && user <= prev {
			return nil, ErrCorrupt // ledger must be strictly sorted
		}
		prev = user
		if len(p) < 8 {
			return nil, ErrCorrupt
		}
		d.Spend[i] = SpendEntry{User: user, Eps: math.Float64frombits(le64(p[:8]))}
		p = p[8:]
	}
	if len(p) != 0 {
		return nil, ErrCorrupt // trailing garbage inside the CRC'd body
	}
	return d, nil
}

// deltaString reads one uvarint-length-prefixed string of at most max
// bytes, copying out of buf.
func deltaString(p []byte, max int) (string, []byte, bool) {
	n, p, ok := readUvarint(p)
	if !ok || n > uint64(max) || n > uint64(len(p)) {
		return "", p, false
	}
	return string(p[:n]), p[n:], true
}

// deltaScalar reads one histogram scalar in the group's count mode.
func deltaScalar(p []byte, mode byte) (float64, []byte, bool) {
	if mode == deltaCountsUv {
		u, p, ok := readUvarint(p)
		return float64(u), p, ok
	}
	if len(p) < 8 {
		return 0, p, false
	}
	return math.Float64frombits(le64(p[:8])), p[8:], true
}
