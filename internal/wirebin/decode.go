package wirebin

import (
	"hash/crc32"
	"math"
)

// maxInterned caps the decoder's string intern tables; past it the table
// is reset rather than growing without bound under an adversarial id
// stream. A reset costs the next appearance of each live user one
// allocation, nothing more.
const maxInterned = 1 << 20

// A Frame is one decoded ingest batch. Entries (and their Values) alias
// the decoder's reused arenas: a frame is valid until the next Decode
// call on the same decoder. User and Tenant strings are interned copies
// and safe to retain — the engine stores them in binding maps.
type Frame struct {
	// Tenant is the frame's tenant name ("" = transport-scoped).
	Tenant string
	// Seq is the sender's batch sequence (0 = unsequenced).
	Seq uint64
	// Entries are the batch reports, ready for Tenant.IngestBatch.
	Entries []Entry
}

// entrySpan is one parsed entry before materialization: values live at
// arena[lo:hi]. Spans are materialized only after the whole frame parsed,
// because the values arena may move while it grows.
type entrySpan struct {
	user   string
	group  int
	lo, hi int
}

// A Decoder decodes frames into reused arenas — zero allocations per
// frame in the steady state (returning users and stable tenant names hit
// the intern tables). A Decoder is not safe for concurrent use; pool
// decoders, one per in-flight frame.
type Decoder struct {
	frame  Frame
	spans  []entrySpan
	values []float64
	ubuf   []byte
	intern map[string]string
}

// Verify cheaply checks a frame's envelope — length bounds, magic,
// version, reserved flags and the CRC-32C trailer — without decoding the
// body. Stream transports carrying several frames per request use it to
// validate every frame before applying any, so a corrupted stream is
// rejected whole with no state touched.
//
//dapvet:hotpath
func Verify(buf []byte) error {
	if len(buf) < headerSize+trailerSize {
		return ErrFrameTooShort
	}
	if len(buf) > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	if buf[0] != magic[0] || buf[1] != magic[1] || buf[2] != magic[2] || buf[3] != magic[3] {
		return ErrBadMagic
	}
	if buf[4] != Version {
		return ErrBadVersion
	}
	if buf[5] != 0 {
		return ErrCorrupt // reserved flags must be zero in v1
	}
	body := buf[:len(buf)-trailerSize]
	if crc32.Checksum(body, crcTable) != le32(buf[len(buf)-trailerSize:]) {
		return ErrBadCRC
	}
	return nil
}

// Decode parses one frame from buf. On success the returned frame is
// valid until the next Decode call (see Frame); on any error the frame is
// rejected as a whole and no partial state is returned. buf is not
// retained.
//
//dapvet:hotpath
func (d *Decoder) Decode(buf []byte) (*Frame, error) {
	if err := Verify(buf); err != nil {
		return nil, err
	}
	body := buf[:len(buf)-trailerSize]
	seq := le64(buf[6:])
	p := body[headerSize:]
	tenantN, p, ok := readUvarint(p)
	if !ok || tenantN > MaxTenantLen || uint64(len(p)) < tenantN {
		return nil, ErrCorrupt
	}
	tenant := d.internBytes(p[:tenantN])
	p = p[tenantN:]
	count, p, ok := readUvarint(p)
	// Each entry takes at least 6 bytes (two varints, group, count, mode,
	// one value byte), which bounds count by the remaining bytes before
	// anything is allocated for it.
	if !ok || count == 0 || count > MaxFrameEntries || count > uint64(len(p))/6+1 {
		return nil, ErrCorrupt
	}
	spans := d.spans[:0]
	values := d.values[:0]
	ubuf := d.ubuf[:0]
	prevLo, prevHi := 0, 0 // previous user id as a ubuf range
	for i := uint64(0); i < count; i++ {
		prefix, rest, ok := readUvarint(p)
		if !ok {
			return nil, ErrCorrupt
		}
		suffix, rest, ok := readUvarint(rest)
		if !ok || prefix > uint64(prevHi-prevLo) || prefix+suffix == 0 ||
			prefix+suffix > MaxUserLen || uint64(len(rest)) < suffix {
			return nil, ErrCorrupt
		}
		lo := len(ubuf)
		ubuf = append(ubuf, ubuf[prevLo:prevLo+int(prefix)]...)
		ubuf = append(ubuf, rest[:suffix]...)
		prevLo, prevHi = lo, len(ubuf)
		user := d.internBytes(ubuf[lo:])
		rest = rest[suffix:]
		group, rest, ok := readUvarint(rest)
		if !ok || group > math.MaxInt32 {
			return nil, ErrCorrupt
		}
		nvals, rest, ok := readUvarint(rest)
		if !ok || nvals == 0 || nvals > MaxEntryValues || len(rest) == 0 {
			return nil, ErrCorrupt
		}
		mode := rest[0]
		rest = rest[1:]
		vlo := len(values)
		switch mode {
		case valuesVarint:
			for j := uint64(0); j < nvals; j++ {
				var u uint64
				// Values ≥ 2^32 are never varint-packed by the encoder
				// (packable rejects them); accepting one here would make
				// the frame non-canonical.
				if u, rest, ok = readUvarint(rest); !ok || u >= 1<<32 {
					return nil, ErrCorrupt
				}
				values = append(values, float64(u))
			}
		case valuesFloat64:
			if uint64(len(rest)) < nvals*8 {
				return nil, ErrCorrupt
			}
			for j := uint64(0); j < nvals; j++ {
				values = append(values, math.Float64frombits(le64(rest[j*8:])))
			}
			rest = rest[nvals*8:]
		default:
			return nil, ErrCorrupt
		}
		spans = append(spans, entrySpan{user: user, group: int(group), lo: vlo, hi: len(values)})
		p = rest
	}
	if len(p) != 0 {
		return nil, ErrCorrupt // trailing garbage inside the CRC'd body
	}
	// Materialize only now: the values arena has stopped moving, so the
	// sub-slices stay valid for the frame's lifetime.
	entries := d.frame.Entries[:0]
	for i := range spans {
		sp := &spans[i]
		entries = append(entries, Entry{
			User:   sp.user,
			Group:  sp.group,
			Values: values[sp.lo:sp.hi:sp.hi],
		})
	}
	d.spans, d.values, d.ubuf = spans, values, ubuf
	d.frame = Frame{Tenant: tenant, Seq: seq, Entries: entries}
	return &d.frame, nil
}

// internBytes returns the canonical string for b, allocating only the
// first time a given id is seen. The compiler elides the []byte→string
// conversion in the map lookup, so the hit path allocates nothing.
//
//dapvet:hotpath
func (d *Decoder) internBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	if d.intern == nil || len(d.intern) >= maxInterned {
		d.intern = make(map[string]string, 64)
	}
	s := string(b)
	d.intern[s] = s
	return s
}

// readUvarint decodes one LEB128 varint from p, returning the value and
// the remaining bytes. ok is false on truncation or a value overflowing
// 64 bits.
//
//dapvet:hotpath
func readUvarint(p []byte) (uint64, []byte, bool) {
	var x uint64
	var shift uint
	for i := 0; i < len(p); i++ {
		b := p[i]
		if b < 0x80 {
			if shift >= 63 && b > 1 {
				return 0, p, false
			}
			return x | uint64(b)<<shift, p[i+1:], true
		}
		if shift >= 63 {
			return 0, p, false
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, p, false
}

// le32 reads a little-endian uint32.
//
//dapvet:hotpath
func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// le64 reads a little-endian uint64.
//
//dapvet:hotpath
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
