package wirebin

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: it must
// never panic, and any frame it accepts must re-encode deterministically
// to a canonical frame that decodes back to the identical batch.
func FuzzFrameDecode(f *testing.F) {
	var enc Encoder
	seed := func(tenant string, seq uint64, entries []Entry) {
		frame, err := enc.Encode(tenant, seq, entries)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame...))
	}
	seed("default", 1, []Entry{{User: "lg0", Group: 0, Values: []float64{0.25}}})
	seed("", 0, []Entry{
		{User: "lg0", Group: 0, Values: []float64{3, 1, 4}},
		{User: "lg1", Group: 2, Values: []float64{math.NaN(), math.Inf(-1)}},
		{User: "lg1", Group: 1, Values: []float64{math.Copysign(0, -1)}},
	})
	seed("tenant-b", 99, []Entry{
		{User: "alice", Group: 5, Values: []float64{-0.75, 1.5}},
		{User: "alicia", Group: 0, Values: []float64{4294967295}},
	})
	f.Add([]byte{})
	f.Add([]byte("DAPF"))
	f.Add([]byte("not a frame at all, just bytes"))
	var dec, dec2 Decoder
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := dec.Decode(payload)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		canon, err := enc.Encode(fr.Tenant, fr.Seq, fr.Entries)
		if err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		canon = append([]byte(nil), canon...) // enc.buf is reused below
		fr2, err := dec2.Decode(canon)
		if err != nil {
			t.Fatalf("canonical re-encode fails to decode: %v", err)
		}
		if fr2.Tenant != fr.Tenant || fr2.Seq != fr.Seq || !entriesEqual(fr.Entries, fr2.Entries) {
			t.Fatalf("frame round-trip mismatch:\n first %+v %+v\nsecond %+v %+v",
				fr, fr.Entries, fr2, fr2.Entries)
		}
		canon2, err := enc.Encode(fr2.Tenant, fr2.Seq, fr2.Entries)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("encode is not canonical:\n first %x\nsecond %x", canon, canon2)
		}
	})
}
