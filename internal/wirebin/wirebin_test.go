package wirebin

import (
	"bytes"
	"math"
	"strconv"
	"testing"
)

// sampleEntries is a mixed batch: front-codable generated user ids,
// float payloads (mean reports), integral payloads (categories) and the
// float special cases that must survive bit-exactly.
func sampleEntries() []Entry {
	return []Entry{
		{User: "lg0", Group: 0, Values: []float64{0.25}},
		{User: "lg1", Group: 1, Values: []float64{-0.75, 1.25}},
		{User: "lg10", Group: 2, Values: []float64{3, 1, 4, 1}},
		{User: "lg11", Group: 2, Values: []float64{0, 0, 7, 2}},
		{User: "other", Group: 0, Values: []float64{math.NaN()}},
		{User: "lg12", Group: 1, Values: []float64{math.Inf(1), math.Inf(-1)}},
		{User: "z", Group: 0, Values: []float64{math.Copysign(0, -1)}},
	}
}

// entriesEqual compares entries with bit-exact float comparison.
func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].User != b[i].User || a[i].Group != b[i].Group || len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for j := range a[i].Values {
			if math.Float64bits(a[i].Values[j]) != math.Float64bits(b[i].Values[j]) {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	var enc Encoder
	var dec Decoder
	entries := sampleEntries()
	frame, err := enc.Encode("tenant-a", 42, entries)
	if err != nil {
		t.Fatal(err)
	}
	f, err := dec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Tenant != "tenant-a" || f.Seq != 42 {
		t.Fatalf("header round-trip: tenant=%q seq=%d", f.Tenant, f.Seq)
	}
	if !entriesEqual(entries, f.Entries) {
		t.Fatalf("entries round-trip mismatch:\n sent %+v\n got  %+v", entries, f.Entries)
	}
}

func TestEmptyTenantAndReuse(t *testing.T) {
	var enc Encoder
	var dec Decoder
	// Two decodes on one decoder: the second frame must fully replace the
	// first (entries/arena reuse), and interned strings from the first
	// must stay valid.
	first, err := enc.Encode("", 1, []Entry{{User: "alice", Group: 0, Values: []float64{1.5}}})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := dec.Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Tenant != "" || f1.Entries[0].User != "alice" {
		t.Fatalf("first decode: %+v", f1)
	}
	alice := f1.Entries[0].User
	second, err := enc.Encode("t", 2, sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := dec.Decode(second)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(sampleEntries(), f2.Entries) {
		t.Fatalf("second decode reused state incorrectly: %+v", f2.Entries)
	}
	if alice != "alice" {
		t.Fatalf("interned string corrupted by later decode: %q", alice)
	}
}

func TestVarintPackingChoices(t *testing.T) {
	cases := []struct {
		vals []float64
		want bool
	}{
		{[]float64{0, 1, 4294967295}, true},
		{[]float64{4294967296}, false},           // ≥ 2^32
		{[]float64{1.5}, false},                  // fractional
		{[]float64{-1}, false},                   // negative
		{[]float64{math.Copysign(0, -1)}, false}, // -0 must keep its sign bit
		{[]float64{math.NaN()}, false},
		{[]float64{math.Inf(1)}, false},
	}
	for _, c := range cases {
		if got := packable(c.vals); got != c.want {
			t.Errorf("packable(%v) = %v, want %v", c.vals, got, c.want)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	var enc Encoder
	good, err := enc.Encode("t", 7, sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	reject := func(name string, frame []byte, want error) {
		t.Helper()
		if _, err := dec.Decode(frame); err != want {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	reject("empty", nil, ErrFrameTooShort)
	reject("short", good[:headerSize], ErrFrameTooShort)
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	reject("magic", bad, ErrBadMagic)
	bad = append([]byte(nil), good...)
	bad[4] = 99
	reject("version", bad, ErrBadVersion)
	bad = append([]byte(nil), good...)
	bad[5] = 1
	reject("flags", bad, ErrCorrupt)
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xff
	reject("flipped body byte", bad, ErrBadCRC)
	reject("truncated", good[:len(good)-1], ErrBadCRC)
}

func TestEncodeRejects(t *testing.T) {
	var enc Encoder
	long := string(bytes.Repeat([]byte{'x'}, MaxUserLen+1))
	cases := []struct {
		name    string
		tenant  string
		entries []Entry
		want    error
	}{
		{"no entries", "t", nil, ErrCorrupt},
		{"empty user", "t", []Entry{{User: "", Group: 0, Values: []float64{1}}}, ErrCorrupt},
		{"no values", "t", []Entry{{User: "u", Group: 0}}, ErrCorrupt},
		{"negative group", "t", []Entry{{User: "u", Group: -1, Values: []float64{1}}}, ErrCorrupt},
		{"user too long", "t", []Entry{{User: long, Group: 0, Values: []float64{1}}}, ErrCorrupt},
		{"tenant too long", long, []Entry{{User: "u", Group: 0, Values: []float64{1}}}, ErrFrameTooLarge},
	}
	for _, c := range cases {
		if _, err := enc.Encode(c.tenant, 0, c.entries); err != c.want {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestFrontCodingDenseIDs(t *testing.T) {
	// A loadgen-style id stream must stay near one byte of suffix per
	// entry: 1000 sequential "lg<i>" users with one float each.
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{User: "lg" + strconv.Itoa(i), Group: 0, Values: []float64{1}}
	}
	var enc Encoder
	frame, err := enc.Encode("", 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if perEntry := float64(len(frame)) / float64(len(entries)); perEntry > 8 {
		t.Fatalf("dense id stream costs %.1f bytes/entry, want ≤ 8", perEntry)
	}
	var dec Decoder
	f, err := dec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(entries, f.Entries) {
		t.Fatal("front-coded stream round-trip mismatch")
	}
}

// TestDecodeSteadyStateAllocFree pins the zero-allocation decode
// contract: after the first frame warmed the arenas and intern table,
// decoding frames of known users allocates nothing.
func TestDecodeSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; production builds stay alloc-free")
	}
	var enc Encoder
	frame, err := enc.Encode("tenant", 3, sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	if _, err := dec.Decode(frame); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decode allocates %.1f times per frame, want 0", allocs)
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{User: "lg" + strconv.Itoa(i), Group: i % 3,
			Values: []float64{0.25, -0.75, 1.5}[:1+i%3]}
	}
	var enc Encoder
	frame, err := enc.Encode("default", 1, entries)
	if err != nil {
		b.Fatal(err)
	}
	var dec Decoder
	if _, err := dec.Decode(frame); err != nil {
		b.Fatal(err)
	}
	var reports int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := dec.Decode(frame)
		if err != nil {
			b.Fatal(err)
		}
		reports += len(f.Entries)
	}
	_ = reports
}

func BenchmarkFrameEncode(b *testing.B) {
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{User: "lg" + strconv.Itoa(i), Group: i % 3,
			Values: []float64{0.25, -0.75, 1.5}[:1+i%3]}
	}
	var enc Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode("default", uint64(i), entries); err != nil {
			b.Fatal(err)
		}
	}
}
