// Package specflag binds the task-spec API (core.Spec) to command-line
// flags, one implementation shared by every CLI: a -spec file.json flag
// loads a JSON task spec, and the protocol flags — registered here with
// one canonical name set — act as overrides for fields set explicitly on
// the command line. Before this package, cmd/dapcollect and
// cmd/daploadgen each re-encoded the tenant parameters in their own flag
// structs; both now resolve through the same Spec.
package specflag

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
)

// Flags binds a task spec to a flag set. Construct with New before
// flag.Parse; call Resolve after.
type Flags struct {
	fs   *flag.FlagSet
	path string
	// defAttack keeps the default spec's full attack section: the -attack
	// flag default can only carry its name, so the no-file Resolve path
	// restores the parameterized section unless the flag was explicitly
	// set.
	defAttack *attack.Spec

	task, scheme, weights     string
	attackF                   string
	eps, eps0                 float64
	k                         int
	oPrime, gammaSup          float64
	autoOPrime                bool
	suppress, trimFrac        float64
	maxIter                   int
	buckets, expUsers, shards int
	window                    string
	span                      int
	epoch                     time.Duration
}

// New registers -spec and the task-spec override flags on fs with
// defaults taken from def (normalized). Serving-layer flags (buckets,
// expected-users, shards, window, span, epoch) default to def's Serve
// section when present.
func New(fs *flag.FlagSet, def core.Spec) *Flags {
	def = def.Normalize()
	f := &Flags{fs: fs}
	if def.Attack != nil {
		a := *def.Attack
		f.defAttack = &a
	}
	fs.StringVar(&f.path, "spec", "", "JSON task spec file; explicit flags below override its fields")
	fs.StringVar(&f.task, "task", string(def.Task), "task kind: mean, distribution, frequency, variance, baseline")
	fs.StringVar(&f.task, "kind", string(def.Task), "alias of -task")
	fs.Float64Var(&f.eps, "eps", def.Eps, "total privacy budget ε")
	fs.Float64Var(&f.eps0, "eps0", def.Eps0, "minimum group budget ε0")
	fs.StringVar(&f.scheme, "scheme", def.Scheme, "estimation scheme: emf, emfstar, cemfstar")
	fs.StringVar(&f.weights, "weights", def.Weights, "aggregation weights: paper, general")
	fs.IntVar(&f.k, "k", def.K, "category count (task frequency)")
	fs.Float64Var(&f.oPrime, "oprime", def.OPrime, "fixed pessimistic mean O′")
	fs.BoolVar(&f.autoOPrime, "auto-oprime", def.AutoOPrime, "derive O′ per Theorem 2")
	fs.Float64Var(&f.gammaSup, "gamma-sup", def.GammaSup, "Byzantine-proportion bound γsup for Theorem 2 (0 = 1/2)")
	fs.Float64Var(&f.suppress, "suppress", def.SuppressFactor, "CEMF* concentration threshold factor (0 = 0.5)")
	fs.IntVar(&f.maxIter, "emf-maxiter", def.EMFMaxIter, "EM iteration cap (0 = engine default)")
	fs.Float64Var(&f.trimFrac, "trim-frac", def.TrimFrac, "SW pessimistic-O′ trim fraction (task distribution)")
	fs.StringVar(&f.attackF, "attack", attackDefault(def),
		"simulated adversary: a registry name (see attack.Names), inline JSON {\"name\":...}, or @file.json; \"none\" disables the attack")

	serve := core.ServeSpec{}
	if def.Serve != nil {
		serve = *def.Serve
	}
	fs.IntVar(&f.buckets, "buckets", serve.Buckets, "fixed per-group histogram resolution d′ (0 = derive from -expected-users)")
	fs.IntVar(&f.expUsers, "expected-users", serve.ExpectedUsers, "expected user population for deriving d′ (0 = engine default)")
	fs.IntVar(&f.shards, "shards", serve.Shards, "lock stripes per group histogram (0 = engine default)")
	fs.StringVar(&f.window, "window", serve.Window, "epoch window mode (tumbling, sliding)")
	fs.IntVar(&f.span, "span", serve.Span, "sliding window span in epochs")
	fs.DurationVar(&f.epoch, "epoch", time.Duration(serve.EpochMs)*time.Millisecond,
		"epoch length for automatic rotation (0 = manual)")
	return f
}

// Path returns the -spec file path ("" when none was given).
func (f *Flags) Path() string { return f.path }

// attackDefault renders a default spec's attack section as the -attack
// flag default (its registry name, or "" when the spec carries none).
func attackDefault(def core.Spec) string {
	if def.Attack == nil {
		return ""
	}
	return def.Attack.Name
}

// ParseAttack resolves a -attack flag value into an attack spec: "" means
// unset (nil), "@path" loads a JSON attack spec file, a leading "{" parses
// inline JSON, anything else is a registry name with default parameters
// ("none" included — pass it to clear a spec file's attack section).
func ParseAttack(s string) (*attack.Spec, error) {
	switch {
	case s == "":
		return nil, nil
	case strings.HasPrefix(s, "@"):
		data, err := os.ReadFile(s[1:])
		if err != nil {
			return nil, err
		}
		return decodeAttack(data)
	case strings.HasPrefix(s, "{"):
		return decodeAttack([]byte(s))
	default:
		return &attack.Spec{Name: s}, nil
	}
}

// decodeAttack parses a JSON attack spec strictly, mirroring
// core.ParseSpec's unknown-field rejection.
func decodeAttack(data []byte) (*attack.Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp attack.Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("%w: attack: %v", core.ErrBadSpec, err)
	}
	return &sp, nil
}

// Attack resolves the -attack flag value alone (nil when the flag was
// left empty) — for CLIs that drive an adversary without resolving a full
// task spec, e.g. daploadgen against an external collector.
func (f *Flags) Attack() (*attack.Spec, error) { return ParseAttack(f.attackF) }

// Resolve returns the effective spec: the flag values when no -spec file
// was given, otherwise the file's spec with every explicitly-set flag
// applied on top. The result is validated.
func (f *Flags) Resolve() (core.Spec, error) {
	attackSet := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "attack" {
			attackSet = true
		}
	})
	if f.path == "" {
		sp := f.flagSpec()
		if attackSet {
			a, err := ParseAttack(f.attackF)
			if err != nil {
				return core.Spec{}, err
			}
			sp.Attack = a
		} else {
			// Flag untouched: keep the default spec's full attack section
			// (the flag default string alone cannot carry its parameters).
			sp.Attack = f.defAttack
		}
		if err := sp.Validate(); err != nil {
			return core.Spec{}, err
		}
		return sp.Normalize(), nil
	}
	sp, err := core.LoadSpec(f.path)
	if err != nil {
		return core.Spec{}, err
	}
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name != "attack" {
			f.override(&sp, fl.Name)
		}
	})
	if attackSet {
		a, err := ParseAttack(f.attackF)
		if err != nil {
			return core.Spec{}, err
		}
		sp.Attack = a
	}
	if err := sp.Validate(); err != nil {
		return core.Spec{}, err
	}
	return sp.Normalize(), nil
}

// flagSpec assembles a spec purely from the bound flag values.
func (f *Flags) flagSpec() core.Spec {
	task, err := core.ParseTask(f.task)
	if err != nil {
		task = core.TaskKind(f.task) // leave it for Validate to reject
	}
	sp := core.Spec{
		Task: task, Eps: f.eps, Eps0: f.eps0, Scheme: f.scheme, Weights: f.weights,
		K: f.k, OPrime: f.oPrime, AutoOPrime: f.autoOPrime, GammaSup: f.gammaSup,
		SuppressFactor: f.suppress, EMFMaxIter: f.maxIter, TrimFrac: f.trimFrac,
	}
	if f.buckets != 0 || f.expUsers != 0 || f.shards != 0 || f.window != "" || f.span != 0 || f.epoch != 0 {
		sp.Serve = &core.ServeSpec{
			Buckets: f.buckets, ExpectedUsers: f.expUsers, Shards: f.shards,
			Window: f.window, Span: f.span, EpochMs: f.epoch.Milliseconds(),
		}
	}
	return sp
}

// override applies one explicitly-set flag onto sp.
func (f *Flags) override(sp *core.Spec, name string) {
	serve := func() *core.ServeSpec {
		if sp.Serve == nil {
			sp.Serve = &core.ServeSpec{}
		}
		return sp.Serve
	}
	switch name {
	case "task", "kind":
		if task, err := core.ParseTask(f.task); err == nil {
			sp.Task = task
		} else {
			sp.Task = core.TaskKind(f.task)
		}
	case "eps":
		sp.Eps = f.eps
	case "eps0":
		sp.Eps0 = f.eps0
	case "scheme":
		sp.Scheme = f.scheme
	case "weights":
		sp.Weights = f.weights
	case "k":
		sp.K = f.k
	case "oprime":
		sp.OPrime = f.oPrime
	case "auto-oprime":
		sp.AutoOPrime = f.autoOPrime
	case "gamma-sup":
		sp.GammaSup = f.gammaSup
	case "suppress":
		sp.SuppressFactor = f.suppress
	case "emf-maxiter":
		sp.EMFMaxIter = f.maxIter
	case "trim-frac":
		sp.TrimFrac = f.trimFrac
	case "buckets":
		serve().Buckets = f.buckets
	case "expected-users":
		serve().ExpectedUsers = f.expUsers
	case "shards":
		serve().Shards = f.shards
	case "window":
		serve().Window = f.window
	case "span":
		serve().Span = f.span
	case "epoch":
		serve().EpochMs = f.epoch.Milliseconds()
	}
}
