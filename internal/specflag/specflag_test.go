package specflag

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
)

func newSet(t *testing.T, args []string) (*Flags, *flag.FlagSet) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := New(fs, core.NewSpec(core.MeanTask()))
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f, fs
}

func TestResolveFromFlags(t *testing.T) {
	f, _ := newSet(t, []string{"-task", "frequency", "-k", "7", "-eps", "2", "-eps0", "1", "-scheme", "emfstar"})
	sp, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Task != core.TaskFrequency || sp.K != 7 || sp.Eps != 2 || sp.Eps0 != 1 {
		t.Fatalf("resolved %+v", sp)
	}
	if sp.Scheme != core.SchemeEMFStar.String() {
		t.Fatalf("scheme %q", sp.Scheme)
	}
}

func TestResolveFileWithOverrides(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"task":"mean","eps":1,"eps0":0.25,"scheme":"emf"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Explicit -eps overrides the file; the file's scheme survives.
	f, _ := newSet(t, []string{"-spec", path, "-eps", "2", "-eps0", "0.5"})
	sp, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Eps != 2 || sp.Eps0 != 0.5 {
		t.Fatalf("override lost: %+v", sp)
	}
	if sp.Scheme != core.SchemeEMF.String() {
		t.Fatalf("file scheme lost: %q", sp.Scheme)
	}
	// Serving flags land in the Serve section.
	f2, _ := newSet(t, []string{"-spec", path, "-shards", "4", "-epoch", "150ms"})
	sp2, err := f2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Serve == nil || sp2.Serve.Shards != 4 || sp2.Serve.EpochMs != 150 {
		t.Fatalf("serve overrides lost: %+v", sp2.Serve)
	}
}

func TestResolveRejectsBadSpecs(t *testing.T) {
	f, _ := newSet(t, []string{"-task", "frequency"}) // K missing
	if _, err := f.Resolve(); err == nil {
		t.Fatal("invalid flag spec accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"task":"mean","eps":1,"typo":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, _ := newSet(t, []string{"-spec", path})
	if _, err := f2.Resolve(); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestAttackFlag(t *testing.T) {
	// A bare name selects a registry attack with defaults.
	f, _ := newSet(t, []string{"-attack", "gba"})
	sp, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Attack == nil || sp.Attack.Name != "gba" {
		t.Fatalf("attack flag lost: %+v", sp.Attack)
	}
	// Inline JSON carries parameters; unknown fields are rejected.
	f2, _ := newSet(t, []string{"-attack", `{"name":"bba","dist":"gaussian"}`})
	sp2, err := f2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Attack == nil || sp2.Attack.Dist != "gaussian" {
		t.Fatalf("inline attack lost: %+v", sp2.Attack)
	}
	f3, _ := newSet(t, []string{"-attack", `{"name":"bba","strength":9}`})
	if _, err := f3.Resolve(); err == nil {
		t.Fatal("unknown attack field accepted")
	}
	// An @file value loads a JSON attack spec.
	path := filepath.Join(t.TempDir(), "atk.json")
	if err := os.WriteFile(path, []byte(`{"name":"ramp","epochs":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f4, _ := newSet(t, []string{"-attack", "@" + path})
	sp4, err := f4.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp4.Attack == nil || sp4.Attack.Name != "ramp" || sp4.Attack.Epochs != 3 {
		t.Fatalf("@file attack lost: %+v", sp4.Attack)
	}
	// -attack overrides a spec file's attack section.
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"task":"mean","eps":1,"attack":{"name":"bba"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f5, _ := newSet(t, []string{"-spec", specPath, "-attack", "ima"})
	sp5, err := f5.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp5.Attack == nil || sp5.Attack.Name != "ima" {
		t.Fatalf("attack override lost: %+v", sp5.Attack)
	}
	// A registry-unknown attack fails validation at Resolve.
	f6, _ := newSet(t, []string{"-attack", "quantum"})
	if _, err := f6.Resolve(); err == nil {
		t.Fatal("unknown attack name accepted")
	}
}

func TestAttackDefaultKeepsParameters(t *testing.T) {
	// A default spec's parameterized attack section must survive Resolve
	// untouched — the -attack flag default string carries only the name.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	def := core.NewSpec(core.MeanTask(),
		core.WithAttack(attack.Spec{Name: "bba", Range: "[3C/4,C]", Dist: "gaussian"}))
	f := New(fs, def)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	sp, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Attack == nil || sp.Attack.Dist != "gaussian" || sp.Attack.Range != "[3C/4,C]" {
		t.Fatalf("default attack parameters lost: %+v", sp.Attack)
	}
	// Changing the flag replaces the whole section.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := New(fs2, def)
	if err := fs2.Parse([]string{"-attack", "ima"}); err != nil {
		t.Fatal(err)
	}
	sp2, err := f2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Attack == nil || sp2.Attack.Name != "ima" || sp2.Attack.Dist != "" {
		t.Fatalf("flag override wrong: %+v", sp2.Attack)
	}
}
