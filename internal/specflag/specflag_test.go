package specflag

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func newSet(t *testing.T, args []string) (*Flags, *flag.FlagSet) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := New(fs, core.NewSpec(core.MeanTask()))
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f, fs
}

func TestResolveFromFlags(t *testing.T) {
	f, _ := newSet(t, []string{"-task", "frequency", "-k", "7", "-eps", "2", "-eps0", "1", "-scheme", "emfstar"})
	sp, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Task != core.TaskFrequency || sp.K != 7 || sp.Eps != 2 || sp.Eps0 != 1 {
		t.Fatalf("resolved %+v", sp)
	}
	if sp.Scheme != core.SchemeEMFStar.String() {
		t.Fatalf("scheme %q", sp.Scheme)
	}
}

func TestResolveFileWithOverrides(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"task":"mean","eps":1,"eps0":0.25,"scheme":"emf"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Explicit -eps overrides the file; the file's scheme survives.
	f, _ := newSet(t, []string{"-spec", path, "-eps", "2", "-eps0", "0.5"})
	sp, err := f.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Eps != 2 || sp.Eps0 != 0.5 {
		t.Fatalf("override lost: %+v", sp)
	}
	if sp.Scheme != core.SchemeEMF.String() {
		t.Fatalf("file scheme lost: %q", sp.Scheme)
	}
	// Serving flags land in the Serve section.
	f2, _ := newSet(t, []string{"-spec", path, "-shards", "4", "-epoch", "150ms"})
	sp2, err := f2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Serve == nil || sp2.Serve.Shards != 4 || sp2.Serve.EpochMs != 150 {
		t.Fatalf("serve overrides lost: %+v", sp2.Serve)
	}
}

func TestResolveRejectsBadSpecs(t *testing.T) {
	f, _ := newSet(t, []string{"-task", "frequency"}) // K missing
	if _, err := f.Resolve(); err == nil {
		t.Fatal("invalid flag spec accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"task":"mean","eps":1,"typo":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, _ := newSet(t, []string{"-spec", path})
	if _, err := f2.Resolve(); err == nil {
		t.Fatal("unknown field accepted")
	}
}
