package privacy

import (
	"errors"
	"sync"
	"testing"
)

func TestNewAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(0); err == nil {
		t.Fatal("cap=0 accepted")
	}
}

func TestSpendWithinCap(t *testing.T) {
	a, _ := NewAccountant(1)
	if err := a.Spend("u1", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("u1", 0.5); err != nil {
		t.Fatal(err)
	}
	if !a.Exhausted("u1") {
		t.Fatal("u1 should be exhausted")
	}
	if got := a.Spent("u1"); got != 1 {
		t.Fatalf("spent = %v", got)
	}
}

func TestSpendRejectsOverCap(t *testing.T) {
	a, _ := NewAccountant(1)
	if err := a.Spend("u1", 0.9); err != nil {
		t.Fatal(err)
	}
	err := a.Spend("u1", 0.2)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// The failed spend must not be recorded.
	if got := a.Spent("u1"); got != 0.9 {
		t.Fatalf("spent = %v, want 0.9", got)
	}
}

func TestSpendRejectsNonPositive(t *testing.T) {
	a, _ := NewAccountant(1)
	if err := a.Spend("u1", 0); err == nil {
		t.Fatal("zero spend accepted")
	}
	if err := a.Spend("u1", -0.5); err == nil {
		t.Fatal("negative spend accepted")
	}
}

// DAP grouping invariant: 2^t reports of ε/2^t compose to exactly ε.
func TestSequentialCompositionExactness(t *testing.T) {
	a, _ := NewAccountant(1)
	for _, reports := range []int{1, 2, 4, 8, 16} {
		id := string(rune('a' + reports))
		eps := 1.0 / float64(reports)
		for i := 0; i < reports; i++ {
			if err := a.Spend(id, eps); err != nil {
				t.Fatalf("%d reports of %v: %v", reports, eps, err)
			}
		}
		if !a.Exhausted(id) {
			t.Fatalf("%d reports should exhaust the budget", reports)
		}
		if err := a.Spend(id, eps); err == nil {
			t.Fatalf("%d+1-th report accepted", reports)
		}
	}
}

func TestRemaining(t *testing.T) {
	a, _ := NewAccountant(2)
	a.Spend("u", 0.5)
	if got := a.Remaining("u"); got != 1.5 {
		t.Fatalf("remaining = %v", got)
	}
	if got := a.Remaining("fresh"); got != 2 {
		t.Fatalf("fresh remaining = %v", got)
	}
}

func TestUsers(t *testing.T) {
	a, _ := NewAccountant(1)
	a.Spend("u1", 0.1)
	a.Spend("u2", 0.1)
	a.Spend("u1", 0.1)
	if got := a.Users(); got != 2 {
		t.Fatalf("users = %d", got)
	}
}

func TestConcurrentSpends(t *testing.T) {
	a, _ := NewAccountant(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := a.Spend("shared", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := a.Spent("shared"); got != 800 {
		t.Fatalf("spent = %v, want 800", got)
	}
}

func TestSpendNAtomicity(t *testing.T) {
	a, _ := NewAccountant(1)
	// Four slots of 0.25 fit exactly.
	if err := a.SpendN("u", 0.25, 4); err != nil {
		t.Fatal(err)
	}
	if !a.Exhausted("u") {
		t.Fatal("u should be exhausted")
	}
	// A batch that does not fit must leave the ledger untouched: no
	// partial spend survives a rejected upload.
	b, _ := NewAccountant(1)
	if err := b.SpendN("v", 0.5, 3); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if got := b.Spent("v"); got != 0 {
		t.Fatalf("rejected batch recorded %v", got)
	}
	if err := b.SpendN("v", 0.5, 2); err != nil {
		t.Fatalf("exact batch rejected after failed one: %v", err)
	}
	if err := b.SpendN("v", 0.5, 0); err == nil {
		t.Fatal("zero-count batch accepted")
	}
}

func TestSpendNConcurrentNoOverspend(t *testing.T) {
	// 8 workers race 100 single-slot batches against a cap of 50: exactly
	// 50 must land regardless of interleaving.
	a, _ := NewAccountant(50)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.SpendN("shared", 1, 1)
			}
		}()
	}
	wg.Wait()
	if got := a.Spent("shared"); got != 50 {
		t.Fatalf("spent = %v, want 50", got)
	}
}

func TestCap(t *testing.T) {
	a, _ := NewAccountant(3)
	if a.Cap() != 3 {
		t.Fatal("Cap broken")
	}
}
