// Package privacy provides a per-user privacy-budget accountant enforcing
// the composition rules that DAP's grouping relies on: sequential
// composition (budgets of repeated reports on the same value add up) and
// the per-user cap ε. The simulator uses it to assert that every user —
// whichever group they land in — spends exactly the advertised budget.
package privacy

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExceeded is returned when a spend would push a user past cap.
var ErrBudgetExceeded = errors.New("privacy: budget exceeded")

// Accountant tracks per-user spent budget against a common cap. It is
// safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	cap   float64
	spent map[string]float64
}

// NewAccountant creates an accountant with the given per-user cap ε.
func NewAccountant(cap float64) (*Accountant, error) {
	if cap <= 0 {
		return nil, errors.New("privacy: cap must be positive")
	}
	return &Accountant{cap: cap, spent: make(map[string]float64)}, nil
}

// Cap returns the per-user budget cap.
func (a *Accountant) Cap() float64 {
	return a.cap
}

// Spend records eps of budget consumption for user id, applying
// sequential composition. It fails without recording when the spend would
// exceed the cap (with a small floating-point tolerance so that h
// reports of ε/h compose to exactly ε).
func (a *Accountant) Spend(id string, eps float64) error {
	if eps <= 0 {
		return errors.New("privacy: spend must be positive")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	const tol = 1e-9
	if a.spent[id]+eps > a.cap+tol {
		return fmt.Errorf("%w: user %s at %.6g of %.6g, requested %.6g",
			ErrBudgetExceeded, id, a.spent[id], a.cap, eps)
	}
	a.spent[id] += eps
	return nil
}

// Spent returns the budget consumed by user id so far.
func (a *Accountant) Spent(id string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[id]
}

// Remaining returns the budget user id may still spend.
func (a *Accountant) Remaining(id string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.cap - a.spent[id]
	if r < 0 {
		return 0
	}
	return r
}

// Users returns the number of users with recorded spends.
func (a *Accountant) Users() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spent)
}

// Exhausted reports whether user id has depleted the cap (within
// tolerance), i.e. reported the full number of times their group demands.
func (a *Accountant) Exhausted(id string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[id] >= a.cap-1e-9
}
