// Package privacy provides a per-user privacy-budget accountant enforcing
// the composition rules that DAP's grouping relies on: sequential
// composition (budgets of repeated reports on the same value add up) and
// the per-user cap ε. The simulator uses it to assert that every user —
// whichever group they land in — spends exactly the advertised budget; the
// streaming collector consults it on every ingested report, so the ledger
// is striped by user hash to keep concurrent spends from serializing on
// one lock.
package privacy

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
)

// ErrBudgetExceeded is returned when a spend would push a user past cap.
var ErrBudgetExceeded = errors.New("privacy: budget exceeded")

// stripes is the number of independent ledger shards. Spends for different
// users hash to different stripes and proceed concurrently; 64 keeps the
// collision probability low for any realistic ingest worker count.
const stripes = 64

// spendTol absorbs floating-point drift so that h reports of ε/h compose
// to exactly ε.
const spendTol = 1e-9

// ledgerStripe is one shard of the spend ledger, padded to a full cache
// line (8B mutex + 8B map header + 48B pad = 64B) so adjacent stripes
// don't false-share under concurrent spends.
type ledgerStripe struct {
	mu    sync.Mutex
	spent map[string]float64
	_     [48]byte
}

// Accountant tracks per-user spent budget against a common cap. It is
// safe for concurrent use; operations on different users mostly proceed
// without contention.
type Accountant struct {
	cap  float64
	seed maphash.Seed
	part [stripes]ledgerStripe
}

// NewAccountant creates an accountant with the given per-user cap ε.
func NewAccountant(cap float64) (*Accountant, error) {
	if cap <= 0 {
		return nil, errors.New("privacy: cap must be positive")
	}
	a := &Accountant{cap: cap, seed: maphash.MakeSeed()}
	for i := range a.part {
		a.part[i].spent = make(map[string]float64)
	}
	return a, nil
}

// Cap returns the per-user budget cap.
func (a *Accountant) Cap() float64 {
	return a.cap
}

func (a *Accountant) stripe(id string) *ledgerStripe {
	return &a.part[maphash.String(a.seed, id)&(stripes-1)]
}

// Spend records eps of budget consumption for user id, applying
// sequential composition. It fails without recording when the spend would
// exceed the cap.
func (a *Accountant) Spend(id string, eps float64) error {
	return a.SpendN(id, eps, 1)
}

// SpendN atomically records n spends of eps each for user id. Either the
// whole batch fits under the cap and is recorded, or nothing is: a
// multi-report upload can never burn part of a user's budget and then be
// rejected, and no concurrent interleaving can overspend.
func (a *Accountant) SpendN(id string, eps float64, n int) error {
	if eps <= 0 {
		return errors.New("privacy: spend must be positive")
	}
	if n <= 0 {
		return errors.New("privacy: spend count must be positive")
	}
	total := eps * float64(n)
	p := a.stripe(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spent[id]+total > a.cap+spendTol {
		return fmt.Errorf("%w: user %s at %.6g of %.6g, requested %.6g",
			ErrBudgetExceeded, id, p.spent[id], a.cap, total)
	}
	p.spent[id] += total
	return nil
}

// Spent returns the budget consumed by user id so far.
func (a *Accountant) Spent(id string) float64 {
	p := a.stripe(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spent[id]
}

// Remaining returns the budget user id may still spend.
func (a *Accountant) Remaining(id string) float64 {
	r := a.cap - a.Spent(id)
	if r < 0 {
		return 0
	}
	return r
}

// ForceSpend records n spends of eps for user id without the cap check.
// It exists for WAL replay: a logged charge was already admitted under the
// cap before it was written, so re-applying it must not re-ask — otherwise
// float drift or a tightened cap could silently drop acked spend and
// break budget monotonicity across recovery.
func (a *Accountant) ForceSpend(id string, eps float64, n int) {
	p := a.stripe(id)
	p.mu.Lock()
	p.spent[id] += eps * float64(n)
	p.mu.Unlock()
}

// Refund returns n spends of eps to user id, clamping at zero. It exists
// for the durable ingest path: a charge whose WAL append fails is rolled
// back so the rejected request leaves no trace.
func (a *Accountant) Refund(id string, eps float64, n int) {
	p := a.stripe(id)
	p.mu.Lock()
	p.spent[id] -= eps * float64(n)
	if p.spent[id] <= 0 {
		delete(p.spent, id)
	}
	p.mu.Unlock()
}

// Export copies the full ledger: per-user consumed budget. Snapshots
// persist it and Import restores it.
func (a *Accountant) Export() map[string]float64 {
	out := make(map[string]float64)
	for i := range a.part {
		p := &a.part[i]
		p.mu.Lock()
		for id, v := range p.spent {
			out[id] = v
		}
		p.mu.Unlock()
	}
	return out
}

// Import replaces users' spends with the exported ledger m. Entries for
// users not in m are left untouched (recovery imports into a fresh
// accountant, so in practice this is a full restore).
func (a *Accountant) Import(m map[string]float64) {
	for id, v := range m {
		p := a.stripe(id)
		p.mu.Lock()
		p.spent[id] = v
		p.mu.Unlock()
	}
}

// TotalSpent sums consumed budget across all users — the scalar the
// recovery monotonicity check compares across a crash.
func (a *Accountant) TotalSpent() float64 {
	var sum float64
	for i := range a.part {
		p := &a.part[i]
		p.mu.Lock()
		for _, v := range p.spent {
			sum += v
		}
		p.mu.Unlock()
	}
	return sum
}

// Users returns the number of users with recorded spends.
func (a *Accountant) Users() int {
	var n int
	for i := range a.part {
		p := &a.part[i]
		p.mu.Lock()
		n += len(p.spent)
		p.mu.Unlock()
	}
	return n
}

// Stats returns the number of users with recorded spends and their total
// consumed budget in one ledger pass — the pair the metrics scrape needs,
// taken under each stripe lock once instead of twice (Users+TotalSpent).
func (a *Accountant) Stats() (users int, spent float64) {
	for i := range a.part {
		p := &a.part[i]
		p.mu.Lock()
		users += len(p.spent)
		for _, v := range p.spent {
			spent += v
		}
		p.mu.Unlock()
	}
	return users, spent
}

// Exhausted reports whether user id has depleted the cap (within
// tolerance), i.e. reported the full number of times their group demands.
func (a *Accountant) Exhausted(id string) bool {
	return a.Spent(id) >= a.cap-spendTol
}
