package attack

import (
	"fmt"
	"math/rand/v2"
)

// Targeted is the categorical direct-injection attack on the frequency
// task (§V-D, Fig. 9(c)(d)): every Byzantine report lands uniformly among
// the chosen target categories, skipping k-RR entirely. With a single
// target it is the "targeted item" promotion attack of the LDP poisoning
// literature. Reports are category ids encoded as float64 (the Collection
// currency); Env.Domain is [0, K).
type Targeted struct {
	Cats []int
}

// Name implements Adversary.
func (a *Targeted) Name() string { return fmt.Sprintf("Targeted(%v)", a.Cats) }

// Poison implements Adversary.
func (a *Targeted) Poison(r *rand.Rand, _ Env, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(a.Cats[r.IntN(len(a.Cats))])
	}
	return out
}

// MaxGain is the maximal-gain direct-injection attack against k-RR
// frequency estimation (the MGA of the LDP poisoning literature, adapted
// to DAP's direct-injection threat): all poison mass is concentrated on
// the Targets highest-index categories — the frequency gain per poisoned
// category is maximal when the injected mass is spread over as few
// categories as possible, so Targets=1 (the default) is the strongest
// promotion of a single item. The category count K is read from
// Env.Domain ([0, K)), so one MaxGain value works for any spec.
type MaxGain struct {
	// Targets is the number of promoted categories (default 1).
	Targets int
}

// Name implements Adversary.
func (a *MaxGain) Name() string { return fmt.Sprintf("MaxGain(t=%d)", a.targets()) }

func (a *MaxGain) targets() int {
	if a.Targets <= 0 {
		return 1
	}
	return a.Targets
}

// Poison implements Adversary.
func (a *MaxGain) Poison(r *rand.Rand, env Env, n int) []float64 {
	k := int(env.Domain.Hi)
	t := a.targets()
	if t > k {
		t = k
	}
	base := k - t
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(base + r.IntN(t))
	}
	return out
}

// DistPoison is a distribution-poisoning attack on the Square Wave
// distribution task: instead of dragging the mean with out-of-range
// values (SWTop), the colluders submit reports drawn from a chosen target
// distribution over the legitimate input range, reshaping the
// reconstructed histogram x̂ toward that distribution while every poison
// value stays indistinguishable-by-range from an honest report. On a
// numeric mechanism the input range comes from Env.Mech; without one the
// SW input range [0, 1] is assumed.
type DistPoison struct {
	// Dist shapes the injected values over the input range (the zero
	// value is Uniform; the registry's "distpoison" entry defaults to
	// Beta(6,1), piling mass at the top of the range).
	Dist Dist
}

// Name implements Adversary.
func (a *DistPoison) Name() string { return fmt.Sprintf("DistPoison(%s)", a.Dist) }

// Poison implements Adversary.
func (a *DistPoison) Poison(r *rand.Rand, env Env, n int) []float64 {
	lo, hi := 0.0, 1.0
	if env.Mech != nil {
		id := env.Mech.InputDomain()
		lo, hi = id.Lo, id.Hi
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = env.Domain.Clamp(a.Dist.sample(r, lo, hi))
	}
	return out
}
