package attack

import (
	"math"
	"testing"

	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestOpportunisticStaysInsideTrimThreshold(t *testing.T) {
	r := rng.New(1)
	mech := pm.MustNew(1)
	env := EnvFor(mech, 0)

	// Honest population the attacker references.
	ref := make([]float64, 5000)
	for i := range ref {
		ref[i] = rng.Uniform(r, -0.8, 0)
	}
	// Margin covers the shift the attacker's own mass induces on the
	// mixed-collection quantile.
	adv := &Opportunistic{TrimFrac: 0.25, Margin: 0.12, Reference: ref}
	poison := adv.Poison(r, env, 3000)

	// Build the mixed collection the collector would see.
	reports := append([]float64(nil), poison...)
	for _, v := range ref {
		reports = append(reports, mech.Perturb(r, v))
	}
	// Trimming the top 25% must leave most poison in place: count poison
	// values below the trim threshold.
	cut := stats.Quantile(reports, 0.75)
	surviving := 0
	for _, p := range poison {
		if p <= cut {
			surviving++
		}
	}
	if frac := float64(surviving) / float64(len(poison)); frac < 0.8 {
		t.Fatalf("only %.0f%% of opportunistic poison survives trimming", frac*100)
	}
	// And the poison must still pull the mean upward.
	if stats.Mean(poison) <= stats.Mean(reports)-0.1 {
		t.Fatal("opportunistic poison is not biased upward")
	}
}

func TestOpportunisticDomainBounds(t *testing.T) {
	r := rng.New(2)
	env := EnvFor(pm.MustNew(0.5), 0)
	adv := &Opportunistic{TrimFrac: 0.5}
	for _, v := range adv.Poison(r, env, 500) {
		if !env.Domain.Contains(v) {
			t.Fatalf("poison %v outside domain", v)
		}
	}
}

func TestOpportunisticDefaults(t *testing.T) {
	r := rng.New(3)
	env := EnvFor(pm.MustNew(1), 0)
	// No reference, no margin: must still produce sane values.
	adv := &Opportunistic{TrimFrac: 0.9} // q clamps to 0.5
	vals := adv.Poison(r, env, 100)
	if len(vals) != 100 {
		t.Fatalf("len = %d", len(vals))
	}
	if adv.Name() == "" {
		t.Fatal("empty name")
	}
	_ = math.Abs
}
