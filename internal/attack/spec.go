package attack

// The attack registry: a declarative, JSON-serializable Spec names an
// adversary and its parameters, and New builds it — the exact mirror of
// defense.Spec / defense.New on the threat side. The registry is how
// attacks travel through the task-spec API: core.Spec carries an optional
// "attack" section, the simulator and experiment harness build adversaries
// from it, and cmd/daploadgen red-teams a live collector with it. Attack
// specs are simulation/client-side only — stream tenants and the wire
// reject them, like the other sim-only faces.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknown is returned by New for attack names outside Names().
var ErrUnknown = errors.New("attack: unknown attack")

// Spec parameterizes an adversary selected by name — the JSON shape
// embedded in the task spec (core.Spec) under "attack". Zero values
// select each attack's documented default; fields an attack does not use
// are ignored. The wrapper attacks (dropout, hetero, ramp, burst)
// compose: Inner names the modulated attack and defaults to the paper's
// standard BBA.
type Spec struct {
	// Name selects the attack; see Names for the registry.
	Name string `json:"name"`
	// Side is BBA's poisoned side: "right" (the default) or "left".
	Side string `json:"side,omitempty"`
	// Range is the poison range label for bba ("[3C/4,C]", "[C/2,C]",
	// "[O,C/2]", "[O,C]", "[C/2,3C/4]"; default "[C/2,C]").
	Range string `json:"range,omitempty"`
	// LeftRange and RightRange are gba's per-side range labels (both
	// default "[C/2,C]").
	LeftRange  string `json:"left_range,omitempty"`
	RightRange string `json:"right_range,omitempty"`
	// Dist is the poison-value distribution for bba/gba/distpoison:
	// "uniform" (default), "gaussian", "beta16", "beta61".
	Dist string `json:"dist,omitempty"`
	// FracLeft is gba's left-side poison share (default 0.5).
	FracLeft float64 `json:"frac_left,omitempty"`
	// G is ima's manipulated input in [−1, 1] (default −1).
	G *float64 `json:"g,omitempty"`
	// A is evasion's decoy fraction (default 0.25).
	A float64 `json:"a,omitempty"`
	// TrimFrac is the trimming fraction opportunistic evades (default
	// 0.5) and Margin its inside-the-threshold safety margin (default
	// 0.02).
	TrimFrac float64 `json:"trim_frac,omitempty"`
	Margin   float64 `json:"margin,omitempty"`
	// Cats are targeted's injected categories (required, non-negative).
	Cats []int `json:"cats,omitempty"`
	// Targets is maxgain's promoted-category count (default 1).
	Targets int `json:"targets,omitempty"`
	// Frac is dropout's per-report drop probability (default 0.5).
	Frac float64 `json:"frac,omitempty"`
	// GroupFrac are hetero's per-group active fractions, cycled over the
	// protocol groups (required, each in [0, 1]).
	GroupFrac []float64 `json:"group_frac,omitempty"`
	// Frac0 and Frac1 are ramp's active-fraction endpoints (defaults 0
	// and 1) and Epochs its length in epochs (default 8).
	Frac0  float64  `json:"frac0,omitempty"`
	Frac1  *float64 `json:"frac1,omitempty"`
	Epochs int      `json:"epochs,omitempty"`
	// Period and Duty shape burst's epoch cycle (defaults 4 and 1).
	Period int `json:"period,omitempty"`
	Duty   int `json:"duty,omitempty"`
	// Inner is the attack a wrapper modulates (default the standard BBA:
	// right side, [C/2,C], uniform).
	Inner *Spec `json:"inner,omitempty"`
}

// Names lists the registered attack names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// registry maps each attack name to its builder. Adding an attack is one
// entry here (plus its Adversary implementation); it then works in every
// spec-driven surface — dapsim, dapbench -spec, daploadgen, dapredteam.
// Filled by init: the wrapper builders recurse through New, so a literal
// initializer would be an initialization cycle.
var registry map[string]func(Spec) (Adversary, error)

func init() {
	registry = map[string]func(Spec) (Adversary, error){
		"none":          buildNone,
		"bba":           buildBBA,
		"gba":           buildGBA,
		"ima":           buildIMA,
		"evasion":       buildEvasion,
		"opportunistic": buildOpportunistic,
		"swtop":         buildSWTop,
		"distpoison":    buildDistPoison,
		"targeted":      buildTargeted,
		"maxgain":       buildMaxGain,
		"dropout":       buildDropout,
		"hetero":        buildHetero,
		"ramp":          buildRamp,
		"burst":         buildBurst,
	}
}

// New builds the named adversary from sp. Unknown names return an error
// wrapping ErrUnknown, so spec validation can reject them uniformly.
func New(sp Spec) (Adversary, error) {
	build, ok := registry[strings.ToLower(sp.Name)]
	if !ok {
		return nil, fmt.Errorf("%w %q (known: %s)", ErrUnknown, sp.Name, strings.Join(Names(), ", "))
	}
	return build(sp)
}

// Categorical reports whether the spec names a categorical adversary
// (reports are category ids, valid for the frequency task only); wrappers
// inherit from their inner attack.
func (sp Spec) Categorical() bool {
	switch strings.ToLower(sp.Name) {
	case "targeted", "maxgain":
		return true
	case "dropout", "hetero", "ramp", "burst":
		return sp.Inner != nil && sp.Inner.Categorical()
	}
	return false
}

// EpochAdaptive reports whether the spec names an epoch-keyed attacker
// (ramp, burst), directly or through a wrapper chain. Epoch-adaptive
// attacks need a surface that advances Env.Epoch (the serving layer /
// daploadgen); one-shot batch collections run at epoch 0, where a ramp
// emits only its frac0 fraction — epoch-less harnesses reject or warn on
// these specs instead of tabulating silently weakened attacks.
func (sp Spec) EpochAdaptive() bool {
	switch strings.ToLower(sp.Name) {
	case "ramp", "burst":
		return true
	case "dropout", "hetero":
		return sp.Inner != nil && sp.Inner.EpochAdaptive()
	}
	return false
}

// EpochSpan returns the number of epochs over which an epoch-adaptive
// spec's schedule plays out (the ramp length, the burst period — the
// innermost adaptive attack wins), or 1 for attacks with no epoch axis.
// daploadgen uses it to size -attack-epochs when the flag is left unset.
func (sp Spec) EpochSpan() int {
	switch strings.ToLower(sp.Name) {
	case "ramp":
		if sp.Epochs > 0 {
			return sp.Epochs
		}
		return 8
	case "burst":
		if sp.Period > 0 {
			return sp.Period
		}
		return 4
	case "dropout", "hetero":
		if sp.Inner != nil {
			return sp.Inner.EpochSpan()
		}
	}
	return 1
}

// ParseSide parses a poisoned-side name ("" and "right" select SideRight).
func ParseSide(s string) (Side, error) {
	switch strings.ToLower(s) {
	case "", "right":
		return SideRight, nil
	case "left":
		return SideLeft, nil
	}
	return SideRight, fmt.Errorf("attack: unknown side %q (want left or right)", s)
}

// ParseDist parses a poison-distribution name ("" selects uniform).
func ParseDist(s string) (Dist, error) {
	switch strings.ToLower(s) {
	case "", "uniform":
		return DistUniform, nil
	case "gaussian":
		return DistGaussian, nil
	case "beta16", "beta(1,6)":
		return DistBeta16, nil
	case "beta61", "beta(6,1)":
		return DistBeta61, nil
	}
	return 0, fmt.Errorf("attack: unknown distribution %q (want uniform, gaussian, beta16 or beta61)", s)
}

// rangeOrDefault resolves a range label, defaulting to the paper's
// standard [C/2, C].
func rangeOrDefault(label string) (Range, error) {
	if label == "" {
		return RangeHighHalf, nil
	}
	rg, ok := RangeByName(label)
	if !ok {
		return Range{}, fmt.Errorf("attack: unknown range %q", label)
	}
	return rg, nil
}

func checkFrac(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("attack: %s %g outside [0,1]", name, v)
	}
	return nil
}

func buildNone(Spec) (Adversary, error) { return None{}, nil }

func buildBBA(sp Spec) (Adversary, error) {
	side, err := ParseSide(sp.Side)
	if err != nil {
		return nil, err
	}
	rg, err := rangeOrDefault(sp.Range)
	if err != nil {
		return nil, err
	}
	dist, err := ParseDist(sp.Dist)
	if err != nil {
		return nil, err
	}
	return &BBA{Side: side, Range: rg, Dist: dist}, nil
}

func buildGBA(sp Spec) (Adversary, error) {
	frac := sp.FracLeft
	if frac == 0 {
		frac = 0.5
	}
	if err := checkFrac("frac_left", frac); err != nil {
		return nil, err
	}
	left, err := rangeOrDefault(sp.LeftRange)
	if err != nil {
		return nil, err
	}
	right, err := rangeOrDefault(sp.RightRange)
	if err != nil {
		return nil, err
	}
	dist, err := ParseDist(sp.Dist)
	if err != nil {
		return nil, err
	}
	return &GBA{FracLeft: frac, LeftRange: left, RightRange: right, Dist: dist}, nil
}

func buildIMA(sp Spec) (Adversary, error) {
	g := -1.0
	if sp.G != nil {
		g = *sp.G
	}
	if g < -1 || g > 1 {
		return nil, fmt.Errorf("attack: ima input g=%g outside [-1,1]", g)
	}
	return &IMA{G: g}, nil
}

func buildEvasion(sp Spec) (Adversary, error) {
	a := sp.A
	if a == 0 {
		a = 0.25
	}
	if err := checkFrac("evasion fraction a", a); err != nil {
		return nil, err
	}
	return &Evasion{A: a}, nil
}

func buildOpportunistic(sp Spec) (Adversary, error) {
	trim := sp.TrimFrac
	if trim == 0 {
		trim = 0.5
	}
	if err := checkFrac("trim_frac", trim); err != nil {
		return nil, err
	}
	if sp.Margin < 0 {
		return nil, fmt.Errorf("attack: margin %g must be non-negative", sp.Margin)
	}
	return &Opportunistic{TrimFrac: trim, Margin: sp.Margin}, nil
}

func buildSWTop(Spec) (Adversary, error) { return SWTop{}, nil }

func buildDistPoison(sp Spec) (Adversary, error) {
	dist := DistBeta61
	if sp.Dist != "" {
		var err error
		if dist, err = ParseDist(sp.Dist); err != nil {
			return nil, err
		}
	}
	return &DistPoison{Dist: dist}, nil
}

func buildTargeted(sp Spec) (Adversary, error) {
	if len(sp.Cats) == 0 {
		return nil, errors.New("attack: targeted needs at least one category in cats")
	}
	for _, c := range sp.Cats {
		if c < 0 {
			return nil, fmt.Errorf("attack: negative target category %d", c)
		}
	}
	return &Targeted{Cats: append([]int(nil), sp.Cats...)}, nil
}

func buildMaxGain(sp Spec) (Adversary, error) {
	if sp.Targets < 0 {
		return nil, fmt.Errorf("attack: targets must be non-negative (got %d)", sp.Targets)
	}
	return &MaxGain{Targets: sp.Targets}, nil
}

// inner builds a wrapper's modulated attack, defaulting to the paper's
// standard BBA.
func inner(sp Spec) (Adversary, error) {
	if sp.Inner == nil {
		return NewBBA(RangeHighHalf, DistUniform), nil
	}
	return New(*sp.Inner)
}

func buildDropout(sp Spec) (Adversary, error) {
	frac := sp.Frac
	if frac == 0 {
		frac = 0.5
	}
	if err := checkFrac("dropout frac", frac); err != nil {
		return nil, err
	}
	in, err := inner(sp)
	if err != nil {
		return nil, err
	}
	return &Dropout{Frac: frac, Inner: in}, nil
}

func buildHetero(sp Spec) (Adversary, error) {
	if len(sp.GroupFrac) == 0 {
		return nil, errors.New("attack: hetero needs per-group fractions in group_frac")
	}
	for _, f := range sp.GroupFrac {
		if err := checkFrac("group_frac entry", f); err != nil {
			return nil, err
		}
	}
	in, err := inner(sp)
	if err != nil {
		return nil, err
	}
	return &Hetero{Fracs: append([]float64(nil), sp.GroupFrac...), Inner: in}, nil
}

func buildRamp(sp Spec) (Adversary, error) {
	frac1 := 1.0
	if sp.Frac1 != nil {
		frac1 = *sp.Frac1
	}
	if err := checkFrac("frac0", sp.Frac0); err != nil {
		return nil, err
	}
	if err := checkFrac("frac1", frac1); err != nil {
		return nil, err
	}
	epochs := sp.Epochs
	if epochs == 0 {
		epochs = 8
	}
	if epochs < 1 {
		return nil, fmt.Errorf("attack: ramp epochs must be positive (got %d)", epochs)
	}
	in, err := inner(sp)
	if err != nil {
		return nil, err
	}
	return &Ramp{Frac0: sp.Frac0, Frac1: frac1, Epochs: epochs, Inner: in}, nil
}

func buildBurst(sp Spec) (Adversary, error) {
	period := sp.Period
	if period == 0 {
		period = 4
	}
	duty := sp.Duty
	if duty == 0 {
		duty = 1
	}
	if period < 1 || duty < 1 || duty > period {
		return nil, fmt.Errorf("attack: burst needs 1 <= duty <= period (got duty=%d period=%d)", duty, period)
	}
	in, err := inner(sp)
	if err != nil {
		return nil, err
	}
	return &Burst{Period: period, Duty: duty, Inner: in}, nil
}
