package attack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldp"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

func env1() Env { return EnvFor(pm.MustNew(1), 0) }

func TestBBAWithinRange(t *testing.T) {
	r := rng.New(1)
	env := env1()
	c := env.Domain.Hi
	for _, rg := range []Range{RangeHighQuarter, RangeHighHalf, RangeLowHalf, RangeFull} {
		a := NewBBA(rg, DistUniform)
		vals := a.Poison(r, env, 2000)
		if len(vals) != 2000 {
			t.Fatalf("%s: %d values", a.Name(), len(vals))
		}
		lo, hi := rg.LoC*c, rg.HiC*c
		for _, v := range vals {
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("%s: value %v outside [%v,%v]", a.Name(), v, lo, hi)
			}
		}
	}
}

func TestBBALeftSide(t *testing.T) {
	r := rng.New(2)
	env := env1()
	a := &BBA{Side: SideLeft, Range: RangeHighHalf, Dist: DistUniform}
	for _, v := range a.Poison(r, env, 1000) {
		if v > 0 {
			t.Fatalf("left-side poison value %v > O", v)
		}
	}
}

func TestBBADistributions(t *testing.T) {
	r := rng.New(3)
	env := env1()
	c := env.Domain.Hi
	for _, d := range Dists() {
		a := NewBBA(RangeHighHalf, d)
		vals := a.Poison(r, env, 20000)
		mean := stats.Mean(vals)
		if mean < 0.5*c || mean > c {
			t.Fatalf("%s: mean %v outside range", d, mean)
		}
		switch d {
		case DistBeta16:
			if mean > 0.5*c+0.25*(0.5*c) {
				t.Fatalf("Beta(1,6) should skew low, mean %v", mean)
			}
		case DistBeta61:
			if mean < c-0.25*(0.5*c) {
				t.Fatalf("Beta(6,1) should skew high, mean %v", mean)
			}
		}
	}
}

func TestDistStrings(t *testing.T) {
	names := map[Dist]string{DistUniform: "Uniform", DistGaussian: "Gaussian", DistBeta16: "Beta(1,6)", DistBeta61: "Beta(6,1)"}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("%v.String() = %q", int(d), d.String())
		}
	}
	if Dist(99).String() != "unknown" {
		t.Fatal("unknown dist string")
	}
}

func TestGBASplitsSides(t *testing.T) {
	r := rng.New(4)
	env := env1()
	a := &GBA{FracLeft: 0.3, LeftRange: RangeHighHalf, RightRange: RangeHighHalf, Dist: DistUniform}
	vals := a.Poison(r, env, 1000)
	nLeft := 0
	for _, v := range vals {
		if v < 0 {
			nLeft++
		}
	}
	if nLeft != 300 {
		t.Fatalf("left values = %d, want 300", nLeft)
	}
}

func TestNoneAdversary(t *testing.T) {
	if got := (None{}).Poison(rng.New(1), env1(), 50); len(got) != 0 {
		t.Fatalf("None produced %d values", len(got))
	}
	if (None{}).Name() != "none" {
		t.Fatal("bad name")
	}
}

func TestIMAReportsLookLegit(t *testing.T) {
	r := rng.New(5)
	env := env1()
	a := &IMA{G: 1}
	vals := a.Poison(r, env, 50000)
	for _, v := range vals {
		if !env.Domain.Contains(v) {
			t.Fatalf("IMA report %v outside domain", v)
		}
	}
	// Honest perturbation of g=1 keeps the report mean near 1.
	if mean := stats.Mean(vals); math.Abs(mean-1) > 0.05 {
		t.Fatalf("IMA mean %v, want ~1", mean)
	}
}

func TestEvasionSplit(t *testing.T) {
	r := rng.New(6)
	env := env1()
	c := env.Domain.Hi
	a := &Evasion{A: 0.3}
	vals := a.Poison(r, env, 1000)
	evasive, true_ := 0, 0
	for _, v := range vals {
		switch {
		case math.Abs(v-(-c/2)) < 1e-9:
			evasive++
		case v >= c/2 && v <= c:
			true_++
		default:
			t.Fatalf("unexpected evasion value %v", v)
		}
	}
	if evasive != 300 || true_ != 700 {
		t.Fatalf("split %d/%d, want 300/700", evasive, true_)
	}
}

func TestRangeByName(t *testing.T) {
	for _, name := range []string{"[3C/4,C]", "[C/2,C]", "[O,C/2]", "[O,C]", "[C/2,3C/4]"} {
		if _, ok := RangeByName(name); !ok {
			t.Fatalf("range %q missing", name)
		}
	}
	if _, ok := RangeByName("nope"); ok {
		t.Fatal("unknown range resolved")
	}
}

func TestRangeResolveAsymmetricDomain(t *testing.T) {
	// SW-like domain [−b, 1+b] anchored at O.
	env := Env{Domain: ldp.Domain{Lo: -0.2, Hi: 1.2}, O: 0.5}
	lo, hi := RangeHighHalf.Resolve(env, SideRight)
	if lo < 0.5 || hi > 1.2+1e-12 || lo >= hi {
		t.Fatalf("resolved [%v,%v]", lo, hi)
	}
	lo, hi = RangeHighHalf.Resolve(env, SideLeft)
	if hi > 0.5 || lo < -0.2-1e-12 || lo >= hi {
		t.Fatalf("resolved left [%v,%v]", lo, hi)
	}
}

func TestSideString(t *testing.T) {
	if SideLeft.String() != "left" || SideRight.String() != "right" {
		t.Fatal("Side.String broken")
	}
}

func TestReduceToBBAPreservesDeviation(t *testing.T) {
	vals := []float64{-3, -2.5, -1, 0.5, 2}
	o, dl, dr := 0.0, -4.0, 4.0
	var wantDev float64
	for _, v := range vals {
		wantDev += v - o
	}
	out, side, err := ReduceToBBA(vals, o, dl, dr)
	if err != nil {
		t.Fatal(err)
	}
	if side != SideLeft {
		t.Fatalf("side = %v, want left", side)
	}
	var gotDev float64
	for _, v := range out {
		if v > o {
			t.Fatalf("value %v on wrong side", v)
		}
		if v < dl {
			t.Fatalf("value %v below domain", v)
		}
		gotDev += v - o
	}
	if math.Abs(gotDev-wantDev) > 1e-9 {
		t.Fatalf("deviation %v, want %v", gotDev, wantDev)
	}
}

func TestReduceToBBARightHeavy(t *testing.T) {
	vals := []float64{-0.5, 1, 2, 3}
	out, side, err := ReduceToBBA(vals, 0, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if side != SideRight {
		t.Fatalf("side = %v", side)
	}
	var dev float64
	for _, v := range out {
		if v < 0 {
			t.Fatalf("value %v on wrong side", v)
		}
		dev += v
	}
	if math.Abs(dev-5.5) > 1e-9 {
		t.Fatalf("deviation %v, want 5.5", dev)
	}
}

func TestReduceToBBAValidation(t *testing.T) {
	if _, _, err := ReduceToBBA([]float64{0}, 0, 1, -1); err == nil {
		t.Fatal("inverted domain accepted")
	}
	if _, _, err := ReduceToBBA([]float64{0}, 9, -1, 1); err == nil {
		t.Fatal("O outside domain accepted")
	}
	if _, _, err := ReduceToBBA([]float64{7}, 0, -1, 1); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
}

func TestReduceToBBABalanced(t *testing.T) {
	out, _, err := ReduceToBBA([]float64{-1, 1}, 0, -2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("balanced attack should reduce to empty, got %v", out)
	}
}

// Property (Theorem 1): for random two-sided attacks, the reduction yields
// a one-sided set with identical total deviation, inside the domain.
func TestReduceToBBAProperty(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint16, nRaw uint8) bool {
		rr := rng.Split(uint64(seed), uint64(nRaw))
		n := 1 + int(nRaw%20)
		vals := make([]float64, n)
		var want float64
		for i := range vals {
			vals[i] = rng.Uniform(rr, -5, 5)
			want += vals[i]
		}
		out, side, err := ReduceToBBA(vals, 0, -5, 5)
		if err != nil {
			return false
		}
		var got float64
		for _, v := range out {
			if v < -5 || v > 5 {
				return false
			}
			if side == SideLeft && v > 0 {
				return false
			}
			if side == SideRight && v < 0 {
				return false
			}
			got += v
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}
