package attack

// Registry tests mirroring internal/defense/registry_test.go: every name
// builds, unknown names fail with ErrUnknown, specs survive a JSON
// round-trip bit-identically (the rebuilt adversary draws the exact same
// poison stream), and the registry path reproduces the directly
// constructed adversaries at pinned seeds.

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/ldp"
	"repro/internal/ldp/pm"
	"repro/internal/ldp/sw"
	"repro/internal/rng"
)

func f64(v float64) *float64 { return &v }

// specFixtures covers every registry name with non-default parameters
// where the attack has any.
func specFixtures() []Spec {
	return []Spec{
		{Name: "none"},
		{Name: "bba", Side: "left", Range: "[3C/4,C]", Dist: "gaussian"},
		{Name: "bba"},
		{Name: "gba", FracLeft: 0.3, LeftRange: "[O,C/2]", RightRange: "[C/2,C]", Dist: "beta61"},
		{Name: "ima", G: f64(0.5)},
		{Name: "evasion", A: 0.4},
		{Name: "opportunistic", TrimFrac: 0.3, Margin: 0.05},
		{Name: "swtop"},
		{Name: "distpoison", Dist: "beta16"},
		{Name: "targeted", Cats: []int{3, 7}},
		{Name: "maxgain", Targets: 2},
		{Name: "dropout", Frac: 0.3, Inner: &Spec{Name: "bba", Dist: "gaussian"}},
		{Name: "hetero", GroupFrac: []float64{1, 0.5, 0}},
		{Name: "ramp", Frac0: 0.1, Frac1: f64(0.9), Epochs: 4},
		{Name: "burst", Period: 3, Duty: 2, Inner: &Spec{Name: "maxgain"}},
	}
}

// envFor returns a poison environment matching the spec's task flavour.
func envForSpec(sp Spec) Env {
	if sp.Categorical() {
		return Env{Domain: ldp.Domain{Lo: 0, Hi: 16}}
	}
	if sp.Name == "swtop" || sp.Name == "distpoison" {
		m, err := sw.New(1)
		if err != nil {
			panic(err)
		}
		return EnvFor(m, 0.5)
	}
	return EnvFor(pm.MustNew(1), 0)
}

func poisonStream(t *testing.T, adv Adversary, env Env, seed uint64) []float64 {
	t.Helper()
	r := rng.New(seed)
	var out []float64
	for epoch := 0; epoch < 6; epoch++ {
		e := env
		e.Epoch = epoch
		e.Group = epoch % 3
		out = append(out, adv.Poison(r, e, 64)...)
	}
	return out
}

func TestSpecRoundTripBitIdentity(t *testing.T) {
	for _, sp := range specFixtures() {
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("%s: marshal: %v", sp.Name, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", sp.Name, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("%s: spec changed over JSON: %+v != %+v", sp.Name, back, sp)
		}
		a1, err := New(sp)
		if err != nil {
			t.Fatalf("%s: build: %v", sp.Name, err)
		}
		a2, err := New(back)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", sp.Name, err)
		}
		if a1.Name() != a2.Name() {
			t.Fatalf("%s: names diverge: %q vs %q", sp.Name, a1.Name(), a2.Name())
		}
		env := envForSpec(sp)
		s1 := poisonStream(t, a1, env, 7)
		s2 := poisonStream(t, a2, env, 7)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: poison streams diverge after round trip", sp.Name)
		}
	}
}

func TestSpecUnknownName(t *testing.T) {
	for _, name := range []string{"", "byzantine", "bba2"} {
		if _, err := New(Spec{Name: name}); !errors.Is(err, ErrUnknown) {
			t.Fatalf("New(%q) = %v, want ErrUnknown", name, err)
		}
	}
}

func TestSpecBadParams(t *testing.T) {
	bad := []Spec{
		{Name: "bba", Side: "up"},
		{Name: "bba", Range: "[C,2C]"},
		{Name: "bba", Dist: "cauchy"},
		{Name: "gba", FracLeft: 1.5},
		{Name: "ima", G: f64(2)},
		{Name: "evasion", A: -0.5},
		{Name: "opportunistic", TrimFrac: 1.5},
		{Name: "targeted"},
		{Name: "targeted", Cats: []int{-1}},
		{Name: "maxgain", Targets: -1},
		{Name: "dropout", Frac: 2},
		{Name: "hetero"},
		{Name: "hetero", GroupFrac: []float64{2}},
		{Name: "ramp", Frac0: -0.1},
		{Name: "burst", Period: 2, Duty: 3},
		{Name: "dropout", Inner: &Spec{Name: "nope"}},
	}
	for _, sp := range bad {
		if _, err := New(sp); err == nil {
			t.Fatalf("New(%+v) accepted a bad spec", sp)
		}
	}
}

func TestNamesCoverRegistry(t *testing.T) {
	names := Names()
	if len(names) < 14 {
		t.Fatalf("registry has %d names, want >= 14: %v", len(names), names)
	}
	for _, name := range names {
		sp := Spec{Name: name}
		switch name {
		case "targeted":
			sp.Cats = []int{0}
		case "hetero":
			sp.GroupFrac = []float64{1, 0.5}
		}
		if _, err := New(sp); err != nil {
			t.Fatalf("registered name %q does not build with defaults: %v", name, err)
		}
	}
}

// TestRegistryMatchesDirect pins the seed-for-seed equivalence between
// registry-built adversaries and the directly constructed ones the simulator
// used before the registry existed.
func TestRegistryMatchesDirect(t *testing.T) {
	cases := []struct {
		spec   Spec
		direct Adversary
	}{
		{Spec{Name: "none"}, None{}},
		{Spec{Name: "bba"}, NewBBA(RangeHighHalf, DistUniform)},
		{Spec{Name: "bba", Range: "[3C/4,C]", Dist: "gaussian"}, NewBBA(RangeHighQuarter, DistGaussian)},
		{Spec{Name: "bba", Side: "left"}, &BBA{Side: SideLeft, Range: RangeHighHalf, Dist: DistUniform}},
		{Spec{Name: "gba"}, &GBA{FracLeft: 0.5, LeftRange: RangeHighHalf, RightRange: RangeHighHalf, Dist: DistUniform}},
		{Spec{Name: "ima", G: f64(-1)}, &IMA{G: -1}},
		{Spec{Name: "ima"}, &IMA{G: -1}},
		{Spec{Name: "evasion", A: 0.3}, &Evasion{A: 0.3}},
		{Spec{Name: "opportunistic", TrimFrac: 0.5}, &Opportunistic{TrimFrac: 0.5}},
		{Spec{Name: "swtop"}, SWTop{}},
		{Spec{Name: "distpoison"}, &DistPoison{Dist: DistBeta61}},
		{Spec{Name: "targeted", Cats: []int{5}}, &Targeted{Cats: []int{5}}},
		{Spec{Name: "maxgain"}, &MaxGain{}},
		{Spec{Name: "dropout"}, &Dropout{Frac: 0.5, Inner: NewBBA(RangeHighHalf, DistUniform)}},
		{Spec{Name: "hetero", GroupFrac: []float64{1, 0}}, &Hetero{Fracs: []float64{1, 0}, Inner: NewBBA(RangeHighHalf, DistUniform)}},
		{Spec{Name: "ramp"}, &Ramp{Frac0: 0, Frac1: 1, Epochs: 8, Inner: NewBBA(RangeHighHalf, DistUniform)}},
		{Spec{Name: "burst"}, &Burst{Period: 4, Duty: 1, Inner: NewBBA(RangeHighHalf, DistUniform)}},
	}
	for _, tc := range cases {
		built, err := New(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Name, err)
		}
		if built.Name() != tc.direct.Name() {
			t.Fatalf("%s: name %q != direct %q", tc.spec.Name, built.Name(), tc.direct.Name())
		}
		env := envForSpec(tc.spec)
		s1 := poisonStream(t, built, env, 11)
		s2 := poisonStream(t, tc.direct, env, 11)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: registry and direct poison streams diverge", tc.spec.Name)
		}
	}
}

func TestWrapperModulation(t *testing.T) {
	r := rng.New(3)
	env := EnvFor(pm.MustNew(1), 0)

	hetero := &Hetero{Fracs: []float64{1, 0}, Inner: NewBBA(RangeHighHalf, DistUniform)}
	e := env
	e.Group = 0
	if got := len(hetero.Poison(r, e, 100)); got != 100 {
		t.Fatalf("hetero group 0 kept %d/100", got)
	}
	e.Group = 1
	if got := len(hetero.Poison(r, e, 100)); got != 0 {
		t.Fatalf("hetero group 1 kept %d/100, want 0", got)
	}
	e.Group = 2 // cycles back to frac 1
	if got := len(hetero.Poison(r, e, 100)); got != 100 {
		t.Fatalf("hetero group 2 kept %d/100", got)
	}

	ramp := &Ramp{Frac0: 0, Frac1: 1, Epochs: 5, Inner: NewBBA(RangeHighHalf, DistUniform)}
	var prev int
	for epoch := 0; epoch < 7; epoch++ {
		e := env
		e.Epoch = epoch
		got := len(ramp.Poison(r, e, 100))
		want := int(math.Round(ramp.active(epoch) * 100))
		if got != want {
			t.Fatalf("ramp epoch %d kept %d, want %d", epoch, got, want)
		}
		if got < prev {
			t.Fatalf("ramp shrank at epoch %d: %d < %d", epoch, got, prev)
		}
		prev = got
	}
	if ramp.active(0) != 0 || ramp.active(4) != 1 || ramp.active(99) != 1 {
		t.Fatalf("ramp endpoints wrong: %v %v %v", ramp.active(0), ramp.active(4), ramp.active(99))
	}

	burst := &Burst{Period: 3, Duty: 1, Inner: NewBBA(RangeHighHalf, DistUniform)}
	for epoch := 0; epoch < 9; epoch++ {
		e := env
		e.Epoch = epoch
		got := len(burst.Poison(r, e, 50))
		if epoch%3 == 0 && got != 50 {
			t.Fatalf("burst epoch %d kept %d, want 50", epoch, got)
		}
		if epoch%3 != 0 && got != 0 {
			t.Fatalf("burst epoch %d kept %d, want 0", epoch, got)
		}
	}

	drop := &Dropout{Frac: 0.5, Inner: NewBBA(RangeHighHalf, DistUniform)}
	total := 0
	for i := 0; i < 50; i++ {
		total += len(drop.Poison(r, env, 100))
	}
	if total < 2200 || total > 2800 {
		t.Fatalf("dropout kept %d/5000 reports, want about half", total)
	}
}

func TestCategoricalAdversaries(t *testing.T) {
	r := rng.New(5)
	env := Env{Domain: ldp.Domain{Lo: 0, Hi: 10}}

	tg := &Targeted{Cats: []int{2, 4}}
	for _, v := range tg.Poison(r, env, 500) {
		if v != 2 && v != 4 {
			t.Fatalf("targeted injected %v outside its category set", v)
		}
	}

	mg := &MaxGain{Targets: 2}
	seen := map[float64]bool{}
	for _, v := range mg.Poison(r, env, 500) {
		if v != 8 && v != 9 {
			t.Fatalf("maxgain injected %v, want top-2 categories", v)
		}
		seen[v] = true
	}
	if !seen[8] || !seen[9] {
		t.Fatalf("maxgain did not spread over its targets: %v", seen)
	}
}

func TestDistPoisonStaysInInputRange(t *testing.T) {
	r := rng.New(6)
	m, err := sw.New(1)
	if err != nil {
		t.Fatal(err)
	}
	env := EnvFor(m, 0.5)
	dp := &DistPoison{Dist: DistBeta61}
	var mean float64
	vals := dp.Poison(r, env, 4000)
	for _, v := range vals {
		if v < 0 || v > 1 {
			t.Fatalf("distpoison value %v outside the SW input range [0,1]", v)
		}
		mean += v
	}
	mean /= float64(len(vals))
	if mean < 0.7 {
		t.Fatalf("Beta(6,1) poison should skew high, mean %v", mean)
	}
}

// mustPoisonLen asserts an adversary emits n reports (helper for the
// categorical equality test below).
func mustPoisonLen(t *testing.T, adv Adversary, env Env, r *rand.Rand, n int) []float64 {
	t.Helper()
	out := adv.Poison(r, env, n)
	if len(out) != n {
		t.Fatalf("%s emitted %d reports, want %d", adv.Name(), len(out), n)
	}
	return out
}

func TestTargetedMatchesInlineDraws(t *testing.T) {
	// CollectFreq's historical inline loop drew one IntN per report;
	// Targeted must consume the stream identically so the adversary path
	// reproduces the legacy collection bit for bit.
	cats := []int{1, 3, 9}
	env := Env{Domain: ldp.Domain{Lo: 0, Hi: 12}}
	r1 := rng.New(9)
	got := mustPoisonLen(t, &Targeted{Cats: cats}, env, r1, 200)
	r2 := rng.New(9)
	for i := 0; i < 200; i++ {
		want := float64(cats[r2.IntN(len(cats))])
		if got[i] != want {
			t.Fatalf("report %d: %v != inline draw %v", i, got[i], want)
		}
	}
}
