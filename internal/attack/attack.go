// Package attack implements the paper's threat models: the General
// Byzantine Attack (Definition 2), the Biased Byzantine Attack
// (Definition 4) with the poison-value distributions of §VI, the input
// manipulation attack of [12]/[38], the evasion attack of §V-D, and the
// constructive GBA→BBA reduction of Theorem 1.
//
// An Adversary produces the poison reports of the colluding Byzantine
// users. Poison values are chosen in the *perturbation output domain*
// [D_L, D_R] — attackers skip the LDP mechanism entirely (except for the
// input manipulation attack, which perturbs a chosen input to stay
// disguised).
package attack

import (
	"math/rand/v2"

	"repro/internal/ldp"
)

// Env is everything an adversary knows when poisoning one collection
// round: the mechanism in use (public, per Kerckhoffs), its output domain,
// and the collector's reference mean O (the attacker aims to drag the
// estimate away from it). Group and Epoch locate the poisoned reports in
// the protocol — colluders see which group each member joined and share an
// epoch clock — and drive the heterogeneous (Hetero) and streaming (Ramp,
// Burst) attacker families; plain batch adversaries ignore them.
type Env struct {
	Mech   ldp.Mechanism
	Domain ldp.Domain
	O      float64
	// Group is the index of the protocol group the poisoned user sits in
	// (0 in single-group collections).
	Group int
	// Epoch is the serving layer's epoch counter at poison time (0 in
	// one-shot batch collections).
	Epoch int
}

// EnvFor builds an Env from a mechanism.
func EnvFor(mech ldp.Mechanism, o float64) Env {
	return Env{Mech: mech, Domain: mech.OutputDomain(), O: o}
}

// Adversary produces n poison reports for one collection round.
type Adversary interface {
	Name() string
	Poison(r *rand.Rand, env Env, n int) []float64
}

// Range resolves a poison-value range within an output domain. The paper
// expresses ranges as multiples of the domain bound C (e.g. Poi[3C/4, C])
// anchored at O; LoC and HiC are those multiples. For the symmetric PM
// domain [−C, C], C is Domain.Hi; for asymmetric domains (SW) the
// fractions are applied to the distance from O to the poisoned edge.
type Range struct {
	LoC, HiC float64
}

// Resolve maps the range into concrete bounds on the poisoned side.
func (rg Range) Resolve(env Env, side Side) (lo, hi float64) {
	if side == SideRight {
		edge := env.Domain.Hi
		span := edge - 0 // paper anchors poison ranges at O′ = 0 scaled by C
		if env.Domain.Lo >= 0 || env.Domain.Hi <= 0 {
			// Asymmetric domain: anchor at O instead.
			span = edge - env.O
			return env.O + rg.LoC*span, env.O + rg.HiC*span
		}
		return rg.LoC * span, rg.HiC * span
	}
	edge := env.Domain.Lo
	span := 0 - edge
	if env.Domain.Lo >= 0 || env.Domain.Hi <= 0 {
		span = env.O - edge
		return env.O - rg.HiC*span, env.O - rg.LoC*span
	}
	return -rg.HiC * span, -rg.LoC * span
}

// Side is the poisoned side chosen by the adversary.
type Side int

// Adversary-side constants (kept separate from emf.Side so the attack
// package stays independent of the defense machinery).
const (
	SideLeft Side = iota
	SideRight
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == SideLeft {
		return "left"
	}
	return "right"
}

// The paper's four standard poison ranges (§VI-B, Table I and Fig. 6).
var (
	RangeHighQuarter = Range{0.75, 1} // Poi[3C/4, C]
	RangeHighHalf    = Range{0.5, 1}  // Poi[C/2, C]
	RangeLowHalf     = Range{0, 0.5}  // Poi[O, C/2]
	RangeFull        = Range{0, 1}    // Poi[O, C]
	RangeMidQuarter  = Range{0.5, 0.75}
)

// RangeByName resolves the paper's textual range labels.
func RangeByName(name string) (Range, bool) {
	switch name {
	case "[3C/4,C]":
		return RangeHighQuarter, true
	case "[C/2,C]":
		return RangeHighHalf, true
	case "[O,C/2]":
		return RangeLowHalf, true
	case "[O,C]":
		return RangeFull, true
	case "[C/2,3C/4]":
		return RangeMidQuarter, true
	}
	return Range{}, false
}
