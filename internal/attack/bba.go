package attack

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/rng"
)

// Dist is the distribution of poison values within the resolved range,
// matching the Fig. 7(c)(d) workloads.
type Dist int

// Poison value distributions.
const (
	DistUniform Dist = iota
	DistGaussian
	DistBeta16
	DistBeta61
)

// String implements fmt.Stringer.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "Uniform"
	case DistGaussian:
		return "Gaussian"
	case DistBeta16:
		return "Beta(1,6)"
	case DistBeta61:
		return "Beta(6,1)"
	}
	return "unknown"
}

// Dists lists the Fig. 7 poison distributions in paper order.
func Dists() []Dist { return []Dist{DistUniform, DistGaussian, DistBeta16, DistBeta61} }

func (d Dist) sample(r *rand.Rand, lo, hi float64) float64 {
	switch d {
	case DistGaussian:
		mu := (lo + hi) / 2
		sigma := (hi - lo) / 6
		return rng.TruncNormal(r, mu, sigma, lo, hi)
	case DistBeta16:
		return lo + (hi-lo)*rng.Beta(r, 1, 6)
	case DistBeta61:
		return lo + (hi-lo)*rng.Beta(r, 6, 1)
	default:
		return rng.Uniform(r, lo, hi)
	}
}

// BBA is a Biased Byzantine Attack (Definition 4): all poison values land
// on one side of O, drawn from Dist over the resolved Range.
type BBA struct {
	Side  Side
	Range Range
	Dist  Dist
}

// NewBBA returns a right-side biased attack over rg with distribution d.
func NewBBA(rg Range, d Dist) *BBA {
	return &BBA{Side: SideRight, Range: rg, Dist: d}
}

// Name implements Adversary.
func (a *BBA) Name() string {
	return fmt.Sprintf("BBA(%s, [%g,%g]·C, %s)", a.Side, a.Range.LoC, a.Range.HiC, a.Dist)
}

// Poison implements Adversary.
func (a *BBA) Poison(r *rand.Rand, env Env, n int) []float64 {
	lo, hi := a.Range.Resolve(env, a.Side)
	out := make([]float64, n)
	for i := range out {
		out[i] = env.Domain.Clamp(a.Dist.sample(r, lo, hi))
	}
	return out
}

// GBA is a General Byzantine Attack (Definition 2) that splits its poison
// mass across both sides of O: FracLeft of the reports go to the left
// range, the rest to the right range. It demonstrates that two-sided
// attacks reduce to one-sided ones (Theorem 1) in mean estimation.
type GBA struct {
	FracLeft   float64
	LeftRange  Range
	RightRange Range
	Dist       Dist
}

// Name implements Adversary.
func (a *GBA) Name() string { return fmt.Sprintf("GBA(left=%.0f%%)", a.FracLeft*100) }

// Poison implements Adversary.
func (a *GBA) Poison(r *rand.Rand, env Env, n int) []float64 {
	out := make([]float64, 0, n)
	nLeft := int(a.FracLeft * float64(n))
	lo, hi := a.LeftRange.Resolve(env, SideLeft)
	for i := 0; i < nLeft; i++ {
		out = append(out, env.Domain.Clamp(a.Dist.sample(r, lo, hi)))
	}
	lo, hi = a.RightRange.Resolve(env, SideRight)
	for i := nLeft; i < n; i++ {
		out = append(out, env.Domain.Clamp(a.Dist.sample(r, lo, hi)))
	}
	return out
}

// Opportunistic is the threshold-hugging attacker of the paper's §I
// trimming critique: knowing the collector trims the top TrimFrac of the
// reports, it places every poison value just *inside* the trimming
// threshold — at the (1−TrimFrac−Margin) quantile of the expected report
// distribution — so trimming removes honest tail reports instead of the
// poison. It needs an estimate of the honest report quantile, which the
// colluders compute by simulating the public mechanism on a reference
// value distribution (they know the protocol; Kerckhoffs again).
type Opportunistic struct {
	// TrimFrac is the collector's trimming fraction the attacker evades.
	TrimFrac float64
	// Margin keeps the poison strictly inside the kept region.
	Margin float64
	// Reference are values the attacker believes resemble the honest
	// population (used to locate the quantile). Empty means uniform.
	Reference []float64
}

// Name implements Adversary.
func (a *Opportunistic) Name() string {
	return fmt.Sprintf("Opportunistic(trim=%.0f%%)", a.TrimFrac*100)
}

// Poison implements Adversary.
func (a *Opportunistic) Poison(r *rand.Rand, env Env, n int) []float64 {
	margin := a.Margin
	if margin <= 0 {
		margin = 0.02
	}
	q := 1 - a.TrimFrac - margin
	if q < 0.5 {
		q = 0.5
	}
	// Simulate honest reports to find the quantile of the mixed report
	// distribution the collector will sort.
	const sims = 4000
	simReports := make([]float64, 0, sims)
	for i := 0; i < sims; i++ {
		var v float64
		if len(a.Reference) > 0 {
			v = a.Reference[r.IntN(len(a.Reference))]
		} else {
			v = 2*r.Float64() - 1
		}
		if env.Mech != nil {
			v = env.Mech.Perturb(r, v)
		}
		simReports = append(simReports, v)
	}
	threshold := quantile(simReports, q)
	out := make([]float64, n)
	for i := range out {
		// Cluster tightly just below the threshold.
		out[i] = env.Domain.Clamp(threshold * (1 - 0.02*r.Float64()))
	}
	return out
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// None is the no-attack adversary (γ = 0 rounds, Fig. 5(c)).
type None struct{}

// Name implements Adversary.
func (None) Name() string { return "none" }

// Poison implements Adversary.
func (None) Poison(_ *rand.Rand, _ Env, n int) []float64 {
	return make([]float64, 0)
}
