package attack

// Stateful attacker families for the streaming and heterogeneous threat
// models: wrappers that modulate an inner adversary's poison volume by
// group (Hetero), by epoch (Ramp, Burst) or per report (Dropout). The
// modulation is a pure function of Env — colluders coordinate through the
// public protocol state (group assignment, epoch clock) rather than
// hidden shared memory — so every wrapped adversary stays deterministic
// for a fixed rng stream and safe to share across goroutines.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// Dropout models colluder dropout (and, adversarially, deliberate
// under-reporting to starve the collector): each of the n poison report
// slots is independently dropped with probability Frac, and the inner
// adversary fills only the surviving slots. Groups receiving fewer
// reports shift the collector's n̂_t accounting — the dropout-resilience
// scenario of the hierarchical secure-aggregation literature.
type Dropout struct {
	// Frac is the per-report drop probability.
	Frac float64
	// Inner produces the surviving poison reports.
	Inner Adversary
}

// Name implements Adversary.
func (a *Dropout) Name() string {
	return fmt.Sprintf("Dropout(%.0f%%, %s)", a.Frac*100, a.Inner.Name())
}

// Poison implements Adversary.
func (a *Dropout) Poison(r *rand.Rand, env Env, n int) []float64 {
	kept := 0
	for i := 0; i < n; i++ {
		if r.Float64() >= a.Frac {
			kept++
		}
	}
	return a.Inner.Poison(r, env, kept)
}

// Hetero models heterogeneous collusion across sub-populations: the
// colluding fraction differs per protocol group (the arbitrary-collusion
// setting of the multi-server secure-aggregation literature, mapped onto
// DAP's group axis). Group t poisons Fracs[t mod len(Fracs)] of its
// report slots through the inner adversary and stays silent on the rest,
// so e.g. Fracs{1, 0} attacks every other group at full strength.
type Hetero struct {
	// Fracs are the per-group active fractions, cycled over the groups.
	Fracs []float64
	// Inner produces the active poison reports.
	Inner Adversary
}

// Name implements Adversary.
func (a *Hetero) Name() string {
	parts := make([]string, len(a.Fracs))
	for i, f := range a.Fracs {
		parts[i] = fmt.Sprintf("%g", f)
	}
	return fmt.Sprintf("Hetero([%s], %s)", strings.Join(parts, " "), a.Inner.Name())
}

// Poison implements Adversary.
func (a *Hetero) Poison(r *rand.Rand, env Env, n int) []float64 {
	f := a.Fracs[env.Group%len(a.Fracs)]
	return a.Inner.Poison(r, env, int(math.Round(f*float64(n))))
}

// Ramp is a streaming attacker that escalates across epochs: the active
// poison fraction grows linearly from Frac0 at epoch 0 to Frac1 at epoch
// Epochs−1 and holds there. Ramping defeats defenses calibrated on early
// epochs — the attack looks harmless while baselines are learned, then
// reaches full strength.
type Ramp struct {
	// Frac0 and Frac1 are the active fractions at the ramp's ends.
	Frac0, Frac1 float64
	// Epochs is the ramp length (≤ 1 jumps straight to Frac1).
	Epochs int
	// Inner produces the active poison reports.
	Inner Adversary
}

// Name implements Adversary.
func (a *Ramp) Name() string {
	return fmt.Sprintf("Ramp(%g→%g over %d, %s)", a.Frac0, a.Frac1, a.Epochs, a.Inner.Name())
}

// active returns the poison fraction at epoch e.
func (a *Ramp) active(e int) float64 {
	if a.Epochs <= 1 || e >= a.Epochs-1 {
		return a.Frac1
	}
	if e < 0 {
		e = 0
	}
	return a.Frac0 + (a.Frac1-a.Frac0)*float64(e)/float64(a.Epochs-1)
}

// Poison implements Adversary.
func (a *Ramp) Poison(r *rand.Rand, env Env, n int) []float64 {
	return a.Inner.Poison(r, env, int(math.Round(a.active(env.Epoch)*float64(n))))
}

// Burst is an epoch-synchronized burst attacker: the colluders poison at
// full strength during the first Duty epochs of every Period-epoch cycle
// and stay silent otherwise. Bursts concentrate the attack budget into
// few windows — each burst epoch is hit as hard as a sustained attack
// while the tenant's long-run average poison volume stays low.
type Burst struct {
	// Period is the cycle length in epochs; Duty is how many of them are
	// poisoned (1 ≤ Duty ≤ Period).
	Period, Duty int
	// Inner produces the burst-epoch poison reports.
	Inner Adversary
}

// Name implements Adversary.
func (a *Burst) Name() string {
	return fmt.Sprintf("Burst(%d/%d, %s)", a.Duty, a.Period, a.Inner.Name())
}

// Poison implements Adversary.
func (a *Burst) Poison(r *rand.Rand, env Env, n int) []float64 {
	e := env.Epoch
	if e < 0 {
		e = -e
	}
	if e%a.Period >= a.Duty {
		return nil
	}
	return a.Inner.Poison(r, env, n)
}
