package attack

import (
	"errors"
	"sort"
)

// ReduceToBBA is a constructive implementation of Theorem 1: given the
// poison reports of a General Byzantine Attack on domain [dl, dr] and the
// reference mean o, it produces an equivalent Biased Byzantine Attack —
// a set of poison values lying entirely on one side of o with exactly the
// same total deviation Σ(v′−o), which is all that matters for mean
// estimation.
//
// The construction follows the proof: while poison values remain on the
// lighter side, the most extreme one is merged with values from the
// heavier side into a single replacement value that stays within the
// heavier side's range. The returned side is the heavier (poisoned) side.
func ReduceToBBA(values []float64, o, dl, dr float64) ([]float64, Side, error) {
	if dl >= dr {
		return nil, SideRight, errors.New("attack: empty domain")
	}
	if o < dl || o > dr {
		return nil, SideRight, errors.New("attack: reference mean outside domain")
	}
	var left, right []float64 // deviations v−o, negative on the left
	var total float64
	for _, v := range values {
		if v < dl || v > dr {
			return nil, SideRight, errors.New("attack: poison value outside domain")
		}
		d := v - o
		total += d
		if d < 0 {
			left = append(left, d)
		} else if d > 0 {
			right = append(right, d)
		}
		// d == 0 contributes nothing and can be dropped.
	}
	if total == 0 {
		return nil, SideRight, nil
	}
	if total < 0 {
		devs := merge(left, right, o-dl)
		out := make([]float64, len(devs))
		for i, d := range devs {
			out[i] = o + d
		}
		return out, SideLeft, nil
	}
	// Mirror: negate both sides so the right side becomes "heavy negative",
	// merge, then negate back.
	negate(left)
	negate(right)
	devs := merge(right, left, dr-o)
	out := make([]float64, len(devs))
	for i, d := range devs {
		out[i] = o - d
	}
	return out, SideRight, nil
}

func negate(xs []float64) {
	for i := range xs {
		xs[i] = -xs[i]
	}
}

// merge absorbs every positive deviation in light into the negative
// deviations of heavy, keeping each resulting deviation within
// [−span, 0]. It returns the heavy-side deviations with the same total as
// heavy+light.
func merge(heavy, light []float64, span float64) []float64 {
	// Deepest (most negative) deviations last, so they are popped first and
	// offer the most cancellation headroom.
	sort.Sort(sort.Reverse(sort.Float64Slice(heavy)))
	out := append([]float64(nil), heavy...)
	for _, d := range light {
		// Pop heavy deviations until they cancel d (proof's YL subset).
		var acc float64
		for acc+d > 0 && len(out) > 0 {
			acc += out[len(out)-1]
			out = out[:len(out)-1]
		}
		merged := acc + d
		if merged > 0 {
			// Heavier side exhausted; cannot happen when total < 0, but keep
			// the invariant defensively by clamping to zero deviation.
			merged = 0
		}
		if merged < -span {
			merged = -span
		}
		if merged != 0 {
			out = append(out, merged)
		}
	}
	return out
}
