package attack

import (
	"fmt"
	"math/rand/v2"
)

// IMA is the input manipulation attack ([12], §III-A, Fig. 5(d), 9(b)):
// each Byzantine user picks the poison *input* G ∈ [−1, 1] and then
// follows the LDP mechanism honestly, which makes the reports
// statistically indistinguishable from those of a legitimate user whose
// value is G.
type IMA struct {
	G float64
}

// Name implements Adversary.
func (a *IMA) Name() string { return fmt.Sprintf("IMA(g=%g)", a.G) }

// Poison implements Adversary.
func (a *IMA) Poison(r *rand.Rand, env Env, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = env.Mech.Perturb(r, a.G)
	}
	return out
}

// Evasion is the §V-D evasion attack against DAP's side probing: a
// fraction A of the poison reports are placed at −C/2 (just below O′ on
// the opposite side) to trick Algorithm 3, while the remaining reports
// carry the true attack uniformly on [C/2, C]. Increasing A weakens the
// attack's utility (Eq. 20), which Fig. 10 demonstrates.
type Evasion struct {
	A float64
}

// Name implements Adversary.
func (a *Evasion) Name() string { return fmt.Sprintf("Evasion(a=%g)", a.A) }

// SWTop is the Fig. 8 attack on the Square Wave output domain [−b, 1+b]:
// poison values uniform on [1+b/2, 1+b], i.e. beyond the legitimate input
// range.
type SWTop struct{}

// Name implements Adversary.
func (SWTop) Name() string { return "SWTop([1+b/2, 1+b])" }

// Poison implements Adversary.
func (SWTop) Poison(r *rand.Rand, env Env, n int) []float64 {
	b := env.Domain.Hi - 1
	lo := 1 + b/2
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (env.Domain.Hi-lo)*r.Float64()
	}
	return out
}

// Poison implements Adversary.
func (a *Evasion) Poison(r *rand.Rand, env Env, n int) []float64 {
	out := make([]float64, n)
	nEvasive := int(a.A * float64(n))
	evasivePoint := env.Domain.Lo / 2 // −C/2 on the PM domain
	for i := 0; i < nEvasive; i++ {
		out[i] = evasivePoint
	}
	lo, hi := RangeHighHalf.Resolve(env, SideRight)
	for i := nEvasive; i < n; i++ {
		out[i] = env.Domain.Clamp(lo + (hi-lo)*r.Float64())
	}
	return out
}
