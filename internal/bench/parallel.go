package bench

import (
	"runtime"

	"repro/internal/sim"
)

// The experiment runners build their tables from many independent
// Monte-Carlo cells (one per table entry). Cells are scheduled on a
// bounded pool and awaited in table order, so any Workers setting produces
// byte-identical tables: every cell's seed is fixed when it is scheduled
// (per-trial streams come from rng.Split inside the sim package), and
// collection order never depends on completion order.

// pool bounds the number of concurrently evaluated cells.
type pool struct {
	sem chan struct{}
}

func (c Config) newPool() *pool {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &pool{sem: make(chan struct{}, w)}
}

// future is a deferred cell result of type T.
type future[T any] struct {
	val  T
	err  error
	done chan struct{}
}

// get blocks until the cell has run.
func (f *future[T]) get() (T, error) {
	<-f.done
	return f.val, f.err
}

// submit schedules fn on the pool and returns its future.
func submit[T any](p *pool, fn func() (T, error)) *future[T] {
	f := &future[T]{done: make(chan struct{})}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem; close(f.done) }()
		f.val, f.err = fn()
	}()
	return f
}

// mse schedules a sim.MSE cell.
func (p *pool) mse(seed uint64, trials int, truth float64, fn sim.Trial) *future[float64] {
	return submit(p, func() (float64, error) { return sim.MSE(seed, trials, truth, fn) })
}

// avg schedules a sim.Average cell.
func (p *pool) avg(seed uint64, trials int, fn sim.Trial) *future[float64] {
	return submit(p, func() (float64, error) { return sim.Average(seed, trials, fn) })
}

// mseVec schedules a sim.MSEVec cell.
func (p *pool) mseVec(seed uint64, trials int, truth []float64, fn sim.VecTrial) *future[float64] {
	return submit(p, func() (float64, error) { return sim.MSEVec(seed, trials, truth, fn) })
}

// collectCells resolves a row of futures into formatted cells appended to
// row, failing on the first cell error.
func collectCells(row []string, futs []*future[float64], format func(float64) string) ([]string, error) {
	for _, f := range futs {
		v, err := f.get()
		if err != nil {
			return nil, err
		}
		row = append(row, format(v))
	}
	return row, nil
}
