package bench

import (
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Table1 reproduces Table I: the variance of the EMF-reconstructed
// normal-user histogram x̂ on the Taxi dataset, probing with the poison
// components on the Left and on the Right of O′ = 0, for the four poison
// ranges and ε ∈ {2, 1/2, 1/4, 1/8, 1/16}. The right side (the truly
// poisoned one) must yield the smaller variance everywhere, which is what
// lets Algorithm 3 pick the side.
//
// Each (range, ε) cell owns a deterministic rng stream, so the cells run
// concurrently on the experiment pool and the table is identical for any
// Workers setting.
func Table1(cfg Config) ([]*Table, error) {
	epsList := []float64{2, 0.5, 0.25, 0.125, 0.0625}
	ds, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table I: Variance of reconstructed normal data (Taxi, γ=0.25)",
		Header: append([]string{"Poi[l,r]", "Side"}, mapStrings(epsList, epsLabel)...),
	}
	p := cfg.newPool()
	futs := make([][]*future[[2]float64], len(rangeLabels))
	for ri, label := range rangeLabels {
		adv := attack.NewBBA(mustRange(label), attack.DistUniform)
		futs[ri] = make([]*future[[2]float64], len(epsList))
		for ei, eps := range epsList {
			stream := uint64(0x7AB1 + ri*16 + ei)
			eps := eps
			futs[ri][ei] = submit(p, func() ([2]float64, error) {
				r := rng.Split(cfg.Seed, stream)
				reports, err := core.CollectPM(r, ds.Values, eps, adv, 0.25, 0)
				if err != nil {
					return [2]float64{}, err
				}
				mech := pm.MustNew(eps)
				d, dp := emf.BucketCounts(len(reports), mech.C())
				m, err := emf.BuildNumericCached(mech, d, dp)
				if err != nil {
					return [2]float64{}, err
				}
				probe, err := emf.ProbeSide(m, m.Counts(reports), 0, emf.Config{Tol: emf.PaperTol(eps), MaxIter: cfg.EMFMaxIter})
				if err != nil {
					return [2]float64{}, err
				}
				return [2]float64{stats.Variance(probe.Left.X), stats.Variance(probe.Right.X)}, nil
			})
		}
	}
	for ri, label := range rangeLabels {
		rowL := []string{label, "L"}
		rowR := []string{label, "R"}
		for _, f := range futs[ri] {
			v, err := f.get()
			if err != nil {
				return nil, err
			}
			rowL = append(rowL, e2s(v[0]))
			rowR = append(rowR, e2s(v[1]))
		}
		t.Rows = append(t.Rows, rowL, rowR)
	}
	return []*Table{t}, nil
}

func mapStrings(eps []float64, f func(float64) string) []string {
	out := make([]string, len(eps))
	for i, e := range eps {
		out[i] = f(e)
	}
	return out
}
