package bench

import (
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Table1 reproduces Table I: the variance of the EMF-reconstructed
// normal-user histogram x̂ on the Taxi dataset, probing with the poison
// components on the Left and on the Right of O′ = 0, for the four poison
// ranges and ε ∈ {2, 1/2, 1/4, 1/8, 1/16}. The right side (the truly
// poisoned one) must yield the smaller variance everywhere, which is what
// lets Algorithm 3 pick the side.
func Table1(cfg Config) ([]*Table, error) {
	epsList := []float64{2, 0.5, 0.25, 0.125, 0.0625}
	ds, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table I: Variance of reconstructed normal data (Taxi, γ=0.25)",
		Header: append([]string{"Poi[l,r]", "Side"}, mapStrings(epsList, epsLabel)...),
	}
	r := rng.Split(cfg.Seed, 0x7AB1)
	for _, label := range rangeLabels {
		adv := attack.NewBBA(mustRange(label), attack.DistUniform)
		rowL := []string{label, "L"}
		rowR := []string{label, "R"}
		for _, eps := range epsList {
			reports, err := core.CollectPM(r, ds.Values, eps, adv, 0.25, 0)
			if err != nil {
				return nil, err
			}
			mech := pm.MustNew(eps)
			d, dp := emf.BucketCounts(len(reports), mech.C())
			m, err := emf.BuildNumeric(mech, d, dp)
			if err != nil {
				return nil, err
			}
			probe, err := emf.ProbeSide(m, m.Counts(reports), 0, emf.Config{Tol: emf.PaperTol(eps), MaxIter: cfg.EMFMaxIter})
			if err != nil {
				return nil, err
			}
			rowL = append(rowL, e2s(stats.Variance(probe.Left.X)))
			rowR = append(rowR, e2s(stats.Variance(probe.Right.X)))
		}
		t.Rows = append(t.Rows, rowL, rowR)
	}
	return []*Table{t}, nil
}

func mapStrings(eps []float64, f func(float64) string) []string {
	out := make([]string, len(eps))
	for i, e := range eps {
		out[i] = f(e)
	}
	return out
}
