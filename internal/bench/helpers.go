package bench

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// epsLabels formats a budget like the paper's axis ticks (1/4, 1/2, …).
func epsLabel(eps float64) string {
	switch eps {
	case 0.0625:
		return "1/16"
	case 0.125:
		return "1/8"
	case 0.25:
		return "1/4"
	case 0.5:
		return "1/2"
	case 1.5:
		return "3/2"
	}
	return fmt.Sprintf("%g", eps)
}

// rangeLabels lists the paper's poison ranges in Table I / Fig. 6 order.
var rangeLabels = []string{"[3C/4,C]", "[C/2,C]", "[O,C/2]", "[O,C]"}

func mustRange(label string) attack.Range {
	rg, ok := attack.RangeByName(label)
	if !ok {
		panic("bench: unknown range " + label)
	}
	return rg
}

// loadDataset builds a dataset deterministically from the config seed so
// every trial sees the same population.
func loadDataset(cfg Config, name string) (*dataset.Numeric, error) {
	return dataset.ByName(rng.Split(cfg.Seed, 0xDA7A), name, cfg.N)
}

// dapParams assembles the paper's default protocol parameters.
func dapParams(scheme core.Scheme, eps float64, maxIter int) core.Params {
	return core.Params{
		Eps:        eps,
		Eps0:       1.0 / 16,
		Scheme:     scheme,
		EMFMaxIter: maxIter,
	}
}

// dapTrial returns a sim.Trial running one full DAP round.
func dapTrial(d *core.DAP, values []float64, adv attack.Adversary, gamma float64) sim.Trial {
	return func(r *rand.Rand) (float64, error) {
		est, err := d.Run(r, values, adv, gamma)
		if err != nil {
			return 0, err
		}
		return est.Mean, nil
	}
}

// ostrichTrial averages a plain single-group PM collection.
func ostrichTrial(values []float64, eps float64, adv attack.Adversary, gamma float64) sim.Trial {
	return func(r *rand.Rand) (float64, error) {
		reports, err := core.CollectPM(r, values, eps, adv, gamma, 0)
		if err != nil {
			return 0, err
		}
		return stats.Clamp(defense.Ostrich(reports), -1, 1), nil
	}
}

// trimmingTrial trims 50% from the poisoned side of a single-group
// collection.
func trimmingTrial(values []float64, eps float64, adv attack.Adversary, gamma float64, poisonedRight bool) sim.Trial {
	return func(r *rand.Rand) (float64, error) {
		reports, err := core.CollectPM(r, values, eps, adv, gamma, 0)
		if err != nil {
			return 0, err
		}
		return stats.Clamp(defense.Trimming(reports, 0.5, poisonedRight), -1, 1), nil
	}
}

// probeGamma runs one single-group collection and returns the EMF γ̂
// estimate via side probing.
func probeGamma(r *rand.Rand, values []float64, eps float64, adv attack.Adversary, gamma float64, maxIter int) (float64, error) {
	reports, err := core.CollectPM(r, values, eps, adv, gamma, 0)
	if err != nil {
		return 0, err
	}
	mech := pm.MustNew(eps)
	d, dp := emf.BucketCounts(len(reports), mech.C())
	m, err := emf.BuildNumericCached(mech, d, dp)
	if err != nil {
		return 0, err
	}
	cfg := emf.Config{Tol: emf.PaperTol(eps), MaxIter: maxIter, Accelerate: true}
	probe, err := emf.ProbeSide(m, m.Counts(reports), 0, cfg)
	if err != nil {
		return 0, err
	}
	return probe.Chosen().Gamma(), nil
}

// splitFuture schedules one n-vector cell and fans it into n scalar
// futures, so rows that share underlying work (scheme rows estimating the
// same collections) still collect cell-by-cell in table order.
func splitFuture(p *pool, n int, fn func() ([]float64, error)) []*future[float64] {
	base := submit(p, fn)
	out := make([]*future[float64], n)
	for i := range out {
		f := &future[float64]{done: make(chan struct{})}
		out[i] = f
		go func(i int) {
			defer close(f.done)
			vals, err := base.get()
			if err != nil {
				f.err = err
				return
			}
			f.val = vals[i]
		}(i)
	}
	return out
}

// dapsForSchemes builds one DAP per estimation scheme at the same budget;
// their group layouts and mechanisms are identical, so one collection
// serves all of them.
func dapsForSchemes(eps float64, maxIter int) ([]*core.DAP, error) {
	schemes := core.Schemes()
	daps := make([]*core.DAP, len(schemes))
	for i, sc := range schemes {
		d, err := core.NewDAP(dapParams(sc, eps, maxIter))
		if err != nil {
			return nil, err
		}
		daps[i] = d
	}
	return daps, nil
}

// dapSchemesTrial returns a trial that collects ONE set of reports and
// estimates it with every scheme, chaining the warm state from the first
// estimate into the rest (the deconvolution is identical across schemes —
// only the post-processing differs — so the later estimates converge in a
// handful of EM steps). Sharing the collection both removes the dominant
// perturbation cost of per-scheme collections and turns the scheme rows
// into a paired comparison on identical data.
func dapSchemesTrial(daps []*core.DAP, values []float64, adv attack.Adversary, gamma float64) sim.VecTrial {
	return func(r *rand.Rand) ([]float64, error) {
		col, err := daps[0].Collect(r, values, adv, gamma)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(daps))
		var warm *core.WarmState
		for i, d := range daps {
			est, err := d.EstimateWarm(col, warm)
			if err != nil {
				return nil, err
			}
			if warm == nil {
				warm = est.Warm
			}
			out[i] = est.Mean
		}
		return out, nil
	}
}

// mseSchemes schedules a shared-collection scheme cell: one future per
// scheme, all backed by one sim.MSEPer evaluation.
func (p *pool) mseSchemes(seed uint64, trials int, truth float64, fn sim.VecTrial, n int) []*future[float64] {
	return splitFuture(p, n, func() ([]float64, error) { return sim.MSEPer(seed, trials, truth, fn) })
}
