package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// SpecSweep evaluates one user-supplied task spec (cfg.Spec, loaded by
// cmd/dapbench -spec) across the paper's γ grid: MSE of the spec's
// estimator against the BBA high-half attack, next to the Ostrich
// comparator on the same collections' budget. Any numeric task kind runs
// (mean, distribution, variance, baseline, or a named defense); frequency
// specs sweep a direct-injection attack on a synthetic Zipf population.
func SpecSweep(cfg Config) ([]*Table, error) {
	if cfg.Spec == nil {
		return nil, errors.New("bench: the spec experiment needs a task spec (dapbench -spec file.json)")
	}
	sp := *cfg.Spec
	if sp.EMFMaxIter == 0 {
		sp.EMFMaxIter = cfg.EMFMaxIter
	}
	sp = sp.Normalize()
	est, err := core.Build(sp)
	if err != nil {
		return nil, err
	}
	// The sweep is one-shot batch simulation — there is no epoch axis, so
	// an epoch-adaptive attack would silently run at its epoch-0 strength
	// (a default ramp emits nothing). Fail loudly instead.
	if sp.Attack != nil && sp.Attack.EpochAdaptive() {
		return nil, fmt.Errorf("bench: attack %q is epoch-adaptive and the spec sweep has no epochs; drive it with daploadgen -attack-epochs", sp.Attack.Name)
	}
	if sp.Task == core.TaskFrequency {
		return specSweepFreq(cfg, sp, est)
	}

	ds, err := loadDataset(cfg, "Beta(2,5)")
	if err != nil {
		return nil, err
	}
	values := ds.Values
	truth := ds.TrueMean()
	if sp.Task == core.TaskDistribution {
		values = make([]float64, len(ds.Values))
		for i, v := range ds.Values {
			values[i] = (v + 1) / 2
		}
		truth = (truth + 1) / 2
	}
	if sp.Task == core.TaskVariance {
		truth = stats.Variance(values)
	}
	collector, ok := est.(core.Collector)
	if !ok {
		return nil, fmt.Errorf("bench: task %q has no simulation entry point", sp.Task)
	}
	read := func(res *core.Result) float64 {
		if sp.Task == core.TaskVariance {
			return res.Variance
		}
		return res.Mean
	}

	gammas := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45}
	// The spec's attack section selects the swept adversary through the
	// registry; specs without one sweep the paper's standard BBA.
	adv, err := specAdversary(sp)
	if err != nil {
		return nil, err
	}
	// The Ostrich column estimates the mean on the PM collection, so it is
	// only comparable for mean-task specs; other tasks estimate a
	// different quantity (or domain) and get the spec column alone.
	withOstrich := sp.Task == core.TaskMean
	p := cfg.newPool()
	table := &Table{
		Title: fmt.Sprintf("spec sweep: task=%s scheme=%s ε=%g attack=%s (MSE vs γ, %s)",
			sp.Task, sp.Scheme, sp.Eps, adv.Name(), ds.Name),
		Header: []string{"gamma", "spec", "emf_iters", "converged"},
	}
	if withOstrich {
		table.Header = append(table.Header, "ostrich")
	}
	// The spec column runs each trial as one sequential sweep of the γ
	// grid, warm-starting every cell's solver from its grid neighbour's
	// fits (core.WithWarm): the collections differ only in the Byzantine
	// mix, so the previous cell's deconvolution is a near-converged seed.
	// Trials are independent futures with fixed streams, so tables stay
	// byte-identical for any -workers. The emf_iters and converged columns
	// log the solver telemetry (mean EM-map evaluations per estimate;
	// fraction of trials whose fits all met the Tol rule) so dapbench -csv
	// records under-converged cells instead of silently tabulating the
	// MaxIter iterate.
	type sweepOut struct{ sqErr, iters, conv []float64 }
	sweeps := make([]*future[sweepOut], cfg.Trials)
	for j := 0; j < cfg.Trials; j++ {
		j := j
		sweeps[j] = submit(p, func() (sweepOut, error) {
			r := rng.Split(cfg.Seed+0x57EE9, uint64(j))
			out := sweepOut{
				sqErr: make([]float64, len(gammas)),
				iters: make([]float64, len(gammas)),
				conv:  make([]float64, len(gammas)),
			}
			var warm *core.WarmState
			for i, gamma := range gammas {
				col, err := collector.Collect(r, values, adv, gamma)
				if err != nil {
					return out, err
				}
				res, err := est.Estimate(core.WithWarm(context.Background(), warm), col)
				if err != nil {
					return out, err
				}
				warm = res.Warm
				d := read(res) - truth
				out.sqErr[i] = d * d
				out.iters[i] = float64(res.EMFIters)
				if res.Converged {
					out.conv[i] = 1
				}
			}
			return out, nil
		})
	}
	ostrich := make([]*future[float64], len(gammas))
	if withOstrich {
		for i, g := range gammas {
			gamma := g
			ostrich[i] = p.mse(cfg.Seed+uint64(i)*1000+500, cfg.Trials, truth, func(r *rand.Rand) (float64, error) {
				reports, err := core.CollectPM(r, values, sp.Eps, adv, gamma, sp.OPrime)
				if err != nil {
					return 0, err
				}
				return stats.Mean(reports), nil
			})
		}
	}
	outs := make([]sweepOut, cfg.Trials)
	for j, f := range sweeps {
		out, err := f.get()
		if err != nil {
			return nil, err
		}
		outs[j] = out
	}
	for i, g := range gammas {
		var mse, iters, conv float64
		for j := range outs {
			mse += outs[j].sqErr[i]
			iters += outs[j].iters[i]
			conv += outs[j].conv[i]
		}
		n := float64(len(outs))
		row := []string{fmt.Sprintf("%.2f", g), e2s(mse / n),
			fmt.Sprintf("%.0f", iters/n), fmt.Sprintf("%.2f", conv/n)}
		if withOstrich {
			v, err := ostrich[i].get()
			if err != nil {
				return nil, err
			}
			row = append(row, e2s(v))
		}
		table.Rows = append(table.Rows, row)
	}
	return []*Table{table}, nil
}

// specAdversary resolves a spec's attack section through the registry,
// defaulting to the paper's standard BBA.
func specAdversary(sp core.Spec) (attack.Adversary, error) {
	adv, err := sp.Adversary()
	if err != nil {
		return nil, err
	}
	if adv == nil {
		adv = attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	}
	return adv, nil
}

// specSweepFreq sweeps a categorical attack for a frequency spec over a
// synthetic Zipf-ish categorical population: the spec's attack section
// when present, the historical top-category direct injection otherwise.
func specSweepFreq(cfg Config, sp core.Spec, est core.Estimator) ([]*Table, error) {
	runner, ok := est.(core.CatAdvRunner)
	if !ok {
		return nil, fmt.Errorf("bench: task %q has no categorical simulation entry point", sp.Task)
	}
	// Deterministic skewed population over the spec's K categories (shared
	// with the red-team matrix).
	cats, truth := zipfCats(cfg.N, sp.K)
	adv, err := sp.Adversary()
	if err != nil {
		return nil, err
	}
	if adv == nil {
		adv = &attack.Targeted{Cats: []int{sp.K - 1}}
	}

	gammas := []float64{0, 0.1, 0.2, 0.3, 0.4}
	p := cfg.newPool()
	table := &Table{
		Title: fmt.Sprintf("spec sweep: task=%s K=%d ε=%g attack=%s (frequency MSE vs γ)",
			sp.Task, sp.K, sp.Eps, adv.Name()),
		Header: []string{"gamma", "spec"},
	}
	futs := make([]*future[float64], len(gammas))
	for i, g := range gammas {
		gamma := g
		futs[i] = p.mseVec(cfg.Seed+uint64(i)*1000, cfg.Trials, truth, func(r *rand.Rand) ([]float64, error) {
			res, err := runner.RunCatsAdv(r, cats, adv, gamma)
			if err != nil {
				return nil, err
			}
			return res.Freqs, nil
		})
	}
	for i, g := range gammas {
		row, err := collectCells([]string{fmt.Sprintf("%.2f", g)}, futs[i:i+1], e2s)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, row)
	}
	return []*Table{table}, nil
}
