package bench

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
)

// fig6Eps is the paper's ε axis for the mean-estimation MSE figures.
var fig6Eps = []float64{0.25, 0.5, 1, 1.5, 2}

// Fig6 reproduces Fig. 6: MSE of mean estimation for DAP_EMF, DAP_EMF*,
// DAP_CEMF*, Ostrich and Trimming across the four datasets, the four
// poison ranges and ε ∈ {1/4, 1/2, 1, 3/2, 2} (γ = 0.25, uniform poison,
// ε₀ = 1/16). One table per (dataset, range) pair matching the paper's
// 16 sub-figures.
//
// Paper shapes to expect: all DAP schemes beat Ostrich and Trimming by
// orders of magnitude; Trimming is worst in most cases; DAP_CEMF* usually
// leads; EMF may lose to Ostrich at large ε when poison sits near O
// (sub-figures j, k, n).
func Fig6(cfg Config) ([]*Table, error) {
	var tables []*Table
	for di, dsName := range dataset.Names() {
		ds, err := loadDataset(cfg, dsName)
		if err != nil {
			return nil, err
		}
		trueMean := ds.TrueMean()
		for ri, label := range rangeLabels {
			adv := attack.NewBBA(mustRange(label), attack.DistUniform)
			t, err := mseTable(cfg,
				fmt.Sprintf("Fig. 6: MSE vs ε — %s, Poi%s (γ=0.25)", dsName, label),
				ds.Values, trueMean, adv, 0.25, fig6Eps, uint64(di*1000+ri*100))
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// mseTable builds one MSE-vs-ε panel with the five Fig. 6 schemes. The
// three DAP scheme rows of each ε column share one collection per trial
// (they estimate identical data, warm-chained — see dapSchemesTrial);
// Ostrich and Trimming keep their own single-budget collections.
func mseTable(cfg Config, title string, values []float64, trueMean float64, adv attack.Adversary, gamma float64, epsList []float64, stream uint64) (*Table, error) {
	t := &Table{Title: title, Header: append([]string{"Scheme"}, mapStrings(epsList, epsLabel)...)}
	p := cfg.newPool()
	nSchemes := len(core.Schemes())
	futs := make([][]*future[float64], nSchemes+2)
	for si := range futs {
		futs[si] = make([]*future[float64], len(epsList))
	}
	for ei, eps := range epsList {
		daps, err := dapsForSchemes(eps, cfg.EMFMaxIter)
		if err != nil {
			return nil, err
		}
		cell := p.mseSchemes(cfg.Seed+stream+uint64(ei), cfg.Trials, trueMean,
			dapSchemesTrial(daps, values, adv, gamma), nSchemes)
		for si := range cell {
			futs[si][ei] = cell[si]
		}
		futs[nSchemes][ei] = p.mse(cfg.Seed+stream+uint64(nSchemes*10+ei), cfg.Trials, trueMean,
			ostrichTrial(values, eps, adv, gamma))
		futs[nSchemes+1][ei] = p.mse(cfg.Seed+stream+uint64((nSchemes+1)*10+ei), cfg.Trials, trueMean,
			trimmingTrial(values, eps, adv, gamma, true))
	}
	names := []string{}
	for _, sc := range core.Schemes() {
		names = append(names, "DAP_"+sc.String())
	}
	names = append(names, "Ostrich", "Trimming")
	for si, name := range names {
		row, err := collectCells([]string{name}, futs[si], e2s)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
