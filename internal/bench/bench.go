// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§VI), each regenerating the same rows
// and series the paper reports. The cmd/dapbench CLI and the repository's
// benchmark targets both drive this package.
//
// Absolute values depend on N (the paper uses ~10⁶ users; the default
// here is laptop-scale) and on the synthetic substitutes for the
// real-world datasets, but the comparative shapes — who wins, by what
// order of magnitude, where the crossovers fall — reproduce the paper;
// see EXPERIMENTS.md for the per-experiment record.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// Config scales an experiment run.
type Config struct {
	// N is the number of users per collection (default 20000).
	N int
	// Trials is the number of Monte-Carlo repeats per cell (default 3).
	Trials int
	// Seed drives all randomness (default 1).
	Seed uint64
	// EMFMaxIter caps EM iterations (default 200 — enough for laptop-scale
	// N; raise along with N).
	EMFMaxIter int
	// Workers caps the number of experiment cells evaluated concurrently
	// (0 selects GOMAXPROCS). Tables are byte-identical for every Workers
	// value: cell seeds are fixed at scheduling time and results are
	// collected in table order.
	Workers int
	// Spec is the user-supplied task spec evaluated by the "spec"
	// experiment (cmd/dapbench -spec); other experiments ignore it.
	Spec *core.Spec
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EMFMaxIter <= 0 {
		c.EMFMaxIter = 200
	}
	return c
}

// Table is one printable result table (a sub-figure or table panel).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner regenerates one paper table or figure.
type Runner func(cfg Config) ([]*Table, error)

var registry = map[string]Runner{
	"table1":   Table1,
	"fig4":     Fig4,
	"fig5":     Fig5,
	"fig6":     Fig6,
	"fig7":     Fig7,
	"fig8":     Fig8,
	"fig9":     Fig9,
	"fig10":    Fig10,
	"ablation": Ablation,
	"spec":     SpecSweep,
	"matrix":   Matrix,
}

// Experiments lists the registered experiment ids in sorted order.
func Experiments() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id.
func Run(name string, cfg Config) ([]*Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", name, strings.Join(Experiments(), ", "))
	}
	return r(cfg.withDefaults())
}

func f2s(v float64) string { return fmt.Sprintf("%.4g", v) }

func e2s(v float64) string { return fmt.Sprintf("%.3e", v) }
