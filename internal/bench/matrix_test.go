package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/rng"
)

// matrixTestConfig keeps the matrix cells sub-second.
func matrixTestConfig() Config {
	return Config{N: 4000, Trials: 2, Seed: 1, EMFMaxIter: 120}
}

// TestMatrixCoverage pins the acceptance shape: at least 8 attack
// variants, every scheme, both task panels, and the γ conventions.
func TestMatrixCoverage(t *testing.T) {
	rep, err := RunMatrix(matrixTestConfig(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	attacks := map[string]bool{}
	schemes := map[string]bool{}
	tasks := map[string]bool{}
	for _, row := range rep.Rows {
		attacks[row.Attack] = true
		schemes[row.Scheme] = true
		tasks[row.Task] = true
		wantGamma := 0.25
		if strings.Contains(row.Attack, "none") {
			wantGamma = 0
		}
		if row.Gamma != wantGamma {
			t.Errorf("%s/%s: gamma %g, want %g", row.Attack, row.Scheme, row.Gamma, wantGamma)
		}
		if math.IsNaN(row.MSE) || row.MSE < 0 {
			t.Errorf("%s/%s: bad MSE %v", row.Attack, row.Scheme, row.MSE)
		}
	}
	if len(attacks) < 8 {
		t.Fatalf("matrix covers %d attack variants, want >= 8", len(attacks))
	}
	if len(schemes) != len(core.Schemes()) {
		t.Fatalf("matrix covers %d schemes, want %d", len(schemes), len(core.Schemes()))
	}
	if !tasks["mean"] || !tasks["frequency"] {
		t.Fatalf("matrix tasks %v, want mean and frequency panels", tasks)
	}
}

// TestMatrixBBARowMatchesDirect pins the registry path against the
// pre-registry simulator: the bba[C/2,C] row must reproduce, bit for bit,
// the MSE of directly-constructed BBA collections at equal seeds — the
// invariant that keeps matrix rows comparable with the dapsim/Fig. 6
// tables.
func TestMatrixBBARowMatchesDirect(t *testing.T) {
	cfg := matrixTestConfig()
	const gamma = 0.25
	rep, err := RunMatrix(cfg, gamma)
	if err != nil {
		t.Fatal(err)
	}

	ds, err := loadDataset(cfg, "Beta(2,5)")
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.TrueMean()
	daps, err := dapsForSchemes(1, cfg.EMFMaxIter)
	if err != nil {
		t.Fatal(err)
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	// bba[C/2,C] is battery index 1; reproduce its exact seed schedule.
	seed := cfg.Seed + 0xA77AC0 + 1*0x1000
	want := make([]float64, len(daps))
	for j := 0; j < cfg.Trials; j++ {
		r := rng.Split(seed, uint64(j))
		col, err := daps[0].Collect(r, ds.Values, adv, gamma)
		if err != nil {
			t.Fatal(err)
		}
		var warm *core.WarmState
		for i, d := range daps {
			est, err := d.EstimateWarm(col, warm)
			if err != nil {
				t.Fatal(err)
			}
			if warm == nil {
				warm = est.Warm
			}
			want[i] += (est.Mean - truth) * (est.Mean - truth)
		}
	}
	schemes := core.Schemes()
	for i := range want {
		want[i] /= float64(cfg.Trials)
		found := false
		for _, row := range rep.Rows {
			if row.Attack == "bba[C/2,C]" && row.Scheme == schemes[i].String() {
				found = true
				if row.MSE != want[i] {
					t.Errorf("bba/%s: matrix MSE %v != direct %v", schemes[i], row.MSE, want[i])
				}
			}
		}
		if !found {
			t.Errorf("no bba[C/2,C] row for scheme %s", schemes[i])
		}
	}
}

// TestMatrixMarkdownAndTables smoke-renders both report shapes.
func TestMatrixMarkdownAndTables(t *testing.T) {
	rep := &MatrixReport{
		Schema: 1, N: 10, Trials: 1, Seed: 1, Gamma: 0.25,
		Rows: []MatrixRow{
			{Task: "mean", Attack: "none", AttackName: "none", Scheme: "EMF", Gamma: 0, MSE: 1e-4, GammaErr: 0.01},
			{Task: "mean", Attack: "bba", AttackName: "BBA", Scheme: "EMF", Gamma: 0.25, MSE: 2e-3, GammaErr: 0.02},
		},
	}
	var sb strings.Builder
	if err := rep.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	md := sb.String()
	for _, want := range []string{"## task mean", "| none | 0.00 |", "| bba | 0.25 |", "EMF MSE"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	tables := rep.Tables()
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("tables shape wrong: %+v", tables)
	}
}

// TestMatrixExtraRejection: categorical and epoch-adaptive extras cannot
// join the numeric batch panel.
func TestMatrixExtraRejection(t *testing.T) {
	cfg := matrixTestConfig()
	if _, err := RunMatrixExtra(cfg, 0.25, []NamedAttack{
		{Label: "targeted", Spec: attack.Spec{Name: "targeted", Cats: []int{3}}},
	}); err == nil {
		t.Fatal("categorical extra accepted into the numeric panel")
	}
	if _, err := RunMatrixExtra(cfg, 0.25, []NamedAttack{
		{Label: "ramp", Spec: attack.Spec{Name: "ramp"}},
	}); err == nil {
		t.Fatal("epoch-adaptive extra accepted into the batch matrix")
	}
}
