package bench

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/emf"
	"repro/internal/ldp/sw"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig8 reproduces Fig. 8, the Square Wave extension (§V-D):
//
//	(a) Wasserstein distance of distribution estimation on Beta(2,5) for
//	    EMF/EMF*/CEMF* vs Ostrich (plain EMS), γ = 0.25, SW-top poison;
//	(b) |γ̂−γ| for SW with respect to ε on Beta(2,5) and Beta(5,2);
//	(c)(d) MSE of SW_EMF/SW_EMF*/SW_CEMF* vs Ostrich and Trimming with
//	    poison on [1+b/2, 1+b].
//
// Paper shapes: the proposed schemes improve the Wasserstein distance by
// at least ~10% over Ostrich; γ̂ sharpens as ε shrinks; the SW DAP
// schemes win the MSE comparison in most cases.
func Fig8(cfg Config) ([]*Table, error) {
	epsListA := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2}
	// Raw Beta values on [0,1] — SW's native input domain.
	beta25 := rawBeta(cfg, 2, 5)
	beta52 := rawBeta(cfg, 5, 2)
	p := cfg.newPool()

	// Panel (a): distribution estimation quality.
	a := &Table{
		Title:  "Fig. 8(a): Wasserstein distance of distribution estimation — Beta(2,5), SW, γ=0.25",
		Header: append([]string{"Scheme"}, mapStrings(epsListA, epsLabel)...),
	}
	type recon struct {
		name         string
		scheme       core.Scheme
		ignorePoison bool
	}
	recons := []recon{
		{"EMF", core.SchemeEMF, false},
		{"EMF*", core.SchemeEMFStar, false},
		{"CEMF*", core.SchemeCEMFStar, false},
		{"Ostrich", 0, true},
	}
	futsA := make([][]*future[float64], len(recons))
	for si, rc := range recons {
		futsA[si] = make([]*future[float64], len(epsListA))
		for ei, eps := range epsListA {
			rc, eps := rc, eps
			futsA[si][ei] = p.avg(cfg.Seed+uint64(0x8A00+si*16+ei), cfg.Trials, func(r *rand.Rand) (float64, error) {
				reports, err := swCollect(r, beta25, eps, attack.SWTop{}, 0.25)
				if err != nil {
					return 0, err
				}
				s := &core.SWSingle{Eps: eps, Scheme: rc.scheme, IgnorePoison: rc.ignorePoison, EMFMaxIter: cfg.EMFMaxIter}
				xhat, _, err := s.Reconstruct(reports)
				if err != nil {
					return 0, err
				}
				trueHist := stats.Histogram(beta25, 0, 1, len(xhat)).Normalized()
				return stats.Wasserstein1(xhat, trueHist, 1/float64(len(xhat))), nil
			})
		}
	}

	// Panel (b): γ̂ accuracy for SW.
	b := &Table{
		Title:  "Fig. 8(b): |γ̂−γ| for SW vs ε, γ=0.25, Poi[1+b/2,1+b]",
		Header: append([]string{"Dataset"}, mapStrings(epsListA, epsLabel)...),
	}
	betaSets := []struct {
		name string
		vals []float64
	}{{"Beta(2,5)", beta25}, {"Beta(5,2)", beta52}}
	futsB := make([][]*future[float64], len(betaSets))
	for di, it := range betaSets {
		futsB[di] = make([]*future[float64], len(epsListA))
		for ei, eps := range epsListA {
			vals, eps := it.vals, eps
			futsB[di][ei] = p.avg(cfg.Seed+uint64(0x8B00+di*16+ei), cfg.Trials, func(r *rand.Rand) (float64, error) {
				gh, err := probeGammaSW(r, vals, eps, attack.SWTop{}, 0.25, cfg.EMFMaxIter)
				if err != nil {
					return 0, err
				}
				return math.Abs(gh - 0.25), nil
			})
		}
	}
	for si, rc := range recons {
		row, err := collectCells([]string{rc.name}, futsA[si], e2s)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, row)
	}
	for di, it := range betaSets {
		row, err := collectCells([]string{it.name}, futsB[di], e2s)
		if err != nil {
			return nil, err
		}
		b.Rows = append(b.Rows, row)
	}

	// Panels (c)(d): SW DAP mean-estimation MSE.
	epsListC := []float64{0.25, 0.5, 1, 1.5, 2}
	var tables []*Table
	tables = append(tables, a, b)
	for pi, it := range []struct {
		name string
		vals []float64
	}{{"Beta(2,5)", beta25}, {"Beta(5,2)", beta52}} {
		trueMean := stats.Mean(it.vals)
		t := &Table{
			Title:  fmt.Sprintf("Fig. 8(%c): MSE vs ε — %s, SW, Poi[1+b/2,1+b], γ=0.25", 'c'+pi, it.name),
			Header: append([]string{"Scheme"}, mapStrings(epsListC, epsLabel)...),
		}
		type sch struct {
			name  string
			trial func(eps float64) sim.Trial
		}
		schemes := []sch{}
		for _, sc := range core.Schemes() {
			sc := sc
			schemes = append(schemes, sch{
				name: "SW_" + sc.String(),
				trial: func(eps float64) sim.Trial {
					d, err := core.NewSWDAP(core.SWParams{Eps: eps, Eps0: 1.0 / 16, Scheme: sc, EMFMaxIter: cfg.EMFMaxIter})
					if err != nil {
						panic(err)
					}
					vals := it.vals
					return func(r *rand.Rand) (float64, error) {
						est, err := d.Run(r, vals, attack.SWTop{}, 0.25)
						if err != nil {
							return 0, err
						}
						return est.Mean, nil
					}
				},
			})
		}
		schemes = append(schemes,
			sch{name: "Ostrich", trial: func(eps float64) sim.Trial {
				return swOstrichTrial(it.vals, eps, attack.SWTop{}, 0.25, cfg.EMFMaxIter, false)
			}},
			sch{name: "Trimming", trial: func(eps float64) sim.Trial {
				return swOstrichTrial(it.vals, eps, attack.SWTop{}, 0.25, cfg.EMFMaxIter, true)
			}},
		)
		futs := make([][]*future[float64], len(schemes))
		for si, sc := range schemes {
			futs[si] = make([]*future[float64], len(epsListC))
			for ei, eps := range epsListC {
				futs[si][ei] = p.mse(cfg.Seed+uint64(0x8C00+pi*1000+si*16+ei), cfg.Trials, trueMean, sc.trial(eps))
			}
		}
		for si, sc := range schemes {
			row, err := collectCells([]string{sc.name}, futs[si], e2s)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// rawBeta draws cfg.N Beta(a,b) samples on [0,1].
func rawBeta(cfg Config, a, b float64) []float64 {
	r := rng.Split(cfg.Seed, uint64(0xBE7A)+uint64(a)*10+uint64(b))
	out := make([]float64, cfg.N)
	for i := range out {
		out[i] = rng.Beta(r, a, b)
	}
	return out
}

// swCollect gathers one single-group SW collection under attack.
func swCollect(r *rand.Rand, values []float64, eps float64, adv attack.Adversary, gamma float64) ([]float64, error) {
	mech, err := sw.New(eps)
	if err != nil {
		return nil, err
	}
	n := len(values)
	nByz := int(math.Round(gamma * float64(n)))
	env := attack.EnvFor(mech, 0.5)
	reports := make([]float64, 0, n)
	reports = append(reports, adv.Poison(r, env, nByz)...)
	// As in core.CollectPM: report order is irrelevant downstream, so a
	// sampled Byzantine bitset replaces the full O(N) permutation.
	byz := core.SampleSubset(r, n, nByz)
	for u, v := range values {
		if byz == nil || byz[u>>6]&(1<<(uint(u)&63)) == 0 {
			reports = append(reports, mech.Perturb(r, v))
		}
	}
	return reports, nil
}

// probeGammaSW estimates γ̂ from one SW collection via side probing.
func probeGammaSW(r *rand.Rand, values []float64, eps float64, adv attack.Adversary, gamma float64, maxIter int) (float64, error) {
	reports, err := swCollect(r, values, eps, adv, gamma)
	if err != nil {
		return 0, err
	}
	mech := sw.MustNew(eps)
	d, dp := emf.BucketCounts(len(reports), mech.OutputDomain().Width())
	m, err := emf.BuildNumericCached(mech, d, dp)
	if err != nil {
		return 0, err
	}
	cfg := emf.Config{Tol: emf.PaperTol(eps), MaxIter: maxIter, Smooth: true}
	probe, err := emf.ProbeSide(m, m.Counts(reports), 0.5, cfg)
	if err != nil {
		return 0, err
	}
	return probe.Chosen().Gamma(), nil
}

// swOstrichTrial estimates the mean with plain EMS on a single-group SW
// collection; with trim it first removes the top 50% of the reports (the
// Fig. 8 Trimming baseline).
func swOstrichTrial(values []float64, eps float64, adv attack.Adversary, gamma float64, maxIter int, trim bool) sim.Trial {
	return func(r *rand.Rand) (float64, error) {
		reports, err := swCollect(r, values, eps, adv, gamma)
		if err != nil {
			return 0, err
		}
		if trim {
			sort.Float64s(reports)
			reports = reports[:len(reports)/2]
		}
		s := &core.SWSingle{Eps: eps, IgnorePoison: true, EMFMaxIter: maxIter}
		xhat, centers, err := s.Reconstruct(reports)
		if err != nil {
			return 0, err
		}
		return stats.Clamp(stats.HistMean(xhat, centers), 0, 1), nil
	}
}
