package bench

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/sim"
)

// Ablation benchmarks the design choices DESIGN.md calls out, all on the
// Taxi workload (Poi[C/2,C], γ = 0.25, ε = 1):
//
//  1. minimum group budget ε₀ (which fixes the group count h);
//  2. CEMF*'s suppression threshold factor;
//  3. Algorithm 5's literal weights vs the general optimum;
//  4. the §IV baseline protocol against honest and probing-aware
//     (gamed) adversaries vs DAP — the motivation for the multi-group
//     design.
func Ablation(cfg Config) ([]*Table, error) {
	ds, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}
	trueMean := ds.TrueMean()
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	const eps, gamma = 1.0, 0.25
	p := cfg.newPool()

	// 1. ε₀ sweep.
	t1 := &Table{
		Title:  "Ablation 1: MSE vs ε₀ (group count) — DAP_EMF*, Taxi, Poi[C/2,C], ε=1",
		Header: []string{"ε₀", "h", "MSE"},
	}
	eps0List := []float64{0.25, 1.0 / 16, 1.0 / 64}
	futs1 := make([]*future[float64], len(eps0List))
	hs := make([]int, len(eps0List))
	for i, eps0 := range eps0List {
		d, err := core.NewDAP(core.Params{Eps: eps, Eps0: eps0, Scheme: core.SchemeEMFStar, EMFMaxIter: cfg.EMFMaxIter})
		if err != nil {
			return nil, err
		}
		hs[i] = d.H()
		futs1[i] = p.mse(cfg.Seed+uint64(0xAB10+i), cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
	}

	// 2. Suppression factor sweep.
	t2 := &Table{
		Title:  "Ablation 2: MSE vs CEMF* suppression factor — Taxi, Poi[C/2,C], ε=1",
		Header: []string{"factor", "MSE"},
	}
	factors := []float64{0.25, 0.5, 1.0}
	futs2 := make([]*future[float64], len(factors))
	for i, factor := range factors {
		pr := dapParams(core.SchemeCEMFStar, eps, cfg.EMFMaxIter)
		pr.SuppressFactor = factor
		d, err := core.NewDAP(pr)
		if err != nil {
			return nil, err
		}
		futs2[i] = p.mse(cfg.Seed+uint64(0xAB20+i), cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
	}

	// 3. Weight mode.
	t3 := &Table{
		Title:  "Ablation 3: Algorithm 5 weights vs general optimum — DAP_EMF*, Taxi, ε=1",
		Header: []string{"weights", "MSE"},
	}
	modes := []struct {
		name string
		mode core.WeightMode
	}{{"paper (Alg. 5)", core.WeightsPaper}, {"general n̂²/B", core.WeightsGeneral}}
	futs3 := make([]*future[float64], len(modes))
	for i, it := range modes {
		pr := dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter)
		pr.WeightMode = it.mode
		d, err := core.NewDAP(pr)
		if err != nil {
			return nil, err
		}
		futs3[i] = p.mse(cfg.Seed+uint64(0xAB30+i), cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
	}

	// 4. Baseline protocol vs DAP under probing-aware attackers.
	t4 := &Table{
		Title:  "Ablation 4: baseline (§IV) vs DAP (§V) under honest and gamed attackers — Taxi, ε=1",
		Header: []string{"protocol", "threat", "MSE"},
	}
	bl, err := core.NewBaseline(1.0/8, 7.0/8, core.SchemeEMFStar)
	if err != nil {
		return nil, err
	}
	bl.EMFMaxIter = cfg.EMFMaxIter
	blTrial := func(gamed bool) sim.Trial {
		return func(r *rand.Rand) (float64, error) {
			var col *core.BaselineCollection
			var err error
			if gamed {
				col, err = bl.GamedCollect(r, ds.Values, adv, gamma)
			} else {
				col, err = bl.Collect(r, ds.Values, adv, gamma)
			}
			if err != nil {
				return 0, err
			}
			est, err := bl.Estimate(col)
			if err != nil {
				return 0, err
			}
			return est.Mean, nil
		}
	}
	futHonest := p.mse(cfg.Seed+0xAB40, cfg.Trials, trueMean, blTrial(false))
	futGamed := p.mse(cfg.Seed+0xAB41, cfg.Trials, trueMean, blTrial(true))
	dDAP, err := core.NewDAP(dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter))
	if err != nil {
		return nil, err
	}
	futDAP := p.mse(cfg.Seed+0xAB42, cfg.Trials, trueMean, dapTrial(dDAP, ds.Values, adv, gamma))

	// 5. Outlier-filter composability (§III-A): boxplot and isolation
	// forest as standalone defenses on the same workload.
	t5 := &Table{
		Title:  "Ablation 5: standalone outlier filters vs DAP — Taxi, Poi[C/2,C], ε=1, γ=0.25",
		Header: []string{"defense", "MSE"},
	}
	filterTrials := []struct {
		name  string
		trial sim.Trial
	}{
		{"Boxplot(1.5·IQR)", func(r *rand.Rand) (float64, error) {
			reports, err := core.CollectPM(r, ds.Values, eps, adv, gamma, 0)
			if err != nil {
				return 0, err
			}
			return clamp1(defense.Boxplot(reports, 1.5)), nil
		}},
		{"IForest(10%)", func(r *rand.Rand) (float64, error) {
			reports, err := core.CollectPM(r, ds.Values, eps, adv, gamma, 0)
			if err != nil {
				return 0, err
			}
			def := &defense.IForestDefense{Trees: 50, SampleSize: 256, Contamination: 0.1}
			est, err := def.Estimate(r, reports)
			if err != nil {
				return 0, err
			}
			return clamp1(est), nil
		}},
		{"DAP_EMF*", func(r *rand.Rand) (float64, error) {
			dd, err := core.NewDAP(dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter))
			if err != nil {
				return 0, err
			}
			est, err := dd.Run(r, ds.Values, adv, gamma)
			if err != nil {
				return 0, err
			}
			return est.Mean, nil
		}},
	}
	futs5 := make([]*future[float64], len(filterTrials))
	for i, ft := range filterTrials {
		futs5[i] = p.mse(cfg.Seed+uint64(0xAB50+i), cfg.Trials, trueMean, ft.trial)
	}

	// 6. Accuracy vs population size N: sampling noise scaling.
	t6 := &Table{
		Title:  "Ablation 6: MSE vs N — DAP_EMF*, Taxi, Poi[C/2,C], ε=1",
		Header: []string{"N", "MSE"},
	}
	scales := []int{cfg.N / 4, cfg.N / 2, cfg.N}
	futs6 := make([]*future[float64], len(scales))
	for i := range scales {
		if scales[i] < 100 {
			scales[i] = 100
		}
		sub, err := dataset.ByName(rngSplit(cfg.Seed, 0xAB60+uint64(i)), "Taxi", scales[i])
		if err != nil {
			return nil, err
		}
		dd, err := core.NewDAP(dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter))
		if err != nil {
			return nil, err
		}
		futs6[i] = p.mse(cfg.Seed+uint64(0xAB70+i), cfg.Trials, sub.TrueMean(),
			dapTrial(dd, sub.Values, adv, gamma))
	}

	// Collect in table order.
	for i, eps0 := range eps0List {
		v, err := futs1[i].get()
		if err != nil {
			return nil, err
		}
		t1.Rows = append(t1.Rows, []string{fmt.Sprintf("%g", eps0), fmt.Sprintf("%d", hs[i]), e2s(v)})
	}
	for i, factor := range factors {
		v, err := futs2[i].get()
		if err != nil {
			return nil, err
		}
		t2.Rows = append(t2.Rows, []string{fmt.Sprintf("%.2f", factor), e2s(v)})
	}
	for i, it := range modes {
		v, err := futs3[i].get()
		if err != nil {
			return nil, err
		}
		t3.Rows = append(t3.Rows, []string{it.name, e2s(v)})
	}
	mseHonest, err := futHonest.get()
	if err != nil {
		return nil, err
	}
	mseGamed, err := futGamed.get()
	if err != nil {
		return nil, err
	}
	mseDAP, err := futDAP.get()
	if err != nil {
		return nil, err
	}
	t4.Rows = append(t4.Rows,
		[]string{"baseline", "honest attack on both budgets", e2s(mseHonest)},
		[]string{"baseline", "gamed (honest ε_α, poison ε_β)", e2s(mseGamed)},
		[]string{"DAP", "gamed strategy impossible (random ε)", e2s(mseDAP)},
	)
	for i, ft := range filterTrials {
		v, err := futs5[i].get()
		if err != nil {
			return nil, err
		}
		t5.Rows = append(t5.Rows, []string{ft.name, e2s(v)})
	}
	for i := range scales {
		v, err := futs6[i].get()
		if err != nil {
			return nil, err
		}
		t6.Rows = append(t6.Rows, []string{fmt.Sprintf("%d", scales[i]), e2s(v)})
	}

	return []*Table{t1, t2, t3, t4, t5, t6}, nil
}

func clamp1(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
