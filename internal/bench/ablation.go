package bench

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/sim"
)

// Ablation benchmarks the design choices DESIGN.md calls out, all on the
// Taxi workload (Poi[C/2,C], γ = 0.25, ε = 1):
//
//  1. minimum group budget ε₀ (which fixes the group count h);
//  2. CEMF*'s suppression threshold factor;
//  3. Algorithm 5's literal weights vs the general optimum;
//  4. the §IV baseline protocol against honest and probing-aware
//     (gamed) adversaries vs DAP — the motivation for the multi-group
//     design.
func Ablation(cfg Config) ([]*Table, error) {
	ds, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}
	trueMean := ds.TrueMean()
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	const eps, gamma = 1.0, 0.25

	// 1. ε₀ sweep.
	t1 := &Table{
		Title:  "Ablation 1: MSE vs ε₀ (group count) — DAP_EMF*, Taxi, Poi[C/2,C], ε=1",
		Header: []string{"ε₀", "h", "MSE"},
	}
	for i, eps0 := range []float64{0.25, 1.0 / 16, 1.0 / 64} {
		d, err := core.NewDAP(core.Params{Eps: eps, Eps0: eps0, Scheme: core.SchemeEMFStar, EMFMaxIter: cfg.EMFMaxIter})
		if err != nil {
			return nil, err
		}
		mse, err := sim.MSE(cfg.Seed+uint64(0xAB10+i), cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
		if err != nil {
			return nil, err
		}
		t1.Rows = append(t1.Rows, []string{fmt.Sprintf("%g", eps0), fmt.Sprintf("%d", d.H()), e2s(mse)})
	}

	// 2. Suppression factor sweep.
	t2 := &Table{
		Title:  "Ablation 2: MSE vs CEMF* suppression factor — Taxi, Poi[C/2,C], ε=1",
		Header: []string{"factor", "MSE"},
	}
	for i, factor := range []float64{0.25, 0.5, 1.0} {
		p := dapParams(core.SchemeCEMFStar, eps, cfg.EMFMaxIter)
		p.SuppressFactor = factor
		d, err := core.NewDAP(p)
		if err != nil {
			return nil, err
		}
		mse, err := sim.MSE(cfg.Seed+uint64(0xAB20+i), cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
		if err != nil {
			return nil, err
		}
		t2.Rows = append(t2.Rows, []string{fmt.Sprintf("%.2f", factor), e2s(mse)})
	}

	// 3. Weight mode.
	t3 := &Table{
		Title:  "Ablation 3: Algorithm 5 weights vs general optimum — DAP_EMF*, Taxi, ε=1",
		Header: []string{"weights", "MSE"},
	}
	for i, it := range []struct {
		name string
		mode core.WeightMode
	}{{"paper (Alg. 5)", core.WeightsPaper}, {"general n̂²/B", core.WeightsGeneral}} {
		p := dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter)
		p.WeightMode = it.mode
		d, err := core.NewDAP(p)
		if err != nil {
			return nil, err
		}
		mse, err := sim.MSE(cfg.Seed+uint64(0xAB30+i), cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
		if err != nil {
			return nil, err
		}
		t3.Rows = append(t3.Rows, []string{it.name, e2s(mse)})
	}

	// 4. Baseline protocol vs DAP under probing-aware attackers.
	t4 := &Table{
		Title:  "Ablation 4: baseline (§IV) vs DAP (§V) under honest and gamed attackers — Taxi, ε=1",
		Header: []string{"protocol", "threat", "MSE"},
	}
	bl, err := core.NewBaseline(1.0/8, 7.0/8, core.SchemeEMFStar)
	if err != nil {
		return nil, err
	}
	bl.EMFMaxIter = cfg.EMFMaxIter
	blTrial := func(gamed bool) sim.Trial {
		return func(r *rand.Rand) (float64, error) {
			var col *core.BaselineCollection
			var err error
			if gamed {
				col, err = bl.GamedCollect(r, ds.Values, adv, gamma)
			} else {
				col, err = bl.Collect(r, ds.Values, adv, gamma)
			}
			if err != nil {
				return 0, err
			}
			est, err := bl.Estimate(col)
			if err != nil {
				return 0, err
			}
			return est.Mean, nil
		}
	}
	mseHonest, err := sim.MSE(cfg.Seed+0xAB40, cfg.Trials, trueMean, blTrial(false))
	if err != nil {
		return nil, err
	}
	mseGamed, err := sim.MSE(cfg.Seed+0xAB41, cfg.Trials, trueMean, blTrial(true))
	if err != nil {
		return nil, err
	}
	d, err := core.NewDAP(dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter))
	if err != nil {
		return nil, err
	}
	mseDAP, err := sim.MSE(cfg.Seed+0xAB42, cfg.Trials, trueMean, dapTrial(d, ds.Values, adv, gamma))
	if err != nil {
		return nil, err
	}
	t4.Rows = append(t4.Rows,
		[]string{"baseline", "honest attack on both budgets", e2s(mseHonest)},
		[]string{"baseline", "gamed (honest ε_α, poison ε_β)", e2s(mseGamed)},
		[]string{"DAP", "gamed strategy impossible (random ε)", e2s(mseDAP)},
	)

	// 5. Outlier-filter composability (§III-A): boxplot and isolation
	// forest as standalone defenses on the same workload.
	t5 := &Table{
		Title:  "Ablation 5: standalone outlier filters vs DAP — Taxi, Poi[C/2,C], ε=1, γ=0.25",
		Header: []string{"defense", "MSE"},
	}
	filterTrials := []struct {
		name  string
		trial sim.Trial
	}{
		{"Boxplot(1.5·IQR)", func(r *rand.Rand) (float64, error) {
			reports, err := core.CollectPM(r, ds.Values, eps, adv, gamma, 0)
			if err != nil {
				return 0, err
			}
			return clamp1(defense.Boxplot(reports, 1.5)), nil
		}},
		{"IForest(10%)", func(r *rand.Rand) (float64, error) {
			reports, err := core.CollectPM(r, ds.Values, eps, adv, gamma, 0)
			if err != nil {
				return 0, err
			}
			def := &defense.IForestDefense{Trees: 50, SampleSize: 256, Contamination: 0.1}
			est, err := def.Estimate(r, reports)
			if err != nil {
				return 0, err
			}
			return clamp1(est), nil
		}},
		{"DAP_EMF*", func(r *rand.Rand) (float64, error) {
			dd, err := core.NewDAP(dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter))
			if err != nil {
				return 0, err
			}
			est, err := dd.Run(r, ds.Values, adv, gamma)
			if err != nil {
				return 0, err
			}
			return est.Mean, nil
		}},
	}
	for i, ft := range filterTrials {
		mse, err := sim.MSE(cfg.Seed+uint64(0xAB50+i), cfg.Trials, trueMean, ft.trial)
		if err != nil {
			return nil, err
		}
		t5.Rows = append(t5.Rows, []string{ft.name, e2s(mse)})
	}

	// 6. Accuracy vs population size N: sampling noise scaling.
	t6 := &Table{
		Title:  "Ablation 6: MSE vs N — DAP_EMF*, Taxi, Poi[C/2,C], ε=1",
		Header: []string{"N", "MSE"},
	}
	for i, scale := range []int{cfg.N / 4, cfg.N / 2, cfg.N} {
		if scale < 100 {
			scale = 100
		}
		sub, err := dataset.ByName(rngSplit(cfg.Seed, 0xAB60+uint64(i)), "Taxi", scale)
		if err != nil {
			return nil, err
		}
		dd, err := core.NewDAP(dapParams(core.SchemeEMFStar, eps, cfg.EMFMaxIter))
		if err != nil {
			return nil, err
		}
		mse, err := sim.MSE(cfg.Seed+uint64(0xAB70+i), cfg.Trials, sub.TrueMean(),
			dapTrial(dd, sub.Values, adv, gamma))
		if err != nil {
			return nil, err
		}
		t6.Rows = append(t6.Rows, []string{fmt.Sprintf("%d", scale), e2s(mse)})
	}

	return []*Table{t1, t2, t3, t4, t5, t6}, nil
}

func clamp1(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}
