package bench

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
)

// Fig7 reproduces Fig. 7: robustness of the MSE on Taxi at ε = 1.
//
//	(a)(b) MSE vs the Byzantine proportion γ ∈ {5%, 10%, 30%, 40%} for
//	       Poi[O,C/2] and Poi[C/2,C];
//	(c)(d) MSE vs the poison-value distribution {Uniform, Gaussian,
//	       Beta(1,6), Beta(6,1)} at γ = 0.25 for the same two ranges.
//
// Paper shapes: DAP schemes stay flat and low as γ grows; Ostrich
// degrades sharply; the proposed schemes win under every poison
// distribution, with DAP_EMF* overtaking DAP_CEMF* under Gaussian poison.
func Fig7(cfg Config) ([]*Table, error) {
	ds, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}
	trueMean := ds.TrueMean()
	const eps = 1.0
	var tables []*Table

	// Panels (a)(b): MSE vs γ.
	gammas := []float64{0.05, 0.10, 0.30, 0.40}
	for ri, label := range []string{"[O,C/2]", "[C/2,C]"} {
		adv := attack.NewBBA(mustRange(label), attack.DistUniform)
		t := &Table{
			Title:  fmt.Sprintf("Fig. 7(%c): MSE vs γ — Taxi, Poi%s, ε=1", 'a'+ri, label),
			Header: []string{"Scheme", "5%", "10%", "30%", "40%"},
		}
		if err := fillSchemeRows(cfg, t, ds.Values, trueMean, eps, uint64(0x7000+ri*100),
			gammas, func(g float64) attack.Adversary { return adv }); err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}

	// Panels (c)(d): MSE vs poison distribution at γ = 0.25.
	for ri, label := range []string{"[O,C/2]", "[C/2,C]"} {
		dists := attack.Dists()
		t := &Table{
			Title:  fmt.Sprintf("Fig. 7(%c): MSE vs poison distribution — Taxi, Poi%s, ε=1, γ=0.25", 'c'+ri, label),
			Header: []string{"Scheme", "Uniform", "Gaussian", "Beta(1,6)", "Beta(6,1)"},
		}
		gammasFixed := make([]float64, len(dists))
		for i := range gammasFixed {
			gammasFixed[i] = 0.25
		}
		di := 0
		if err := fillSchemeRows(cfg, t, ds.Values, trueMean, eps, uint64(0x7C00+ri*100),
			gammasFixed, func(float64) attack.Adversary {
				adv := attack.NewBBA(mustRange(label), dists[di%len(dists)])
				di++
				return adv
			}); err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// fillSchemeRows fills one row per scheme, one column per workload cell.
// advFor is called once per column so it can vary the adversary. The DAP
// scheme rows of each column share one collection per trial
// (dapSchemesTrial); Ostrich and Trimming keep their own.
func fillSchemeRows(cfg Config, t *Table, values []float64, trueMean, eps float64, stream uint64, gammas []float64, advFor func(float64) attack.Adversary) error {
	daps, err := dapsForSchemes(eps, cfg.EMFMaxIter)
	if err != nil {
		return err
	}
	p := cfg.newPool()
	nSchemes := len(daps)
	futs := make([][]*future[float64], nSchemes+2)
	for si := range futs {
		futs[si] = make([]*future[float64], len(gammas))
	}
	for gi, gamma := range gammas {
		adv := advFor(gamma)
		cell := p.mseSchemes(cfg.Seed+stream+uint64(gi), cfg.Trials, trueMean,
			dapSchemesTrial(daps, values, adv, gamma), nSchemes)
		for si := range cell {
			futs[si][gi] = cell[si]
		}
		futs[nSchemes][gi] = p.mse(cfg.Seed+stream+uint64(nSchemes*16+gi), cfg.Trials, trueMean,
			ostrichTrial(values, eps, adv, gamma))
		futs[nSchemes+1][gi] = p.mse(cfg.Seed+stream+uint64((nSchemes+1)*16+gi), cfg.Trials, trueMean,
			trimmingTrial(values, eps, adv, gamma, true))
	}
	names := []string{}
	for _, sc := range core.Schemes() {
		names = append(names, "DAP_"+sc.String())
	}
	names = append(names, "Ostrich", "Trimming")
	for si, name := range names {
		row, err := collectCells([]string{name}, futs[si], e2s)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, row)
	}
	return nil
}
