package bench

import (
	"fmt"

	"repro/internal/dataset"
)

// Fig4 reproduces Fig. 4: the normalized frequency histograms of the four
// numerical datasets together with their true means O. The paper plots
// them as curves; the table lists 10 evenly spaced bins over [−1, 1].
func Fig4(cfg Config) ([]*Table, error) {
	const bins = 10
	header := []string{"Dataset", "O"}
	for i := 0; i < bins; i++ {
		lo := -1 + 2*float64(i)/bins
		header = append(header, fmt.Sprintf("[%.1f,%.1f)", lo, lo+0.2))
	}
	t := &Table{Title: "Fig. 4: Normalized frequencies of datasets", Header: header}
	for _, name := range dataset.Names() {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		row := []string{name, f2s(ds.TrueMean())}
		for _, h := range ds.Histogram(bins) {
			row = append(row, f2s(h))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
