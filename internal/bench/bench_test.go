package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
)

// tinyConfig keeps smoke tests fast; the real harness scales N up.
func tinyConfig() Config {
	return Config{N: 1500, Trials: 1, Seed: 7, EMFMaxIter: 50}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	want := []string{"ablation", "fig10", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "matrix", "spec", "table1"}
	if len(names) != len(want) {
		t.Fatalf("experiments = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("experiments = %v, want %v", names, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// cellFloat parses a table cell produced by e2s/f2s.
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func checkTableShape(t *testing.T, tbl *Table) {
	t.Helper()
	if tbl.Title == "" || len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
		t.Fatalf("malformed table %+v", tbl)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("%s: row %v does not match header %v", tbl.Title, row, tbl.Header)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	tables, err := Run("table1", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tbl := tables[0]
	checkTableShape(t, tbl)
	if len(tbl.Rows) != 8 { // 4 ranges × {L,R}
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Paper shape: for the clearly separated range [3C/4,C], the right
	// (true) side has lower x̂ variance. At tiny smoke-test N the smallest
	// ε degenerates to a single input bucket, so check the ε=2 column.
	var lVar, rVar float64
	for _, row := range tbl.Rows {
		if row[0] == "[3C/4,C]" {
			v := cellFloat(t, row[2]) // ε=2 column
			if row[1] == "L" {
				lVar = v
			} else {
				rVar = v
			}
		}
	}
	if rVar >= lVar {
		t.Fatalf("Table I shape violated: Var_R %v >= Var_L %v", rVar, lVar)
	}
}

func TestFig4Smoke(t *testing.T) {
	tables, err := Run("fig4", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTableShape(t, tables[0])
	if len(tables[0].Rows) != 4 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
	// Histogram cells sum to ~1 per dataset.
	for _, row := range tables[0].Rows {
		var sum float64
		for _, cell := range row[2:] {
			sum += cellFloat(t, cell)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: histogram sums to %v", row[0], sum)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	tables, err := Run("fig5", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tbl := range tables {
		checkTableShape(t, tbl)
		for _, row := range tbl.Rows {
			for _, cell := range row[1:] {
				v := cellFloat(t, cell)
				if v < 0 || v > 1.01 {
					t.Fatalf("%s: value %v outside [0,1]", tbl.Title, v)
				}
			}
		}
	}
}

func TestFig6SmokeSinglePanelShape(t *testing.T) {
	// Full fig6 is 16 panels; the smoke test exercises one via mseTable.
	cfg := tinyConfig()
	ds, err := loadDataset(cfg, "Beta(2,5)")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := mseTable(cfg, "smoke", ds.Values, ds.TrueMean(),
		attack.NewBBA(mustRange("[C/2,C]"), attack.DistUniform), 0.25, []float64{0.5, 1}, 0x600)
	if err != nil {
		t.Fatal(err)
	}
	checkTableShape(t, tbl)
	if len(tbl.Rows) != 5 {
		t.Fatalf("schemes = %d", len(tbl.Rows))
	}
	// Shape: every DAP scheme beats Ostrich at ε=1 (last column).
	ostrich := 0.0
	for _, row := range tbl.Rows {
		if row[0] == "Ostrich" {
			ostrich = cellFloat(t, row[len(row)-1])
		}
	}
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "DAP_") {
			if v := cellFloat(t, row[len(row)-1]); v >= ostrich {
				t.Fatalf("%s MSE %v does not beat Ostrich %v", row[0], v, ostrich)
			}
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	tables, err := Run("fig7", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tbl := range tables {
		checkTableShape(t, tbl)
		if len(tbl.Rows) != 5 {
			t.Fatalf("%s: schemes = %d", tbl.Title, len(tbl.Rows))
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	tables, err := Run("fig8", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tbl := range tables {
		checkTableShape(t, tbl)
	}
}

func TestFig9Smoke(t *testing.T) {
	tables, err := Run("fig9", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("panels = %d", len(tables))
	}
	// Panel (a): 3 DAP rows + 5 k-means rows.
	if len(tables[0].Rows) != 8 {
		t.Fatalf("fig9(a) rows = %d", len(tables[0].Rows))
	}
	// Panel (b): 3 EMF-based + 3 k-means rows.
	if len(tables[1].Rows) != 6 {
		t.Fatalf("fig9(b) rows = %d", len(tables[1].Rows))
	}
	// Panels (c)(d): 3 DAP + Ostrich.
	for _, tbl := range tables[2:] {
		checkTableShape(t, tbl)
		if len(tbl.Rows) != 4 {
			t.Fatalf("%s rows = %d", tbl.Title, len(tbl.Rows))
		}
	}
}

func TestFig10Smoke(t *testing.T) {
	tables, err := Run("fig10", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tbl := range tables {
		checkTableShape(t, tbl)
		if len(tbl.Rows) != 3 {
			t.Fatalf("%s rows = %d", tbl.Title, len(tbl.Rows))
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	tables, err := Run("ablation", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("panels = %d", len(tables))
	}
	for _, tbl := range tables {
		checkTableShape(t, tbl)
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"x", "y"}}}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "bb") {
		t.Fatalf("Fprint output: %q", out)
	}
	buf.Reset()
	tbl.CSV(&buf)
	if !strings.Contains(buf.String(), "a,bb") {
		t.Fatalf("CSV output: %q", buf.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N != 20000 || c.Trials != 3 || c.Seed != 1 || c.EMFMaxIter != 200 {
		t.Fatalf("defaults = %+v", c)
	}
}

// TestSpecSweepRejectsEpochAdaptiveAttacks: the batch sweep has no epoch
// axis, so ramp/burst specs fail loudly instead of sweeping their
// epoch-0 strength.
func TestSpecSweepRejectsEpochAdaptiveAttacks(t *testing.T) {
	cfg := tinyConfig()
	sp := core.NewSpec(core.MeanTask(), core.WithAttack(attack.Spec{Name: "ramp"}))
	cfg.Spec = &sp
	if _, err := SpecSweep(cfg); err == nil {
		t.Fatal("epoch-adaptive attack accepted by the batch spec sweep")
	}
}
