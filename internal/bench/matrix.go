package bench

// The red-team robustness matrix: every attack variant in the standard
// battery against every estimation scheme, on the mean task (PM) and the
// frequency task (k-RR). One collection per trial is shared across the
// scheme rows (warm-chained, like the paper experiments since PR 4), so a
// matrix row is a paired comparison on identical data and the whole
// matrix stays cheap enough to run in CI. cmd/dapredteam drives RunMatrix
// and renders the report; `dapbench -exp matrix` prints the same cells as
// tables.

import (
	"fmt"
	"io"
	"math"
	"slices"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/rng"
)

// NamedAttack couples a registry attack spec with its matrix row label.
type NamedAttack struct {
	Label string      `json:"label"`
	Spec  attack.Spec `json:"spec"`
}

// MatrixAttacks is the standard numeric red-team battery: the paper's
// four threat models plus the registry's composed variants (dropout,
// heterogeneous and distribution-shaped collusion). The "none" row runs
// at γ=0 and anchors the no-attack error floor.
func MatrixAttacks() []NamedAttack {
	return []NamedAttack{
		{"none", attack.Spec{Name: "none"}},
		{"bba[C/2,C]", attack.Spec{Name: "bba"}},
		{"bba[3C/4,C]-gauss", attack.Spec{Name: "bba", Range: "[3C/4,C]", Dist: "gaussian"}},
		{"bba-left-beta16", attack.Spec{Name: "bba", Side: "left", Dist: "beta16"}},
		{"gba-50/50", attack.Spec{Name: "gba"}},
		{"ima(g=-1)", attack.Spec{Name: "ima"}},
		{"evasion(a=0.25)", attack.Spec{Name: "evasion"}},
		{"opportunistic", attack.Spec{Name: "opportunistic"}},
		{"dropout-50", attack.Spec{Name: "dropout"}},
		{"hetero[1,0.25]", attack.Spec{Name: "hetero", GroupFrac: []float64{1, 0.25}}},
	}
}

// MatrixFreqAttacks is the categorical battery of the frequency panel.
func MatrixFreqAttacks() []NamedAttack {
	return []NamedAttack{
		{"freq-none", attack.Spec{Name: "none"}},
		{"targeted-top", attack.Spec{Name: "targeted", Cats: []int{15}}},
		{"maxgain-2", attack.Spec{Name: "maxgain", Targets: 2}},
	}
}

// MatrixRow is one (task, attack, scheme) cell of the robustness matrix.
type MatrixRow struct {
	// Task is the task kind the cell ran ("mean" or "frequency").
	Task string `json:"task"`
	// Attack is the battery row label; AttackName the built adversary's
	// self-description.
	Attack     string `json:"attack"`
	AttackName string `json:"attack_name"`
	// Scheme is the estimation scheme of the cell.
	Scheme string `json:"scheme"`
	// Gamma is the Byzantine proportion the cell simulated.
	Gamma float64 `json:"gamma"`
	// MSE is the mean squared error of the estimate against the honest
	// truth (component-averaged for frequency rows).
	MSE float64 `json:"mse"`
	// GammaErr is the mean absolute error of the probed γ̂.
	GammaErr float64 `json:"gamma_err"`
}

// MatrixReport is the machine-readable robustness-matrix record; Markdown
// renders the human-readable pivot.
type MatrixReport struct {
	Schema int         `json:"schema"`
	N      int         `json:"n"`
	Trials int         `json:"trials"`
	Seed   uint64      `json:"seed"`
	Gamma  float64     `json:"gamma"`
	Rows   []MatrixRow `json:"rows"`
}

// RunMatrix evaluates the standard attack battery against every scheme at
// the given Byzantine proportion. Deterministic for a fixed cfg.Seed,
// independent of cfg.Workers: every (task, attack) cell owns a fixed rng
// stream and rows are collected in battery order.
func RunMatrix(cfg Config, gamma float64) (*MatrixReport, error) {
	return RunMatrixExtra(cfg, gamma, nil)
}

// RunMatrixExtra is RunMatrix with extra numeric registry attacks
// appended to the standard battery (cmd/dapredteam's -attacks).
func RunMatrixExtra(cfg Config, gamma float64, extra []NamedAttack) (*MatrixReport, error) {
	cfg = cfg.withDefaults()
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("bench: matrix gamma %g outside (0,1)", gamma)
	}
	// Extras join the numeric mean-task panel, which is one-shot batch
	// simulation: categorical attacks would inject out-of-domain reports
	// and epoch-adaptive ones would run at their epoch-0 strength — both
	// would tabulate as meaningless rows, so they fail loudly instead.
	for _, na := range extra {
		if na.Spec.Categorical() {
			return nil, fmt.Errorf("bench: extra attack %q is categorical and cannot join the numeric matrix panel", na.Label)
		}
		if na.Spec.EpochAdaptive() {
			return nil, fmt.Errorf("bench: extra attack %q is epoch-adaptive and the batch matrix has no epochs; drive it with daploadgen -attack-epochs", na.Label)
		}
	}
	rep := &MatrixReport{Schema: 1, N: cfg.N, Trials: cfg.Trials, Seed: cfg.Seed, Gamma: gamma}
	p := cfg.newPool()

	numeric, err := matrixNumeric(cfg, p, gamma, append(MatrixAttacks(), extra...))
	if err != nil {
		return nil, err
	}
	freq, err := matrixFreq(cfg, p, gamma)
	if err != nil {
		return nil, err
	}
	for _, f := range numeric {
		rows, err := f.get()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	for _, f := range freq {
		rows, err := f.get()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// matrixNumeric schedules the mean-task panel: one future per attack,
// each running Trials shared collections estimated by all three schemes.
func matrixNumeric(cfg Config, p *pool, gamma float64, battery []NamedAttack) ([]*future[[]MatrixRow], error) {
	ds, err := loadDataset(cfg, "Beta(2,5)")
	if err != nil {
		return nil, err
	}
	truth := ds.TrueMean()
	daps, err := dapsForSchemes(1, cfg.EMFMaxIter)
	if err != nil {
		return nil, err
	}
	schemes := core.Schemes()
	futs := make([]*future[[]MatrixRow], 0, len(battery))
	for ai, na := range battery {
		na := na
		adv, err := attack.New(na.Spec)
		if err != nil {
			return nil, err
		}
		g := gamma
		if na.Spec.Name == "none" {
			g = 0
		}
		seed := cfg.Seed + 0xA77AC0 + uint64(ai)*0x1000
		futs = append(futs, submit(p, func() ([]MatrixRow, error) {
			se := make([]float64, len(daps))
			ge := make([]float64, len(daps))
			for j := 0; j < cfg.Trials; j++ {
				r := rng.Split(seed, uint64(j))
				col, err := daps[0].Collect(r, ds.Values, adv, g)
				if err != nil {
					return nil, err
				}
				var warm *core.WarmState
				for i, d := range daps {
					est, err := d.EstimateWarm(col, warm)
					if err != nil {
						return nil, err
					}
					if warm == nil {
						warm = est.Warm
					}
					se[i] += (est.Mean - truth) * (est.Mean - truth)
					ge[i] += math.Abs(est.Gamma - g)
				}
			}
			rows := make([]MatrixRow, len(daps))
			for i := range daps {
				rows[i] = MatrixRow{
					Task: string(core.TaskMean), Attack: na.Label, AttackName: adv.Name(),
					Scheme: schemes[i].String(), Gamma: g,
					MSE: se[i] / float64(cfg.Trials), GammaErr: ge[i] / float64(cfg.Trials),
				}
			}
			return rows, nil
		}))
	}
	return futs, nil
}

// matrixFreq schedules the frequency-task panel over the synthetic Zipf
// population of the spec sweep (K=16).
func matrixFreq(cfg Config, p *pool, gamma float64) ([]*future[[]MatrixRow], error) {
	const k = 16
	cats, truth := zipfCats(cfg.N, k)
	schemes := core.Schemes()
	freqs := make([]*core.FreqDAP, len(schemes))
	for i, sc := range schemes {
		d, err := core.NewFreqDAP(core.FreqParams{
			Eps: 1, Eps0: 1.0 / 16, K: k, Scheme: sc, EMFMaxIter: cfg.EMFMaxIter,
		})
		if err != nil {
			return nil, err
		}
		freqs[i] = d
	}
	futs := make([]*future[[]MatrixRow], 0, len(MatrixFreqAttacks()))
	for ai, na := range MatrixFreqAttacks() {
		na := na
		adv, err := attack.New(na.Spec)
		if err != nil {
			return nil, err
		}
		g := gamma
		if na.Spec.Name == "none" {
			g = 0
		}
		seed := cfg.Seed + 0xF4EAC0 + uint64(ai)*0x1000
		futs = append(futs, submit(p, func() ([]MatrixRow, error) {
			se := make([]float64, len(freqs))
			ge := make([]float64, len(freqs))
			for j := 0; j < cfg.Trials; j++ {
				r := rng.Split(seed, uint64(j))
				col, err := freqs[0].CollectFreqAdv(r, cats, adv, g)
				if err != nil {
					return nil, err
				}
				var warm *core.WarmState
				for i, d := range freqs {
					est, err := d.EstimateFreqWarm(col, warm)
					if err != nil {
						return nil, err
					}
					if warm == nil {
						warm = est.Warm
					}
					var mse float64
					for c := range truth {
						diff := est.Freqs[c] - truth[c]
						mse += diff * diff
					}
					se[i] += mse / float64(len(truth))
					ge[i] += math.Abs(est.Gamma - g)
				}
			}
			rows := make([]MatrixRow, len(freqs))
			for i := range freqs {
				rows[i] = MatrixRow{
					Task: string(core.TaskFrequency), Attack: na.Label, AttackName: adv.Name(),
					Scheme: schemes[i].String(), Gamma: g,
					MSE: se[i] / float64(cfg.Trials), GammaErr: ge[i] / float64(cfg.Trials),
				}
			}
			return rows, nil
		}))
	}
	return futs, nil
}

// zipfCats builds the deterministic 1/(j+1)-weighted categorical
// population shared with the spec sweep, plus its true frequency vector.
func zipfCats(n, k int) ([]int, []float64) {
	weights := make([]float64, k)
	var wSum float64
	for j := range weights {
		weights[j] = 1 / float64(j+1)
		wSum += weights[j]
	}
	cats := make([]int, n)
	idx := 0
	for j := range weights {
		cnt := int(weights[j] / wSum * float64(n))
		for c := 0; c < cnt && idx < len(cats); c++ {
			cats[idx] = j
			idx++
		}
	}
	for ; idx < len(cats); idx++ {
		cats[idx] = 0
	}
	truth := make([]float64, k)
	for _, c := range cats {
		truth[c] += 1 / float64(len(cats))
	}
	return cats, truth
}

// errWriter forwards writes to w until one fails, then swallows the rest
// and keeps the first error — so a rendering function can print freely
// and report the failure once.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return len(p), nil
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, nil
}

// Markdown renders the report as one pivoted table per task: attacks down
// the rows, schemes across the columns, MSE and γ̂-error side by side.
// The first write error aborts the rendering's effect and is returned.
func (rep *MatrixReport) Markdown(w io.Writer) error {
	ew := &errWriter{w: w}
	byTask := map[string][]MatrixRow{}
	var taskOrder []string
	for _, row := range rep.Rows {
		if _, ok := byTask[row.Task]; !ok {
			taskOrder = append(taskOrder, row.Task)
		}
		byTask[row.Task] = append(byTask[row.Task], row)
	}
	fmt.Fprintf(ew, "# Red-team robustness matrix\n\n")
	fmt.Fprintf(ew, "N=%d users, %d trials per cell, seed %d, γ=%g (the `none` rows run at γ=0).\n",
		rep.N, rep.Trials, rep.Seed, rep.Gamma)
	fmt.Fprintf(ew, "Scheme rows share one collection per trial, so each row is a paired comparison.\n")
	for _, task := range taskOrder {
		rows := byTask[task]
		// Collect scheme order and attack order as first seen.
		var schemes, attacks []string
		cells := map[string]MatrixRow{}
		for _, row := range rows {
			if !slices.Contains(schemes, row.Scheme) {
				schemes = append(schemes, row.Scheme)
			}
			if !slices.Contains(attacks, row.Attack) {
				attacks = append(attacks, row.Attack)
			}
			cells[row.Attack+"\x00"+row.Scheme] = row
		}
		fmt.Fprintf(ew, "\n## task %s\n\n", task)
		header := []string{"attack", "γ"}
		for _, s := range schemes {
			header = append(header, s+" MSE")
		}
		for _, s := range schemes {
			header = append(header, s+" |γ̂−γ|")
		}
		fmt.Fprintf(ew, "| %s |\n|%s\n", strings.Join(header, " | "), strings.Repeat("---|", len(header)))
		for _, a := range attacks {
			// γ from any present cell; missing (attack, scheme) cells render
			// as "-" instead of zero values (partial or filtered reports).
			gammaCell := "-"
			for _, s := range schemes {
				if c, ok := cells[a+"\x00"+s]; ok {
					gammaCell = fmt.Sprintf("%.2f", c.Gamma)
					break
				}
			}
			cols := []string{a, gammaCell}
			for _, s := range schemes {
				if c, ok := cells[a+"\x00"+s]; ok {
					cols = append(cols, fmt.Sprintf("%.3e", c.MSE))
				} else {
					cols = append(cols, "-")
				}
			}
			for _, s := range schemes {
				if c, ok := cells[a+"\x00"+s]; ok {
					cols = append(cols, fmt.Sprintf("%.3f", c.GammaErr))
				} else {
					cols = append(cols, "-")
				}
			}
			fmt.Fprintf(ew, "| %s |\n", strings.Join(cols, " | "))
		}
	}
	return ew.err
}

// Tables converts the report into the harness table shape for dapbench.
func (rep *MatrixReport) Tables() []*Table {
	byTask := map[string]*Table{}
	var out []*Table
	for _, row := range rep.Rows {
		t, ok := byTask[row.Task]
		if !ok {
			t = &Table{
				Title:  fmt.Sprintf("robustness matrix: task=%s γ=%g (attack × scheme)", row.Task, rep.Gamma),
				Header: []string{"attack", "scheme", "gamma", "mse", "gamma_err"},
			}
			byTask[row.Task] = t
			out = append(out, t)
		}
		t.Rows = append(t.Rows, []string{
			row.Attack, row.Scheme, fmt.Sprintf("%.2f", row.Gamma),
			e2s(row.MSE), fmt.Sprintf("%.4f", row.GammaErr),
		})
	}
	return out
}

// Matrix is the dapbench-registered experiment wrapper around RunMatrix
// at the default red-team γ=0.25.
func Matrix(cfg Config) ([]*Table, error) {
	rep, err := RunMatrix(cfg, 0.25)
	if err != nil {
		return nil, err
	}
	return rep.Tables(), nil
}
