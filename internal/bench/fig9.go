package bench

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/emf"
	"repro/internal/ldp/pm"
	"repro/internal/sim"
	"repro/internal/stats"
)

// kmSubsets is the number of sampled subsets for the k-means defense (the
// paper uses 10⁶; a few hundred already stabilizes the clustering and
// keeps laptop-scale runs fast).
const kmSubsets = 500

// Fig9 reproduces Fig. 9:
//
//	(a) DAP vs the k-means-based defense [38] under BBA on Taxi
//	    (Poi[C/2,C], γ = 0.25) across ε and sampling rates β;
//	(b) the input manipulation attack on Taxi (γ = 0.25, ε = 1): the
//	    EMF-integrated k-means defense vs plain k-means for poison inputs
//	    g ∈ {−1, 1, 0} across sampling rates;
//	(c)(d) frequency estimation on COVID-19 under k-RR with poison
//	    injected into category 10 and categories 10–12.
//
// Paper shapes: DAP beats the k-means family by orders of magnitude in
// (a); the EMF integration improves plain k-means by ~30% in (b); in
// (c)(d) Ostrich's MSE stays flat near 0.1 while DAP's drops with ε.
func Fig9(cfg Config) ([]*Table, error) {
	taxi, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}
	trueMean := taxi.TrueMean()
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	p := cfg.newPool()

	// Panel (a): DAP vs k-means under BBA.
	epsList := []float64{0.25, 0.5, 1, 1.5, 2}
	a := &Table{
		Title:  "Fig. 9(a): MSE vs ε — DAP vs k-means defense, Taxi, Poi[C/2,C], γ=0.25",
		Header: append([]string{"Scheme"}, mapStrings(epsList, epsLabel)...),
	}
	schemes := core.Schemes()
	futsA := make([][]*future[float64], len(schemes))
	for si := range schemes {
		futsA[si] = make([]*future[float64], len(epsList))
	}
	// The DAP scheme rows of each ε column share one collection per trial.
	for ei, eps := range epsList {
		daps, err := dapsForSchemes(eps, cfg.EMFMaxIter)
		if err != nil {
			return nil, err
		}
		cell := p.mseSchemes(cfg.Seed+uint64(0x9A00+ei), cfg.Trials, trueMean,
			dapSchemesTrial(daps, taxi.Values, adv, 0.25), len(schemes))
		for si := range cell {
			futsA[si][ei] = cell[si]
		}
	}
	betas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	futsKM := make([][]*future[float64], len(betas))
	for bi, beta := range betas {
		futsKM[bi] = make([]*future[float64], len(epsList))
		for ei, eps := range epsList {
			def := &defense.KMeansDefense{Subsets: kmSubsets, Rate: beta}
			eps := eps
			futsKM[bi][ei] = p.mse(cfg.Seed+uint64(0x9B00+bi*16+ei), cfg.Trials, trueMean,
				func(r *rand.Rand) (float64, error) {
					reports, err := core.CollectPM(r, taxi.Values, eps, adv, 0.25, 0)
					if err != nil {
						return 0, err
					}
					est, err := def.Estimate(r, reports)
					if err != nil {
						return 0, err
					}
					return stats.Clamp(est, -1, 1), nil
				})
		}
	}

	// Panel (b): IMA — EMF-based integration vs plain k-means.
	b := &Table{
		Title:  "Fig. 9(b): MSE vs sampling rate β — IMA on Taxi, γ=0.25, ε=1",
		Header: append([]string{"Scheme"}, mapStrings(betas, func(v float64) string { return fmt.Sprintf("%.1f", v) })...),
	}
	const imaEps = 1.0
	mech := pm.MustNew(imaEps)
	din, dprime := emf.BucketCounts(cfg.N, mech.C())
	matrix, err := emf.BuildNumericCached(mech, din, dprime)
	if err != nil {
		return nil, err
	}
	gs := []float64{-1, 1, 0}
	futsEMF := make([]*future[float64], len(gs))
	for gi, g := range gs {
		ima := &attack.IMA{G: g}
		// EMF-based: no β dependence; one MSE reused across columns.
		futsEMF[gi] = p.mse(cfg.Seed+uint64(0x9C00+gi), cfg.Trials, trueMean,
			func(r *rand.Rand) (float64, error) {
				reports, err := core.CollectPM(r, taxi.Values, imaEps, ima, 0.25, 0)
				if err != nil {
					return 0, err
				}
				def := &defense.EMFKMeans{Matrix: matrix, Config: emf.Config{Tol: emf.PaperTol(imaEps), MaxIter: cfg.EMFMaxIter, Accelerate: true}}
				est, err := def.Estimate(r, reports)
				if err != nil {
					return 0, err
				}
				return stats.Clamp(est, -1, 1), nil
			})
	}
	futsIKM := make([][]*future[float64], len(gs))
	for gi, g := range gs {
		ima := &attack.IMA{G: g}
		futsIKM[gi] = make([]*future[float64], len(betas))
		for bi, beta := range betas {
			def := &defense.KMeansDefense{Subsets: kmSubsets, Rate: beta}
			futsIKM[gi][bi] = p.mse(cfg.Seed+uint64(0x9D00+gi*16+bi), cfg.Trials, trueMean,
				func(r *rand.Rand) (float64, error) {
					reports, err := core.CollectPM(r, taxi.Values, imaEps, ima, 0.25, 0)
					if err != nil {
						return 0, err
					}
					est, err := def.Estimate(r, reports)
					if err != nil {
						return 0, err
					}
					return stats.Clamp(est, -1, 1), nil
				})
		}
	}

	// Panels (c)(d): categorical frequency estimation on COVID-19.
	cov := dataset.COVID19()
	cats := cov.Sample(rng9(cfg), cfg.N)
	trueFreqs := cov.Freqs()
	poisonSets := [][]int{{10}, {10, 11, 12}}
	futsCD := make([][][]*future[float64], len(poisonSets))
	futsOst := make([][]*future[float64], len(poisonSets))
	for pi, poisonCats := range poisonSets {
		futsCD[pi] = make([][]*future[float64], len(schemes))
		for si := range schemes {
			futsCD[pi][si] = make([]*future[float64], len(epsList))
		}
		// The scheme rows of each ε column share one categorical collection
		// per trial, warm-chained like the numeric panels.
		for ei, eps := range epsList {
			fs := make([]*core.FreqDAP, len(schemes))
			for si, sc := range schemes {
				f, err := core.NewFreqDAP(core.FreqParams{Eps: eps, Eps0: 1.0 / 16, K: cov.K(), Scheme: sc, EMFMaxIter: cfg.EMFMaxIter})
				if err != nil {
					return nil, err
				}
				fs[si] = f
			}
			pc := poisonCats
			cell := splitFuture(p, len(schemes), func() ([]float64, error) {
				return sim.MSEVecPer(cfg.Seed+uint64(0x9E00+pi*1000+ei), cfg.Trials, trueFreqs,
					func(r *rand.Rand) ([][]float64, error) {
						col, err := fs[0].CollectFreq(r, cats, pc, 0.25)
						if err != nil {
							return nil, err
						}
						out := make([][]float64, len(fs))
						var warm *core.WarmState
						for i, f := range fs {
							est, err := f.EstimateFreqWarm(col, warm)
							if err != nil {
								return nil, err
							}
							if warm == nil {
								warm = est.Warm
							}
							out[i] = est.Freqs
						}
						return out, nil
					})
			})
			for si := range cell {
				futsCD[pi][si][ei] = cell[si]
			}
		}
		futsOst[pi] = make([]*future[float64], len(epsList))
		for ei, eps := range epsList {
			f, err := core.NewFreqDAP(core.FreqParams{Eps: eps, Eps0: 1.0 / 16, K: cov.K(), EMFMaxIter: cfg.EMFMaxIter})
			if err != nil {
				return nil, err
			}
			pc := poisonCats
			futsOst[pi][ei] = p.mseVec(cfg.Seed+uint64(0x9F00+pi*1000+ei), cfg.Trials, trueFreqs,
				func(r *rand.Rand) ([]float64, error) {
					col, err := f.CollectFreq(r, cats, pc, 0.25)
					if err != nil {
						return nil, err
					}
					return f.OstrichFreq(col)
				})
		}
	}

	// Collect everything in table order.
	for si, sc := range schemes {
		row, err := collectCells([]string{"DAP_" + sc.String()}, futsA[si], e2s)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, row)
	}
	for bi, beta := range betas {
		row, err := collectCells([]string{fmt.Sprintf("K-means(β=%.1f)", beta)}, futsKM[bi], e2s)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, row)
	}
	for gi, g := range gs {
		emfBased, err := futsEMF[gi].get()
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("EMF-based(g=%g)", g)}
		for range betas {
			row = append(row, e2s(emfBased))
		}
		b.Rows = append(b.Rows, row)
	}
	for gi, g := range gs {
		row, err := collectCells([]string{fmt.Sprintf("K-means(g=%g)", g)}, futsIKM[gi], e2s)
		if err != nil {
			return nil, err
		}
		b.Rows = append(b.Rows, row)
	}
	tables := []*Table{a, b}
	for pi, poisonCats := range poisonSets {
		t := &Table{
			Title:  fmt.Sprintf("Fig. 9(%c): frequency MSE vs ε — COVID-19, poison cats %v, γ=0.25", 'c'+pi, poisonCats),
			Header: append([]string{"Scheme"}, mapStrings(epsList, epsLabel)...),
		}
		for si, sc := range schemes {
			row, err := collectCells([]string{"DAP_" + sc.String()}, futsCD[pi][si], e2s)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		row, err := collectCells([]string{"Ostrich"}, futsOst[pi], e2s)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		tables = append(tables, t)
	}
	return tables, nil
}

func rng9(cfg Config) *rand.Rand {
	return rngSplit(cfg.Seed, 0x9)
}
