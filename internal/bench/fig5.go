package bench

import (
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/sim"
)

// Fig5 reproduces Fig. 5: accuracy of the Byzantine proportion estimated
// by EMF with respect to ε.
//
//	(a) |γ̂−γ| for γ = 0.1 across the four poison ranges (Taxi);
//	(b) the same for γ = 0.4;
//	(c) the false-positive rate γ̂ when no attack exists (all datasets);
//	(d) γ̂ under the input manipulation attack, γ = 0.25 (all datasets).
//
// The paper's shapes: (a)(b) errors shrink as ε → 0 (Theorem 3); (c) the
// false-positive rate falls to 0.02–0.04 at ε = 1/16; (d) IMA hides from
// EMF, leaving γ̂ ≈ 0.03–0.04 regardless of γ.
func Fig5(cfg Config) ([]*Table, error) {
	epsList := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2}
	header := append([]string{"Series"}, mapStrings(epsList, epsLabel)...)

	taxi, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}

	gammaErr := func(values []float64, adv attack.Adversary, gamma float64, eps float64, stream uint64) (float64, error) {
		return sim.Average(cfg.Seed+stream, cfg.Trials, func(r *rand.Rand) (float64, error) {
			gh, err := probeGamma(r, values, eps, adv, gamma, cfg.EMFMaxIter)
			if err != nil {
				return 0, err
			}
			return math.Abs(gh - gamma), nil
		})
	}

	makePanel := func(title string, gamma float64) (*Table, error) {
		t := &Table{Title: title, Header: header}
		for ri, label := range rangeLabels {
			adv := attack.NewBBA(mustRange(label), attack.DistUniform)
			row := []string{"Poi" + label}
			for ei, eps := range epsList {
				v, err := gammaErr(taxi.Values, adv, gamma, eps, uint64(ri*100+ei))
				if err != nil {
					return nil, err
				}
				row = append(row, e2s(v))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}

	a, err := makePanel("Fig. 5(a): |γ̂−γ| vs ε, γ=0.1 (Taxi)", 0.1)
	if err != nil {
		return nil, err
	}
	b, err := makePanel("Fig. 5(b): |γ̂−γ| vs ε, γ=0.4 (Taxi)", 0.4)
	if err != nil {
		return nil, err
	}

	c := &Table{Title: "Fig. 5(c): false-positive γ̂ vs ε₀, no attack", Header: header}
	d := &Table{Title: "Fig. 5(d): γ̂ under IMA(g=1), γ=0.25", Header: header}
	for di, name := range dataset.Names() {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		rowC := []string{name}
		rowD := []string{name}
		for ei, eps := range epsList {
			fpr, err := gammaErr(ds.Values, attack.None{}, 0, eps, uint64(0xC0+di*10+ei))
			if err != nil {
				return nil, err
			}
			rowC = append(rowC, e2s(fpr))
			// Panel (d) reports γ̂ itself.
			ima, err := sim.Average(cfg.Seed+uint64(0xD0+di*10+ei), cfg.Trials, func(r *rand.Rand) (float64, error) {
				return probeGamma(r, ds.Values, eps, &attack.IMA{G: 1}, 0.25, cfg.EMFMaxIter)
			})
			if err != nil {
				return nil, err
			}
			rowD = append(rowD, e2s(ima))
		}
		c.Rows = append(c.Rows, rowC)
		d.Rows = append(d.Rows, rowD)
	}
	return []*Table{a, b, c, d}, nil
}
