package bench

import (
	"math"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/sim"
)

// Fig5 reproduces Fig. 5: accuracy of the Byzantine proportion estimated
// by EMF with respect to ε.
//
//	(a) |γ̂−γ| for γ = 0.1 across the four poison ranges (Taxi);
//	(b) the same for γ = 0.4;
//	(c) the false-positive rate γ̂ when no attack exists (all datasets);
//	(d) γ̂ under the input manipulation attack, γ = 0.25 (all datasets).
//
// The paper's shapes: (a)(b) errors shrink as ε → 0 (Theorem 3); (c) the
// false-positive rate falls to 0.02–0.04 at ε = 1/16; (d) IMA hides from
// EMF, leaving γ̂ ≈ 0.03–0.04 regardless of γ.
func Fig5(cfg Config) ([]*Table, error) {
	epsList := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2}
	header := append([]string{"Series"}, mapStrings(epsList, epsLabel)...)
	p := cfg.newPool()

	taxi, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return nil, err
	}

	gammaErr := func(values []float64, adv attack.Adversary, gamma float64, eps float64, stream uint64) *future[float64] {
		return p.avg(cfg.Seed+stream, cfg.Trials, func(r *rand.Rand) (float64, error) {
			gh, err := probeGamma(r, values, eps, adv, gamma, cfg.EMFMaxIter)
			if err != nil {
				return 0, err
			}
			return math.Abs(gh - gamma), nil
		})
	}

	makePanel := func(title string, gamma float64) (*Table, func() error) {
		t := &Table{Title: title, Header: header}
		futs := make([][]*future[float64], len(rangeLabels))
		for ri, label := range rangeLabels {
			adv := attack.NewBBA(mustRange(label), attack.DistUniform)
			futs[ri] = make([]*future[float64], len(epsList))
			for ei, eps := range epsList {
				futs[ri][ei] = gammaErr(taxi.Values, adv, gamma, eps, uint64(ri*100+ei))
			}
		}
		collect := func() error {
			for ri, label := range rangeLabels {
				row, err := collectCells([]string{"Poi" + label}, futs[ri], e2s)
				if err != nil {
					return err
				}
				t.Rows = append(t.Rows, row)
			}
			return nil
		}
		return t, collect
	}

	a, collectA := makePanel("Fig. 5(a): |γ̂−γ| vs ε, γ=0.1 (Taxi)", 0.1)
	b, collectB := makePanel("Fig. 5(b): |γ̂−γ| vs ε, γ=0.4 (Taxi)", 0.4)

	c := &Table{Title: "Fig. 5(c): false-positive γ̂ vs ε₀, no attack", Header: header}
	d := &Table{Title: "Fig. 5(d): γ̂ under IMA(g=1), γ=0.25", Header: header}
	names := dataset.Names()
	futsC := make([][]*future[float64], len(names))
	futsD := make([][]*future[float64], len(names))
	for di, name := range names {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		futsC[di] = make([]*future[float64], len(epsList))
		futsD[di] = make([]*future[float64], len(epsList))
		for ei, eps := range epsList {
			futsC[di][ei] = gammaErr(ds.Values, attack.None{}, 0, eps, uint64(0xC0+di*10+ei))
			// Panel (d) reports γ̂ itself.
			vals, e := ds.Values, eps
			futsD[di][ei] = p.avg(cfg.Seed+uint64(0xD0+di*10+ei), cfg.Trials,
				func(r *rand.Rand) (float64, error) {
					return probeGamma(r, vals, e, &attack.IMA{G: 1}, 0.25, cfg.EMFMaxIter)
				})
		}
	}
	if err := collectA(); err != nil {
		return nil, err
	}
	if err := collectB(); err != nil {
		return nil, err
	}
	for di, name := range names {
		rowC, err := collectCells([]string{name}, futsC[di], e2s)
		if err != nil {
			return nil, err
		}
		rowD, err := collectCells([]string{name}, futsD[di], e2s)
		if err != nil {
			return nil, err
		}
		c.Rows = append(c.Rows, rowC)
		d.Rows = append(d.Rows, rowD)
	}
	return []*Table{a, b, c, d}, nil
}

// Fig5Cell evaluates one Fig. 5(a)-style cell — the Monte-Carlo average of
// |γ̂−γ| for Poi[C/2,C] on Taxi at the given ε and γ — exported so the
// repository benchmarks can track the cost of a single cell of the
// hottest experiment.
func Fig5Cell(cfg Config, eps, gamma float64) (float64, error) {
	cfg = cfg.withDefaults()
	taxi, err := loadDataset(cfg, "Taxi")
	if err != nil {
		return 0, err
	}
	adv := attack.NewBBA(mustRange("[C/2,C]"), attack.DistUniform)
	return sim.Average(cfg.Seed, cfg.Trials, func(r *rand.Rand) (float64, error) {
		gh, err := probeGamma(r, taxi.Values, eps, adv, gamma, cfg.EMFMaxIter)
		if err != nil {
			return 0, err
		}
		return math.Abs(gh - gamma), nil
	})
}
