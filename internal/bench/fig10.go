package bench

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func rngSplit(seed, stream uint64) *rand.Rand { return rng.Split(seed, stream) }

// Fig10 reproduces Fig. 10: the evasion attack of §V-D. A fraction a of
// the poison reports sit at −C/2 to mislead the side probe while the
// remaining (1−a) attack uniformly on [C/2, C]; ε = 1/2, γ = 0.25. One
// table per dataset with the three DAP schemes as rows and
// a ∈ {0, 0.1, …, 0.5} as columns.
//
// Paper shape: MSE stays low for small a, spikes once a crosses the
// ~20–30% threshold where the side probe flips, then declines again as
// the evasive mass starves the true attack (Eq. 20).
func Fig10(cfg Config) ([]*Table, error) {
	const eps = 0.5
	as := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	header := append([]string{"Scheme"}, mapStrings(as, func(v float64) string { return fmt.Sprintf("a=%.1f", v) })...)
	p := cfg.newPool()
	var tables []*Table
	schemes := core.Schemes()
	for di, name := range dataset.Names() {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		trueMean := ds.TrueMean()
		t := &Table{
			Title:  fmt.Sprintf("Fig. 10: MSE vs evasive fraction a — %s, ε=1/2, γ=0.25", name),
			Header: header,
		}
		daps, err := dapsForSchemes(eps, cfg.EMFMaxIter)
		if err != nil {
			return nil, err
		}
		futs := make([][]*future[float64], len(schemes))
		for si := range schemes {
			futs[si] = make([]*future[float64], len(as))
		}
		// The scheme rows of each a column share one collection per trial.
		for ai, a := range as {
			adv := &attack.Evasion{A: a}
			cell := p.mseSchemes(cfg.Seed+uint64(0xA000+di*1000+ai), cfg.Trials, trueMean,
				dapSchemesTrial(daps, ds.Values, adv, 0.25), len(schemes))
			for si := range cell {
				futs[si][ai] = cell[si]
			}
		}
		for si, sc := range schemes {
			row, err := collectCells([]string{"DAP_" + sc.String()}, futs[si], e2s)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
