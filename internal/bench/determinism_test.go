package bench

import (
	"reflect"
	"testing"
)

// TestWorkersDeterminism: the concurrent cell pool must produce
// byte-identical tables for any worker count and on repeated runs — the
// acceptance property of the parallel Monte-Carlo harness.
func TestWorkersDeterminism(t *testing.T) {
	for _, exp := range []string{"table1", "fig5"} {
		base := Config{N: 1500, Trials: 2, Seed: 11, EMFMaxIter: 40, Workers: 1}
		seq, err := Run(exp, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 8} {
			cfg := base
			cfg.Workers = workers
			par, err := Run(exp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s: tables differ between Workers=1 and Workers=%d", exp, workers)
			}
		}
	}
}

// TestRunRepeatable: same config twice ⇒ identical tables (no hidden
// shared state across runs — matrix caching and state pooling must be
// invisible).
func TestRunRepeatable(t *testing.T) {
	cfg := Config{N: 1500, Trials: 2, Seed: 3, EMFMaxIter: 40}
	a, err := Run("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fig5 tables differ between identical runs")
	}
}

func TestFig5Cell(t *testing.T) {
	v, err := Fig5Cell(Config{N: 1500, Trials: 1, Seed: 2, EMFMaxIter: 40}, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Fatalf("Fig5Cell |γ̂−γ| = %v outside [0,1]", v)
	}
}
