package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Scrape is a parsed exposition payload: the samples in document order
// plus the TYPE declared for each family. It is what the end-to-end
// scrape checks (daploadgen -scrape-metrics, cmd/metricscheck) consume.
type Scrape struct {
	Samples []Sample
	Types   map[string]string // family name -> counter|gauge|histogram|...
}

// Parse reads a Prometheus text exposition (version 0.0.4) payload. It
// is strict about the subset this package emits — a malformed line is an
// error, not a skip — so it doubles as a format validator.
func Parse(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	ln := 0
	for br.Scan() {
		ln++
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if !nameRE.MatchString(fields[2]) {
					return nil, fmt.Errorf("metrics: line %d: bad TYPE name %q", ln, fields[2])
				}
				sc.Types[fields[2]] = strings.TrimSpace(strings.TrimPrefix(line, "# TYPE "+fields[2]))
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", ln, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Metric name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:end]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, remaining, err := parseLabels(rest[1:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = remaining
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; this package never emits one, so
	// take the first field only.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a label set starting just after the opening '{' and
// returns the text remaining after the closing '}'. The scan tracks quote
// state, so '}' and ',' inside quoted values (route patterns like
// "/v1/tenants/{tenant}") do not terminate the set.
func parseLabels(body string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := strings.TrimSpace(body)
	for {
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("bad label pair in %q", body)
		}
		name := strings.TrimSpace(rest[:eq])
		if !nameRE.MatchString(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", name)
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(rest[i])
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", rest[i], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i == len(rest) {
			return nil, "", fmt.Errorf("unterminated label value for %q", name)
		}
		labels[name] = b.String()
		rest = strings.TrimSpace(rest[i+1:])
		if rest != "" && rest[0] == ',' {
			rest = strings.TrimSpace(rest[1:])
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Get returns the first sample with the given name whose labels include
// every pair in match (extra labels on the sample are ignored), and
// whether one was found.
func (sc *Scrape) Get(name string, match map[string]string) (Sample, bool) {
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}

// Value returns the value of the first matching sample, or 0 when absent
// (check Has when absence matters).
func (sc *Scrape) Value(name string, match map[string]string) float64 {
	s, _ := sc.Get(name, match)
	return s.Value
}

// Has reports whether any sample with the given family name exists. For
// histograms pass the family name; the _count series is checked too.
func (sc *Scrape) Has(name string) bool {
	for _, s := range sc.Samples {
		if s.Name == name || s.Name == name+"_count" {
			return true
		}
	}
	return false
}
