package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type header value for the exposition format
// WriteTo produces.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a HELP and TYPE comment per family
// followed by its samples, families in registration order, children in
// sorted label order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	cols := make([]collector, len(r.cols))
	copy(cols, r.cols)
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	var n int64
	wr := func(s string) error {
		m, err := bw.WriteString(s)
		n += int64(m)
		return err
	}
	for _, c := range cols {
		if err := wr("# HELP " + c.d.name + " " + escapeHelp(c.d.help) + "\n"); err != nil {
			return n, err
		}
		if err := wr("# TYPE " + c.d.name + " " + c.d.typ + "\n"); err != nil {
			return n, err
		}
		for _, s := range c.samples() {
			if err := wr(s.String() + "\n"); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// Sample is one exposition line: a metric name, an optional label set and
// a value. The parser returns them and collectors produce them.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// String renders the sample as an exposition line (without newline).
func (s Sample) String() string {
	return s.Name + labelString(s.Labels) + " " + formatFloat(s.Value)
}

// Label returns the value of label name, or "" when absent.
func (s Sample) Label(name string) string { return s.Labels[name] }

// labelString renders a label set as {k="v",...} with keys sorted, or ""
// when empty.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a value the way Prometheus clients do: integers
// without a decimal point, +Inf/-Inf/NaN spelled out, shortest otherwise.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15 && !math.Signbit(v):
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
