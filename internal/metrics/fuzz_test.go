package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzMetricsParse feeds arbitrary bytes to the strict exposition
// parser: it must never panic, and every sample it accepts must render
// (Sample.String, the same path WriteTo uses) back to a line the parser
// re-accepts as the identical sample — Parse ∘ render is the identity on
// the accepted subset.
func FuzzMetricsParse(f *testing.F) {
	reg := NewRegistry()
	reg.Counter("dap_fuzz_total", "seed counter").Add(3)
	reg.Gauge("dap_fuzz_level", "seed gauge").Set(-0.5)
	reg.Histogram("dap_fuzz_seconds", "seed histogram", []float64{0.1, 1}).Observe(0.25)
	reg.CounterVec("dap_fuzz_labeled_total", "seed vec", []string{"tenant"}).With("a").Inc()
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("# TYPE dap_x counter\ndap_x 1\n"))
	f.Add([]byte("dap_bad{label=\"unclosed} 1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		for _, s := range sc.Samples {
			re, err := Parse(strings.NewReader(s.String() + "\n"))
			if err != nil {
				t.Fatalf("accepted sample %q does not re-parse: %v", s.String(), err)
			}
			if len(re.Samples) != 1 {
				t.Fatalf("sample %q re-parsed to %d samples", s.String(), len(re.Samples))
			}
			r := re.Samples[0]
			if r.Name != s.Name || len(r.Labels) != len(s.Labels) {
				t.Fatalf("sample round-trip mismatch: %q -> %q", s.String(), r.String())
			}
			for k, v := range s.Labels {
				if r.Labels[k] != v {
					t.Fatalf("label %q round-trip mismatch: %q -> %q", k, v, r.Labels[k])
				}
			}
			if math.Float64bits(r.Value) != math.Float64bits(s.Value) &&
				!(math.IsNaN(r.Value) && math.IsNaN(s.Value)) {
				t.Fatalf("value round-trip mismatch: %v -> %v", s.Value, r.Value)
			}
		}
	})
}
