package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.SetBool(true)
	if g.Value() != 1 {
		t.Fatalf("SetBool(true) = %v, want 1", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "a histogram", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 16 {
		t.Fatalf("sum = %v, want 16", got)
	}
	// Cumulative buckets: le=1 -> 2 (0.5 and 1), le=2 -> 3, le=5 -> 4, +Inf -> 5.
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"1": 2, "2": 3, "5": 4, "+Inf": 5}
	for le, n := range want {
		if got := sc.Value("test_hist_bucket", map[string]string{"le": le}); got != n {
			t.Errorf("bucket le=%s = %v, want %v", le, got, n)
		}
	}
	if got := sc.Value("test_hist_count", nil); got != 5 {
		t.Errorf("_count = %v, want 5", got)
	}
}

func TestVecPreBoundChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_vec_total", "labeled counter", []string{"tenant"})
	a := cv.With("a")
	if cv.With("a") != a {
		t.Fatal("With should return the same child for the same labels")
	}
	a.Add(3)
	cv.With("b").Inc()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Value("test_vec_total", map[string]string{"tenant": "a"}); got != 3 {
		t.Fatalf("tenant=a = %v, want 3", got)
	}
	if got := sc.Value("test_vec_total", map[string]string{"tenant": "b"}); got != 1 {
		t.Fatalf("tenant=b = %v, want 1", got)
	}
	cv.Delete("b")
	buf.Reset()
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err = Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Get("test_vec_total", map[string]string{"tenant": "b"}); ok {
		t.Fatal("deleted child still exposed")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.Gauge("dup_total", "y")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid name")
		}
	}()
	r.Counter("bad-name", "x")
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "count").Add(7)
	r.Gauge("rt_gauge", "gauge with \"quotes\" and \\ backslash").Set(-2.25)
	hv := r.HistogramVec("rt_seconds", "latency", []string{"route"}, []float64{0.001, 0.01, 0.1})
	hv.With("/v1/report").Observe(0.005)
	gv := r.GaugeVec("rt_eps", "spend", []string{"tenant"})
	gv.With(`we"ird\x`).Set(0.5)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE rt_total counter",
		"# TYPE rt_seconds histogram",
		`rt_seconds_bucket{le="0.01",route="/v1/report"} 1`,
		"rt_seconds_count{route=\"/v1/report\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	sc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if sc.Types["rt_total"] != "counter" || sc.Types["rt_seconds"] != "histogram" {
		t.Fatalf("types = %v", sc.Types)
	}
	if got := sc.Value("rt_gauge", nil); got != -2.25 {
		t.Fatalf("rt_gauge = %v, want -2.25", got)
	}
	if got := sc.Value("rt_eps", map[string]string{"tenant": `we"ird\x`}); got != 0.5 {
		t.Fatalf("escaped label round-trip = %v, want 0.5", got)
	}
	if !sc.Has("rt_seconds") {
		t.Fatal("Has(rt_seconds) = false")
	}
}

func TestParseBracesInLabelValue(t *testing.T) {
	// Route patterns like /v1/tenants/{tenant} put '}' and '{' inside
	// quoted label values; the scan must not terminate the set there.
	line := `dap_http_requests_total{code="2xx",route="/v1/tenants/{tenant}/report"} 4` + "\n"
	sc, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := sc.Get("dap_http_requests_total", map[string]string{"route": "/v1/tenants/{tenant}/report"})
	if !ok || got.Value != 4 {
		t.Fatalf("sample = %+v, ok=%v", got, ok)
	}
}

func TestParseInf(t *testing.T) {
	sc, err := Parse(strings.NewReader("x_bucket{le=\"+Inf\"} 3\nx_sum +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sc.Value("x_sum", nil), 1) {
		t.Fatal("want +Inf sum")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		"bad{le=unquoted} 1\n",
		"bad{le=\"open} 1\n",
		"bad value\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

func TestConcurrentUpdatesAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "x")
	h := r.Histogram("cc_seconds", "x", []float64{0.01, 0.1, 1})
	cv := r.CounterVec("cc_vec_total", "x", []string{"t"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			child := cv.With(string(rune('a' + i%4)))
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				child.Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if _, err := r.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := Parse(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// TestHotPathAllocFree is the package-local version of the repo-wide
// alloc guard: updating a pre-bound handle must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("af_total", "x")
	g := r.Gauge("af_gauge", "x")
	h := r.Histogram("af_seconds", "x", []float64{0.001, 0.01, 0.1, 1})
	cv := r.CounterVec("af_vec_total", "x", []string{"t"})
	child := cv.With("a")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(0.004)
		child.Inc()
	})
	if allocs != 0 {
		t.Fatalf("hot-path update allocates %v allocs/op, want 0", allocs)
	}
}

func TestDefaultRegistryConstructors(t *testing.T) {
	// The Default registry is shared process-wide; use test-unique names.
	c := NewCounter("pkg_test_default_total", "x")
	c.Inc()
	var buf bytes.Buffer
	if _, err := Default().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkg_test_default_total 1") {
		t.Fatal("default registry missing package-level counter")
	}
}
