package metrics

import (
	"sort"
	"strings"
	"sync"
)

// vec is the shared child table behind the three labeled family types:
// a map from joined label values to a pre-bound child handle. With binds
// (and creates on first use) under a short lock; after that the caller
// holds a plain metric pointer and the hot path never touches the map.
type vec[T any] struct {
	mu       sync.RWMutex
	children map[string]*child[T]
	make     func() *T
}

type child[T any] struct {
	values []string
	m      *T
}

// vecKey joins label values with a byte that cannot appear in UTF-8 text
// boundaries ambiguously; it only needs to be injective, not printable.
func vecKey(values []string) string { return strings.Join(values, "\xff") }

// with returns the child for values, creating it on first use.
func (v *vec[T]) with(nlabels int, values []string) *T {
	if len(values) != nlabels {
		panic("metrics: wrong number of label values")
	}
	k := vecKey(values)
	v.mu.RLock()
	c, ok := v.children[k]
	v.mu.RUnlock()
	if ok {
		return c.m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[k]; ok {
		return c.m
	}
	vals := make([]string, len(values))
	copy(vals, values)
	c = &child[T]{values: vals, m: v.make()}
	v.children[k] = c
	return c.m
}

// delete removes the child for values, if any.
func (v *vec[T]) delete(values []string) {
	v.mu.Lock()
	delete(v.children, vecKey(values))
	v.mu.Unlock()
}

// snapshot returns the children sorted by label values for deterministic
// exposition.
func (v *vec[T]) snapshot() []*child[T] {
	v.mu.RLock()
	out := make([]*child[T], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return vecKey(out[i].values) < vecKey(out[j].values)
	})
	return out
}

// CounterVec is a family of counters partitioned by a fixed label set.
// Bind a child once with With and keep the returned *Counter — the hot
// path then increments it without any lookup or hashing.
type CounterVec struct {
	labels []string
	v      vec[Counter]
}

// With returns the counter bound to the given label values (one per
// label, in declaration order), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(len(cv.labels), values) }

// Delete drops the child bound to the given label values, removing its
// series from future scrapes (used when a tenant is deleted).
func (cv *CounterVec) Delete(values ...string) { cv.v.delete(values) }

// GaugeVec is a family of gauges partitioned by a fixed label set.
type GaugeVec struct {
	labels []string
	v      vec[Gauge]
}

// With returns the gauge bound to the given label values, creating it on
// first use.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(len(gv.labels), values) }

// Delete drops the child bound to the given label values.
func (gv *GaugeVec) Delete(values ...string) { gv.v.delete(values) }

// HistogramVec is a family of histograms partitioned by a fixed label
// set; all children share the same bucket bounds.
type HistogramVec struct {
	labels []string
	bounds []float64
	v      vec[Histogram]
}

// With returns the histogram bound to the given label values, creating
// it on first use.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(len(hv.labels), values) }

// Delete drops the child bound to the given label values.
func (hv *HistogramVec) Delete(values ...string) { hv.v.delete(values) }

// CounterVec registers a labeled counter family in r.
func (r *Registry) CounterVec(name, help string, labels []string) *CounterVec {
	cv := &CounterVec{labels: labels}
	cv.v.children = make(map[string]*child[Counter])
	cv.v.make = func() *Counter { return &Counter{} }
	r.register(desc{name: name, help: help, typ: "counter", labels: labels}, func() []Sample {
		cs := cv.v.snapshot()
		out := make([]Sample, 0, len(cs))
		for _, c := range cs {
			out = append(out, Sample{Name: name, Labels: labelMap(labels, c.values), Value: float64(c.m.Value())})
		}
		return out
	})
	return cv
}

// GaugeVec registers a labeled gauge family in r.
func (r *Registry) GaugeVec(name, help string, labels []string) *GaugeVec {
	gv := &GaugeVec{labels: labels}
	gv.v.children = make(map[string]*child[Gauge])
	gv.v.make = func() *Gauge { return &Gauge{} }
	r.register(desc{name: name, help: help, typ: "gauge", labels: labels}, func() []Sample {
		cs := gv.v.snapshot()
		out := make([]Sample, 0, len(cs))
		for _, c := range cs {
			out = append(out, Sample{Name: name, Labels: labelMap(labels, c.values), Value: c.m.Value()})
		}
		return out
	})
	return gv
}

// HistogramVec registers a labeled histogram family in r; every child
// uses the same strictly increasing bucket bounds.
func (r *Registry) HistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	newHistogram(bounds) // validate bounds once up front
	hv := &HistogramVec{labels: labels, bounds: bounds}
	hv.v.children = make(map[string]*child[Histogram])
	hv.v.make = func() *Histogram { return newHistogram(bounds) }
	r.register(desc{name: name, help: help, typ: "histogram", labels: labels}, func() []Sample {
		cs := hv.v.snapshot()
		var out []Sample
		for _, c := range cs {
			out = append(out, histogramSamples(name, labels, c.values, c.m)...)
		}
		return out
	})
	return hv
}

// NewCounterVec registers a labeled counter family in the Default
// registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return def.CounterVec(name, help, labels)
}

// NewGaugeVec registers a labeled gauge family in the Default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return def.GaugeVec(name, help, labels)
}

// NewHistogramVec registers a labeled histogram family in the Default
// registry.
func NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return def.HistogramVec(name, help, labels, bounds)
}
