// Package metrics is a zero-dependency metrics layer for the collector:
// atomic counters, gauges and fixed-bucket histograms, optionally grouped
// into labeled families, registered in a process-wide registry and
// exposed in the Prometheus text exposition format (version 0.0.4).
//
// The design rule is that the ingest hot path must stay allocation-free:
// every metric update is a handful of atomic operations on a pre-bound
// handle. Labeled families hash their label values exactly once, at bind
// time (Vec.With), and hand back a plain *Counter/*Gauge/*Histogram the
// hot path updates directly — recording a report is one atomic add, and
// observing a latency is three (bucket, count, sum). Scrape-time work
// (sorting children, formatting floats, computing derived gauges) happens
// in WriteTo, on the scraper's request, never on the ingest path.
//
// Metrics register into the package-wide Default registry at package
// init of the instrumented layer (transport, stream, store, emf), so one
// GET /metrics scrape covers the whole process. Registration panics on a
// duplicate or invalid name — both are programming errors caught by any
// test that links the package.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// nameRE validates metric and label names (the Prometheus charset).
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Float is a float64 updated with atomic operations — the building block
// histogram sums and gauges share.
type Float struct{ bits atomic.Uint64 }

// Add atomically adds delta.
func (f *Float) Add(delta float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Store atomically sets the value.
func (f *Float) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Load atomically reads the value.
func (f *Float) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing count. The zero value is ready to
// use; registered counters come from NewCounter or CounterVec.With.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//dapvet:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//dapvet:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v Float }

// Set replaces the value.
//
//dapvet:hotpath
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
//
//dapvet:hotpath
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// SetBool sets 1 for true, 0 for false — the conventional encoding of a
// flag gauge.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition time, per the Prometheus histogram contract) and tracks
// their running sum. Observe is lock-free: one atomic bucket increment,
// one count increment, one sum add.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     Float
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %v", bounds[i]))
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation. The linear bound scan is deliberate:
// bucket lists are short (≤ ~16) and the scan is branch-predictable,
// beating a binary search at this size — and it allocates nothing.
//
//dapvet:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// desc is the identity of a registered family.
type desc struct {
	name, help, typ string
	labels          []string
}

// collector is one registered family: a description plus a snapshot
// function yielding its current samples.
type collector struct {
	d       desc
	samples func() []Sample
}

// Registry holds registered metric families and renders them in
// registration order. Use Default for the process-wide registry the
// /metrics endpoint serves.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]struct{}
	cols   []collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// def is the process-wide registry.
var def = NewRegistry()

// Default returns the process-wide registry that package-level
// constructors register into and GET /metrics serves.
func Default() *Registry { return def }

// register adds a family, panicking on duplicate or invalid names.
func (r *Registry) register(d desc, samples func() []Sample) {
	if !nameRE.MatchString(d.name) {
		panic("metrics: invalid metric name " + d.name)
	}
	for _, l := range d.labels {
		if !nameRE.MatchString(l) {
			panic("metrics: invalid label name " + l + " on " + d.name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.name]; dup {
		panic("metrics: duplicate metric name " + d.name)
	}
	r.byName[d.name] = struct{}{}
	r.cols = append(r.cols, collector{d: d, samples: samples})
}

// Counter registers and returns a new counter in r.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(desc{name: name, help: help, typ: "counter"}, func() []Sample {
		return []Sample{{Name: name, Value: float64(c.Value())}}
	})
	return c
}

// Gauge registers and returns a new gauge in r.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(desc{name: name, help: help, typ: "gauge"}, func() []Sample {
		return []Sample{{Name: name, Value: g.Value()}}
	})
	return g
}

// Histogram registers and returns a new histogram in r with the given
// strictly increasing upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(desc{name: name, help: help, typ: "histogram"}, func() []Sample {
		return histogramSamples(name, nil, nil, h)
	})
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return def.Counter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return def.Gauge(name, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return def.Histogram(name, help, bounds)
}

// histogramSamples renders one histogram as its exposition series:
// cumulative le-buckets, _sum and _count. labelNames/labelValues carry
// the owning vec's binding, nil for unlabeled histograms.
func histogramSamples(name string, labelNames, labelValues []string, h *Histogram) []Sample {
	out := make([]Sample, 0, len(h.buckets)+2)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		out = append(out, Sample{
			Name:   name + "_bucket",
			Labels: labelMap(labelNames, labelValues, "le", le),
			Value:  float64(cum),
		})
	}
	out = append(out,
		Sample{Name: name + "_sum", Labels: labelMap(labelNames, labelValues), Value: h.Sum()},
		Sample{Name: name + "_count", Labels: labelMap(labelNames, labelValues), Value: float64(h.Count())},
	)
	return out
}

// labelMap builds a label map from parallel name/value slices plus
// optional extra pairs; nil when empty.
func labelMap(names, values []string, extra ...string) map[string]string {
	if len(names) == 0 && len(extra) == 0 {
		return nil
	}
	m := make(map[string]string, len(names)+len(extra)/2)
	for i, n := range names {
		m[n] = values[i]
	}
	for i := 0; i+1 < len(extra); i += 2 {
		m[extra[i]] = extra[i+1]
	}
	return m
}

// sortSamples orders samples deterministically: by name, then by the
// rendered label set. Exposition and tests both rely on stable output.
func sortSamples(ss []Sample) {
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].Name != ss[j].Name {
			return ss[i].Name < ss[j].Name
		}
		return labelString(ss[i].Labels) < labelString(ss[j].Labels)
	})
}
