// Package dataset provides the four numerical datasets and the categorical
// dataset used by the paper's evaluation (§VI-A, Fig. 4).
//
// Beta(2,5) and Beta(5,2) are exact reproductions of the paper's synthetic
// datasets. Taxi, Retirement and COVID-19 are offline substitutes for the
// paper's real-world data, calibrated to the published support, normalized
// mean and qualitative shape; see DESIGN.md §2 for the substitution
// rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Numeric is a numerical dataset normalized into [−1, 1].
type Numeric struct {
	Name string
	// Values are the normalized user values in [−1, 1].
	Values []float64
	// RawLo and RawHi record the raw support before normalization.
	RawLo, RawHi float64
}

// TrueMean returns the mean of the normalized values (the paper's O).
func (d *Numeric) TrueMean() float64 { return stats.Mean(d.Values) }

// N returns the number of users.
func (d *Numeric) N() int { return len(d.Values) }

// Rescaled01 returns the values linearly mapped from [−1,1] to [0,1], the
// input domain of the Square Wave mechanism.
func (d *Numeric) Rescaled01() []float64 {
	out := make([]float64, len(d.Values))
	for i, v := range d.Values {
		out[i] = (v + 1) / 2
	}
	return out
}

// Histogram returns the normalized frequency histogram over [−1,1] with
// the given number of bins (the Fig. 4 plots).
func (d *Numeric) Histogram(bins int) []float64 {
	return stats.Histogram(d.Values, -1, 1, bins).Normalized()
}

// normalize maps raw values from [lo, hi] into [−1, 1].
func normalize(raw []float64, lo, hi float64) []float64 {
	out := make([]float64, len(raw))
	span := hi - lo
	for i, v := range raw {
		out[i] = stats.Clamp(2*(v-lo)/span-1, -1, 1)
	}
	return out
}

// Beta25 draws n samples from Beta(2,5) on [0,1] and normalizes to [−1,1],
// matching the paper's left-skewed synthetic dataset (O ≈ −0.43).
func Beta25(r *rand.Rand, n int) *Numeric {
	return betaDataset(r, n, 2, 5, "Beta(2,5)")
}

// Beta52 draws n samples from Beta(5,2) on [0,1] and normalizes to [−1,1],
// matching the paper's right-skewed synthetic dataset (O ≈ +0.43).
func Beta52(r *rand.Rand, n int) *Numeric {
	return betaDataset(r, n, 5, 2, "Beta(5,2)")
}

func betaDataset(r *rand.Rand, n int, a, b float64, name string) *Numeric {
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = rng.Beta(r, a, b)
	}
	return &Numeric{Name: name, Values: normalize(raw, 0, 1), RawLo: 0, RawHi: 1}
}

// taxiSecondsMax is the largest pick-up second of day in the paper's Taxi
// dataset (24h − 60s).
const taxiSecondsMax = 86340

// Taxi synthesizes n pick-up times (seconds of day, integers in
// [0, 86340]) with a realistic multimodal daily profile — a small
// night-hours base, morning and evening commute peaks and a broad midday
// plateau — calibrated so the normalized mean lands near the paper's
// O = 0.1190.
func Taxi(r *rand.Rand, n int) *Numeric {
	const h = 3600.0
	type peak struct{ w, mu, sigma float64 }
	// Mixture weights sum with the 0.12 uniform base to 1 and are calibrated
	// so the overall normalized mean lands near the paper's O = 0.1190
	// (raw mean ≈ 13.42h).
	peaks := []peak{
		{0.28, 7.8 * h, 1.3 * h},  // morning commute
		{0.30, 13.0 * h, 2.6 * h}, // midday plateau
		{0.20, 18.5 * h, 2.0 * h}, // evening peak
		{0.10, 22.0 * h, 1.4 * h}, // nightlife
	}
	raw := make([]float64, n)
	for i := range raw {
		u := r.Float64()
		var v float64
		switch {
		case u < 0.12:
			// Night/early-morning base load across the day.
			v = rng.Uniform(r, 0, taxiSecondsMax)
		default:
			u -= 0.12
			v = -1
			for _, p := range peaks {
				if u < p.w {
					v = rng.TruncNormal(r, p.mu, p.sigma, 0, taxiSecondsMax)
					break
				}
				u -= p.w
			}
			if v < 0 {
				v = rng.TruncNormal(r, 4.5*h, 2*h, 0, taxiSecondsMax)
			}
		}
		raw[i] = math.Round(stats.Clamp(v, 0, taxiSecondsMax))
	}
	return &Numeric{Name: "Taxi", Values: normalize(raw, 0, taxiSecondsMax), RawLo: 0, RawHi: taxiSecondsMax}
}

// Retirement synthesizes n total-compensation values in [10000, 60000]
// with a strong right skew (most employees near the lower end), calibrated
// so the normalized mean lands near the paper's O = −0.6240.
func Retirement(r *rand.Rand, n int) *Numeric {
	const lo, hi = 10000.0, 60000.0
	raw := make([]float64, n)
	for i := range raw {
		v := lo + rng.Gamma(r, 1.55)*6050
		for v > hi {
			v = lo + rng.Gamma(r, 1.55)*6050
		}
		raw[i] = v
	}
	return &Numeric{Name: "Retirement", Values: normalize(raw, lo, hi), RawLo: lo, RawHi: hi}
}

// ByName builds one of the four numerical datasets by its paper name.
func ByName(r *rand.Rand, name string, n int) (*Numeric, error) {
	switch name {
	case "Beta(2,5)", "beta25":
		return Beta25(r, n), nil
	case "Beta(5,2)", "beta52":
		return Beta52(r, n), nil
	case "Taxi", "taxi":
		return Taxi(r, n), nil
	case "Retirement", "retirement":
		return Retirement(r, n), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Names lists the four numerical dataset names in the paper's order.
func Names() []string {
	return []string{"Beta(2,5)", "Beta(5,2)", "Taxi", "Retirement"}
}
