package dataset

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestBetaDatasetsMeans(t *testing.T) {
	r := rng.New(1)
	const n = 100000
	b25 := Beta25(r, n)
	// Beta(2,5) mean 2/7 on [0,1] => 2·(2/7)−1 = −3/7 ≈ −0.4286 normalized.
	if got, want := b25.TrueMean(), -3.0/7.0; math.Abs(got-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean %v, want %v", got, want)
	}
	b52 := Beta52(r, n)
	if got, want := b52.TrueMean(), 3.0/7.0; math.Abs(got-want) > 0.01 {
		t.Fatalf("Beta(5,2) mean %v, want %v", got, want)
	}
}

func TestValuesNormalized(t *testing.T) {
	r := rng.New(2)
	for _, name := range Names() {
		d, err := ByName(r, name, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if d.N() != 20000 {
			t.Fatalf("%s: N = %d", name, d.N())
		}
		for _, v := range d.Values {
			if v < -1 || v > 1 {
				t.Fatalf("%s: value %v outside [-1,1]", name, v)
			}
		}
	}
}

func TestTaxiMeanNearPaper(t *testing.T) {
	r := rng.New(3)
	d := Taxi(r, 200000)
	// Paper O = 0.1190; our synthetic substitute is calibrated to land nearby.
	if got := d.TrueMean(); math.Abs(got-0.119) > 0.06 {
		t.Fatalf("Taxi mean %v, want near 0.119", got)
	}
}

func TestRetirementMeanNearPaper(t *testing.T) {
	r := rng.New(4)
	d := Retirement(r, 200000)
	// Paper O = −0.6240.
	if got := d.TrueMean(); math.Abs(got-(-0.624)) > 0.06 {
		t.Fatalf("Retirement mean %v, want near -0.624", got)
	}
}

func TestTaxiMultimodalShape(t *testing.T) {
	r := rng.New(5)
	d := Taxi(r, 100000)
	h := d.Histogram(24) // one bin per hour
	// Early-morning hours should carry less mass than the evening peak.
	early := h[3] // ~3-4am
	evening := h[19]
	if evening < 2*early {
		t.Fatalf("expected evening peak >> early morning: early=%v evening=%v", early, evening)
	}
}

func TestRetirementRightSkew(t *testing.T) {
	r := rng.New(6)
	d := Retirement(r, 100000)
	med := stats.Quantile(d.Values, 0.5)
	if !(med < d.TrueMean()+0.2) {
		t.Fatalf("expected right-skew (median %v vs mean %v)", med, d.TrueMean())
	}
	// Most of the mass is in the lower half of the support.
	h := d.Histogram(10)
	lowMass := h[0] + h[1] + h[2] + h[3] + h[4]
	if lowMass < 0.7 {
		t.Fatalf("lower-half mass %v, want > 0.7", lowMass)
	}
}

func TestRescaled01(t *testing.T) {
	r := rng.New(7)
	d := Beta25(r, 5000)
	vs := d.Rescaled01()
	for i, v := range vs {
		if v < 0 || v > 1 {
			t.Fatalf("Rescaled01 out of range: %v", v)
		}
		if math.Abs(v-(d.Values[i]+1)/2) > 1e-12 {
			t.Fatal("Rescaled01 mapping incorrect")
		}
	}
}

func TestHistogramNormalized(t *testing.T) {
	r := rng.New(8)
	d := Beta52(r, 10000)
	h := d.Histogram(32)
	if math.Abs(stats.Sum(h)-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", stats.Sum(h))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName(rng.New(1), "nope", 10); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestByNameAliases(t *testing.T) {
	r := rng.New(9)
	for _, alias := range []string{"beta25", "beta52", "taxi", "retirement"} {
		if _, err := ByName(r, alias, 100); err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Taxi(rng.New(42), 1000)
	b := Taxi(rng.New(42), 1000)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("dataset generation is not deterministic")
		}
	}
}

func TestCOVID19Shape(t *testing.T) {
	c := COVID19()
	if c.K() != 15 {
		t.Fatalf("K = %d, want 15", c.K())
	}
	if len(c.Labels) != 15 {
		t.Fatalf("labels = %d", len(c.Labels))
	}
	f := c.Freqs()
	if math.Abs(stats.Sum(f)-1) > 1e-9 {
		t.Fatalf("freqs sum to %v", stats.Sum(f))
	}
	// Mortality rises with age through the peak near group 9.
	if !(f[9] > f[5] && f[5] > f[1]) {
		t.Fatalf("expected increasing mortality profile, got %v", f)
	}
}

func TestCategoricalSample(t *testing.T) {
	r := rng.New(10)
	c := COVID19()
	recs := c.Sample(r, 200000)
	counts := make([]float64, c.K())
	for _, rec := range recs {
		if rec < 0 || rec >= c.K() {
			t.Fatalf("record out of range: %d", rec)
		}
		counts[rec]++
	}
	want := c.Freqs()
	got := stats.Normalize(counts)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 0.01 {
			t.Fatalf("cat %d: sampled %v, want %v", j, got[j], want[j])
		}
	}
}
