package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV serializes the dataset: a header row with metadata followed by
// one normalized value per row. The format round-trips through ReadCSV,
// letting expensive generated datasets (or externally prepared real data)
// be cached on disk and shared between experiment runs.
func (d *Numeric) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", d.Name,
		strconv.FormatFloat(d.RawLo, 'g', -1, 64),
		strconv.FormatFloat(d.RawHi, 'g', -1, 64)}); err != nil {
		return err
	}
	for _, v := range d.Values {
		if err := cw.Write([]string{strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserializes a dataset written by WriteCSV. Values are verified
// to lie in [−1, 1].
func ReadCSV(r io.Reader) (*Numeric, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != 4 || header[0] != "name" {
		return nil, errors.New("dataset: malformed header")
	}
	rawLo, err := strconv.ParseFloat(header[2], 64)
	if err != nil {
		return nil, fmt.Errorf("dataset: raw lower bound: %w", err)
	}
	rawHi, err := strconv.ParseFloat(header[3], 64)
	if err != nil {
		return nil, fmt.Errorf("dataset: raw upper bound: %w", err)
	}
	d := &Numeric{Name: header[1], RawLo: rawLo, RawHi: rawHi}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading values: %w", err)
		}
		if len(rec) != 1 {
			return nil, errors.New("dataset: malformed value row")
		}
		v, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: value %q: %w", rec[0], err)
		}
		if v < -1 || v > 1 {
			return nil, fmt.Errorf("dataset: value %g outside [-1,1]", v)
		}
		d.Values = append(d.Values, v)
	}
	if len(d.Values) == 0 {
		return nil, errors.New("dataset: no values")
	}
	return d, nil
}

// SaveFile writes the dataset to path.
func (d *Numeric) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Numeric, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
