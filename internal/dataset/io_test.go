package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestCSVRoundTrip(t *testing.T) {
	d := Beta25(rng.New(1), 500)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.RawLo != d.RawLo || got.RawHi != d.RawHi {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Values) != len(d.Values) {
		t.Fatalf("length %d vs %d", len(got.Values), len(d.Values))
	}
	for i := range d.Values {
		if got.Values[i] != d.Values[i] {
			t.Fatalf("value %d: %v vs %v", i, got.Values[i], d.Values[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := Taxi(rng.New(2), 300)
	path := filepath.Join(t.TempDir(), "taxi.csv")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 300 || got.Name != "Taxi" {
		t.Fatalf("loaded %+v", got)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x,y\n0.5\n",
		"bad rawlo":      "name,d,zzz,1\n0.5\n",
		"bad rawhi":      "name,d,0,zzz\n0.5\n",
		"bad value":      "name,d,0,1\nabc\n",
		"range value":    "name,d,0,1\n7\n",
		"no values":      "name,d,0,1\n",
		"malformed rows": "name,d,0,1\n0.5,0.6\n",
	}
	for label, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted %q", label, in)
		}
	}
}
