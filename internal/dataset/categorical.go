package dataset

import (
	"math/rand/v2"

	"repro/internal/stats"
)

// Categorical is a categorical dataset over K ordered categories.
type Categorical struct {
	Name   string
	Labels []string
	Counts []float64
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.Counts) }

// N returns the total record count.
func (c *Categorical) N() int { return int(stats.Sum(c.Counts)) }

// Freqs returns the normalized category frequencies.
func (c *Categorical) Freqs() []float64 { return stats.Normalize(c.Counts) }

// Sample draws n category records i.i.d. from the dataset's frequency
// distribution.
func (c *Categorical) Sample(r *rand.Rand, n int) []int {
	freqs := c.Freqs()
	cdf := make([]float64, len(freqs))
	acc := 0.0
	for i, f := range freqs {
		acc += f
		cdf[i] = acc
	}
	out := make([]int, n)
	for i := range out {
		u := r.Float64()
		j := 0
		for j < len(cdf)-1 && u > cdf[j] {
			j++
		}
		out[i] = j
	}
	return out
}

// COVID19 returns the categorical COVID-19 dataset: deaths for females by
// age group across 15 buckets (our offline substitute for the CDC table the
// paper uses; the monotone age-mortality profile is what the experiment
// exercises — poison is injected into specific age groups and the defense
// must recover the frequency histogram).
func COVID19() *Categorical {
	return &Categorical{
		Name: "COVID-19",
		Labels: []string{
			"0-4", "5-14", "15-24", "25-34", "35-44",
			"45-54", "55-64", "65-74", "75-84", "85+a",
			"85+b", "85+c", "85+d", "85+e", "85+f",
		},
		Counts: []float64{
			12, 6, 24, 78, 200,
			520, 1280, 2900, 5600, 7900,
			6800, 5200, 3600, 2200, 1100,
		},
	}
}
