package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/stream"
)

// durableServerSpec keeps warm start off so recovered estimates are a pure
// function of the window histograms (the bit-identity precondition).
func durableServerSpec() core.Spec {
	return core.Spec{
		Task: core.TaskMean, Eps: 1, Eps0: 0.25,
		Scheme: core.SchemeEMF.String(), EMFMaxIter: 40,
		Serve: &core.ServeSpec{Buckets: 16, Shards: 4, Window: "tumbling", Span: 2},
	}
}

// newDurableServer boots a durable collector over dir (through flaky when
// given) and serves it over httptest.
func newDurableServer(t *testing.T, dir string, flaky *store.Flaky, opts ServerOptions) (*Server, *store.Store, *Client) {
	t.Helper()
	sopts := store.Options{Sync: store.SyncOS}
	if flaky != nil {
		sopts.FS = flaky
	}
	st, err := store.Open(dir, sopts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	srv, err := NewServerSpecOpts(durableServerSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, st, NewClient(ts.URL, ts.Client())
}

// feedReports joins n users and uploads fixed (deterministic) values.
func feedReports(t *testing.T, c *Client, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		j, err := c.Join(ctx)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, j.Group.Reports)
		for k := range vals {
			vals[k] = 0.1 * float64(i%7)
		}
		if err := c.Report(ctx, j.User, j.Group.Index, vals); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableServerCrashRestart is the transport-level kill-and-restart
// test: reports land over HTTP, the process "dies" without any shutdown
// courtesy, and a fresh server over the same directory serves the exact
// same estimate the dead one had cached.
func TestDurableServerCrashRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv, st, c := newDurableServer(t, dir, nil, ServerOptions{})
	feedReports(t, c, 12)
	sealed, err := c.Rotate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	feedReports(t, c, 5) // live-epoch tail, recovered purely from WAL replay
	// Kill: no srv.Close, no st.Close — nothing beyond the acked appends.
	_ = srv
	_ = st

	srv2, _, c2 := newDurableServer(t, dir, nil, ServerOptions{})
	defer srv2.Close()
	got, err := c2.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Mean) != math.Float64bits(sealed.Mean) {
		t.Fatalf("recovered mean %v != pre-crash %v", got.Mean, sealed.Mean)
	}
	for i := range sealed.GroupMeans {
		if math.Float64bits(got.GroupMeans[i]) != math.Float64bits(sealed.GroupMeans[i]) {
			t.Fatalf("group %d mean diverged: %v vs %v", i, got.GroupMeans[i], sealed.GroupMeans[i])
		}
	}
	// The live tail survived too: rotating now seals those 5 reports.
	st2, err := c2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Users != 17 {
		t.Fatalf("recovered users = %d, want 17", st2.Users)
	}

	admin, err := c2.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if admin.Recovering || !admin.Durable || admin.Store == nil || admin.Recovery == nil {
		t.Fatalf("admin status incomplete: %+v", admin)
	}
	if !admin.Store.Healthy {
		t.Fatalf("store unhealthy after recovery: %+v", admin.Store)
	}
	if admin.Recovery.SpendAfter < admin.Recovery.SpendBefore {
		t.Fatalf("spend decreased across crash: %v -> %v",
			admin.Recovery.SpendBefore, admin.Recovery.SpendAfter)
	}
	if admin.Recovery.SpendAfter <= 0 {
		t.Fatalf("no spend recovered: %+v", admin.Recovery)
	}
}

// slowFS delays Load's directory scan until released, holding a durable
// server in its recovering state long enough to observe the 503 gate.
type slowFS struct {
	store.FS
	gate <-chan struct{}
}

func (s slowFS) ReadDir(dir string) ([]string, error) {
	<-s.gate
	return s.FS.ReadDir(dir)
}

// TestAsyncRecoverGate asserts the boot-recovery gate: with AsyncRecover
// every endpoint answers 503 + Retry-After while recovery runs — except
// the admin status, which reports recovering=true — and the gate drops
// once the registry is installed.
func TestAsyncRecoverGate(t *testing.T) {
	gate := make(chan struct{})
	st, err := store.Open(t.TempDir(), store.Options{
		Sync: store.SyncOS,
		FS:   slowFS{FS: store.OS{}, gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerSpecOpts(durableServerSpec(), ServerOptions{Store: st, AsyncRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	resp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status during recovery = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("recovering 503 missing Retry-After")
	}
	admin, err := c.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !admin.Recovering {
		t.Fatal("admin status should report recovering")
	}

	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Status(ctx); err != nil {
		t.Fatalf("status after recovery: %v", err)
	}
}

// TestStoreDownDegradedMode asserts the degraded-store contract: when the
// WAL cannot be written the collector refuses writes with 503 (and refunds
// the charge) but keeps serving reads from the last good epoch; healing
// the filesystem restores write service without a restart.
func TestStoreDownDegradedMode(t *testing.T) {
	flaky := store.NewFlaky(store.OS{})
	srv, _, c := newDurableServer(t, t.TempDir(), flaky, ServerOptions{})
	defer srv.Close()
	ctx := context.Background()

	feedReports(t, c, 9)
	sealed, err := c.Rotate(ctx)
	if err != nil {
		t.Fatal(err)
	}

	j, err := c.Join(ctx) // joins are best-effort logged, still served
	if err != nil {
		t.Fatal(err)
	}
	flaky.FailWrites(1, false, true) // persistent write failure

	vals := make([]float64, j.Group.Reports)
	err = c.Report(ctx, j.User, j.Group.Index, vals)
	if err == nil || !strings.Contains(err.Error(), "store") {
		t.Fatalf("report with store down: %v, want store-down 503", err)
	}
	if _, err := c.Rotate(ctx); err == nil {
		t.Fatal("rotate with store down should fail")
	}
	got, err := c.Estimate(ctx)
	if err != nil {
		t.Fatalf("read during store outage: %v", err)
	}
	if math.Float64bits(got.Mean) != math.Float64bits(sealed.Mean) {
		t.Fatalf("degraded read diverged: %v vs %v", got.Mean, sealed.Mean)
	}
	admin, err := c.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if admin.Store == nil || admin.Store.Healthy {
		t.Fatalf("admin should report unhealthy store: %+v", admin.Store)
	}

	flaky.Heal()
	if err := c.Report(ctx, j.User, j.Group.Index, vals); err != nil {
		t.Fatalf("report after heal: %v", err)
	}
}

// TestIngestBodyLimit asserts oversized ingest bodies fail fast with 413.
func TestIngestBodyLimit(t *testing.T) {
	srv, err := NewServerOpts(mustConfig(t), ServerOptions{MaxIngestBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := IngestRequest{}
	for i := 0; i < 200; i++ {
		big.Reports = append(big.Reports, ReportRequest{User: fmt.Sprintf("user-%d", i), Group: 0, Values: []float64{0.5}})
	}
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(big); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d, want 413", resp.StatusCode)
	}

	// A small request on the same server still works.
	c := NewClient(ts.URL, ts.Client())
	j, err := c.Join(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, j.Group.Reports)
	if err := c.Report(context.Background(), j.User, j.Group.Index, vals); err != nil {
		t.Fatal(err)
	}
}

func mustConfig(t *testing.T) stream.Config {
	t.Helper()
	cfg, err := stream.ConfigFromSpec(durableServerSpec())
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestClientRetry asserts the retry loop: 5xx responses and their
// Retry-After are honoured, request bodies rewind across attempts, the
// retry counter advances, and 4xx rejections never retry.
func TestClientRetry(t *testing.T) {
	var calls atomic.Int64
	var lastBody atomic.Pointer[string]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		s := buf.String()
		lastBody.Store(&s)
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"accepted":1}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client())
	c.SetRetry(3, time.Second)
	var out ReportResponse
	if err := c.post(context.Background(), "/echo", ReportRequest{User: "u1"}, &out); err != nil {
		t.Fatalf("retried post: %v", err)
	}
	if out.Accepted != 1 {
		t.Fatalf("accepted = %d", out.Accepted)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
	if b := lastBody.Load(); b == nil || !strings.Contains(*b, "u1") {
		t.Fatalf("final attempt body lost: %v", lastBody.Load())
	}
}

func TestClientNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"nope"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client())
	c.SetRetry(5, time.Second)
	if err := c.get(context.Background(), "/x", nil); err == nil {
		t.Fatal("4xx should surface as error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 4xx)", got)
	}
	if got := c.Retries(); got != 0 {
		t.Fatalf("Retries() = %d, want 0", got)
	}
}

// TestClientRetryGivesUp asserts the attempt budget is finite and the last
// error surfaces.
func TestClientRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client())
	c.SetRetry(2, time.Second)
	err := c.get(context.Background(), "/x", nil)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want terminal 503 error, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestBackoffDeepAttemptsClamped: the exponential shift overflows
// time.Duration past attempt ~37, and a huge server Retry-After can
// overflow the seconds multiply; both must clamp to retryMaxWait instead
// of panicking on a non-positive jitter bound.
func TestBackoffDeepAttemptsClamped(t *testing.T) {
	c := NewClient("http://unused", nil)
	c.SetRetry(1, 10*time.Millisecond)
	ctx := context.Background()
	for _, attempt := range []int{0, 1, 10, 37, 38, 40, 63, 64, 100, 1 << 20} {
		start := time.Now()
		if !c.backoff(ctx, attempt, "") {
			t.Fatalf("backoff(attempt=%d) aborted without ctx cancellation", attempt)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("backoff(attempt=%d) slept %v, want ≈ retryMaxWait", attempt, d)
		}
	}
	// 1e10 seconds overflows time.Duration when multiplied out.
	if !c.backoff(ctx, 0, "10000000000") {
		t.Fatal("backoff with huge Retry-After aborted without ctx cancellation")
	}
}
