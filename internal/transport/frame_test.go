package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"maps"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/wirebin"
)

// frameWorkload builds one deterministic report stream: honest
// PM-perturbed values for round-robin groups, the same generated ids the
// load generator uses. Every call returns the identical stream, so the
// same entries can travel each wire.
func frameWorkload(t *testing.T, groups []core.Group, n int) []wirebin.Entry {
	t.Helper()
	r := rng.New(42)
	entries := make([]wirebin.Entry, n)
	for i := range entries {
		g := groups[i%len(groups)]
		m, err := pm.New(g.Eps)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, g.Reports)
		for j := range vals {
			vals[j] = m.Perturb(r, 0.3)
		}
		entries[i] = wirebin.Entry{User: fmt.Sprintf("u%04d", i), Group: g.Index, Values: vals}
	}
	return entries
}

// snapshotBits renders an estimate snapshot's result as canonical JSON.
// Go's shortest-representation float marshaling is injective on finite
// float64 (including the -0 sign), so byte equality is bit equality.
func snapshotBits(t *testing.T, snap *stream.Snapshot) string {
	t.Helper()
	b, err := json.Marshal(snap.Result)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("reports=%v epoch=%d %s", snap.Reports, snap.Epoch, b)
}

// waitReports polls a tenant until its ingested report count reaches
// want — how tests on the best-effort UDP wire wait for delivery.
func waitReports(t *testing.T, tn *stream.Tenant, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := 0
		for _, n := range tn.Status().GroupReports {
			got += int(n)
		}
		if got >= want {
			if got > want {
				t.Fatalf("tenant %s ingested %d reports, want %d", tn.Name(), got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s stuck at %d/%d reports", tn.Name(), got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWireEquivalence drives the identical report stream through all
// three ingest wires — JSON over HTTP, binary frames over HTTP, binary
// frames over UDP — into three identically-specified tenants, and
// requires bit-identical epoch estimates and identical per-user budget
// ledgers. This is the acceptance gate that the binary fast path shares
// the engine semantics of the JSON path exactly.
func TestWireEquivalence(t *testing.T) {
	srv, c := newTestServer(t)
	lis, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	sp := core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.25, Scheme: "EMF*"}
	reg := srv.Registry()
	names := []string{"wire-json", "wire-bin", "wire-udp"}
	tenants := make(map[string]*stream.Tenant, len(names))
	for _, name := range names {
		tn, err := reg.CreateSpec(name, sp)
		if err != nil {
			t.Fatal(err)
		}
		tenants[name] = tn
	}
	entries := frameWorkload(t, tenants["wire-json"].Groups(), 300)
	total := 0
	for i := range entries {
		total += len(entries[i].Values)
	}
	const batch = 50
	ctx := context.Background()

	// JSON over HTTP, sequentially (bit-identity needs one apply order).
	jc := c.Tenant("wire-json")
	for lo := 0; lo < len(entries); lo += batch {
		reports := make([]ReportRequest, 0, batch)
		for _, e := range entries[lo:min(lo+batch, len(entries))] {
			reports = append(reports, ReportRequest{User: e.User, Group: e.Group, Values: e.Values})
		}
		out, err := jc.Ingest(ctx, reports)
		if err != nil || out.Rejected != 0 {
			t.Fatalf("json ingest: %v (rejected %d: %v)", err, out.Rejected, out.Errors)
		}
	}

	// The same frames over lossless HTTP, coalesced two frames per request
	// (the frame-stream wire the load generator uses).
	bc := c.Tenant("wire-bin")
	const coalesce = 2
	for lo, seq := 0, uint64(1); lo < len(entries); seq += coalesce {
		var batches [][]wirebin.Entry
		for range coalesce {
			if lo >= len(entries) {
				break
			}
			batches = append(batches, entries[lo:min(lo+batch, len(entries))])
			lo += batch
		}
		out, err := bc.IngestFrames(ctx, seq, batches)
		if err != nil || out.Rejected != 0 {
			t.Fatalf("binary ingest: %v (rejected %d: %v)", err, out.Rejected, out.Errors)
		}
		wantSeq := seq + uint64(len(batches)) - 1
		if out.Seq != wantSeq || out.Frames != len(batches) {
			t.Fatalf("stream ack seq=%d frames=%d, want seq=%d frames=%d",
				out.Seq, out.Frames, wantSeq, len(batches))
		}
	}

	// The same frames as UDP datagrams (loss-free loopback), waiting for
	// the asynchronous deliveries to land.
	uc, err := DialUDP(lis.Addr().String(), "wire-udp")
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	for lo := 0; lo < len(entries); lo += batch {
		if _, err := uc.Send(entries[lo:min(lo+batch, len(entries))]); err != nil {
			t.Fatal(err)
		}
	}
	waitReports(t, tenants["wire-udp"], total)

	// Seal one epoch everywhere and compare the estimates bit for bit.
	bits := make(map[string]string, len(names))
	for _, name := range names {
		snap, err := tenants[name].Rotate()
		if err != nil {
			t.Fatal(err)
		}
		bits[name] = snapshotBits(t, snap)
	}
	if bits["wire-bin"] != bits["wire-json"] {
		t.Fatalf("binary HTTP estimate differs from JSON:\n json %s\n bin  %s",
			bits["wire-json"], bits["wire-bin"])
	}
	if bits["wire-udp"] != bits["wire-json"] {
		t.Fatalf("UDP estimate differs from JSON:\n json %s\n udp  %s",
			bits["wire-json"], bits["wire-udp"])
	}

	// Identical accountant state: same users, same per-user spend.
	ledger := tenants["wire-json"].Accountant().Export()
	for _, name := range names[1:] {
		if got := tenants[name].Accountant().Export(); !maps.Equal(ledger, got) {
			t.Fatalf("%s budget ledger differs from JSON's:\n json %v\n %s %v",
				name, ledger, name, got)
		}
	}
}

// TestUDPLoss drops stamped frames on purpose: the receiver's gap
// accounting must count exactly the skipped frames, and the tenant must
// have ingested exactly the values of the frames that did arrive.
func TestUDPLoss(t *testing.T) {
	srv, _ := newTestServer(t)
	lis, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	sp := core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.25, Scheme: "EMF*"}
	tn, err := srv.Registry().CreateSpec("lossy", sp)
	if err != nil {
		t.Fatal(err)
	}
	entries := frameWorkload(t, tn.Groups(), 120)
	uc, err := DialUDP(lis.Addr().String(), "lossy")
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()

	// The metrics registry is process-global, so assert deltas.
	droppedBefore := metUDPDropped.Value()
	const batch = 20
	var skippedFrames uint64
	delivered := 0
	for lo, i := 0, 0; lo < len(entries); lo, i = lo+batch, i+1 {
		part := entries[lo:min(lo+batch, len(entries))]
		if i%3 == 1 {
			// Simulate a lost datagram: burn the sequence, send nothing.
			uc.Skip(1)
			skippedFrames++
			continue
		}
		if _, err := uc.Send(part); err != nil {
			t.Fatal(err)
		}
		for _, e := range part {
			delivered += len(e.Values)
		}
	}
	waitReports(t, tn, delivered)
	// The final arrived frame closes every gap, so the counter is exact
	// once delivery caught up (waitReports above saw the last frame).
	if d := metUDPDropped.Value() - droppedBefore; d != skippedFrames {
		t.Fatalf("dropped-frame counter advanced by %d, want %d", d, skippedFrames)
	}
}

// TestFrameHTTPRejects exercises the HTTP frame branch's failure paths:
// corrupt frames answer 400 without touching the engine, and a frame
// naming a different tenant than its route is rejected whole.
func TestFrameHTTPRejects(t *testing.T) {
	srv, c := newTestServer(t)
	ctx := context.Background()
	var enc wirebin.Encoder
	entries := []wirebin.Entry{{User: "u0", Group: 0, Values: []float64{0.5}}}

	// Tenant mismatch: frame says "other", route says "default".
	frame, err := enc.Encode("other", 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := postRawFrame(ctx, c, frame); err == nil {
		t.Fatal("mismatched frame tenant accepted")
	}

	// Corrupt frame: flip a body byte so the CRC fails.
	frame, err = enc.Encode("", 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0xff
	if err := postRawFrame(ctx, c, bad); err == nil {
		t.Fatal("corrupt frame accepted")
	}

	// A well-formed frame without a tenant lands on the route's tenant.
	out, err := c.IngestFrame(ctx, 7, entries)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 1 || out.Seq != 7 {
		t.Fatalf("frame ingest: %+v", out)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, n := range st.GroupReports {
		got += n
	}
	if got != 1 {
		t.Fatalf("%d reports landed after frame ingest, want 1", got)
	}
	_ = srv
}

// TestFrameStreamRejects exercises the frame-stream failure paths: a
// malformed length prefix or a corrupt frame anywhere in the stream
// rejects the whole request before any frame is applied.
func TestFrameStreamRejects(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	var enc wirebin.Encoder
	encode := func(seq uint64) []byte {
		frame, err := enc.Encode("", seq, []wirebin.Entry{{User: "u0", Group: 0, Values: []float64{0.5}}})
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), frame...)
	}
	reports := func() int {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, n := range st.GroupReports {
			got += n
		}
		return got
	}

	// A length prefix running past the body rejects the whole stream.
	frame := encode(1)
	body := binary.AppendUvarint(nil, uint64(len(frame)+99))
	body = append(body, frame...)
	if err := postRawStream(ctx, c, body); err == nil {
		t.Fatal("oversized length prefix accepted")
	}

	// A corrupt second frame rejects the stream before the valid first
	// frame is applied: all-or-nothing against line corruption.
	good, bad := encode(1), encode(2)
	bad[len(bad)/2] ^= 0xff
	body = binary.AppendUvarint(nil, uint64(len(good)))
	body = append(body, good...)
	body = binary.AppendUvarint(body, uint64(len(bad)))
	body = append(body, bad...)
	if err := postRawStream(ctx, c, body); err == nil {
		t.Fatal("stream with corrupt frame accepted")
	}
	if got := reports(); got != 0 {
		t.Fatalf("%d reports landed from rejected streams, want 0", got)
	}

	// The same two frames intact land both.
	out, err := c.IngestFrames(ctx, 1, [][]wirebin.Entry{
		{{User: "u0", Group: 0, Values: []float64{0.5}}},
		{{User: "u1", Group: 1, Values: []float64{-0.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 2 || out.Frames != 2 || out.Seq != 2 {
		t.Fatalf("stream ingest: %+v", out)
	}
	if got := reports(); got != 2 {
		t.Fatalf("%d reports landed after stream ingest, want 2", got)
	}
}

// postRawFrame posts pre-encoded frame bytes to the default ingest route,
// bypassing the client's encoder so tests can send broken frames.
func postRawFrame(ctx context.Context, c *Client, frame []byte) error {
	return postRaw(ctx, c, wirebin.ContentType, frame)
}

// postRawStream posts raw frame-stream body bytes (length-prefixed
// frames), bypassing the client's stream builder.
func postRawStream(ctx context.Context, c *Client, body []byte) error {
	return postRaw(ctx, c, wirebin.ContentTypeStream, body)
}

func postRaw(ctx context.Context, c *Client, contentType string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	var out IngestResponse
	return c.do(req, &out)
}
