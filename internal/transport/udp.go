package transport

import (
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wirebin"
)

// UDP-layer metric families. The listener is a single goroutine per
// socket, so plain counters suffice — no per-datagram label work.
var (
	metUDPDatagrams = metrics.NewCounter("dap_udp_datagrams_total",
		"UDP datagrams received on the binary ingest socket.")
	metUDPDropped = metrics.NewCounter("dap_udp_datagrams_dropped_total",
		"Datagrams inferred lost from gaps in per-sender frame sequences.")
	metUDPLastSeq = metrics.NewGauge("dap_udp_last_seq",
		"Highest frame sequence observed on the UDP socket (any sender).")
)

// udpReadBuffer is the kernel receive buffer requested for the ingest
// socket: bursts ride in the kernel queue instead of being dropped while
// the listener drains a batch into the engine.
const udpReadBuffer = 8 << 20

// maxUDPSources caps the per-sender sequence table; past it the table is
// reset rather than growing without bound under address spoofing. A reset
// forfeits gap detection for one frame per live sender, nothing more.
const maxUDPSources = 1 << 14

// A UDPListener ingests binary frames over UDP: one datagram is one
// frame, best-effort. Loss is observable, not recovered — senders stamp
// frames with an increasing sequence, the listener counts gaps per sender
// into dap_udp_datagrams_dropped_total. Frames address a tenant by name
// (empty = the default tenant) and feed Tenant.IngestBatch exactly like
// HTTP ingest, so durability and budget semantics are shared.
type UDPListener struct {
	s    *Server
	conn *net.UDPConn
	done chan struct{}
}

// ListenUDP opens the binary ingest socket on addr (e.g. ":9200" or
// "127.0.0.1:0") and starts its receive loop. The bound address is
// advertised on GET /v1/config as udp_addr. Close the listener before
// closing the server.
func (s *Server) ListenUDP(addr string) (*UDPListener, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	// Best effort: some kernels clamp this below the request.
	_ = conn.SetReadBuffer(udpReadBuffer)
	l := &UDPListener{s: s, conn: conn, done: make(chan struct{})}
	bound := conn.LocalAddr().String()
	s.udpAddr.Store(&bound)
	go l.serve()
	return l, nil
}

// Addr returns the bound socket address.
func (l *UDPListener) Addr() net.Addr { return l.conn.LocalAddr() }

// Close stops the receive loop and closes the socket.
func (l *UDPListener) Close() error {
	err := l.conn.Close()
	<-l.done
	return err
}

// serve is the receive loop: one goroutine owns the socket, the decoder
// and the per-sender sequence table, so the datagram path runs without
// locks or allocation (steady state) until the engine call.
func (l *UDPListener) serve() {
	defer close(l.done)
	var dec wirebin.Decoder
	buf := make([]byte, 64<<10)
	lastSeq := make(map[netip.AddrPort]uint64)
	for {
		n, src, err := l.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		metUDPDatagrams.Inc()
		start := time.Now()
		fr, err := dec.Decode(buf[:n])
		if err != nil {
			frameUDP.rejected.Inc()
			continue
		}
		frameUDP.decodeDur.Observe(time.Since(start).Seconds())
		if fr.Seq > 0 {
			if len(lastSeq) >= maxUDPSources {
				clear(lastSeq)
			}
			if last := lastSeq[src]; fr.Seq > last {
				if last > 0 {
					metUDPDropped.Add(fr.Seq - last - 1)
				}
				lastSeq[src] = fr.Seq
			}
			metUDPLastSeq.Set(float64(fr.Seq))
		}
		// The recovery gate applies to UDP exactly as to HTTP — but here
		// best-effort means the frame is simply lost (and counted).
		if l.s.recovering.Load() {
			frameUDP.rejected.Inc()
			continue
		}
		t := l.s.defP.Load()
		if fr.Tenant != "" {
			var ok bool
			if t, ok = l.s.regP.Load().Get(fr.Tenant); !ok {
				frameUDP.rejected.Inc()
				continue
			}
		}
		frameUDP.decoded.Inc()
		// Engine rejections (budget, validation, store-down) are dropped
		// reports on a best-effort wire; the per-tenant rejected counters
		// record them.
		_, _ = applyBatch(t, fr.Entries)
	}
}

// A UDPClient sends binary frames to a collector's UDP socket. Frames are
// stamped with an increasing sequence so the receiver can count losses.
// Not safe for concurrent use — give each sender goroutine its own client
// (each gets its own source port, hence its own gap accounting).
type UDPClient struct {
	conn   *net.UDPConn
	enc    wirebin.Encoder
	tenant string
	seq    atomic.Uint64
}

// DialUDP connects a frame sender to addr. tenant addresses a named
// tenant ("" = the collector's default tenant).
func DialUDP(addr, tenant string) (*UDPClient, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, err
	}
	if len(tenant) > wirebin.MaxTenantLen {
		conn.Close()
		return nil, wirebin.ErrFrameTooLarge
	}
	return &UDPClient{conn: conn, tenant: tenant}, nil
}

// Send encodes one frame and writes it as a single datagram, returning
// the stamped sequence. Frames above MaxDatagramBytes are refused —
// split the batch.
func (u *UDPClient) Send(entries []wirebin.Entry) (uint64, error) {
	seq := u.seq.Add(1)
	frame, err := u.enc.Encode(u.tenant, seq, entries)
	if err != nil {
		return 0, err
	}
	if len(frame) > wirebin.MaxDatagramBytes {
		return 0, wirebin.ErrFrameTooLarge
	}
	if _, err := u.conn.Write(frame); err != nil {
		return 0, err
	}
	return seq, nil
}

// Skip advances the sequence without sending, simulating n lost frames —
// the receiver's gap accounting counts them as dropped. Used by loss
// tests and loss-injection tooling.
func (u *UDPClient) Skip(n uint64) { u.seq.Add(n) }

// Close releases the socket.
func (u *UDPClient) Close() error { return u.conn.Close() }
