package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/wirebin"
)

// Client talks to a DAP collector service.
type Client struct {
	base string
	hc   *http.Client

	// Retry policy: transient failures (network errors and 5xx responses)
	// are retried up to retries times with exponential backoff plus jitter,
	// honouring Retry-After. Zero retries (the default) fails fast.
	retries      int
	retryMaxWait time.Duration
	retried      atomic.Int64
}

// NewClient creates a client for the collector at base URL (no trailing
// slash). A nil HTTP client selects http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// SetRetry configures transient-failure retries: up to n extra attempts
// per request, with exponential backoff plus jitter capped at maxWait
// (2s when non-positive). A server-sent Retry-After overrides the
// computed backoff. Only network errors and 5xx responses are retried —
// 4xx rejections are permanent. Call before sharing the client across
// goroutines.
func (c *Client) SetRetry(n int, maxWait time.Duration) {
	if n < 0 {
		n = 0
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	c.retries = n
	c.retryMaxWait = maxWait
}

// Retries reports how many retry attempts the client has performed since
// creation. Safe for concurrent use.
func (c *Client) Retries() int64 {
	return c.retried.Load()
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	var body bytes.Buffer
	if in != nil {
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	for attempt := 0; ; attempt++ {
		resp, err := c.hc.Do(req)
		if err != nil {
			if attempt < c.retries && c.rewind(req) && c.backoff(req.Context(), attempt, "") {
				continue
			}
			return err
		}
		if resp.StatusCode >= 500 && attempt < c.retries && c.rewind(req) {
			after := resp.Header.Get("Retry-After")
			resp.Body.Close()
			if c.backoff(req.Context(), attempt, after) {
				continue
			}
			return fmt.Errorf("transport: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			var e ErrorResponse
			if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
				return fmt.Errorf("transport: %s %s: %s", req.Method, req.URL.Path, e.Error)
			}
			return fmt.Errorf("transport: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
}

// rewind resets the request body for a retry. GET and other body-less
// requests always rewind; bodied requests need GetBody (set automatically
// by net/http for the *bytes.Buffer bodies post builds).
func (c *Client) rewind(req *http.Request) bool {
	if req.Body == nil {
		return true
	}
	if req.GetBody == nil {
		return false
	}
	body, err := req.GetBody()
	if err != nil {
		return false
	}
	req.Body = body
	return true
}

// backoff sleeps before retry attempt+1: a server-sent Retry-After wins,
// otherwise exponential backoff from 50ms with up to 50% jitter, capped
// at retryMaxWait. It returns false when the context is done.
func (c *Client) backoff(ctx context.Context, attempt int, retryAfter string) bool {
	wait := 50 * time.Millisecond
	if attempt >= 37 {
		// 50ms << 37 overflows time.Duration; anything this deep is past
		// every sane cap anyway.
		wait = c.retryMaxWait
	} else {
		wait <<= uint(attempt)
	}
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	// Clamp before computing jitter: a shifted or server-sent wait beyond
	// the cap (or one that overflowed negative) must not reach Int64N,
	// which panics on non-positive arguments.
	if wait <= 0 || wait > c.retryMaxWait {
		wait = c.retryMaxWait
	}
	wait += time.Duration(rand.Int64N(int64(wait)/2 + 1))
	if wait > c.retryMaxWait {
		wait = c.retryMaxWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		c.retried.Add(1)
		metClientRetries.Inc()
		return true
	}
}

// Config fetches the protocol configuration.
func (c *Client) Config(ctx context.Context) (*ConfigResponse, error) {
	var out ConfigResponse
	if err := c.get(ctx, "/v1/config", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Join registers and returns the caller's group assignment.
func (c *Client) Join(ctx context.Context) (*JoinResponse, error) {
	var out JoinResponse
	if err := c.post(ctx, "/v1/join", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report uploads already-perturbed values for a group.
func (c *Client) Report(ctx context.Context, user string, group int, values []float64) error {
	var out ReportResponse
	return c.post(ctx, "/v1/report", ReportRequest{User: user, Group: group, Values: values}, &out)
}

// Status fetches collection progress.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	var out StatusResponse
	if err := c.get(ctx, "/v1/status", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Estimate asks the collector to run the DAP pipeline.
func (c *Client) Estimate(ctx context.Context) (*EstimateResponse, error) {
	var out EstimateResponse
	if err := c.get(ctx, "/v1/estimate", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminStatus fetches the collector's operational health: recovery state,
// store health and last-snapshot age. It is served even while the
// collector is recovering. AdminStatus never retries — it is the endpoint
// used to decide whether retrying elsewhere makes sense.
func (c *Client) AdminStatus(ctx context.Context) (*AdminStatusResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/admin/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: GET /v1/admin/status: HTTP %d", resp.StatusCode)
	}
	var out AdminStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rotate asks the collector to seal the current epoch and re-estimate the
// window.
func (c *Client) Rotate(ctx context.Context) (*EstimateResponse, error) {
	var out EstimateResponse
	if err := c.post(ctx, "/v1/rotate", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ingest uploads many reports in one round-trip.
func (c *Client) Ingest(ctx context.Context, reports []ReportRequest) (*IngestResponse, error) {
	var out IngestResponse
	if err := c.post(ctx, "/v1/ingest", IngestRequest{Reports: reports}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// frameEncoders pools the binary encoders behind IngestFrame so
// concurrent senders on one client reuse buffers without contention.
var frameEncoders = sync.Pool{New: func() any { return new(wirebin.Encoder) }}

// postFrame encodes entries as one binary frame and POSTs it to an
// ingest path with the frame media type — the lossless binary wire.
func (c *Client) postFrame(ctx context.Context, path string, seq uint64, entries []wirebin.Entry) (*IngestResponse, error) {
	enc := frameEncoders.Get().(*wirebin.Encoder)
	defer frameEncoders.Put(enc)
	// The tenant travels in the URL, as on the JSON wire; the frame's
	// tenant field stays empty.
	frame, err := enc.Encode("", seq, entries)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wirebin.ContentType)
	var out IngestResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestFrame uploads many reports as one binary frame — the same batch
// semantics as Ingest at a fraction of the serialization cost. seq is
// echoed back in the response (0 = unsequenced).
func (c *Client) IngestFrame(ctx context.Context, seq uint64, entries []wirebin.Entry) (*IngestResponse, error) {
	return c.postFrame(ctx, "/v1/ingest", seq, entries)
}

// streamBufs pools the frame-stream body builders behind IngestFrames.
var streamBufs = sync.Pool{New: func() any { return new([]byte) }}

// postFrameStream encodes each batch as its own frame (stamped seqBase,
// seqBase+1, …) and POSTs them length-prefixed in one request body with
// the frame-stream media type — one HTTP round trip for many frames.
func (c *Client) postFrameStream(ctx context.Context, path string, seqBase uint64, batches [][]wirebin.Entry) (*IngestResponse, error) {
	enc := frameEncoders.Get().(*wirebin.Encoder)
	defer frameEncoders.Put(enc)
	bp := streamBufs.Get().(*[]byte)
	defer streamBufs.Put(bp)
	body := (*bp)[:0]
	for i, entries := range batches {
		frame, err := enc.Encode("", seqBase+uint64(i), entries)
		if err != nil {
			return nil, err
		}
		body = binary.AppendUvarint(body, uint64(len(frame)))
		body = append(body, frame...)
	}
	*bp = body
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wirebin.ContentTypeStream)
	var out IngestResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestFrames uploads several frame batches in one request (the frame
// stream wire): batch i is stamped sequence seqBase+i, and the response
// accumulates accepted/rejected across all of them, acking the last
// applied frame's sequence.
func (c *Client) IngestFrames(ctx context.Context, seqBase uint64, batches [][]wirebin.Entry) (*IngestResponse, error) {
	return c.postFrameStream(ctx, "/v1/ingest", seqBase, batches)
}

// PushDelta uploads one sealed epoch delta frame (wirebin.EncodeDelta)
// to a coordinator's merge plane. Safe to retry: a re-sent frame is
// acknowledged as a duplicate (epoch still open) or a late straggler
// (already published) without changing the merge state.
func (c *Client) PushDelta(ctx context.Context, frame []byte) (*MergeResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/merge", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wirebin.DeltaContentType)
	var out MergeResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MergeEstimate fetches a coordinator's merged estimate for a tenant
// (empty = the default tenant).
func (c *Client) MergeEstimate(ctx context.Context, tenant string) (*EstimateResponse, error) {
	path := "/v1/merge/estimate"
	if tenant != "" {
		path += "/" + tenant
	}
	var out EstimateResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateTenant registers a new tenant.
func (c *Client) CreateTenant(ctx context.Context, req TenantRequest) (*TenantStatusResponse, error) {
	var out TenantStatusResponse
	if err := c.post(ctx, "/v1/tenants", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateTenantSpec registers a new tenant from a task spec — the same
// JSON that drives batch estimation and the CLIs.
func (c *Client) CreateTenantSpec(ctx context.Context, name string, sp core.Spec) (*TenantStatusResponse, error) {
	return c.CreateTenant(ctx, TenantRequest{Name: name, Spec: &sp})
}

// Tenants lists all hosted tenants.
func (c *Client) Tenants(ctx context.Context) (*TenantListResponse, error) {
	var out TenantListResponse
	if err := c.get(ctx, "/v1/tenants", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteTenant unregisters a tenant.
func (c *Client) DeleteTenant(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/tenants/"+name, nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Tenant returns a client addressing the named tenant's routes. The
// default tenant is reachable both ways: c and c.Tenant("default") hit the
// same engine state.
func (c *Client) Tenant(name string) *TenantClient {
	return &TenantClient{c: c, prefix: "/v1/tenants/" + name}
}

// TenantClient scopes the wire API to one tenant.
type TenantClient struct {
	c      *Client
	prefix string
}

// Config fetches the tenant's configuration.
func (tc *TenantClient) Config(ctx context.Context) (*ConfigResponse, error) {
	var out ConfigResponse
	if err := tc.c.get(ctx, tc.prefix+"/config", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Join registers a user with the tenant.
func (tc *TenantClient) Join(ctx context.Context) (*JoinResponse, error) {
	var out JoinResponse
	if err := tc.c.post(ctx, tc.prefix+"/join", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report uploads already-perturbed values for a group.
func (tc *TenantClient) Report(ctx context.Context, user string, group int, values []float64) error {
	var out ReportResponse
	return tc.c.post(ctx, tc.prefix+"/report", ReportRequest{User: user, Group: group, Values: values}, &out)
}

// Ingest uploads many reports in one round-trip.
func (tc *TenantClient) Ingest(ctx context.Context, reports []ReportRequest) (*IngestResponse, error) {
	var out IngestResponse
	if err := tc.c.post(ctx, tc.prefix+"/ingest", IngestRequest{Reports: reports}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestFrame uploads many reports as one binary frame to the tenant's
// ingest route (see Client.IngestFrame).
func (tc *TenantClient) IngestFrame(ctx context.Context, seq uint64, entries []wirebin.Entry) (*IngestResponse, error) {
	return tc.c.postFrame(ctx, tc.prefix+"/ingest", seq, entries)
}

// IngestFrames uploads several frame batches in one request to the
// tenant's ingest route (see Client.IngestFrames).
func (tc *TenantClient) IngestFrames(ctx context.Context, seqBase uint64, batches [][]wirebin.Entry) (*IngestResponse, error) {
	return tc.c.postFrameStream(ctx, tc.prefix+"/ingest", seqBase, batches)
}

// Status fetches the tenant's collection progress.
func (tc *TenantClient) Status(ctx context.Context) (*StatusResponse, error) {
	var out StatusResponse
	if err := tc.c.get(ctx, tc.prefix+"/status", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Estimate fetches the tenant's window estimate. live selects the source:
// "" lets the server prefer the per-epoch cache, "1" forces a live
// estimate including the unsealed epoch, "0" demands the cache.
func (tc *TenantClient) Estimate(ctx context.Context, live string) (*EstimateResponse, error) {
	path := tc.prefix + "/estimate"
	if live != "" {
		path += "?live=" + live
	}
	var out EstimateResponse
	if err := tc.c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rotate seals the tenant's current epoch and re-estimates the window.
func (tc *TenantClient) Rotate(ctx context.Context) (*EstimateResponse, error) {
	var out EstimateResponse
	if err := tc.c.post(ctx, tc.prefix+"/rotate", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitValue performs a full honest-user round: join, perturb the value
// locally with the assigned group's budget (once per report slot), and
// upload. The raw value never leaves this function.
func (c *Client) SubmitValue(ctx context.Context, r *rand.Rand, value float64) (*JoinResponse, error) {
	join, err := c.Join(ctx)
	if err != nil {
		return nil, err
	}
	mech, err := pm.New(join.Group.Eps)
	if err != nil {
		return nil, err
	}
	values := make([]float64, join.Group.Reports)
	for i := range values {
		values[i] = mech.Perturb(r, value)
	}
	if err := c.Report(ctx, join.User, join.Group.Index, values); err != nil {
		return nil, err
	}
	return join, nil
}

// SubmitPoison performs a Byzantine round: join, then upload the given
// poison values directly (clamped to the report slot limit).
func (c *Client) SubmitPoison(ctx context.Context, values []float64) (*JoinResponse, error) {
	join, err := c.Join(ctx)
	if err != nil {
		return nil, err
	}
	if len(values) > join.Group.Reports {
		values = values[:join.Group.Reports]
	}
	if err := c.Report(ctx, join.User, join.Group.Index, values); err != nil {
		return nil, err
	}
	return join, nil
}
