package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"

	"repro/internal/ldp/pm"
)

// Client talks to a DAP collector service.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the collector at base URL (no trailing
// slash). A nil HTTP client selects http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	var body bytes.Buffer
	if in != nil {
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("transport: %s %s: %s", req.Method, req.URL.Path, e.Error)
		}
		return fmt.Errorf("transport: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Config fetches the protocol configuration.
func (c *Client) Config(ctx context.Context) (*ConfigResponse, error) {
	var out ConfigResponse
	if err := c.get(ctx, "/v1/config", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Join registers and returns the caller's group assignment.
func (c *Client) Join(ctx context.Context) (*JoinResponse, error) {
	var out JoinResponse
	if err := c.post(ctx, "/v1/join", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report uploads already-perturbed values for a group.
func (c *Client) Report(ctx context.Context, user string, group int, values []float64) error {
	var out ReportResponse
	return c.post(ctx, "/v1/report", ReportRequest{User: user, Group: group, Values: values}, &out)
}

// Status fetches collection progress.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	var out StatusResponse
	if err := c.get(ctx, "/v1/status", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Estimate asks the collector to run the DAP pipeline.
func (c *Client) Estimate(ctx context.Context) (*EstimateResponse, error) {
	var out EstimateResponse
	if err := c.get(ctx, "/v1/estimate", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitValue performs a full honest-user round: join, perturb the value
// locally with the assigned group's budget (once per report slot), and
// upload. The raw value never leaves this function.
func (c *Client) SubmitValue(ctx context.Context, r *rand.Rand, value float64) (*JoinResponse, error) {
	join, err := c.Join(ctx)
	if err != nil {
		return nil, err
	}
	mech, err := pm.New(join.Group.Eps)
	if err != nil {
		return nil, err
	}
	values := make([]float64, join.Group.Reports)
	for i := range values {
		values[i] = mech.Perturb(r, value)
	}
	if err := c.Report(ctx, join.User, join.Group.Index, values); err != nil {
		return nil, err
	}
	return join, nil
}

// SubmitPoison performs a Byzantine round: join, then upload the given
// poison values directly (clamped to the report slot limit).
func (c *Client) SubmitPoison(ctx context.Context, values []float64) (*JoinResponse, error) {
	join, err := c.Join(ctx)
	if err != nil {
		return nil, err
	}
	if len(values) > join.Group.Reports {
		values = values[:join.Group.Reports]
	}
	if err := c.Report(ctx, join.User, join.Group.Index, values); err != nil {
		return nil, err
	}
	return join, nil
}
