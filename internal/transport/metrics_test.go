package transport

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// scrapeMetrics fetches and parses GET /metrics, asserting the payload
// is valid exposition with the right content type.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *metrics.Scrape {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	sc, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatalf("exposition failed to parse: %v", err)
	}
	return sc
}

// TestMetricsEndpointCoversAllLayers drives a durable collector through
// ingest, rotation and an error response, then asserts one scrape carries
// live series from every instrumented layer: transport, stream, emf,
// privacy and store.
func TestMetricsEndpointCoversAllLayers(t *testing.T) {
	srv, _, c := newDurableServer(t, t.TempDir(), nil, ServerOptions{})
	defer srv.Close()
	ctx := context.Background()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := scrapeMetrics(t, ts)
	ingBefore := before.Value("dap_stream_reports_ingested_total", map[string]string{"tenant": "default"})
	okBefore := before.Value("dap_http_requests_total", map[string]string{"route": "/v1/report", "code": "2xx"})

	feedReports(t, c, 8)
	if _, err := c.Rotate(ctx); err != nil {
		t.Fatal(err)
	}
	// One 4xx: unknown tenant.
	resp, err := ts.Client().Get(ts.URL + "/v1/tenants/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d, want 404", resp.StatusCode)
	}

	sc := scrapeMetrics(t, ts)
	// Transport: per-route counters moved, the 4xx registered, latency
	// histograms populated.
	if got := sc.Value("dap_http_requests_total", map[string]string{"route": "/v1/report", "code": "2xx"}); got-okBefore < 8 {
		t.Errorf("report route 2xx advanced by %v, want >= 8", got-okBefore)
	}
	if got := sc.Value("dap_http_requests_total", map[string]string{"route": "/v1/tenants/{tenant}", "code": "4xx"}); got < 1 {
		t.Errorf("4xx counter = %v, want >= 1", got)
	}
	if !sc.Has("dap_http_request_duration_seconds") || !sc.Has("dap_http_request_size_bytes") {
		t.Error("request latency/size histograms missing")
	}
	// Stream: every accepted value counted; reports arrive one value per
	// group report so the delta is at least the 8 sessions.
	if got := sc.Value("dap_stream_reports_ingested_total", map[string]string{"tenant": "default"}); got-ingBefore < 8 {
		t.Errorf("ingested counter advanced by %v, want >= 8", got-ingBefore)
	}
	if got := sc.Value("dap_stream_epoch_rotations_total", map[string]string{"tenant": "default"}); got < 1 {
		t.Errorf("rotations = %v, want >= 1", got)
	}
	if lag := sc.Value("dap_stream_epoch_lag_seconds", map[string]string{"tenant": "default"}); lag < 0 {
		t.Errorf("epoch lag = %v after a rotation, want >= 0", lag)
	}
	// EMF: the rotation estimated the window through the solver.
	if got := sc.Value("dap_emf_runs_total", nil); got < 1 {
		t.Errorf("emf runs = %v, want >= 1", got)
	}
	if got := sc.Value("dap_emf_iterations_total", nil); got < 1 {
		t.Errorf("emf iterations = %v, want >= 1", got)
	}
	// Privacy: budget gauges reflect the spend.
	if got := sc.Value("dap_privacy_budget_spent_eps", map[string]string{"tenant": "default"}); got <= 0 {
		t.Errorf("budget spent = %v, want > 0", got)
	}
	if got := sc.Value("dap_privacy_budget_cap_eps", map[string]string{"tenant": "default"}); got != 1 {
		t.Errorf("budget cap = %v, want 1", got)
	}
	if got := sc.Value("dap_privacy_reporters", map[string]string{"tenant": "default"}); got < 8 {
		t.Errorf("reporters = %v, want >= 8", got)
	}
	// Store: WAL appends and level gauges.
	if got := sc.Value("dap_wal_appends_total", nil); got < 1 {
		t.Errorf("wal appends = %v, want >= 1", got)
	}
	if got := sc.Value("dap_wal_segments", nil); got < 1 {
		t.Errorf("wal segments = %v, want >= 1", got)
	}
	if got := sc.Value("dap_store_degraded", nil); got != 0 {
		t.Errorf("degraded = %v on a healthy store, want 0", got)
	}
}

// TestMetricsScrapeWhileIngesting hammers /metrics concurrently with
// ingest traffic — the scrape path reads the same counters, vec tables
// and gauges the hot path writes, so this is the -race coverage for the
// whole registry.
func TestMetricsScrapeWhileIngesting(t *testing.T) {
	srv, err := NewServerOpts(mustConfig(t), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j, err := c.Join(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				vals := make([]float64, j.Group.Reports)
				if err := c.Report(ctx, j.User, j.Group.Index, vals); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			scrapeMetrics(t, ts)
		}
	}()
	wg.Wait()
}

// TestMetricsAgreeWithAdminDuringRecovery asserts the observability
// plane stays up behind the AsyncRecover 503 gate and that the
// dap_collector_recovering gauge tracks the admin JSON through the
// recovering -> serving transition.
func TestMetricsAgreeWithAdminDuringRecovery(t *testing.T) {
	gate := make(chan struct{})
	st, err := store.Open(t.TempDir(), store.Options{
		Sync: store.SyncOS,
		FS:   slowFS{FS: store.OS{}, gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerSpecOpts(durableServerSpec(), ServerOptions{Store: st, AsyncRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	sc := scrapeMetrics(t, ts) // must bypass the recovery gate
	admin, err := c.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !admin.Recovering {
		t.Fatal("admin should report recovering")
	}
	if got := sc.Value("dap_collector_recovering", nil); got != 1 {
		t.Fatalf("recovering gauge = %v while admin reports recovering, want 1", got)
	}

	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(time.Millisecond)
	}
	sc = scrapeMetrics(t, ts)
	admin, err = c.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if admin.Recovering {
		t.Fatal("admin still reports recovering")
	}
	if got := sc.Value("dap_collector_recovering", nil); got != 0 {
		t.Fatalf("recovering gauge = %v after recovery, want 0", got)
	}
	if got := sc.Value("dap_store_recovery_duration_seconds", nil); got <= 0 {
		t.Fatalf("recovery duration gauge = %v, want > 0", got)
	}
}

// TestMetricsAgreeWithAdminWhenDegraded asserts the degraded flag is
// told identically by both scrape sources while the store is down and
// after it heals.
func TestMetricsAgreeWithAdminWhenDegraded(t *testing.T) {
	flaky := store.NewFlaky(store.OS{})
	srv, _, c := newDurableServer(t, t.TempDir(), flaky, ServerOptions{})
	defer srv.Close()
	ctx := context.Background()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	feedReports(t, c, 4)
	j, err := c.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	flaky.FailWrites(1, false, true)
	vals := make([]float64, j.Group.Reports)
	if err := c.Report(ctx, j.User, j.Group.Index, vals); err == nil {
		t.Fatal("report with store down should fail")
	}

	sc := scrapeMetrics(t, ts)
	admin, err := c.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !admin.Degraded {
		t.Fatalf("admin should report degraded: %+v", admin)
	}
	if got := sc.Value("dap_store_degraded", nil); got != 1 {
		t.Fatalf("degraded gauge = %v while admin reports degraded, want 1", got)
	}
	if got := sc.Value("dap_wal_append_failures_total", nil); got < 1 {
		t.Fatalf("append failures = %v, want >= 1", got)
	}

	flaky.Heal()
	if err := c.Report(ctx, j.User, j.Group.Index, vals); err != nil {
		t.Fatalf("report after heal: %v", err)
	}
	sc = scrapeMetrics(t, ts)
	admin, err = c.AdminStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if admin.Degraded {
		t.Fatal("admin still reports degraded after heal")
	}
	if got := sc.Value("dap_store_degraded", nil); got != 0 {
		t.Fatalf("degraded gauge = %v after heal, want 0", got)
	}
}

// TestPprofMount asserts /debug/pprof is absent by default and served
// when ServerOptions.Pprof is set.
func TestPprofMount(t *testing.T) {
	for _, on := range []bool{false, true} {
		srv, err := NewServerOpts(mustConfig(t), ServerOptions{Pprof: on})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ts.Close()
		srv.Close()
		if on {
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
				t.Fatalf("pprof enabled: status %d, body %q", resp.StatusCode, body)
			}
		} else if resp.StatusCode == http.StatusOK {
			t.Fatal("pprof served without the option")
		}
	}
}
