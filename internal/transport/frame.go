package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/wirebin"
)

// Binary-frame metric families, shared by the HTTP frame branch and the
// UDP listener. Children are pre-bound per transport below, so the frame
// hot path increments plain handles — no label hashing per frame.
var (
	metFramesDecoded = metrics.NewCounterVec("dap_frames_decoded_total",
		"Binary ingest frames decoded and handed to the engine, by transport.", "transport")
	metFramesRejected = metrics.NewCounterVec("dap_frames_rejected_total",
		"Binary ingest frames rejected before reaching the engine (bad CRC, corrupt body, unknown tenant, recovery gate), by transport.", "transport")
	metFrameDecodeDur = metrics.NewHistogramVec("dap_frames_decode_seconds",
		"Binary frame decode latency by transport.",
		[]float64{0.000005, 0.00002, 0.0001, 0.0005, 0.002, 0.01, 0.05}, "transport")
)

// frameMetrics is one transport's pre-bound frame handles.
type frameMetrics struct {
	decoded   *metrics.Counter
	rejected  *metrics.Counter
	decodeDur *metrics.Histogram
}

func bindFrameMetrics(transport string) frameMetrics {
	return frameMetrics{
		decoded:   metFramesDecoded.With(transport),
		rejected:  metFramesRejected.With(transport),
		decodeDur: metFrameDecodeDur.With(transport),
	}
}

// Both transports' children exist from process start, so the families
// appear in scrapes (at zero) before the first frame arrives.
var (
	frameHTTP = bindFrameMetrics("http")
	frameUDP  = bindFrameMetrics("udp")
)

// frameCodec is a pooled decoder plus body read buffer and a frame-slice
// scratch for stream bodies. Pooling keeps the HTTP frame path
// allocation-free in the steady state: the decoder's arenas and intern
// tables warm up once per pooled instance.
type frameCodec struct {
	dec    wirebin.Decoder
	buf    []byte
	frames [][]byte
}

var frameCodecPool = sync.Pool{New: func() any { return new(frameCodec) }}

// readBody drains r into the codec's reused buffer.
func (fc *frameCodec) readBody(r io.Reader, sizeHint int64) ([]byte, error) {
	b := fc.buf[:0]
	if n := int(sizeHint); n > 0 && n <= wirebin.MaxFrameBytes && cap(b) < n {
		b = make([]byte, 0, n)
	}
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			fc.buf = b
			return b, nil
		}
		if err != nil {
			fc.buf = b
			return nil, err
		}
	}
}

// isFrameRequest reports whether the ingest request body is binary
// (a single frame or a frame stream) rather than JSON.
func isFrameRequest(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wirebin.ContentType)
}

// isFrameStream reports whether the body carries several length-prefixed
// frames rather than exactly one.
func isFrameStream(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wirebin.ContentTypeStream)
}

// handleIngestFrame is the binary branch of POST /v1/ingest: one frame
// per request body — or, with the stream content type, several
// length-prefixed frames — lossless (the response acks the last frame's
// sequence). A frame's tenant must be empty or match the route's tenant;
// the URL is authoritative, a mismatched frame is rejected whole.
func (s *Server) handleIngestFrame(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	fc := frameCodecPool.Get().(*frameCodec)
	defer frameCodecPool.Put(fc)
	body, err := fc.readBody(r.Body, r.ContentLength)
	if err != nil {
		frameHTTP.rejected.Inc()
		writeErr(w, decodeStatus(err), "reading frame: %v", err)
		return
	}
	frames := fc.frames[:0]
	if isFrameStream(r) {
		// Split and CRC-verify every frame before applying any: a request
		// corrupted in flight is rejected whole with no state touched.
		for rest := body; len(rest) > 0; {
			n, k := binary.Uvarint(rest)
			if k <= 0 || n == 0 || n > uint64(len(rest)-k) {
				frameHTTP.rejected.Inc()
				writeErr(w, http.StatusBadRequest, "malformed frame-stream length prefix")
				return
			}
			frames = append(frames, rest[k:k+int(n)])
			rest = rest[k+int(n):]
		}
		fc.frames = frames
		for _, raw := range frames {
			if err := wirebin.Verify(raw); err != nil {
				frameHTTP.rejected.Inc()
				status := http.StatusBadRequest
				if errors.Is(err, wirebin.ErrFrameTooLarge) {
					status = http.StatusRequestEntityTooLarge
				}
				writeErr(w, status, "%v", err)
				return
			}
		}
	} else {
		frames = append(frames, body)
	}
	if len(frames) == 0 {
		frameHTTP.rejected.Inc()
		writeErr(w, http.StatusBadRequest, "empty frame stream")
		return
	}
	var out IngestResponse
	for _, raw := range frames {
		start := time.Now()
		fr, err := fc.dec.Decode(raw)
		if err != nil {
			frameHTTP.rejected.Inc()
			if out.Frames > 0 {
				// CRC held (pre-verified) but the body is structurally
				// invalid — an encoder bug, not line noise. Earlier frames
				// are already applied (same per-entry semantics as JSON
				// ingest), so report rather than pretend to roll back.
				out.Errors = append(out.Errors, err.Error())
				break
			}
			status := http.StatusBadRequest
			if errors.Is(err, wirebin.ErrFrameTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			writeErr(w, status, "%v", err)
			return
		}
		frameHTTP.decodeDur.Observe(time.Since(start).Seconds())
		if fr.Tenant != "" && fr.Tenant != t.Name() {
			frameHTTP.rejected.Inc()
			if out.Frames > 0 {
				out.Errors = append(out.Errors,
					"frame tenant "+fr.Tenant+" does not match route tenant "+t.Name())
				break
			}
			writeErr(w, http.StatusBadRequest,
				"frame tenant %q does not match route tenant %q", fr.Tenant, t.Name())
			return
		}
		frameHTTP.decoded.Inc()
		res, err := applyBatch(t, fr.Entries)
		if err != nil {
			writeEngineErr(w, err)
			return
		}
		out.Accepted += res.Accepted
		out.Rejected += res.Rejected
		for _, e := range res.Errors {
			if len(out.Errors) >= maxIngestErrors {
				break
			}
			out.Errors = append(out.Errors, e)
		}
		out.Seq = fr.Seq
		out.Frames++
	}
	writeJSON(w, http.StatusOK, out)
}

// applyBatch hands one decoded batch to the engine — the shared tail of
// the JSON, binary-HTTP and UDP ingest paths, so WAL group-commit, budget
// charging and stripe-ordered apply are identical across wires. A dead
// store fails every staged entry and rolls the batch back; that comes
// back as an error (the whole batch is retryable), anything else is
// per-entry accept/reject.
func applyBatch(t *stream.Tenant, entries []stream.BatchEntry) (IngestResponse, error) {
	var out IngestResponse
	for i, err := range t.IngestBatch(entries) {
		if err != nil {
			if errors.Is(err, stream.ErrStoreDown) {
				return out, err
			}
			out.Rejected++
			if len(out.Errors) < maxIngestErrors {
				out.Errors = append(out.Errors, err.Error())
			}
			continue
		}
		out.Accepted += len(entries[i].Values)
	}
	return out, nil
}
