package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/stream"
)

// DefaultTenant is the tenant the original (tenant-less) wire API
// addresses.
const DefaultTenant = "default"

// maxIngestErrors caps the per-entry rejection reasons echoed back from a
// batched ingest.
const maxIngestErrors = 8

// Server is a multi-tenant DAP collector service on top of the streaming
// aggregation engine: reports land in sharded per-group histograms, epoch
// windows keep estimates fresh without rescanning reports, and one process
// hosts many concurrent aggregations.
type Server struct {
	reg *stream.Registry
	def *stream.Tenant
}

// NewServer builds a collector whose default tenant runs mean estimation
// with the given protocol parameters — the original single-collector
// construction, preserved for compatibility.
//
// Deprecated: use NewServerSpec with a task spec.
func NewServer(p core.Params) (*Server, error) {
	return NewServerSpec(core.Spec{
		Task: core.TaskMean, Eps: p.Eps, Eps0: p.Eps0, Scheme: p.Scheme.String(),
		Weights: p.WeightMode.String(),
		OPrime:  p.OPrime, AutoOPrime: p.AutoOPrime, GammaSup: p.GammaSup,
		SuppressFactor: p.SuppressFactor, EMFMaxIter: p.EMFMaxIter,
	})
}

// NewServerSpec builds a collector whose default tenant runs the given
// task spec (honouring its Serve section) — the one-call spec→service
// path used by cmd/dapcollect and cmd/daploadgen.
func NewServerSpec(sp core.Spec) (*Server, error) {
	cfg, err := stream.ConfigFromSpec(sp)
	if err != nil {
		return nil, err
	}
	return NewServerConfig(cfg)
}

// NewServerConfig builds a collector whose default tenant runs the given
// engine configuration (any task, epoch clock, shard and bucket layout).
func NewServerConfig(cfg stream.Config) (*Server, error) {
	reg := stream.NewRegistry()
	def, err := reg.Create(DefaultTenant, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{reg: reg, def: def}, nil
}

// Registry exposes the tenant registry (load generators and tests).
func (s *Server) Registry() *stream.Registry { return s.reg }

// Close stops every tenant's epoch clock.
func (s *Server) Close() { s.reg.Close() }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Original wire API, bound to the default tenant.
	mux.HandleFunc("GET /v1/config", s.tenantless(s.handleConfig))
	mux.HandleFunc("POST /v1/join", s.tenantless(s.handleJoin))
	mux.HandleFunc("POST /v1/report", s.tenantless(s.handleReport))
	mux.HandleFunc("POST /v1/ingest", s.tenantless(s.handleIngest))
	mux.HandleFunc("GET /v1/status", s.tenantless(s.handleStatus))
	mux.HandleFunc("GET /v1/estimate", s.tenantless(s.handleEstimate))
	mux.HandleFunc("POST /v1/rotate", s.tenantless(s.handleRotate))
	// Tenant CRUD.
	mux.HandleFunc("GET /v1/tenants", s.handleTenantList)
	mux.HandleFunc("POST /v1/tenants", s.handleTenantCreate)
	mux.HandleFunc("GET /v1/tenants/{tenant}", s.scoped(s.handleTenantStatus))
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleTenantDelete)
	// Per-tenant routes, mirroring the original API.
	mux.HandleFunc("GET /v1/tenants/{tenant}/config", s.scoped(s.handleConfig))
	mux.HandleFunc("POST /v1/tenants/{tenant}/join", s.scoped(s.handleJoin))
	mux.HandleFunc("POST /v1/tenants/{tenant}/report", s.scoped(s.handleReport))
	mux.HandleFunc("POST /v1/tenants/{tenant}/ingest", s.scoped(s.handleIngest))
	mux.HandleFunc("GET /v1/tenants/{tenant}/status", s.scoped(s.handleStatus))
	mux.HandleFunc("GET /v1/tenants/{tenant}/estimate", s.scoped(s.handleEstimate))
	mux.HandleFunc("POST /v1/tenants/{tenant}/rotate", s.scoped(s.handleRotate))
	return mux
}

// tenantless adapts a tenant-scoped handler to the original API.
func (s *Server) tenantless(h func(http.ResponseWriter, *http.Request, *stream.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(w, r, s.def) }
}

// scoped resolves {tenant} from the path.
func (s *Server) scoped(h func(http.ResponseWriter, *http.Request, *stream.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t, ok := s.reg.Get(name)
		if !ok {
			writeErr(w, http.StatusNotFound, "tenant %q not found", name)
			return
		}
		h(w, r, t)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// ingestStatus maps an engine rejection to an HTTP status.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, privacy.ErrBudgetExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, stream.ErrWrongGroup):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

func configResponse(t *stream.Tenant) ConfigResponse {
	cfg := t.Config()
	sp := t.Spec()
	out := ConfigResponse{
		Eps: sp.Eps, Eps0: sp.Eps0, Scheme: sp.Scheme,
		Kind: t.Kind().String(), K: sp.K, Shards: cfg.Shards,
		WindowMode: cfg.Window.Mode.String(), WindowSpan: cfg.Window.Span,
		EpochMs: cfg.Window.Epoch.Milliseconds(),
		Spec:    &sp,
	}
	if t.Kind() != core.TaskFrequency {
		out.Buckets = cfg.Buckets
	}
	for _, g := range t.Groups() {
		out.Groups = append(out.Groups, GroupInfo{Index: g.Index, Eps: g.Eps, Reports: g.Reports})
	}
	return out
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	writeJSON(w, http.StatusOK, configResponse(t))
}

func (s *Server) handleJoin(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	id, g := t.Join()
	writeJSON(w, http.StatusOK, JoinResponse{
		User:  id,
		Group: GroupInfo{Index: g.Index, Eps: g.Eps, Reports: g.Reports},
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := t.Ingest(req.User, req.Group, req.Values); err != nil {
		writeErr(w, ingestStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ReportResponse{Accepted: len(req.Values)})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	var out IngestResponse
	for i := range req.Reports {
		e := &req.Reports[i]
		if err := t.Ingest(e.User, e.Group, e.Values); err != nil {
			out.Rejected++
			if len(out.Errors) < maxIngestErrors {
				out.Errors = append(out.Errors, err.Error())
			}
			continue
		}
		out.Accepted += len(e.Values)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	st := t.Status()
	out := StatusResponse{
		Users:        st.Users,
		GroupReports: make([]int, len(st.GroupReports)),
		Kind:         st.Task.String(),
		Reporters:    st.Reporters,
		Epoch:        st.Epoch,
		CachedEpoch:  st.CachedEpoch,
	}
	for i, n := range st.GroupReports {
		out.GroupReports[i] = int(n)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	var snap *stream.Snapshot
	var err error
	switch r.URL.Query().Get("live") {
	case "1", "true":
		snap, err = t.Estimate(true)
	case "0", "false":
		snap, err = t.Estimate(false)
	default:
		// Prefer the per-epoch cache (free and at most one epoch stale);
		// fall back to a live estimate for clockless tenants.
		if snap = t.Cached(); snap == nil {
			snap, err = t.Estimate(true)
		}
	}
	if err != nil {
		writeErr(w, http.StatusConflict, "estimation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse(snap))
}

func (s *Server) handleRotate(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	snap, err := t.Rotate()
	if err != nil {
		writeErr(w, http.StatusConflict, "rotation sealed an epoch but estimation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse(snap))
}

func estimateResponse(snap *stream.Snapshot) EstimateResponse {
	out := EstimateResponse{
		Kind:    snap.Task.String(),
		Epoch:   snap.Epoch,
		Live:    snap.Live,
		Reports: snap.Reports,
	}
	if e := snap.Result; e != nil {
		out.Mean, out.Gamma, out.PoisonedRight = e.Mean, e.Gamma, e.PoisonedRight
		out.GroupMeans, out.Weights, out.VarMin = e.GroupMeans, e.Weights, e.VarMin
		out.Freqs, out.PoisonCats, out.XHat = e.Freqs, e.PoisonCats, e.XHat
		out.Variance, out.SecondMoment = e.Variance, e.SecondMoment
		out.EMFIters, out.EMFRestarts = e.EMFIters, e.EMFRestarts
		out.WarmHits, out.Converged = e.WarmHits, e.Converged
	}
	return out
}

func tenantStatusResponse(t *stream.Tenant) TenantStatusResponse {
	st := t.Status()
	return TenantStatusResponse{
		Name: st.Name, Kind: st.Task.String(), Eps: st.Eps, Eps0: st.Eps0,
		Scheme: st.Scheme, Users: st.Users, Reporters: st.Reporters,
		Epoch: st.Epoch, GroupReports: st.GroupReports, CachedEpoch: st.CachedEpoch,
		Spec: t.Spec(),
	}
}

func (s *Server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	out := TenantListResponse{Tenants: []TenantStatusResponse{}}
	for _, t := range s.reg.List() {
		out.Tenants = append(out.Tenants, tenantStatusResponse(t))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var req TenantRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	sp, err := tenantSpec(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	t, err := s.reg.CreateSpec(req.Name, sp)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, core.ErrBadSpec) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantStatusResponse(t))
}

// tenantSpec resolves the task spec of a creation request: the embedded
// spec when present, otherwise the deprecated flat fields folded into an
// equivalent spec — one parsing path for both wire shapes, feeding
// Registry.CreateSpec like every other spec consumer.
func tenantSpec(req TenantRequest) (core.Spec, error) {
	if req.Spec != nil {
		return *req.Spec, nil
	}
	task, err := core.ParseTask(req.Kind)
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{
		Task: task, Eps: req.Eps, Eps0: req.Eps0, Scheme: req.Scheme, K: req.K,
		OPrime: req.OPrime, AutoOPrime: req.AutoOPrime, GammaSup: req.GammaSup,
		TrimFrac: req.TrimFrac,
		Serve: &core.ServeSpec{
			Buckets: req.Buckets, ExpectedUsers: req.ExpectedUsers, Shards: req.Shards,
			Window: req.WindowMode, Span: req.WindowSpan, EpochMs: req.EpochMs,
		},
	}, nil
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	writeJSON(w, http.StatusOK, tenantStatusResponse(t))
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if name == DefaultTenant {
		writeErr(w, http.StatusBadRequest, "the default tenant cannot be deleted")
		return
	}
	if !s.reg.Delete(name) {
		writeErr(w, http.StatusNotFound, "tenant %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
