package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/store"
	"repro/internal/stream"
)

// DefaultTenant is the tenant the original (tenant-less) wire API
// addresses.
const DefaultTenant = "default"

// maxIngestErrors caps the per-entry rejection reasons echoed back from a
// batched ingest.
const maxIngestErrors = 8

// defaultMaxIngestBytes bounds ingest request bodies when ServerOptions
// leaves MaxIngestBytes zero.
const defaultMaxIngestBytes = 8 << 20

// ServerOptions configures the deployment concerns of a collector; the
// zero value is an ephemeral in-memory server, the pre-durability
// behavior.
type ServerOptions struct {
	// Store, when set, makes the collector durable: the registry is
	// recovered from it at boot (snapshot + WAL replay) and every accepted
	// state change is WAL-logged. The store must be freshly opened and not
	// yet loaded; its lifetime stays with the caller.
	Store *store.Store
	// SnapshotInterval is the period of the background snapshot loop
	// (durable servers only; zero disables periodic snapshots — one is
	// still cut on Close).
	SnapshotInterval time.Duration
	// MaxIngestBytes bounds report/ingest request bodies; oversized
	// requests fail fast with 413 before any decoding (default 8 MiB,
	// negative disables the limit).
	MaxIngestBytes int64
	// AsyncRecover serves immediately: requests answer 503 + Retry-After
	// while recovery runs in the background. Off, construction blocks
	// until recovery completes.
	AsyncRecover bool
	// Pprof mounts net/http/pprof under /debug/pprof/ (off by default;
	// admin-only — expose it on trusted networks).
	Pprof bool
	// Coordinator, when set, mounts the merge plane (POST /v1/merge and
	// the merged-estimate routes): this server is the coordinator of a
	// multi-node deployment and folds node-pushed epoch deltas into
	// merged estimates. The coordinator's lifetime (Start/Stop of its
	// straggler clock) stays with the caller.
	Coordinator *stream.Coordinator
}

// Server is a multi-tenant DAP collector service on top of the streaming
// aggregation engine: reports land in sharded per-group histograms, epoch
// windows keep estimates fresh without rescanning reports, and one process
// hosts many concurrent aggregations. With a store attached the collector
// is durable: boot recovers tenants from snapshot + WAL, and a crash never
// loses acked budget spend (see internal/store).
type Server struct {
	// regP/defP are published atomically so async recovery can install
	// them while the 503 gate is still up; handlers only dereference them
	// after observing recovering == false.
	regP atomic.Pointer[stream.Registry]
	defP atomic.Pointer[stream.Tenant]

	opts       ServerOptions
	recovering atomic.Bool
	recoverErr atomic.Pointer[string]
	report     atomic.Pointer[stream.RecoveryReport]

	// udpAddr is the bound binary-ingest socket address, advertised on
	// GET /v1/config once ListenUDP has opened it.
	udpAddr atomic.Pointer[string]
}

// NewServer builds a collector whose default tenant runs mean estimation
// with the given protocol parameters — the original single-collector
// construction, preserved for compatibility.
//
// Deprecated: use NewServerSpec with a task spec.
func NewServer(p core.Params) (*Server, error) {
	return NewServerSpec(core.Spec{
		Task: core.TaskMean, Eps: p.Eps, Eps0: p.Eps0, Scheme: p.Scheme.String(),
		Weights: p.WeightMode.String(),
		OPrime:  p.OPrime, AutoOPrime: p.AutoOPrime, GammaSup: p.GammaSup,
		SuppressFactor: p.SuppressFactor, EMFMaxIter: p.EMFMaxIter,
	})
}

// NewServerSpec builds a collector whose default tenant runs the given
// task spec (honouring its Serve section) — the one-call spec→service
// path used by cmd/dapcollect and cmd/daploadgen.
func NewServerSpec(sp core.Spec) (*Server, error) {
	cfg, err := stream.ConfigFromSpec(sp)
	if err != nil {
		return nil, err
	}
	return NewServerConfig(cfg)
}

// NewServerConfig builds a collector whose default tenant runs the given
// engine configuration (any task, epoch clock, shard and bucket layout).
func NewServerConfig(cfg stream.Config) (*Server, error) {
	return NewServerOpts(cfg, ServerOptions{})
}

// NewServerSpecOpts builds a collector from a task spec plus deployment
// options — the durable spec→service path used by cmd/dapcollect.
func NewServerSpecOpts(sp core.Spec, opts ServerOptions) (*Server, error) {
	cfg, err := stream.ConfigFromSpec(sp)
	if err != nil {
		return nil, err
	}
	return NewServerOpts(cfg, opts)
}

// NewServerOpts builds a collector from an engine configuration plus
// deployment options. With opts.Store the registry is recovered from disk
// (a recovered "default" tenant keeps its durable spec — the one it was
// created with — over cfg); without, the server is ephemeral.
func NewServerOpts(cfg stream.Config, opts ServerOptions) (*Server, error) {
	if opts.MaxIngestBytes == 0 {
		opts.MaxIngestBytes = defaultMaxIngestBytes
	}
	s := &Server{opts: opts}
	if opts.Store == nil {
		reg := stream.NewRegistry()
		def, err := reg.Create(DefaultTenant, cfg)
		if err != nil {
			return nil, err
		}
		s.install(reg, def, nil)
		return s, nil
	}
	s.recovering.Store(true)
	if opts.AsyncRecover {
		go func() { _ = s.recover(cfg) }()
		return s, nil
	}
	if err := s.recover(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// recover rebuilds the registry from the store and installs it. On
// failure the 503 gate stays up and the error is surfaced on the admin
// status endpoint.
func (s *Server) recover(cfg stream.Config) error {
	start := time.Now()
	reg, rep, err := stream.Recover(s.opts.Store)
	if err != nil {
		msg := err.Error()
		s.recoverErr.Store(&msg)
		slog.Error("boot recovery failed", "dir", s.opts.Store.Dir(), "err", err)
		return err
	}
	def, ok := reg.Get(DefaultTenant)
	if !ok {
		if def, err = reg.Create(DefaultTenant, cfg); err != nil {
			msg := err.Error()
			s.recoverErr.Store(&msg)
			slog.Error("boot recovery failed", "dir", s.opts.Store.Dir(), "err", err)
			return err
		}
	}
	reg.StartSnapshots(s.opts.SnapshotInterval)
	s.install(reg, def, rep)
	dur := time.Since(start)
	metRecoveryDur.Set(dur.Seconds())
	attrs := []any{"dir", s.opts.Store.Dir(), "duration_ms", dur.Milliseconds()}
	if rep != nil {
		attrs = append(attrs,
			"records", rep.Records, "applied", rep.Applied,
			"tenants", rep.Tenants, "torn", rep.Torn)
	}
	slog.Info("boot recovery complete", attrs...)
	return nil
}

// install publishes the registry and drops the recovery gate. The
// atomic.Bool store orders after the pointer stores, so a handler that
// observes recovering == false sees the installed registry.
func (s *Server) install(reg *stream.Registry, def *stream.Tenant, rep *stream.RecoveryReport) {
	s.regP.Store(reg)
	s.defP.Store(def)
	if rep != nil {
		s.report.Store(rep)
	}
	s.recovering.Store(false)
}

// Registry exposes the tenant registry (load generators and tests). It is
// nil while an async recovery is still running.
func (s *Server) Registry() *stream.Registry { return s.regP.Load() }

// Recovering reports whether boot recovery is still in progress (or has
// failed — see the admin status endpoint for the error).
func (s *Server) Recovering() bool { return s.recovering.Load() }

// Close stops the snapshot loop and every tenant's epoch clock, and — for
// a durable server — drains one final snapshot. The store itself is not
// closed; it belongs to whoever opened it.
func (s *Server) Close() {
	if reg := s.regP.Load(); reg != nil {
		reg.Close()
	}
}

// Handler returns the HTTP API. Every route is instrumented (request
// count/latency/size by route pattern) and logged via slog; GET /metrics
// serves the Prometheus exposition and, with ServerOptions.Pprof, the
// net/http/pprof handlers mount under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(method, route string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+route, instrument(route, h))
	}
	// Original wire API, bound to the default tenant.
	handle("GET", "/v1/config", s.tenantless(s.handleConfig))
	handle("POST", "/v1/join", s.tenantless(s.handleJoin))
	handle("POST", "/v1/report", s.tenantless(s.handleReport))
	handle("POST", "/v1/ingest", s.tenantless(s.handleIngest))
	handle("GET", "/v1/status", s.tenantless(s.handleStatus))
	handle("GET", "/v1/estimate", s.tenantless(s.handleEstimate))
	handle("POST", "/v1/rotate", s.tenantless(s.handleRotate))
	// Tenant CRUD.
	handle("GET", "/v1/tenants", s.handleTenantList)
	handle("POST", "/v1/tenants", s.handleTenantCreate)
	handle("GET", "/v1/tenants/{tenant}", s.scoped(s.handleTenantStatus))
	handle("DELETE", "/v1/tenants/{tenant}", s.handleTenantDelete)
	// Per-tenant routes, mirroring the original API.
	handle("GET", "/v1/tenants/{tenant}/config", s.scoped(s.handleConfig))
	handle("POST", "/v1/tenants/{tenant}/join", s.scoped(s.handleJoin))
	handle("POST", "/v1/tenants/{tenant}/report", s.scoped(s.handleReport))
	handle("POST", "/v1/tenants/{tenant}/ingest", s.scoped(s.handleIngest))
	handle("GET", "/v1/tenants/{tenant}/status", s.scoped(s.handleStatus))
	handle("GET", "/v1/tenants/{tenant}/estimate", s.scoped(s.handleEstimate))
	handle("POST", "/v1/tenants/{tenant}/rotate", s.scoped(s.handleRotate))
	// Merge plane (coordinators only): nodes push sealed epoch deltas,
	// reads serve the merged estimates.
	if s.opts.Coordinator != nil {
		handle("POST", "/v1/merge", s.handleMerge)
		handle("GET", "/v1/merge/estimate", s.handleMergeEstimate)
		handle("GET", "/v1/merge/estimate/{tenant}", s.handleMergeEstimate)
	}
	// Admin: store health, recovery state, last-snapshot age. Reachable
	// while the collector is still recovering — it is how operators watch
	// recovery progress.
	handle("GET", "/v1/admin/status", s.handleAdminStatus)
	// Observability: the metrics exposition is served (and left
	// uninstrumented — scrapes should not inflate the request metrics
	// they report) and pprof mounts when explicitly enabled.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The recovery gate 503s the data plane but leaves the
		// observability plane open: admin status, the metrics scrape and
		// pprof are exactly what an operator needs while recovery runs.
		if s.recovering.Load() && !recoveryExempt(r) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "collector is recovering; retry shortly")
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// recoveryExempt reports whether a request bypasses the recovery gate.
func recoveryExempt(r *http.Request) bool {
	if r.Method != http.MethodGet {
		return false
	}
	p := r.URL.Path
	return p == "/v1/admin/status" || p == "/metrics" || strings.HasPrefix(p, "/debug/pprof/")
}

// tenantless adapts a tenant-scoped handler to the original API.
func (s *Server) tenantless(h func(http.ResponseWriter, *http.Request, *stream.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(w, r, s.defP.Load()) }
}

// scoped resolves {tenant} from the path.
func (s *Server) scoped(h func(http.ResponseWriter, *http.Request, *stream.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t, ok := s.regP.Load().Get(name)
		if !ok {
			writeErr(w, http.StatusNotFound, "tenant %q not found", name)
			return
		}
		h(w, r, t)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// ingestStatus maps an engine rejection to an HTTP status.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, privacy.ErrBudgetExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, stream.ErrWrongGroup):
		return http.StatusForbidden
	case errors.Is(err, stream.ErrStoreDown), errors.Is(err, stream.ErrRotating):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeEngineErr maps an engine rejection onto the wire, attaching
// Retry-After to the retryable (503) ones so well-behaved clients back
// off instead of hammering a recovering store.
func writeEngineErr(w http.ResponseWriter, err error) {
	status := ingestStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeErr(w, status, "%v", err)
}

// limitBody enforces the ingest body-size limit: oversized requests with
// a declared length fail fast with 413 before a byte is decoded, and
// chunked uploads are cut off at the limit mid-decode.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) bool {
	max := s.opts.MaxIngestBytes
	if max <= 0 {
		return true
	}
	if r.ContentLength > max {
		writeErr(w, http.StatusRequestEntityTooLarge,
			"request body %d bytes exceeds the %d-byte limit", r.ContentLength, max)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, max)
	return true
}

// decodeStatus distinguishes an oversized body (413, from MaxBytesReader)
// from plain bad JSON (400).
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func configResponse(t *stream.Tenant) ConfigResponse {
	cfg := t.Config()
	sp := t.Spec()
	out := ConfigResponse{
		Eps: sp.Eps, Eps0: sp.Eps0, Scheme: sp.Scheme,
		Kind: t.Kind().String(), K: sp.K, Shards: cfg.Shards,
		WindowMode: cfg.Window.Mode.String(), WindowSpan: cfg.Window.Span,
		EpochMs: cfg.Window.Epoch.Milliseconds(),
		Spec:    &sp,
	}
	if t.Kind() != core.TaskFrequency {
		out.Buckets = cfg.Buckets
	}
	if sp.Serve != nil {
		out.Wire = sp.Serve.Wire
	}
	for _, g := range t.Groups() {
		out.Groups = append(out.Groups, GroupInfo{Index: g.Index, Eps: g.Eps, Reports: g.Reports})
	}
	return out
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	out := configResponse(t)
	if addr := s.udpAddr.Load(); addr != nil {
		out.UDPAddr = *addr
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJoin(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	id, g := t.Join()
	writeJSON(w, http.StatusOK, JoinResponse{
		User:  id,
		Group: GroupInfo{Index: g.Index, Eps: g.Eps, Reports: g.Reports},
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	if !s.limitBody(w, r) {
		return
	}
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, decodeStatus(err), "invalid JSON: %v", err)
		return
	}
	if err := t.Ingest(req.User, req.Group, req.Values); err != nil {
		writeEngineErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ReportResponse{Accepted: len(req.Values)})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	if !s.limitBody(w, r) {
		return
	}
	if isFrameRequest(r) {
		s.handleIngestFrame(w, r, t)
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, decodeStatus(err), "invalid JSON: %v", err)
		return
	}
	entries := make([]stream.BatchEntry, len(req.Reports))
	for i := range req.Reports {
		e := &req.Reports[i]
		entries[i] = stream.BatchEntry{User: e.User, Group: e.Group, Values: e.Values}
	}
	// One engine call applies the whole batch under a single WAL write —
	// the durable fast path — with per-entry accept/reject semantics. A
	// dead store fails every staged entry the same way, and the engine
	// rolled all of them back — nothing was applied, so the whole batch is
	// retryable: answer 503 and the client re-sends it after the store
	// heals.
	out, err := applyBatch(t, entries)
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	st := t.Status()
	out := StatusResponse{
		Users:        st.Users,
		GroupReports: make([]int, len(st.GroupReports)),
		Kind:         st.Task.String(),
		Reporters:    st.Reporters,
		Epoch:        st.Epoch,
		CachedEpoch:  st.CachedEpoch,
	}
	for i, n := range st.GroupReports {
		out.GroupReports[i] = int(n)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, t *stream.Tenant) {
	var snap *stream.Snapshot
	var err error
	switch r.URL.Query().Get("live") {
	case "1", "true":
		snap, err = t.Estimate(true)
	case "0", "false":
		snap, err = t.Estimate(false)
	default:
		// Prefer the per-epoch cache (free and at most one epoch stale);
		// fall back to a live estimate for clockless tenants.
		if snap = t.Cached(); snap == nil {
			snap, err = t.Estimate(true)
		}
	}
	if err != nil {
		writeErr(w, http.StatusConflict, "estimation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse(snap))
}

func (s *Server) handleRotate(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	snap, err := t.TryRotate()
	if err != nil {
		// In-flight rotation or a dead store: retryable, 503 + Retry-After.
		if errors.Is(err, stream.ErrRotating) || errors.Is(err, stream.ErrStoreDown) {
			writeEngineErr(w, err)
			return
		}
		writeErr(w, http.StatusConflict, "rotation sealed an epoch but estimation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse(snap))
}

func estimateResponse(snap *stream.Snapshot) EstimateResponse {
	out := EstimateResponse{
		Kind:    snap.Task.String(),
		Epoch:   snap.Epoch,
		Live:    snap.Live,
		Reports: snap.Reports,
	}
	if e := snap.Result; e != nil {
		out.Mean, out.Gamma, out.PoisonedRight = e.Mean, e.Gamma, e.PoisonedRight
		out.GroupMeans, out.Weights, out.VarMin = e.GroupMeans, e.Weights, e.VarMin
		out.Freqs, out.PoisonCats, out.XHat = e.Freqs, e.PoisonCats, e.XHat
		out.Variance, out.SecondMoment = e.Variance, e.SecondMoment
		out.EMFIters, out.EMFRestarts = e.EMFIters, e.EMFRestarts
		out.WarmHits, out.Converged = e.WarmHits, e.Converged
	}
	return out
}

func tenantStatusResponse(t *stream.Tenant) TenantStatusResponse {
	st := t.Status()
	return TenantStatusResponse{
		Name: st.Name, Kind: st.Task.String(), Eps: st.Eps, Eps0: st.Eps0,
		Scheme: st.Scheme, Users: st.Users, Reporters: st.Reporters,
		Epoch: st.Epoch, GroupReports: st.GroupReports, CachedEpoch: st.CachedEpoch,
		Spec: t.Spec(),
	}
}

func (s *Server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	out := TenantListResponse{Tenants: []TenantStatusResponse{}}
	for _, t := range s.regP.Load().List() {
		out.Tenants = append(out.Tenants, tenantStatusResponse(t))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAdminStatus(w http.ResponseWriter, _ *http.Request) {
	out := AdminStatusResponse{Recovering: s.recovering.Load()}
	if e := s.recoverErr.Load(); e != nil {
		out.RecoverError = *e
	}
	if reg := s.regP.Load(); reg != nil {
		out.Tenants = len(reg.List())
		if st := reg.Store(); st != nil {
			out.Durable = true
			h := st.Health()
			out.Degraded = !h.Healthy
			info := &StoreHealthInfo{
				Healthy: h.Healthy, LastErr: h.LastErr, LSN: h.LSN,
				Segments: h.Segments, WALBytes: h.WALBytes,
				SnapshotLSN: h.SnapshotLSN, Dir: h.Dir,
			}
			if !h.LastSnapshot.IsZero() {
				info.LastSnapshotAgeMs = time.Since(h.LastSnapshot).Milliseconds()
			}
			out.Store = info
		}
	}
	if c := s.opts.Coordinator; c != nil {
		out.Merge = mergeStatusInfo(c)
		out.Degraded = out.Degraded || out.Merge.Degraded
	}
	if rep := s.report.Load(); rep != nil {
		out.Recovery = &RecoveryInfo{
			SnapshotLSN: rep.SnapshotLSN, Records: rep.Records, Applied: rep.Applied,
			Tenants: rep.Tenants, Torn: rep.Torn, Warnings: rep.Warnings,
			SpendBefore: rep.SpendBefore, SpendAfter: rep.SpendAfter,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var req TenantRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	sp, err := tenantSpec(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	t, err := s.regP.Load().CreateSpec(req.Name, sp)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, core.ErrBadSpec) {
			status = http.StatusBadRequest
		}
		if errors.Is(err, stream.ErrStoreDown) {
			writeEngineErr(w, err)
			return
		}
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantStatusResponse(t))
}

// tenantSpec resolves the task spec of a creation request: the embedded
// spec when present, otherwise the deprecated flat fields folded into an
// equivalent spec — one parsing path for both wire shapes, feeding
// Registry.CreateSpec like every other spec consumer.
func tenantSpec(req TenantRequest) (core.Spec, error) {
	if req.Spec != nil {
		return *req.Spec, nil
	}
	task, err := core.ParseTask(req.Kind)
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{
		Task: task, Eps: req.Eps, Eps0: req.Eps0, Scheme: req.Scheme, K: req.K,
		OPrime: req.OPrime, AutoOPrime: req.AutoOPrime, GammaSup: req.GammaSup,
		TrimFrac: req.TrimFrac,
		Serve: &core.ServeSpec{
			Buckets: req.Buckets, ExpectedUsers: req.ExpectedUsers, Shards: req.Shards,
			Window: req.WindowMode, Span: req.WindowSpan, EpochMs: req.EpochMs,
		},
	}, nil
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, _ *http.Request, t *stream.Tenant) {
	writeJSON(w, http.StatusOK, tenantStatusResponse(t))
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if name == DefaultTenant {
		writeErr(w, http.StatusBadRequest, "the default tenant cannot be deleted")
		return
	}
	if !s.regP.Load().Delete(name) {
		writeErr(w, http.StatusNotFound, "tenant %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
