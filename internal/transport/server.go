package transport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/privacy"
)

// Server is a DAP collector service. It assigns joining users to groups
// round-robin, stores uploaded reports per group, enforces each user's
// budget with a privacy accountant, and exposes the aggregated estimate.
type Server struct {
	dap  *core.DAP
	acct *privacy.Accountant

	mu      sync.Mutex
	nextID  int
	userGrp map[string]int
	groups  [][]float64
}

// NewServer builds a collector for the given protocol parameters.
func NewServer(p core.Params) (*Server, error) {
	d, err := core.NewDAP(p)
	if err != nil {
		return nil, err
	}
	acct, err := privacy.NewAccountant(p.Eps)
	if err != nil {
		return nil, err
	}
	return &Server{
		dap:     d,
		acct:    acct,
		userGrp: make(map[string]int),
		groups:  make([][]float64, d.H()),
	}, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/config", s.handleConfig)
	mux.HandleFunc("POST /v1/join", s.handleJoin)
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/estimate", s.handleEstimate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) config() ConfigResponse {
	p := s.dap.Params()
	cfg := ConfigResponse{Eps: p.Eps, Eps0: p.Eps0, Scheme: p.Scheme.String()}
	for _, g := range s.dap.Groups() {
		cfg.Groups = append(cfg.Groups, GroupInfo{Index: g.Index, Eps: g.Eps, Reports: g.Reports})
	}
	return cfg
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.config())
}

func (s *Server) handleJoin(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	id := fmt.Sprintf("u%06d", s.nextID)
	grp := s.nextID % s.dap.H()
	s.nextID++
	s.userGrp[id] = grp
	s.mu.Unlock()
	g := s.dap.Groups()[grp]
	writeJSON(w, http.StatusOK, JoinResponse{
		User:  id,
		Group: GroupInfo{Index: g.Index, Eps: g.Eps, Reports: g.Reports},
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.Group < 0 || req.Group >= s.dap.H() {
		writeErr(w, http.StatusBadRequest, "group %d out of range", req.Group)
		return
	}
	if len(req.Values) == 0 {
		writeErr(w, http.StatusBadRequest, "no values")
		return
	}
	g := s.dap.Groups()[req.Group]
	if len(req.Values) > g.Reports {
		writeErr(w, http.StatusBadRequest, "group %d accepts at most %d reports", req.Group, g.Reports)
		return
	}
	dom := s.dap.Mechanism(req.Group).OutputDomain()
	for _, v := range req.Values {
		if !dom.Contains(v) {
			writeErr(w, http.StatusBadRequest, "value %g outside output domain [%g,%g]", v, dom.Lo, dom.Hi)
			return
		}
	}
	s.mu.Lock()
	if grp, ok := s.userGrp[req.User]; ok && grp != req.Group {
		s.mu.Unlock()
		writeErr(w, http.StatusForbidden, "user %s belongs to group %d", req.User, grp)
		return
	}
	s.mu.Unlock()
	// Budget accounting: each report in group t costs ε_t.
	for range req.Values {
		if err := s.acct.Spend(req.User, g.Eps); err != nil {
			writeErr(w, http.StatusTooManyRequests, "%v", err)
			return
		}
	}
	s.mu.Lock()
	s.groups[req.Group] = append(s.groups[req.Group], req.Values...)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ReportResponse{Accepted: len(req.Values)})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := make([]int, len(s.groups))
	for i, g := range s.groups {
		counts[i] = len(g)
	}
	users := len(s.userGrp)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatusResponse{Users: users, GroupReports: counts})
}

func (s *Server) handleEstimate(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	col := &core.Collection{Groups: make([][]float64, len(s.groups))}
	for i, g := range s.groups {
		col.Groups[i] = append([]float64(nil), g...)
	}
	s.mu.Unlock()
	est, err := s.dap.Estimate(col)
	if err != nil {
		writeErr(w, http.StatusConflict, "estimation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Mean:          est.Mean,
		Gamma:         est.Gamma,
		PoisonedRight: est.PoisonedRight,
		GroupMeans:    est.GroupMeans,
		Weights:       est.Weights,
		VarMin:        est.VarMin,
	})
}
