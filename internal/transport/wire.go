// Package transport is the HTTP deployment of the DAP collector. It runs
// on the streaming aggregation engine (internal/stream): users join,
// receive a group assignment with its privacy budget, perturb locally (the
// LDP trust model — raw values never leave the device) and upload reports,
// which land in sharded per-group histograms; estimates come from epoch
// windows, re-estimated on rotation so reads never rescan reports.
//
// One process hosts many tenants, each defined by a task spec (core.Spec)
// — the same JSON that drives batch estimation and the CLIs. The original
// single-collector wire API (/v1/config, /v1/join, /v1/report,
// /v1/status, /v1/estimate) is preserved verbatim and operates on the
// tenant named "default"; the same routes exist per tenant under
// /v1/tenants/{tenant}/..., alongside tenant CRUD on /v1/tenants (which
// accepts and returns task specs), epoch rotation and a batched ingest
// endpoint for high-throughput clients.
package transport

import "repro/internal/core"

// GroupInfo describes one DAP group to clients.
type GroupInfo struct {
	Index   int     `json:"index"`
	Eps     float64 `json:"eps"`
	Reports int     `json:"reports"`
}

// ConfigResponse is returned by GET /v1/config. Fields beyond the original
// four describe the serving configuration and are additive; Spec carries
// the tenant's full task spec (the same JSON accepted by tenant creation,
// dap.Build and the CLIs).
type ConfigResponse struct {
	Eps    float64     `json:"eps"`
	Eps0   float64     `json:"eps0"`
	Scheme string      `json:"scheme"`
	Groups []GroupInfo `json:"groups"`

	Kind       string `json:"kind,omitempty"`
	K          int    `json:"k,omitempty"`
	Buckets    int    `json:"buckets,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	WindowMode string `json:"window_mode,omitempty"`
	WindowSpan int    `json:"window_span,omitempty"`
	EpochMs    int64  `json:"epoch_ms,omitempty"`

	// Wire is the tenant's preferred ingest wire (spec serve.wire:
	// json, bin or udp; empty = json). UDPAddr is the collector's bound
	// binary-ingest UDP socket, present once one is listening.
	Wire    string `json:"wire,omitempty"`
	UDPAddr string `json:"udp_addr,omitempty"`

	Spec *core.Spec `json:"spec,omitempty"`
}

// JoinResponse is returned by POST /v1/join: the caller's group
// assignment.
type JoinResponse struct {
	User  string    `json:"user"`
	Group GroupInfo `json:"group"`
}

// ReportRequest is the body of POST /v1/report. Values must already be
// perturbed (or poisoned — the collector cannot tell) and fall within the
// group mechanism's output domain; frequency tenants expect integral
// category indices in [0,K).
type ReportRequest struct {
	User   string    `json:"user"`
	Group  int       `json:"group"`
	Values []float64 `json:"values"`
}

// ReportResponse acknowledges accepted reports.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}

// IngestRequest is the body of POST /v1/ingest: many reports in one
// round-trip. Entries are applied independently — a rejected entry does
// not block the rest — and each entry's budget is charged atomically.
type IngestRequest struct {
	Reports []ReportRequest `json:"reports"`
}

// IngestResponse summarizes a batched ingest. Errors carries the first few
// per-entry rejection reasons. Seq echoes a binary frame's batch sequence
// (zero for JSON ingests and unsequenced frames), acking the exact frame
// on the lossless HTTP wire; for a frame stream it is the last applied
// frame's sequence and Frames counts the frames applied.
type IngestResponse struct {
	Accepted int      `json:"accepted"`
	Rejected int      `json:"rejected"`
	Errors   []string `json:"errors,omitempty"`
	Seq      uint64   `json:"seq,omitempty"`
	Frames   int      `json:"frames,omitempty"`
}

// StatusResponse is returned by GET /v1/status. Epoch fields are additive.
type StatusResponse struct {
	Users        int   `json:"users"`
	GroupReports []int `json:"group_reports"`

	Kind        string `json:"kind,omitempty"`
	Reporters   int    `json:"reporters,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	CachedEpoch uint64 `json:"cached_epoch,omitempty"`
}

// EstimateResponse is returned by GET /v1/estimate — a flat rendering of
// the unified core.Result. The original mean fields keep their meaning;
// Kind, Epoch, Live, Reports and the task-specific
// Freqs/XHat/PoisonCats/Variance fields are additive.
type EstimateResponse struct {
	Mean          float64   `json:"mean"`
	Gamma         float64   `json:"gamma"`
	PoisonedRight bool      `json:"poisoned_right"`
	GroupMeans    []float64 `json:"group_means"`
	Weights       []float64 `json:"weights"`
	VarMin        float64   `json:"var_min"`

	Kind         string    `json:"kind,omitempty"`
	Epoch        uint64    `json:"epoch,omitempty"`
	Live         bool      `json:"live,omitempty"`
	Reports      float64   `json:"reports,omitempty"`
	Freqs        []float64 `json:"freqs,omitempty"`
	PoisonCats   []int     `json:"poison_cats,omitempty"`
	XHat         []float64 `json:"xhat,omitempty"`
	Variance     float64   `json:"variance,omitempty"`
	SecondMoment float64   `json:"second_moment,omitempty"`

	// Solver telemetry of the estimate: total EM-map evaluations, rejected
	// SQUAREM extrapolations, warm-started runs, and whether every EM fit
	// met its tolerance before MaxIter (false = under-converged estimate).
	EMFIters    int  `json:"emf_iters,omitempty"`
	EMFRestarts int  `json:"emf_restarts,omitempty"`
	WarmHits    int  `json:"warm_hits,omitempty"`
	Converged   bool `json:"converged"`
}

// TenantRequest is the body of POST /v1/tenants: a name plus the task
// spec. The flat fields are the pre-spec wire shape, still honoured when
// Spec is absent; new clients send Spec — the same JSON consumed by
// dap.Build, the stream engine and the CLIs.
type TenantRequest struct {
	Name string `json:"name"`
	// Spec is the task spec (with optional Serve section).
	Spec *core.Spec `json:"spec,omitempty"`

	// Deprecated: pre-spec flat fields, used only when Spec is nil.
	Kind          string  `json:"kind,omitempty"`
	Eps           float64 `json:"eps,omitempty"`
	Eps0          float64 `json:"eps0,omitempty"`
	Scheme        string  `json:"scheme,omitempty"`
	K             int     `json:"k,omitempty"`
	Buckets       int     `json:"buckets,omitempty"`
	ExpectedUsers int     `json:"expected_users,omitempty"`
	Shards        int     `json:"shards,omitempty"`
	WindowMode    string  `json:"window_mode,omitempty"`
	WindowSpan    int     `json:"window_span,omitempty"`
	EpochMs       int64   `json:"epoch_ms,omitempty"`
	AutoOPrime    bool    `json:"auto_oprime,omitempty"`
	OPrime        float64 `json:"oprime,omitempty"`
	GammaSup      float64 `json:"gamma_sup,omitempty"`
	TrimFrac      float64 `json:"trim_frac,omitempty"`
}

// TenantStatusResponse is returned by tenant CRUD and
// GET /v1/tenants/{tenant}. Spec carries the tenant's effective task spec,
// round-trippable into a new TenantRequest.
type TenantStatusResponse struct {
	Name         string    `json:"name"`
	Kind         string    `json:"kind"`
	Eps          float64   `json:"eps"`
	Eps0         float64   `json:"eps0"`
	Scheme       string    `json:"scheme"`
	Users        int       `json:"users"`
	Reporters    int       `json:"reporters"`
	Epoch        uint64    `json:"epoch"`
	GroupReports []float64 `json:"group_reports"`
	CachedEpoch  uint64    `json:"cached_epoch"`
	Spec         core.Spec `json:"spec"`
}

// TenantListResponse is returned by GET /v1/tenants.
type TenantListResponse struct {
	Tenants []TenantStatusResponse `json:"tenants"`
}

// ErrorResponse carries a machine-readable error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MergeResponse is returned by POST /v1/merge: what the coordinator did
// with the pushed delta. Status is "merged", "duplicate" or "late"
// (see stream.MergeResult); Published is the tenant's highest published
// epoch after this push and Degraded whether that publish was partial.
type MergeResponse struct {
	Status    string `json:"status"`
	Epoch     uint64 `json:"epoch"`
	Published uint64 `json:"published"`
	Degraded  bool   `json:"degraded,omitempty"`
}

// MergeNodeInfo is one registered node's liveness inside an admin
// status.
type MergeNodeInfo struct {
	Node       string `json:"node"`
	LastEpoch  uint64 `json:"last_epoch"`
	LastSeenMs int64  `json:"last_seen_ms,omitempty"`
	Deltas     uint64 `json:"deltas"`
}

// MergeTenantInfo is one tenant's merge-plane state inside an admin
// status.
type MergeTenantInfo struct {
	Tenant    string `json:"tenant"`
	Published uint64 `json:"published"`
	Degraded  bool   `json:"degraded,omitempty"`
	Pending   int    `json:"pending"`
	LastError string `json:"last_error,omitempty"`
}

// MergeStatusInfo summarizes the merge plane inside an admin status —
// present only on a coordinator. Degraded mirrors the per-tenant flags:
// a partial (quorum-after-timeout or gap-crossing) publish marks its
// tenant degraded until a later full epoch publishes cleanly.
type MergeStatusInfo struct {
	Nodes       []MergeNodeInfo   `json:"nodes"`
	Quorum      int               `json:"quorum"`
	StragglerMs int64             `json:"straggler_ms"`
	Tenants     []MergeTenantInfo `json:"tenants,omitempty"`
	Degraded    bool              `json:"degraded"`
}

// StoreHealthInfo describes the durability layer inside an admin status:
// WAL position and footprint, last snapshot, and whether the most recent
// append or sync failed (a degraded store serves reads but rejects
// writes).
type StoreHealthInfo struct {
	Healthy           bool   `json:"healthy"`
	LastErr           string `json:"last_err,omitempty"`
	LSN               uint64 `json:"lsn"`
	Segments          int    `json:"segments"`
	WALBytes          int64  `json:"wal_bytes"`
	SnapshotLSN       uint64 `json:"snapshot_lsn"`
	LastSnapshotAgeMs int64  `json:"last_snapshot_age_ms,omitempty"`
	Dir               string `json:"dir,omitempty"`
}

// RecoveryInfo summarizes the boot-time crash recovery that produced the
// running registry.
type RecoveryInfo struct {
	SnapshotLSN uint64   `json:"snapshot_lsn"`
	Records     int      `json:"records"`
	Applied     int      `json:"applied"`
	Tenants     int      `json:"tenants"`
	Torn        bool     `json:"torn"`
	Warnings    []string `json:"warnings,omitempty"`
	SpendBefore float64  `json:"spend_before"`
	SpendAfter  float64  `json:"spend_after"`
}

// AdminStatusResponse is returned by GET /v1/admin/status. Together with
// /metrics and /debug/pprof it forms the observability plane, which stays
// reachable during recovery (everything else returns 503 with Retry-After
// until the registry is rebuilt). Recovering, Degraded and the snapshot
// age mirror the dap_collector_recovering, dap_store_degraded and
// dap_store_snapshot_age_seconds gauges so dashboards can use either
// source.
type AdminStatusResponse struct {
	Recovering   bool   `json:"recovering"`
	RecoverError string `json:"recover_error,omitempty"`
	Tenants      int    `json:"tenants"`
	Durable      bool   `json:"durable"`
	// Degraded is true while the durable store is unhealthy (last append
	// or fsync failed); ingest answers 503 until an append succeeds.
	Degraded bool             `json:"degraded"`
	Store    *StoreHealthInfo `json:"store,omitempty"`
	Recovery *RecoveryInfo    `json:"recovery,omitempty"`
	// Merge is the coordinator's merge-plane state (coordinators only).
	Merge *MergeStatusInfo `json:"merge,omitempty"`
}
