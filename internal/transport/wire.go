// Package transport provides a minimal HTTP deployment of the DAP
// collector: users join, receive a group assignment with its privacy
// budget, perturb locally (the LDP trust model — raw values never leave
// the device) and upload reports; the collector runs the full DAP
// estimation pipeline on demand.
package transport

// GroupInfo describes one DAP group to clients.
type GroupInfo struct {
	Index   int     `json:"index"`
	Eps     float64 `json:"eps"`
	Reports int     `json:"reports"`
}

// ConfigResponse is returned by GET /v1/config.
type ConfigResponse struct {
	Eps    float64     `json:"eps"`
	Eps0   float64     `json:"eps0"`
	Scheme string      `json:"scheme"`
	Groups []GroupInfo `json:"groups"`
}

// JoinResponse is returned by POST /v1/join: the caller's group
// assignment.
type JoinResponse struct {
	User  string    `json:"user"`
	Group GroupInfo `json:"group"`
}

// ReportRequest is the body of POST /v1/report. Values must already be
// perturbed (or poisoned — the collector cannot tell) and fall within the
// group mechanism's output domain.
type ReportRequest struct {
	User   string    `json:"user"`
	Group  int       `json:"group"`
	Values []float64 `json:"values"`
}

// ReportResponse acknowledges accepted reports.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}

// StatusResponse is returned by GET /v1/status.
type StatusResponse struct {
	Users        int   `json:"users"`
	GroupReports []int `json:"group_reports"`
}

// EstimateResponse is returned by GET /v1/estimate.
type EstimateResponse struct {
	Mean          float64   `json:"mean"`
	Gamma         float64   `json:"gamma"`
	PoisonedRight bool      `json:"poisoned_right"`
	GroupMeans    []float64 `json:"group_means"`
	Weights       []float64 `json:"weights"`
	VarMin        float64   `json:"var_min"`
}

// ErrorResponse carries a machine-readable error.
type ErrorResponse struct {
	Error string `json:"error"`
}
