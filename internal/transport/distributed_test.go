package transport

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/wirebin"
)

// distSpec pins the serving geometry (buckets, stripes) so every node
// and the coordinator agree on histogram shape regardless of per-node
// population, and turns warm starts off so estimates are pure functions
// of the window histograms.
func distSpec() core.Spec {
	return core.Spec{
		Task: core.TaskMean, Eps: 1, Eps0: 0.25,
		Scheme: core.SchemeEMF.String(), EMFMaxIter: 40,
		Serve: &core.ServeSpec{Buckets: 16, Shards: 4, Window: "sliding", Span: 2},
	}
}

// deltaPusher is a node's seal hook: it stamps the node id on each
// sealed delta and pushes the encoded frame to whichever coordinator is
// currently installed (swappable, so a test can kill and replace the
// coordinator mid-stream).
type deltaPusher struct {
	t    *testing.T
	node string
	dst  atomic.Pointer[Client]
}

func (p *deltaPusher) push(d *stream.EpochDelta) {
	d.Node = p.node
	frame, err := wirebin.EncodeDelta(d)
	if err != nil {
		p.t.Errorf("node %s: encode delta: %v", p.node, err)
		return
	}
	if _, err := p.dst.Load().PushDelta(context.Background(), frame); err != nil {
		p.t.Errorf("node %s: push delta: %v", p.node, err)
	}
}

// distNode is one collector node: an ephemeral server whose default
// tenant pushes sealed epoch deltas to the coordinator.
type distNode struct {
	srv    *Server
	client *Client
	pusher *deltaPusher
}

func newDistNode(t *testing.T, id string, coord *Client) *distNode {
	t.Helper()
	srv, err := NewServerSpecOpts(distSpec(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	p := &deltaPusher{t: t, node: id}
	p.dst.Store(coord)
	srv.Registry().SetSealHook(p.push)
	return &distNode{srv: srv, client: NewClient(ts.URL, ts.Client()), pusher: p}
}

// newCoordServer wraps a coordinator in an HTTP server and returns a
// retrying client for it — the client nodes push through.
func newCoordServer(t *testing.T, co *stream.Coordinator) *Client {
	t.Helper()
	srv, err := NewServerSpecOpts(distSpec(), ServerOptions{Coordinator: co})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	c.SetRetry(3, time.Second)
	return c
}

// TestDistributedEquivalence is the scale-out acceptance test: three
// node collectors and one coordinator on loopback HTTP, a pinned report
// stream partitioned across the nodes stripe-disjointly, and — epoch by
// epoch, including after a coordinator kill and WAL recovery — merged
// estimates and budget ledgers bit-identical to a single collector
// ingesting the whole stream.
func TestDistributedEquivalence(t *testing.T) {
	const (
		nodes  = 3
		users  = 12
		rounds = 3
	)
	nodeIDs := make([]string, nodes)
	for i := range nodeIDs {
		nodeIDs[i] = "node-" + strconv.Itoa(i)
	}

	// Reference: one collector sees the whole stream.
	refSrv, err := NewServerSpecOpts(distSpec(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(refSrv.Close)
	refT, _ := refSrv.Registry().Get(DefaultTenant)

	// Durable coordinator: its WAL is what survives the kill below.
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); err != nil {
		t.Fatal(err)
	}
	co, err := stream.NewCoordinator(stream.CoordinatorConfig{
		Nodes: nodeIDs, Straggler: time.Hour, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.AddTenantSpec(DefaultTenant, distSpec()); err != nil {
		t.Fatal(err)
	}
	coordClient := newCoordServer(t, co)

	cluster := make([]*distNode, nodes)
	for i := range cluster {
		cluster[i] = newDistNode(t, nodeIDs[i], coordClient)
	}

	ctx := context.Background()
	r := rng.New(42)
	refGroups := refT.Groups()
	mechs := make([]*pm.Mechanism, len(refGroups))
	for g := range mechs {
		m, err := pm.New(refGroups[g].Eps)
		if err != nil {
			t.Fatal(err)
		}
		mechs[g] = m
	}
	shards := refT.Shards()
	groups := len(refGroups)

	checkRound := func(round int, co *stream.Coordinator, coord *Client) {
		t.Helper()
		refSnap, err := refT.Rotate()
		if err != nil {
			t.Fatalf("round %d: reference rotate: %v", round, err)
		}
		got, err := coord.MergeEstimate(ctx, "")
		if err != nil {
			t.Fatalf("round %d: merged estimate: %v", round, err)
		}
		want := estimateResponse(refSnap)
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round %d: merged estimate differs from single-collector reference\n got: %+v\nwant: %+v",
				round, *got, want)
		}
		ledger, err := co.Ledger(DefaultTenant)
		if err != nil {
			t.Fatalf("round %d: merged ledger: %v", round, err)
		}
		wantLedger := refT.Accountant().Export()
		if len(ledger) != len(wantLedger) {
			t.Fatalf("round %d: merged ledger has %d users, reference %d", round, len(ledger), len(wantLedger))
		}
		for u, eps := range wantLedger {
			if math.Float64bits(ledger[u]) != math.Float64bits(eps) {
				t.Fatalf("round %d: user %s merged spend %v, reference %v", round, u, ledger[u], eps)
			}
		}
	}

	ingestRound := func(round int) {
		t.Helper()
		for i := 0; i < users; i++ {
			for g := 0; g < groups; g++ {
				// Round-unique reporters: the per-user cap is Spec.Eps,
				// which one report batch consumes entirely.
				user := "u" + strconv.Itoa(i) + "g" + strconv.Itoa(g) + "r" + strconv.Itoa(round)
				vals := make([]float64, refGroups[g].Reports)
				for k := range vals {
					vals[k] = mechs[g].Perturb(r, 0.2)
				}
				if err := refT.Ingest(user, g, vals); err != nil {
					t.Fatal(err)
				}
				owner := stream.StripeOf(user, shards) % nodes
				if err := cluster[owner].client.Report(ctx, user, g, vals); err != nil {
					t.Fatalf("round %d: node %d report: %v", round, owner, err)
				}
			}
		}
	}

	rotateNode := func(n *distNode) {
		t.Helper()
		// A node that owns an empty group cannot estimate; the seal (and
		// the delta push it triggers) still happens.
		if _, err := n.client.Rotate(ctx); err == nil {
			return
		}
		tn, _ := n.srv.Registry().Get(DefaultTenant)
		if _, err := tn.Rotate(); err != nil {
			t.Logf("node %s rotate: %v (seal still pushed)", n.pusher.node, err)
		}
	}

	// Round 1: all nodes report and rotate; the epoch publishes clean.
	ingestRound(0)
	for _, n := range cluster {
		rotateNode(n)
	}
	checkRound(0, co, coordClient)

	// Round 2: two nodes rotate, then the coordinator dies without a
	// shutdown — epoch 2 is mid-merge in the WAL.
	ingestRound(1)
	rotateNode(cluster[0])
	rotateNode(cluster[1])

	// Kill: abandon the old coordinator (no Close, store left open) and
	// recover a replacement from the same directory.
	co2, rep, err := stream.RecoverCoordinator(stream.CoordinatorConfig{
		Nodes: nodeIDs, Straggler: time.Hour, Store: openReopened(t, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants != 1 || rep.Torn {
		t.Fatalf("unexpected coordinator recovery: %+v", rep)
	}
	coordClient2 := newCoordServer(t, co2)
	for _, n := range cluster {
		n.pusher.dst.Store(coordClient2)
	}

	// The straggler's rotation finishes epoch 2 on the new coordinator.
	rotateNode(cluster[2])
	checkRound(1, co2, coordClient2)

	// Round 3 runs entirely on the recovered coordinator.
	ingestRound(2)
	for _, n := range cluster {
		rotateNode(n)
	}
	checkRound(2, co2, coordClient2)
}

// openReopened reopens a store directory the previous owner never
// closed — the crash idiom: on Linux the old process's open files do
// not block a fresh open.
func openReopened(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Sync: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	return st
}
