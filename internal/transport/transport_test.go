package transport

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

func TestConfigEndpoint(t *testing.T) {
	_, c := newTestServer(t)
	cfg, err := c.Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Eps != 1 || cfg.Eps0 != 0.25 {
		t.Fatalf("config budgets %v/%v", cfg.Eps, cfg.Eps0)
	}
	if len(cfg.Groups) != 3 {
		t.Fatalf("groups = %d", len(cfg.Groups))
	}
	if cfg.Scheme != "EMF*" {
		t.Fatalf("scheme = %q", cfg.Scheme)
	}
	for i, g := range cfg.Groups {
		if g.Reports != 1<<i {
			t.Fatalf("group %d reports %d", i, g.Reports)
		}
	}
}

func TestJoinRoundRobin(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	seen := map[int]int{}
	users := map[string]bool{}
	for i := 0; i < 9; i++ {
		j, err := c.Join(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[j.Group.Index]++
		if users[j.User] {
			t.Fatalf("duplicate user id %s", j.User)
		}
		users[j.User] = true
	}
	for g := 0; g < 3; g++ {
		if seen[g] != 3 {
			t.Fatalf("group %d got %d joins", g, seen[g])
		}
	}
}

func TestReportValidation(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	j, err := c.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(ctx, j.User, 99, []float64{0}); err == nil {
		t.Fatal("bad group accepted")
	}
	if err := c.Report(ctx, j.User, j.Group.Index, nil); err == nil {
		t.Fatal("empty values accepted")
	}
	if err := c.Report(ctx, j.User, j.Group.Index, []float64{1e9}); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	too := make([]float64, j.Group.Reports+1)
	if err := c.Report(ctx, j.User, j.Group.Index, too); err == nil {
		t.Fatal("oversized report accepted")
	}
}

func TestBudgetEnforcement(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	j, err := c.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, j.Group.Reports)
	if err := c.Report(ctx, j.User, j.Group.Index, vals); err != nil {
		t.Fatal(err)
	}
	// The budget is now exhausted: further reports must be rejected.
	err = c.Report(ctx, j.User, j.Group.Index, []float64{0})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget not enforced: %v", err)
	}
}

func TestWrongGroupRejected(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	j, err := c.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	other := (j.Group.Index + 1) % 3
	if err := c.Report(ctx, j.User, other, []float64{0}); err == nil {
		t.Fatal("cross-group report accepted")
	}
}

func TestEndToEndEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end HTTP round is slow")
	}
	_, c := newTestServer(t)
	ctx := context.Background()
	r := rng.New(1)
	const n = 3000
	var sum float64
	for i := 0; i < n; i++ {
		v := rng.Uniform(r, -0.5, 0.1)
		sum += v
		if _, err := c.SubmitValue(ctx, r, v); err != nil {
			t.Fatal(err)
		}
	}
	trueMean := sum / n
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != n {
		t.Fatalf("status users = %d", st.Users)
	}
	est, err := c.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// EMF* imposes the probed γ̂ on every group even without an attack; at
	// n = 3000 the false-positive γ̂ (~0.06) removes that much mass at the
	// probed side, an inherent bias of ~0.1–0.3 depending on the stream
	// (6/20 seeds exceed 0.15). The bound matches TestFacadeEndToEnd's;
	// the γ̂ assertion below keeps the test sensitive to gross EM
	// regressions that the widened mean bound alone would miss.
	if math.Abs(est.Mean-trueMean) > 0.35 {
		t.Fatalf("estimate %v, want ~%v", est.Mean, trueMean)
	}
	if est.Gamma < 0 || est.Gamma > 0.25 {
		t.Fatalf("no-attack false-positive γ̂ = %v, want within [0, 0.25]", est.Gamma)
	}
	var wSum float64
	for _, w := range est.Weights {
		wSum += w
	}
	if math.Abs(wSum-1) > 1e-9 {
		t.Fatalf("weights sum %v", wSum)
	}
}

func TestEstimateFailsOnEmptyCollection(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Estimate(context.Background()); err == nil {
		t.Fatal("estimate on empty collection should fail")
	}
}

func TestSubmitPoisonClamps(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	vals := make([]float64, 64) // longer than any group's slot count
	j, err := c.SubmitPoison(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}
	if j.Group.Reports > 64 {
		t.Fatal("unexpected group layout")
	}
}

func TestServerRejectsBadParams(t *testing.T) {
	if _, err := NewServer(core.Params{Eps: -1, Eps0: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestReportRejectsNaNAndInf(t *testing.T) {
	// NaN/Inf cannot travel in JSON numbers; they surface as either a JSON
	// decode error or a domain rejection — in both cases HTTP 4xx and no
	// state change. Exercise the wire with raw bodies.
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, body := range []string{
		`{"user":"u0","group":0,"values":[NaN]}`,
		`{"user":"u0","group":0,"values":[1e999]}`,
		`{"user":"u0","group":0,"values":["Inf"]}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("body %s → HTTP %d", body, resp.StatusCode)
		}
	}
	st, err := NewClient(ts.URL, ts.Client()).Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range st.GroupReports {
		if n != 0 {
			t.Fatalf("malformed reports landed: %v", st.GroupReports)
		}
	}
}

func TestTenantCRUDAndRoutes(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	// The default tenant is listed.
	ls, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Tenants) != 1 || ls.Tenants[0].Name != DefaultTenant {
		t.Fatalf("tenants = %+v", ls.Tenants)
	}
	// Create a frequency tenant and drive it through its scoped routes.
	created, err := c.CreateTenant(ctx, TenantRequest{
		Name: "clicks", Kind: "freq", Eps: 2, Eps0: 1, K: 3, Scheme: "emfstar",
	})
	if err != nil {
		t.Fatal(err)
	}
	if created.Kind != "frequency" || created.Spec.K != 3 {
		t.Fatalf("created = %+v", created)
	}
	if _, err := c.CreateTenant(ctx, TenantRequest{Name: "clicks", Kind: "freq", Eps: 2, Eps0: 1, K: 3}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := c.CreateTenant(ctx, TenantRequest{Name: "bad", Kind: "nope", Eps: 1, Eps0: 1}); err == nil {
		t.Fatal("bad kind accepted")
	}
	tc := c.Tenant("clicks")
	cfg, err := tc.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != "frequency" || cfg.K != 3 || len(cfg.Groups) != 2 {
		t.Fatalf("config = %+v", cfg)
	}
	// Categories flow through join/report; the default tenant is untouched.
	for i := 0; i < 200; i++ {
		j, err := tc.Join(ctx)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, j.Group.Reports)
		for k := range vals {
			vals[k] = float64(i % 3 / 2) // mostly category 0
		}
		if err := tc.Report(ctx, j.User, j.Group.Index, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.Report(ctx, "u000000", 0, []float64{7}); err == nil {
		t.Fatal("out-of-range category accepted")
	}
	est, err := tc.Estimate(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if est.Kind != "frequency" || len(est.Freqs) != 3 {
		t.Fatalf("estimate = %+v", est)
	}
	if st, err := c.Status(ctx); err != nil || st.Users != 0 {
		t.Fatalf("default tenant leaked state: %+v, %v", st, err)
	}
	// Deletion: the scoped routes disappear; default cannot be deleted.
	if err := c.DeleteTenant(ctx, "clicks"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Status(ctx); err == nil {
		t.Fatal("deleted tenant still served")
	}
	if err := c.DeleteTenant(ctx, DefaultTenant); err == nil {
		t.Fatal("default tenant deleted")
	}
}

func TestBatchIngestAndRotate(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	r := rng.New(8)
	cfg, err := c.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var batch []ReportRequest
	for i := 0; i < 600; i++ {
		g := cfg.Groups[i%len(cfg.Groups)]
		vals := make([]float64, g.Reports)
		for k := range vals {
			vals[k] = rng.Uniform(r, -0.2, 0.2) // in-domain for every group
		}
		batch = append(batch, ReportRequest{
			User: "b" + string(rune('a'+i%26)) + itoa(i), Group: g.Index, Values: vals,
		})
	}
	// Poison one entry so per-entry isolation is visible.
	batch[0].Values = []float64{1e9}
	res, err := c.Ingest(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || len(res.Errors) == 0 {
		t.Fatalf("ingest = %+v", res)
	}
	est, err := c.Rotate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if est.Epoch != 1 || est.Reports != float64(res.Accepted) {
		t.Fatalf("rotate = %+v (accepted %d)", est, res.Accepted)
	}
	// The cached per-epoch estimate now serves reads.
	got, err := c.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.Live {
		t.Fatalf("estimate after rotate = %+v", got)
	}
}

func itoa(i int) string {
	return fmt.Sprintf("%d", i)
}
