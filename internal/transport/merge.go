package transport

import (
	"errors"
	"io"
	"net/http"

	"repro/internal/stream"
	"repro/internal/wirebin"
)

// The merge plane is the scale-out deployment of the collector: node
// collectors seal epochs locally and push the resulting deltas
// (CRC-sealed wirebin frames, media type wirebin.DeltaContentType) to a
// coordinator, which folds them into merged per-epoch estimates through
// the same window path a single collector runs. The routes below exist
// only on a server built with ServerOptions.Coordinator; a plain
// collector serves 404 for them.

// handleMerge accepts one delta frame per request on POST /v1/merge.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if !s.limitBody(w, r) {
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && ct != wirebin.DeltaContentType {
		writeErr(w, http.StatusUnsupportedMediaType,
			"merge expects %s, got %s", wirebin.DeltaContentType, ct)
		return
	}
	frame, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, decodeStatus(err), "reading delta frame: %v", err)
		return
	}
	res, err := s.opts.Coordinator.Apply(frame)
	if err != nil {
		writeMergeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MergeResponse{
		Status: res.Status, Epoch: res.Epoch,
		Published: res.Published, Degraded: res.Degraded,
	})
}

// writeMergeErr maps a merge rejection onto the wire. Frame corruption
// and shape mismatches are permanent (4xx — a retry resends the same
// bytes); only a dead store is retryable.
func writeMergeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, stream.ErrUnknownNode):
		writeErr(w, http.StatusForbidden, "%v", err)
	case errors.Is(err, stream.ErrUnknownTenant):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, stream.ErrShapeMismatch):
		writeErr(w, http.StatusConflict, "%v", err)
	case errors.Is(err, stream.ErrStoreDown):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

// handleMergeEstimate serves the merged estimate of one tenant on
// GET /v1/merge/estimate/{tenant} — the coordinator-side mirror of
// GET /v1/estimate.
func (s *Server) handleMergeEstimate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if name == "" {
		name = DefaultTenant
	}
	snap, err := s.opts.Coordinator.Estimate(name)
	if err != nil {
		if errors.Is(err, stream.ErrUnknownTenant) {
			writeErr(w, http.StatusNotFound, "%v", err)
			return
		}
		writeErr(w, http.StatusConflict, "merged estimate: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse(snap))
}

// mergeStatusInfo renders the coordinator state for the admin plane.
func mergeStatusInfo(c *stream.Coordinator) *MergeStatusInfo {
	st := c.Status()
	out := &MergeStatusInfo{
		Quorum:      st.Quorum,
		StragglerMs: st.Straggler.Milliseconds(),
		Degraded:    st.Degraded,
	}
	for _, n := range st.Nodes {
		info := MergeNodeInfo{Node: n.Node, LastEpoch: n.LastEpoch, Deltas: n.Deltas}
		if !n.LastSeen.IsZero() {
			info.LastSeenMs = n.LastSeen.UnixMilli()
		}
		out.Nodes = append(out.Nodes, info)
	}
	for _, t := range st.Tenants {
		out.Tenants = append(out.Tenants, MergeTenantInfo{
			Tenant: t.Tenant, Published: t.Published, Degraded: t.Degraded,
			Pending: t.Pending, LastError: t.LastError,
		})
	}
	return out
}
