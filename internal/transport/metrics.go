package transport

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// HTTP-layer metric families. Handler pre-binds one routeMetrics per
// route pattern at mux-build time, so the per-request cost is a gauge
// add, a counter increment and two histogram observes on pre-bound
// handles — no label hashing per request.
var (
	metRequests = metrics.NewCounterVec("dap_http_requests_total",
		"HTTP requests served, by route pattern and status class.", "route", "code")
	metReqDur = metrics.NewHistogramVec("dap_http_request_duration_seconds",
		"HTTP request handling latency by route pattern.",
		[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}, "route")
	metReqSize = metrics.NewHistogramVec("dap_http_request_size_bytes",
		"Declared HTTP request body size by route pattern (Content-Length; 0 when absent).",
		[]float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}, "route")
	metInflight = metrics.NewGauge("dap_http_inflight_requests",
		"HTTP requests currently being handled.")
	metClientRetries = metrics.NewCounter("dap_client_retries_total",
		"Client-side request retries performed by transport.Client.")
	metRecovering = metrics.NewGauge("dap_collector_recovering",
		"1 while boot recovery is still running (requests answer 503), else 0.")
	metRecoveryDur = metrics.NewGauge("dap_store_recovery_duration_seconds",
		"Wall-clock duration of the last boot recovery; 0 until one completes.")
)

// statusClasses are the code label values, indexed by status/100.
var statusClasses = [6]string{"1xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics is the pre-bound handle set of one route pattern.
type routeMetrics struct {
	requests [6]*metrics.Counter // by status class
	dur      *metrics.Histogram
	size     *metrics.Histogram
}

func bindRoute(route string) *routeMetrics {
	rm := &routeMetrics{
		dur:  metReqDur.With(route),
		size: metReqSize.With(route),
	}
	for i, class := range statusClasses {
		rm.requests[i] = metRequests.With(route, class)
	}
	return rm
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route handler with metrics and structured request
// logging. route is the path pattern the handler is mounted at (the
// metric label, so per-tenant paths collapse onto one series). The
// wrapper is what the mux invokes, so r.PathValue works inside h.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := bindRoute(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		metInflight.Add(1)
		if r.ContentLength > 0 {
			rm.size.Observe(float64(r.ContentLength))
		} else {
			rm.size.Observe(0)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)
		metInflight.Add(-1)
		rm.dur.Observe(dur.Seconds())
		class := sw.status / 100
		if class < 1 || class > 5 {
			class = 5
		}
		rm.requests[class].Inc()
		logRequest(r, route, sw.status, dur)
	}
}

// logRequest emits one structured line per request: Debug in the normal
// case (free when the level is off — a single Enabled check), Warn for
// server errors so failures surface at default log levels.
func logRequest(r *http.Request, route string, status int, dur time.Duration) {
	level := slog.LevelDebug
	if status >= 500 {
		level = slog.LevelWarn
	}
	if !slog.Default().Enabled(r.Context(), level) {
		return
	}
	attrs := []any{
		"method", r.Method,
		"route", route,
		"status", status,
		"duration_ms", float64(dur.Microseconds()) / 1000,
	}
	if tenant := r.PathValue("tenant"); tenant != "" {
		attrs = append(attrs, "tenant", tenant)
	}
	slog.Log(r.Context(), level, "http request", attrs...)
}

// handleMetrics serves GET /metrics: refresh the scrape-derived gauges,
// then render the process-wide registry in the Prometheus text format.
//
//dapvet:scrape
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	metRecovering.SetBool(s.recovering.Load())
	// Refresh through the installed registry only: while async recovery
	// still runs, Store.Load holds the store mutex across filesystem
	// scans, so polling Health here would block the scrape behind it.
	if reg := s.regP.Load(); reg != nil {
		reg.SyncMetrics()
	}
	if c := s.opts.Coordinator; c != nil {
		c.SyncMetrics()
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = metrics.Default().WriteTo(w)
}
