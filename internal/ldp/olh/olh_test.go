package olh

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := New(1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := New(math.NaN(), 4); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestHashRange(t *testing.T) {
	m := MustNew(1, 10)
	if want := int(math.Exp(1)) + 1; m.G() != want {
		t.Fatalf("G = %d, want %d", m.G(), want)
	}
	for seed := uint64(0); seed < 50; seed++ {
		for c := 0; c < 10; c++ {
			h := m.hash(seed, c)
			if h < 0 || h >= m.G() {
				t.Fatalf("hash out of range: %d", h)
			}
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	m := MustNew(1, 10)
	if m.hash(42, 3) != m.hash(42, 3) {
		t.Fatal("hash not deterministic")
	}
}

func TestPerturbBucketInRange(t *testing.T) {
	r := rng.New(1)
	m := MustNew(1.5, 8)
	for i := 0; i < 2000; i++ {
		rep := m.Perturb(r, i%8)
		if rep.Bucket < 0 || rep.Bucket >= m.G() {
			t.Fatalf("bucket %d out of range", rep.Bucket)
		}
	}
}

func TestPerturbPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(1, 3).Perturb(rng.New(1), 5)
}

func TestEstimateFreqUnbiased(t *testing.T) {
	r := rng.New(2)
	m := MustNew(1, 5)
	trueFreq := []float64{0.4, 0.25, 0.2, 0.1, 0.05}
	const n = 60000
	reports := make([]Report, 0, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		c := 0
		acc := trueFreq[0]
		for u > acc && c < 4 {
			c++
			acc += trueFreq[c]
		}
		reports = append(reports, m.Perturb(r, c))
	}
	est := m.EstimateFreq(reports)
	for j := range est {
		if math.Abs(est[j]-trueFreq[j]) > 0.03 {
			t.Fatalf("cat %d: est %v, want %v", j, est[j], trueFreq[j])
		}
	}
}

func TestEstimateFreqEmpty(t *testing.T) {
	m := MustNew(1, 4)
	for _, e := range m.EstimateFreq(nil) {
		if e != 0 {
			t.Fatal("empty reports should yield zeros")
		}
	}
}

func TestVarMatchesOUE(t *testing.T) {
	// OLH and OUE share the optimized variance 4e^ε/(e^ε−1)².
	m := MustNew(1.2, 6)
	e := math.Exp(1.2)
	want := 4 * e / ((e - 1) * (e - 1))
	if math.Abs(m.Var()-want) > 1e-12 {
		t.Fatalf("Var = %v, want %v", m.Var(), want)
	}
}
