// Package olh implements Optimized Local Hashing (Wang et al., USENIX
// Security 2017), the third classical frequency oracle referenced in the
// paper's related work (§VII) alongside k-RR and OUE.
//
// Each user hashes her category into g = ⌊e^ε⌋+1 buckets with a private
// hash seed, applies g-ary randomized response to the hashed value, and
// reports (seed, perturbed bucket). The collector counts, for each
// category, how many reports hash-match it and debiases.
package olh

import (
	"errors"
	"math"
	"math/rand/v2"
)

// Report is one OLH user report.
type Report struct {
	// Seed selects the user's hash function.
	Seed uint64
	// Bucket is the perturbed hashed value in [0, G).
	Bucket int
}

// Mechanism is an OLH instance for a fixed budget and category count.
type Mechanism struct {
	eps float64
	k   int
	g   int
	p   float64 // keep probability of g-ary RR
	q   float64 // 1/g, probability a non-true bucket is reported
}

// New returns an OLH mechanism over k categories with budget eps.
func New(eps float64, k int) (*Mechanism, error) {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, errors.New("olh: epsilon must be positive and finite")
	}
	if k < 2 {
		return nil, errors.New("olh: need at least two categories")
	}
	g := int(math.Exp(eps)) + 1
	if g < 2 {
		g = 2
	}
	e := math.Exp(eps)
	return &Mechanism{
		eps: eps,
		k:   k,
		g:   g,
		p:   e / (e + float64(g) - 1),
		q:   1 / float64(g),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(eps float64, k int) *Mechanism {
	m, err := New(eps, k)
	if err != nil {
		panic(err)
	}
	return m
}

// Epsilon returns the privacy budget.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// K returns the category count.
func (m *Mechanism) K() int { return m.k }

// G returns the hash range g = ⌊e^ε⌋+1.
func (m *Mechanism) G() int { return m.g }

// hash maps (seed, category) into [0, G) with a splitmix64 finalizer.
// (FNV-1a was tried first but its weak avalanche on single-byte input
// differences biases collisions modulo small g, which skews the
// debiasing; the multiply-xorshift finalizer passes the uniformity
// tests.)
func (m *Mechanism) hash(seed uint64, cat int) int {
	x := seed + (uint64(cat)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(m.g))
}

// Perturb produces one report for category c. It panics if c is out of
// range.
func (m *Mechanism) Perturb(r *rand.Rand, c int) Report {
	if c < 0 || c >= m.k {
		panic("olh: category out of range")
	}
	seed := r.Uint64()
	true_ := m.hash(seed, c)
	e := math.Exp(m.eps)
	// g-ary randomized response over the hash range.
	if r.Float64() < e/(e+float64(m.g)-1) {
		return Report{Seed: seed, Bucket: true_}
	}
	o := r.IntN(m.g - 1)
	if o >= true_ {
		o++
	}
	return Report{Seed: seed, Bucket: o}
}

// EstimateFreq debiases matched-support counts into frequency estimates:
// f̂_j = (match_j/n − q) / (p − q) with q = 1/g.
func (m *Mechanism) EstimateFreq(reports []Report) []float64 {
	out := make([]float64, m.k)
	n := float64(len(reports))
	if n == 0 {
		return out
	}
	for j := 0; j < m.k; j++ {
		var match float64
		for _, rep := range reports {
			if m.hash(rep.Seed, j) == rep.Bucket {
				match++
			}
		}
		out[j] = (match/n - m.q) / (m.p - m.q)
	}
	return out
}

// Var returns the per-report estimator variance proxy of OLH,
// 4e^ε/(e^ε−1)² (equal to OUE's, which is why both are "optimized").
func (m *Mechanism) Var() float64 {
	e := math.Exp(m.eps)
	return 4 * e / ((e - 1) * (e - 1))
}
