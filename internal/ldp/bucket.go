package ldp

// Discretizer maps reported values to histogram bucket indices over a
// mechanism's output domain. It exists so that ingestion paths (the
// streaming collector's wire boundary) can validate and discretize a
// report without materializing a transform matrix, while producing the
// exact same indices as emf.(*Matrix).Counts: the bucket width, its
// reciprocal and the truncating index expression are computed identically,
// so a histogram accumulated report-by-report equals the batch histogram
// bucket-for-bucket.
type Discretizer struct {
	lo, hi float64
	inv    float64 // 1 / bucket width
	n      int
}

// NewDiscretizer builds a discretizer splitting dom into n equal buckets.
// It panics if n < 1 or the domain is empty (caller bugs, not data).
func NewDiscretizer(dom Domain, n int) Discretizer {
	if n < 1 {
		panic("ldp: discretizer needs at least one bucket")
	}
	w := dom.Width() / float64(n)
	if !(w > 0) {
		panic("ldp: discretizer over empty domain")
	}
	return Discretizer{lo: dom.Lo, hi: dom.Hi, inv: 1 / w, n: n}
}

// Buckets returns the bucket count.
func (d Discretizer) Buckets() int { return d.n }

// Index returns the bucket index of v and whether v is acceptable: NaN,
// ±Inf and out-of-domain values are rejected (ok = false) rather than
// clamped — at the wire boundary a report outside the mechanism's output
// domain is evidence of a broken or malicious client, not data. In-domain
// values use the same truncating expression as emf.(*Matrix).Counts, with
// the domain's upper endpoint landing in the last bucket.
func (d Discretizer) Index(v float64) (int, bool) {
	// v != v catches NaN; the closed-interval comparisons catch ±Inf and
	// out-of-domain values.
	if v != v || v < d.lo || v > d.hi {
		return 0, false
	}
	i := int((v - d.lo) * d.inv)
	if i >= d.n {
		i = d.n - 1
	}
	return i, true
}
