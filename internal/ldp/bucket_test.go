package ldp_test

import (
	"math"
	"testing"

	"repro/internal/emf"
	"repro/internal/ldp"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
)

func TestDiscretizerRejectsBadValues(t *testing.T) {
	d := ldp.NewDiscretizer(ldp.Domain{Lo: -2, Hi: 2}, 10)
	if d.Buckets() != 10 {
		t.Fatalf("buckets = %d", d.Buckets())
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -2.0001, 2.0001} {
		if _, ok := d.Index(v); ok {
			t.Fatalf("value %v accepted", v)
		}
	}
	// Closed endpoints are in-domain; the upper one lands in the last bucket.
	if i, ok := d.Index(-2); !ok || i != 0 {
		t.Fatalf("Index(-2) = %d, %v", i, ok)
	}
	if i, ok := d.Index(2); !ok || i != 9 {
		t.Fatalf("Index(2) = %d, %v", i, ok)
	}
}

func TestDiscretizerPanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { ldp.NewDiscretizer(ldp.Domain{Lo: 0, Hi: 1}, 0) },
		func() { ldp.NewDiscretizer(ldp.Domain{Lo: 1, Hi: 1}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

// The streaming collector's load-bearing property: Discretizer produces
// the exact bucket index emf.(*Matrix).Counts would, for every in-domain
// report.
func TestDiscretizerMatchesMatrixCounts(t *testing.T) {
	mech, err := pm.New(0.7)
	if err != nil {
		t.Fatal(err)
	}
	const dprime = 54
	m, err := emf.BuildNumeric(mech, emf.InputBuckets(dprime, mech.C()), dprime)
	if err != nil {
		t.Fatal(err)
	}
	disc := ldp.NewDiscretizer(mech.OutputDomain(), dprime)
	r := rng.New(17)
	dom := mech.OutputDomain()
	for trial := 0; trial < 20000; trial++ {
		v := rng.Uniform(r, dom.Lo, dom.Hi)
		if trial%1000 == 0 {
			v = dom.Lo // exercise the boundary
		}
		if trial%1000 == 1 {
			v = dom.Hi
		}
		i, ok := disc.Index(v)
		if !ok {
			t.Fatalf("in-domain value %v rejected", v)
		}
		c := m.Counts([]float64{v})
		if c[i] != 1 {
			t.Fatalf("value %v: Discretizer bucket %d, Counts bucket elsewhere", v, i)
		}
	}
}
