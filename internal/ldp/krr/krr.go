// Package krr implements k-ary Randomized Response (generalized RR), the
// categorical LDP mechanism used by the DAP paper's frequency-estimation
// extension (§V-D, Fig. 9(c)(d)).
//
// A report keeps the true category with probability p = e^ε/(e^ε+k−1) and
// otherwise outputs one of the remaining k−1 categories uniformly, each
// with probability q = 1/(e^ε+k−1).
package krr

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ldp"
)

// Mechanism is a k-RR instance for a fixed budget and category count.
type Mechanism struct {
	eps float64
	k   int
	p   float64
	q   float64
}

// New returns a k-RR mechanism over k categories with budget eps.
func New(eps float64, k int) (*Mechanism, error) {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, errors.New("krr: epsilon must be positive and finite")
	}
	if k < 2 {
		return nil, errors.New("krr: need at least two categories")
	}
	e := math.Exp(eps)
	return &Mechanism{
		eps: eps,
		k:   k,
		p:   e / (e + float64(k) - 1),
		q:   1 / (e + float64(k) - 1),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(eps float64, k int) *Mechanism {
	m, err := New(eps, k)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements ldp.Categorical.
func (m *Mechanism) Name() string { return fmt.Sprintf("kRR(ε=%g,k=%d)", m.eps, m.k) }

// Epsilon implements ldp.Categorical.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// K implements ldp.Categorical.
func (m *Mechanism) K() int { return m.k }

// P returns the keep probability e^ε/(e^ε+k−1).
func (m *Mechanism) P() float64 { return m.p }

// Q returns the flip probability 1/(e^ε+k−1).
func (m *Mechanism) Q() float64 { return m.q }

// PerturbCat implements ldp.Categorical. It panics if c is out of range.
func (m *Mechanism) PerturbCat(r *rand.Rand, c int) int {
	if c < 0 || c >= m.k {
		panic("krr: category out of range")
	}
	if r.Float64() < m.p {
		return c
	}
	// Uniform over the other k−1 categories.
	o := r.IntN(m.k - 1)
	if o >= c {
		o++
	}
	return o
}

// TransitionProb implements ldp.Categorical.
func (m *Mechanism) TransitionProb(from, to int) float64 {
	if from == to {
		return m.p
	}
	return m.q
}

// EstimateFreq converts observed report counts into unbiased frequency
// estimates: f̂_j = (c_j/n − q)/(p−q). Estimates may be slightly negative;
// callers that need a distribution should clamp and renormalize.
func (m *Mechanism) EstimateFreq(counts []float64) []float64 {
	n := 0.0
	for _, c := range counts {
		n += c
	}
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for j, c := range counts {
		out[j] = (c/n - m.q) / (m.p - m.q)
	}
	return out
}

// WorstCaseVar returns an upper bound on n·Var(f̂_j) for a single category,
// 1/(4(p−q)²), used as the per-report variance proxy when aggregating
// frequency estimates across DAP groups.
func (m *Mechanism) WorstCaseVar() float64 {
	d := m.p - m.q
	return 1 / (4 * d * d)
}

var _ ldp.Categorical = (*Mechanism)(nil)
