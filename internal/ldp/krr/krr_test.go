package krr

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Fatal("eps=0 should fail")
	}
	if _, err := New(1, 1); err == nil {
		t.Fatal("k=1 should fail")
	}
	if _, err := New(math.NaN(), 4); err == nil {
		t.Fatal("NaN eps should fail")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	m := MustNew(1.3, 7)
	for from := 0; from < 7; from++ {
		var total float64
		for to := 0; to < 7; to++ {
			total += m.TransitionProb(from, to)
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", from, total)
		}
	}
}

func TestLDPRatio(t *testing.T) {
	m := MustNew(0.8, 5)
	bound := math.Exp(0.8) + 1e-12
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			for out := 0; out < 5; out++ {
				r := m.TransitionProb(a, out) / m.TransitionProb(b, out)
				if r > bound {
					t.Fatalf("ratio %v exceeds e^ε", r)
				}
			}
		}
	}
}

func TestPerturbCatDistribution(t *testing.T) {
	r := rng.New(1)
	m := MustNew(1, 4)
	const n = 200000
	counts := make([]float64, 4)
	for i := 0; i < n; i++ {
		counts[m.PerturbCat(r, 2)]++
	}
	for j := range counts {
		want := m.TransitionProb(2, j)
		if got := counts[j] / n; math.Abs(got-want) > 0.005 {
			t.Fatalf("cat %d: got %v, want %v", j, got, want)
		}
	}
}

func TestPerturbCatPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(1, 3).PerturbCat(rng.New(1), 3)
}

func TestEstimateFreqUnbiased(t *testing.T) {
	r := rng.New(2)
	m := MustNew(1, 5)
	trueFreq := []float64{0.5, 0.2, 0.15, 0.1, 0.05}
	const n = 500000
	counts := make([]float64, 5)
	for i := 0; i < n; i++ {
		u := r.Float64()
		c := 0
		acc := trueFreq[0]
		for u > acc && c < 4 {
			c++
			acc += trueFreq[c]
		}
		counts[m.PerturbCat(r, c)]++
	}
	est := m.EstimateFreq(counts)
	for j := range est {
		if math.Abs(est[j]-trueFreq[j]) > 0.01 {
			t.Fatalf("cat %d: est %v, want %v", j, est[j], trueFreq[j])
		}
	}
}

func TestEstimateFreqEmpty(t *testing.T) {
	m := MustNew(1, 3)
	est := m.EstimateFreq([]float64{0, 0, 0})
	for _, e := range est {
		if e != 0 {
			t.Fatalf("empty counts should estimate 0, got %v", est)
		}
	}
}

func TestWorstCaseVarDecreasesWithEps(t *testing.T) {
	lo := MustNew(0.5, 10).WorstCaseVar()
	hi := MustNew(2, 10).WorstCaseVar()
	if hi >= lo {
		t.Fatalf("variance should shrink with larger ε: %v vs %v", hi, lo)
	}
}
