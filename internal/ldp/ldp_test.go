package ldp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// triMech is a minimal PDFer with a triangular output density on [0,1]
// (independent of the input), used to exercise Moments directly.
type triMech struct{}

func (triMech) Name() string         { return "tri" }
func (triMech) Epsilon() float64     { return 1 }
func (triMech) InputDomain() Domain  { return Domain{Lo: 0, Hi: 1} }
func (triMech) OutputDomain() Domain { return Domain{Lo: 0, Hi: 1} }
func (triMech) Perturb(r *rand.Rand, v float64) float64 {
	return 1 - math.Sqrt(1-r.Float64())
}
func (triMech) PDF(_, out float64) float64 {
	if out < 0 || out > 1 {
		return 0
	}
	return 2 * (1 - out)
}

var _ PDFer = triMech{}

func TestDomainBasics(t *testing.T) {
	d := Domain{Lo: -2, Hi: 4}
	if d.Width() != 6 {
		t.Fatalf("Width = %v", d.Width())
	}
	if d.Mid() != 1 {
		t.Fatalf("Mid = %v", d.Mid())
	}
	if !d.Contains(-2) || !d.Contains(4) || d.Contains(4.1) || d.Contains(-2.1) {
		t.Fatal("Contains broken")
	}
	if d.Clamp(9) != 4 || d.Clamp(-9) != -2 || d.Clamp(0) != 0 {
		t.Fatal("Clamp broken")
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap(0, 2, 1, 3); got != 1 {
		t.Fatalf("Overlap = %v", got)
	}
	if got := Overlap(0, 1, 2, 3); got != 0 {
		t.Fatalf("disjoint = %v", got)
	}
	if got := Overlap(0, 4, 1, 2); got != 1 {
		t.Fatalf("contained = %v", got)
	}
	if got := Overlap(1, 1, 0, 2); got != 0 {
		t.Fatalf("degenerate = %v", got)
	}
}

// Property: Overlap is symmetric in its interval arguments.
func TestOverlapSymmetryProperty(t *testing.T) {
	f := func(a1, b1, a2, b2 int8) bool {
		x1, y1 := float64(a1), float64(a1)+math.Abs(float64(b1))
		x2, y2 := float64(a2), float64(a2)+math.Abs(float64(b2))
		return Overlap(x1, y1, x2, y2) == Overlap(x2, y2, x1, y1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the overlap never exceeds either interval's length.
func TestOverlapBoundProperty(t *testing.T) {
	f := func(a1, w1, a2, w2 uint8) bool {
		x1, y1 := float64(a1), float64(a1)+float64(w1)
		x2, y2 := float64(a2), float64(a2)+float64(w2)
		o := Overlap(x1, y1, x2, y2)
		return o >= 0 && o <= float64(w1)+1e-12 && o <= float64(w2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// momentsOf mirrors Moments' quadrature for a bare density function so the
// quadrature itself is validated against a known closed form.
func momentsOf(pdf func(float64) float64, d Domain, steps int) (mean, variance float64) {
	w := d.Width() / float64(steps)
	var m0, m1, m2 float64
	for i := 0; i < steps; i++ {
		x := d.Lo + (float64(i)+0.5)*w
		p := pdf(x) * w
		m0 += p
		m1 += p * x
		m2 += p * x * x
	}
	mean = m1 / m0
	variance = m2/m0 - mean*mean
	return mean, variance
}

func TestMomentsQuadratureUniform(t *testing.T) {
	mean, variance := momentsOf(func(out float64) float64 {
		if out < 0 || out > 1 {
			return 0
		}
		return 1
	}, Domain{Lo: 0, Hi: 1}, 100000)
	if math.Abs(mean-0.5) > 1e-6 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 1e-6 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestMomentsOnPDFer(t *testing.T) {
	mean, variance := Moments(triMech{}, 0.5, 50000)
	if math.Abs(mean-1.0/3) > 1e-5 {
		t.Fatalf("mean = %v, want 1/3", mean)
	}
	if math.Abs(variance-1.0/18) > 1e-5 {
		t.Fatalf("variance = %v, want 1/18", variance)
	}
}

func TestMomentsZeroDensity(t *testing.T) {
	// A PDF that is zero everywhere must not divide by zero.
	mean, variance := Moments(zeroMech{}, 0, 100)
	if mean != 0 || variance != 0 {
		t.Fatalf("zero density moments = %v, %v", mean, variance)
	}
}

type zeroMech struct{}

func (zeroMech) Name() string                            { return "zero" }
func (zeroMech) Epsilon() float64                        { return 1 }
func (zeroMech) InputDomain() Domain                     { return Domain{Lo: 0, Hi: 1} }
func (zeroMech) OutputDomain() Domain                    { return Domain{Lo: 0, Hi: 1} }
func (zeroMech) Perturb(_ *rand.Rand, v float64) float64 { return v }
func (zeroMech) PDF(_, _ float64) float64                { return 0 }

func TestMomentsQuadratureTriangular(t *testing.T) {
	// Triangular density on [0,1] with peak at 0: f(x) = 2(1−x);
	// mean = 1/3, variance = 1/18.
	mean, variance := momentsOf(func(out float64) float64 {
		if out < 0 || out > 1 {
			return 0
		}
		return 2 * (1 - out)
	}, Domain{Lo: 0, Hi: 1}, 100000)
	if math.Abs(mean-1.0/3) > 1e-6 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-1.0/18) > 1e-6 {
		t.Fatalf("variance = %v", variance)
	}
}
