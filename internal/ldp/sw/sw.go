// Package sw implements the Square Wave mechanism (Li et al., SIGMOD 2020)
// used by the DAP paper's §V-D extension for distribution estimation.
//
// Given an input v ∈ [0,1] and budget ε, the output lies in [−b, 1+b] with
// b = (εe^ε − e^ε + 1)/(2e^ε(e^ε − 1 − ε)). The density is p on the "near"
// band [v−b, v+b] and q elsewhere, with p = e^ε·q and 2bp + q = 1.
package sw

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ldp"
)

// Mechanism is a Square Wave instance for a fixed budget.
type Mechanism struct {
	eps float64
	b   float64
	p   float64 // density inside [v−b, v+b]
	q   float64 // density outside
}

// New returns a Square Wave mechanism with privacy budget eps.
func New(eps float64) (*Mechanism, error) {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, errors.New("sw: epsilon must be positive and finite")
	}
	e := math.Exp(eps)
	den := 2 * e * (e - 1 - eps)
	var b float64
	if den < 1e-300 {
		// ε→0 limit of the closed form is 1/2.
		b = 0.5
	} else {
		b = (eps*e - e + 1) / den
	}
	q := 1 / (2*b*e + 1)
	return &Mechanism{eps: eps, b: b, p: e * q, q: q}, nil
}

// MustNew is New but panics on error.
func MustNew(eps float64) *Mechanism {
	m, err := New(eps)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements ldp.Mechanism.
func (m *Mechanism) Name() string { return fmt.Sprintf("SW(ε=%g)", m.eps) }

// Epsilon implements ldp.Mechanism.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// B returns the half-width b of the near band.
func (m *Mechanism) B() float64 { return m.b }

// InputDomain implements ldp.Mechanism.
func (m *Mechanism) InputDomain() ldp.Domain { return ldp.Domain{Lo: 0, Hi: 1} }

// OutputDomain implements ldp.Mechanism.
func (m *Mechanism) OutputDomain() ldp.Domain { return ldp.Domain{Lo: -m.b, Hi: 1 + m.b} }

// Perturb implements the Square Wave sampling rule.
func (m *Mechanism) Perturb(r *rand.Rand, v float64) float64 {
	v = m.InputDomain().Clamp(v)
	pNear := 2 * m.b * m.p
	if r.Float64() < pNear {
		return v - m.b + 2*m.b*r.Float64()
	}
	// Uniform over [−b, v−b) ∪ (v+b, 1+b], proportional to lengths.
	left := v // (v−b) − (−b)
	right := 1 - v
	u := r.Float64() * (left + right)
	if u < left {
		return -m.b + u
	}
	return v + m.b + (u - left)
}

// PDF returns the output density at out given input v.
func (m *Mechanism) PDF(v, out float64) float64 {
	v = m.InputDomain().Clamp(v)
	if out < -m.b || out > 1+m.b {
		return 0
	}
	if out >= v-m.b && out <= v+m.b {
		return m.p
	}
	return m.q
}

// IntervalProb returns Pr[output ∈ [a,b] | input v] in closed form.
func (m *Mechanism) IntervalProb(v, a, b float64) float64 {
	v = m.InputDomain().Clamp(v)
	if b < a {
		a, b = b, a
	}
	a = math.Max(a, -m.b)
	b = math.Min(b, 1+m.b)
	if b <= a {
		return 0
	}
	in := ldp.Overlap(a, b, v-m.b, v+m.b)
	return in*m.p + (b-a-in)*m.q
}

// WorstCaseVar returns the per-report output variance at the worst-case
// input (v ∈ {0,1} by symmetry), computed by numeric quadrature. SW's mean
// estimate comes from a reconstructed histogram rather than a sample mean,
// so this serves only as a relative group weight.
func (m *Mechanism) WorstCaseVar() float64 {
	_, v0 := ldp.Moments(m, 0, 8192)
	_, v1 := ldp.Moments(m, 1, 8192)
	return math.Max(v0, v1)
}

var (
	_ ldp.Mechanism      = (*Mechanism)(nil)
	_ ldp.IntervalProber = (*Mechanism)(nil)
	_ ldp.PDFer          = (*Mechanism)(nil)
)
