package sw

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewRejectsBadEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -2, math.Inf(1), math.NaN()} {
		if _, err := New(eps); err == nil {
			t.Fatalf("New(%v) should fail", eps)
		}
	}
}

func TestBFormula(t *testing.T) {
	m := MustNew(1)
	e := math.E
	want := (e - e + 1) / (2 * e * (e - 2)) // ε=1: (1·e − e + 1) / (2e(e−1−1))
	if math.Abs(m.B()-want) > 1e-12 {
		t.Fatalf("b = %v, want %v", m.B(), want)
	}
}

func TestDensityNormalization(t *testing.T) {
	for _, eps := range []float64{0.0625, 0.5, 1, 2} {
		m := MustNew(eps)
		// 2b·p + 1·q must equal 1.
		total := 2*m.b*m.p + m.q
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("eps=%v: density integral %v, want 1", eps, total)
		}
		if math.Abs(m.p/m.q-math.Exp(eps)) > 1e-9 {
			t.Fatalf("eps=%v: p/q = %v, want e^ε", eps, m.p/m.q)
		}
	}
}

func TestOutputWithinDomain(t *testing.T) {
	r := rng.New(1)
	for _, eps := range []float64{0.25, 1, 3} {
		m := MustNew(eps)
		d := m.OutputDomain()
		for i := 0; i < 3000; i++ {
			out := m.Perturb(r, rng.Uniform(r, 0, 1))
			if !d.Contains(out) {
				t.Fatalf("eps=%v: output %v outside [%v,%v]", eps, out, d.Lo, d.Hi)
			}
		}
	}
}

func TestIntervalProbPartition(t *testing.T) {
	m := MustNew(0.75)
	lo, hi := -m.B(), 1+m.B()
	for _, v := range []float64{0, 0.33, 1} {
		var total float64
		const k = 41
		for i := 0; i < k; i++ {
			a := lo + (hi-lo)*float64(i)/k
			b := lo + (hi-lo)*float64(i+1)/k
			total += m.IntervalProb(v, a, b)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("v=%v: partition sums to %v", v, total)
		}
	}
}

func TestIntervalProbMatchesEmpirical(t *testing.T) {
	r := rng.New(2)
	m := MustNew(1)
	v := 0.6
	a, b := 0.3, 0.9
	want := m.IntervalProb(v, a, b)
	const n = 300000
	hits := 0
	for i := 0; i < n; i++ {
		out := m.Perturb(r, v)
		if out >= a && out <= b {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-want) > 0.005 {
		t.Fatalf("empirical %v, closed form %v", got, want)
	}
}

func TestNearBandConcentration(t *testing.T) {
	r := rng.New(3)
	m := MustNew(2)
	v := 0.5
	const n = 100000
	near := 0
	for i := 0; i < n; i++ {
		out := m.Perturb(r, v)
		if out >= v-m.B() && out <= v+m.B() {
			near++
		}
	}
	want := 2 * m.b * m.p
	if got := float64(near) / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("near-band mass %v, want %v", got, want)
	}
}

func TestLDPRatioProperty(t *testing.T) {
	m := MustNew(0.9)
	bound := math.Exp(m.Epsilon()) * (1 + 1e-9)
	f := func(v1i, v2i, oi uint16) bool {
		v1 := float64(v1i) / math.MaxUint16
		v2 := float64(v2i) / math.MaxUint16
		out := -m.B() + (1+2*m.B())*float64(oi)/math.MaxUint16
		p1 := m.PDF(v1, out)
		p2 := m.PDF(v2, out)
		if p1 == 0 && p2 == 0 {
			return true
		}
		return p1 <= bound*p2 && p2 <= bound*p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseVarPositive(t *testing.T) {
	m := MustNew(1)
	if v := m.WorstCaseVar(); v <= 0 || v > 1 {
		t.Fatalf("WorstCaseVar = %v, expected in (0,1]", v)
	}
}
