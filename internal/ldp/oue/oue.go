// Package oue implements Optimized Unary Encoding (Wang et al., USENIX
// Security 2017), a categorical frequency oracle included as an extension
// substrate referenced in the paper's related work (§VII).
//
// Each user encodes a category as a one-hot bit vector and perturbs each
// bit independently: the true bit stays 1 with probability 1/2 and any
// other bit turns 1 with probability 1/(e^ε+1).
package oue

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// Mechanism is an OUE instance for a fixed budget and category count.
type Mechanism struct {
	eps float64
	k   int
	p   float64 // Pr[bit=1 | true bit], = 1/2
	q   float64 // Pr[bit=1 | other bit], = 1/(e^ε+1)
}

// New returns an OUE mechanism over k categories with budget eps.
func New(eps float64, k int) (*Mechanism, error) {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, errors.New("oue: epsilon must be positive and finite")
	}
	if k < 2 {
		return nil, errors.New("oue: need at least two categories")
	}
	return &Mechanism{eps: eps, k: k, p: 0.5, q: 1 / (math.Exp(eps) + 1)}, nil
}

// MustNew is New but panics on error.
func MustNew(eps float64, k int) *Mechanism {
	m, err := New(eps, k)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns a human-readable identifier.
func (m *Mechanism) Name() string { return fmt.Sprintf("OUE(ε=%g,k=%d)", m.eps, m.k) }

// Epsilon returns the privacy budget.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// K returns the category count.
func (m *Mechanism) K() int { return m.k }

// Perturb encodes category c as a perturbed bit vector. It panics if c is
// out of range.
func (m *Mechanism) Perturb(r *rand.Rand, c int) []bool {
	if c < 0 || c >= m.k {
		panic("oue: category out of range")
	}
	bits := make([]bool, m.k)
	for j := range bits {
		keep := m.q
		if j == c {
			keep = m.p
		}
		bits[j] = r.Float64() < keep
	}
	return bits
}

// Aggregate sums perturbed bit vectors into per-category 1-counts.
func Aggregate(reports [][]bool, k int) []float64 {
	counts := make([]float64, k)
	for _, rep := range reports {
		for j, b := range rep {
			if b && j < k {
				counts[j]++
			}
		}
	}
	return counts
}

// EstimateFreq converts per-category 1-counts over n reports into unbiased
// frequency estimates: f̂_j = (c_j/n − q)/(p − q).
func (m *Mechanism) EstimateFreq(counts []float64, n float64) []float64 {
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for j, c := range counts {
		out[j] = (c/n - m.q) / (m.p - m.q)
	}
	return out
}

// Var returns the per-report estimator variance proxy of OUE,
// 4e^ε/(e^ε−1)² (the classical OUE variance bound, independent of f).
func (m *Mechanism) Var() float64 {
	e := math.Exp(m.eps)
	return 4 * e / ((e - 1) * (e - 1))
}
