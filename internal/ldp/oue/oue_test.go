package oue

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("eps=0 should fail")
	}
	if _, err := New(1, 1); err == nil {
		t.Fatal("k=1 should fail")
	}
}

func TestPerturbShape(t *testing.T) {
	r := rng.New(1)
	m := MustNew(1, 6)
	bits := m.Perturb(r, 3)
	if len(bits) != 6 {
		t.Fatalf("len = %d", len(bits))
	}
}

func TestPerturbPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(1, 3).Perturb(rng.New(1), -1)
}

func TestBitProbabilities(t *testing.T) {
	r := rng.New(2)
	m := MustNew(1, 4)
	const n = 200000
	ones := make([]float64, 4)
	for i := 0; i < n; i++ {
		for j, b := range m.Perturb(r, 1) {
			if b {
				ones[j]++
			}
		}
	}
	for j := range ones {
		want := m.q
		if j == 1 {
			want = m.p
		}
		if got := ones[j] / n; math.Abs(got-want) > 0.005 {
			t.Fatalf("bit %d rate %v, want %v", j, got, want)
		}
	}
}

func TestEstimateFreqUnbiased(t *testing.T) {
	r := rng.New(3)
	m := MustNew(1.5, 5)
	trueFreq := []float64{0.4, 0.3, 0.15, 0.1, 0.05}
	const n = 300000
	reports := make([][]bool, 0, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		c := 0
		acc := trueFreq[0]
		for u > acc && c < 4 {
			c++
			acc += trueFreq[c]
		}
		reports = append(reports, m.Perturb(r, c))
	}
	counts := Aggregate(reports, 5)
	est := m.EstimateFreq(counts, n)
	for j := range est {
		if math.Abs(est[j]-trueFreq[j]) > 0.015 {
			t.Fatalf("cat %d: est %v, want %v", j, est[j], trueFreq[j])
		}
	}
}

func TestEstimateFreqEmpty(t *testing.T) {
	m := MustNew(1, 3)
	for _, e := range m.EstimateFreq([]float64{1, 2, 3}, 0) {
		if e != 0 {
			t.Fatal("n=0 should yield zeros")
		}
	}
}

func TestVarDecreasesWithEps(t *testing.T) {
	if MustNew(2, 8).Var() >= MustNew(0.5, 8).Var() {
		t.Fatal("variance should shrink with larger ε")
	}
}
