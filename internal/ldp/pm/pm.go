// Package pm implements the Piecewise Mechanism (Wang et al., ICDE 2019),
// the default numerical perturbation mechanism of the DAP paper
// (Algorithm 1).
//
// Given an input v ∈ [−1,1] and budget ε, the output v′ ∈ [−C,C] with
// C = (e^{ε/2}+1)/(e^{ε/2}−1) is sampled uniformly from the "high" band
// [l(v), r(v)] with probability e^{ε/2}/(e^{ε/2}+1) and uniformly from the
// remaining two segments otherwise, where l(v) = (C+1)v/2 − (C−1)/2 and
// r(v) = l(v) + C − 1. Each report is an unbiased estimator of v.
package pm

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ldp"
)

// Mechanism is a Piecewise Mechanism instance for a fixed budget.
type Mechanism struct {
	eps       float64
	c         float64 // output bound C
	thresh    float64 // probability of the high band: e^{ε/2}/(e^{ε/2}+1)
	dIn       float64 // density inside [l, r]
	dOut      float64 // density outside
	invThresh float64 // 1/thresh, hoisted off the Perturb hot path
	invTail   float64 // 1/(1−thresh)
}

// New returns a Piecewise Mechanism with privacy budget eps.
func New(eps float64) (*Mechanism, error) {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, errors.New("pm: epsilon must be positive and finite")
	}
	e2 := math.Exp(eps / 2)
	c := (e2 + 1) / (e2 - 1)
	thresh := e2 / (e2 + 1)
	return &Mechanism{
		eps:       eps,
		c:         c,
		thresh:    thresh,
		dIn:       thresh / (c - 1),
		dOut:      (1 - thresh) / (c + 1),
		invThresh: 1 / thresh,
		invTail:   1 / (1 - thresh),
	}, nil
}

// MustNew is New but panics on error; for use with compile-time constants.
func MustNew(eps float64) *Mechanism {
	m, err := New(eps)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements ldp.Mechanism.
func (m *Mechanism) Name() string { return fmt.Sprintf("PM(ε=%g)", m.eps) }

// Epsilon implements ldp.Mechanism.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// C returns the output-domain bound C = (e^{ε/2}+1)/(e^{ε/2}−1).
func (m *Mechanism) C() float64 { return m.c }

// InputDomain implements ldp.Mechanism.
func (m *Mechanism) InputDomain() ldp.Domain { return ldp.Domain{Lo: -1, Hi: 1} }

// OutputDomain implements ldp.Mechanism.
func (m *Mechanism) OutputDomain() ldp.Domain { return ldp.Domain{Lo: -m.c, Hi: m.c} }

// Band returns the high-probability band [l(v), r(v)] for input v.
func (m *Mechanism) Band(v float64) (l, r float64) {
	l = (m.c+1)/2*v - (m.c-1)/2
	return l, l + m.c - 1
}

// Perturb implements Algorithm 1 of the paper. It consumes a single
// uniform draw: conditioned on u < thresh, u/thresh is again U[0,1) (and
// (u−thresh)/(1−thresh) in the complementary branch), so the branch
// selector is recycled as the position inside the selected segment — an
// exact distributional identity, not an approximation. Halving the
// generator traffic is measurable when the Monte-Carlo harness perturbs
// millions of values per experiment.
func (m *Mechanism) Perturb(r *rand.Rand, v float64) float64 {
	if v < -1 {
		v = -1
	} else if v > 1 {
		v = 1
	}
	l, rr := m.Band(v)
	u := r.Float64()
	if u < m.thresh {
		return l + (rr-l)*(u*m.invThresh)
	}
	// Uniform over [−C, l) ∪ (r, C], proportional to segment lengths.
	left := l + m.c
	right := m.c - rr
	t := (u - m.thresh) * m.invTail * (left + right)
	if t < left {
		return -m.c + t
	}
	return rr + (t - left)
}

// PDF returns the output density at out given input v.
func (m *Mechanism) PDF(v, out float64) float64 {
	v = m.InputDomain().Clamp(v)
	if out < -m.c || out > m.c {
		return 0
	}
	l, r := m.Band(v)
	if out >= l && out <= r {
		return m.dIn
	}
	return m.dOut
}

// IntervalProb returns Pr[output ∈ [a,b] | input v] in closed form.
func (m *Mechanism) IntervalProb(v, a, b float64) float64 {
	v = m.InputDomain().Clamp(v)
	if b < a {
		a, b = b, a
	}
	a = math.Max(a, -m.c)
	b = math.Min(b, m.c)
	if b <= a {
		return 0
	}
	l, r := m.Band(v)
	in := ldp.Overlap(a, b, l, r)
	return in*m.dIn + (b-a-in)*m.dOut
}

// Var returns the closed-form variance of a single report given input v:
// v²/(e^{ε/2}−1) + (e^{ε/2}+3)/(3(e^{ε/2}−1)²).
func (m *Mechanism) Var(v float64) float64 {
	e2 := math.Exp(m.eps / 2)
	return v*v/(e2-1) + (e2+3)/(3*(e2-1)*(e2-1))
}

// WorstCaseVar returns the worst-case per-report variance, attained at
// v = ±1; this is the B_t ingredient of Algorithm 5.
func (m *Mechanism) WorstCaseVar() float64 { return m.Var(1) }

var (
	_ ldp.Mechanism      = (*Mechanism)(nil)
	_ ldp.IntervalProber = (*Mechanism)(nil)
	_ ldp.PDFer          = (*Mechanism)(nil)
)
