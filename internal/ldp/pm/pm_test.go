package pm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldp"
	"repro/internal/rng"
)

func TestNewRejectsBadEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(eps); err == nil {
			t.Fatalf("New(%v) should fail", eps)
		}
	}
}

func TestCFormula(t *testing.T) {
	m := MustNew(2)
	e := math.Exp(1.0)
	want := (e + 1) / (e - 1)
	if math.Abs(m.C()-want) > 1e-12 {
		t.Fatalf("C = %v, want %v", m.C(), want)
	}
}

func TestOutputWithinDomain(t *testing.T) {
	r := rng.New(1)
	for _, eps := range []float64{0.0625, 0.5, 1, 2, 5} {
		m := MustNew(eps)
		d := m.OutputDomain()
		for i := 0; i < 2000; i++ {
			v := rng.Uniform(r, -1, 1)
			out := m.Perturb(r, v)
			if !d.Contains(out) {
				t.Fatalf("eps=%v: output %v outside [%v,%v]", eps, out, d.Lo, d.Hi)
			}
		}
	}
}

func TestPerturbClampsInput(t *testing.T) {
	r := rng.New(2)
	m := MustNew(1)
	out := m.Perturb(r, 5) // clamped to 1
	if !m.OutputDomain().Contains(out) {
		t.Fatalf("clamped input produced out-of-domain output %v", out)
	}
}

func TestUnbiasedness(t *testing.T) {
	r := rng.New(3)
	for _, v := range []float64{-1, -0.4, 0, 0.3, 1} {
		m := MustNew(1)
		const n = 400000
		var sum float64
		for i := 0; i < n; i++ {
			sum += m.Perturb(r, v)
		}
		se := math.Sqrt(m.Var(v) / n)
		if got := sum / n; math.Abs(got-v) > 6*se {
			t.Fatalf("mean of PM(%v) = %v, want %v (±%v)", v, got, v, 6*se)
		}
	}
}

func TestVarMatchesNumericMoments(t *testing.T) {
	for _, eps := range []float64{0.25, 1, 2} {
		m := MustNew(eps)
		for _, v := range []float64{-1, 0, 0.7} {
			mean, variance := ldp.Moments(m, v, 200000)
			if math.Abs(mean-v) > 1e-3 {
				t.Fatalf("eps=%v v=%v: numeric mean %v", eps, v, mean)
			}
			if rel := math.Abs(variance-m.Var(v)) / m.Var(v); rel > 1e-3 {
				t.Fatalf("eps=%v v=%v: numeric var %v, closed form %v", eps, v, variance, m.Var(v))
			}
		}
	}
}

func TestEmpiricalVariance(t *testing.T) {
	r := rng.New(4)
	m := MustNew(1)
	const n = 400000
	v := 0.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := m.Perturb(r, v)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	got := sumSq/n - mean*mean
	want := m.Var(v)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("empirical var %v, want %v", got, want)
	}
}

func TestWorstCaseVar(t *testing.T) {
	m := MustNew(1)
	if m.WorstCaseVar() != m.Var(1) {
		t.Fatal("WorstCaseVar should equal Var(1)")
	}
	if m.WorstCaseVar() <= m.Var(0) {
		t.Fatal("worst case should exceed Var(0)")
	}
}

func TestIntervalProbPartition(t *testing.T) {
	m := MustNew(0.8)
	c := m.C()
	for _, v := range []float64{-1, -0.2, 0.9} {
		var total float64
		const k = 37
		for i := 0; i < k; i++ {
			a := -c + 2*c*float64(i)/k
			b := -c + 2*c*float64(i+1)/k
			total += m.IntervalProb(v, a, b)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("v=%v: partition sums to %v, want 1", v, total)
		}
	}
}

func TestIntervalProbMatchesEmpirical(t *testing.T) {
	r := rng.New(5)
	m := MustNew(1.5)
	v := 0.3
	a, b := -0.5, 1.2
	want := m.IntervalProb(v, a, b)
	const n = 300000
	hits := 0
	for i := 0; i < n; i++ {
		out := m.Perturb(r, v)
		if out >= a && out <= b {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("empirical interval prob %v, closed form %v", got, want)
	}
}

func TestIntervalProbDegenerate(t *testing.T) {
	m := MustNew(1)
	if got := m.IntervalProb(0, 2*m.C(), 3*m.C()); got != 0 {
		t.Fatalf("outside-domain interval prob = %v, want 0", got)
	}
	if got := m.IntervalProb(0, 0.5, 0.5); got != 0 {
		t.Fatalf("empty interval prob = %v, want 0", got)
	}
	// Swapped bounds are normalized.
	if got, want := m.IntervalProb(0, 0.5, -0.5), m.IntervalProb(0, -0.5, 0.5); got != want {
		t.Fatalf("swapped bounds: %v != %v", got, want)
	}
}

// Property: the ε-LDP guarantee holds — for any two inputs and any output,
// the density ratio is bounded by e^ε.
func TestLDPRatioProperty(t *testing.T) {
	m := MustNew(1.2)
	bound := math.Exp(m.Epsilon()) * (1 + 1e-9)
	f := func(v1i, v2i, oi int16) bool {
		v1 := float64(v1i) / float64(math.MaxInt16)
		v2 := float64(v2i) / float64(math.MaxInt16)
		out := float64(oi) / float64(math.MaxInt16) * m.C()
		p1 := m.PDF(v1, out)
		p2 := m.PDF(v2, out)
		if p1 == 0 && p2 == 0 {
			return true
		}
		return p1 <= bound*p2 && p2 <= bound*p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: IntervalProb is additive over adjacent intervals.
func TestIntervalAdditivityProperty(t *testing.T) {
	m := MustNew(0.5)
	c := m.C()
	f := func(vi, ai, bi, mi int16) bool {
		v := float64(vi) / float64(math.MaxInt16)
		a := float64(ai) / float64(math.MaxInt16) * c
		b := float64(bi) / float64(math.MaxInt16) * c
		if a > b {
			a, b = b, a
		}
		mid := a + (b-a)*(float64(mi)-math.MinInt16)/(math.MaxInt16-math.MinInt16)
		whole := m.IntervalProb(v, a, b)
		parts := m.IntervalProb(v, a, mid) + m.IntervalProb(v, mid, b)
		return math.Abs(whole-parts) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBandGeometry(t *testing.T) {
	m := MustNew(1)
	c := m.C()
	for _, v := range []float64{-1, 0, 1} {
		l, r := m.Band(v)
		if math.Abs((r-l)-(c-1)) > 1e-12 {
			t.Fatalf("band width %v, want %v", r-l, c-1)
		}
		if l < -c-1e-12 || r > c+1e-12 {
			t.Fatalf("band [%v,%v] outside domain", l, r)
		}
	}
	// At v=1 the band's right edge touches C; at v=-1 the left edge touches -C.
	_, r1 := m.Band(1)
	l2, _ := m.Band(-1)
	if math.Abs(r1-c) > 1e-12 || math.Abs(l2+c) > 1e-12 {
		t.Fatalf("band edges: r(1)=%v l(-1)=%v, want ±C=%v", r1, l2, c)
	}
}
