// Package ldp defines the interfaces shared by the local differential
// privacy mechanisms in this repository (Piecewise, Square Wave, k-RR,
// Duchi 1-bit, OUE) and small helpers for reasoning about their output
// distributions.
//
// A mechanism perturbs a single user value; the collector only ever sees
// perturbed outputs. The EMF machinery in internal/emf builds transform
// matrices from the exact interval probabilities exposed here.
package ldp

import (
	"math"
	"math/rand/v2"
)

// Domain is a closed interval of real values.
type Domain struct {
	Lo, Hi float64
}

// Width returns Hi−Lo.
func (d Domain) Width() float64 { return d.Hi - d.Lo }

// Mid returns the midpoint of the domain.
func (d Domain) Mid() float64 { return (d.Lo + d.Hi) / 2 }

// Contains reports whether v lies in the closed interval.
func (d Domain) Contains(v float64) bool { return v >= d.Lo && v <= d.Hi }

// Clamp restricts v to the domain.
func (d Domain) Clamp(v float64) float64 {
	return math.Min(d.Hi, math.Max(d.Lo, v))
}

// Mechanism is a numerical LDP perturbation mechanism.
type Mechanism interface {
	Name() string
	Epsilon() float64
	InputDomain() Domain
	OutputDomain() Domain
	// Perturb returns one ε-LDP report for value v. Inputs outside the
	// input domain are clamped first.
	Perturb(r *rand.Rand, v float64) float64
}

// IntervalProber exposes the exact probability that a perturbed output
// falls in an interval given the input. EMF transform matrices are built
// from these probabilities.
type IntervalProber interface {
	Mechanism
	// IntervalProb returns Pr[output ∈ [a,b] | input v].
	IntervalProb(v, a, b float64) float64
}

// PDFer exposes the output probability density.
type PDFer interface {
	Mechanism
	// PDF returns the output density at out given input v.
	PDF(v, out float64) float64
}

// Categorical is a categorical LDP mechanism over K categories.
type Categorical interface {
	Name() string
	Epsilon() float64
	K() int
	// PerturbCat returns one ε-LDP report for category c ∈ [0,K).
	PerturbCat(r *rand.Rand, c int) int
	// TransitionProb returns Pr[report = to | true = from].
	TransitionProb(from, to int) float64
}

// Moments numerically integrates the output density of a PDFer to obtain
// the conditional mean and variance of a single report given input v. It
// is used in tests to validate closed-form variance expressions and by the
// aggregation code for mechanisms without a closed form.
func Moments(m PDFer, v float64, steps int) (mean, variance float64) {
	d := m.OutputDomain()
	w := d.Width() / float64(steps)
	var m0, m1, m2 float64
	for i := 0; i < steps; i++ {
		x := d.Lo + (float64(i)+0.5)*w
		p := m.PDF(v, x) * w
		m0 += p
		m1 += p * x
		m2 += p * x * x
	}
	if m0 == 0 {
		return 0, 0
	}
	mean = m1 / m0
	variance = m2/m0 - mean*mean
	return mean, variance
}

// Overlap returns the length of the intersection of [a1,b1] and [a2,b2].
func Overlap(a1, b1, a2, b2 float64) float64 {
	lo := math.Max(a1, a2)
	hi := math.Min(b1, b2)
	if hi <= lo {
		return 0
	}
	return hi - lo
}
