// Package duchi implements Duchi et al.'s 1-bit mechanism for numerical
// mean estimation under LDP, included as the classical baseline mechanism
// referenced by the paper's related work (§VII).
//
// Given v ∈ [−1,1], the output is ±B with B = (e^ε+1)/(e^ε−1) and
// Pr[+B] = 1/2 + v(e^ε−1)/(2(e^ε+1)), so each report is an unbiased
// estimator of v with only two support points.
package duchi

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ldp"
)

// Mechanism is a Duchi 1-bit instance for a fixed budget.
type Mechanism struct {
	eps float64
	b   float64
}

// New returns a Duchi mechanism with privacy budget eps.
func New(eps float64) (*Mechanism, error) {
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, errors.New("duchi: epsilon must be positive and finite")
	}
	e := math.Exp(eps)
	return &Mechanism{eps: eps, b: (e + 1) / (e - 1)}, nil
}

// MustNew is New but panics on error.
func MustNew(eps float64) *Mechanism {
	m, err := New(eps)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements ldp.Mechanism.
func (m *Mechanism) Name() string { return fmt.Sprintf("Duchi(ε=%g)", m.eps) }

// Epsilon implements ldp.Mechanism.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// B returns the output magnitude (e^ε+1)/(e^ε−1).
func (m *Mechanism) B() float64 { return m.b }

// InputDomain implements ldp.Mechanism.
func (m *Mechanism) InputDomain() ldp.Domain { return ldp.Domain{Lo: -1, Hi: 1} }

// OutputDomain implements ldp.Mechanism.
func (m *Mechanism) OutputDomain() ldp.Domain { return ldp.Domain{Lo: -m.b, Hi: m.b} }

// ProbPositive returns Pr[output = +B | input v].
func (m *Mechanism) ProbPositive(v float64) float64 {
	v = m.InputDomain().Clamp(v)
	e := math.Exp(m.eps)
	return 0.5 + v*(e-1)/(2*(e+1))
}

// Perturb implements ldp.Mechanism.
func (m *Mechanism) Perturb(r *rand.Rand, v float64) float64 {
	if r.Float64() < m.ProbPositive(v) {
		return m.b
	}
	return -m.b
}

// Var returns the variance of a single report given input v: B² − v².
func (m *Mechanism) Var(v float64) float64 {
	v = m.InputDomain().Clamp(v)
	return m.b*m.b - v*v
}

// WorstCaseVar returns the worst-case per-report variance over the input
// domain, attained at v = 0.
func (m *Mechanism) WorstCaseVar() float64 { return m.Var(0) }

var _ ldp.Mechanism = (*Mechanism)(nil)
