package duchi

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(eps); err == nil {
			t.Fatalf("New(%v) should fail", eps)
		}
	}
}

func TestOutputsAreTwoPoint(t *testing.T) {
	r := rng.New(1)
	m := MustNew(1)
	for i := 0; i < 1000; i++ {
		out := m.Perturb(r, rng.Uniform(r, -1, 1))
		if out != m.B() && out != -m.B() {
			t.Fatalf("output %v is not ±B", out)
		}
	}
}

func TestUnbiasedness(t *testing.T) {
	r := rng.New(2)
	m := MustNew(1)
	for _, v := range []float64{-1, -0.3, 0, 0.8} {
		const n = 400000
		var sum float64
		for i := 0; i < n; i++ {
			sum += m.Perturb(r, v)
		}
		se := math.Sqrt(m.Var(v) / n)
		if got := sum / n; math.Abs(got-v) > 6*se {
			t.Fatalf("mean at v=%v: %v", v, got)
		}
	}
}

func TestProbPositiveBounds(t *testing.T) {
	m := MustNew(2)
	for _, v := range []float64{-1, 0, 1, 5, -5} {
		p := m.ProbPositive(v)
		if p < 0 || p > 1 {
			t.Fatalf("ProbPositive(%v) = %v", v, p)
		}
	}
	if m.ProbPositive(1) <= m.ProbPositive(-1) {
		t.Fatal("ProbPositive should increase with v")
	}
}

func TestLDPRatio(t *testing.T) {
	m := MustNew(0.7)
	bound := math.Exp(0.7) + 1e-12
	// Two-point output: check both outputs for extreme input pairs.
	pPlus1 := m.ProbPositive(1)
	pPlus2 := m.ProbPositive(-1)
	if pPlus1/pPlus2 > bound || (1-pPlus2)/(1-pPlus1) > bound {
		t.Fatalf("LDP ratio violated: %v %v", pPlus1/pPlus2, (1-pPlus2)/(1-pPlus1))
	}
}

func TestVar(t *testing.T) {
	m := MustNew(1)
	if m.WorstCaseVar() != m.Var(0) {
		t.Fatal("worst case should be at v=0")
	}
	if m.Var(1) >= m.Var(0) {
		t.Fatal("Var(1) should be below Var(0)")
	}
}
