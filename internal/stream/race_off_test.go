//go:build !race

package stream_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
