package stream

import (
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ldp/pm"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/wirebin"
)

// coordSpec is the task spec the merge tests run: warm start off so
// estimates are pure functions of the window histograms, fixed bucket
// resolution and stripe count so every node and the coordinator agree
// on the histogram geometry regardless of per-node population.
func coordSpec(mode WindowMode) core.Spec {
	return core.Spec{
		Task: core.TaskMean, Eps: 1, Eps0: 0.25,
		Scheme: core.SchemeEMF.String(), EMFMaxIter: 40,
		Serve: &core.ServeSpec{Buckets: 16, Shards: 4, Window: mode.String(), Span: 2},
	}
}

// synthDeltas builds nodes×epochs synthetic deltas with tn's geometry
// from a pinned PCG stream: positive integer counts (every group
// populated), matching report totals, arbitrary stripe sums and a small
// per-node ledger. Deterministic per seed.
func synthDeltas(tn *Tenant, nodes []string, epochs int, seed uint64) []*wirebin.Delta {
	r := rand.New(rand.NewPCG(0x9e3779b97f4a7c15, seed))
	var out []*wirebin.Delta
	for e := 1; e <= epochs; e++ {
		for _, n := range nodes {
			d := &wirebin.Delta{
				Node: n, Tenant: tn.name,
				Epoch: uint64(e), Seq: uint64(e),
				Counts:     make([][]float64, len(tn.groups)),
				Ns:         make([]float64, len(tn.groups)),
				StripeSums: make([][]float64, len(tn.groups)),
			}
			for g := range d.Counts {
				counts := make([]float64, tn.bkt[g])
				var total float64
				for b := range counts {
					counts[b] = float64(1 + r.IntN(9))
					total += counts[b]
				}
				d.Counts[g] = counts
				d.Ns[g] = total
				sums := make([]float64, tn.cfg.Shards)
				for s := range sums {
					sums[s] = r.Float64()*2 - 1
				}
				d.StripeSums[g] = sums
			}
			for j := 0; j < 1+r.IntN(4); j++ {
				d.Spend = append(d.Spend, wirebin.SpendEntry{
					User: n + "-u" + strconv.Itoa(j),
					Eps:  0.25 * float64(e),
				})
			}
			out = append(out, d)
		}
	}
	return out
}

// mergedState is a comparable cut of one tenant's merge-plane state.
type mergedState struct {
	published uint64
	degraded  bool
	pending   int
	window    [][][]uint64 // per epoch, per group: count bits ++ [sum, n] bits
	ledger    map[string]uint64
	result    *core.Result
}

func captureState(t *testing.T, c *Coordinator, tenant string) mergedState {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	ct, ok := c.tenants[tenant]
	if !ok {
		t.Fatalf("tenant %q missing", tenant)
	}
	st := mergedState{
		published: ct.published,
		degraded:  ct.degraded,
		pending:   len(ct.pending),
		ledger:    make(map[string]uint64, len(ct.ledger)),
	}
	for u, eps := range ct.ledger {
		st.ledger[u] = math.Float64bits(eps)
	}
	for i := range ct.window {
		eh := &ct.window[i]
		var groups [][]uint64
		for g := range eh.counts {
			var bits []uint64
			for _, cnt := range eh.counts[g] {
				bits = append(bits, math.Float64bits(cnt))
			}
			bits = append(bits, math.Float64bits(eh.sums[g]), math.Float64bits(eh.ns[g]))
			groups = append(groups, bits)
		}
		st.window = append(st.window, groups)
	}
	if ct.cached != nil {
		st.result = ct.cached.Result
	}
	return st
}

func newTestCoordinator(t *testing.T, nodes []string, st *store.Store) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{Nodes: nodes, Straggler: time.Hour, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTenantSpec("t", coordSpec(Sliding)); err != nil {
		t.Fatal(err)
	}
	return c
}

func applyAll(t *testing.T, c *Coordinator, deltas []*wirebin.Delta) {
	t.Helper()
	for _, d := range deltas {
		frame, err := wirebin.EncodeDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Apply(frame); err != nil {
			t.Fatalf("apply node %s epoch %d: %v", d.Node, d.Epoch, err)
		}
	}
}

// TestMergeCommutativity: applying the same delta set in arbitrary
// arrival orders yields bit-identical merge state — windows, ledgers
// and cached estimates.
func TestMergeCommutativity(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	for _, seed := range []uint64{1, 2, 3} {
		ref := newTestCoordinator(t, nodes, nil)
		deltas := synthDeltas(ref.tenants["t"].t, nodes, 3, seed)
		applyAll(t, ref, deltas)
		want := captureState(t, ref, "t")
		if want.published != 3 || want.pending != 0 {
			t.Fatalf("seed %d: reference published %d with %d pending", seed, want.published, want.pending)
		}
		perm := rand.New(rand.NewPCG(seed, 99))
		for trial := 0; trial < 4; trial++ {
			shuffled := append([]*wirebin.Delta(nil), deltas...)
			perm.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			c := newTestCoordinator(t, nodes, nil)
			applyAll(t, c, shuffled)
			if got := captureState(t, c, "t"); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d: merge state differs under reordering", seed, trial)
			}
		}
	}
}

// TestMergeAssociativity: grouping the stream into arbitrary batches —
// with straggler checks between batches — cannot change the fold.
func TestMergeAssociativity(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	for _, seed := range []uint64{4, 5} {
		ref := newTestCoordinator(t, nodes, nil)
		deltas := synthDeltas(ref.tenants["t"].t, nodes, 4, seed)
		applyAll(t, ref, deltas)
		want := captureState(t, ref, "t")
		split := rand.New(rand.NewPCG(seed, 7))
		for trial := 0; trial < 4; trial++ {
			c := newTestCoordinator(t, nodes, nil)
			rest := deltas
			for len(rest) > 0 {
				n := 1 + split.IntN(len(rest))
				applyAll(t, c, rest[:n])
				rest = rest[n:]
				c.Tick() // straggler pass between batches must be a no-op here
			}
			if got := captureState(t, c, "t"); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d: merge state differs under batching", seed, trial)
			}
		}
	}
}

// TestMergeIdempotence: re-delivered deltas are acknowledged as
// duplicates (pre-publish) or stragglers (post-publish) and change
// nothing.
func TestMergeIdempotence(t *testing.T) {
	nodes := []string{"a", "b"}
	for _, seed := range []uint64{6, 7} {
		ref := newTestCoordinator(t, nodes, nil)
		deltas := synthDeltas(ref.tenants["t"].t, nodes, 3, seed)
		applyAll(t, ref, deltas)
		want := captureState(t, ref, "t")
		dup := rand.New(rand.NewPCG(seed, 13))
		c := newTestCoordinator(t, nodes, nil)
		for _, d := range deltas {
			frame, err := wirebin.EncodeDelta(d)
			if err != nil {
				t.Fatal(err)
			}
			for extra := 1 + dup.IntN(3); extra > 0; extra-- {
				res, err := c.Apply(frame)
				if err != nil {
					t.Fatal(err)
				}
				if res.Status == "" {
					t.Fatal("empty merge status")
				}
			}
		}
		if got := captureState(t, c, "t"); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: duplicates changed the merge state", seed)
		}
	}
}

// TestMergeStragglerQuorum: a missing node holds an epoch open until
// the straggler timeout, then a quorum publish flags it degraded; the
// straggler's late delta is dropped and counted.
func TestMergeStragglerQuorum(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	c, err := NewCoordinator(CoordinatorConfig{Nodes: nodes, Quorum: 2, Straggler: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddTenantSpec("t", coordSpec(Sliding)); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	deltas := synthDeltas(c.tenants["t"].t, nodes, 1, 8)
	applyAll(t, c, deltas[:2]) // a and b report; c is the straggler
	if st := c.Status(); st.Tenants[0].Published != 0 || st.Tenants[0].Pending != 1 {
		t.Fatalf("published before quorum timeout: %+v", st.Tenants[0])
	}
	now = now.Add(30 * time.Second)
	c.Tick()
	if st := c.Status(); st.Tenants[0].Published != 0 {
		t.Fatal("published before the straggler timeout elapsed")
	}
	now = now.Add(31 * time.Second)
	c.Tick()
	st := c.Status()
	if st.Tenants[0].Published != 1 || !st.Tenants[0].Degraded || !st.Degraded {
		t.Fatalf("expected degraded quorum publish, got %+v", st.Tenants[0])
	}
	frame, err := wirebin.EncodeDelta(deltas[2])
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Apply(frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "late" {
		t.Fatalf("straggler delta status %q, want late", res.Status)
	}
}

// --- realistic multi-node fixtures (seal-hook deltas from live tenants) ---

// partition deterministically generates a pinned workload, ingests it
// whole into a reference tenant and stripe-partitioned into n node
// tenants, and returns the reference plus each node's captured deltas
// per rotation round.
type partition struct {
	ref        *Tenant
	refSnaps   []*Snapshot          // reference estimate after each round's rotation
	refLedgers []map[string]float64 // reference budget ledger after each round
	nodes      []*Tenant
	ids        []string
	frames     [][][]byte // [round][nodeIdx] encoded delta
}

func buildPartition(t *testing.T, n, users, rounds int) *partition {
	t.Helper()
	sp := coordSpec(Sliding)
	p := &partition{}
	var err error
	cfg, err := ConfigFromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	p.ref, err = NewTenant("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	captured := make([]*EpochDelta, n)
	for i := 0; i < n; i++ {
		id := "node-" + strconv.Itoa(i)
		p.ids = append(p.ids, id)
		tn, err := NewTenant("t", cfg)
		if err != nil {
			t.Fatal(err)
		}
		i := i
		tn.SetSealHook(func(d *EpochDelta) {
			d.Node = p.ids[i]
			captured[i] = d
		})
		p.nodes = append(p.nodes, tn)
	}
	r := rng.New(42)
	mechs := make([]*pm.Mechanism, len(p.ref.groups))
	for g := range mechs {
		m, err := pm.New(p.ref.groups[g].Eps)
		if err != nil {
			t.Fatal(err)
		}
		mechs[g] = m
	}
	shards := p.ref.Shards()
	for round := 0; round < rounds; round++ {
		for i := 0; i < users; i++ {
			for g := range p.ref.groups {
				// Round-unique reporters: the per-user budget cap is
				// Spec.Eps, which one report batch consumes entirely.
				user := "u" + strconv.Itoa(i) + "g" + strconv.Itoa(g) + "r" + strconv.Itoa(round)
				vals := make([]float64, p.ref.groups[g].Reports)
				for k := range vals {
					vals[k] = mechs[g].Perturb(r, 0.2)
				}
				if err := p.ref.Ingest(user, g, vals); err != nil {
					t.Fatal(err)
				}
				owner := StripeOf(user, shards) % n
				if err := p.nodes[owner].Ingest(user, g, vals); err != nil {
					t.Fatal(err)
				}
			}
		}
		var frames [][]byte
		for i, tn := range p.nodes {
			// Node estimate may fail (a node can own an empty group); only
			// the seal + hook matter here.
			_, _ = tn.Rotate()
			if captured[i] == nil {
				t.Fatalf("round %d: node %d seal hook did not fire", round, i)
			}
			frame, err := wirebin.EncodeDelta(captured[i])
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, frame)
			captured[i] = nil
		}
		p.frames = append(p.frames, frames)
		// The reference rotates lock-step with the nodes so its epochs
		// cover exactly the rounds the deltas do.
		snap, err := p.ref.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		p.refSnaps = append(p.refSnaps, snap)
		p.refLedgers = append(p.refLedgers, p.ref.Accountant().Export())
	}
	return p
}

// checkEquivalent asserts the coordinator's merged estimate and ledger
// are bit-identical to the reference tenant's.
func checkEquivalent(t *testing.T, c *Coordinator, refSnap *Snapshot, want map[string]float64) {
	t.Helper()
	got, err := c.Estimate("t")
	if err != nil {
		t.Fatalf("merged estimate: %v", err)
	}
	if got.Epoch != refSnap.Epoch {
		t.Fatalf("merged epoch %d, reference %d", got.Epoch, refSnap.Epoch)
	}
	if math.Float64bits(got.Reports) != math.Float64bits(refSnap.Reports) {
		t.Fatalf("merged window reports %v, reference %v", got.Reports, refSnap.Reports)
	}
	if !reflect.DeepEqual(got.Result, refSnap.Result) {
		t.Fatalf("merged estimate differs from single-node reference\n got: %+v\nwant: %+v",
			got.Result, refSnap.Result)
	}
	ledger, err := c.Ledger("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(ledger) != len(want) {
		t.Fatalf("merged ledger has %d users, reference %d", len(ledger), len(want))
	}
	for u, eps := range want {
		if math.Float64bits(ledger[u]) != math.Float64bits(eps) {
			t.Fatalf("user %s merged spend %v, reference %v", u, ledger[u], eps)
		}
	}
}

// TestMergeEquivalenceStream: 3 node tenants with stripe-disjoint user
// partitions, deltas from the live seal hook — the coordinator's merged
// per-epoch estimates and budget ledger are bit-identical to one tenant
// ingesting the whole stream. The transport-level
// TestDistributedEquivalence covers the same invariant over HTTP.
func TestMergeEquivalenceStream(t *testing.T) {
	const rounds = 3
	p := buildPartition(t, 3, 12, rounds)
	c := newTestCoordinator(t, p.ids, nil)
	for round := 0; round < rounds; round++ {
		applyAll2(t, c, p.frames[round])
		checkEquivalent(t, c, p.refSnaps[round], p.refLedgers[round])
	}
}

func applyAll2(t *testing.T, c *Coordinator, frames [][]byte) {
	t.Helper()
	for _, frame := range frames {
		if _, err := c.Apply(frame); err != nil {
			t.Fatal(err)
		}
	}
}

// --- crash kill-points (run by make crash-test) ---

// tearNewestWAL appends garbage shorter than a frame header to the
// newest WAL segment — a kill -9 mid-write.
func tearNewestWAL(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range ents { // ReadDir sorts; last wal-* wins
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			newest = filepath.Join(dir, e.Name())
		}
	}
	if newest == "" {
		t.Fatal("no WAL segment to tear")
	}
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func openCoordStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Sync: store.SyncOS})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func recoverCoordinator(t *testing.T, dir string, nodes []string) (*Coordinator, *RecoveryReport) {
	t.Helper()
	st := openCoordStore(t, dir)
	c, rep, err := RecoverCoordinator(CoordinatorConfig{
		Nodes: nodes, Straggler: time.Hour, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, rep
}

// TestCoordinatorCrashMidMerge kills the coordinator after a partial
// epoch (2 of 3 nodes reported, nothing published) and recovers: the
// in-flight epoch is reconstructed delta-for-delta, and finishing the
// epoch after recovery publishes the same bits as the uncrashed run.
func TestCoordinatorCrashMidMerge(t *testing.T) {
	const rounds = 2
	p := buildPartition(t, 3, 10, rounds)
	// Uncrashed reference coordinator over the same frames.
	un := newTestCoordinator(t, p.ids, nil)
	applyAll2(t, un, p.frames[0])
	applyAll2(t, un, p.frames[1])
	want := captureState(t, un, "t")

	dir := t.TempDir()
	st := openCoordStore(t, dir)
	mustLoadEmpty(t, st)
	c1, err := NewCoordinator(CoordinatorConfig{Nodes: p.ids, Straggler: time.Hour, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AddTenantSpec("t", coordSpec(Sliding)); err != nil {
		t.Fatal(err)
	}
	applyAll2(t, c1, p.frames[0])                // epoch 1 publishes
	applyAll2(t, c1, p.frames[1][:2])            // epoch 2 in flight: kill here
	c2, rep := recoverCoordinator(t, dir, p.ids) // no courtesy shutdown
	if rep.Tenants != 1 {
		t.Fatalf("recovered %d tenants, want 1", rep.Tenants)
	}
	checkEquivalent(t, c2, p.refSnaps[0], p.refLedgers[0]) // epoch 1 re-published bit-identically
	applyAll2(t, c2, p.frames[1][2:])                      // straggler delta finishes epoch 2
	if got := captureState(t, c2, "t"); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered merge state differs from the uncrashed run")
	}
	checkEquivalent(t, c2, p.refSnaps[1], p.refLedgers[1])
}

// TestCoordinatorCrashMidPublish kills the coordinator right after a
// full epoch published and recovers: replay re-publishes the epoch from
// the identical sorted fold — estimates, window and ledger all match
// the uncrashed coordinator bit-for-bit.
func TestCoordinatorCrashMidPublish(t *testing.T) {
	const rounds = 2
	p := buildPartition(t, 3, 10, rounds)
	un := newTestCoordinator(t, p.ids, nil)
	applyAll2(t, un, p.frames[0])
	want1 := captureState(t, un, "t")
	applyAll2(t, un, p.frames[1])
	want2 := captureState(t, un, "t")

	dir := t.TempDir()
	st := openCoordStore(t, dir)
	mustLoadEmpty(t, st)
	c1, err := NewCoordinator(CoordinatorConfig{Nodes: p.ids, Straggler: time.Hour, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AddTenantSpec("t", coordSpec(Sliding)); err != nil {
		t.Fatal(err)
	}
	applyAll2(t, c1, p.frames[0]) // publish, then crash immediately after

	c2, _ := recoverCoordinator(t, dir, p.ids)
	if got := captureState(t, c2, "t"); !reflect.DeepEqual(got, want1) {
		t.Fatal("state after crash-mid-publish recovery differs from uncrashed run")
	}
	checkEquivalent(t, c2, p.refSnaps[0], p.refLedgers[0])
	applyAll2(t, c2, p.frames[1])
	if got := captureState(t, c2, "t"); !reflect.DeepEqual(got, want2) {
		t.Fatal("post-recovery merging diverged from uncrashed run")
	}
	checkEquivalent(t, c2, p.refSnaps[1], p.refLedgers[1])
}

// TestCoordinatorTornDeltaRecord tears the WAL tail mid-record (the
// torn write a crash leaves) and recovers: the torn delta is truncated
// away, the intact prefix replays bit-identically, and re-delivering
// the lost delta (the node's retry) completes the epoch as if nothing
// happened.
func TestCoordinatorTornDeltaRecord(t *testing.T) {
	p := buildPartition(t, 3, 10, 1)
	dir := t.TempDir()
	st := openCoordStore(t, dir)
	mustLoadEmpty(t, st)
	c1, err := NewCoordinator(CoordinatorConfig{Nodes: p.ids, Straggler: time.Hour, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AddTenantSpec("t", coordSpec(Sliding)); err != nil {
		t.Fatal(err)
	}
	applyAll2(t, c1, p.frames[0][:2])
	tearNewestWAL(t, dir) // the third delta's append is torn mid-write

	c2, rep := recoverCoordinator(t, dir, p.ids)
	if !rep.Torn {
		t.Fatal("recovery did not report the torn tail")
	}
	st2 := c2.Status()
	if st2.Tenants[0].Published != 0 || st2.Tenants[0].Pending != 1 {
		t.Fatalf("unexpected state after torn-tail recovery: %+v", st2.Tenants[0])
	}
	// The node retries the un-acked delta; the epoch completes normally.
	applyAll2(t, c2, p.frames[0][2:])
	checkEquivalent(t, c2, p.refSnaps[0], p.refLedgers[0])
}

func mustLoadEmpty(t *testing.T, st *store.Store) {
	t.Helper()
	if _, err := st.Load(); err != nil {
		t.Fatal(err)
	}
}
