package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// This file is the bridge between the streaming engine and the store
// package: cutting a tenant's durable image for a snapshot, restoring a
// tenant from one, and Recover — boot-time crash recovery that loads the
// newest snapshot and replays the WAL tail over it.
//
// Replay positions. Each tenant carries two LSNs. walStart is where the
// live epoch begins (the LSN after the tenant's last rotation record):
// ingest records at or beyond it rebuild the live histograms — the live
// epoch is never snapshotted, it is always reproduced by replay, which is
// what makes recovered estimates bit-identical to an uninterrupted run
// (stripe assignment is the deterministic hashUser, and ingest holds the
// stripe lock across WAL append + apply, so per-stripe float accumulation
// order equals LSN order and reproduces exactly). acctFrom is where the
// snapshot's accountant ledger and join counter stop being authoritative:
// charges and joins at or beyond it replay into the accountant — with
// ForceSpend, not SpendN, because every logged record was already
// admitted under the cap. Records between walStart and acctFrom therefore
// rebuild histograms without re-charging: the snapshot cut happened
// mid-epoch and its ledger already reflects them.

// export copies the user→group binding map out of the stripes.
func (u *userGroups) export() map[string]int {
	out := make(map[string]int)
	for i := range u.shards {
		s := &u.shards[i]
		s.mu.RLock()
		for user, g := range s.m {
			out[user] = g
		}
		s.mu.RUnlock()
	}
	return out
}

// snapshotCut builds the tenant's durable image at a consistent cut: the
// exclusive tenant lock quiesces ingest (whose charge→append→apply runs
// entirely under the shared lock) and rotation, and the join lock
// quiesces joins, so the ledger, bindings, sealed window and the recorded
// AcctLSN all describe the same instant. Sealed epoch slices are shared,
// not copied — they are immutable after the seal.
func (t *Tenant) snapshotCut() (store.TenantSnap, error) {
	specJSON, err := json.Marshal(t.Spec())
	if err != nil {
		return store.TenantSnap{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.joinMu.Lock()
	joined := t.joined
	acctLSN := t.st.NextLSN()
	t.joinMu.Unlock()
	ts := store.TenantSnap{
		Name:     t.name,
		Spec:     specJSON,
		Seq:      t.seq,
		StartLSN: t.walStart,
		AcctLSN:  acctLSN,
		Joined:   joined,
		Spend:    t.acct.Export(),
		Users:    t.userGrp.export(),
	}
	for i := range t.sealed {
		eh := &t.sealed[i]
		ts.Epochs = append(ts.Epochs, store.EpochSnap{
			Counts: eh.counts, Sums: eh.sums, Ns: eh.ns,
		})
	}
	return ts, nil
}

// restoreTenant rebuilds a tenant from its snapshot block, recreating it
// through the normal spec→tenant path and then installing the sealed
// window, ledger, bindings and replay positions.
func restoreTenant(ts *store.TenantSnap) (*Tenant, error) {
	var sp core.Spec
	if err := json.Unmarshal(ts.Spec, &sp); err != nil {
		return nil, fmt.Errorf("stream: tenant %s snapshot spec: %w", ts.Name, err)
	}
	t, err := NewTenantSpec(ts.Name, sp)
	if err != nil {
		return nil, fmt.Errorf("stream: tenant %s: %w", ts.Name, err)
	}
	t.seq = ts.Seq
	for _, ep := range ts.Epochs {
		t.sealed = append(t.sealed, epochHist{counts: ep.Counts, sums: ep.Sums, ns: ep.Ns})
	}
	t.acct.Import(ts.Spend)
	for user, g := range ts.Users {
		t.userGrp.store(hashUser(user), user, g)
	}
	t.joined = ts.Joined
	t.walStart = ts.StartLSN
	t.acctFrom = ts.AcctLSN
	return t, nil
}

// RecoveryReport summarizes what Recover found and rebuilt.
type RecoveryReport struct {
	// SnapshotLSN is the cut position of the snapshot recovery started
	// from, 0 when it replayed from an empty state.
	SnapshotLSN uint64
	// Records is how many intact WAL records the store returned; Applied
	// is how many changed tenant state (the rest predate snapshot cuts or
	// belong to deleted tenants).
	Records, Applied int
	// Tenants is how many tenants exist after recovery.
	Tenants int
	// Torn reports whether a torn or corrupt WAL tail was truncated.
	Torn bool
	// Warnings carries human-readable notes from the store scan and
	// replay.
	Warnings []string
	// SpendBefore and SpendAfter are the total recorded budget spend in
	// the snapshot and after WAL replay. Recovery enforces
	// SpendAfter ≥ SpendBefore — ε spend never decreases across a crash.
	SpendBefore, SpendAfter float64
}

// Recover loads the durable state under st (which must be freshly opened
// and not yet loaded) and rebuilds a running registry from it: newest
// verifiable snapshot first, then the WAL tail replayed over it in LSN
// order. Tenant epoch clocks are started after replay. The returned
// registry owns st for future appends and snapshots (but not its
// lifetime — closing the store is still the caller's job).
func Recover(st *store.Store) (*Registry, *RecoveryReport, error) {
	rec, err := st.Load()
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{
		Records:  len(rec.Records),
		Torn:     rec.Torn,
		Warnings: rec.Warnings,
	}
	reg := NewRegistry()
	reg.st = st
	if rec.Snapshot != nil {
		rep.SnapshotLSN = rec.Snapshot.LSN
		for i := range rec.Snapshot.Tenants {
			ts := &rec.Snapshot.Tenants[i]
			t, err := restoreTenant(ts)
			if err != nil {
				rep.Warnings = append(rep.Warnings, err.Error())
				continue
			}
			t.st = st
			rep.SpendBefore += t.acct.TotalSpent()
			reg.tenants[t.name] = t
		}
	}
	for i := range rec.Records {
		r := &rec.Records[i]
		if r.Type == store.RecTenantCreate {
			if _, ok := reg.tenants[r.Tenant]; ok {
				continue // predates the snapshot that already holds it
			}
			var sp core.Spec
			if err := json.Unmarshal(r.Spec, &sp); err != nil {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("tenant %s create at LSN %d: bad spec: %v", r.Tenant, r.LSN, err))
				continue
			}
			t, err := NewTenantSpec(r.Tenant, sp)
			if err != nil {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("tenant %s create at LSN %d: %v", r.Tenant, r.LSN, err))
				continue
			}
			t.st = st
			t.walStart = r.LSN + 1
			t.acctFrom = r.LSN + 1
			reg.tenants[r.Tenant] = t
			rep.Applied++
			continue
		}
		t, ok := reg.tenants[r.Tenant]
		if !ok {
			continue // deleted later, or its create was lost with a torn tail
		}
		switch r.Type {
		case store.RecIngest:
			if r.LSN < t.walStart {
				continue // already inside a sealed epoch the snapshot holds
			}
			if err := t.replayIngest(r.User, r.Group, r.Values, r.LSN >= t.acctFrom); err != nil {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("tenant %s ingest at LSN %d: %v", r.Tenant, r.LSN, err))
				continue
			}
			rep.Applied++
		case store.RecJoin:
			if r.LSN >= t.acctFrom {
				t.restoreJoin(r.User, r.Group)
				rep.Applied++
			}
		case store.RecRotate:
			if r.LSN >= t.walStart {
				t.replaySeal(r.Seq)
				t.walStart = r.LSN + 1
				rep.Applied++
			}
		case store.RecTenantDelete:
			delete(reg.tenants, r.Tenant)
			rep.Applied++
		}
	}
	// Sum the ledgers in sorted tenant order: map iteration order varies
	// run to run and float addition is not associative, so an unordered
	// sum could make the monotonicity gate below flicker across otherwise
	// bit-identical recoveries.
	names := make([]string, 0, len(reg.tenants))
	for name := range reg.tenants {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		rep.SpendAfter += reg.tenants[name].acct.TotalSpent()
	}
	rep.Tenants = len(reg.tenants)
	// ε-spend monotonicity: replay only ever adds charges on top of the
	// snapshot ledger, so a decrease means corrupt state — refuse to serve
	// from it rather than silently under-count spent budget.
	if rep.SpendAfter < rep.SpendBefore {
		return nil, rep, errors.New("stream: recovery decreased recorded budget spend")
	}
	// Reads come back before writes: rebuild each tenant's cached window
	// estimate from the recovered sealed epochs (best effort — a window
	// that cannot be estimated yet just leaves the cache empty), then
	// start the epoch clocks.
	for _, t := range reg.tenants {
		t.mu.RLock()
		window := append([]epochHist(nil), t.sealed...)
		seq := t.seq
		t.mu.RUnlock()
		if seq > 0 {
			if snap, err := t.estimateWindow(window, nil, seq, false); err == nil {
				t.cached.Store(snap)
			}
		}
		t.Start()
	}
	return reg, rep, nil
}

// Store returns the registry's durability layer, nil for an ephemeral
// registry.
func (r *Registry) Store() *store.Store {
	return r.st
}

// Snapshot cuts and durably writes a full registry snapshot. It is a
// no-op for an ephemeral registry.
func (r *Registry) Snapshot() error {
	if r.st == nil {
		return nil
	}
	snap := &store.Snapshot{}
	for _, t := range r.List() {
		ts, err := t.snapshotCut()
		if err != nil {
			return err
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	// The snapshot's own LSN only names the file and bounds GC; the
	// authoritative replay positions are per tenant.
	snap.LSN = r.st.NextLSN()
	return r.st.WriteSnapshot(snap)
}

// StartSnapshots launches the background snapshot loop, cutting a full
// registry snapshot every interval. It is a no-op for an ephemeral
// registry, a non-positive interval, or when the loop already runs;
// Close stops the loop and cuts one final snapshot.
func (r *Registry) StartSnapshots(every time.Duration) {
	if r.st == nil || every <= 0 {
		return
	}
	r.snapCtl.Lock()
	defer r.snapCtl.Unlock()
	if r.stopSnap != nil {
		return
	}
	r.stopSnap = make(chan struct{})
	r.snapDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = r.Snapshot() // transient store failures retry next tick
			}
		}
	}(r.stopSnap, r.snapDone)
}
