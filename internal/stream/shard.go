package stream

import "sync"

// shard is one lock stripe of a group's live histogram: bucket counts over
// the discretized output domain plus the exact running report sum (the
// sufficient statistic the estimator needs). The struct is padded so
// adjacent stripes do not share a cache line under write contention.
type shard struct {
	mu     sync.Mutex
	counts []float64
	sum    float64
	n      float64
	_      [64]byte
}

// shardSet is the live histogram of one (tenant, group): Shards stripes
// written concurrently by ingesters. A report increments one bucket of one
// stripe under that stripe's lock; readers merge all stripes.
type shardSet struct {
	shards []shard
}

func newShardSet(stripes, buckets int) *shardSet {
	s := &shardSet{shards: make([]shard, stripes)}
	for i := range s.shards {
		s.shards[i].counts = make([]float64, buckets)
	}
	return s
}

// stripe returns the shard a stripe hash maps to.
//
//dapvet:hotpath
func (s *shardSet) stripe(hash uint64) *shard {
	return &s.shards[hash%uint64(len(s.shards))]
}

// add records a batch of reports on stripe. idx and vals are parallel:
// idx[j] is the precomputed bucket of value vals[j]. Validation happened
// before the lock — nothing here can fail, so the critical section is a
// handful of adds.
//
//dapvet:hotpath
func (s *shardSet) add(stripe uint64, idx []int, vals []float64) {
	sh := s.stripe(stripe)
	sh.mu.Lock()
	sh.addLocked(idx, vals)
	sh.mu.Unlock()
}

// addLocked is add with the shard lock already held — the durable ingest
// path holds it across the WAL append so same-stripe applies happen in
// LSN order (see Tenant.Ingest).
//
//dapvet:hotpath
func (sh *shard) addLocked(idx []int, vals []float64) {
	for j, i := range idx {
		sh.counts[i]++
		sh.sum += vals[j]
	}
	sh.n += float64(len(idx))
}

// mergeLocked folds every stripe into counts (which must be zeroed,
// len = buckets) and returns the total sum and report count. The caller
// must hold the tenant's write lock (rotation) — ingesters are excluded,
// so stripes are quiescent and no stripe locks are needed.
func (s *shardSet) mergeLocked(counts []float64) (sum, n float64) {
	for i := range s.shards {
		sh := &s.shards[i]
		for b, c := range sh.counts {
			counts[b] += c
		}
		sum += sh.sum
		n += sh.n
	}
	return sum, n
}

// count returns the live report count across stripes, each read under its
// own lock (safe while ingesters are active; the caller must hold the
// tenant's read lock so rotation cannot swap the set mid-sum).
func (s *shardSet) count() float64 {
	var n float64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}

// mergeLive folds every stripe into counts while ingesters may be active:
// each stripe is copied under its own lock. The caller must hold the
// tenant's read lock so rotation cannot swap the set mid-merge.
func (s *shardSet) mergeLive(counts []float64) (sum, n float64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for b, c := range sh.counts {
			counts[b] += c
		}
		sum += sh.sum
		n += sh.n
		sh.mu.Unlock()
	}
	return sum, n
}
