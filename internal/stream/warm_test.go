package stream_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stream"
)

// warmTenantPair builds two identically-specced tenants, one with epoch
// warm starts and one without, and replays the same two-epoch workload
// into both.
func warmTenantPair(t *testing.T) (warm, cold *stream.Tenant) {
	t.Helper()
	const n = 1800
	mk := func(warmOn bool) *stream.Tenant {
		tn, err := stream.NewTenant(map[bool]string{true: "warm", false: "cold"}[warmOn], stream.Config{
			Spec: core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.25,
				Scheme: core.SchemeEMFStar.String()},
			ExpectedUsers: n, Shards: 1,
			Window: stream.WindowConfig{Mode: stream.Sliding, Span: 8},
			Warm:   warmOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}
	warm, cold = mk(true), mk(false)

	d, err := core.NewDAP(core.Params{Eps: 1, Eps0: 0.25, Scheme: core.SchemeEMFStar})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Uniform(r, -0.6, 0.2)
	}
	adv := attack.NewBBA(attack.RangeHighHalf, attack.DistUniform)
	// Two epochs of reports: two independent collections from the same
	// population — the stream analogue of consecutive windows.
	for epoch := 0; epoch < 2; epoch++ {
		col, err := d.Collect(r, values, adv, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for _, tn := range []*stream.Tenant{warm, cold} {
			for g, reports := range col.Groups {
				slots := tn.Groups()[g].Reports
				u := 0
				for lo := 0; lo < len(reports); lo += slots {
					hi := min(lo+slots, len(reports))
					user := "e" + itoa(epoch) + "g" + itoa(g) + "u" + itoa(u)
					if err := tn.Ingest(user, g, reports[lo:hi]); err != nil {
						t.Fatal(err)
					}
					u++
				}
			}
			if _, err := tn.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return warm, cold
}

// A warm-started tenant re-estimates each epoch from the previous
// rotation's fits: the second rotation must spend fewer EM iterations
// than the cold tenant's, report warm hits, and stay within tolerance of
// the cold (bit-exact-to-batch) estimate.
func TestTenantWarmRotation(t *testing.T) {
	warm, cold := warmTenantPair(t)
	ws, cs := warm.Cached(), cold.Cached()
	if ws == nil || cs == nil {
		t.Fatal("missing cached snapshots")
	}
	if ws.Epoch != 2 || cs.Epoch != 2 {
		t.Fatalf("expected two sealed epochs, got warm=%d cold=%d", ws.Epoch, cs.Epoch)
	}
	if ws.Result.WarmHits <= cs.Result.WarmHits {
		t.Fatalf("warm tenant reported %d warm hits vs cold %d", ws.Result.WarmHits, cs.Result.WarmHits)
	}
	if ws.Result.EMFIters >= cs.Result.EMFIters {
		t.Fatalf("warm rotation spent %d EM iterations, cold %d", ws.Result.EMFIters, cs.Result.EMFIters)
	}
	if diff := math.Abs(ws.Result.Mean - cs.Result.Mean); diff > 0.02 {
		t.Fatalf("warm mean %v vs cold %v", ws.Result.Mean, cs.Result.Mean)
	}
	if diff := math.Abs(ws.Result.Gamma - cs.Result.Gamma); diff > 0.02 {
		t.Fatalf("warm γ̂ %v vs cold %v", ws.Result.Gamma, cs.Result.Gamma)
	}
}

// The warm flag round-trips through the spec's Serve section, so a tenant
// recreated from Spec() keeps its warm-start behaviour.
func TestWarmServeSpecRoundTrip(t *testing.T) {
	tn, err := stream.NewTenant("w", stream.Config{
		Spec:          core.Spec{Task: core.TaskMean, Eps: 1},
		ExpectedUsers: 256, Warm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := tn.Spec()
	if sp.Serve == nil || !sp.Serve.Warm {
		t.Fatal("Serve section lost the warm flag")
	}
	tn2, err := stream.NewTenantSpec("w2", sp)
	if err != nil {
		t.Fatal(err)
	}
	if !tn2.Config().Warm {
		t.Fatal("recreated tenant lost the warm flag")
	}
}

// The steady-state ingest path (known user, pooled index buffer, striped
// histogram add) must not allocate.
func TestIngestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guard applies to production builds")
	}
	tn, err := stream.NewTenant("a", stream.Config{
		Spec:          core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 0.25},
		ExpectedUsers: 4096, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-register users in the last (cheapest-per-report) group and warm
	// the pools; each user can afford 2^(h−1) single-value reports.
	h := len(tn.Groups())
	g := h - 1
	const users = 64
	vals := []float64{0.25}
	names := make([]string, users) // prebuilt: only Ingest itself is measured
	for u := 0; u < users; u++ {
		names[u] = "u" + itoa(u)
		if err := tn.Ingest(names[u], g, vals); err != nil {
			t.Fatal(err)
		}
	}
	// Instrumentation must be live during the measurement — the guard
	// covers the metered path, not a stripped one — and must cost zero
	// allocations: the tenant's handles are pre-bound, so each accepted
	// ingest is one atomic add on a counter.
	sc := scrapeDefault(t)
	before := sc.Value("dap_stream_reports_ingested_total", map[string]string{"tenant": "a"})
	u := 0
	const runs = 100
	allocs := testing.AllocsPerRun(runs, func() {
		if err := tn.Ingest(names[u%users], g, vals); err != nil {
			t.Fatal(err)
		}
		u++
	})
	if allocs >= 1 {
		t.Fatalf("steady-state ingest allocates %v times per call", allocs)
	}
	sc = scrapeDefault(t)
	after := sc.Value("dap_stream_reports_ingested_total", map[string]string{"tenant": "a"})
	// AllocsPerRun executes runs+1 iterations (one warm-up); anything
	// below runs means the counter is not wired to the measured path.
	if after-before < runs {
		t.Fatalf("ingest counter advanced by %v during %d metered ingests; instrumentation not active", after-before, runs)
	}
}

// scrapeDefault renders and re-parses the process-wide registry, so the
// assertion exercises the same exposition surface GET /metrics serves.
func scrapeDefault(t *testing.T) *metrics.Scrape {
	t.Helper()
	var buf bytes.Buffer
	if _, err := metrics.Default().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func BenchmarkIngest(b *testing.B) {
	tn, err := stream.NewTenant("b", stream.Config{
		Spec:          core.Spec{Task: core.TaskMean, Eps: 1, Eps0: 1.0 / 1024},
		ExpectedUsers: 1 << 16, Shards: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := len(tn.Groups())
	maxPerUser := 1 << (h - 1) // group h−1 affords 2^(h−1) single-value reports
	vals := []float64{0.25}
	var names []string
	name := func(u int) string {
		for len(names) <= u {
			names = append(names, "u"+itoa(len(names)))
		}
		return names[u]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tn.Ingest(name(i/maxPerUser), h-1, vals); err != nil {
			b.Fatal(err)
		}
	}
}
