// Package stream is the serving layer of the DAP reproduction: a
// streaming aggregation engine that turns the paper's one-shot batch
// collector into a long-lived, multi-tenant service.
//
// Three layers compose:
//
//   - Sharded histograms (shard.go). Per (tenant, group) the live epoch is
//     a set of lock-striped count histograms over the mechanism's
//     discretized output domain. Ingesting a report is a bucket-index
//     computation plus a counter increment under one stripe's lock —
//     memory is O(shards·h·d′) regardless of how many reports arrive, and
//     ingest throughput scales with the stripe count instead of
//     serializing on a global mutex. The bucket indices are computed with
//     ldp.Discretizer, which reproduces emf.(*Matrix).Counts exactly, so a
//     histogram accumulated report-by-report equals the batch histogram
//     bucket-for-bucket and the downstream estimate is identical (the
//     histogram-equivalence invariant, enforced by tests).
//
//   - Epoch windows (tenant.go). Rotate seals the live shards into an
//     immutable epoch snapshot, re-estimates the configured window (the
//     sealed epoch for tumbling windows, the last Span sealed epochs for
//     sliding ones) and caches the result, so reading an estimate is a
//     pointer load — always fresh without rescanning reports. Live
//     estimates that fold in the unsealed epoch are available on demand.
//
//   - A tenant registry (registry.go). One process hosts many concurrent
//     aggregations — each defined by a declarative task spec (core.Spec)
//     and estimated through the single core.Build surface — with its own
//     parameters, privacy accountant, histograms and epoch clock.
//
// A tenant is constructed from a core.Spec: the task section selects the
// protocol via core.Build (the same call path batch estimation uses), and
// the spec's Serve section carries the engine parameters (shards, bucket
// resolution, epoch windows).
package stream

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// Kind is the historical tenant-kind enum, now unified with the task-spec
// API's kinds.
//
// Deprecated: use core.TaskKind.
type Kind = core.TaskKind

// Historical kind names.
//
// Deprecated: use the core.Task* constants.
const (
	KindMean = core.TaskMean
	KindFreq = core.TaskFrequency
	KindDist = core.TaskDistribution
)

// ParseKind parses a tenant kind name.
//
// Deprecated: use core.ParseTask.
func ParseKind(s string) (Kind, error) { return core.ParseTask(s) }

// WindowMode selects the epoch window shape.
type WindowMode int

// Window modes.
const (
	// Tumbling estimates each sealed epoch on its own: Rotate seals the
	// live histograms and the cached estimate covers exactly that epoch.
	Tumbling WindowMode = iota
	// Sliding estimates the union of the last Span sealed epochs: each
	// rotation slides the window forward by one epoch.
	Sliding
)

// String implements fmt.Stringer.
func (m WindowMode) String() string {
	if m == Sliding {
		return "sliding"
	}
	return "tumbling"
}

// ParseWindowMode parses a window mode name.
func ParseWindowMode(s string) (WindowMode, error) {
	switch strings.ToLower(s) {
	case "", "tumbling", "fixed":
		return Tumbling, nil
	case "sliding":
		return Sliding, nil
	}
	return 0, fmt.Errorf("%w: unknown window mode %q", core.ErrBadSpec, s)
}

// WindowConfig shapes a tenant's epoch windows.
type WindowConfig struct {
	// Mode selects tumbling (per-epoch) or sliding (last-Span-epochs)
	// estimation windows.
	Mode WindowMode
	// Span is the number of sealed epochs a sliding window covers
	// (default 1; tumbling windows always cover exactly one).
	Span int
	// Epoch is the wall-clock epoch length driving automatic rotation;
	// zero disables the clock and epochs rotate only on explicit Rotate
	// calls (the batch-compatible default: the live window then simply
	// accumulates everything ever ingested).
	Epoch time.Duration
}

// Config parameterizes one tenant: the task spec (what is estimated, with
// which mechanism, scheme and budgets — the exact description core.Build
// consumes) plus the engine parameters of this tenant's histograms and
// windows. ConfigFromSpec fills the engine fields from the spec's Serve
// section, so one JSON spec fully describes a tenant.
type Config struct {
	// Spec is the task description. Its Serve section, when present, seeds
	// any engine field left zero below.
	Spec core.Spec
	// Buckets fixes one output histogram resolution d′ for every group
	// (numeric kinds), rounded down to even and floored at 8 like
	// emf.BucketCounts. Zero derives per-group resolutions from
	// ExpectedUsers instead — the streaming default.
	Buckets int
	// ExpectedUsers is the anticipated user population per window. With
	// Buckets zero, group t's resolution follows the paper's rule on the
	// report volume that population yields — users split equally, group t
	// reporting 2^t times — exactly as the batch collector would pick for
	// the same collection (default 4096 users).
	ExpectedUsers int
	// Shards is the number of lock stripes per group histogram
	// (default 8).
	Shards int
	// Window shapes the epoch windows.
	Window WindowConfig
	// Warm seeds each window re-estimation from the previous estimate's EM
	// fits. Off (the default), every estimate is bit-identical to batch
	// estimation over the same histograms — the engine's equivalence
	// invariant; on, estimates are tolerance-equivalent and re-estimation
	// converges in a fraction of the iterations.
	Warm bool
}

// ConfigFromSpec builds a tenant configuration from a task spec,
// honouring its Serve section. This is the one spec→tenant conversion
// used by the wire API and every CLI.
func ConfigFromSpec(sp core.Spec) (Config, error) {
	cfg := Config{Spec: sp}
	if s := sp.Serve; s != nil {
		mode, err := ParseWindowMode(s.Window)
		if err != nil {
			return Config{}, err
		}
		cfg.Buckets = s.Buckets
		cfg.ExpectedUsers = s.ExpectedUsers
		cfg.Shards = s.Shards
		cfg.Warm = s.Warm
		cfg.Window = WindowConfig{
			Mode:  mode,
			Span:  s.Span,
			Epoch: time.Duration(s.EpochMs) * time.Millisecond,
		}
	}
	return cfg, nil
}

// SpecWithServe returns the task spec including a Serve section
// reflecting the effective engine configuration — the JSON the wire API
// returns for a tenant, sufficient to recreate it.
func (cfg Config) SpecWithServe() core.Spec {
	sp := cfg.Spec
	sp.Serve = &core.ServeSpec{
		Buckets:       cfg.Buckets,
		ExpectedUsers: cfg.ExpectedUsers,
		Shards:        cfg.Shards,
		Window:        cfg.Window.Mode.String(),
		Span:          cfg.Window.Span,
		EpochMs:       cfg.Window.Epoch.Milliseconds(),
		Warm:          cfg.Warm,
	}
	return sp
}

// normalize validates cfg and fills defaults, returning the effective
// configuration. Engine fields left zero adopt the spec's Serve section.
func (cfg Config) normalize() (Config, error) {
	if s := cfg.Spec.Serve; s != nil {
		if cfg.Buckets == 0 {
			cfg.Buckets = s.Buckets
		}
		if cfg.ExpectedUsers == 0 {
			cfg.ExpectedUsers = s.ExpectedUsers
		}
		if cfg.Shards == 0 {
			cfg.Shards = s.Shards
		}
		if !cfg.Warm {
			cfg.Warm = s.Warm
		}
		if cfg.Window == (WindowConfig{}) {
			mode, err := ParseWindowMode(s.Window)
			if err != nil {
				return cfg, err
			}
			cfg.Window = WindowConfig{
				Mode:  mode,
				Span:  s.Span,
				Epoch: time.Duration(s.EpochMs) * time.Millisecond,
			}
		}
	}
	cfg.Spec = cfg.Spec.Normalize()
	if err := cfg.Spec.Validate(); err != nil {
		return cfg, err
	}
	switch cfg.Spec.Task {
	case core.TaskMean, core.TaskFrequency, core.TaskDistribution:
	default:
		return cfg, fmt.Errorf("%w: task %q cannot run as a stream tenant",
			core.ErrBadSpec, cfg.Spec.Task)
	}
	if cfg.Spec.Defense != nil {
		return cfg, fmt.Errorf("%w: defense comparators need raw reports and cannot run as stream tenants",
			core.ErrBadSpec)
	}
	if cfg.Spec.Attack != nil {
		return cfg, fmt.Errorf("%w: attack sections are simulation-only and cannot cross the wire (strip the attack before creating a tenant)",
			core.ErrBadSpec)
	}
	if cfg.ExpectedUsers == 0 {
		cfg.ExpectedUsers = 4096
	}
	if cfg.ExpectedUsers < 0 {
		return cfg, errors.New("stream: ExpectedUsers must be positive")
	}
	if cfg.Buckets < 0 {
		return cfg, errors.New("stream: Buckets must be non-negative")
	}
	if cfg.Buckets > 0 {
		if cfg.Buckets%2 == 1 {
			cfg.Buckets--
		}
		if cfg.Buckets < 8 {
			cfg.Buckets = 8
		}
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 1 {
		return cfg, errors.New("stream: Shards must be positive")
	}
	if cfg.Window.Span == 0 {
		cfg.Window.Span = 1
	}
	if cfg.Window.Span < 1 {
		return cfg, errors.New("stream: window span must be positive")
	}
	if cfg.Window.Mode == Tumbling {
		cfg.Window.Span = 1
	}
	if cfg.Window.Epoch < 0 {
		return cfg, errors.New("stream: epoch duration must be non-negative")
	}
	return cfg, nil
}
